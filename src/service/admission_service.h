// Lock-free admission control plane (§5 deployed at scale).
//
// The paper's §5 deployment sketch precomputes the tolerance -> N_max
// admission table offline and answers each admit with one table lookup.
// This service is that sketch grown into a control plane sized for
// millions of concurrent sessions:
//
//   * Admission fast path: the current table (flattened into a
//     core::AdmissionTableSnapshot) plus the per-class limits live in an
//     immutable ServingLimits object published through an RCU pointer
//     (service/rcu.h). An admit takes a wait-free read guard, binary
//     searches the flat arrays, and never blocks on a table rebuild.
//   * Occupancy: one cache-line-padded atomic per class; admit is a
//     relaxed load + CAS loop (no mutex), teardown a fetch_sub.
//     Capacity rejects are decided before any registry work, so a flash
//     crowd beyond the limit costs two atomics per reject.
//   * Sessions: a sharded lock-free registry (service/session_registry.h)
//     with preallocated record slabs — steady-state admit/teardown
//     performs no heap allocation (pinned by an allocation-counting
//     test).
//
// Cross-cutting wiring: obs::Registry metrics (service.* counters, a
// log-bucketed admit-latency histogram fed from a relaxed-atomic
// accumulator, per-shard occupancy gauges), checkpoint/restore through
// an exact byte codec (the recovery snapshot's v3 service section calls
// it), and the zonestream_admitd daemon front-end (service/daemon.h).
// See docs/SERVICE.md for the operational picture.
#ifndef ZONESTREAM_SERVICE_ADMISSION_SERVICE_H_
#define ZONESTREAM_SERVICE_ADMISSION_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/admission.h"
#include "obs/metrics.h"
#include "service/rcu.h"
#include "service/session_registry.h"

namespace zonestream::service {

// One quality-of-service class: sessions admitted under `name` are held
// to tolerance `tolerance` (delta or epsilon, per the table criterion).
struct AdmissionClassConfig {
  // Metric-safe segment ([a-z0-9_], non-empty): appears in gauge names.
  std::string name;
  double tolerance = 0.0;
};

struct AdmissionServiceConfig {
  // Classes, strictly ascending by tolerance (tolerance-based admission
  // resolves a request to the strictest class it satisfies).
  std::vector<AdmissionClassConfig> classes;
  // Multiplies each class's table limit: a table row bounds streams per
  // disk per round, and a server with D disks serves D phase groups, so
  // the serving limit is N_max * D (see MediaServer::EffectivePhaseLimit
  // for the degraded-mode variant that republishes a smaller scale).
  int64_t limit_scale = 1;
  SessionRegistryOptions registry;
  // Null disables observability entirely (hot path untouched).
  obs::Registry* metrics = nullptr;
};

enum class ServiceResult : uint8_t {
  kOk = 0,
  kRejectedCapacity,
  kDuplicate,
  kNotFound,
  kUnknownClass,
  kRegistryFull,
  kInvalidSession,
};

const char* ServiceResultName(ServiceResult result);

struct ServiceOutcome {
  ServiceResult result = ServiceResult::kOk;
  uint64_t session_id = 0;
  uint32_t class_index = 0;
  // Class occupancy after the operation (on success) or at the moment of
  // rejection, and the limit it was judged against.
  int64_t occupancy = 0;
  int64_t limit = 0;
};

// The immutable object behind the RCU pointer: everything the admit fast
// path needs, flattened into contiguous arrays.
struct ServingLimits {
  uint64_t version = 0;
  core::AdmissionTableSnapshot table;
  // Canonical AdmissionTable::Serialize() text of the published table
  // ("" when limits were set directly); carried for checkpointing.
  std::string table_text;
  std::vector<int64_t> class_limits;  // indexed by class
  int64_t limit_scale = 1;
};

struct ServiceClassStats {
  std::string name;
  double tolerance = 0.0;
  int64_t occupancy = 0;
  int64_t limit = 0;
};

struct ServiceStats {
  int64_t live_sessions = 0;
  uint64_t limits_version = 0;
  int64_t limit_scale = 1;
  size_t table_rows = 0;
  std::vector<ServiceClassStats> classes;
  RegistryStats registry;
};

struct ReconcileReport {
  // Per class: sessions counted in the registry, and the adjustment
  // applied to the occupancy counter (0 = no drift).
  std::vector<int64_t> counted;
  std::vector<int64_t> adjustment;
  int64_t total_drift = 0;
};

// Exact state of an AdmissionService, for checkpoint/restore. Sessions
// are ascending by id, so the encoding (and its digest) is canonical.
struct SessionRecord {
  uint64_t session_id = 0;
  uint32_t class_index = 0;
  int64_t admit_seq = 0;
};

struct AdmissionServiceState {
  uint64_t next_session_id = 1;
  int64_t next_admit_seq = 0;
  uint64_t limits_version = 0;
  int64_t limit_scale = 1;
  std::string table_text;
  std::vector<int64_t> class_limits;
  std::vector<SessionRecord> sessions;
};

// Canonical byte codec for AdmissionServiceState; the recovery snapshot
// embeds exactly these bytes as its v3 service section, and the state
// digest is the CRC-64 of them, so daemon and snapshot digests agree by
// construction.
std::string EncodeAdmissionServiceState(const AdmissionServiceState& state);
common::StatusOr<AdmissionServiceState> DecodeAdmissionServiceState(
    std::string_view bytes);
uint64_t AdmissionServiceStateDigest(const AdmissionServiceState& state);

class AdmissionService {
 public:
  static common::StatusOr<std::unique_ptr<AdmissionService>> Create(
      const AdmissionServiceConfig& config);

  ~AdmissionService();

  AdmissionService(const AdmissionService&) = delete;
  AdmissionService& operator=(const AdmissionService&) = delete;

  // --- Publication (slow path; any thread; internally serialized) ---

  // Publishes a rebuilt admission table: each class limit becomes
  // table.MaxStreams(class tolerance) * limit_scale. Readers in flight
  // keep the old snapshot; new admits see the new one.
  void PublishTable(const core::AdmissionTable& table);

  // Republishes the current table with a new scale (e.g. the media
  // server dropped to degraded mode and the per-disk limit changed).
  void PublishScale(int64_t limit_scale);

  // Directly overrides the per-class limits (no table). Size must match
  // the class count; entries must be >= 0.
  common::Status PublishLimits(const std::vector<int64_t>& limits);

  // --- Fast path (lock-free; any thread; allocation-free) ---
  // Operations on the SAME session id must be externally serialized
  // (the daemon serializes per connection); different ids may race
  // freely.

  // Admits a session into `class_index`. `session_id` 0 auto-assigns.
  ServiceOutcome Admit(uint64_t session_id, uint32_t class_index);

  // Admits into the loosest class that still satisfies the request:
  // the largest class tolerance <= `tolerance`, with equality selecting
  // the class — the same `>=` boundary contract as
  // AdmissionTable::MaxStreams. kUnknownClass when the request is
  // strictly below every class.
  ServiceOutcome AdmitByTolerance(uint64_t session_id, double tolerance);

  ServiceOutcome Teardown(uint64_t session_id);

  // VCR-style transition to another class (pause/fast-forward tiers map
  // to classes with different tolerances). Admission against the new
  // class's limit; the old slot is released only on success.
  ServiceOutcome Transition(uint64_t session_id, uint32_t new_class_index);

  // --- Introspection / maintenance (slow path) ---

  ServiceStats Stats() const;

  // Recounts occupancy from the registry and folds any drift back into
  // the counters. The relaxed counters cannot drift under correct use;
  // this is the operational safety net (run quiesced for exact zeros).
  ReconcileReport ReconcileOccupancy();

  // Periodic observability flush: drains the latency accumulator into
  // the registry histogram and refreshes the gauges. No-op without a
  // metrics registry.
  void FlushObservability();

  // --- Checkpoint/restore ---

  AdmissionServiceState ExportState() const;
  // Only valid on a service with no live sessions; rebuilds registry
  // contents, occupancy, and published limits from `state`. On failure
  // the service may be partially populated — recreate it (the recovery
  // path always restores into a freshly created service).
  common::Status RestoreState(const AdmissionServiceState& state);
  // CRC-64 of the canonical encoding of ExportState().
  uint64_t Digest() const;

  // --- Accessors ---

  size_t class_count() const { return class_tolerances_.size(); }
  const std::string& class_name(size_t i) const { return class_names_[i]; }
  double class_tolerance(size_t i) const { return class_tolerances_[i]; }
  int64_t occupancy(size_t i) const {
    return occupancy_[i].value.load(std::memory_order_relaxed);
  }
  const SessionRegistry& registry() const { return *registry_; }

  // Admit-latency quantile from the lock-free accumulator (seconds);
  // 0 when nothing was recorded. For benchmarks and stats.
  double LatencyQuantile(double q) const;
  int64_t latency_count() const {
    return latency_count_.load(std::memory_order_relaxed);
  }

 private:
  struct alignas(64) PaddedCounter {
    std::atomic<int64_t> value{0};
  };

  explicit AdmissionService(const AdmissionServiceConfig& config);

  ServiceOutcome DoAdmit(uint64_t session_id, uint32_t class_index);
  void PublishLocked(std::unique_ptr<ServingLimits> next);
  void RecordLatency(double seconds);
  void CountResult(ServiceResult result, obs::Counter* const* table);

  // Class config (immutable after Create).
  std::vector<std::string> class_names_;
  std::vector<double> class_tolerances_;  // strictly ascending

  mutable RcuDomain rcu_domain_;
  RcuPtr<ServingLimits> limits_;
  std::mutex publish_mutex_;  // serializes read-modify-publish cycles

  std::unique_ptr<SessionRegistry> registry_;
  std::unique_ptr<PaddedCounter[]> occupancy_;

  std::atomic<uint64_t> next_session_id_{SessionRegistry::kMinSessionId};
  std::atomic<int64_t> next_admit_seq_{0};
  std::atomic<uint64_t> version_counter_{0};

  // Lock-free admit-latency accumulator mirroring the obs::Histogram
  // bucket geometry; FlushObservability() drains the delta into the
  // registry histogram via Histogram::MergeState.
  std::unique_ptr<std::atomic<int64_t>[]> latency_buckets_;
  std::atomic<int64_t> latency_count_{0};
  std::atomic<int64_t> latency_sum_ns_{0};
  std::atomic<uint64_t> latency_min_bits_;
  std::atomic<uint64_t> latency_max_bits_;
  std::mutex flush_mutex_;
  std::vector<int64_t> flushed_buckets_;  // last-flushed bucket counts
  double flushed_sum_ns_ = 0.0;

  // Metrics (null when disabled). Indexed by ServiceResult where noted.
  obs::Registry* metrics_ = nullptr;
  obs::Counter* admit_requests_ = nullptr;
  obs::Counter* admit_by_result_[7] = {};
  obs::Counter* teardown_requests_ = nullptr;
  obs::Counter* teardown_by_result_[7] = {};
  obs::Counter* transition_requests_ = nullptr;
  obs::Counter* transition_by_result_[7] = {};
  obs::Counter* publishes_ = nullptr;
  obs::Counter* reconcile_runs_ = nullptr;
  obs::Counter* reconcile_drift_ = nullptr;
  obs::Histogram* latency_histogram_ = nullptr;
  obs::Gauge* live_gauge_ = nullptr;
  obs::Gauge* version_gauge_ = nullptr;
  obs::Gauge* scale_gauge_ = nullptr;
  std::vector<obs::Gauge*> class_occupancy_gauges_;
  std::vector<obs::Gauge*> class_limit_gauges_;
  std::vector<obs::Gauge*> shard_live_gauges_;
};

}  // namespace zonestream::service

#endif  // ZONESTREAM_SERVICE_ADMISSION_SERVICE_H_
