#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace zonestream::obs {

int Histogram::BucketIndexFor(double value) {
  if (!(value > 0.0)) return 0;  // <= 0 and NaN land in the underflow bucket
  const double octaves = std::log2(value / kMinValue);
  if (octaves < 0.0) return 1;
  const int index =
      1 + static_cast<int>(octaves * static_cast<double>(kBucketsPerOctave));
  return std::min(index, kNumBuckets - 1);
}

double Histogram::BucketLowerBound(int i) {
  ZS_CHECK_GE(i, 1);
  ZS_CHECK_LT(i, kNumBuckets);
  return kMinValue *
         std::exp2(static_cast<double>(i - 1) /
                   static_cast<double>(kBucketsPerOctave));
}

void Histogram::Record(double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++buckets_[BucketIndexFor(value)];
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::fmin(min_, value);
    max_ = std::fmax(max_, value);
  }
  ++count_;
  sum_ += value;
}

int64_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return count_;
}

double Histogram::QuantileLocked(double q) const {
  if (count_ == 0) return 0.0;
  const int64_t rank = std::max<int64_t>(
      1, static_cast<int64_t>(std::ceil(q * static_cast<double>(count_))));
  int64_t cumulative = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    cumulative += buckets_[i];
    if (cumulative < rank) continue;
    // Interpolate linearly inside the bucket, then clamp to the observed
    // extrema so quantiles never leave [min, max].
    double lo;
    double hi;
    if (i == 0) {
      lo = min_;
      hi = std::fmin(max_, 0.0);
    } else {
      lo = BucketLowerBound(i);
      hi = i + 1 < kNumBuckets ? BucketLowerBound(i + 1) : max_;
    }
    const double within =
        static_cast<double>(buckets_[i] - (cumulative - rank)) /
        static_cast<double>(buckets_[i]);
    const double value = lo + (hi - lo) * within;
    return std::clamp(value, min_, max_);
  }
  return max_;
}

HistogramSnapshot Histogram::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  HistogramSnapshot snapshot;
  snapshot.count = count_;
  snapshot.sum = sum_;
  snapshot.min = min_;
  snapshot.max = max_;
  snapshot.p50 = QuantileLocked(0.50);
  snapshot.p95 = QuantileLocked(0.95);
  snapshot.p99 = QuantileLocked(0.99);
  return snapshot;
}

HistogramState Histogram::ExportState() const {
  std::lock_guard<std::mutex> lock(mutex_);
  HistogramState state;
  state.buckets = buckets_;
  state.count = count_;
  state.sum = sum_;
  state.min = min_;
  state.max = max_;
  return state;
}

common::Status Histogram::ImportState(const HistogramState& state) {
  if (state.buckets.size() != static_cast<size_t>(kNumBuckets)) {
    return common::Status::InvalidArgument(
        "histogram state has wrong bucket count");
  }
  int64_t total = 0;
  for (int64_t bucket : state.buckets) {
    if (bucket < 0) {
      return common::Status::InvalidArgument(
          "histogram state has a negative bucket count");
    }
    total += bucket;
  }
  if (total != state.count || state.count < 0) {
    return common::Status::InvalidArgument(
        "histogram state count disagrees with bucket totals");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  buckets_ = state.buckets;
  count_ = state.count;
  sum_ = state.sum;
  min_ = state.min;
  max_ = state.max;
  return common::Status::Ok();
}

common::Status Histogram::MergeState(const HistogramState& delta) {
  if (delta.buckets.size() != static_cast<size_t>(kNumBuckets)) {
    return common::Status::InvalidArgument(
        "histogram delta has wrong bucket count");
  }
  int64_t total = 0;
  for (int64_t bucket : delta.buckets) {
    if (bucket < 0) {
      return common::Status::InvalidArgument(
          "histogram delta has a negative bucket count");
    }
    total += bucket;
  }
  if (total != delta.count || delta.count < 0) {
    return common::Status::InvalidArgument(
        "histogram delta count disagrees with bucket totals");
  }
  if (delta.count == 0) return common::Status::Ok();
  std::lock_guard<std::mutex> lock(mutex_);
  for (int i = 0; i < kNumBuckets; ++i) buckets_[i] += delta.buckets[i];
  if (count_ == 0) {
    min_ = delta.min;
    max_ = delta.max;
  } else {
    min_ = std::fmin(min_, delta.min);
    max_ = std::fmax(max_, delta.max);
  }
  count_ += delta.count;
  sum_ += delta.sum;
  return common::Status::Ok();
}

bool Registry::IsValidName(const std::string& name) {
  if (name.empty() || name.front() == '.' || name.back() == '.') return false;
  bool prev_dot = false;
  for (char c : name) {
    if (c == '.') {
      if (prev_dot) return false;
      prev_dot = true;
      continue;
    }
    prev_dot = false;
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '_';
    if (!ok) return false;
  }
  return true;
}

Counter* Registry::GetCounter(const std::string& name) {
  ZS_CHECK(IsValidName(name));
  std::lock_guard<std::mutex> lock(mutex_);
  ZS_CHECK(gauges_.find(name) == gauges_.end());
  ZS_CHECK(histograms_.find(name) == histograms_.end());
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* Registry::GetGauge(const std::string& name) {
  ZS_CHECK(IsValidName(name));
  std::lock_guard<std::mutex> lock(mutex_);
  ZS_CHECK(counters_.find(name) == counters_.end());
  ZS_CHECK(histograms_.find(name) == histograms_.end());
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* Registry::GetHistogram(const std::string& name) {
  ZS_CHECK(IsValidName(name));
  std::lock_guard<std::mutex> lock(mutex_);
  ZS_CHECK(counters_.find(name) == counters_.end());
  ZS_CHECK(gauges_.find(name) == gauges_.end());
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

RegistrySnapshot Registry::Snapshot() const {
  // Collect the stable metric pointers under the registry lock, then read
  // each metric with its own synchronization; std::map iteration already
  // yields names in sorted order.
  std::vector<std::pair<std::string, const Counter*>> counters;
  std::vector<std::pair<std::string, const Gauge*>> gauges;
  std::vector<std::pair<std::string, const Histogram*>> histograms;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    counters.reserve(counters_.size());
    for (const auto& [name, counter] : counters_) {
      counters.emplace_back(name, counter.get());
    }
    gauges.reserve(gauges_.size());
    for (const auto& [name, gauge] : gauges_) {
      gauges.emplace_back(name, gauge.get());
    }
    histograms.reserve(histograms_.size());
    for (const auto& [name, histogram] : histograms_) {
      histograms.emplace_back(name, histogram.get());
    }
  }
  RegistrySnapshot snapshot;
  snapshot.counters.reserve(counters.size());
  for (const auto& [name, counter] : counters) {
    snapshot.counters.emplace_back(name, counter->value());
  }
  snapshot.gauges.reserve(gauges.size());
  for (const auto& [name, gauge] : gauges) {
    snapshot.gauges.emplace_back(name, gauge->value());
  }
  snapshot.histograms.reserve(histograms.size());
  for (const auto& [name, histogram] : histograms) {
    snapshot.histograms.emplace_back(name, histogram->Snapshot());
  }
  return snapshot;
}

RegistryState Registry::ExportState() const {
  // Same two-phase structure as Snapshot(): stable pointers under the
  // registry lock, then per-metric reads under each metric's own
  // synchronization.
  std::vector<std::pair<std::string, const Counter*>> counters;
  std::vector<std::pair<std::string, const Gauge*>> gauges;
  std::vector<std::pair<std::string, const Histogram*>> histograms;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    counters.reserve(counters_.size());
    for (const auto& [name, counter] : counters_) {
      counters.emplace_back(name, counter.get());
    }
    gauges.reserve(gauges_.size());
    for (const auto& [name, gauge] : gauges_) {
      gauges.emplace_back(name, gauge.get());
    }
    histograms.reserve(histograms_.size());
    for (const auto& [name, histogram] : histograms_) {
      histograms.emplace_back(name, histogram.get());
    }
  }
  RegistryState state;
  state.counters.reserve(counters.size());
  for (const auto& [name, counter] : counters) {
    state.counters.emplace_back(name, counter->value());
  }
  state.gauges.reserve(gauges.size());
  for (const auto& [name, gauge] : gauges) {
    state.gauges.emplace_back(name, gauge->value());
  }
  state.histograms.reserve(histograms.size());
  for (const auto& [name, histogram] : histograms) {
    state.histograms.emplace_back(name, histogram->ExportState());
  }
  return state;
}

common::Status Registry::ImportState(const RegistryState& state) {
  // Validate every name and its kind before mutating anything, so a
  // corrupt state never half-restores the registry. (Get* ZS_CHECKs on a
  // kind conflict; restore must reject, not abort.)
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [name, value] : state.counters) {
      (void)value;
      if (!IsValidName(name)) {
        return common::Status::InvalidArgument(
            "registry state has invalid counter name '" + name + "'");
      }
      if (gauges_.count(name) != 0 || histograms_.count(name) != 0) {
        return common::Status::InvalidArgument(
            "registry state counter '" + name +
            "' is already registered as another metric kind");
      }
    }
    for (const auto& [name, value] : state.gauges) {
      (void)value;
      if (!IsValidName(name)) {
        return common::Status::InvalidArgument(
            "registry state has invalid gauge name '" + name + "'");
      }
      if (counters_.count(name) != 0 || histograms_.count(name) != 0) {
        return common::Status::InvalidArgument(
            "registry state gauge '" + name +
            "' is already registered as another metric kind");
      }
    }
    for (const auto& [name, histogram] : state.histograms) {
      (void)histogram;
      if (!IsValidName(name)) {
        return common::Status::InvalidArgument(
            "registry state has invalid histogram name '" + name + "'");
      }
      if (counters_.count(name) != 0 || gauges_.count(name) != 0) {
        return common::Status::InvalidArgument(
            "registry state histogram '" + name +
            "' is already registered as another metric kind");
      }
    }
  }
  // Validate histogram payloads against a scratch instance before any
  // restore reaches a live metric.
  for (const auto& [name, histogram] : state.histograms) {
    Histogram scratch;
    if (auto status = scratch.ImportState(histogram); !status.ok()) {
      return common::Status::InvalidArgument("registry state histogram '" +
                                             name + "': " + status.message());
    }
  }
  for (const auto& [name, value] : state.counters) {
    GetCounter(name)->RestoreValue(value);
  }
  for (const auto& [name, value] : state.gauges) {
    GetGauge(name)->Set(value);
  }
  for (const auto& [name, histogram] : state.histograms) {
    auto status = GetHistogram(name)->ImportState(histogram);
    ZS_CHECK(status.ok());  // payload validated above
  }
  return common::Status::Ok();
}

}  // namespace zonestream::obs
