#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace zonestream::obs {

int Histogram::BucketIndex(double value) const {
  if (!(value > 0.0)) return 0;  // <= 0 and NaN land in the underflow bucket
  const double octaves = std::log2(value / kMinValue);
  if (octaves < 0.0) return 1;
  const int index =
      1 + static_cast<int>(octaves * static_cast<double>(kBucketsPerOctave));
  return std::min(index, kNumBuckets - 1);
}

double Histogram::BucketLowerBound(int i) {
  ZS_CHECK_GE(i, 1);
  ZS_CHECK_LT(i, kNumBuckets);
  return kMinValue *
         std::exp2(static_cast<double>(i - 1) /
                   static_cast<double>(kBucketsPerOctave));
}

void Histogram::Record(double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++buckets_[BucketIndex(value)];
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::fmin(min_, value);
    max_ = std::fmax(max_, value);
  }
  ++count_;
  sum_ += value;
}

int64_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return count_;
}

double Histogram::QuantileLocked(double q) const {
  if (count_ == 0) return 0.0;
  const int64_t rank = std::max<int64_t>(
      1, static_cast<int64_t>(std::ceil(q * static_cast<double>(count_))));
  int64_t cumulative = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    cumulative += buckets_[i];
    if (cumulative < rank) continue;
    // Interpolate linearly inside the bucket, then clamp to the observed
    // extrema so quantiles never leave [min, max].
    double lo;
    double hi;
    if (i == 0) {
      lo = min_;
      hi = std::fmin(max_, 0.0);
    } else {
      lo = BucketLowerBound(i);
      hi = i + 1 < kNumBuckets ? BucketLowerBound(i + 1) : max_;
    }
    const double within =
        static_cast<double>(buckets_[i] - (cumulative - rank)) /
        static_cast<double>(buckets_[i]);
    const double value = lo + (hi - lo) * within;
    return std::clamp(value, min_, max_);
  }
  return max_;
}

HistogramSnapshot Histogram::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  HistogramSnapshot snapshot;
  snapshot.count = count_;
  snapshot.sum = sum_;
  snapshot.min = min_;
  snapshot.max = max_;
  snapshot.p50 = QuantileLocked(0.50);
  snapshot.p95 = QuantileLocked(0.95);
  snapshot.p99 = QuantileLocked(0.99);
  return snapshot;
}

bool Registry::IsValidName(const std::string& name) {
  if (name.empty() || name.front() == '.' || name.back() == '.') return false;
  bool prev_dot = false;
  for (char c : name) {
    if (c == '.') {
      if (prev_dot) return false;
      prev_dot = true;
      continue;
    }
    prev_dot = false;
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '_';
    if (!ok) return false;
  }
  return true;
}

Counter* Registry::GetCounter(const std::string& name) {
  ZS_CHECK(IsValidName(name));
  std::lock_guard<std::mutex> lock(mutex_);
  ZS_CHECK(gauges_.find(name) == gauges_.end());
  ZS_CHECK(histograms_.find(name) == histograms_.end());
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* Registry::GetGauge(const std::string& name) {
  ZS_CHECK(IsValidName(name));
  std::lock_guard<std::mutex> lock(mutex_);
  ZS_CHECK(counters_.find(name) == counters_.end());
  ZS_CHECK(histograms_.find(name) == histograms_.end());
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* Registry::GetHistogram(const std::string& name) {
  ZS_CHECK(IsValidName(name));
  std::lock_guard<std::mutex> lock(mutex_);
  ZS_CHECK(counters_.find(name) == counters_.end());
  ZS_CHECK(gauges_.find(name) == gauges_.end());
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

RegistrySnapshot Registry::Snapshot() const {
  // Collect the stable metric pointers under the registry lock, then read
  // each metric with its own synchronization; std::map iteration already
  // yields names in sorted order.
  std::vector<std::pair<std::string, const Counter*>> counters;
  std::vector<std::pair<std::string, const Gauge*>> gauges;
  std::vector<std::pair<std::string, const Histogram*>> histograms;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    counters.reserve(counters_.size());
    for (const auto& [name, counter] : counters_) {
      counters.emplace_back(name, counter.get());
    }
    gauges.reserve(gauges_.size());
    for (const auto& [name, gauge] : gauges_) {
      gauges.emplace_back(name, gauge.get());
    }
    histograms.reserve(histograms_.size());
    for (const auto& [name, histogram] : histograms_) {
      histograms.emplace_back(name, histogram.get());
    }
  }
  RegistrySnapshot snapshot;
  snapshot.counters.reserve(counters.size());
  for (const auto& [name, counter] : counters) {
    snapshot.counters.emplace_back(name, counter->value());
  }
  snapshot.gauges.reserve(gauges.size());
  for (const auto& [name, gauge] : gauges) {
    snapshot.gauges.emplace_back(name, gauge->value());
  }
  snapshot.histograms.reserve(histograms.size());
  for (const auto& [name, histogram] : histograms) {
    snapshot.histograms.emplace_back(name, histogram->Snapshot());
  }
  return snapshot;
}

}  // namespace zonestream::obs
