#include "obs/export.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "common/table_printer.h"

namespace zonestream::obs {

namespace {

// %.17g round-trips every finite double; JSON has no inf/nan literals, so
// those serialize as null (the exporters never produce them in practice).
std::string JsonDouble(double value) {
  if (!std::isfinite(value)) return "null";
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

std::string JsonString(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned char>(c));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::string HistogramJson(const HistogramSnapshot& h) {
  std::string out = "{";
  out += "\"count\":" + std::to_string(h.count);
  out += ",\"sum\":" + JsonDouble(h.sum);
  out += ",\"mean\":" + JsonDouble(h.mean());
  out += ",\"min\":" + JsonDouble(h.min);
  out += ",\"max\":" + JsonDouble(h.max);
  out += ",\"p50\":" + JsonDouble(h.p50);
  out += ",\"p95\":" + JsonDouble(h.p95);
  out += ",\"p99\":" + JsonDouble(h.p99);
  out += "}";
  return out;
}

common::Status WriteFile(const std::string& path, const std::string& content) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return common::Status::InvalidArgument("cannot open for writing: " + path);
  }
  const size_t written = std::fwrite(content.data(), 1, content.size(), file);
  const bool close_ok = std::fclose(file) == 0;
  if (written != content.size() || !close_ok) {
    return common::Status::Internal("short write: " + path);
  }
  return common::Status::Ok();
}

}  // namespace

std::string RegistryToJson(const RegistrySnapshot& snapshot) {
  std::string out = "{\"counters\":{";
  for (size_t i = 0; i < snapshot.counters.size(); ++i) {
    if (i > 0) out += ",";
    out += JsonString(snapshot.counters[i].first) + ":" +
           std::to_string(snapshot.counters[i].second);
  }
  out += "},\"gauges\":{";
  for (size_t i = 0; i < snapshot.gauges.size(); ++i) {
    if (i > 0) out += ",";
    out += JsonString(snapshot.gauges[i].first) + ":" +
           JsonDouble(snapshot.gauges[i].second);
  }
  out += "},\"histograms\":{";
  for (size_t i = 0; i < snapshot.histograms.size(); ++i) {
    if (i > 0) out += ",";
    out += JsonString(snapshot.histograms[i].first) + ":" +
           HistogramJson(snapshot.histograms[i].second);
  }
  out += "}}";
  return out;
}

std::string TraceEventToJson(const RoundTraceEvent& event) {
  std::string out = "{";
  out += "\"round\":" + std::to_string(event.round);
  out += ",\"source_id\":" + std::to_string(event.source_id);
  out += ",\"num_requests\":" + std::to_string(event.num_requests);
  out += ",\"service_time_s\":" + JsonDouble(event.service_time_s);
  out += ",\"seek_s\":" + JsonDouble(event.seek_s);
  out += ",\"rotation_s\":" + JsonDouble(event.rotation_s);
  out += ",\"transfer_s\":" + JsonDouble(event.transfer_s);
  out += ",\"disturbance_delay_s\":" + JsonDouble(event.disturbance_delay_s);
  out += ",\"disturbances\":" + std::to_string(event.disturbances);
  out += ",\"fault_delay_s\":" + JsonDouble(event.fault_delay_s);
  out += ",\"faulted_requests\":" + std::to_string(event.faulted_requests);
  out += ",\"glitches\":" + std::to_string(event.glitches);
  out += std::string(",\"overran\":") + (event.overran ? "true" : "false");
  out += std::string(",\"disk_failed\":") +
         (event.disk_failed ? "true" : "false");
  out += ",\"truncated_requests\":" + std::to_string(event.truncated_requests);
  out += ",\"leftover_s\":" + JsonDouble(event.leftover_s);
  out += ",\"zone_hits\":[";
  for (size_t z = 0; z < event.zone_hits.size(); ++z) {
    if (z > 0) out += ",";
    out += std::to_string(event.zone_hits[z]);
  }
  out += "]}";
  return out;
}

common::Status WriteTraceJsonLines(const std::vector<RoundTraceEvent>& events,
                                   const std::string& path) {
  std::string content;
  for (const RoundTraceEvent& event : events) {
    content += TraceEventToJson(event);
    content += '\n';
  }
  return WriteFile(path, content);
}

std::string TraceCsvHeader() {
  return "round,source_id,num_requests,service_time_s,seek_s,rotation_s,"
         "transfer_s,disturbance_delay_s,disturbances,fault_delay_s,"
         "faulted_requests,glitches,overran,disk_failed,truncated_requests,"
         "leftover_s,zone_hits";
}

std::string TraceEventToCsvRow(const RoundTraceEvent& event) {
  std::string out;
  out += std::to_string(event.round);
  out += ',' + std::to_string(event.source_id);
  out += ',' + std::to_string(event.num_requests);
  out += ',' + JsonDouble(event.service_time_s);
  out += ',' + JsonDouble(event.seek_s);
  out += ',' + JsonDouble(event.rotation_s);
  out += ',' + JsonDouble(event.transfer_s);
  out += ',' + JsonDouble(event.disturbance_delay_s);
  out += ',' + std::to_string(event.disturbances);
  out += ',' + JsonDouble(event.fault_delay_s);
  out += ',' + std::to_string(event.faulted_requests);
  out += ',' + std::to_string(event.glitches);
  out += event.overran ? ",1" : ",0";
  out += event.disk_failed ? ",1" : ",0";
  out += ',' + std::to_string(event.truncated_requests);
  out += ',' + JsonDouble(event.leftover_s);
  out += ',';
  for (size_t z = 0; z < event.zone_hits.size(); ++z) {
    if (z > 0) out += ';';
    out += std::to_string(event.zone_hits[z]);
  }
  return out;
}

common::Status WriteTraceCsv(const std::vector<RoundTraceEvent>& events,
                             const std::string& path) {
  std::string content = TraceCsvHeader();
  content += '\n';
  for (const RoundTraceEvent& event : events) {
    content += TraceEventToCsvRow(event);
    content += '\n';
  }
  return WriteFile(path, content);
}

std::string RegistryToText(const RegistrySnapshot& snapshot) {
  std::string out;
  if (!snapshot.counters.empty() || !snapshot.gauges.empty()) {
    common::TablePrinter table("Counters & gauges");
    table.SetHeader({"metric", "value"});
    for (const auto& [name, value] : snapshot.counters) {
      table.AddRow({name, std::to_string(value)});
    }
    for (const auto& [name, value] : snapshot.gauges) {
      table.AddRow({name, common::FormatDouble(value)});
    }
    out += table.ToString();
  }
  if (!snapshot.histograms.empty()) {
    if (!out.empty()) out += '\n';
    common::TablePrinter table("Histograms");
    table.SetHeader(
        {"metric", "count", "mean", "p50", "p95", "p99", "max"});
    for (const auto& [name, h] : snapshot.histograms) {
      table.AddRow({name, std::to_string(h.count),
                    common::FormatDouble(h.mean()),
                    common::FormatDouble(h.p50), common::FormatDouble(h.p95),
                    common::FormatDouble(h.p99),
                    common::FormatDouble(h.max)});
    }
    out += table.ToString();
  }
  if (out.empty()) out = "(no metrics recorded)\n";
  return out;
}

void PrintRegistry(const RegistrySnapshot& snapshot, std::FILE* out) {
  const std::string text = RegistryToText(snapshot);
  std::fwrite(text.data(), 1, text.size(), out);
}

}  // namespace zonestream::obs
