// Bridges common::ThreadPool's built-in execution statistics into an
// obs::Registry. Lives in obs (not common) so the common layer stays free
// of upward dependencies.
#ifndef ZONESTREAM_OBS_POOL_METRICS_H_
#define ZONESTREAM_OBS_POOL_METRICS_H_

#include <string>

#include "common/thread_pool.h"
#include "obs/metrics.h"

namespace zonestream::obs {

// Installs a block observer on `pool` that records each executed block's
// wall time into the histogram `<prefix>.block_s`. Replaces any previous
// observer; detach with pool->SetBlockObserver(nullptr). The registry
// must outlive the pool's use of the observer.
void AttachThreadPoolMetrics(common::ThreadPool* pool, Registry* registry,
                             const std::string& prefix);

// Copies the pool's cumulative ThreadPoolStats into gauges under
// `prefix`: parallel_loops, blocks_executed, queue_depth,
// max_queue_depth, total_block_time_s, max_block_time_s. Call whenever a
// fresh snapshot is wanted (gauges are last-write-wins).
void PublishThreadPoolStats(const common::ThreadPool& pool,
                            Registry* registry, const std::string& prefix);

}  // namespace zonestream::obs

#endif  // ZONESTREAM_OBS_POOL_METRICS_H_
