#include "obs/round_trace.h"

#include <utility>

#include "common/check.h"

namespace zonestream::obs {

double RoundTraceImbalance(const RoundTraceEvent& event) {
  return event.service_time_s -
         (event.seek_s + event.rotation_s + event.transfer_s +
          event.disturbance_delay_s + event.fault_delay_s);
}

RoundTraceRecorder::RoundTraceRecorder(size_t capacity)
    : capacity_(capacity) {
  ZS_CHECK_GT(capacity, 0u);
}

void RoundTraceRecorder::Record(RoundTraceEvent event) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(event));
}

std::vector<RoundTraceEvent> RoundTraceRecorder::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

size_t RoundTraceRecorder::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

int64_t RoundTraceRecorder::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

void RoundTraceRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
  dropped_ = 0;
}

}  // namespace zonestream::obs
