// Structured per-round trace events — the measured-trace side of the
// paper's analytic bounds.
//
// Every simulator or server round appends one RoundTraceEvent per disk
// sweep: where the round's time went (seek / rotation / transfer /
// injected disturbance), how many requests hit which zones, and whether
// the round overran its deadline. The exporters in obs/export.h turn the
// recorded stream into JSON-lines or CSV for offline analysis against the
// Chernoff bounds.
#ifndef ZONESTREAM_OBS_ROUND_TRACE_H_
#define ZONESTREAM_OBS_ROUND_TRACE_H_

#include <cstdint>
#include <mutex>
#include <vector>

namespace zonestream::obs {

// One disk sweep. The decomposition identity
//   service_time_s == seek_s + rotation_s + transfer_s
//                     + disturbance_delay_s + fault_delay_s
// holds to floating-point roundoff for every event the simulators emit —
// including deadline-truncated rounds, where every component is charged at
// its truncated length (RoundTraceImbalance measures the residual).
struct RoundTraceEvent {
  int64_t round = 0;      // round index within the emitting source
  int32_t source_id = 0;  // disk index / replication id (emitter-defined)
  int32_t num_requests = 0;
  double service_time_s = 0.0;
  double seek_s = 0.0;  // includes the return seek under one-directional SCAN
  double rotation_s = 0.0;
  double transfer_s = 0.0;
  double disturbance_delay_s = 0.0;  // injected i.i.d. disturbance delay
  int32_t disturbances = 0;          // requests that drew an injected delay
  double fault_delay_s = 0.0;        // delay injected by fault:: models
  int32_t faulted_requests = 0;      // requests that drew a fault delay
  int32_t glitches = 0;              // requests completing past the deadline
  bool overran = false;              // deadline missed (see emitter docs)
  bool disk_failed = false;          // whole-disk fault: nothing served
  int32_t truncated_requests = 0;    // requests cut/skipped at the deadline
  double leftover_s = 0.0;           // idle time until the round boundary
  std::vector<int32_t> zone_hits;    // requests per zone, indexed by zone id
};

// Residual of the decomposition identity, service_time_s minus the summed
// components; |imbalance| should sit at floating-point roundoff for every
// simulator-emitted event (asserted by the trace tests).
double RoundTraceImbalance(const RoundTraceEvent& event);

// Bounded, thread-safe sink of RoundTraceEvents. When the capacity is
// reached new events are counted as dropped rather than overwriting old
// ones, so a snapshot is always a deterministic prefix of the run.
class RoundTraceRecorder {
 public:
  static constexpr size_t kDefaultCapacity = 1 << 20;

  explicit RoundTraceRecorder(size_t capacity = kDefaultCapacity);

  RoundTraceRecorder(const RoundTraceRecorder&) = delete;
  RoundTraceRecorder& operator=(const RoundTraceRecorder&) = delete;

  // Appends one event (dropped once `capacity` events are stored).
  void Record(RoundTraceEvent event);

  // Copy of all recorded events, in record order.
  std::vector<RoundTraceEvent> Snapshot() const;

  size_t size() const;
  int64_t dropped() const;

  // Discards all recorded events (the drop counter resets too).
  void Clear();

 private:
  mutable std::mutex mutex_;
  size_t capacity_;
  std::vector<RoundTraceEvent> events_;
  int64_t dropped_ = 0;
};

}  // namespace zonestream::obs

#endif  // ZONESTREAM_OBS_ROUND_TRACE_H_
