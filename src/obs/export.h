// Exporters for the observability subsystem: registry snapshots as JSON
// or aligned text (TablePrinter), round traces as JSON-lines or CSV.
//
// Formats (documented in docs/OBSERVABILITY.md):
//   * RegistryToJson: one JSON object {"counters": {...}, "gauges": {...},
//     "histograms": {name: {count, sum, mean, min, max, p50, p95, p99}}}.
//   * Trace JSON-lines: one JSON object per event per line.
//   * Trace CSV: fixed header; zone_hits flattened as "z0;z1;...".
// Doubles are serialized with %.17g, so every finite value round-trips.
#ifndef ZONESTREAM_OBS_EXPORT_H_
#define ZONESTREAM_OBS_EXPORT_H_

#include <cstdio>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "obs/round_trace.h"

namespace zonestream::obs {

// --- JSON ------------------------------------------------------------------

// Serializes a registry snapshot as a single JSON object.
std::string RegistryToJson(const RegistrySnapshot& snapshot);

// Serializes one trace event as a single-line JSON object (no newline).
std::string TraceEventToJson(const RoundTraceEvent& event);

// Writes one JSON object per line. Overwrites `path`.
common::Status WriteTraceJsonLines(const std::vector<RoundTraceEvent>& events,
                                   const std::string& path);

// --- CSV -------------------------------------------------------------------

// Header row matching TraceEventToCsvRow (no newline).
std::string TraceCsvHeader();

// One CSV data row (no newline).
std::string TraceEventToCsvRow(const RoundTraceEvent& event);

// Writes header + one row per event. Overwrites `path`.
common::Status WriteTraceCsv(const std::vector<RoundTraceEvent>& events,
                             const std::string& path);

// --- Text ------------------------------------------------------------------

// Renders the snapshot as aligned TablePrinter tables (counters & gauges,
// then histograms), suitable for terminal output.
std::string RegistryToText(const RegistrySnapshot& snapshot);

// Convenience: RegistryToText straight to a stream.
void PrintRegistry(const RegistrySnapshot& snapshot, std::FILE* out = stdout);

}  // namespace zonestream::obs

#endif  // ZONESTREAM_OBS_EXPORT_H_
