// Lightweight, thread-safe runtime metrics for the serving/validation
// stack: counters, gauges, log-bucketed latency histograms, and a
// hierarchical Registry that owns them.
//
// Design constraints, in order:
//   1. Hot-path cost must be negligible next to a simulated round
//      (~microseconds): Counter/Gauge are single relaxed atomics and
//      Histogram::Record is one short critical section.
//   2. Everything is observable while the workload is still running:
//      Snapshot() is consistent per metric (not across metrics), which is
//      all the exporters need.
//   3. Instrumented code takes non-owning `Registry*` pointers and treats
//      null as "observability disabled", so the simulators and servers pay
//      nothing when nobody is watching.
//
// Metric names are hierarchical dot-paths ("sim.round.service_time_s");
// the exporters (obs/export.h) group on the first component.
#ifndef ZONESTREAM_OBS_METRICS_H_
#define ZONESTREAM_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace zonestream::obs {

// Monotonic event count. Thread-safe; relaxed ordering (metrics are
// advisory, never synchronization).
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Increment(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

  // Checkpoint restore only: overwrites the count. Not for hot paths.
  void RestoreValue(int64_t value) {
    value_.store(value, std::memory_order_relaxed);
  }

 private:
  std::atomic<int64_t> value_{0};
};

// Last-write-wins instantaneous value (queue depth, active streams).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta) {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Point-in-time view of a Histogram.
struct HistogramSnapshot {
  int64_t count = 0;
  double sum = 0.0;  // exact running sum, so sum/count is the exact mean
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;

  double mean() const { return count > 0 ? sum / static_cast<double>(count) : 0.0; }
};

// Exact state of one Histogram, for checkpoint/restore. Unlike
// HistogramSnapshot (whose quantiles are derived and lossy), this carries
// the raw bucket counts, so restoring it reproduces every future
// Snapshot() bit-identically. Buckets are run-length friendly via the
// sparse (index, count) encoding used by the snapshot codec; in memory
// the vector is dense with Histogram::kNumBuckets entries.
struct HistogramState {
  std::vector<int64_t> buckets;
  int64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
};

// Log-bucketed histogram for positive durations/sizes. Bucket boundaries
// grow geometrically (kBucketsPerOctave buckets per power of two), giving
// <= ~9% relative quantile error over [kMinValue, kMaxValue); values at or
// below zero land in a dedicated underflow bucket and out-of-range values
// clamp into the edge buckets. The exact sum/min/max are tracked alongside
// the buckets, so mean() is exact even though quantiles are bucketed.
class Histogram {
 public:
  static constexpr int kBucketsPerOctave = 8;
  static constexpr double kMinValue = 1e-9;  // 1 ns
  static constexpr double kMaxValue = 1e5;   // ~28 h
  static constexpr int kOctaves = 47;        // covers [1e-9, ~1.4e5)
  static constexpr int kNumBuckets = kOctaves * kBucketsPerOctave + 1;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  // Records one observation. Thread-safe.
  void Record(double value);

  // Consistent snapshot with interpolated p50/p95/p99. Thread-safe.
  HistogramSnapshot Snapshot() const;

  int64_t count() const;

  // Exact bucket-level state capture/restore. ImportState rejects a
  // wrong-size bucket vector, negative counts, or a total that does not
  // match `count`. Thread-safe.
  HistogramState ExportState() const;
  common::Status ImportState(const HistogramState& state);

  // Adds `delta` (a partial HistogramState with the same validity rules
  // as ImportState) INTO the current state instead of replacing it.
  // Lets lock-free mirrors (e.g. the admission service's relaxed-atomic
  // latency accumulator, which shares this bucket geometry via
  // BucketIndexFor) drain periodically into a registry histogram without
  // ever taking this mutex on their hot path. `delta.min`/`delta.max`
  // only tighten the extrema and are ignored when delta.count == 0.
  // Thread-safe; fails without side effects on malformed input.
  common::Status MergeState(const HistogramState& delta);

  // Lower edge of bucket `i` (i >= 1; bucket 0 is the underflow bucket).
  static double BucketLowerBound(int i);

  // The bucket `value` lands in: pure function of the class constants,
  // public so external accumulators can mirror the bucket geometry.
  static int BucketIndexFor(double value);

 private:
  double QuantileLocked(double q) const;  // requires mutex_ held

  mutable std::mutex mutex_;
  std::vector<int64_t> buckets_ = std::vector<int64_t>(kNumBuckets, 0);
  int64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Point-in-time view of every metric in a Registry, sorted by name.
struct RegistrySnapshot {
  std::vector<std::pair<std::string, int64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
};

// Exact state of a whole Registry, for checkpoint/restore. Same shape as
// RegistrySnapshot but with lossless histograms.
struct RegistryState {
  std::vector<std::pair<std::string, int64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramState>> histograms;
};

// Owns metrics keyed by hierarchical dot-path names. Get*() registers on
// first use and returns a pointer that stays valid for the Registry's
// lifetime, so instrumented code resolves each metric once and then works
// lock-free. A name can hold exactly one metric kind; requesting it as
// another kind is a programming error (ZS_CHECK). Thread-safe.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // Valid names are non-empty dot-separated paths of [a-z0-9_] segments.
  static bool IsValidName(const std::string& name);

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  RegistrySnapshot Snapshot() const;

  // Checkpoint support. ExportState is a lossless Snapshot; ImportState
  // registers any missing metrics and overwrites the values of existing
  // ones (metrics present in the registry but absent from the state are
  // left untouched — the caller restores into a freshly instrumented
  // registry, where handles already exist at their zero values). Fails
  // without side effects on an invalid name or a name already registered
  // as a different metric kind; fails per-histogram on malformed bucket
  // state.
  RegistryState ExportState() const;
  common::Status ImportState(const RegistryState& state);

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace zonestream::obs

#endif  // ZONESTREAM_OBS_METRICS_H_
