// RAII wall-clock timer that records its lifetime into an obs::Histogram.
//
// A null histogram disables the timer entirely (no clock reads), so call
// sites can pass `registry ? registry->GetHistogram(...) : nullptr` and
// stay free when observability is off.
#ifndef ZONESTREAM_OBS_SCOPED_TIMER_H_
#define ZONESTREAM_OBS_SCOPED_TIMER_H_

#include <chrono>

#include "obs/metrics.h"

namespace zonestream::obs {

class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram) : histogram_(histogram) {
    if (histogram_ != nullptr) {
      start_ = std::chrono::steady_clock::now();
    }
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    if (histogram_ == nullptr) return;
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start_;
    histogram_->Record(elapsed.count());
  }

 private:
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace zonestream::obs

#endif  // ZONESTREAM_OBS_SCOPED_TIMER_H_
