#include "obs/pool_metrics.h"

#include "common/check.h"

namespace zonestream::obs {

void AttachThreadPoolMetrics(common::ThreadPool* pool, Registry* registry,
                             const std::string& prefix) {
  ZS_CHECK(pool != nullptr);
  ZS_CHECK(registry != nullptr);
  Histogram* block_latency = registry->GetHistogram(prefix + ".block_s");
  pool->SetBlockObserver([block_latency](double block_seconds) {
    block_latency->Record(block_seconds);
  });
}

void PublishThreadPoolStats(const common::ThreadPool& pool,
                            Registry* registry, const std::string& prefix) {
  ZS_CHECK(registry != nullptr);
  const common::ThreadPoolStats stats = pool.Stats();
  registry->GetGauge(prefix + ".parallel_loops")
      ->Set(static_cast<double>(stats.parallel_loops));
  registry->GetGauge(prefix + ".blocks_executed")
      ->Set(static_cast<double>(stats.blocks_executed));
  registry->GetGauge(prefix + ".queue_depth")
      ->Set(static_cast<double>(stats.current_queue_depth));
  registry->GetGauge(prefix + ".max_queue_depth")
      ->Set(static_cast<double>(stats.max_queue_depth));
  registry->GetGauge(prefix + ".total_block_time_s")
      ->Set(stats.total_block_time_s);
  registry->GetGauge(prefix + ".max_block_time_s")
      ->Set(stats.max_block_time_s);
}

}  // namespace zonestream::obs
