// Unit conventions shared across zonestream.
//
// The paper's arithmetic only reproduces with decimal kilobytes (the §4
// worst-case example T_trans^max = 71.7 ms requires 1 KB = 1000 bytes), so
// all byte quantities use decimal SI prefixes. Times are double seconds,
// rates are bytes per second, disk distances are cylinder counts.
#ifndef ZONESTREAM_COMMON_UNITS_H_
#define ZONESTREAM_COMMON_UNITS_H_

#include <cstdint>

namespace zonestream::common {

// Bytes per decimal kilobyte/megabyte/gigabyte.
inline constexpr double kKilobyte = 1000.0;
inline constexpr double kMegabyte = 1000.0 * 1000.0;
inline constexpr double kGigabyte = 1000.0 * 1000.0 * 1000.0;

// Seconds per millisecond/microsecond.
inline constexpr double kMillisecond = 1e-3;
inline constexpr double kMicrosecond = 1e-6;

// Converts a byte count to decimal kilobytes / megabytes.
constexpr double BytesToKilobytes(double bytes) { return bytes / kKilobyte; }
constexpr double BytesToMegabytes(double bytes) { return bytes / kMegabyte; }

// Converts seconds to milliseconds and back.
constexpr double SecondsToMillis(double seconds) {
  return seconds / kMillisecond;
}
constexpr double MillisToSeconds(double millis) { return millis * kMillisecond; }

}  // namespace zonestream::common

#endif  // ZONESTREAM_COMMON_UNITS_H_
