// Lightweight assertion macros used across zonestream.
//
// The library does not use exceptions. Internal invariant violations and
// programmer errors abort the process with a diagnostic; recoverable
// conditions are reported through common::Status (see status.h).
#ifndef ZONESTREAM_COMMON_CHECK_H_
#define ZONESTREAM_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace zonestream::common {

// Prints a fatal diagnostic and aborts. Used by the ZS_CHECK macros; callers
// should prefer the macros so file/line information is captured.
[[noreturn]] inline void FatalCheckFailure(const char* file, int line,
                                           const char* condition) {
  std::fprintf(stderr, "[zonestream] CHECK failed at %s:%d: %s\n", file, line,
               condition);
  std::fflush(stderr);
  std::abort();
}

}  // namespace zonestream::common

// Aborts the process when `condition` is false. Enabled in all build modes:
// the cost is negligible for this library and silent corruption of an
// admission decision is worse than a crash.
#define ZS_CHECK(condition)                                               \
  do {                                                                    \
    if (!(condition)) {                                                   \
      ::zonestream::common::FatalCheckFailure(__FILE__, __LINE__,         \
                                              #condition);                \
    }                                                                     \
  } while (false)

#define ZS_CHECK_GT(a, b) ZS_CHECK((a) > (b))
#define ZS_CHECK_GE(a, b) ZS_CHECK((a) >= (b))
#define ZS_CHECK_LT(a, b) ZS_CHECK((a) < (b))
#define ZS_CHECK_LE(a, b) ZS_CHECK((a) <= (b))
#define ZS_CHECK_EQ(a, b) ZS_CHECK((a) == (b))
#define ZS_CHECK_NE(a, b) ZS_CHECK((a) != (b))

#endif  // ZONESTREAM_COMMON_CHECK_H_
