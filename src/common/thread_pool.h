// Deterministic parallel-for execution for the evaluation pipeline.
//
// The analytic model sweeps (admission tables over tolerance grids, array
// plans over disk groups) and the Monte Carlo validation batches are all
// embarrassingly parallel, but every result in this repo must be exactly
// reproducible. ThreadPool is therefore deliberately work-stealing-free:
// ParallelFor splits [0, count) into contiguous blocks whose boundaries
// are a pure function of (count, num_threads()) — never of timing — and
// callers keep all mutable state per-index. Any computation whose
// iterations are independent is then bit-identical at every thread count,
// including fully serial execution.
#ifndef ZONESTREAM_COMMON_THREAD_POOL_H_
#define ZONESTREAM_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace zonestream::common {

// Cumulative execution statistics of a ThreadPool (see Stats()). A
// "block" is one contiguous chunk of a ParallelFor partition — the unit a
// thread executes; serial/nested loops count as a single block.
struct ThreadPoolStats {
  int64_t parallel_loops = 0;    // ParallelFor calls that ran iterations
  int64_t blocks_executed = 0;   // blocks run (workers + calling thread)
  int64_t current_queue_depth = 0;  // blocks queued but not yet started
  int64_t max_queue_depth = 0;      // peak of current_queue_depth
  double total_block_time_s = 0.0;  // summed block wall time
  double max_block_time_s = 0.0;    // longest single block
};

// Fixed-size pool of worker threads. Thread-safe; one pool may serve
// concurrent ParallelFor calls (each call blocks until its own iterations
// finish). Nested ParallelFor calls from inside a parallel region execute
// serially inline, so composite pipelines (e.g. an array plan whose
// per-group work builds admission tables) cannot deadlock or oversubscribe.
class ThreadPool {
 public:
  // Spawns num_threads - 1 workers (the calling thread participates in
  // every ParallelFor). num_threads <= 0 selects DefaultThreads().
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Number of threads that cooperate on a ParallelFor (workers + caller).
  int num_threads() const { return static_cast<int>(workers_.size()) + 1; }

  // Runs body(i) for every i in [0, count) and returns when all
  // iterations have finished. Iterations are statically partitioned into
  // num_threads() contiguous blocks; `body` must be safe to call
  // concurrently for distinct i. The first exception thrown by `body` (if
  // any) is rethrown on the calling thread after the loop drains.
  void ParallelFor(int64_t count, const std::function<void(int64_t)>& body);

  // Block-granular variant: body(begin, end) receives each contiguous
  // block of the same static partition ParallelFor uses, so callers can
  // hoist per-thread state (a reusable simulator, a scratch arena) out
  // of the per-index loop. Iteration results must still depend only on
  // the index, never on the block boundaries, to keep every thread count
  // bit-identical.
  void ParallelForBlocks(int64_t count,
                         const std::function<void(int64_t, int64_t)>& body);

  // std::thread::hardware_concurrency(), clamped to >= 1 and overridable
  // with the ZONESTREAM_THREADS environment variable.
  static int DefaultThreads();

  // Lazily constructed process-wide pool with DefaultThreads() threads.
  static ThreadPool& Global();

  // Snapshot of the cumulative execution statistics. Thread-safe; may be
  // called while ParallelFor loops are in flight.
  ThreadPoolStats Stats() const;

  // Installs a hook invoked (outside all pool locks) with each block's
  // wall time in seconds — obs::AttachThreadPoolMetrics uses this to feed
  // a latency histogram. Pass nullptr to detach. The observer must be
  // thread-safe; it runs on worker threads and on ParallelFor callers.
  using BlockObserver = std::function<void(double block_seconds)>;
  void SetBlockObserver(BlockObserver observer);

 private:
  void WorkerLoop();
  // Times body(begin, end), updates stats, notifies the observer.
  void RunStatBlock(const std::function<void(int64_t, int64_t)>& body,
                    int64_t begin, int64_t end);

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;

  // Statistics and observer, guarded separately so Stats() and the
  // per-block bookkeeping never contend with the work queue.
  mutable std::mutex stats_mutex_;
  ThreadPoolStats stats_;
  std::shared_ptr<const BlockObserver> observer_;
};

// Convenience wrapper: runs body over [0, count) on `pool`, or on
// ThreadPool::Global() when pool is null.
void ParallelFor(int64_t count, const std::function<void(int64_t)>& body,
                 ThreadPool* pool = nullptr);

// Block-granular convenience wrapper (see ThreadPool::ParallelForBlocks).
void ParallelForBlocks(int64_t count,
                       const std::function<void(int64_t, int64_t)>& body,
                       ThreadPool* pool = nullptr);

}  // namespace zonestream::common

#endif  // ZONESTREAM_COMMON_THREAD_POOL_H_
