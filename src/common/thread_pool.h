// Deterministic parallel-for execution for the evaluation pipeline.
//
// The analytic model sweeps (admission tables over tolerance grids, array
// plans over disk groups) and the Monte Carlo validation batches are all
// embarrassingly parallel, but every result in this repo must be exactly
// reproducible. ThreadPool is therefore deliberately work-stealing-free:
// ParallelFor splits [0, count) into contiguous blocks whose boundaries
// are a pure function of (count, num_threads()) — never of timing — and
// callers keep all mutable state per-index. Any computation whose
// iterations are independent is then bit-identical at every thread count,
// including fully serial execution.
#ifndef ZONESTREAM_COMMON_THREAD_POOL_H_
#define ZONESTREAM_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace zonestream::common {

// Fixed-size pool of worker threads. Thread-safe; one pool may serve
// concurrent ParallelFor calls (each call blocks until its own iterations
// finish). Nested ParallelFor calls from inside a parallel region execute
// serially inline, so composite pipelines (e.g. an array plan whose
// per-group work builds admission tables) cannot deadlock or oversubscribe.
class ThreadPool {
 public:
  // Spawns num_threads - 1 workers (the calling thread participates in
  // every ParallelFor). num_threads <= 0 selects DefaultThreads().
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Number of threads that cooperate on a ParallelFor (workers + caller).
  int num_threads() const { return static_cast<int>(workers_.size()) + 1; }

  // Runs body(i) for every i in [0, count) and returns when all
  // iterations have finished. Iterations are statically partitioned into
  // num_threads() contiguous blocks; `body` must be safe to call
  // concurrently for distinct i. The first exception thrown by `body` (if
  // any) is rethrown on the calling thread after the loop drains.
  void ParallelFor(int64_t count, const std::function<void(int64_t)>& body);

  // std::thread::hardware_concurrency(), clamped to >= 1 and overridable
  // with the ZONESTREAM_THREADS environment variable.
  static int DefaultThreads();

  // Lazily constructed process-wide pool with DefaultThreads() threads.
  static ThreadPool& Global();

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

// Convenience wrapper: runs body over [0, count) on `pool`, or on
// ThreadPool::Global() when pool is null.
void ParallelFor(int64_t count, const std::function<void(int64_t)>& body,
                 ThreadPool* pool = nullptr);

}  // namespace zonestream::common

#endif  // ZONESTREAM_COMMON_THREAD_POOL_H_
