// Byte-level serialization primitives shared by everything that speaks
// untrusted bytes: a little-endian fixed-width writer, a sticky-error
// reader that is safe on arbitrary (truncated, bit-flipped, adversarial)
// input, and the CRC-64 used to detect corruption. The recovery snapshot
// container and the admission-service wire protocol are both built on
// these (recovery/blob.h aliases this header for source compatibility).
//
// The reader's contract is the load-bearing part: snapshot files are read
// back after crashes and protocol frames arrive from arbitrary clients,
// so every Take* operation on malformed input must return a harmless zero
// value and latch ok() == false — never read out of bounds, never
// allocate a length the input cannot back (length claims are capped by
// the bytes actually remaining), never invoke UB.
#ifndef ZONESTREAM_COMMON_BLOB_H_
#define ZONESTREAM_COMMON_BLOB_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace zonestream::common {

// CRC-64/XZ (reflected polynomial 0xC96C5795D7870F42) over `data`.
uint64_t Crc64(std::string_view data);

// Appends little-endian fixed-width values to an owned byte buffer.
class BlobWriter {
 public:
  void PutU8(uint8_t value);
  void PutU32(uint32_t value);
  void PutU64(uint64_t value);
  void PutI64(int64_t value);   // two's-complement via the u64 encoding
  void PutF64(double value);    // IEEE-754 bits via the u64 encoding
  void PutBool(bool value) { PutU8(value ? 1 : 0); }

  // u64 length prefix + raw bytes.
  void PutString(std::string_view value);

  // u64 count prefix + that many u64 words.
  void PutWords(const std::vector<uint64_t>& words);

  const std::string& data() const { return data_; }
  std::string Release() { return std::move(data_); }

 private:
  std::string data_;
};

// Consumes a byte range written by BlobWriter. All errors are sticky:
// after the first short or malformed read, every further Take* returns a
// zero value and ok() stays false.
class BlobReader {
 public:
  explicit BlobReader(std::string_view data) : data_(data) {}

  uint8_t TakeU8();
  uint32_t TakeU32();
  uint64_t TakeU64();
  int64_t TakeI64();
  double TakeF64();
  // Strict bool: rejects any byte other than 0 or 1 (a flipped bit in a
  // flag must fail the load, not silently flip behavior).
  bool TakeBool();
  std::string TakeString();
  std::vector<uint64_t> TakeWords();

  // Marks the stream failed (for semantic errors found above this layer).
  void Fail() { failed_ = true; }

  bool ok() const { return !failed_; }
  size_t remaining() const { return data_.size() - position_; }
  // True when the reader is still ok and fully consumed.
  bool AtEnd() const { return ok() && remaining() == 0; }

 private:
  // Takes `n` raw bytes; returns an empty view and latches the error when
  // fewer remain.
  std::string_view TakeBytes(size_t n);

  std::string_view data_;
  size_t position_ = 0;
  bool failed_ = false;
};

}  // namespace zonestream::common

#endif  // ZONESTREAM_COMMON_BLOB_H_
