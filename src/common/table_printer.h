// Plain-text table rendering for the reproduction harnesses.
//
// The bench binaries print the same rows/series the paper reports; this
// helper keeps the columns aligned and the formatting consistent across
// all benches.
#ifndef ZONESTREAM_COMMON_TABLE_PRINTER_H_
#define ZONESTREAM_COMMON_TABLE_PRINTER_H_

#include <cstdio>
#include <string>
#include <vector>

namespace zonestream::common {

// Accumulates rows of string cells and renders them with column-wise
// alignment. Numeric cells should be pre-formatted by the caller (see
// FormatDouble below).
class TablePrinter {
 public:
  // `title` is printed above the table; pass "" to omit.
  explicit TablePrinter(std::string title) : title_(std::move(title)) {}

  // Sets the header row. Must be called before AddRow.
  void SetHeader(std::vector<std::string> header);

  // Appends one data row; the cell count must match the header.
  void AddRow(std::vector<std::string> row);

  // Renders the table to `out` (defaults to stdout).
  void Print(std::FILE* out = stdout) const;

  // Renders the table to a string (used by tests).
  std::string ToString() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats `value` with `digits` significant digits using %g semantics.
std::string FormatDouble(double value, int digits = 6);

// Formats `value` in fixed-point with `decimals` digits after the point.
std::string FormatFixed(double value, int decimals);

// Formats a probability: fixed notation for moderate magnitudes, scientific
// for very small values, and exact "0"/"1" endpoints.
std::string FormatProbability(double p);

}  // namespace zonestream::common

#endif  // ZONESTREAM_COMMON_TABLE_PRINTER_H_
