#include "common/table_printer.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/check.h"

namespace zonestream::common {

void TablePrinter::SetHeader(std::vector<std::string> header) {
  ZS_CHECK(rows_.empty());
  header_ = std::move(header);
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  ZS_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::string out;
  if (!title_.empty()) {
    out += title_;
    out += '\n';
  }
  auto append_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out += "| ";
      out += row[c];
      out.append(widths[c] - row[c].size() + 1, ' ');
    }
    out += "|\n";
  };
  append_row(header_);
  for (size_t c = 0; c < header_.size(); ++c) {
    out += "|";
    out.append(widths[c] + 2, '-');
  }
  out += "|\n";
  for (const auto& row : rows_) append_row(row);
  return out;
}

void TablePrinter::Print(std::FILE* out) const {
  const std::string rendered = ToString();
  std::fwrite(rendered.data(), 1, rendered.size(), out);
  std::fflush(out);
}

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", digits, value);
  return buf;
}

std::string FormatFixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string FormatProbability(double p) {
  if (p == 0.0) return "0";
  if (p == 1.0) return "1";
  char buf[64];
  if (p >= 1e-4 && p < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.5f", p);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3e", p);
  }
  return buf;
}

}  // namespace zonestream::common
