#include "common/blob.h"

#include <array>
#include <bit>
#include <cstring>

namespace zonestream::common {

namespace {

// CRC-64/XZ table, built once (reflected polynomial).
constexpr uint64_t kCrc64Poly = 0xC96C5795D7870F42ULL;

std::array<uint64_t, 256> BuildCrc64Table() {
  std::array<uint64_t, 256> table{};
  for (uint64_t i = 0; i < 256; ++i) {
    uint64_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) ? (crc >> 1) ^ kCrc64Poly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

}  // namespace

uint64_t Crc64(std::string_view data) {
  static const std::array<uint64_t, 256> kTable = BuildCrc64Table();
  uint64_t crc = ~0ULL;
  for (const char c : data) {
    crc = kTable[(crc ^ static_cast<uint8_t>(c)) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

void BlobWriter::PutU8(uint8_t value) {
  data_.push_back(static_cast<char>(value));
}

void BlobWriter::PutU32(uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    data_.push_back(static_cast<char>((value >> (8 * i)) & 0xFF));
  }
}

void BlobWriter::PutU64(uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    data_.push_back(static_cast<char>((value >> (8 * i)) & 0xFF));
  }
}

void BlobWriter::PutI64(int64_t value) {
  PutU64(std::bit_cast<uint64_t>(value));
}

void BlobWriter::PutF64(double value) {
  PutU64(std::bit_cast<uint64_t>(value));
}

void BlobWriter::PutString(std::string_view value) {
  PutU64(value.size());
  data_.append(value);
}

void BlobWriter::PutWords(const std::vector<uint64_t>& words) {
  PutU64(words.size());
  for (const uint64_t word : words) PutU64(word);
}

std::string_view BlobReader::TakeBytes(size_t n) {
  if (failed_ || n > remaining()) {
    failed_ = true;
    return {};
  }
  const std::string_view bytes = data_.substr(position_, n);
  position_ += n;
  return bytes;
}

uint8_t BlobReader::TakeU8() {
  const std::string_view bytes = TakeBytes(1);
  return bytes.empty() ? 0 : static_cast<uint8_t>(bytes[0]);
}

uint32_t BlobReader::TakeU32() {
  const std::string_view bytes = TakeBytes(4);
  if (bytes.size() != 4) return 0;
  uint32_t value = 0;
  for (int i = 3; i >= 0; --i) {
    value = (value << 8) | static_cast<uint8_t>(bytes[static_cast<size_t>(i)]);
  }
  return value;
}

uint64_t BlobReader::TakeU64() {
  const std::string_view bytes = TakeBytes(8);
  if (bytes.size() != 8) return 0;
  uint64_t value = 0;
  for (int i = 7; i >= 0; --i) {
    value = (value << 8) | static_cast<uint8_t>(bytes[static_cast<size_t>(i)]);
  }
  return value;
}

int64_t BlobReader::TakeI64() { return std::bit_cast<int64_t>(TakeU64()); }

double BlobReader::TakeF64() { return std::bit_cast<double>(TakeU64()); }

bool BlobReader::TakeBool() {
  const uint8_t value = TakeU8();
  if (value > 1) {
    failed_ = true;
    return false;
  }
  return value != 0;
}

std::string BlobReader::TakeString() {
  const uint64_t length = TakeU64();
  // Cap the claim by the bytes actually present, so a corrupted length
  // can neither allocate unbounded memory nor read out of range.
  if (failed_ || length > remaining()) {
    failed_ = true;
    return {};
  }
  return std::string(TakeBytes(static_cast<size_t>(length)));
}

std::vector<uint64_t> BlobReader::TakeWords() {
  const uint64_t count = TakeU64();
  if (failed_ || count > remaining() / 8) {
    failed_ = true;
    return {};
  }
  std::vector<uint64_t> words;
  words.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) words.push_back(TakeU64());
  return words;
}

}  // namespace zonestream::common
