// Error reporting without exceptions: Status and StatusOr<T>.
//
// Modeled on the absl::Status idiom. Functions that can fail on invalid
// user-supplied configuration return Status / StatusOr<T>; internal
// invariants use ZS_CHECK instead.
#ifndef ZONESTREAM_COMMON_STATUS_H_
#define ZONESTREAM_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "common/check.h"

namespace zonestream::common {

// Canonical error space; a deliberately small subset of the usual codes.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kFailedPrecondition = 3,
  kResourceExhausted = 4,
  kNotFound = 5,
  kInternal = 6,
};

// Returns a stable human-readable name for `code` (e.g. "INVALID_ARGUMENT").
const char* StatusCodeName(StatusCode code);

// A success-or-error value. Cheap to copy on the success path.
class Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status OutOfRange(std::string message) {
    return Status(StatusCode::kOutOfRange, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  static Status ResourceExhausted(std::string message) {
    return Status(StatusCode::kResourceExhausted, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "CODE_NAME: message".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

// Holds either a value of type T or an error Status. Accessing the value of
// a non-OK StatusOr aborts.
template <typename T>
class StatusOr {
 public:
  // Intentionally implicit, mirroring absl::StatusOr: allows returning a T
  // or a Status directly from functions declared to return StatusOr<T>.
  StatusOr(T value)  // NOLINT(google-explicit-constructor)
      : value_(std::move(value)) {}
  StatusOr(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    ZS_CHECK(!status_.ok());  // OK status must carry a value.
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    ZS_CHECK(ok());
    return *value_;
  }
  T& value() & {
    ZS_CHECK(ok());
    return *value_;
  }
  T&& value() && {
    ZS_CHECK(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace zonestream::common

// Propagates a non-OK Status out of the current function.
#define ZS_RETURN_IF_ERROR(expr)                    \
  do {                                              \
    ::zonestream::common::Status zs_status = (expr); \
    if (!zs_status.ok()) return zs_status;          \
  } while (false)

#endif  // ZONESTREAM_COMMON_STATUS_H_
