#include "common/thread_pool.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <memory>

namespace zonestream::common {

namespace {

// Set while this thread executes a ParallelFor block; nested calls run
// serially inline instead of re-entering the pool.
thread_local bool in_parallel_region = false;

// Completion tracking shared by the blocks of one ParallelFor call.
struct LoopState {
  std::mutex mutex;
  std::condition_variable done;
  int pending = 0;
  std::exception_ptr error;

  void FinishBlock(std::exception_ptr block_error) {
    std::lock_guard<std::mutex> lock(mutex);
    if (block_error != nullptr && error == nullptr) error = block_error;
    if (--pending == 0) done.notify_all();
  }
};

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) num_threads = DefaultThreads();
  workers_.reserve(num_threads - 1);
  for (int i = 0; i < num_threads - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      --stats_.current_queue_depth;
    }
    task();
  }
}

void ThreadPool::RunStatBlock(
    const std::function<void(int64_t, int64_t)>& body, int64_t begin,
    int64_t end) {
  const auto start = std::chrono::steady_clock::now();
  body(begin, end);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  std::shared_ptr<const BlockObserver> observer;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.blocks_executed;
    stats_.total_block_time_s += elapsed;
    if (elapsed > stats_.max_block_time_s) stats_.max_block_time_s = elapsed;
    observer = observer_;
  }
  if (observer != nullptr && *observer) (*observer)(elapsed);
}

void ThreadPool::ParallelFor(int64_t count,
                             const std::function<void(int64_t)>& body) {
  ParallelForBlocks(count, [&body](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) body(i);
  });
}

void ThreadPool::ParallelForBlocks(
    int64_t count, const std::function<void(int64_t, int64_t)>& body) {
  if (count <= 0) return;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.parallel_loops;
  }
  const int64_t threads = num_threads();
  if (threads == 1 || count == 1 || in_parallel_region) {
    const bool was_nested = in_parallel_region;
    in_parallel_region = true;
    try {
      RunStatBlock(body, 0, count);
    } catch (...) {
      in_parallel_region = was_nested;
      throw;
    }
    in_parallel_region = was_nested;
    return;
  }

  // Static partition: block b covers [b*chunk, min((b+1)*chunk, count)).
  const int64_t blocks = std::min<int64_t>(threads, count);
  const int64_t chunk = (count + blocks - 1) / blocks;
  auto state = std::make_shared<LoopState>();
  state->pending = static_cast<int>(blocks);
  // Exception-safe block wrapper; the enclosing ParallelFor call outlives
  // every queued task (it waits on `state`), so capturing by reference
  // from the queued lambdas below is safe.
  auto run_block = [this, &body](int64_t begin, int64_t end,
                                 LoopState* loop) {
    std::exception_ptr error;
    const bool was_nested = in_parallel_region;
    in_parallel_region = true;
    try {
      RunStatBlock(body, begin, end);
    } catch (...) {
      error = std::current_exception();
    }
    in_parallel_region = was_nested;
    loop->FinishBlock(error);
  };
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (int64_t b = 1; b < blocks; ++b) {
      const int64_t begin = b * chunk;
      const int64_t end = std::min(begin + chunk, count);
      queue_.push_back([&run_block, begin, end, state] {
        run_block(begin, end, state.get());
      });
    }
    // Record the enqueue while still holding mutex_, so no worker can pop
    // (and decrement) before the depth is accounted. Lock order is always
    // mutex_ -> stats_mutex_; WorkerLoop takes them one at a time.
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    stats_.current_queue_depth += blocks - 1;
    if (stats_.current_queue_depth > stats_.max_queue_depth) {
      stats_.max_queue_depth = stats_.current_queue_depth;
    }
  }
  work_available_.notify_all();

  // The caller runs block 0 itself, then waits for the workers.
  run_block(0, std::min(chunk, count), state.get());
  std::unique_lock<std::mutex> lock(state->mutex);
  state->done.wait(lock, [&state] { return state->pending == 0; });
  if (state->error != nullptr) std::rethrow_exception(state->error);
}

ThreadPoolStats ThreadPool::Stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

void ThreadPool::SetBlockObserver(BlockObserver observer) {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  observer_ = observer ? std::make_shared<const BlockObserver>(
                             std::move(observer))
                       : nullptr;
}

int ThreadPool::DefaultThreads() {
  if (const char* env = std::getenv("ZONESTREAM_THREADS")) {
    const int requested = std::atoi(env);
    if (requested > 0) return requested;
  }
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware > 0 ? static_cast<int>(hardware) : 1;
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool* pool = new ThreadPool(DefaultThreads());
  return *pool;
}

void ParallelFor(int64_t count, const std::function<void(int64_t)>& body,
                 ThreadPool* pool) {
  (pool != nullptr ? *pool : ThreadPool::Global()).ParallelFor(count, body);
}

void ParallelForBlocks(int64_t count,
                       const std::function<void(int64_t, int64_t)>& body,
                       ThreadPool* pool) {
  (pool != nullptr ? *pool : ThreadPool::Global())
      .ParallelForBlocks(count, body);
}

}  // namespace zonestream::common
