#include "common/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>

namespace zonestream::common {

namespace {

// Set while this thread executes a ParallelFor block; nested calls run
// serially inline instead of re-entering the pool.
thread_local bool in_parallel_region = false;

// Completion tracking shared by the blocks of one ParallelFor call.
struct LoopState {
  std::mutex mutex;
  std::condition_variable done;
  int pending = 0;
  std::exception_ptr error;

  void FinishBlock(std::exception_ptr block_error) {
    std::lock_guard<std::mutex> lock(mutex);
    if (block_error != nullptr && error == nullptr) error = block_error;
    if (--pending == 0) done.notify_all();
  }
};

void RunBlock(const std::function<void(int64_t)>& body, int64_t begin,
              int64_t end, LoopState* state) {
  std::exception_ptr error;
  const bool was_nested = in_parallel_region;
  in_parallel_region = true;
  try {
    for (int64_t i = begin; i < end; ++i) body(i);
  } catch (...) {
    error = std::current_exception();
  }
  in_parallel_region = was_nested;
  state->FinishBlock(error);
}

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) num_threads = DefaultThreads();
  workers_.reserve(num_threads - 1);
  for (int i = 0; i < num_threads - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(int64_t count,
                             const std::function<void(int64_t)>& body) {
  if (count <= 0) return;
  const int64_t threads = num_threads();
  if (threads == 1 || count == 1 || in_parallel_region) {
    const bool was_nested = in_parallel_region;
    in_parallel_region = true;
    try {
      for (int64_t i = 0; i < count; ++i) body(i);
    } catch (...) {
      in_parallel_region = was_nested;
      throw;
    }
    in_parallel_region = was_nested;
    return;
  }

  // Static partition: block b covers [b*chunk, min((b+1)*chunk, count)).
  const int64_t blocks = std::min<int64_t>(threads, count);
  const int64_t chunk = (count + blocks - 1) / blocks;
  auto state = std::make_shared<LoopState>();
  state->pending = static_cast<int>(blocks);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (int64_t b = 1; b < blocks; ++b) {
      const int64_t begin = b * chunk;
      const int64_t end = std::min(begin + chunk, count);
      queue_.push_back([&body, begin, end, state] {
        RunBlock(body, begin, end, state.get());
      });
    }
  }
  work_available_.notify_all();

  // The caller runs block 0 itself, then waits for the workers.
  RunBlock(body, 0, std::min(chunk, count), state.get());
  std::unique_lock<std::mutex> lock(state->mutex);
  state->done.wait(lock, [&state] { return state->pending == 0; });
  if (state->error != nullptr) std::rethrow_exception(state->error);
}

int ThreadPool::DefaultThreads() {
  if (const char* env = std::getenv("ZONESTREAM_THREADS")) {
    const int requested = std::atoi(env);
    if (requested > 0) return requested;
  }
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware > 0 ? static_cast<int>(hardware) : 1;
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool* pool = new ThreadPool(DefaultThreads());
  return *pool;
}

void ParallelFor(int64_t count, const std::function<void(int64_t)>& body,
                 ThreadPool* pool) {
  (pool != nullptr ? *pool : ThreadPool::Global()).ParallelFor(count, body);
}

}  // namespace zonestream::common
