// Oyang's tight upper bound on the accumulated seek time of one SCAN sweep
// ([Oya95], used in §3.1).
//
// For a seek-time function that is concave in the distance (square root for
// short seeks, linear beyond), the total seek time of a sweep serving N
// requests is maximized when the N targets are equidistant: at cylinders
// i * CYL / (N+1), i = 1..N. The sweep then consists of N+1 segments of
// length CYL/(N+1) (from cylinder 0 across the whole surface), so
//
//   SEEK(N) = (N + 1) * seek(CYL / (N + 1)).
//
// This reproduces the paper's example: SEEK(27) = 0.10932 s for the Table 1
// disk. The bound also holds for multi-zone disks (§3.2): zoning only skews
// the seek-target distribution, which cannot exceed the equidistant worst
// case.
#ifndef ZONESTREAM_SCHED_OYANG_BOUND_H_
#define ZONESTREAM_SCHED_OYANG_BOUND_H_

#include <vector>

#include "disk/seek_model.h"

namespace zonestream::sched {

// Worst-case total seek time of one SCAN sweep with `n` requests on a disk
// with `cylinders` cylinders. Returns 0 for n == 0 and the full-stroke
// seek time for n == 1 (one request means one arm movement — the
// equidistant (N+1)-segment form would charge an inter-stream seek a
// single stream never performs).
double OyangSeekBound(const disk::SeekTimeModel& seek_model, int cylinders,
                      int n);

// Total seek time of a sweep over explicitly given SCAN-ordered cylinder
// positions starting at `start_cylinder` — the exact quantity the bound
// dominates; exposed for property tests.
double TotalSeekTimeOfSweep(const disk::SeekTimeModel& seek_model,
                            const std::vector<int>& scan_ordered_cylinders,
                            int start_cylinder);

}  // namespace zonestream::sched

#endif  // ZONESTREAM_SCHED_OYANG_BOUND_H_
