// SCAN (elevator) scheduling of one round's requests (§2.3).
//
// All requests of a round are sorted by cylinder and served in one sweep of
// the disk arm; there are no deadlines within a round, only the round-end
// deadline for the batch.
#ifndef ZONESTREAM_SCHED_SCAN_H_
#define ZONESTREAM_SCHED_SCAN_H_

#include <vector>

#include "disk/seek_model.h"
#include "sched/request.h"

namespace zonestream::sched {

// Sweep direction of the arm for a round.
enum class SweepDirection {
  kAscending,   // inner -> outer cylinders
  kDescending,  // outer -> inner cylinders
};

// Orders `requests` in SCAN order for the given sweep direction (stable, so
// co-located requests keep issue order).
void SortForScan(std::vector<DiskRequest>* requests, SweepDirection direction);

// Timing breakdown of one serviced request.
struct RequestTiming {
  int stream_id = 0;
  double seek_s = 0.0;
  double rotation_s = 0.0;
  double transfer_s = 0.0;
  double completion_s = 0.0;  // time since round start when fully transferred
};

// Timing of a whole round.
struct RoundTiming {
  std::vector<RequestTiming> per_request;  // in service order
  double total_service_time_s = 0.0;       // T_N, eq. (3.1.1)
  int final_arm_cylinder = 0;              // arm position after the sweep
};

// Serves `requests` (already in SCAN order) starting with the arm at
// `start_cylinder`. Each request costs seek(distance) + rotational latency +
// transfer time; completion times are cumulative from round start.
RoundTiming ExecuteScanRound(const disk::SeekTimeModel& seek_model,
                             const std::vector<DiskRequest>& requests,
                             int start_cylinder);

}  // namespace zonestream::sched

#endif  // ZONESTREAM_SCHED_SCAN_H_
