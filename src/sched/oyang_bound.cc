#include "sched/oyang_bound.h"

#include <cmath>
#include <cstdlib>

#include "common/check.h"

namespace zonestream::sched {

double OyangSeekBound(const disk::SeekTimeModel& seek_model, int cylinders,
                      int n) {
  ZS_CHECK_GT(cylinders, 0);
  ZS_CHECK_GE(n, 0);
  if (n == 0) return 0.0;
  if (n == 1) {
    // A sweep with a single request performs exactly one arm movement of
    // at most the full stroke; the (N+1)-segment equidistant form would
    // charge 2*seek(CYL/2) — an inter-stream seek a single stream never
    // performs (and 2*seek(CYL/2) > seek(CYL) for any concave seek curve).
    return seek_model.SeekTime(cylinders);
  }
  // N+1 equidistant segments spanning the whole surface; the segment length
  // is real-valued (the bound is over all real placements).
  const double segment =
      static_cast<double>(cylinders) / static_cast<double>(n + 1);
  return static_cast<double>(n + 1) * seek_model.SeekTime(segment);
}

double TotalSeekTimeOfSweep(const disk::SeekTimeModel& seek_model,
                            const std::vector<int>& scan_ordered_cylinders,
                            int start_cylinder) {
  double total = 0.0;
  int arm = start_cylinder;
  for (int cylinder : scan_ordered_cylinders) {
    total += seek_model.SeekTime(std::abs(cylinder - arm));
    arm = cylinder;
  }
  return total;
}

}  // namespace zonestream::sched
