// A continuous-data disk request: one fragment to be fetched for one stream
// within the current scheduling round.
#ifndef ZONESTREAM_SCHED_REQUEST_H_
#define ZONESTREAM_SCHED_REQUEST_H_

namespace zonestream::sched {

// All fields are fixed when the request is issued at the start of a round;
// the scheduler only chooses the service order.
struct DiskRequest {
  int stream_id = 0;               // owning stream
  int cylinder = 0;                // target cylinder (absolute)
  int zone = 0;                    // 0-based zone index of the cylinder
  double bytes = 0.0;              // fragment size
  double rotational_latency_s = 0.0;  // sampled rotational delay
  double transfer_rate_bps = 0.0;  // zone transfer rate at the target
};

}  // namespace zonestream::sched

#endif  // ZONESTREAM_SCHED_REQUEST_H_
