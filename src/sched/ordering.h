// Intra-round service-order policies (ablation of the paper's SCAN
// choice, §2.3: "In order to minimize disk seeks, we use the SCAN
// algorithm").
//
// Within a round all requests share one deadline, so the order is free;
// the paper picks SCAN to minimize accumulated seek time. These
// alternatives quantify that choice:
//   * FCFS — issue order (equivalently, random order given random
//     placement): pays a full random seek per request;
//   * SSTF — greedy nearest-cylinder-first: close to SCAN on a single
//     batch but not worst-case bounded;
//   * SCAN — the paper's elevator sweep (sched/scan.h).
#ifndef ZONESTREAM_SCHED_ORDERING_H_
#define ZONESTREAM_SCHED_ORDERING_H_

#include <vector>

#include "sched/request.h"
#include "sched/scan.h"

namespace zonestream::sched {

// Service-order policy for one round's batch.
enum class OrderingPolicy {
  kScan,   // elevator sweep (the paper)
  kSstf,   // greedy shortest-seek-time-first from the current arm position
  kFcfs,   // issue order
};

// Reorders `requests` in place according to `policy`, given the arm's
// position at round start and (for SCAN) the sweep direction.
void OrderRequests(std::vector<DiskRequest>* requests, OrderingPolicy policy,
                   int start_cylinder, SweepDirection scan_direction);

}  // namespace zonestream::sched

#endif  // ZONESTREAM_SCHED_ORDERING_H_
