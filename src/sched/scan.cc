#include "sched/scan.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "common/check.h"

namespace zonestream::sched {

void SortForScan(std::vector<DiskRequest>* requests,
                 SweepDirection direction) {
  ZS_CHECK(requests != nullptr);
  if (direction == SweepDirection::kAscending) {
    std::stable_sort(requests->begin(), requests->end(),
                     [](const DiskRequest& a, const DiskRequest& b) {
                       return a.cylinder < b.cylinder;
                     });
  } else {
    std::stable_sort(requests->begin(), requests->end(),
                     [](const DiskRequest& a, const DiskRequest& b) {
                       return a.cylinder > b.cylinder;
                     });
  }
}

RoundTiming ExecuteScanRound(const disk::SeekTimeModel& seek_model,
                             const std::vector<DiskRequest>& requests,
                             int start_cylinder) {
  RoundTiming timing;
  timing.per_request.reserve(requests.size());
  timing.final_arm_cylinder = start_cylinder;

  double clock = 0.0;
  int arm = start_cylinder;
  for (const DiskRequest& request : requests) {
    RequestTiming rt;
    rt.stream_id = request.stream_id;
    rt.seek_s = seek_model.SeekTime(std::abs(request.cylinder - arm));
    rt.rotation_s = request.rotational_latency_s;
    ZS_CHECK_GT(request.transfer_rate_bps, 0.0);
    rt.transfer_s = request.bytes / request.transfer_rate_bps;
    clock += rt.seek_s + rt.rotation_s + rt.transfer_s;
    rt.completion_s = clock;
    arm = request.cylinder;
    timing.per_request.push_back(rt);
  }
  timing.total_service_time_s = clock;
  timing.final_arm_cylinder = arm;
  return timing;
}

}  // namespace zonestream::sched
