#include "sched/ordering.h"

#include <algorithm>
#include <cstdlib>

#include "common/check.h"

namespace zonestream::sched {

void OrderRequests(std::vector<DiskRequest>* requests, OrderingPolicy policy,
                   int start_cylinder, SweepDirection scan_direction) {
  ZS_CHECK(requests != nullptr);
  switch (policy) {
    case OrderingPolicy::kFcfs:
      // Issue order: leave as-is.
      return;
    case OrderingPolicy::kScan:
      SortForScan(requests, scan_direction);
      return;
    case OrderingPolicy::kSstf: {
      // Greedy nearest-first. O(n^2), fine for round-sized batches.
      int arm = start_cylinder;
      for (size_t served = 0; served < requests->size(); ++served) {
        size_t best = served;
        int best_distance = std::abs((*requests)[served].cylinder - arm);
        for (size_t i = served + 1; i < requests->size(); ++i) {
          const int distance = std::abs((*requests)[i].cylinder - arm);
          if (distance < best_distance) {
            best = i;
            best_distance = distance;
          }
        }
        std::swap((*requests)[served], (*requests)[best]);
        arm = (*requests)[served].cylinder;
      }
      return;
    }
  }
}

}  // namespace zonestream::sched
