// Seek-time model (§3.1, after [RW94] / [Oya95]).
//
// Seek time is proportional to the square root of the seek distance for
// short seeks (the acceleration-dominated regime) and linear for long
// seeks (the coast-dominated regime):
//
//   seek(d) = a_sqrt + b_sqrt * sqrt(d)   for 0 < d < d_threshold
//   seek(d) = a_lin  + b_lin  * d         for d >= d_threshold
//   seek(0) = 0
#ifndef ZONESTREAM_DISK_SEEK_MODEL_H_
#define ZONESTREAM_DISK_SEEK_MODEL_H_

#include <cmath>

#include "common/status.h"

namespace zonestream::disk {

// Coefficients of the two-regime seek-time function; times in seconds,
// distances in cylinders.
struct SeekParameters {
  double sqrt_intercept_s = 0.0;   // a_sqrt
  double sqrt_coefficient = 0.0;   // b_sqrt (seconds per sqrt(cylinder))
  double linear_intercept_s = 0.0; // a_lin
  double linear_coefficient = 0.0; // b_lin (seconds per cylinder)
  int threshold_cylinders = 0;     // d_threshold
};

// Immutable seek-time function.
class SeekTimeModel {
 public:
  // Validates coefficients (positive, threshold inside the disk) and
  // builds the model.
  static common::StatusOr<SeekTimeModel> Create(const SeekParameters& params);

  const SeekParameters& params() const { return params_; }

  // Seek time for a distance of `distance` cylinders; 0 for distance <= 0
  // (no head movement). Inline: the simulation kernel calls this once per
  // request per round, and the short-seek sqrt regime dominates SCAN
  // sweeps (consecutive requests are cylinder-adjacent).
  double SeekTime(double distance) const {
    if (distance <= 0.0) return 0.0;
    if (distance < params_.threshold_cylinders) {
      return params_.sqrt_intercept_s +
             params_.sqrt_coefficient * std::sqrt(distance);
    }
    return params_.linear_intercept_s + params_.linear_coefficient * distance;
  }

  // Full-stroke seek time, seek(max_distance). The deterministic worst-case
  // baseline (eq. 4.1) uses this as T_seek^max.
  double MaxSeekTime(int total_cylinders) const;

 private:
  SeekTimeModel() = default;
  SeekParameters params_;
};

}  // namespace zonestream::disk

#endif  // ZONESTREAM_DISK_SEEK_MODEL_H_
