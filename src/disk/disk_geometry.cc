#include "disk/disk_geometry.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace zonestream::disk {

common::StatusOr<DiskGeometry> DiskGeometry::Create(
    const DiskParameters& params) {
  if (params.cylinders <= 0) {
    return common::Status::InvalidArgument("cylinders must be positive");
  }
  if (params.zones <= 0) {
    return common::Status::InvalidArgument("zones must be positive");
  }
  if (params.zones > params.cylinders) {
    return common::Status::InvalidArgument("more zones than cylinders");
  }
  if (params.rotation_time_s <= 0.0) {
    return common::Status::InvalidArgument("rotation time must be positive");
  }
  if (params.innermost_track_bytes <= 0.0) {
    return common::Status::InvalidArgument(
        "innermost track capacity must be positive");
  }
  if (params.outermost_track_bytes < params.innermost_track_bytes) {
    return common::Status::InvalidArgument(
        "outermost track capacity must be >= innermost");
  }
  if (params.zones == 1 &&
      params.outermost_track_bytes != params.innermost_track_bytes) {
    return common::Status::InvalidArgument(
        "single-zone disk requires C_min == C_max");
  }
  if (params.head_switch_time_s < 0.0) {
    return common::Status::InvalidArgument(
        "head switch time must be non-negative");
  }

  DiskGeometry geometry;
  geometry.params_ = params;
  geometry.zones_.reserve(params.zones);

  const int z = params.zones;
  const double c_min = params.innermost_track_bytes;
  const double c_max = params.outermost_track_bytes;

  // All zones span the same number of cylinders (paper assumption); a
  // remainder of cylinders is distributed one-per-zone from the inside.
  const int base_cyls = params.cylinders / z;
  const int remainder = params.cylinders % z;

  double total_capacity = 0.0;
  int next_cylinder = 0;
  for (int i = 0; i < z; ++i) {
    ZoneInfo zone;
    zone.index = i;
    zone.first_cylinder = next_cylinder;
    zone.num_cylinders = base_cyls + (i < remainder ? 1 : 0);
    next_cylinder += zone.num_cylinders;
    // Eq. (3.2.2): linear capacity growth from C_min to C_max.
    zone.track_capacity_bytes =
        (z == 1) ? c_min : c_min + (c_max - c_min) * i / (z - 1);
    // Eq. (3.2.3): constant angular velocity, with the head-switch
    // overhead folded into the effective rate.
    zone.transfer_rate_bps =
        zone.track_capacity_bytes /
        (params.rotation_time_s + params.head_switch_time_s);
    total_capacity += zone.track_capacity_bytes;
    geometry.zones_.push_back(zone);
  }
  ZS_CHECK_EQ(next_cylinder, params.cylinders);
  geometry.total_track_capacity_ = total_capacity;

  geometry.cumulative_hit_.resize(z);
  double cumulative = 0.0;
  for (int i = 0; i < z; ++i) {
    geometry.zones_[i].hit_probability =
        geometry.zones_[i].track_capacity_bytes / total_capacity;
    cumulative += geometry.zones_[i].hit_probability;
    geometry.cumulative_hit_[i] = cumulative;
  }
  // Guard against rounding drift in the prefix sums.
  geometry.cumulative_hit_.back() = 1.0;
  geometry.BuildZoneAlias();
  return geometry;
}

common::StatusOr<DiskGeometry> DiskGeometry::CreateFromZoneTable(
    const std::vector<ZoneSpec>& zones, double rotation_time_s) {
  if (zones.empty()) {
    return common::Status::InvalidArgument("zone table is empty");
  }
  if (rotation_time_s <= 0.0) {
    return common::Status::InvalidArgument("rotation time must be positive");
  }
  double previous_capacity = 0.0;
  int total_cylinders = 0;
  for (size_t i = 0; i < zones.size(); ++i) {
    if (zones[i].num_cylinders <= 0) {
      return common::Status::InvalidArgument(
          "zone " + std::to_string(i) + " has non-positive cylinder count");
    }
    if (zones[i].track_capacity_bytes <= 0.0) {
      return common::Status::InvalidArgument(
          "zone " + std::to_string(i) + " has non-positive capacity");
    }
    if (zones[i].track_capacity_bytes < previous_capacity) {
      return common::Status::InvalidArgument(
          "zone capacities must be non-decreasing outward (zone " +
          std::to_string(i) + ")");
    }
    previous_capacity = zones[i].track_capacity_bytes;
    total_cylinders += zones[i].num_cylinders;
  }

  DiskGeometry geometry;
  geometry.params_.cylinders = total_cylinders;
  geometry.params_.zones = static_cast<int>(zones.size());
  geometry.params_.rotation_time_s = rotation_time_s;
  geometry.params_.innermost_track_bytes = zones.front().track_capacity_bytes;
  geometry.params_.outermost_track_bytes = zones.back().track_capacity_bytes;
  geometry.zones_.reserve(zones.size());

  // Hit probability weights each zone by its stored bytes: capacity per
  // track times the number of cylinders (tracks) in the zone. (The linear
  // Create() uses equal cylinders per zone, where the per-track weighting
  // is equivalent; with explicit tables the cylinder counts matter.)
  double total_capacity = 0.0;
  int next_cylinder = 0;
  for (size_t i = 0; i < zones.size(); ++i) {
    ZoneInfo zone;
    zone.index = static_cast<int>(i);
    zone.first_cylinder = next_cylinder;
    zone.num_cylinders = zones[i].num_cylinders;
    next_cylinder += zone.num_cylinders;
    zone.track_capacity_bytes = zones[i].track_capacity_bytes;
    zone.transfer_rate_bps = zones[i].track_capacity_bytes / rotation_time_s;
    total_capacity += zone.track_capacity_bytes * zone.num_cylinders;
    geometry.zones_.push_back(zone);
  }
  geometry.total_track_capacity_ = total_capacity;

  geometry.cumulative_hit_.resize(zones.size());
  double cumulative = 0.0;
  for (size_t i = 0; i < zones.size(); ++i) {
    geometry.zones_[i].hit_probability =
        geometry.zones_[i].track_capacity_bytes *
        geometry.zones_[i].num_cylinders / total_capacity;
    cumulative += geometry.zones_[i].hit_probability;
    geometry.cumulative_hit_[i] = cumulative;
  }
  geometry.cumulative_hit_.back() = 1.0;
  geometry.BuildZoneAlias();
  return geometry;
}

void DiskGeometry::BuildZoneAlias() {
  std::vector<double> weights;
  weights.reserve(zones_.size());
  for (const ZoneInfo& zi : zones_) weights.push_back(zi.hit_probability);
  zone_alias_ = AliasTable::Build(weights);
}

const ZoneInfo& DiskGeometry::zone(int index) const {
  ZS_CHECK_GE(index, 0);
  ZS_CHECK_LT(index, num_zones());
  return zones_[index];
}

const ZoneInfo& DiskGeometry::ZoneOfCylinder(int cylinder) const {
  ZS_CHECK_GE(cylinder, 0);
  ZS_CHECK_LT(cylinder, cylinders());
  // Zones are contiguous and sorted by first_cylinder; binary search.
  auto it = std::upper_bound(
      zones_.begin(), zones_.end(), cylinder,
      [](int cyl, const ZoneInfo& zi) { return cyl < zi.first_cylinder; });
  ZS_CHECK(it != zones_.begin());
  return *(it - 1);
}

double DiskGeometry::MeanTransferRate() const {
  double mean = 0.0;
  for (const ZoneInfo& zi : zones_) {
    mean += zi.hit_probability * zi.transfer_rate_bps;
  }
  return mean;
}

double DiskGeometry::RateCdfAtZone(int index) const {
  ZS_CHECK_GE(index, 0);
  ZS_CHECK_LT(index, num_zones());
  return cumulative_hit_[index];
}

double DiskGeometry::InverseRateMoment(int k) const {
  ZS_CHECK_GE(k, 1);
  double moment = 0.0;
  for (const ZoneInfo& zi : zones_) {
    moment +=
        zi.hit_probability * std::pow(zi.transfer_rate_bps, -static_cast<double>(k));
  }
  return moment;
}

double DiskGeometry::TransferTime(double bytes, int zone_index) const {
  ZS_CHECK_GE(bytes, 0.0);
  return bytes / TransferRate(zone_index);
}

DiskPosition DiskGeometry::SampleUniformPosition(numeric::Rng* rng) const {
  ZS_CHECK(rng != nullptr);
  const double u = rng->Uniform01();
  // First zone whose cumulative hit probability exceeds u.
  auto it = std::lower_bound(cumulative_hit_.begin(), cumulative_hit_.end(), u);
  int zone_index = static_cast<int>(it - cumulative_hit_.begin());
  zone_index = std::min(zone_index, num_zones() - 1);
  const ZoneInfo& zi = zones_[zone_index];

  DiskPosition position;
  position.zone = zone_index;
  position.cylinder =
      zi.first_cylinder + static_cast<int>(rng->UniformIndex(zi.num_cylinders));
  position.transfer_rate_bps = zi.transfer_rate_bps;
  return position;
}

}  // namespace zonestream::disk
