// Vose alias method for O(1) sampling from a discrete distribution.
//
// The simulator samples a zone (or placement component) per request, per
// round, per replication — millions of draws against the same fixed
// C_i/C weights. A binary search over the cumulative hit probabilities
// costs O(log Z) with data-dependent branches; the alias table answers
// the same draw with one multiply, one floor, and one compare against a
// precomputed per-bucket threshold. Built once per geometry/placement
// (O(Z)); numerically exact in the sense that every bucket's threshold
// and alias are derived from the normalized weights with only rounding
// error (the chi-square equivalence test in tests/disk/alias_table_test.cc
// pins the sampled frequencies to the exact probabilities).
#ifndef ZONESTREAM_DISK_ALIAS_TABLE_H_
#define ZONESTREAM_DISK_ALIAS_TABLE_H_

#include <cstddef>
#include <vector>

#include "numeric/random.h"

namespace zonestream::disk {

// Immutable alias table over indices 0..n-1 with probabilities
// proportional to the construction weights.
class AliasTable {
 public:
  AliasTable() = default;

  // Builds from non-negative weights (at least one strictly positive);
  // weights need not be normalized.
  static AliasTable Build(const std::vector<double>& weights);

  // Maps one uniform u in [0, 1) to an index: bucket i = floor(u * n),
  // fractional part against the bucket's threshold picks i or alias[i].
  int Sample(double u01) const {
    const double scaled = u01 * static_cast<double>(threshold_.size());
    size_t bucket = static_cast<size_t>(scaled);
    // u01 just below 1.0 can scale to exactly n under rounding.
    if (bucket >= threshold_.size()) bucket = threshold_.size() - 1;
    const double fraction = scaled - static_cast<double>(bucket);
    return fraction < threshold_[bucket] ? static_cast<int>(bucket)
                                         : alias_[bucket];
  }

  // Convenience: draws the uniform from `rng` (one draw per sample).
  int Sample(numeric::Rng* rng) const { return Sample(rng->Uniform01()); }

  size_t size() const { return threshold_.size(); }
  bool empty() const { return threshold_.empty(); }

  // Exact sampling probability of index i implied by the table
  // (reconstructed from thresholds and aliases; for tests/diagnostics).
  std::vector<double> Probabilities() const;

 private:
  std::vector<double> threshold_;  // accept-own probability per bucket
  std::vector<int> alias_;         // fallback index per bucket
};

}  // namespace zonestream::disk

#endif  // ZONESTREAM_DISK_ALIAS_TABLE_H_
