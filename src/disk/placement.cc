#include "disk/placement.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace zonestream::disk {

PlacementModel::PlacementModel(const PlacementConfig& config,
                               std::vector<double> probabilities,
                               std::vector<double> rates,
                               std::vector<int> component_zones,
                               double usable_capacity_fraction)
    : config_(config),
      probabilities_(std::move(probabilities)),
      rates_(std::move(rates)),
      component_zones_(std::move(component_zones)),
      usable_capacity_fraction_(usable_capacity_fraction) {
  cumulative_.resize(probabilities_.size());
  double sum = 0.0;
  for (size_t i = 0; i < probabilities_.size(); ++i) {
    sum += probabilities_[i];
    cumulative_[i] = sum;
  }
  ZS_CHECK(std::fabs(sum - 1.0) < 1e-9);
  cumulative_.back() = 1.0;
  component_alias_ = AliasTable::Build(probabilities_);
}

common::StatusOr<PlacementModel> PlacementModel::Create(
    const DiskGeometry& geometry, const PlacementConfig& config) {
  const int z = geometry.num_zones();
  std::vector<double> probabilities;
  std::vector<double> rates;
  std::vector<int> component_zones;
  double usable = 1.0;

  switch (config.strategy) {
    case PlacementStrategy::kUniformAllZones: {
      for (const ZoneInfo& zone : geometry.zones()) {
        probabilities.push_back(zone.hit_probability);
        rates.push_back(zone.transfer_rate_bps);
        component_zones.push_back(zone.index);
      }
      break;
    }
    case PlacementStrategy::kOuterZones: {
      const int k = config.outer_zone_count;
      if (k < 1 || k > z) {
        return common::Status::InvalidArgument(
            "outer_zone_count must be in [1, Z]");
      }
      // Weight by stored bytes (the zones' hit probabilities), which is
      // exact for both the linear ramp and explicit zone tables.
      double outer_share = 0.0;
      for (int i = z - k; i < z; ++i) {
        outer_share += geometry.zone(i).hit_probability;
      }
      for (int i = z - k; i < z; ++i) {
        probabilities.push_back(geometry.zone(i).hit_probability /
                                outer_share);
        rates.push_back(geometry.TransferRate(i));
        component_zones.push_back(i);
      }
      usable = outer_share;
      break;
    }
    case PlacementStrategy::kTrackPairing: {
      // Pair zone i with zone z-1-i. With the linear capacity ramp the
      // pair capacity C_i + C_{z-1-i} is constant, so pairs are hit
      // uniformly. An odd middle zone pairs with itself.
      const int pairs = (z + 1) / 2;
      for (int i = 0; i < pairs; ++i) {
        const int j = z - 1 - i;
        const double r_i = geometry.TransferRate(i);
        const double r_j = geometry.TransferRate(j);
        // Half the bytes at each rate -> harmonic-mean effective rate.
        const double effective = 2.0 / (1.0 / r_i + 1.0 / r_j);
        probabilities.push_back(1.0 / pairs);
        rates.push_back(effective);
        component_zones.push_back(i);
      }
      // Renormalize by the pairs' true stored-byte shares — exact for the
      // linear ramp (where pairs are equal except an odd middle zone) and
      // for explicit zone tables (where pair capacities vary freely).
      {
        std::vector<double> weights(pairs);
        double total = 0.0;
        for (int i = 0; i < pairs; ++i) {
          const int j = z - 1 - i;
          weights[i] = geometry.zone(i).hit_probability +
                       (i == j ? 0.0 : geometry.zone(j).hit_probability);
          total += weights[i];
        }
        for (int i = 0; i < pairs; ++i) probabilities[i] = weights[i] / total;
      }
      break;
    }
  }
  return PlacementModel(config, std::move(probabilities), std::move(rates),
                        std::move(component_zones), usable);
}

double PlacementModel::InverseRateMoment(int k) const {
  ZS_CHECK_GE(k, 1);
  double moment = 0.0;
  for (size_t i = 0; i < rates_.size(); ++i) {
    moment += probabilities_[i] * std::pow(rates_[i], -static_cast<double>(k));
  }
  return moment;
}

DiskPosition PlacementModel::SamplePosition(const DiskGeometry& geometry,
                                            numeric::Rng* rng) const {
  ZS_CHECK(rng != nullptr);
  const double u = rng->Uniform01();
  auto it = std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
  size_t component = static_cast<size_t>(it - cumulative_.begin());
  component = std::min(component, cumulative_.size() - 1);

  const ZoneInfo& zone = geometry.zone(component_zones_[component]);
  DiskPosition position;
  position.zone = zone.index;
  position.cylinder =
      zone.first_cylinder +
      static_cast<int>(rng->UniformIndex(zone.num_cylinders));
  position.transfer_rate_bps = rates_[component];
  return position;
}

}  // namespace zonestream::disk
