// Seek-model calibration: fit the two-regime seek-time function (§3.1,
// after [RW94]) from measured (distance, time) pairs, so drives other
// than the presets can be plugged into the model from a simple
// micro-benchmark of their seek behavior.
//
//   seek(d) = a1 + b1·sqrt(d)   for d < threshold
//           = a2 + b2·d         for d >= threshold
//
// Each regime is linear in its feature ([1, sqrt(d)] resp. [1, d]), so
// for a fixed threshold both are closed-form least squares; the threshold
// itself is found by scanning the candidate split points.
#ifndef ZONESTREAM_DISK_SEEK_CALIBRATION_H_
#define ZONESTREAM_DISK_SEEK_CALIBRATION_H_

#include <vector>

#include "common/status.h"
#include "disk/seek_model.h"

namespace zonestream::disk {

// One measured seek.
struct SeekMeasurement {
  double distance_cylinders = 0.0;
  double seek_time_s = 0.0;
};

// Calibration output.
struct SeekFitResult {
  SeekParameters parameters;
  double rmse_s = 0.0;  // root-mean-square residual over all samples
};

// Fits the two-regime model. Needs at least 3 samples on each side of
// some candidate threshold; negative fitted coefficients (possible under
// heavy noise) invalidate a candidate split. Returns InvalidArgument for
// unusable inputs and NotFound if no valid split exists.
common::StatusOr<SeekFitResult> FitSeekModel(
    std::vector<SeekMeasurement> samples);

}  // namespace zonestream::disk

#endif  // ZONESTREAM_DISK_SEEK_CALIBRATION_H_
