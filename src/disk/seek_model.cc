#include "disk/seek_model.h"

#include <cmath>

#include "common/check.h"

namespace zonestream::disk {

common::StatusOr<SeekTimeModel> SeekTimeModel::Create(
    const SeekParameters& params) {
  if (params.sqrt_intercept_s < 0.0 || params.sqrt_coefficient < 0.0 ||
      params.linear_intercept_s < 0.0 || params.linear_coefficient < 0.0) {
    return common::Status::InvalidArgument(
        "seek coefficients must be non-negative");
  }
  if (params.sqrt_coefficient == 0.0 && params.linear_coefficient == 0.0) {
    return common::Status::InvalidArgument(
        "seek time must depend on distance");
  }
  if (params.threshold_cylinders <= 0) {
    return common::Status::InvalidArgument(
        "sqrt/linear threshold must be positive");
  }
  SeekTimeModel model;
  model.params_ = params;
  return model;
}

double SeekTimeModel::MaxSeekTime(int total_cylinders) const {
  ZS_CHECK_GT(total_cylinders, 0);
  return SeekTime(static_cast<double>(total_cylinders));
}

}  // namespace zonestream::disk
