#include "disk/seek_calibration.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace zonestream::disk {
namespace {

// Ordinary least squares of y on [1, f(d)]; returns false when the
// design is degenerate. Outputs intercept/slope.
bool FitLinear(const std::vector<SeekMeasurement>& samples, size_t begin,
               size_t end, double (*feature)(double), double* intercept,
               double* slope) {
  const double n = static_cast<double>(end - begin);
  double sum_x = 0.0;
  double sum_y = 0.0;
  double sum_xx = 0.0;
  double sum_xy = 0.0;
  for (size_t i = begin; i < end; ++i) {
    const double x = feature(samples[i].distance_cylinders);
    const double y = samples[i].seek_time_s;
    sum_x += x;
    sum_y += y;
    sum_xx += x * x;
    sum_xy += x * y;
  }
  const double denom = n * sum_xx - sum_x * sum_x;
  if (std::fabs(denom) < 1e-12 * (1.0 + sum_xx)) return false;
  *slope = (n * sum_xy - sum_x * sum_y) / denom;
  *intercept = (sum_y - *slope * sum_x) / n;
  return true;
}

double SqrtFeature(double d) { return std::sqrt(d); }
double LinearFeature(double d) { return d; }

double RegimeSse(const std::vector<SeekMeasurement>& samples, size_t begin,
                 size_t end, double (*feature)(double), double intercept,
                 double slope) {
  double sse = 0.0;
  for (size_t i = begin; i < end; ++i) {
    const double predicted =
        intercept + slope * feature(samples[i].distance_cylinders);
    const double residual = samples[i].seek_time_s - predicted;
    sse += residual * residual;
  }
  return sse;
}

}  // namespace

common::StatusOr<SeekFitResult> FitSeekModel(
    std::vector<SeekMeasurement> samples) {
  if (samples.size() < 6) {
    return common::Status::InvalidArgument(
        "need at least 6 seek measurements (3 per regime)");
  }
  for (const SeekMeasurement& sample : samples) {
    if (sample.distance_cylinders <= 0.0 || sample.seek_time_s <= 0.0) {
      return common::Status::InvalidArgument(
          "distances and seek times must be positive");
    }
  }
  std::sort(samples.begin(), samples.end(),
            [](const SeekMeasurement& a, const SeekMeasurement& b) {
              return a.distance_cylinders < b.distance_cylinders;
            });

  double best_sse = -1.0;
  SeekFitResult best;
  // Candidate split: the sqrt regime covers samples [0, split), the
  // linear regime [split, n). The fitted threshold is the first distance
  // of the linear regime.
  for (size_t split = 3; split + 3 <= samples.size(); ++split) {
    // Identical distances cannot straddle the split.
    if (samples[split].distance_cylinders ==
        samples[split - 1].distance_cylinders) {
      continue;
    }
    double a1;
    double b1;
    double a2;
    double b2;
    if (!FitLinear(samples, 0, split, SqrtFeature, &a1, &b1)) continue;
    if (!FitLinear(samples, split, samples.size(), LinearFeature, &a2, &b2)) {
      continue;
    }
    if (a1 < 0.0 || b1 < 0.0 || a2 < 0.0 || b2 < 0.0) continue;
    const double sse =
        RegimeSse(samples, 0, split, SqrtFeature, a1, b1) +
        RegimeSse(samples, split, samples.size(), LinearFeature, a2, b2);
    if (best_sse < 0.0 || sse < best_sse) {
      best_sse = sse;
      best.parameters.sqrt_intercept_s = a1;
      best.parameters.sqrt_coefficient = b1;
      best.parameters.linear_intercept_s = a2;
      best.parameters.linear_coefficient = b2;
      best.parameters.threshold_cylinders =
          static_cast<int>(samples[split].distance_cylinders);
    }
  }
  if (best_sse < 0.0) {
    return common::Status::NotFound(
        "no valid two-regime split (check measurement quality)");
  }
  best.rmse_s = std::sqrt(best_sse / static_cast<double>(samples.size()));
  // Cross-validate: the fitted parameters must form a usable model.
  auto model = SeekTimeModel::Create(best.parameters);
  if (!model.ok()) return model.status();
  return best;
}

}  // namespace zonestream::disk
