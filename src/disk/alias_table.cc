#include "disk/alias_table.h"

#include <vector>

#include "common/check.h"

namespace zonestream::disk {

AliasTable AliasTable::Build(const std::vector<double>& weights) {
  const size_t n = weights.size();
  ZS_CHECK_GT(n, 0u);
  double total = 0.0;
  for (double w : weights) {
    ZS_CHECK_GE(w, 0.0);
    total += w;
  }
  ZS_CHECK_GT(total, 0.0);

  AliasTable table;
  table.threshold_.assign(n, 1.0);
  table.alias_.resize(n);
  for (size_t i = 0; i < n; ++i) table.alias_[i] = static_cast<int>(i);

  // Vose's algorithm: scale weights so the mean bucket holds 1.0, then
  // repeatedly pair an underfull bucket with an overfull donor. Index
  // stacks (not queues) keep construction deterministic.
  std::vector<double> scaled(n);
  for (size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * static_cast<double>(n) / total;
  }
  std::vector<int> small;
  std::vector<int> large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<int>(i));
  }
  while (!small.empty() && !large.empty()) {
    const int s = small.back();
    small.pop_back();
    const int l = large.back();
    large.pop_back();
    table.threshold_[s] = scaled[s];
    table.alias_[s] = l;
    scaled[l] -= 1.0 - scaled[s];
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Leftovers are full buckets up to rounding; threshold 1.0 means the
  // bucket always accepts itself.
  for (int i : large) table.threshold_[i] = 1.0;
  for (int i : small) table.threshold_[i] = 1.0;
  return table;
}

std::vector<double> AliasTable::Probabilities() const {
  const size_t n = threshold_.size();
  std::vector<double> probabilities(n, 0.0);
  const double bucket_mass = n > 0 ? 1.0 / static_cast<double>(n) : 0.0;
  for (size_t i = 0; i < n; ++i) {
    probabilities[i] += bucket_mass * threshold_[i];
    probabilities[alias_[i]] += bucket_mass * (1.0 - threshold_[i]);
  }
  return probabilities;
}

}  // namespace zonestream::disk
