// Disk presets used throughout tests, benches and examples.
#ifndef ZONESTREAM_DISK_PRESETS_H_
#define ZONESTREAM_DISK_PRESETS_H_

#include "disk/disk_geometry.h"
#include "disk/seek_model.h"

namespace zonestream::disk {

// The paper's validation disk (Table 1): a Quantum Viking 2.1 class drive.
//   CYL = 6720, Z = 15, ROT = 8.34 ms,
//   C_min = 58368 bytes, C_max = 95744 bytes,
//   seek(d) = 1.867e-3 + 1.315e-4 sqrt(d)  for d < 1344
//           = 3.8635e-3 + 2.1e-6 d         for d >= 1344.
DiskParameters QuantumViking2100Parameters();
SeekParameters QuantumViking2100SeekParameters();
DiskGeometry QuantumViking2100();
SeekTimeModel QuantumViking2100Seek();

// Single-zone variant of the Viking, for the §3.1 (conventional disk)
// experiments: identical cylinders/rotation/seek, one zone whose track
// capacity is the Viking's mean track capacity (77056 bytes), so the mean
// transfer rate matches the multi-zone drive.
DiskParameters SingleZoneVikingParameters();
DiskGeometry SingleZoneViking();

// Synthetic mid-90s entry-level drive: 2000 cylinders, 4 zones,
// 5400 rpm, 30..45 KB tracks, slow seeks. Used by cross-geometry
// property tests and capacity studies — not a model of a specific
// product.
DiskParameters SyntheticSmallDiskParameters();
SeekParameters SyntheticSmallDiskSeekParameters();
DiskGeometry SyntheticSmallDisk();
SeekTimeModel SyntheticSmallDiskSeek();

// Synthetic high-end drive of the era: 10000 cylinders, 30 zones,
// 10000 rpm, 100..220 KB tracks, fast seeks.
DiskParameters SyntheticFastDiskParameters();
SeekParameters SyntheticFastDiskSeekParameters();
DiskGeometry SyntheticFastDisk();
SeekTimeModel SyntheticFastDiskSeek();

}  // namespace zonestream::disk

#endif  // ZONESTREAM_DISK_PRESETS_H_
