#include "disk/presets.h"

#include "common/check.h"

namespace zonestream::disk {

DiskParameters QuantumViking2100Parameters() {
  DiskParameters params;
  params.cylinders = 6720;
  params.zones = 15;
  params.rotation_time_s = 8.34e-3;
  params.innermost_track_bytes = 58368.0;
  params.outermost_track_bytes = 95744.0;
  return params;
}

SeekParameters QuantumViking2100SeekParameters() {
  SeekParameters params;
  params.sqrt_intercept_s = 1.867e-3;
  params.sqrt_coefficient = 1.315e-4;
  params.linear_intercept_s = 3.8635e-3;
  params.linear_coefficient = 2.1e-6;
  params.threshold_cylinders = 1344;
  return params;
}

DiskGeometry QuantumViking2100() {
  auto geometry = DiskGeometry::Create(QuantumViking2100Parameters());
  ZS_CHECK(geometry.ok());
  return *std::move(geometry);
}

SeekTimeModel QuantumViking2100Seek() {
  auto model = SeekTimeModel::Create(QuantumViking2100SeekParameters());
  ZS_CHECK(model.ok());
  return *std::move(model);
}

DiskParameters SingleZoneVikingParameters() {
  DiskParameters params = QuantumViking2100Parameters();
  // Capacity-weighted... all zones host the same number of tracks, so the
  // plain average of the linear capacity ramp is the per-track mean.
  const double mean_track =
      0.5 * (params.innermost_track_bytes + params.outermost_track_bytes);
  params.zones = 1;
  params.innermost_track_bytes = mean_track;
  params.outermost_track_bytes = mean_track;
  return params;
}

DiskGeometry SingleZoneViking() {
  auto geometry = DiskGeometry::Create(SingleZoneVikingParameters());
  ZS_CHECK(geometry.ok());
  return *std::move(geometry);
}

DiskParameters SyntheticSmallDiskParameters() {
  DiskParameters params;
  params.cylinders = 2000;
  params.zones = 4;
  params.rotation_time_s = 60.0 / 5400.0;  // 11.11 ms
  params.innermost_track_bytes = 30000.0;
  params.outermost_track_bytes = 45000.0;
  return params;
}

SeekParameters SyntheticSmallDiskSeekParameters() {
  SeekParameters params;
  params.sqrt_intercept_s = 3.0e-3;
  params.sqrt_coefficient = 3.5e-4;
  params.linear_intercept_s = 8.0e-3;
  params.linear_coefficient = 6.0e-6;
  params.threshold_cylinders = 500;
  return params;
}

DiskGeometry SyntheticSmallDisk() {
  auto geometry = DiskGeometry::Create(SyntheticSmallDiskParameters());
  ZS_CHECK(geometry.ok());
  return *std::move(geometry);
}

SeekTimeModel SyntheticSmallDiskSeek() {
  auto model = SeekTimeModel::Create(SyntheticSmallDiskSeekParameters());
  ZS_CHECK(model.ok());
  return *std::move(model);
}

DiskParameters SyntheticFastDiskParameters() {
  DiskParameters params;
  params.cylinders = 10000;
  params.zones = 30;
  params.rotation_time_s = 60.0 / 10000.0;  // 6 ms
  params.innermost_track_bytes = 100000.0;
  params.outermost_track_bytes = 220000.0;
  return params;
}

SeekParameters SyntheticFastDiskSeekParameters() {
  SeekParameters params;
  params.sqrt_intercept_s = 1.0e-3;
  params.sqrt_coefficient = 8.0e-5;
  params.linear_intercept_s = 2.5e-3;
  params.linear_coefficient = 0.9e-6;
  params.threshold_cylinders = 2500;
  return params;
}

DiskGeometry SyntheticFastDisk() {
  auto geometry = DiskGeometry::Create(SyntheticFastDiskParameters());
  ZS_CHECK(geometry.ok());
  return *std::move(geometry);
}

SeekTimeModel SyntheticFastDiskSeek() {
  auto model = SeekTimeModel::Create(SyntheticFastDiskSeekParameters());
  ZS_CHECK(model.ok());
  return *std::move(model);
}

}  // namespace zonestream::disk
