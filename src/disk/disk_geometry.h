// Multi-zone disk geometry (§2.2 of the paper).
//
// A multi-zone disk groups adjacent cylinders into Z zones; outer zones have
// more sectors per track and therefore a higher transfer rate at constant
// angular velocity. Following eq. (3.2.2)/(3.2.3), track capacities increase
// linearly from C_min (innermost zone 1) to C_max (outermost zone Z), all
// zones span the same number of cylinders, and zone i's transfer rate is
// R_i = C_i / ROT.
#ifndef ZONESTREAM_DISK_DISK_GEOMETRY_H_
#define ZONESTREAM_DISK_DISK_GEOMETRY_H_

#include <vector>

#include "common/status.h"
#include "disk/alias_table.h"
#include "numeric/random.h"

namespace zonestream::disk {

// User-facing description of a multi-zone disk. All byte quantities are in
// bytes, times in seconds.
struct DiskParameters {
  int cylinders = 0;                    // CYL, total cylinder count
  int zones = 0;                        // Z >= 1
  double rotation_time_s = 0.0;         // ROT, time of one revolution
  double innermost_track_bytes = 0.0;   // C_min
  double outermost_track_bytes = 0.0;   // C_max (== C_min for single-zone)
  // Head-switch overhead per track crossed during a transfer. Following
  // the paper's remark that the transfer rate "is a function of the
  // revolution speed and the head switch time", it is folded into the
  // effective zone rates: R_i = C_i / (ROT + head_switch). 0 (the
  // default) reproduces the paper's Table 1 numbers exactly.
  double head_switch_time_s = 0.0;
};

// One zone of the disk. Zones are numbered 0..Z-1 from innermost to
// outermost (the paper numbers 1..Z; we use 0-based indices in code and
// 1-based numbering only in printed tables).
struct ZoneInfo {
  int index = 0;                 // 0-based zone index
  int first_cylinder = 0;        // inclusive
  int num_cylinders = 0;
  double track_capacity_bytes = 0.0;  // C_i
  double transfer_rate_bps = 0.0;     // R_i = C_i / ROT
  double hit_probability = 0.0;       // C_i / C  (uniform-over-capacity)
};

// A position on the disk selected uniformly over stored bytes.
struct DiskPosition {
  int zone = 0;       // 0-based zone index
  int cylinder = 0;   // absolute cylinder
  double transfer_rate_bps = 0.0;
};

// An explicitly measured zone-table entry (for drives whose zone layout
// is known exactly rather than approximated by the linear ramp).
struct ZoneSpec {
  int num_cylinders = 0;
  double track_capacity_bytes = 0.0;
};

// Immutable multi-zone disk geometry. Construct via Create(); invalid
// parameter combinations are rejected with a Status.
class DiskGeometry {
 public:
  // Validates `params` and builds the zone table using the paper's linear
  // capacity ramp (eq. 3.2.2) with equal cylinders per zone.
  static common::StatusOr<DiskGeometry> Create(const DiskParameters& params);

  // Builds from an explicitly measured zone table (innermost first).
  // Capacities must be positive and non-decreasing outward; cylinder
  // counts positive. This is how real drives — whose zone tables are not
  // exactly linear — plug into the model: the analytic machinery
  // (hit probabilities, inverse-rate moments, sampling) consumes the
  // explicit table directly.
  static common::StatusOr<DiskGeometry> CreateFromZoneTable(
      const std::vector<ZoneSpec>& zones, double rotation_time_s);

  const DiskParameters& params() const { return params_; }
  int cylinders() const { return params_.cylinders; }
  int num_zones() const { return params_.zones; }
  double rotation_time() const { return params_.rotation_time_s; }

  // Zone accessors. `index` is 0-based.
  const ZoneInfo& zone(int index) const;
  const std::vector<ZoneInfo>& zones() const { return zones_; }

  // Zone containing the given absolute cylinder.
  const ZoneInfo& ZoneOfCylinder(int cylinder) const;

  // Track capacity of zone `index` (eq. 3.2.2).
  double TrackCapacity(int index) const { return zone(index).track_capacity_bytes; }
  // Transfer rate of zone `index` (eq. 3.2.3).
  double TransferRate(int index) const { return zone(index).transfer_rate_bps; }

  // Slowest / fastest / capacity-weighted-mean transfer rates.
  double MinTransferRate() const { return zones_.front().transfer_rate_bps; }
  double MaxTransferRate() const { return zones_.back().transfer_rate_bps; }
  double MeanTransferRate() const;

  // P[transfer rate R <= R_i] for the 0-based zone index (eq. 3.2.1/3.2.4).
  double RateCdfAtZone(int index) const;

  // Exact moments of 1/R under the uniform-over-capacity placement:
  // E[(1/R)^k] = sum_i (C_i/C) * R_i^{-k}. The multi-zone transfer model
  // consumes the first two.
  double InverseRateMoment(int k) const;

  // Transfer time of `bytes` stored in zone `zone_index` (pure transfer,
  // excluding seek and rotational latency): bytes / R_i.
  double TransferTime(double bytes, int zone_index) const;

  // Samples a position uniformly over stored bytes: zone with probability
  // C_i/C, cylinder uniform within the zone (all tracks of a zone hold the
  // same amount, so uniform-over-capacity is uniform-over-cylinders within
  // a zone).
  DiskPosition SampleUniformPosition(numeric::Rng* rng) const;

  // O(1) zone draw over the same C_i/C hit probabilities via the
  // precomputed alias table (the batched simulation kernel's sampler;
  // replaces the per-sample CDF binary search). One uniform in, a 0-based
  // zone index out.
  int SampleZoneAlias(double u01) const { return zone_alias_.Sample(u01); }

  // The zone-hit alias table itself (built once at geometry creation).
  const AliasTable& zone_alias() const { return zone_alias_; }

  // Total stored bytes per cylinder-track sweep: C = sum_i C_i (the paper's
  // normalizing constant, one representative track per zone).
  double TotalTrackCapacity() const { return total_track_capacity_; }

 private:
  DiskGeometry() = default;

  // Builds zone_alias_ from the zones' hit probabilities (both factories).
  void BuildZoneAlias();

  DiskParameters params_;
  std::vector<ZoneInfo> zones_;
  std::vector<double> cumulative_hit_;  // prefix sums of hit probabilities
  AliasTable zone_alias_;               // O(1) zone-hit sampling
  double total_track_capacity_ = 0.0;
};

}  // namespace zonestream::disk

#endif  // ZONESTREAM_DISK_DISK_GEOMETRY_H_
