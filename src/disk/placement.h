// Zone-aware placement strategies (§2.2 outlook; [Bir95], [TKKD96]).
//
// The paper places data uniformly over all sectors and leaves
// placement optimization as future work. This module implements the two
// classic alternatives it cites, as an ablation axis:
//
//  * kOuterZones — store continuous data only on the outermost k zones:
//    higher and less variable transfer rates at the cost of usable
//    capacity (a k/Z-ish fraction of the disk).
//  * kTrackPairing — Birk's track pairing: each fragment is split between
//    zone i and its mirror zone Z-1-i, so every fragment sees the same
//    pair-average rate; with the linear capacity ramp, pair capacities
//    C_i + C_{Z-1-i} are constant, hence pairs are hit uniformly. Rate
//    variability collapses (variance across pairs of the harmonic mean is
//    tiny). Modeled optimistically with no extra intra-pair seek (as with
//    a serpentine layout); treat the resulting capacity gain as an upper
//    bound of the technique's benefit.
//
// A PlacementModel exposes the induced discrete transfer-rate mixture
// (for the analytic transform) and a position sampler (for the
// simulator).
#ifndef ZONESTREAM_DISK_PLACEMENT_H_
#define ZONESTREAM_DISK_PLACEMENT_H_

#include <vector>

#include "common/status.h"
#include "disk/alias_table.h"
#include "disk/disk_geometry.h"
#include "numeric/random.h"

namespace zonestream::disk {

// Placement strategy selector.
enum class PlacementStrategy {
  kUniformAllZones,  // the paper's assumption
  kOuterZones,       // outermost `outer_zone_count` zones only
  kTrackPairing,     // Birk-style mirrored zone pairs
};

// Strategy configuration.
struct PlacementConfig {
  PlacementStrategy strategy = PlacementStrategy::kUniformAllZones;
  int outer_zone_count = 0;  // for kOuterZones; must be in [1, Z]
};

// Immutable placement model bound to one geometry.
class PlacementModel {
 public:
  static common::StatusOr<PlacementModel> Create(
      const DiskGeometry& geometry, const PlacementConfig& config);

  const PlacementConfig& config() const { return config_; }

  // The induced transfer-rate mixture: component probabilities and
  // effective rates (bytes/second).
  const std::vector<double>& probabilities() const { return probabilities_; }
  const std::vector<double>& rates() const { return rates_; }

  // E[(1/R)^k] under the mixture.
  double InverseRateMoment(int k) const;

  // Fraction of the disk's stored bytes usable under this placement
  // (1.0 for uniform and track pairing; k-zone share for kOuterZones).
  double usable_capacity_fraction() const {
    return usable_capacity_fraction_;
  }

  // Samples a position for one fragment under this placement. For track
  // pairing the reported cylinder is the first half's location and the
  // reported transfer rate is the pair-effective (harmonic mean) rate.
  DiskPosition SamplePosition(const DiskGeometry& geometry,
                              numeric::Rng* rng) const;

  // O(1) component draw over the mixture probabilities (the batched
  // kernel's sampler; same distribution as SamplePosition's CDF binary
  // search but one multiply + compare per draw).
  int SampleComponentAlias(double u01) const {
    return component_alias_.Sample(u01);
  }

  // Zone hosting component i's (first) half, and the component's
  // effective transfer rate — the batched kernel resolves a sampled
  // component to (cylinder, rate) through these.
  int ComponentZone(int component) const { return component_zones_[component]; }
  double ComponentRate(int component) const { return rates_[component]; }

 private:
  PlacementModel(const PlacementConfig& config,
                 std::vector<double> probabilities, std::vector<double> rates,
                 std::vector<int> component_zones,
                 double usable_capacity_fraction);

  PlacementConfig config_;
  std::vector<double> probabilities_;
  std::vector<double> rates_;
  std::vector<double> cumulative_;
  AliasTable component_alias_;  // O(1) mixture-component sampling
  // Zone whose cylinder span hosts component i's (first) half.
  std::vector<int> component_zones_;
  double usable_capacity_fraction_;
};

}  // namespace zonestream::disk

#endif  // ZONESTREAM_DISK_PLACEMENT_H_
