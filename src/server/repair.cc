#include "server/repair.h"

#include <cmath>
#include <string>

namespace zonestream::server {

common::Status ValidateRepairPolicy(const RepairPolicy& policy) {
  if (policy.throttle_per_round < 1) {
    return common::Status::InvalidArgument(
        "repair throttle_per_round must be >= 1, got " +
        std::to_string(policy.throttle_per_round));
  }
  if (policy.total_stripes < 1) {
    return common::Status::InvalidArgument(
        "repair total_stripes must be >= 1, got " +
        std::to_string(policy.total_stripes));
  }
  if (!std::isfinite(policy.read_bytes) || policy.read_bytes <= 0.0) {
    return common::Status::InvalidArgument(
        "repair read_bytes must be finite and > 0");
  }
  return common::Status::Ok();
}

RepairController::RepairController(const RepairPolicy& policy,
                                   obs::Registry* metrics)
    : policy_(policy), metrics_(metrics) {
  PublishGauges();
}

int64_t RepairController::EtaRounds() const {
  if (!active_) return 0;
  const int64_t remaining = stripes_remaining();
  const int64_t throttle = policy_.throttle_per_round;
  return (remaining + throttle - 1) / throttle;
}

void RepairController::StartRebuild(int target_disk) {
  if (active_ && target_disk_ == target_disk) return;
  active_ = true;
  target_disk_ = target_disk;
  stripes_rebuilt_ = 0;
  PublishGauges();
}

void RepairController::Cancel() {
  if (!active_) return;
  active_ = false;
  target_disk_ = -1;
  stripes_rebuilt_ = 0;
  if (metrics_ != nullptr) {
    metrics_->GetCounter("server.repair.cancelled")->Increment();
  }
  PublishGauges();
}

int RepairController::ClaimRoundBudget() const {
  if (!active_) return 0;
  const int64_t remaining = stripes_remaining();
  const int64_t throttle = policy_.throttle_per_round;
  return static_cast<int>(remaining < throttle ? remaining : throttle);
}

bool RepairController::RecordRoundOutcome(int completed) {
  if (!active_ || completed <= 0) {
    PublishGauges();
    return false;
  }
  stripes_rebuilt_ += completed;
  if (stripes_rebuilt_ > policy_.total_stripes) {
    stripes_rebuilt_ = policy_.total_stripes;
  }
  if (metrics_ != nullptr) {
    metrics_->GetCounter("server.repair.stripes_rebuilt")->Increment(completed);
    metrics_->GetCounter("server.repair.bytes_rebuilt")
        ->Increment(static_cast<int64_t>(
            static_cast<double>(completed) * policy_.read_bytes));
  }
  const bool finished = stripes_rebuilt_ >= policy_.total_stripes;
  if (finished) {
    active_ = false;
    if (metrics_ != nullptr) {
      metrics_->GetCounter("server.repair.completed")->Increment();
    }
  }
  PublishGauges();
  return finished;
}

RepairControllerState RepairController::ExportState() const {
  RepairControllerState state;
  state.active = active_;
  state.target_disk = target_disk_;
  state.stripes_rebuilt = stripes_rebuilt_;
  return state;
}

common::Status RepairController::ImportState(
    const RepairControllerState& state) {
  if (state.stripes_rebuilt < 0 ||
      state.stripes_rebuilt > policy_.total_stripes) {
    return common::Status::InvalidArgument(
        "repair state: stripes_rebuilt " +
        std::to_string(state.stripes_rebuilt) + " outside [0, " +
        std::to_string(policy_.total_stripes) + "]");
  }
  if (state.active && state.target_disk < 0) {
    return common::Status::InvalidArgument(
        "repair state: active rebuild with no target disk");
  }
  active_ = state.active;
  target_disk_ = state.target_disk;
  stripes_rebuilt_ = state.stripes_rebuilt;
  PublishGauges();
  return common::Status::Ok();
}

void RepairController::PublishGauges() {
  if (metrics_ == nullptr) return;
  metrics_->GetGauge("server.repair.active")->Set(active_ ? 1.0 : 0.0);
  metrics_->GetGauge("server.repair.target_disk")
      ->Set(static_cast<double>(target_disk_));
  metrics_->GetGauge("server.repair.eta_rounds")
      ->Set(static_cast<double>(EtaRounds()));
}

}  // namespace zonestream::server
