#include "server/server_config.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <fstream>
#include <sstream>

#include "common/check.h"
#include "core/service_time_model.h"
#include "disk/presets.h"

namespace zonestream::server {
namespace {

std::string Trim(const std::string& s) {
  const size_t start = s.find_first_not_of(" \t\r");
  if (start == std::string::npos) return "";
  const size_t end = s.find_last_not_of(" \t\r");
  return s.substr(start, end - start + 1);
}

// Strips a trailing comment introduced by ';' or '#'.
std::string StripComment(const std::string& s) {
  const size_t pos = s.find_first_of(";#");
  return (pos == std::string::npos) ? s : s.substr(0, pos);
}

// Typed lookup helpers over ConfigSections.
class SpecReader {
 public:
  explicit SpecReader(const ConfigSections& sections) : sections_(sections) {}

  bool Has(const std::string& section, const std::string& key) const {
    auto sec = sections_.find(section);
    return sec != sections_.end() && sec->second.count(key) > 0;
  }

  common::StatusOr<std::string> GetString(const std::string& section,
                                          const std::string& key) const {
    auto sec = sections_.find(section);
    if (sec == sections_.end()) {
      return common::Status::NotFound("missing section [" + section + "]");
    }
    auto it = sec->second.find(key);
    if (it == sec->second.end()) {
      return common::Status::NotFound("missing key '" + key +
                                      "' in section [" + section + "]");
    }
    return it->second;
  }

  common::StatusOr<double> GetDouble(const std::string& section,
                                     const std::string& key) const {
    auto value = GetString(section, key);
    if (!value.ok()) return value.status();
    char* end = nullptr;
    errno = 0;
    const double parsed = std::strtod(value->c_str(), &end);
    if (errno != 0 || end == nullptr || *end != '\0') {
      return common::Status::InvalidArgument(
          "key '" + key + "' in [" + section + "] is not a number: '" +
          *value + "'");
    }
    // strtod accepts "inf"/"nan" spellings; no config knob means either.
    if (!std::isfinite(parsed)) {
      return common::Status::InvalidArgument(
          "key '" + key + "' in [" + section + "] must be finite: '" +
          *value + "'");
    }
    return parsed;
  }

  common::StatusOr<int> GetInt(const std::string& section,
                               const std::string& key) const {
    auto value = GetDouble(section, key);
    if (!value.ok()) return value.status();
    // Range-check before the cast: double -> int conversion of an
    // out-of-range value is undefined behavior, not saturation.
    if (*value < static_cast<double>(std::numeric_limits<int>::min()) ||
        *value > static_cast<double>(std::numeric_limits<int>::max())) {
      return common::Status::InvalidArgument(
          "key '" + key + "' in [" + section + "] is out of integer range");
    }
    const int as_int = static_cast<int>(*value);
    if (static_cast<double>(as_int) != *value) {
      return common::Status::InvalidArgument(
          "key '" + key + "' in [" + section + "] must be an integer");
    }
    return as_int;
  }

 private:
  const ConfigSections& sections_;
};

}  // namespace

common::StatusOr<ConfigSections> ParseIni(const std::string& content) {
  ConfigSections sections;
  std::istringstream stream(content);
  std::string line;
  std::string current_section;
  int line_number = 0;
  while (std::getline(stream, line)) {
    ++line_number;
    const std::string text = Trim(StripComment(line));
    if (text.empty()) continue;
    if (text.front() == '[') {
      if (text.back() != ']' || text.size() < 3) {
        return common::Status::InvalidArgument(
            "malformed section header at line " +
            std::to_string(line_number));
      }
      current_section = Trim(text.substr(1, text.size() - 2));
      sections[current_section];  // allow empty sections
      continue;
    }
    const size_t eq = text.find('=');
    if (eq == std::string::npos) {
      return common::Status::InvalidArgument(
          "expected 'key = value' at line " + std::to_string(line_number));
    }
    if (current_section.empty()) {
      return common::Status::InvalidArgument(
          "key outside any section at line " + std::to_string(line_number));
    }
    const std::string key = Trim(text.substr(0, eq));
    const std::string value = Trim(text.substr(eq + 1));
    if (key.empty() || value.empty()) {
      return common::Status::InvalidArgument(
          "empty key or value at line " + std::to_string(line_number));
    }
    auto [it, inserted] = sections[current_section].emplace(key, value);
    (void)it;
    if (!inserted) {
      return common::Status::InvalidArgument(
          "duplicate key '" + key + "' at line " +
          std::to_string(line_number));
    }
  }
  return sections;
}

common::StatusOr<ServerSpec> ParseServerSpec(const std::string& content) {
  auto sections = ParseIni(content);
  if (!sections.ok()) return sections.status();
  const SpecReader reader(*sections);
  ServerSpec spec;

  // [disk]
  if (reader.Has("disk", "preset")) {
    auto preset = reader.GetString("disk", "preset");
    if (*preset == "quantum_viking_2100") {
      spec.disk_parameters = disk::QuantumViking2100Parameters();
      spec.seek_parameters = disk::QuantumViking2100SeekParameters();
    } else if (*preset == "synthetic_small") {
      spec.disk_parameters = disk::SyntheticSmallDiskParameters();
      spec.seek_parameters = disk::SyntheticSmallDiskSeekParameters();
    } else if (*preset == "synthetic_fast") {
      spec.disk_parameters = disk::SyntheticFastDiskParameters();
      spec.seek_parameters = disk::SyntheticFastDiskSeekParameters();
    } else {
      return common::Status::InvalidArgument("unknown disk preset: '" +
                                             *preset + "'");
    }
  } else {
    // Explicit disk description: all fields required.
    auto cylinders = reader.GetInt("disk", "cylinders");
    if (!cylinders.ok()) return cylinders.status();
    auto zones = reader.GetInt("disk", "zones");
    if (!zones.ok()) return zones.status();
    auto rotation = reader.GetDouble("disk", "rotation_ms");
    if (!rotation.ok()) return rotation.status();
    auto track_min = reader.GetDouble("disk", "track_min_bytes");
    if (!track_min.ok()) return track_min.status();
    auto track_max = reader.GetDouble("disk", "track_max_bytes");
    if (!track_max.ok()) return track_max.status();
    spec.disk_parameters.cylinders = *cylinders;
    spec.disk_parameters.zones = *zones;
    spec.disk_parameters.rotation_time_s = *rotation * 1e-3;
    spec.disk_parameters.innermost_track_bytes = *track_min;
    spec.disk_parameters.outermost_track_bytes = *track_max;

    auto sqrt_intercept = reader.GetDouble("disk", "seek_sqrt_intercept_ms");
    if (!sqrt_intercept.ok()) return sqrt_intercept.status();
    auto sqrt_coeff = reader.GetDouble("disk", "seek_sqrt_coeff");
    if (!sqrt_coeff.ok()) return sqrt_coeff.status();
    auto lin_intercept = reader.GetDouble("disk", "seek_lin_intercept_ms");
    if (!lin_intercept.ok()) return lin_intercept.status();
    auto lin_coeff = reader.GetDouble("disk", "seek_lin_coeff");
    if (!lin_coeff.ok()) return lin_coeff.status();
    auto threshold = reader.GetInt("disk", "seek_threshold_cyl");
    if (!threshold.ok()) return threshold.status();
    spec.seek_parameters.sqrt_intercept_s = *sqrt_intercept * 1e-3;
    spec.seek_parameters.sqrt_coefficient = *sqrt_coeff;
    spec.seek_parameters.linear_intercept_s = *lin_intercept * 1e-3;
    spec.seek_parameters.linear_coefficient = *lin_coeff;
    spec.seek_parameters.threshold_cylinders = *threshold;
  }

  // [workload]
  auto mean_kb = reader.GetDouble("workload", "fragment_mean_kb");
  if (!mean_kb.ok()) return mean_kb.status();
  auto stddev_kb = reader.GetDouble("workload", "fragment_stddev_kb");
  if (!stddev_kb.ok()) return stddev_kb.status();
  if (*mean_kb <= 0.0 || *stddev_kb <= 0.0) {
    return common::Status::InvalidArgument(
        "workload moments must be positive");
  }
  spec.fragment_mean_bytes = *mean_kb * 1e3;
  spec.fragment_variance_bytes2 = (*stddev_kb * 1e3) * (*stddev_kb * 1e3);

  // [qos]
  auto round = reader.GetDouble("qos", "round_s");
  if (!round.ok()) return round.status();
  if (*round <= 0.0) {
    return common::Status::InvalidArgument("round_s must be positive");
  }
  spec.round_length_s = *round;
  auto criterion = reader.GetString("qos", "criterion");
  if (!criterion.ok()) return criterion.status();
  if (*criterion == "glitch_rate") {
    spec.criterion = core::AdmissionCriterion::kGlitchRate;
    auto rounds = reader.GetInt("qos", "session_rounds");
    if (!rounds.ok()) return rounds.status();
    auto glitches = reader.GetInt("qos", "tolerated_glitches");
    if (!glitches.ok()) return glitches.status();
    if (*rounds <= 0 || *glitches < 0 || *glitches > *rounds) {
      return common::Status::InvalidArgument(
          "need 0 <= tolerated_glitches <= session_rounds, "
          "session_rounds > 0");
    }
    spec.session_rounds = *rounds;
    spec.tolerated_glitches = *glitches;
  } else if (*criterion == "late_probability") {
    spec.criterion = core::AdmissionCriterion::kLateProbability;
  } else {
    return common::Status::InvalidArgument(
        "criterion must be 'glitch_rate' or 'late_probability'");
  }
  auto tolerance = reader.GetDouble("qos", "tolerance");
  if (!tolerance.ok()) return tolerance.status();
  if (*tolerance <= 0.0 || *tolerance >= 1.0) {
    return common::Status::InvalidArgument("tolerance must be in (0, 1)");
  }
  spec.tolerance = *tolerance;

  // [server]
  auto disks = reader.GetInt("server", "disks");
  if (!disks.ok()) return disks.status();
  if (*disks <= 0) {
    return common::Status::InvalidArgument("disks must be positive");
  }
  spec.num_disks = *disks;

  // [repair] (optional): enables degraded-mode planning for a parity
  // array rebuilding at this throttle.
  if (reader.Has("repair", "throttle")) {
    auto throttle = reader.GetInt("repair", "throttle");
    if (!throttle.ok()) return throttle.status();
    if (*throttle <= 0) {
      return common::Status::InvalidArgument(
          "repair throttle must be positive");
    }
    spec.repair_throttle = *throttle;
  }

  // Cross-validate the disk description by constructing the models.
  auto geometry = disk::DiskGeometry::Create(spec.disk_parameters);
  if (!geometry.ok()) return geometry.status();
  auto seek = disk::SeekTimeModel::Create(spec.seek_parameters);
  if (!seek.ok()) return seek.status();
  return spec;
}

common::StatusOr<ServerSpec> LoadServerSpec(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    return common::Status::NotFound("cannot open config file: " + path);
  }
  std::ostringstream content;
  content << file.rdbuf();
  return ParseServerSpec(content.str());
}

common::StatusOr<ServerPlan> BuildServerPlan(const ServerSpec& spec) {
  auto geometry = disk::DiskGeometry::Create(spec.disk_parameters);
  if (!geometry.ok()) return geometry.status();
  auto seek = disk::SeekTimeModel::Create(spec.seek_parameters);
  if (!seek.ok()) return seek.status();
  auto model = core::ServiceTimeModel::ForMultiZoneDisk(
      *geometry, *seek, spec.fragment_mean_bytes,
      spec.fragment_variance_bytes2);
  if (!model.ok()) return model.status();

  ServerPlan plan;
  plan.streams_per_disk =
      (spec.criterion == core::AdmissionCriterion::kLateProbability)
          ? core::MaxStreamsByLateProbability(*model, spec.round_length_s,
                                              spec.tolerance)
          : core::MaxStreamsByGlitchRate(*model, spec.round_length_s,
                                         spec.session_rounds,
                                         spec.tolerated_glitches,
                                         spec.tolerance);
  plan.total_streams = plan.streams_per_disk * spec.num_disks;
  plan.late_bound_at_limit =
      plan.streams_per_disk > 0
          ? model->LateBound(plan.streams_per_disk, spec.round_length_s).bound
          : 0.0;
  if (spec.repair_throttle > 0) {
    plan.degraded_streams_per_disk = core::MaxStreamsByLateProbabilityDegraded(
        *model, spec.round_length_s, spec.tolerance, spec.repair_throttle);
  }
  return plan;
}

std::string DefaultConfigTemplate() {
  return
      "# zonestream server configuration (Table 1 deployment)\n"
      "[disk]\n"
      "preset = quantum_viking_2100\n"
      "# ... or describe the drive explicitly:\n"
      "# cylinders = 6720\n"
      "# zones = 15\n"
      "# rotation_ms = 8.34\n"
      "# track_min_bytes = 58368\n"
      "# track_max_bytes = 95744\n"
      "# seek_sqrt_intercept_ms = 1.867\n"
      "# seek_sqrt_coeff = 1.315e-4\n"
      "# seek_lin_intercept_ms = 3.8635\n"
      "# seek_lin_coeff = 2.1e-6\n"
      "# seek_threshold_cyl = 1344\n"
      "\n"
      "[workload]\n"
      "fragment_mean_kb = 200\n"
      "fragment_stddev_kb = 100\n"
      "\n"
      "[qos]\n"
      "round_s = 1.0\n"
      "criterion = glitch_rate   ; or late_probability\n"
      "session_rounds = 1200\n"
      "tolerated_glitches = 12\n"
      "tolerance = 0.01\n"
      "\n"
      "[server]\n"
      "disks = 4\n"
      "\n"
      "# Uncomment to also plan the degraded-mode limit for a parity\n"
      "# array rebuilding at this many stripes per round:\n"
      "# [repair]\n"
      "# throttle = 4\n";
}

}  // namespace zonestream::server
