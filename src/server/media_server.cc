#include "server/media_server.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.h"
#include "core/service_time_model.h"
#include "obs/metrics.h"
#include "obs/round_trace.h"
#include "sched/scan.h"

namespace zonestream::server {

common::StatusOr<MediaServerConfig> MediaServer::PlanConfig(
    const disk::DiskGeometry& geometry, const disk::SeekTimeModel& seek,
    double fragment_mean_bytes, double fragment_variance_bytes2,
    int num_disks, double round_length_s, double late_tolerance,
    uint64_t seed) {
  if (num_disks <= 0) {
    return common::Status::InvalidArgument("num_disks must be positive");
  }
  if (round_length_s <= 0.0) {
    return common::Status::InvalidArgument("round length must be positive");
  }
  if (late_tolerance <= 0.0 || late_tolerance >= 1.0) {
    return common::Status::InvalidArgument(
        "late tolerance must be in (0, 1)");
  }
  auto model = core::ServiceTimeModel::ForMultiZoneDisk(
      geometry, seek, fragment_mean_bytes, fragment_variance_bytes2);
  if (!model.ok()) return model.status();
  const int limit =
      core::MaxStreamsByLateProbability(*model, round_length_s,
                                        late_tolerance);
  if (limit <= 0) {
    return common::Status::InvalidArgument(
        "QoS contract admits no streams on this disk configuration");
  }
  MediaServerConfig config;
  config.num_disks = num_disks;
  config.round_length_s = round_length_s;
  config.per_disk_stream_limit = limit;
  config.seed = seed;
  return config;
}

MediaServer::MediaServer(const disk::DiskGeometry& geometry,
                         const disk::SeekTimeModel& seek,
                         const MediaServerConfig& config)
    : geometry_(geometry),
      seek_(seek),
      config_(config),
      striping_(config.num_disks),
      rng_(config.seed),
      phase_counts_(config.num_disks, 0),
      arm_cylinder_(config.num_disks, 0),
      ascending_(config.num_disks, true),
      busy_fraction_(config.num_disks),
      batch_scratch_(config.num_disks) {}

common::StatusOr<MediaServer> MediaServer::Create(
    const disk::DiskGeometry& geometry, const disk::SeekTimeModel& seek,
    const MediaServerConfig& config) {
  if (config.num_disks <= 0) {
    return common::Status::InvalidArgument("num_disks must be positive");
  }
  if (config.round_length_s <= 0.0) {
    return common::Status::InvalidArgument("round length must be positive");
  }
  if (config.per_disk_stream_limit <= 0) {
    return common::Status::InvalidArgument(
        "per_disk_stream_limit must be positive (derive it from the "
        "admission model)");
  }
  return MediaServer(geometry, seek, config);
}

common::StatusOr<int> MediaServer::OpenStream(
    std::shared_ptr<const workload::SizeDistribution> sizes) {
  if (sizes == nullptr) {
    return common::Status::InvalidArgument("size distribution is null");
  }
  // Least-loaded phase; rejecting when it is full enforces the per-disk
  // limit exactly (every disk serves one phase's streams per round).
  int phase = 0;
  for (int p = 1; p < config_.num_disks; ++p) {
    if (phase_counts_[p] < phase_counts_[phase]) phase = p;
  }
  if (phase_counts_[phase] >= config_.per_disk_stream_limit) {
    if (config_.metrics != nullptr) {
      config_.metrics->GetCounter("server.admission.rejected")->Increment();
    }
    return common::Status::ResourceExhausted(
        "admission control: server is at its stream limit");
  }
  StreamState state;
  state.phase = phase;
  state.source = std::make_unique<workload::IidSizeSource>(std::move(sizes));
  const int id = static_cast<int>(next_stream_id_++);
  streams_.emplace(id, std::move(state));
  ++phase_counts_[phase];
  if (config_.metrics != nullptr) {
    config_.metrics->GetCounter("server.admission.accepted")->Increment();
    config_.metrics->GetGauge("server.active_streams")
        ->Set(static_cast<double>(streams_.size()));
  }
  return id;
}

common::Status MediaServer::CloseStream(int stream_id) {
  auto it = streams_.find(stream_id);
  if (it == streams_.end()) {
    return common::Status::NotFound("no such stream");
  }
  --phase_counts_[it->second.phase];
  streams_.erase(it);
  if (config_.metrics != nullptr) {
    config_.metrics->GetCounter("server.streams.closed")->Increment();
    config_.metrics->GetGauge("server.active_streams")
        ->Set(static_cast<double>(streams_.size()));
  }
  return common::Status::Ok();
}

void MediaServer::RunRound() {
  // Gather this round's request batch per disk into the reused scratch
  // (clear keeps the capacity, so steady-state rounds allocate nothing).
  std::vector<std::vector<sched::DiskRequest>>& batches = batch_scratch_;
  for (auto& batch : batches) batch.clear();
  for (auto& [id, stream] : streams_) {
    const int disk_index = striping_.DiskForFragment(
        stream.phase, round_);
    const disk::DiskPosition position = geometry_.SampleUniformPosition(&rng_);
    sched::DiskRequest request;
    request.stream_id = id;
    request.cylinder = position.cylinder;
    request.zone = position.zone;
    request.transfer_rate_bps = position.transfer_rate_bps;
    request.bytes = stream.source->NextFragmentBytes(&rng_);
    request.rotational_latency_s = rng_.Uniform(0.0, geometry_.rotation_time());
    batches[disk_index].push_back(request);
    stream.next_fragment++;
    stream.stats.rounds_served++;
  }

  // Serve every disk's batch with its own SCAN sweep.
  for (int d = 0; d < config_.num_disks; ++d) {
    std::vector<sched::DiskRequest>& batch = batches[d];
    const sched::SweepDirection direction =
        ascending_[d] ? sched::SweepDirection::kAscending
                      : sched::SweepDirection::kDescending;
    sched::SortForScan(&batch, direction);
    const sched::RoundTiming timing =
        sched::ExecuteScanRound(seek_, batch, arm_cylinder_[d]);
    busy_fraction_[d].Add(
        std::fmin(timing.total_service_time_s, config_.round_length_s) /
        config_.round_length_s);

    int last_on_time_cylinder = arm_cylinder_[d];
    int disk_glitches = 0;
    for (size_t i = 0; i < timing.per_request.size(); ++i) {
      if (timing.per_request[i].completion_s > config_.round_length_s) {
        ++disk_glitches;
        auto it = streams_.find(timing.per_request[i].stream_id);
        ZS_CHECK(it != streams_.end());
        it->second.stats.glitches++;
        total_glitches_++;
      } else {
        last_on_time_cylinder = batch[i].cylinder;
        fragments_served_++;
      }
    }
    arm_cylinder_[d] = disk_glitches > 0 ? last_on_time_cylinder
                                         : timing.final_arm_cylinder;
    ascending_[d] = !ascending_[d];

    // Observability: per-(round, disk) metrics and one trace event with
    // source_id = disk index.
    if (config_.metrics != nullptr || config_.trace != nullptr) {
      double seek_sum = 0.0;
      double rotation_sum = 0.0;
      double transfer_sum = 0.0;
      for (const sched::RequestTiming& rt : timing.per_request) {
        seek_sum += rt.seek_s;
        rotation_sum += rt.rotation_s;
        transfer_sum += rt.transfer_s;
      }
      if (config_.metrics != nullptr) {
        obs::Registry* registry = config_.metrics;
        registry->GetCounter("server.requests")
            ->Increment(static_cast<int64_t>(batch.size()));
        registry->GetCounter("server.glitches")->Increment(disk_glitches);
        if (timing.total_service_time_s > config_.round_length_s) {
          registry->GetCounter("server.overruns")->Increment();
        }
        registry->GetHistogram("server.disk.service_time_s")
            ->Record(timing.total_service_time_s);
        registry->GetHistogram("server.disk.utilization")
            ->Record(
                std::fmin(timing.total_service_time_s,
                          config_.round_length_s) /
                config_.round_length_s);
      }
      if (config_.trace != nullptr) {
        obs::RoundTraceEvent event;
        event.round = round_;
        event.source_id = d;
        event.num_requests = static_cast<int>(batch.size());
        event.service_time_s = timing.total_service_time_s;
        event.seek_s = seek_sum;
        event.rotation_s = rotation_sum;
        event.transfer_s = transfer_sum;
        event.glitches = disk_glitches;
        event.overran = timing.total_service_time_s > config_.round_length_s;
        event.leftover_s = std::fmax(
            0.0, config_.round_length_s - timing.total_service_time_s);
        event.zone_hits.assign(geometry_.num_zones(), 0);
        for (const sched::DiskRequest& request : batch) {
          ++event.zone_hits[request.zone];
        }
        config_.trace->Record(std::move(event));
      }
    }
  }
  if (config_.metrics != nullptr) {
    config_.metrics->GetCounter("server.rounds")->Increment();
  }
  ++round_;
}

void MediaServer::RunRounds(int rounds) {
  ZS_CHECK_GE(rounds, 0);
  for (int r = 0; r < rounds; ++r) RunRound();
}

common::StatusOr<StreamStats> MediaServer::GetStreamStats(
    int stream_id) const {
  auto it = streams_.find(stream_id);
  if (it == streams_.end()) {
    return common::Status::NotFound("no such stream");
  }
  return it->second.stats;
}

ServerStats MediaServer::GetServerStats() const {
  ServerStats stats;
  stats.rounds = round_;
  stats.fragments_served = fragments_served_;
  stats.glitches = total_glitches_;
  stats.disk_utilization.reserve(config_.num_disks);
  for (const numeric::RunningStats& busy : busy_fraction_) {
    stats.disk_utilization.push_back(busy.count() > 0 ? busy.mean() : 0.0);
  }
  return stats;
}

}  // namespace zonestream::server
