#include "server/media_server.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "common/check.h"
#include "core/service_time_model.h"
#include "obs/metrics.h"
#include "obs/round_trace.h"
#include "sched/scan.h"

namespace zonestream::server {

namespace {

// Substream-family tag for the per-disk fault injectors ("fsrv"): disk d's
// injector is seeded with SubstreamSeed(SubstreamSeed(seed, tag), d), so
// server faults never touch the request-drawing stream and each disk's
// fault process is independent.
constexpr uint64_t kServerFaultSubstream = 0x66737276;

// Repair stripe-rebuild job j rides in the round's batches as stream id
// kRepairStreamIdBase - j; negative ids survive the SCAN sort and are
// decoded back to the job on completion. Stream ids are always >= 0.
constexpr int kRepairStreamIdBase = -1;

}  // namespace

common::StatusOr<MediaServerConfig> MediaServer::PlanConfig(
    const disk::DiskGeometry& geometry, const disk::SeekTimeModel& seek,
    double fragment_mean_bytes, double fragment_variance_bytes2,
    int num_disks, double round_length_s, double late_tolerance,
    uint64_t seed) {
  if (num_disks <= 0) {
    return common::Status::InvalidArgument("num_disks must be positive");
  }
  if (round_length_s <= 0.0) {
    return common::Status::InvalidArgument("round length must be positive");
  }
  if (late_tolerance <= 0.0 || late_tolerance >= 1.0) {
    return common::Status::InvalidArgument(
        "late tolerance must be in (0, 1)");
  }
  auto model = core::ServiceTimeModel::ForMultiZoneDisk(
      geometry, seek, fragment_mean_bytes, fragment_variance_bytes2);
  if (!model.ok()) return model.status();
  const int limit =
      core::MaxStreamsByLateProbability(*model, round_length_s,
                                        late_tolerance);
  if (limit <= 0) {
    return common::Status::InvalidArgument(
        "QoS contract admits no streams on this disk configuration");
  }
  MediaServerConfig config;
  config.num_disks = num_disks;
  config.round_length_s = round_length_s;
  config.per_disk_stream_limit = limit;
  config.seed = seed;
  return config;
}

common::StatusOr<int> MediaServer::PlanDegradedLimit(
    const disk::DiskGeometry& geometry, const disk::SeekTimeModel& seek,
    double fragment_mean_bytes, double fragment_variance_bytes2,
    double round_length_s, double late_tolerance,
    const RepairPolicy& repair) {
  if (round_length_s <= 0.0) {
    return common::Status::InvalidArgument("round length must be positive");
  }
  if (late_tolerance <= 0.0 || late_tolerance >= 1.0) {
    return common::Status::InvalidArgument(
        "late tolerance must be in (0, 1)");
  }
  if (auto status = ValidateRepairPolicy(repair); !status.ok()) {
    return status;
  }
  auto model = core::ServiceTimeModel::ForMultiZoneDisk(
      geometry, seek, fragment_mean_bytes, fragment_variance_bytes2);
  if (!model.ok()) return model.status();
  return core::MaxStreamsByLateProbabilityDegraded(
      *model, round_length_s, late_tolerance, repair.throttle_per_round);
}

MediaServer::MediaServer(
    const disk::DiskGeometry& geometry, const disk::SeekTimeModel& seek,
    const MediaServerConfig& config,
    std::vector<std::unique_ptr<fault::FaultInjector>> injectors)
    : geometry_(geometry),
      seek_(seek),
      config_(config),
      striping_(config.num_disks),
      rng_(config.seed),
      phase_counts_(config.parity ? config.num_disks - 1 : config.num_disks,
                    0),
      arm_cylinder_(config.num_disks, 0),
      ascending_(config.num_disks, true),
      fault_injectors_(std::move(injectors)),
      spare_active_(config.num_disks, 0),
      busy_fraction_(config.num_disks),
      batch_scratch_(config.num_disks),
      round_failed_(config.num_disks, 0) {
  if (config_.parity) parity_striping_.emplace(config_.num_disks);
  if (config_.repair.has_value()) {
    repair_ =
        std::make_unique<RepairController>(*config_.repair, config_.metrics);
  }
  if (config_.degradation.has_value()) {
    degradation_ = std::make_unique<fault::DegradationController>(
        *config_.degradation, config_.metrics, "server.degradation");
  }
}

common::StatusOr<MediaServer> MediaServer::Create(
    const disk::DiskGeometry& geometry, const disk::SeekTimeModel& seek,
    const MediaServerConfig& config) {
  if (config.num_disks <= 0) {
    return common::Status::InvalidArgument("num_disks must be positive");
  }
  if (config.round_length_s <= 0.0) {
    return common::Status::InvalidArgument("round length must be positive");
  }
  if (config.per_disk_stream_limit <= 0) {
    return common::Status::InvalidArgument(
        "per_disk_stream_limit must be positive (derive it from the "
        "admission model)");
  }
  if (config.fault_disk != -1 &&
      (config.fault_disk < 0 || config.fault_disk >= config.num_disks)) {
    return common::Status::InvalidArgument(
        "fault_disk must be -1 (all disks) or a valid disk index");
  }
  if (config.max_fragment_retries < 0) {
    return common::Status::InvalidArgument(
        "max_fragment_retries must be non-negative");
  }
  if (config.parity && config.num_disks < 2) {
    return common::Status::InvalidArgument(
        "parity striping needs at least 2 disks");
  }
  if (config.degraded_per_disk_stream_limit < 0) {
    return common::Status::InvalidArgument(
        "degraded_per_disk_stream_limit must be non-negative");
  }
  if (config.degraded_per_disk_stream_limit > 0 && !config.parity) {
    return common::Status::InvalidArgument(
        "degraded_per_disk_stream_limit requires parity striping");
  }
  if (config.repair.has_value()) {
    if (!config.parity) {
      return common::Status::InvalidArgument(
          "repair requires parity striping (there is nothing to rebuild "
          "from without parity)");
    }
    if (auto status = ValidateRepairPolicy(*config.repair); !status.ok()) {
      return status;
    }
  }
  std::vector<std::unique_ptr<fault::FaultInjector>> injectors;
  if (!config.faults.empty()) {
    injectors.resize(static_cast<size_t>(config.num_disks));
    const uint64_t family =
        numeric::SubstreamSeed(config.seed, kServerFaultSubstream);
    for (int d = 0; d < config.num_disks; ++d) {
      if (config.fault_disk != -1 && config.fault_disk != d) continue;
      auto injector = fault::FaultInjector::Create(
          config.faults, geometry.num_zones(),
          numeric::SubstreamSeed(family, static_cast<uint64_t>(d)),
          config.metrics, "server.fault.disk" + std::to_string(d));
      if (!injector.ok()) return injector.status();
      injectors[static_cast<size_t>(d)] = *std::move(injector);
    }
  }
  return MediaServer(geometry, seek, config, std::move(injectors));
}

common::StatusOr<int> MediaServer::OpenStream(
    std::shared_ptr<const workload::SizeDistribution> sizes) {
  return OpenStream(std::move(sizes), 0);
}

common::StatusOr<int> MediaServer::OpenStream(
    std::shared_ptr<const workload::SizeDistribution> sizes,
    int priority_class) {
  if (sizes == nullptr) {
    return common::Status::InvalidArgument("size distribution is null");
  }
  if (priority_class < 0) {
    return common::Status::InvalidArgument(
        "priority_class must be non-negative");
  }
  if (!admissions_open_) {
    if (config_.metrics != nullptr) {
      config_.metrics->GetCounter("server.admission.rejected_degraded")
          ->Increment();
    }
    return common::Status::ResourceExhausted(
        "admission control: server is degraded, admissions closed");
  }
  // Least-loaded phase; rejecting when it is full enforces the per-disk
  // limit exactly (every disk serves one phase's streams per round).
  // While a parity array is degraded, the degraded-mode limit applies,
  // so new admissions never push a survivor past the rebuilding bound.
  int phase = 0;
  for (int p = 1; p < NumPhases(); ++p) {
    if (phase_counts_[p] < phase_counts_[phase]) phase = p;
  }
  if (phase_counts_[phase] >= EffectivePhaseLimit()) {
    if (config_.metrics != nullptr) {
      config_.metrics->GetCounter("server.admission.rejected")->Increment();
    }
    return common::Status::ResourceExhausted(
        "admission control: server is at its stream limit");
  }
  StreamState state;
  state.phase = phase;
  state.priority_class = priority_class;
  state.source = std::make_unique<workload::IidSizeSource>(std::move(sizes));
  const int id = static_cast<int>(next_stream_id_++);
  streams_.emplace(id, std::move(state));
  ++phase_counts_[phase];
  if (config_.metrics != nullptr) {
    config_.metrics->GetCounter("server.admission.accepted")->Increment();
    config_.metrics->GetGauge("server.active_streams")
        ->Set(static_cast<double>(streams_.size()));
  }
  return id;
}

common::Status MediaServer::CloseStream(int stream_id) {
  auto it = streams_.find(stream_id);
  if (it == streams_.end()) {
    return common::Status::NotFound("no such stream");
  }
  --phase_counts_[it->second.phase];
  streams_.erase(it);
  if (config_.metrics != nullptr) {
    config_.metrics->GetCounter("server.streams.closed")->Increment();
    config_.metrics->GetGauge("server.active_streams")
        ->Set(static_cast<double>(streams_.size()));
  }
  return common::Status::Ok();
}

void MediaServer::RecordGlitch(int stream_id, double fragment_bytes) {
  auto it = streams_.find(stream_id);
  ZS_CHECK(it != streams_.end());
  StreamState& stream = it->second;
  stream.stats.glitches++;
  total_glitches_++;
  if (config_.max_fragment_retries <= 0) return;
  if (stream.retry_attempts < config_.max_fragment_retries) {
    // Re-issue the cut fragment next round instead of a fresh one.
    stream.retry_bytes = fragment_bytes;
    stream.retry_attempts++;
    stream.stats.retries++;
    fragments_retried_++;
    if (config_.metrics != nullptr) {
      config_.metrics->GetCounter("server.fragments.retried")->Increment();
    }
  } else {
    // Retry budget exhausted: drop the fragment and move on.
    stream.retry_bytes = -1.0;
    stream.retry_attempts = 0;
    stream.stats.drops++;
    fragments_dropped_++;
    if (config_.metrics != nullptr) {
      config_.metrics->GetCounter("server.fragments.dropped")->Increment();
    }
  }
}

void MediaServer::RunRound() {
  const int active_at_start = static_cast<int>(streams_.size());

  // Failure census. Every injector opens its round here — BeginRound
  // draws only from the injector's own per-disk substreams, so hoisting
  // it ahead of batch building leaves all request draws untouched — and
  // declares the stream load the disk is scheduled to carry (degraded
  // fan-out and repair reads appended below are served, and eligible for
  // per-request fault delays, but are not part of the declared load). A
  // disk whose spare took over reports healthy regardless of its dead
  // predecessor's injector.
  std::fill(round_failed_.begin(), round_failed_.end(), 0);
  int failed_count = 0;
  int failed_disk = -1;
  for (int d = 0; d < config_.num_disks; ++d) {
    fault::FaultInjector* injector = InjectorFor(d);
    if (injector == nullptr) continue;
    injector->BeginRound(PlannedPrimaryLoad(d));
    if (injector->disk_failed() && spare_active_[static_cast<size_t>(d)] == 0) {
      round_failed_[static_cast<size_t>(d)] = 1;
      if (failed_count == 0) failed_disk = d;
      ++failed_count;
    }
  }

  // Parity-mode failure transitions, before batches are built so this
  // round already runs with the degraded stream set and an armed rebuild.
  if (config_.parity) {
    degraded_now_ = failed_count > 0;
    if (degraded_now_ && !degraded_prev_) ShedToDegradedLimit();
    if (repair_ != nullptr) {
      if (failed_count == 0 && repair_->active()) {
        // The target healed on its own (transient fault): data intact.
        repair_->Cancel();
      } else if (failed_count == 1 &&
                 (!repair_->active() ||
                  repair_->target_disk() != failed_disk)) {
        repair_->StartRebuild(failed_disk);
      }
      // Two or more disks down: an armed rebuild stays active but claims
      // no budget (reconstruction needs all D-1 peers of the target).
    }
    degraded_prev_ = degraded_now_;
    NotifyLimitChangeIfNeeded();
  }

  // Gather this round's request batch per disk into the reused scratch
  // (clear keeps the capacity, so steady-state rounds allocate nothing).
  std::vector<std::vector<sched::DiskRequest>>& batches = batch_scratch_;
  for (auto& batch : batches) batch.clear();
  recon_scratch_.clear();
  const auto emit = [&](int disk, int stream_id, double bytes) {
    const disk::DiskPosition position = geometry_.SampleUniformPosition(&rng_);
    sched::DiskRequest request;
    request.stream_id = stream_id;
    request.cylinder = position.cylinder;
    request.zone = position.zone;
    request.transfer_rate_bps = position.transfer_rate_bps;
    request.bytes = bytes;
    request.rotational_latency_s = rng_.Uniform(0.0, geometry_.rotation_time());
    batches[static_cast<size_t>(disk)].push_back(request);
  };
  for (auto& [id, stream] : streams_) {
    if (!config_.parity) {
      const int disk_index = striping_.DiskForFragment(
          stream.phase, round_);
      const disk::DiskPosition position =
          geometry_.SampleUniformPosition(&rng_);
      sched::DiskRequest request;
      request.stream_id = id;
      request.cylinder = position.cylinder;
      request.zone = position.zone;
      request.transfer_rate_bps = position.transfer_rate_bps;
      if (stream.retry_bytes >= 0.0) {
        // A deadline-cut fragment awaiting re-issue: same size, fresh
        // position (no size draw, so the retry never shifts other streams'
        // draws — they happen per stream in map order either way).
        request.bytes = stream.retry_bytes;
        stream.retry_bytes = -1.0;
      } else {
        request.bytes = stream.source->NextFragmentBytes(&rng_);
        stream.next_fragment++;
        // A fresh fragment closes out any retried predecessor that made
        // its deadline: the retry budget is per fragment, not per stream.
        stream.retry_attempts = 0;
      }
      request.rotational_latency_s =
          rng_.Uniform(0.0, geometry_.rotation_time());
      batches[disk_index].push_back(request);
      stream.stats.rounds_served++;
      continue;
    }
    // Parity layout: stripe row = round index; phase j's unit lives on
    // the row's j-th data disk.
    const int home_disk =
        parity_striping_->DataDiskForFragment(stream.phase, round_);
    double bytes;
    if (stream.retry_bytes >= 0.0) {
      bytes = stream.retry_bytes;
      stream.retry_bytes = -1.0;
    } else {
      bytes = stream.source->NextFragmentBytes(&rng_);
      stream.next_fragment++;
      stream.retry_attempts = 0;
    }
    if (round_failed_[static_cast<size_t>(home_disk)] == 0) {
      emit(home_disk, id, bytes);
    } else if (failed_count == 1) {
      // Degraded read: reconstruct the lost unit from the stripe row's
      // D-1 survivors. The fragment's fate is resolved after all sweeps
      // (on time only if every reconstruction read is).
      for (int d = 0; d < config_.num_disks; ++d) {
        if (d == home_disk) continue;
        emit(d, id, bytes);
      }
      recon_scratch_.emplace(id, ReconOutcome{bytes, false});
    } else {
      // Two or more disks down: reconstruction is impossible, so the
      // fragment rides the failed home disk's batch and glitches through
      // the standard disk-failed retry/drop path.
      emit(home_disk, id, bytes);
    }
    stream.stats.rounds_served++;
  }
  if (!recon_scratch_.empty() && config_.metrics != nullptr) {
    config_.metrics->GetCounter("server.repair.reconstruction_reads")
        ->Increment(static_cast<int64_t>(recon_scratch_.size()) *
                    (config_.num_disks - 1));
  }

  // Repair-as-a-workload: claim this round's throttled stripe-rebuild
  // budget and schedule its reconstruction reads through the same SCAN
  // sweeps as stream I/O. Only a single-failure round with the rebuild
  // target down can make progress.
  int repair_jobs = 0;
  if (config_.parity && repair_ != nullptr && repair_->active() &&
      failed_count == 1 && failed_disk == repair_->target_disk()) {
    repair_jobs = repair_->ClaimRoundBudget();
    repair_job_late_.assign(static_cast<size_t>(repair_jobs), 0);
    for (int j = 0; j < repair_jobs; ++j) {
      for (int d = 0; d < config_.num_disks; ++d) {
        if (d == failed_disk) continue;
        emit(d, kRepairStreamIdBase - j, repair_->policy().read_bytes);
      }
    }
    if (config_.metrics != nullptr) {
      config_.metrics->GetCounter("server.repair.reads")
          ->Increment(static_cast<int64_t>(repair_jobs) *
                      (config_.num_disks - 1));
    }
  }

  // Serve every disk's batch with its own SCAN sweep.
  int round_glitches = 0;  // stream *fragments* judged late this round
  bool round_overran = false;
  int repair_reads_late = 0;
  for (int d = 0; d < config_.num_disks; ++d) {
    std::vector<sched::DiskRequest>& batch = batches[d];
    fault::FaultInjector* injector = InjectorFor(d);
    double fault_delay_s = 0.0;
    int faulted_requests = 0;
    const bool disk_failed = round_failed_[static_cast<size_t>(d)] != 0;
    if (injector != nullptr && spare_active_[static_cast<size_t>(d)] == 0) {
      if (!disk_failed) {
        // Fault delays ride in the rotational-latency slot, consulted in
        // issue order (pre-SCAN-sort) as the simulators do.
        for (size_t i = 0; i < batch.size(); ++i) {
          const fault::RequestFaultContext context{
              static_cast<int>(i), batch[i].stream_id, batch[i].zone,
              batch[i].cylinder};
          const double delay = injector->DelayFor(context);
          if (delay > 0.0) {
            batch[i].rotational_latency_s += delay;
            ++faulted_requests;
            fault_delay_s += delay;
          }
          batch[i].transfer_rate_bps *=
              injector->RateMultiplier(batch[i].zone);
        }
      }
    }

    if (disk_failed) {
      // Nothing is served: every stream scheduled on this disk glitches
      // and the retry policy decides each fragment's fate. The arm stays
      // put and the disk idles for the round.
      for (const sched::DiskRequest& request : batch) {
        ++round_glitches;
        RecordGlitch(request.stream_id, request.bytes);
      }
      busy_fraction_[d].Add(0.0);
      ascending_[d] = !ascending_[d];
      if (config_.metrics != nullptr) {
        obs::Registry* registry = config_.metrics;
        registry->GetCounter("server.requests")
            ->Increment(static_cast<int64_t>(batch.size()));
        registry->GetCounter("server.glitches")
            ->Increment(static_cast<int64_t>(batch.size()));
        registry->GetHistogram("server.disk.service_time_s")->Record(0.0);
        registry->GetHistogram("server.disk.utilization")->Record(0.0);
      }
      if (config_.trace != nullptr) {
        obs::RoundTraceEvent event;
        event.round = round_;
        event.source_id = d;
        event.num_requests = static_cast<int>(batch.size());
        event.glitches = static_cast<int>(batch.size());
        event.disk_failed = true;
        event.truncated_requests = static_cast<int>(batch.size());
        event.leftover_s = config_.round_length_s;
        event.zone_hits.assign(geometry_.num_zones(), 0);
        for (const sched::DiskRequest& request : batch) {
          ++event.zone_hits[request.zone];
        }
        config_.trace->Record(std::move(event));
      }
      continue;
    }

    const sched::SweepDirection direction =
        ascending_[d] ? sched::SweepDirection::kAscending
                      : sched::SweepDirection::kDescending;
    sched::SortForScan(&batch, direction);
    const sched::RoundTiming timing =
        sched::ExecuteScanRound(seek_, batch, arm_cylinder_[d]);
    busy_fraction_[d].Add(
        std::fmin(timing.total_service_time_s, config_.round_length_s) /
        config_.round_length_s);

    int last_on_time_cylinder = arm_cylinder_[d];
    int disk_glitches = 0;       // late stream requests (trace/metrics)
    int disk_repair_reads = 0;
    int disk_repair_late = 0;
    double repair_busy_s = 0.0;  // repair share of this disk's sweep
    for (size_t i = 0; i < timing.per_request.size(); ++i) {
      const sched::RequestTiming& rt = timing.per_request[i];
      const bool late = rt.completion_s > config_.round_length_s;
      if (rt.stream_id < 0) {
        // Repair read for stripe-rebuild job (kRepairStreamIdBase - id).
        const int job = kRepairStreamIdBase - rt.stream_id;
        ++disk_repair_reads;
        repair_busy_s += rt.seek_s + rt.rotation_s + rt.transfer_s;
        if (late) {
          repair_job_late_[static_cast<size_t>(job)] = 1;
          ++disk_repair_late;
          ++repair_reads_late;
        } else {
          last_on_time_cylinder = batch[i].cylinder;
        }
        continue;
      }
      if (late) {
        ++disk_glitches;
        const auto recon = recon_scratch_.find(rt.stream_id);
        if (recon != recon_scratch_.end()) {
          // One late reconstruction read spoils the whole fragment; the
          // ledger entry is charged once, after all sweeps.
          recon->second.late = true;
        } else {
          ++round_glitches;
          RecordGlitch(rt.stream_id, batch[i].bytes);
        }
      } else {
        last_on_time_cylinder = batch[i].cylinder;
        if (recon_scratch_.empty() ||
            recon_scratch_.find(rt.stream_id) == recon_scratch_.end()) {
          fragments_served_++;
        }
      }
    }
    if (timing.total_service_time_s > config_.round_length_s) {
      round_overran = true;
    }
    arm_cylinder_[d] = disk_glitches + disk_repair_late > 0
                           ? last_on_time_cylinder
                           : timing.final_arm_cylinder;
    ascending_[d] = !ascending_[d];
    if (disk_repair_reads > 0 && config_.metrics != nullptr) {
      config_.metrics->GetHistogram("server.repair.disk_time_s")
          ->Record(repair_busy_s);
    }

    // Observability: per-(round, disk) metrics and one trace event with
    // source_id = disk index. Injected fault delays ride in the rotation
    // slot, so they are subtracted back out of the rotation component.
    if (config_.metrics != nullptr || config_.trace != nullptr) {
      double seek_sum = 0.0;
      double rotation_sum = 0.0;
      double transfer_sum = 0.0;
      for (const sched::RequestTiming& rt : timing.per_request) {
        seek_sum += rt.seek_s;
        rotation_sum += rt.rotation_s;
        transfer_sum += rt.transfer_s;
      }
      rotation_sum -= fault_delay_s;
      if (config_.metrics != nullptr) {
        obs::Registry* registry = config_.metrics;
        registry->GetCounter("server.requests")
            ->Increment(static_cast<int64_t>(batch.size()));
        registry->GetCounter("server.glitches")->Increment(disk_glitches);
        if (timing.total_service_time_s > config_.round_length_s) {
          registry->GetCounter("server.overruns")->Increment();
        }
        registry->GetHistogram("server.disk.service_time_s")
            ->Record(timing.total_service_time_s);
        registry->GetHistogram("server.disk.utilization")
            ->Record(
                std::fmin(timing.total_service_time_s,
                          config_.round_length_s) /
                config_.round_length_s);
      }
      if (config_.trace != nullptr) {
        obs::RoundTraceEvent event;
        event.round = round_;
        event.source_id = d;
        event.num_requests = static_cast<int>(batch.size());
        event.service_time_s = timing.total_service_time_s;
        event.seek_s = seek_sum;
        event.rotation_s = rotation_sum;
        event.transfer_s = transfer_sum;
        event.fault_delay_s = fault_delay_s;
        event.faulted_requests = faulted_requests;
        event.glitches = disk_glitches;
        event.overran = timing.total_service_time_s > config_.round_length_s;
        event.leftover_s = std::fmax(
            0.0, config_.round_length_s - timing.total_service_time_s);
        event.zone_hits.assign(geometry_.num_zones(), 0);
        for (const sched::DiskRequest& request : batch) {
          ++event.zone_hits[request.zone];
        }
        config_.trace->Record(std::move(event));
      }
    }
  }
  // Resolve degraded fragments: on time only if every surviving disk's
  // reconstruction read met the deadline.
  for (const auto& [id, outcome] : recon_scratch_) {
    if (outcome.late) {
      ++round_glitches;
      RecordGlitch(id, outcome.bytes);
    } else {
      fragments_served_++;
      reconstructed_fragments_++;
      if (config_.metrics != nullptr) {
        config_.metrics->GetCounter("server.repair.reconstructed_fragments")
            ->Increment();
      }
    }
  }

  // Account this round's rebuild progress. A stripe counts only when all
  // of its reconstruction reads were on time; incomplete jobs need no
  // carry state — later rounds simply claim those stripes again.
  if (repair_jobs > 0) {
    if (repair_reads_late > 0 && config_.metrics != nullptr) {
      config_.metrics->GetCounter("server.repair.read_glitches")
          ->Increment(repair_reads_late);
    }
    int completed = 0;
    for (const uint8_t late : repair_job_late_) {
      if (late == 0) ++completed;
    }
    const int target = repair_->target_disk();
    if (repair_->RecordRoundOutcome(completed)) {
      // Rebuild done: the spare takes the failed disk's slot. Clear the
      // degraded flag right away (not at the next census) so admission
      // and the degraded limit lift as soon as the array is whole.
      spare_active_[static_cast<size_t>(target)] = 1;
      round_failed_[static_cast<size_t>(target)] = 0;
      degraded_now_ = false;
      for (const uint8_t failed : round_failed_) {
        if (failed != 0) degraded_now_ = true;
      }
      // Keep the edge detector honest: a *new* failure next round is a
      // fresh degraded edge and must shed again.
      degraded_prev_ = degraded_now_;
      NotifyLimitChangeIfNeeded();
    }
  }
  if (config_.parity && failed_count > 0) {
    rounds_degraded_++;
    if (config_.metrics != nullptr) {
      config_.metrics->GetCounter("server.repair.rounds_degraded")
          ->Increment();
    }
  }

  if (config_.metrics != nullptr) {
    config_.metrics->GetCounter("server.rounds")->Increment();
  }
  ++round_;

  // Degradation: feed the round's measurements to the controller and
  // carry out its orders. Runs after round_ advances so shed streams drop
  // out starting with the next round's batches.
  if (degradation_ != nullptr) {
    const fault::DegradationCommand command = degradation_->ObserveRound(
        active_at_start, round_glitches, round_overran);
    admissions_open_ = command.admissions_open;
    if (command.shed_streams > 0) ShedStreams(command.shed_streams);
  }
}

void MediaServer::ShedStreams(int count) {
  // Victims: lowest priority class first; within a class, newest stream
  // (highest id) first, so long-lived viewers survive a shed.
  std::vector<std::pair<int, int>> candidates;  // (priority_class, id)
  candidates.reserve(streams_.size());
  for (const auto& [id, stream] : streams_) {
    candidates.emplace_back(stream.priority_class, id);
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const std::pair<int, int>& a, const std::pair<int, int>& b) {
              if (a.first != b.first) return a.first < b.first;
              return a.second > b.second;
            });
  const int to_shed = std::min<int>(count, static_cast<int>(candidates.size()));
  for (int i = 0; i < to_shed; ++i) {
    ZS_CHECK(CloseStream(candidates[static_cast<size_t>(i)].second).ok());
    streams_shed_++;
    if (config_.metrics != nullptr) {
      config_.metrics->GetCounter("server.streams.shed")->Increment();
    }
  }
}

void MediaServer::ShedToDegradedLimit() {
  const int limit = EffectivePhaseLimit();
  for (int p = 0; p < NumPhases(); ++p) {
    int excess = phase_counts_[static_cast<size_t>(p)] - limit;
    if (excess <= 0) continue;
    // Same victim order as ShedStreams, restricted to this phase: lowest
    // priority class first, newest first within a class.
    std::vector<std::pair<int, int>> candidates;  // (priority_class, id)
    for (const auto& [id, stream] : streams_) {
      if (stream.phase == p) candidates.emplace_back(stream.priority_class, id);
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const std::pair<int, int>& a, const std::pair<int, int>& b) {
                if (a.first != b.first) return a.first < b.first;
                return a.second > b.second;
              });
    for (int i = 0; i < excess; ++i) {
      ZS_CHECK(CloseStream(candidates[static_cast<size_t>(i)].second).ok());
      streams_shed_++;
      if (config_.metrics != nullptr) {
        config_.metrics->GetCounter("server.streams.shed")->Increment();
      }
    }
  }
}

int MediaServer::EffectivePhaseLimit() const {
  if (config_.parity && degraded_now_ &&
      config_.degraded_per_disk_stream_limit > 0) {
    return std::min(config_.per_disk_stream_limit,
                    config_.degraded_per_disk_stream_limit);
  }
  return config_.per_disk_stream_limit;
}

void MediaServer::SetLimitChangeCallback(LimitChangeCallback callback) {
  limit_change_callback_ = std::move(callback);
  last_notified_limit_ = -1;  // force the registration-time notification
  NotifyLimitChangeIfNeeded();
}

void MediaServer::NotifyLimitChangeIfNeeded() {
  if (!limit_change_callback_) return;
  const int limit = EffectivePhaseLimit();
  if (limit == last_notified_limit_) return;
  last_notified_limit_ = limit;
  limit_change_callback_(limit, NumPhases(), degraded_now_);
}

int MediaServer::PlannedPrimaryLoad(int disk) const {
  if (config_.parity) {
    const int phase = parity_striping_->PhaseForDisk(disk, round_);
    return phase >= 0 ? phase_counts_[static_cast<size_t>(phase)] : 0;
  }
  // Round-robin: disk (phase + r) mod D serves phase ((disk - r) mod D).
  const int64_t num_disks = config_.num_disks;
  const int phase = static_cast<int>(
      ((static_cast<int64_t>(disk) - round_) % num_disks + num_disks) %
      num_disks);
  return phase_counts_[static_cast<size_t>(phase)];
}

void MediaServer::RunRounds(int rounds) {
  ZS_CHECK_GE(rounds, 0);
  for (int r = 0; r < rounds; ++r) RunRound();
}

common::StatusOr<StreamStats> MediaServer::GetStreamStats(
    int stream_id) const {
  auto it = streams_.find(stream_id);
  if (it == streams_.end()) {
    return common::Status::NotFound("no such stream");
  }
  return it->second.stats;
}

MediaServerState MediaServer::ExportState() const {
  MediaServerState state;
  state.rng_state = rng_.SaveState();
  state.round = round_;
  state.next_stream_id = next_stream_id_;
  state.streams.reserve(streams_.size());
  for (const auto& [id, stream] : streams_) {
    StreamSnapshotState snapshot;
    snapshot.stream_id = id;
    snapshot.phase = stream.phase;
    snapshot.priority_class = stream.priority_class;
    snapshot.next_fragment = stream.next_fragment;
    snapshot.retry_bytes = stream.retry_bytes;
    snapshot.retry_attempts = stream.retry_attempts;
    snapshot.stats = stream.stats;
    state.streams.push_back(snapshot);
  }
  state.arm_cylinder.assign(arm_cylinder_.begin(), arm_cylinder_.end());
  state.ascending.reserve(ascending_.size());
  for (const bool ascending : ascending_) {
    state.ascending.push_back(ascending ? 1 : 0);
  }
  for (int d = 0; d < config_.num_disks; ++d) {
    const bool present = static_cast<size_t>(d) < fault_injectors_.size() &&
                         fault_injectors_[static_cast<size_t>(d)] != nullptr;
    state.injector_present.push_back(present ? 1 : 0);
    if (present) {
      state.fault_injectors.push_back(
          fault_injectors_[static_cast<size_t>(d)]->ExportState());
    }
  }
  state.has_degradation = degradation_ != nullptr;
  if (degradation_ != nullptr) state.degradation = degradation_->ExportState();
  state.admissions_open = admissions_open_;
  state.fragments_served = fragments_served_;
  state.total_glitches = total_glitches_;
  state.fragments_retried = fragments_retried_;
  state.fragments_dropped = fragments_dropped_;
  state.streams_shed = streams_shed_;
  state.busy_fraction.reserve(busy_fraction_.size());
  for (const numeric::RunningStats& busy : busy_fraction_) {
    state.busy_fraction.push_back(busy.ExportState());
  }
  state.spare_active.assign(spare_active_.begin(), spare_active_.end());
  state.repair_present = repair_ != nullptr;
  if (repair_ != nullptr) state.repair = repair_->ExportState();
  state.reconstructed_fragments = reconstructed_fragments_;
  state.rounds_degraded = rounds_degraded_;
  return state;
}

common::Status MediaServer::RestoreState(
    const MediaServerState& state, const StreamDistributionResolver& resolver) {
  const size_t disks = static_cast<size_t>(config_.num_disks);
  if (state.arm_cylinder.size() != disks || state.ascending.size() != disks ||
      state.injector_present.size() != disks ||
      state.busy_fraction.size() != disks ||
      state.spare_active.size() != disks) {
    return common::Status::InvalidArgument(
        "server state per-disk vectors do not match num_disks");
  }
  if (state.round < 0 || state.next_stream_id < 0 ||
      state.fragments_served < 0 || state.total_glitches < 0 ||
      state.fragments_retried < 0 || state.fragments_dropped < 0 ||
      state.streams_shed < 0 || state.reconstructed_fragments < 0 ||
      state.rounds_degraded < 0) {
    return common::Status::InvalidArgument(
        "server state counters must be non-negative");
  }
  if (state.repair_present != (repair_ != nullptr)) {
    return common::Status::InvalidArgument(
        "server state repair presence does not match the config");
  }
  if (state.repair_present &&
      (state.repair.target_disk < -1 ||
       state.repair.target_disk >= config_.num_disks)) {
    return common::Status::InvalidArgument(
        "server state repair target disk out of range");
  }
  for (const uint8_t spare : state.spare_active) {
    if (spare > 1) {
      return common::Status::InvalidArgument(
          "server state boolean flags must be 0 or 1");
    }
    if (spare != 0 && !config_.parity) {
      return common::Status::InvalidArgument(
          "server state carries an active spare without parity striping");
    }
  }
  size_t present_count = 0;
  for (size_t d = 0; d < disks; ++d) {
    if (state.arm_cylinder[d] < 0 ||
        state.arm_cylinder[d] >= geometry_.cylinders()) {
      return common::Status::InvalidArgument(
          "server state arm cylinder out of the disk's range");
    }
    if (state.ascending[d] > 1 || state.injector_present[d] > 1) {
      return common::Status::InvalidArgument(
          "server state boolean flags must be 0 or 1");
    }
    const bool actual = d < fault_injectors_.size() &&
                        fault_injectors_[d] != nullptr;
    if ((state.injector_present[d] != 0) != actual) {
      return common::Status::InvalidArgument(
          "server state fault-injector layout does not match the config "
          "(was the snapshot taken with a different fault spec?)");
    }
    if (state.injector_present[d] != 0) ++present_count;
  }
  if (state.fault_injectors.size() != present_count) {
    return common::Status::InvalidArgument(
        "server state fault-injector count does not match the presence "
        "flags");
  }
  if (state.has_degradation != (degradation_ != nullptr)) {
    return common::Status::InvalidArgument(
        "server state degradation presence does not match the config");
  }
  // Rebuild the stream map (and derived phase counts) against the
  // config's admission limits before touching any member.
  std::vector<int> phase_counts(static_cast<size_t>(NumPhases()), 0);
  std::map<int, StreamState> streams;
  for (const StreamSnapshotState& snapshot : state.streams) {
    if (snapshot.stream_id < 0 || snapshot.stream_id >= state.next_stream_id) {
      return common::Status::InvalidArgument(
          "server state stream id outside [0, next_stream_id)");
    }
    if (snapshot.phase < 0 || snapshot.phase >= NumPhases()) {
      return common::Status::InvalidArgument(
          "server state stream phase out of range");
    }
    if (snapshot.priority_class < 0 || snapshot.next_fragment < 0 ||
        snapshot.retry_attempts < 0 ||
        snapshot.retry_attempts > config_.max_fragment_retries ||
        snapshot.stats.rounds_served < 0 || snapshot.stats.glitches < 0 ||
        snapshot.stats.retries < 0 || snapshot.stats.drops < 0) {
      return common::Status::InvalidArgument(
          "server state stream counters out of range");
    }
    if (++phase_counts[static_cast<size_t>(snapshot.phase)] >
        config_.per_disk_stream_limit) {
      return common::Status::InvalidArgument(
          "server state carries more streams on one phase than the "
          "admission limit allows");
    }
    std::shared_ptr<const workload::SizeDistribution> distribution =
        resolver ? resolver(snapshot) : nullptr;
    if (distribution == nullptr) {
      return common::Status::InvalidArgument(
          "no size distribution resolved for stream " +
          std::to_string(snapshot.stream_id));
    }
    StreamState stream;
    stream.phase = snapshot.phase;
    stream.priority_class = snapshot.priority_class;
    stream.next_fragment = snapshot.next_fragment;
    stream.source =
        std::make_unique<workload::IidSizeSource>(std::move(distribution));
    stream.retry_bytes = snapshot.retry_bytes;
    stream.retry_attempts = snapshot.retry_attempts;
    stream.stats = snapshot.stats;
    if (!streams.emplace(snapshot.stream_id, std::move(stream)).second) {
      return common::Status::InvalidArgument(
          "server state carries duplicate stream id " +
          std::to_string(snapshot.stream_id));
    }
  }
  numeric::Rng rng(config_.seed);
  if (auto status = rng.LoadState(state.rng_state); !status.ok()) {
    return status;
  }
  // Sub-component imports validate before mutating themselves, so running
  // them before the scalar commit keeps a failed restore from leaving the
  // server's own fields half-written.
  size_t next_injector = 0;
  for (size_t d = 0; d < disks; ++d) {
    if (state.injector_present[d] == 0) continue;
    if (auto status = fault_injectors_[d]->ImportState(
            state.fault_injectors[next_injector++]);
        !status.ok()) {
      return status;
    }
  }
  if (degradation_ != nullptr) {
    if (auto status = degradation_->ImportState(state.degradation);
        !status.ok()) {
      return status;
    }
  }
  if (repair_ != nullptr) {
    if (auto status = repair_->ImportState(state.repair); !status.ok()) {
      return status;
    }
  }
  rng_ = rng;
  round_ = state.round;
  next_stream_id_ = state.next_stream_id;
  streams_ = std::move(streams);
  phase_counts_ = std::move(phase_counts);
  arm_cylinder_.assign(state.arm_cylinder.begin(), state.arm_cylinder.end());
  ascending_.clear();
  for (const uint8_t ascending : state.ascending) {
    ascending_.push_back(ascending != 0);
  }
  admissions_open_ = state.admissions_open;
  fragments_served_ = state.fragments_served;
  total_glitches_ = state.total_glitches;
  fragments_retried_ = state.fragments_retried;
  fragments_dropped_ = state.fragments_dropped;
  streams_shed_ = state.streams_shed;
  for (size_t d = 0; d < disks; ++d) {
    busy_fraction_[d].ImportState(state.busy_fraction[d]);
  }
  spare_active_.assign(state.spare_active.begin(), state.spare_active.end());
  reconstructed_fragments_ = state.reconstructed_fragments;
  rounds_degraded_ = state.rounds_degraded;
  // The degraded census is derived state: recompute it from the restored
  // injectors and spares (failure flags only change inside BeginRound, so
  // this reproduces the value the exporting server held).
  degraded_now_ = false;
  if (config_.parity) {
    for (size_t d = 0; d < disks; ++d) {
      const fault::FaultInjector* injector = InjectorFor(static_cast<int>(d));
      if (injector != nullptr && injector->disk_failed() &&
          spare_active_[d] == 0) {
        degraded_now_ = true;
        break;
      }
    }
  }
  degraded_prev_ = degraded_now_;
  NotifyLimitChangeIfNeeded();
  return common::Status::Ok();
}

ServerStats MediaServer::GetServerStats() const {
  ServerStats stats;
  stats.rounds = round_;
  stats.fragments_served = fragments_served_;
  stats.glitches = total_glitches_;
  stats.fragments_retried = fragments_retried_;
  stats.fragments_dropped = fragments_dropped_;
  stats.streams_shed = streams_shed_;
  stats.reconstructed_fragments = reconstructed_fragments_;
  stats.repair_stripes_rebuilt =
      repair_ != nullptr ? repair_->stripes_rebuilt() : 0;
  stats.rounds_degraded = rounds_degraded_;
  stats.disk_utilization.reserve(config_.num_disks);
  for (const numeric::RunningStats& busy : busy_fraction_) {
    stats.disk_utilization.push_back(busy.count() > 0 ? busy.mean() : 0.0);
  }
  return stats;
}

}  // namespace zonestream::server
