// RAID-5 rotating-parity striping over D disks (ROADMAP item 1).
//
// Extends the coarse-grained round-robin layout (§2.1, striping.h) with a
// parity stripe unit: stripe row s holds D-1 data units plus one parity
// unit, and the parity unit rotates one disk per row (left-symmetric
// layout) so parity I/O never concentrates on a single spindle. The
// server identifies stripe rows with service rounds: in round r every
// stream reads its fragment from row r's layout, so the D-1 data phases
// map to the D-1 non-parity disks and the parity disk serves no stream
// read that round (the array's streaming capacity is (D-1)/D of raw —
// the classic RAID-5 read geometry).
//
// Degraded reads: when one disk is down, a fragment that lived on it is
// reconstructed by XOR from the stripe row's D-1 surviving units — one
// read on every surviving disk. When the *parity* disk of a row is the
// failed one, the row's data is fully intact and no reconstruction is
// needed at all.
//
// Stable-mapping contract: like RoundRobinStriping, this object is a pure
// function of the ORIGINAL array width D. Failed disks keep their slot
// (they simply stop serving); never re-instantiate the layout with the
// survivor count, which would silently remap every in-flight stream's
// fragment→disk chain.
#ifndef ZONESTREAM_SERVER_PARITY_STRIPING_H_
#define ZONESTREAM_SERVER_PARITY_STRIPING_H_

#include <cstdint>

#include "common/check.h"

namespace zonestream::server {

// Left-symmetric rotating-parity fragment-to-disk mapping.
class ParityStriping {
 public:
  explicit ParityStriping(int num_disks) : num_disks_(num_disks) {
    ZS_CHECK_GE(num_disks, 2);
  }

  int num_disks() const { return num_disks_; }

  // Data phases per stripe row (one disk per row holds parity).
  int num_data_phases() const { return num_disks_ - 1; }

  // Disk holding stripe row `stripe`'s parity unit: rotates backwards one
  // disk per row (row 0 -> disk D-1, row 1 -> disk D-2, ...).
  int ParityDiskForStripe(int64_t stripe) const {
    ZS_CHECK_GE(stripe, 0);
    const int64_t d = num_disks_;
    return static_cast<int>(((-1 - stripe) % d + d) % d);
  }

  // Disk holding data phase `phase`'s unit of stripe row `stripe`. Phases
  // shift in lockstep with the parity rotation, so a stream visits every
  // disk cyclically and never lands on the row's parity disk.
  int DataDiskForFragment(int phase, int64_t stripe) const {
    ZS_CHECK_GE(phase, 0);
    ZS_CHECK_LT(phase, num_data_phases());
    ZS_CHECK_GE(stripe, 0);
    const int64_t d = num_disks_;
    return static_cast<int>(((phase - stripe) % d + d) % d);
  }

  // Inverse of DataDiskForFragment: the data phase disk `disk` serves in
  // stripe row `stripe`, or -1 when `disk` holds that row's parity.
  int PhaseForDisk(int disk, int64_t stripe) const {
    ZS_CHECK_GE(disk, 0);
    ZS_CHECK_LT(disk, num_disks_);
    ZS_CHECK_GE(stripe, 0);
    const int64_t d = num_disks_;
    const int phase = static_cast<int>(((disk + stripe) % d + d) % d);
    return phase == num_disks_ - 1 ? -1 : phase;
  }

 private:
  int num_disks_;
};

}  // namespace zonestream::server

#endif  // ZONESTREAM_SERVER_PARITY_STRIPING_H_
