// Planning for heterogeneous disk arrays (extension X6).
//
// Real arrays mix drive generations. Round-robin striping (§2.1) spreads
// every stream across ALL disks, so each disk must absorb the same
// per-round load — the weakest disk caps the whole array at
// D * N_max(weakest). Partitioning the array into homogeneous groups,
// each striped internally, admits the sum of the groups' capacities
// instead. This module quantifies the difference for a given array and
// QoS contract.
#ifndef ZONESTREAM_SERVER_ARRAY_PLANNER_H_
#define ZONESTREAM_SERVER_ARRAY_PLANNER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "disk/disk_geometry.h"
#include "disk/seek_model.h"

namespace zonestream::obs {
class Registry;
}  // namespace zonestream::obs

namespace zonestream::server {

// One homogeneous group of identical disks within the array.
struct DiskGroup {
  std::string name;
  disk::DiskParameters disk_parameters;
  disk::SeekParameters seek_parameters;
  int count = 0;
};

// QoS contract for array planning (per-round criterion).
struct ArrayQos {
  double round_length_s = 1.0;
  double late_tolerance = 0.01;
};

// Capacity plan for a heterogeneous array.
struct ArrayPlan {
  // Per-group per-disk admission limits, parallel to the input groups.
  std::vector<int> per_disk_limits;
  // Strategy A: stripe across the whole array -> every disk carries the
  // same load, capped by the weakest group's per-disk limit.
  int striped_capacity = 0;
  // Strategy B: partition into homogeneous sub-arrays.
  int partitioned_capacity = 0;
};

// Computes both strategies' capacities for fragments with the given
// moments. Each group's model build and admission scan is independent, so
// the groups are evaluated in parallel on `pool` (null = the global pool);
// the per-group results are reduced in group order, making the plan
// bit-identical at every thread count.
//
// When `metrics` is non-null (not owned), each group's wall-clock plan
// latency is recorded into the "server.array_planner.group_plan_s"
// histogram (thread-safe; groups plan concurrently) and the resulting
// capacities land in "server.array_planner.*" gauges.
common::StatusOr<ArrayPlan> PlanArray(const std::vector<DiskGroup>& groups,
                                      double fragment_mean_bytes,
                                      double fragment_variance_bytes2,
                                      const ArrayQos& qos,
                                      common::ThreadPool* pool = nullptr,
                                      obs::Registry* metrics = nullptr);

// Re-plans the array after whole-disk failures: `failed_disks[i]` disks
// of group i (0 <= failed <= count) are out of service. Per-disk limits
// are unchanged (they are a property of the drive model, not the array),
// but both capacities are recomputed over the survivors — striped
// capacity is the weakest *surviving* group's limit times the surviving
// disk count, so losing the last disk of the weakest group can raise the
// per-disk cap even as total capacity falls. An array with no surviving
// disks returns FailedPrecondition (there is nothing left to plan onto);
// a degradation loop should treat that as "shed everything", not retry.
//
// The returned limits stay indexed by ORIGINAL group order, and capacity
// is a count, never a renumbering: survivors keep their original disk
// indices (see the stable-mapping contract in server/striping.h). Do not
// rebuild a striping object with the survivor count when applying a
// degraded plan.
common::StatusOr<ArrayPlan> PlanArrayDegraded(
    const std::vector<DiskGroup>& groups, const std::vector<int>& failed_disks,
    double fragment_mean_bytes, double fragment_variance_bytes2,
    const ArrayQos& qos, common::ThreadPool* pool = nullptr,
    obs::Registry* metrics = nullptr);

}  // namespace zonestream::server

#endif  // ZONESTREAM_SERVER_ARRAY_PLANNER_H_
