// Online rebuild of a failed parity-array disk, modeled as a workload.
//
// ROADMAP item 1 / SNS-repair shape: when a disk of a parity-striped
// array fails, a RepairController drives reconstruction of its contents
// onto a hot spare. Repair is not free background magic — each claimed
// stripe-rebuild job turns into one reconstruction read on every
// surviving disk, issued through the same SCAN-scheduled round as stream
// I/O, so repair and streams contend for the same round time. The
// throttle (stripe jobs per round) is the knob trading rebuild time
// against stream headroom; the matching admission bound is
// core::MaxStreamsByLateProbabilityDegraded.
//
// The controller itself only does bookkeeping: which disk is being
// rebuilt, how many stripes are done, and how the round's budget is
// claimed. MediaServer owns scheduling the reads and reporting which
// jobs completed on time (a stripe counts as rebuilt only when every
// surviving disk's read met the round deadline; incomplete jobs are
// simply retried by later rounds, so progress needs no carry state).
#ifndef ZONESTREAM_SERVER_REPAIR_H_
#define ZONESTREAM_SERVER_REPAIR_H_

#include <cstdint>

#include "common/status.h"
#include "obs/metrics.h"

namespace zonestream::server {

// Tuning for one rebuild. All fields are validated by ValidateRepairPolicy.
struct RepairPolicy {
  // Stripe-rebuild jobs claimed per round while degraded. Each job costs
  // one reconstruction read per surviving disk, so with D disks a round
  // carries up to throttle_per_round * (D - 1) repair reads.
  int throttle_per_round = 4;

  // Stripes the failed disk holds; the rebuild finishes when this many
  // stripes have been reconstructed onto the spare.
  int64_t total_stripes = 0;

  // Bytes per reconstruction read. Pair it with the streams' mean
  // fragment size so the degraded admission bound (which models repair
  // reads as stream-like requests) stays honest.
  double read_bytes = 0.0;
};

common::Status ValidateRepairPolicy(const RepairPolicy& policy);

// Serialized rebuild progress (recovery:: snapshots).
struct RepairControllerState {
  bool active = false;
  int target_disk = -1;        // meaningful while active or after completion
  int64_t stripes_rebuilt = 0;
};

// Bookkeeping for rebuilding one failed disk onto a spare.
class RepairController {
 public:
  // `metrics` may be null; when present the controller publishes
  // server.repair.active / .target_disk / .eta_rounds gauges and
  // server.repair.{stripes_rebuilt,completed,cancelled} counters.
  RepairController(const RepairPolicy& policy, obs::Registry* metrics);

  const RepairPolicy& policy() const { return policy_; }
  bool active() const { return active_; }
  int target_disk() const { return target_disk_; }
  int64_t stripes_rebuilt() const { return stripes_rebuilt_; }
  int64_t stripes_remaining() const {
    return policy_.total_stripes - stripes_rebuilt_;
  }

  // Rounds left at full throttle (ceiling); 0 when idle or finished.
  int64_t EtaRounds() const;

  // Arms a rebuild of `target_disk` onto the spare. No-op when already
  // rebuilding that disk; switching disks restarts progress from zero.
  void StartRebuild(int target_disk);

  // The target came back on its own (transient fault): its data is
  // intact, so drop the rebuild and reset progress.
  void Cancel();

  // Stripe-rebuild jobs the server should schedule this round:
  // min(throttle, stripes remaining), 0 when not active.
  int ClaimRoundBudget() const;

  // Accounts one round's outcomes: `completed` of the claimed jobs had
  // every surviving disk's read finish on time. Returns true exactly
  // when this call finished the rebuild (caller promotes the spare);
  // the controller then deactivates but keeps target/progress for
  // inspection.
  bool RecordRoundOutcome(int completed);

  RepairControllerState ExportState() const;
  common::Status ImportState(const RepairControllerState& state);

 private:
  void PublishGauges();

  RepairPolicy policy_;
  obs::Registry* metrics_;
  bool active_ = false;
  int target_disk_ = -1;
  int64_t stripes_rebuilt_ = 0;
};

}  // namespace zonestream::server

#endif  // ZONESTREAM_SERVER_REPAIR_H_
