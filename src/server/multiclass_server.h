// Class-aware media server (extension X1 at the server layer).
//
// Like MediaServer, but streams belong to declared classes (video, audio,
// ...) with different fragment statistics, and admission checks the
// multi-class transform per phase: a stream of class c is admitted onto
// the least-loaded phase only if that phase's class mix plus one more c
// stream still satisfies b_late(counts, t) <= delta. Every disk therefore
// serves an admissible mix every round, for any interleaving of opens and
// closes.
#ifndef ZONESTREAM_SERVER_MULTICLASS_SERVER_H_
#define ZONESTREAM_SERVER_MULTICLASS_SERVER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "common/status.h"
#include "core/multiclass.h"
#include "disk/disk_geometry.h"
#include "disk/seek_model.h"
#include "numeric/random.h"
#include "numeric/statistics.h"
#include "server/media_server.h"
#include "server/striping.h"
#include "workload/size_distribution.h"

namespace zonestream::server {

// Configuration of the class-aware server.
struct MultiClassServerConfig {
  int num_disks = 1;
  double round_length_s = 1.0;
  double late_tolerance = 0.01;  // delta for the per-phase admission check
  uint64_t seed = 42;
};

// Class-aware striped server. Not thread-safe.
class MultiClassMediaServer {
 public:
  // `model` defines the classes and the admission transform; fragment
  // sizes for class c are drawn from a Gamma distribution with that
  // class's moments.
  static common::StatusOr<MultiClassMediaServer> Create(
      const disk::DiskGeometry& geometry, const disk::SeekTimeModel& seek,
      std::shared_ptr<const core::MultiClassServiceModel> model,
      const MultiClassServerConfig& config);

  // Opens a stream of the given class; rejects with ResourceExhausted if
  // no phase can absorb it within the tolerance.
  common::StatusOr<int> OpenStream(int class_index);

  common::Status CloseStream(int stream_id);

  void RunRound();
  void RunRounds(int rounds);

  common::StatusOr<StreamStats> GetStreamStats(int stream_id) const;
  ServerStats GetServerStats() const;

  int active_streams() const { return static_cast<int>(streams_.size()); }
  // Active streams of a class across the whole server.
  int active_streams_of_class(int class_index) const;
  // The admission mix currently running on a phase.
  const core::ClassCounts& phase_mix(int phase) const;
  int64_t current_round() const { return round_; }

 private:
  struct StreamState {
    int phase = 0;
    int class_index = 0;
    std::unique_ptr<workload::IidSizeSource> source;
    StreamStats stats;
  };

  MultiClassMediaServer(
      const disk::DiskGeometry& geometry, const disk::SeekTimeModel& seek,
      std::shared_ptr<const core::MultiClassServiceModel> model,
      std::vector<std::shared_ptr<const workload::SizeDistribution>> sizes,
      const MultiClassServerConfig& config);

  disk::DiskGeometry geometry_;
  disk::SeekTimeModel seek_;
  std::shared_ptr<const core::MultiClassServiceModel> model_;
  std::vector<std::shared_ptr<const workload::SizeDistribution>> class_sizes_;
  MultiClassServerConfig config_;
  RoundRobinStriping striping_;
  numeric::Rng rng_;
  int64_t round_ = 0;
  int64_t next_stream_id_ = 0;
  std::vector<core::ClassCounts> phase_mixes_;
  std::map<int, StreamState> streams_;
  std::vector<int> arm_cylinder_;
  std::vector<bool> ascending_;
  int64_t fragments_served_ = 0;
  int64_t total_glitches_ = 0;
  std::vector<numeric::RunningStats> busy_fraction_;
};

}  // namespace zonestream::server

#endif  // ZONESTREAM_SERVER_MULTICLASS_SERVER_H_
