// Coarse-grained round-robin striping (§2.1).
//
// Fragment k of a stream that entered the system on disk d0 resides on disk
// (d0 + k) mod D: successive fragments of one stream visit the disks in
// round-robin order, so each stream loads exactly one disk per round and
// the load is balanced across disks. Placement *within* a disk is random
// (uniform over stored bytes), which §3.3 requires so that glitch events
// hit streams independently across rounds.
//
// Stable-mapping contract: a striping object is a pure function of the
// ORIGINAL array width D, and D encodes where data physically lives — so
// the same object (or one built with the same D) must be used for a
// stream's whole lifetime. After a disk failure, the failed disk KEEPS
// its slot: survivors serve their own positions and the failed slot's
// requests fail (or, under parity striping, are reconstructed). Never
// re-instantiate the layout with the survivor count to "renumber" disks
// — (d0 + k) mod (D-1) silently remaps every in-flight stream's
// fragment→disk chain onto disks that do not hold its data. The same
// applies to StartDiskForStream: ordinal mod D changes meaning if D
// shrinks mid-run. PlanArrayDegraded intentionally returns per-disk
// limits indexed by ORIGINAL disk index (failed disks pinned to 0) for
// this reason; see server/array_planner.h and the regression test
// StripingTest.MappingStableAcrossMidRunFailure.
#ifndef ZONESTREAM_SERVER_STRIPING_H_
#define ZONESTREAM_SERVER_STRIPING_H_

#include <cstdint>

#include "common/check.h"

namespace zonestream::server {

// Round-robin fragment-to-disk mapping.
class RoundRobinStriping {
 public:
  explicit RoundRobinStriping(int num_disks) : num_disks_(num_disks) {
    ZS_CHECK_GT(num_disks, 0);
  }

  int num_disks() const { return num_disks_; }

  // Disk holding fragment `fragment_index` of a stream whose fragment 0 is
  // on `start_disk`.
  int DiskForFragment(int start_disk, int64_t fragment_index) const {
    ZS_CHECK_GE(start_disk, 0);
    ZS_CHECK_LT(start_disk, num_disks_);
    ZS_CHECK_GE(fragment_index, 0);
    return static_cast<int>((start_disk + fragment_index) % num_disks_);
  }

  // Balanced start disk for the `stream_ordinal`-th admitted stream: cycles
  // through the disks so concurrently admitted streams spread out.
  int StartDiskForStream(int64_t stream_ordinal) const {
    ZS_CHECK_GE(stream_ordinal, 0);
    return static_cast<int>(stream_ordinal % num_disks_);
  }

 private:
  int num_disks_;
};

}  // namespace zonestream::server

#endif  // ZONESTREAM_SERVER_STRIPING_H_
