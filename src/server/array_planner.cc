#include "server/array_planner.h"

#include <algorithm>

#include "common/check.h"
#include "core/admission.h"
#include "core/service_time_model.h"

namespace zonestream::server {

common::StatusOr<ArrayPlan> PlanArray(const std::vector<DiskGroup>& groups,
                                      double fragment_mean_bytes,
                                      double fragment_variance_bytes2,
                                      const ArrayQos& qos) {
  if (groups.empty()) {
    return common::Status::InvalidArgument("array has no disk groups");
  }
  if (qos.round_length_s <= 0.0 || qos.late_tolerance <= 0.0 ||
      qos.late_tolerance >= 1.0) {
    return common::Status::InvalidArgument("invalid QoS contract");
  }

  ArrayPlan plan;
  plan.per_disk_limits.reserve(groups.size());
  int total_disks = 0;
  int weakest_limit = 0;
  bool first = true;
  for (const DiskGroup& group : groups) {
    if (group.count <= 0) {
      return common::Status::InvalidArgument(
          "disk group '" + group.name + "' has non-positive count");
    }
    auto geometry = disk::DiskGeometry::Create(group.disk_parameters);
    if (!geometry.ok()) return geometry.status();
    auto seek = disk::SeekTimeModel::Create(group.seek_parameters);
    if (!seek.ok()) return seek.status();
    auto model = core::ServiceTimeModel::ForMultiZoneDisk(
        *geometry, *seek, fragment_mean_bytes, fragment_variance_bytes2);
    if (!model.ok()) return model.status();
    const int limit = core::MaxStreamsByLateProbability(
        *model, qos.round_length_s, qos.late_tolerance);
    plan.per_disk_limits.push_back(limit);
    plan.partitioned_capacity += limit * group.count;
    total_disks += group.count;
    weakest_limit = first ? limit : std::min(weakest_limit, limit);
    first = false;
  }
  plan.striped_capacity = weakest_limit * total_disks;
  return plan;
}

}  // namespace zonestream::server
