#include "server/array_planner.h"

#include <algorithm>

#include "common/check.h"
#include "common/thread_pool.h"
#include "core/admission.h"
#include "core/service_time_model.h"
#include "obs/metrics.h"
#include "obs/scoped_timer.h"

namespace zonestream::server {

namespace {

// Per-group planning outcome, filled in by the parallel loop.
struct GroupResult {
  common::Status status = common::Status::Ok();
  int limit = 0;
};

GroupResult PlanGroup(const DiskGroup& group, double fragment_mean_bytes,
                      double fragment_variance_bytes2, const ArrayQos& qos) {
  GroupResult result;
  if (group.count <= 0) {
    result.status = common::Status::InvalidArgument(
        "disk group '" + group.name + "' has non-positive count");
    return result;
  }
  auto geometry = disk::DiskGeometry::Create(group.disk_parameters);
  if (!geometry.ok()) {
    result.status = geometry.status();
    return result;
  }
  auto seek = disk::SeekTimeModel::Create(group.seek_parameters);
  if (!seek.ok()) {
    result.status = seek.status();
    return result;
  }
  auto model = core::ServiceTimeModel::ForMultiZoneDisk(
      *geometry, *seek, fragment_mean_bytes, fragment_variance_bytes2);
  if (!model.ok()) {
    result.status = model.status();
    return result;
  }
  result.limit = core::MaxStreamsByLateProbability(
      *model, qos.round_length_s, qos.late_tolerance);
  return result;
}

}  // namespace

common::StatusOr<ArrayPlan> PlanArray(const std::vector<DiskGroup>& groups,
                                      double fragment_mean_bytes,
                                      double fragment_variance_bytes2,
                                      const ArrayQos& qos,
                                      common::ThreadPool* pool,
                                      obs::Registry* metrics) {
  if (groups.empty()) {
    return common::Status::InvalidArgument("array has no disk groups");
  }
  if (qos.round_length_s <= 0.0 || qos.late_tolerance <= 0.0 ||
      qos.late_tolerance >= 1.0) {
    return common::Status::InvalidArgument("invalid QoS contract");
  }

  // Resolve the handle once: GetHistogram locks the registry, and the
  // histogram itself is thread-safe for the concurrent Record calls below.
  obs::Histogram* plan_latency =
      metrics != nullptr
          ? metrics->GetHistogram("server.array_planner.group_plan_s")
          : nullptr;

  // Heavy per-group work (model build + warm admission scan) in parallel.
  std::vector<GroupResult> results(groups.size());
  common::ParallelFor(
      static_cast<int64_t>(groups.size()),
      [&](int64_t i) {
        obs::ScopedTimer timer(plan_latency);
        results[i] = PlanGroup(groups[i], fragment_mean_bytes,
                               fragment_variance_bytes2, qos);
      },
      pool);

  // Deterministic reduction in group order; the first error (in input
  // order, not completion order) wins.
  ArrayPlan plan;
  plan.per_disk_limits.reserve(groups.size());
  int total_disks = 0;
  int weakest_limit = 0;
  bool first = true;
  for (size_t i = 0; i < groups.size(); ++i) {
    if (!results[i].status.ok()) return results[i].status;
    const int limit = results[i].limit;
    plan.per_disk_limits.push_back(limit);
    plan.partitioned_capacity += limit * groups[i].count;
    total_disks += groups[i].count;
    weakest_limit = first ? limit : std::min(weakest_limit, limit);
    first = false;
  }
  plan.striped_capacity = weakest_limit * total_disks;
  if (metrics != nullptr) {
    metrics->GetCounter("server.array_planner.plans")->Increment();
    metrics->GetGauge("server.array_planner.groups")
        ->Set(static_cast<double>(groups.size()));
    metrics->GetGauge("server.array_planner.striped_capacity")
        ->Set(static_cast<double>(plan.striped_capacity));
    metrics->GetGauge("server.array_planner.partitioned_capacity")
        ->Set(static_cast<double>(plan.partitioned_capacity));
  }
  return plan;
}

common::StatusOr<ArrayPlan> PlanArrayDegraded(
    const std::vector<DiskGroup>& groups, const std::vector<int>& failed_disks,
    double fragment_mean_bytes, double fragment_variance_bytes2,
    const ArrayQos& qos, common::ThreadPool* pool, obs::Registry* metrics) {
  if (groups.empty()) {
    return common::Status::InvalidArgument("array has no disk groups");
  }
  if (failed_disks.size() != groups.size()) {
    return common::Status::InvalidArgument(
        "failed_disks must be parallel to the disk groups");
  }
  for (size_t i = 0; i < groups.size(); ++i) {
    if (failed_disks[i] < 0 || failed_disks[i] > groups[i].count) {
      return common::Status::InvalidArgument(
          "failed disk count for group '" + groups[i].name +
          "' must lie in [0, count]");
    }
  }
  if (qos.round_length_s <= 0.0 || qos.late_tolerance <= 0.0 ||
      qos.late_tolerance >= 1.0) {
    return common::Status::InvalidArgument("invalid QoS contract");
  }

  obs::Histogram* plan_latency =
      metrics != nullptr
          ? metrics->GetHistogram("server.array_planner.group_plan_s")
          : nullptr;
  std::vector<GroupResult> results(groups.size());
  common::ParallelFor(
      static_cast<int64_t>(groups.size()),
      [&](int64_t i) {
        obs::ScopedTimer timer(plan_latency);
        results[i] = PlanGroup(groups[i], fragment_mean_bytes,
                               fragment_variance_bytes2, qos);
      },
      pool);

  // Same deterministic reduction as PlanArray, over the survivors. A
  // fully-failed group keeps its per-disk limit in the plan but no longer
  // drags the striped capacity down or contributes disks.
  ArrayPlan plan;
  plan.per_disk_limits.reserve(groups.size());
  int surviving_disks = 0;
  int weakest_surviving_limit = 0;
  bool any_survivor = false;
  for (size_t i = 0; i < groups.size(); ++i) {
    if (!results[i].status.ok()) return results[i].status;
    const int limit = results[i].limit;
    plan.per_disk_limits.push_back(limit);
    const int survivors = groups[i].count - failed_disks[i];
    if (survivors <= 0) continue;
    plan.partitioned_capacity += limit * survivors;
    surviving_disks += survivors;
    weakest_surviving_limit = any_survivor
                                  ? std::min(weakest_surviving_limit, limit)
                                  : limit;
    any_survivor = true;
  }
  if (!any_survivor) {
    // Total loss: a zero-capacity "plan" here used to mask the fact that
    // there is no array left to place anything on; make the caller face
    // it as a structured error instead of a silently-empty plan.
    return common::Status::FailedPrecondition(
        "no surviving disks: every disk of every group has failed");
  }
  plan.striped_capacity = weakest_surviving_limit * surviving_disks;
  if (metrics != nullptr) {
    int total_failed = 0;
    for (const int failed : failed_disks) total_failed += failed;
    metrics->GetCounter("server.array_planner.degraded_plans")->Increment();
    metrics->GetGauge("server.array_planner.failed_disks")
        ->Set(static_cast<double>(total_failed));
    metrics->GetGauge("server.array_planner.degraded_striped_capacity")
        ->Set(static_cast<double>(plan.striped_capacity));
    metrics->GetGauge("server.array_planner.degraded_partitioned_capacity")
        ->Set(static_cast<double>(plan.partitioned_capacity));
  }
  return plan;
}

}  // namespace zonestream::server
