#include "server/array_planner.h"

#include <algorithm>

#include "common/check.h"
#include "common/thread_pool.h"
#include "core/admission.h"
#include "core/service_time_model.h"
#include "obs/metrics.h"
#include "obs/scoped_timer.h"

namespace zonestream::server {

namespace {

// Per-group planning outcome, filled in by the parallel loop.
struct GroupResult {
  common::Status status = common::Status::Ok();
  int limit = 0;
};

GroupResult PlanGroup(const DiskGroup& group, double fragment_mean_bytes,
                      double fragment_variance_bytes2, const ArrayQos& qos) {
  GroupResult result;
  if (group.count <= 0) {
    result.status = common::Status::InvalidArgument(
        "disk group '" + group.name + "' has non-positive count");
    return result;
  }
  auto geometry = disk::DiskGeometry::Create(group.disk_parameters);
  if (!geometry.ok()) {
    result.status = geometry.status();
    return result;
  }
  auto seek = disk::SeekTimeModel::Create(group.seek_parameters);
  if (!seek.ok()) {
    result.status = seek.status();
    return result;
  }
  auto model = core::ServiceTimeModel::ForMultiZoneDisk(
      *geometry, *seek, fragment_mean_bytes, fragment_variance_bytes2);
  if (!model.ok()) {
    result.status = model.status();
    return result;
  }
  result.limit = core::MaxStreamsByLateProbability(
      *model, qos.round_length_s, qos.late_tolerance);
  return result;
}

}  // namespace

common::StatusOr<ArrayPlan> PlanArray(const std::vector<DiskGroup>& groups,
                                      double fragment_mean_bytes,
                                      double fragment_variance_bytes2,
                                      const ArrayQos& qos,
                                      common::ThreadPool* pool,
                                      obs::Registry* metrics) {
  if (groups.empty()) {
    return common::Status::InvalidArgument("array has no disk groups");
  }
  if (qos.round_length_s <= 0.0 || qos.late_tolerance <= 0.0 ||
      qos.late_tolerance >= 1.0) {
    return common::Status::InvalidArgument("invalid QoS contract");
  }

  // Resolve the handle once: GetHistogram locks the registry, and the
  // histogram itself is thread-safe for the concurrent Record calls below.
  obs::Histogram* plan_latency =
      metrics != nullptr
          ? metrics->GetHistogram("server.array_planner.group_plan_s")
          : nullptr;

  // Heavy per-group work (model build + warm admission scan) in parallel.
  std::vector<GroupResult> results(groups.size());
  common::ParallelFor(
      static_cast<int64_t>(groups.size()),
      [&](int64_t i) {
        obs::ScopedTimer timer(plan_latency);
        results[i] = PlanGroup(groups[i], fragment_mean_bytes,
                               fragment_variance_bytes2, qos);
      },
      pool);

  // Deterministic reduction in group order; the first error (in input
  // order, not completion order) wins.
  ArrayPlan plan;
  plan.per_disk_limits.reserve(groups.size());
  int total_disks = 0;
  int weakest_limit = 0;
  bool first = true;
  for (size_t i = 0; i < groups.size(); ++i) {
    if (!results[i].status.ok()) return results[i].status;
    const int limit = results[i].limit;
    plan.per_disk_limits.push_back(limit);
    plan.partitioned_capacity += limit * groups[i].count;
    total_disks += groups[i].count;
    weakest_limit = first ? limit : std::min(weakest_limit, limit);
    first = false;
  }
  plan.striped_capacity = weakest_limit * total_disks;
  if (metrics != nullptr) {
    metrics->GetCounter("server.array_planner.plans")->Increment();
    metrics->GetGauge("server.array_planner.groups")
        ->Set(static_cast<double>(groups.size()));
    metrics->GetGauge("server.array_planner.striped_capacity")
        ->Set(static_cast<double>(plan.striped_capacity));
    metrics->GetGauge("server.array_planner.partitioned_capacity")
        ->Set(static_cast<double>(plan.partitioned_capacity));
  }
  return plan;
}

}  // namespace zonestream::server
