// Declarative server configuration (INI-style key = value files).
//
// A deployment describes its disk, workload statistics and QoS contract
// in a small config file; ParseServerSpec validates it and BuildServerPlan
// turns it into the admission numbers an operator needs. Format:
//
//   # comments and blank lines are ignored
//   [disk]
//   preset = quantum_viking_2100        ; or give explicit parameters:
//   # cylinders = 6720
//   # zones = 15
//   # rotation_ms = 8.34
//   # track_min_bytes = 58368
//   # track_max_bytes = 95744
//   # seek_sqrt_intercept_ms / seek_sqrt_coeff / seek_lin_intercept_ms /
//   # seek_lin_coeff / seek_threshold_cyl
//
//   [workload]
//   fragment_mean_kb = 200
//   fragment_stddev_kb = 100
//
//   [qos]
//   round_s = 1.0
//   criterion = glitch_rate             ; or late_probability
//   session_rounds = 1200               ; glitch_rate only
//   tolerated_glitches = 12             ; glitch_rate only
//   tolerance = 0.01
//
//   [server]
//   disks = 4
#ifndef ZONESTREAM_SERVER_SERVER_CONFIG_H_
#define ZONESTREAM_SERVER_SERVER_CONFIG_H_

#include <map>
#include <string>

#include "common/status.h"
#include "core/admission.h"
#include "disk/disk_geometry.h"
#include "disk/seek_model.h"

namespace zonestream::server {

// Parsed, validated deployment description.
struct ServerSpec {
  disk::DiskParameters disk_parameters;
  disk::SeekParameters seek_parameters;
  double fragment_mean_bytes = 0.0;
  double fragment_variance_bytes2 = 0.0;
  double round_length_s = 1.0;
  core::AdmissionCriterion criterion =
      core::AdmissionCriterion::kGlitchRate;
  int session_rounds = 1200;
  int tolerated_glitches = 12;
  double tolerance = 0.01;
  int num_disks = 1;
  // Optional [repair] section: stripe-rebuild jobs per round for a
  // parity array's online rebuild. 0 = no degraded-mode planning.
  int repair_throttle = 0;
};

// The derived admission plan.
struct ServerPlan {
  int streams_per_disk = 0;
  int total_streams = 0;
  double late_bound_at_limit = 0.0;  // b_late at the per-disk limit
  // Per-disk limit safe while one disk of a parity array is down and
  // rebuilding (each survivor carries 2N + throttle requests; see
  // core::MaxStreamsByLateProbabilityDegraded, always planned against
  // b_late <= tolerance). -1 when the spec has no [repair] section.
  int degraded_streams_per_disk = -1;
};

// Low-level parsed representation: section -> key -> value. Exposed for
// tests and reuse.
using ConfigSections =
    std::map<std::string, std::map<std::string, std::string>>;

// Parses INI-style content (sections, key = value, '#'/';' comments).
// Rejects duplicate keys, keys outside any section, and malformed lines
// (with line numbers).
common::StatusOr<ConfigSections> ParseIni(const std::string& content);

// Parses + validates a full server spec from config content.
common::StatusOr<ServerSpec> ParseServerSpec(const std::string& content);

// Reads a spec from a file.
common::StatusOr<ServerSpec> LoadServerSpec(const std::string& path);

// Computes the admission plan for a spec.
common::StatusOr<ServerPlan> BuildServerPlan(const ServerSpec& spec);

// A commented template config (the Table 1 deployment), suitable as a
// starting point.
std::string DefaultConfigTemplate();

}  // namespace zonestream::server

#endif  // ZONESTREAM_SERVER_SERVER_CONFIG_H_
