#include "server/multiclass_server.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.h"
#include "common/thread_pool.h"
#include "sched/scan.h"

namespace zonestream::server {

MultiClassMediaServer::MultiClassMediaServer(
    const disk::DiskGeometry& geometry, const disk::SeekTimeModel& seek,
    std::shared_ptr<const core::MultiClassServiceModel> model,
    std::vector<std::shared_ptr<const workload::SizeDistribution>> sizes,
    const MultiClassServerConfig& config)
    : geometry_(geometry),
      seek_(seek),
      model_(std::move(model)),
      class_sizes_(std::move(sizes)),
      config_(config),
      striping_(config.num_disks),
      rng_(config.seed),
      phase_mixes_(config.num_disks,
                   core::ClassCounts(model_->num_classes(), 0)),
      arm_cylinder_(config.num_disks, 0),
      ascending_(config.num_disks, true),
      busy_fraction_(config.num_disks) {}

common::StatusOr<MultiClassMediaServer> MultiClassMediaServer::Create(
    const disk::DiskGeometry& geometry, const disk::SeekTimeModel& seek,
    std::shared_ptr<const core::MultiClassServiceModel> model,
    const MultiClassServerConfig& config) {
  if (model == nullptr) {
    return common::Status::InvalidArgument("model is null");
  }
  if (config.num_disks <= 0) {
    return common::Status::InvalidArgument("num_disks must be positive");
  }
  if (config.round_length_s <= 0.0) {
    return common::Status::InvalidArgument("round length must be positive");
  }
  if (config.late_tolerance <= 0.0 || config.late_tolerance >= 1.0) {
    return common::Status::InvalidArgument(
        "late tolerance must be in (0, 1)");
  }
  std::vector<std::shared_ptr<const workload::SizeDistribution>> sizes;
  sizes.reserve(model->num_classes());
  for (int c = 0; c < model->num_classes(); ++c) {
    const core::StreamClass& stream_class = model->stream_class(c);
    auto dist = workload::GammaSizeDistribution::Create(
        stream_class.mean_size_bytes, stream_class.variance_size_bytes2);
    if (!dist.ok()) return dist.status();
    sizes.push_back(std::make_shared<workload::GammaSizeDistribution>(
        *std::move(dist)));
  }
  return MultiClassMediaServer(geometry, seek, std::move(model),
                               std::move(sizes), config);
}

common::StatusOr<int> MultiClassMediaServer::OpenStream(int class_index) {
  if (class_index < 0 || class_index >= model_->num_classes()) {
    return common::Status::InvalidArgument("unknown stream class");
  }
  // Try phases from least to most loaded (by total streams); admit on the
  // first whose augmented mix stays within tolerance.
  std::vector<int> order(phase_mixes_.size());
  for (size_t p = 0; p < order.size(); ++p) order[p] = static_cast<int>(p);
  std::sort(order.begin(), order.end(), [this](int a, int b) {
    return core::MultiClassServiceModel::TotalStreams(phase_mixes_[a]) <
           core::MultiClassServiceModel::TotalStreams(phase_mixes_[b]);
  });
  // Each phase's admissibility check is an independent evaluation of the
  // multi-class transform (the expensive part of OpenStream), so with real
  // workers available all phases are probed in parallel and the admitted
  // phase is the first admissible one in load order — the same phase the
  // serial early-exit loop picks. With a single thread the serial loop is
  // kept so the early exit still saves the remaining probes.
  int admitted_phase = -1;
  common::ThreadPool& pool = common::ThreadPool::Global();
  if (pool.num_threads() > 1 && order.size() > 1) {
    std::vector<char> admissible(phase_mixes_.size(), 0);
    common::ParallelFor(
        static_cast<int64_t>(order.size()),
        [&](int64_t k) {
          const int phase = order[k];
          core::ClassCounts candidate = phase_mixes_[phase];
          ++candidate[class_index];
          admissible[phase] =
              model_->Admissible(candidate, config_.round_length_s,
                                 config_.late_tolerance)
                  ? 1
                  : 0;
        },
        &pool);
    for (int phase : order) {
      if (admissible[phase]) {
        admitted_phase = phase;
        break;
      }
    }
  } else {
    for (int phase : order) {
      core::ClassCounts candidate = phase_mixes_[phase];
      ++candidate[class_index];
      if (model_->Admissible(candidate, config_.round_length_s,
                             config_.late_tolerance)) {
        admitted_phase = phase;
        break;
      }
    }
  }
  if (admitted_phase >= 0) {
    StreamState state;
    state.phase = admitted_phase;
    state.class_index = class_index;
    state.source = std::make_unique<workload::IidSizeSource>(
        class_sizes_[class_index]);
    const int id = static_cast<int>(next_stream_id_++);
    streams_.emplace(id, std::move(state));
    ++phase_mixes_[admitted_phase][class_index];
    return id;
  }
  return common::Status::ResourceExhausted(
      "admission control: no phase can absorb another stream of this "
      "class within the QoS tolerance");
}

common::Status MultiClassMediaServer::CloseStream(int stream_id) {
  auto it = streams_.find(stream_id);
  if (it == streams_.end()) {
    return common::Status::NotFound("no such stream");
  }
  --phase_mixes_[it->second.phase][it->second.class_index];
  streams_.erase(it);
  return common::Status::Ok();
}

void MultiClassMediaServer::RunRound() {
  std::vector<std::vector<sched::DiskRequest>> batches(config_.num_disks);
  for (auto& [id, stream] : streams_) {
    const int disk_index = striping_.DiskForFragment(stream.phase, round_);
    const disk::DiskPosition position = geometry_.SampleUniformPosition(&rng_);
    sched::DiskRequest request;
    request.stream_id = id;
    request.cylinder = position.cylinder;
    request.zone = position.zone;
    request.transfer_rate_bps = position.transfer_rate_bps;
    request.bytes = stream.source->NextFragmentBytes(&rng_);
    request.rotational_latency_s = rng_.Uniform(0.0, geometry_.rotation_time());
    batches[disk_index].push_back(request);
    stream.stats.rounds_served++;
  }

  for (int d = 0; d < config_.num_disks; ++d) {
    std::vector<sched::DiskRequest>& batch = batches[d];
    sched::SortForScan(&batch, ascending_[d]
                                   ? sched::SweepDirection::kAscending
                                   : sched::SweepDirection::kDescending);
    const sched::RoundTiming timing =
        sched::ExecuteScanRound(seek_, batch, arm_cylinder_[d]);
    busy_fraction_[d].Add(
        std::fmin(timing.total_service_time_s, config_.round_length_s) /
        config_.round_length_s);
    int last_on_time_cylinder = arm_cylinder_[d];
    bool any_glitch = false;
    for (size_t i = 0; i < timing.per_request.size(); ++i) {
      if (timing.per_request[i].completion_s > config_.round_length_s) {
        any_glitch = true;
        auto it = streams_.find(timing.per_request[i].stream_id);
        ZS_CHECK(it != streams_.end());
        it->second.stats.glitches++;
        total_glitches_++;
      } else {
        last_on_time_cylinder = batch[i].cylinder;
        fragments_served_++;
      }
    }
    arm_cylinder_[d] =
        any_glitch ? last_on_time_cylinder : timing.final_arm_cylinder;
    ascending_[d] = !ascending_[d];
  }
  ++round_;
}

void MultiClassMediaServer::RunRounds(int rounds) {
  ZS_CHECK_GE(rounds, 0);
  for (int r = 0; r < rounds; ++r) RunRound();
}

common::StatusOr<StreamStats> MultiClassMediaServer::GetStreamStats(
    int stream_id) const {
  auto it = streams_.find(stream_id);
  if (it == streams_.end()) {
    return common::Status::NotFound("no such stream");
  }
  return it->second.stats;
}

ServerStats MultiClassMediaServer::GetServerStats() const {
  ServerStats stats;
  stats.rounds = round_;
  stats.fragments_served = fragments_served_;
  stats.glitches = total_glitches_;
  stats.disk_utilization.reserve(config_.num_disks);
  for (const numeric::RunningStats& busy : busy_fraction_) {
    stats.disk_utilization.push_back(busy.count() > 0 ? busy.mean() : 0.0);
  }
  return stats;
}

int MultiClassMediaServer::active_streams_of_class(int class_index) const {
  ZS_CHECK_GE(class_index, 0);
  ZS_CHECK_LT(class_index, model_->num_classes());
  int count = 0;
  for (const core::ClassCounts& mix : phase_mixes_) {
    count += mix[class_index];
  }
  return count;
}

const core::ClassCounts& MultiClassMediaServer::phase_mix(int phase) const {
  ZS_CHECK_GE(phase, 0);
  ZS_CHECK_LT(phase, static_cast<int>(phase_mixes_.size()));
  return phase_mixes_[phase];
}

}  // namespace zonestream::server
