// Multi-disk continuous-media server facade (§2, §5).
//
// Combines every substrate: D identical multi-zone disks, round-robin
// striping, per-disk SCAN scheduling in global rounds, and table-driven
// admission control from the analytic model. This is the component a
// downstream system would embed; the single-disk RoundSimulator remains the
// preferred tool for tight model-validation loops.
#ifndef ZONESTREAM_SERVER_MEDIA_SERVER_H_
#define ZONESTREAM_SERVER_MEDIA_SERVER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/admission.h"
#include "disk/disk_geometry.h"
#include "disk/seek_model.h"
#include "fault/degradation.h"
#include "fault/fault_model.h"
#include "numeric/random.h"
#include "numeric/statistics.h"
#include "sched/request.h"
#include "server/parity_striping.h"
#include "server/repair.h"
#include "server/striping.h"
#include "workload/fragment_source.h"
#include "workload/size_distribution.h"

namespace zonestream::obs {
class Registry;
class RoundTraceRecorder;
}  // namespace zonestream::obs

namespace zonestream::server {

// Server-wide configuration.
struct MediaServerConfig {
  int num_disks = 1;
  double round_length_s = 1.0;
  // Per-disk stream limit from the analytic admission model (N_max). The
  // server-wide limit is num_disks * per_disk_stream_limit because
  // round-robin striping loads each disk with at most that many requests
  // per round once start disks are balanced.
  int per_disk_stream_limit = 0;
  uint64_t seed = 42;

  // Structured fault injection (fault/fault_model.h). Each disk runs an
  // independent FaultInjector built from this spec, seeded from a
  // per-disk substream of `seed`, so faults on one disk never perturb
  // another disk's draws and the empty default consumes no randomness
  // (clean runs stay bit-identical). Injector metrics land under
  // "server.fault.disk<d>.".
  fault::FaultSpec faults;
  // Which disk runs `faults`: -1 (default) applies the spec to every
  // disk; otherwise only this disk index misbehaves — the single-bad-disk
  // scenario degradation and array re-planning are built for.
  int fault_disk = -1;

  // Graceful degradation (fault/degradation.h). When set, a
  // DegradationController watches the measured per-stream glitch rate
  // each round; on sustained violation it closes admissions and sheds
  // streams (lowest priority_class first, newest first within a class)
  // until the §3.3 bound holds again, with hysteresis at both edges.
  std::optional<fault::DegradationPolicy> degradation;

  // Bounded retry of fragments cut at the round deadline: a glitched
  // fragment is re-issued (same size, fresh position) in the stream's
  // following rounds up to this many attempts, then dropped for good.
  // 0 (default) preserves the historical drop-immediately behavior.
  int max_fragment_retries = 0;

  // RAID-5 rotating-parity striping (server/parity_striping.h). With
  // parity on, each service round is one stripe row: the D disks carry
  // D-1 data phases plus a parity unit that rotates one disk per round,
  // so streaming capacity is (num_disks - 1) * per_disk_stream_limit.
  // The payoff: a single failed disk no longer glitches its streams —
  // their fragments are reconstructed by one read on every surviving
  // disk (a fragment is on time only if all D-1 reconstruction reads
  // are). Requires num_disks >= 2. With two or more disks down the
  // stripe cannot be reconstructed and the failed disks' streams glitch
  // through the usual retry/drop ledger.
  bool parity = false;

  // Online rebuild onto a hot spare (server/repair.h). Requires parity.
  // When a disk fails, a RepairController claims up to
  // repair->throttle_per_round stripe-rebuild jobs per round — each one
  // reconstruction read on every surviving disk, SCAN-scheduled in the
  // same round as stream I/O so repair and streams contend for round
  // time — until repair->total_stripes stripes are rebuilt. The spare
  // then takes the failed disk's slot and the array serves intact
  // again. If the disk heals on its own first (a transient fault), the
  // rebuild is cancelled. Progress rides in snapshots (recovery::) for
  // bit-identical resume mid-rebuild.
  std::optional<RepairPolicy> repair;

  // Per-disk stream limit enforced while the array is degraded (some
  // disk failed and not yet rebuilt onto its spare). 0 keeps
  // per_disk_stream_limit. Derive it from PlanDegradedLimit /
  // core::MaxStreamsByLateProbabilityDegraded so P(late) <= delta holds
  // while each survivor absorbs the failed disk's reconstruction reads
  // plus the repair throttle share; on entering degraded mode the
  // server sheds each phase down to this limit (lowest priority class
  // first, newest first) and holds new admissions to it. Requires
  // parity.
  int degraded_per_disk_stream_limit = 0;

  // Optional observability hooks (not owned; null = disabled). Metrics
  // land under the "server." prefix (admission decisions, per-round disk
  // service times, glitches); `trace` receives one obs::RoundTraceEvent
  // per (round, disk) with source_id = disk index. Names are listed in
  // docs/OBSERVABILITY.md.
  obs::Registry* metrics = nullptr;
  obs::RoundTraceRecorder* trace = nullptr;
};

// Per-stream service-quality counters.
struct StreamStats {
  int64_t rounds_served = 0;
  int64_t glitches = 0;
  int64_t retries = 0;  // deadline-cut fragments re-issued
  int64_t drops = 0;    // fragments dropped after exhausting retries
};

// Server-wide counters.
struct ServerStats {
  int64_t rounds = 0;
  int64_t fragments_served = 0;
  int64_t glitches = 0;
  int64_t fragments_retried = 0;
  int64_t fragments_dropped = 0;
  int64_t streams_shed = 0;  // closed by the degradation controller
  // Parity/repair surface (all zero without parity striping).
  int64_t reconstructed_fragments = 0;  // served via degraded parity reads
  int64_t repair_stripes_rebuilt = 0;
  int64_t rounds_degraded = 0;  // rounds served with a failed disk
  // Mean busy fraction (sweep time / round length) per disk.
  std::vector<double> disk_utilization;
};

// Checkpointed state of one open stream. The fragment-size distribution
// itself is not serialized (it may be an arbitrary SizeDistribution
// object); RestoreState re-binds each stream to a distribution through
// the caller's resolver.
struct StreamSnapshotState {
  int stream_id = 0;
  int phase = 0;
  int priority_class = 0;
  int64_t next_fragment = 0;
  double retry_bytes = -1.0;  // < 0: no fragment awaiting re-issue
  int retry_attempts = 0;
  StreamStats stats;
};

// Complete restartable state of a MediaServer: the request RNG position,
// round/stream-id counters, every open stream, per-disk arm state,
// per-disk fault injector states, the degradation controller, and all
// aggregate counters. Restoring it onto a server freshly Created from the
// same (geometry, seek, config) continues the run bit-identically.
// phase_counts_ is derived from the streams; metric values live in the
// obs::Registry and are restored separately via Registry::ImportState.
struct MediaServerState {
  std::string rng_state;  // numeric::Rng::SaveState
  int64_t round = 0;
  int64_t next_stream_id = 0;
  std::vector<StreamSnapshotState> streams;
  std::vector<int64_t> arm_cylinder;        // one per disk
  std::vector<uint8_t> ascending;           // one per disk (0/1)
  std::vector<uint8_t> injector_present;    // one per disk (0/1)
  // States of the present injectors, in ascending disk order.
  std::vector<fault::FaultInjectorState> fault_injectors;
  bool has_degradation = false;
  fault::DegradationControllerState degradation;
  bool admissions_open = true;
  int64_t fragments_served = 0;
  int64_t total_glitches = 0;
  int64_t fragments_retried = 0;
  int64_t fragments_dropped = 0;
  int64_t streams_shed = 0;
  std::vector<numeric::RunningStatsState> busy_fraction;  // one per disk
  // Parity/repair machinery (defaults describe a non-parity server, so
  // pre-parity snapshot producers round-trip unchanged).
  std::vector<uint8_t> spare_active;  // one per disk (0/1)
  bool repair_present = false;        // RepairController configured
  RepairControllerState repair;       // meaningful when repair_present
  int64_t reconstructed_fragments = 0;
  int64_t rounds_degraded = 0;
};

// Maps a checkpointed stream back to its fragment-size distribution at
// restore time (the snapshot records stream identity, not the
// distribution object). Returning null fails the restore.
using StreamDistributionResolver =
    std::function<std::shared_ptr<const workload::SizeDistribution>(
        const StreamSnapshotState& stream)>;

// The server. Not thread-safe; drive it from one scheduler thread as the
// paper's architecture does.
class MediaServer {
 public:
  static common::StatusOr<MediaServer> Create(
      const disk::DiskGeometry& geometry, const disk::SeekTimeModel& seek,
      const MediaServerConfig& config);

  // Derives a full MediaServerConfig from the analytic §3.2 model: the
  // per-disk stream limit is the largest N with b_late(N, t) <= delta,
  // found with a warm-started admission scan. This is the §5 deployment
  // flow — plan once per (disk, workload) configuration, then serve with
  // O(1) admission.
  static common::StatusOr<MediaServerConfig> PlanConfig(
      const disk::DiskGeometry& geometry, const disk::SeekTimeModel& seek,
      double fragment_mean_bytes, double fragment_variance_bytes2,
      int num_disks, double round_length_s, double late_tolerance,
      uint64_t seed = 42);

  // Degraded-mode companion to PlanConfig: the largest per-disk stream
  // level N with b_late(2N + throttle, t) <= late_tolerance — safe while
  // one disk of a parity array is down and each survivor serves its own
  // phase, the failed disk's reconstruction reads, and the repair
  // throttle share (core::MaxStreamsByLateProbabilityDegraded). Wire the
  // result into MediaServerConfig::degraded_per_disk_stream_limit.
  // Returns the limit, possibly 0 (degraded service meeting the
  // tolerance is impossible; pause repair or relax the contract).
  static common::StatusOr<int> PlanDegradedLimit(
      const disk::DiskGeometry& geometry, const disk::SeekTimeModel& seek,
      double fragment_mean_bytes, double fragment_variance_bytes2,
      double round_length_s, double late_tolerance,
      const RepairPolicy& repair);

  // Admission-controlled stream open. Fragment sizes are drawn from
  // `sizes`; the stream plays forever until CloseStream. Returns the stream
  // id, or ResourceExhausted when the admission limit is reached.
  //
  // Streams are assigned to the least-loaded *phase*: with round-robin
  // striping, a stream's disk in round r is (phase + r) mod D, so all
  // streams sharing a phase always hit the same disk together. Enforcing
  // the per-disk limit per phase keeps every disk at or under N_max each
  // round even as streams churn — the "load is uniformly distributed
  // across disks" precondition of the analytic model (§3).
  common::StatusOr<int> OpenStream(
      std::shared_ptr<const workload::SizeDistribution> sizes);

  // As above, with an explicit priority class. Classes only matter under
  // degradation: when the controller sheds load, lower-numbered classes
  // go first (class 0 is best-effort; the plain OpenStream overload).
  common::StatusOr<int> OpenStream(
      std::shared_ptr<const workload::SizeDistribution> sizes,
      int priority_class);

  // Closes an open stream.
  common::Status CloseStream(int stream_id);

  // Serves one global round on all disks.
  void RunRound();

  // Serves `rounds` rounds.
  void RunRounds(int rounds);

  // Per-stream and server-wide statistics.
  common::StatusOr<StreamStats> GetStreamStats(int stream_id) const;
  ServerStats GetServerStats() const;

  int active_streams() const { return static_cast<int>(streams_.size()); }
  // Server-wide admission capacity: one phase per data disk. Parity
  // arrays give one disk per round to the rotating parity unit, so only
  // num_disks - 1 phases carry streams.
  int max_streams() const {
    return NumPhases() * config_.per_disk_stream_limit;
  }
  int64_t current_round() const { return round_; }

  // Parity/repair surface. Degraded means some disk is failed and not
  // yet rebuilt onto its spare (always false without parity striping).
  bool degraded() const { return degraded_now_; }
  bool rebuild_active() const {
    return repair_ != nullptr && repair_->active();
  }
  int rebuild_target_disk() const {
    return repair_ != nullptr ? repair_->target_disk() : -1;
  }
  int64_t repair_stripes_rebuilt() const {
    return repair_ != nullptr ? repair_->stripes_rebuilt() : 0;
  }
  bool spare_active(int disk) const {
    return spare_active_[static_cast<size_t>(disk)] != 0;
  }

  // Degradation surface. With no controller configured, the state is
  // kNormal, the event log empty, and admissions always open.
  bool admissions_open() const { return admissions_open_; }
  fault::DegradationState degradation_state() const {
    return degradation_ != nullptr ? degradation_->state()
                                   : fault::DegradationState::kNormal;
  }
  std::vector<fault::DegradationEvent> degradation_events() const {
    return degradation_ != nullptr ? degradation_->events()
                                   : std::vector<fault::DegradationEvent>{};
  }

  // Checkpoint support. ExportState captures everything RunRound /
  // OpenStream consult; RestoreState applies it to a server freshly
  // Created from the same (geometry, seek, config), re-binding each
  // stream's size distribution through `resolver`. Validates shape
  // (per-disk vector sizes, phases and arm cylinders in range, per-phase
  // occupancy within the admission limit, fault/degradation presence
  // matching the config) and restores nothing on mismatch.
  MediaServerState ExportState() const;
  common::Status RestoreState(const MediaServerState& state,
                              const StreamDistributionResolver& resolver);

  // Limit-change publication. The callback fires whenever the per-phase
  // admission limit in force changes — entering degraded mode (the
  // configured degraded limit kicks in), rebuild completion lifting it,
  // or a RestoreState that lands in a different mode. It also fires once
  // at registration with the current limit, so a subscriber (e.g. an
  // admission-service daemon scaling its published class limits) starts
  // synchronized without a separate bootstrap read. Invoked from the
  // scheduler thread; keep it cheap and re-entrancy-free (do not call
  // back into this MediaServer from inside the callback).
  using LimitChangeCallback =
      std::function<void(int per_phase_limit, int num_phases, bool degraded)>;
  void SetLimitChangeCallback(LimitChangeCallback callback);

 private:
  struct StreamState {
    int phase = 0;  // disk in round r is (phase + r) mod num_disks
    int priority_class = 0;
    int64_t next_fragment = 0;
    std::unique_ptr<workload::IidSizeSource> source;
    // Deadline-cut fragment awaiting re-issue (< 0: none pending).
    double retry_bytes = -1.0;
    int retry_attempts = 0;
    StreamStats stats;
  };

  MediaServer(const disk::DiskGeometry& geometry,
              const disk::SeekTimeModel& seek,
              const MediaServerConfig& config,
              std::vector<std::unique_ptr<fault::FaultInjector>> injectors);

  // Applies retry/drop bookkeeping for one glitched fragment.
  void RecordGlitch(int stream_id, double fragment_bytes);

  // Closes `count` streams, lowest priority class first (newest first
  // within a class), on the degradation controller's orders.
  void ShedStreams(int count);

  // On entering degraded mode: sheds every phase down to the effective
  // per-phase limit (same victim order as ShedStreams, per phase).
  void ShedToDegradedLimit();

  // Stream-carrying phases: D round-robin, D-1 under parity.
  int NumPhases() const {
    return config_.parity ? config_.num_disks - 1 : config_.num_disks;
  }

  // Per-phase admission limit in force right now (the degraded limit
  // while the parity array is degraded, if one is configured).
  int EffectivePhaseLimit() const;

  // Fires limit_change_callback_ if EffectivePhaseLimit() moved since the
  // last notification. Call after any degraded_now_ transition.
  void NotifyLimitChangeIfNeeded();

  // Disk d's fault injector, or null.
  fault::FaultInjector* InjectorFor(int disk) const {
    return static_cast<size_t>(disk) < fault_injectors_.size()
               ? fault_injectors_[static_cast<size_t>(disk)].get()
               : nullptr;
  }

  // Stream requests disk `disk` is scheduled to carry this round before
  // any degraded fan-out or repair reads (the fault injectors' declared
  // per-round load).
  int PlannedPrimaryLoad(int disk) const;

  disk::DiskGeometry geometry_;
  disk::SeekTimeModel seek_;
  MediaServerConfig config_;
  RoundRobinStriping striping_;
  std::optional<ParityStriping> parity_striping_;  // set when config_.parity
  numeric::Rng rng_;
  int64_t round_ = 0;
  int64_t next_stream_id_ = 0;
  std::vector<int> phase_counts_;  // active streams per phase
  std::map<int, StreamState> streams_;
  // Per-disk arm state.
  std::vector<int> arm_cylinder_;
  std::vector<bool> ascending_;
  // Fault & degradation machinery (empty / null when not configured).
  std::vector<std::unique_ptr<fault::FaultInjector>> fault_injectors_;
  std::unique_ptr<fault::DegradationController> degradation_;
  bool admissions_open_ = true;
  // Parity/repair machinery. A disk whose spare_active_ flag is set has
  // been rebuilt onto its hot spare: its injector keeps ticking (so
  // snapshots keep their shape) but no longer affects service.
  std::unique_ptr<RepairController> repair_;
  std::vector<uint8_t> spare_active_;
  bool degraded_now_ = false;   // last census: some disk effectively failed
  bool degraded_prev_ = false;  // previous round's census (shed edge)
  // Limit-change publication (null / -1 until SetLimitChangeCallback).
  LimitChangeCallback limit_change_callback_;
  int last_notified_limit_ = -1;
  int64_t reconstructed_fragments_ = 0;
  int64_t rounds_degraded_ = 0;
  // Aggregates.
  int64_t fragments_served_ = 0;
  int64_t total_glitches_ = 0;
  int64_t fragments_retried_ = 0;
  int64_t fragments_dropped_ = 0;
  int64_t streams_shed_ = 0;
  std::vector<numeric::RunningStats> busy_fraction_;
  // Per-disk request batches, cleared (capacity kept) and refilled each
  // round instead of reallocated.
  std::vector<std::vector<sched::DiskRequest>> batch_scratch_;
  // Per-round scratch for the degraded/repair paths (empty otherwise).
  struct ReconOutcome {
    double bytes = 0.0;
    bool late = false;
  };
  std::map<int, ReconOutcome> recon_scratch_;  // fanned-out stream -> fate
  std::vector<uint8_t> round_failed_;          // this round's failure census
  std::vector<uint8_t> repair_job_late_;       // per claimed rebuild job
};

}  // namespace zonestream::server

#endif  // ZONESTREAM_SERVER_MEDIA_SERVER_H_
