// Analysis of the multi-zone transfer-time density (§3.2).
//
// The transfer time of a request on a multi-zone disk is T = S/R where S is
// the fragment size and R the zone-dependent transfer rate. This module
// exposes
//   * the exact density under the paper's placement assumptions (a discrete
//     mixture over zones: f(t) = Σ_i p_i · R_i · f_S(t·R_i)),
//   * the paper's continuous-rate approximation of eq. (3.2.6)/(3.2.7)
//     (density of R proportional to r on [C_min/ROT, C_max/ROT], the
//     large-Z limit of the linear capacity ramp), and
//   * the moment-matched Gamma approximation (eq. 3.2.10), including a
//     relative-error sweep that validates the paper's "< 2% between 5 and
//     100 ms" claim (experiment E7).
#ifndef ZONESTREAM_CORE_ZONE_TRANSFER_ANALYSIS_H_
#define ZONESTREAM_CORE_ZONE_TRANSFER_ANALYSIS_H_

#include <memory>

#include "common/status.h"
#include "core/transfer_models.h"
#include "disk/disk_geometry.h"
#include "workload/size_distribution.h"

namespace zonestream::core {

// Error summary of an approximation over a time window. Two metrics:
// pointwise relative error |approx - exact| / exact (strict; blows up in
// the far tail where both densities are tiny), and peak-normalized error
// |approx - exact| / max_t exact (what a plotted density comparison shows).
struct ApproximationError {
  double max_relative_error = 0.0;
  double at_time_s = 0.0;       // where the max relative error occurs
  double mean_relative_error = 0.0;
  double max_normalized_error = 0.0;  // normalized by the peak exact density
  int samples = 0;
};

// Immutable analysis object bound to one disk geometry and one fragment-size
// distribution.
class ZoneTransferAnalysis {
 public:
  static common::StatusOr<ZoneTransferAnalysis> Create(
      const disk::DiskGeometry& geometry,
      std::shared_ptr<const workload::SizeDistribution> sizes);

  // Exact transfer-time density: discrete mixture over the Z zones.
  double ExactDensity(double t) const;

  // Exact CDF of the transfer time (mixture of size CDFs).
  double ExactCdf(double t) const;

  // The paper's continuous-rate density: the eq. (3.2.7) integral
  //   f_trans(t) = ∫ f_rate(r) · r · f_S(t·r) dr
  // with f_rate(r) = 2r/(b^2 - a^2) on [a, b] (linear capacity ramp in the
  // large-Z limit), evaluated by Gauss-Legendre quadrature.
  double ContinuousDensity(double t) const;

  // Moment-matched Gamma density (eq. 3.2.10 parameters).
  double GammaApproxDensity(double t) const;

  // CDF of the moment-matched Gamma approximation.
  double GammaApproxCdf(double t) const;

  // Kolmogorov distance sup_t |F_approx(t) - F_exact(t)| between the
  // moment-matched Gamma and the exact mixture, estimated on a grid over
  // [t_lo, t_hi]. This distribution-level error is what propagates into
  // p_late, and is the metric under which the paper's "< 2%" accuracy
  // claim reproduces (see EXPERIMENTS.md E7).
  double GammaApproximationKolmogorov(double t_lo, double t_hi,
                                      int samples) const;

  // Exact moments of T (from E[S^k]·E[R^{-k}]).
  double mean() const { return mean_; }
  double variance() const { return variance_; }

  // The moment-matched Gamma transfer model (what §3.2 plugs into the
  // round transform).
  const GammaTransferModel& gamma_model() const { return gamma_model_; }

  // Sweeps t over [t_lo, t_hi] with `samples` equally spaced points and
  // reports the relative error of the Gamma approximation against the exact
  // mixture density (experiment E7).
  ApproximationError GammaApproximationError(double t_lo, double t_hi,
                                             int samples) const;

  // Same sweep for the continuous-rate approximation against the exact
  // discrete mixture (quantifies the continuity assumption itself).
  ApproximationError ContinuousApproximationError(double t_lo, double t_hi,
                                                  int samples) const;

 private:
  ZoneTransferAnalysis(const disk::DiskGeometry& geometry,
                       std::shared_ptr<const workload::SizeDistribution> sizes,
                       GammaTransferModel gamma_model);

  std::vector<double> probabilities_;
  std::vector<double> rates_;
  double rate_min_;
  double rate_max_;
  std::shared_ptr<const workload::SizeDistribution> sizes_;
  double mean_;
  double variance_;
  GammaTransferModel gamma_model_;
};

}  // namespace zonestream::core

#endif  // ZONESTREAM_CORE_ZONE_TRANSFER_ANALYSIS_H_
