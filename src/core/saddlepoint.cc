#include "core/saddlepoint.h"

#include <cmath>
#include <limits>

#include "common/check.h"
#include "core/admission.h"
#include "core/baselines.h"
#include "numeric/roots.h"
#include "numeric/special_functions.h"

namespace zonestream::core {
namespace {

// Numeric first derivative of K at theta, staying inside [0, theta_max).
double KPrime(const std::function<double(double)>& log_mgf, double theta,
              double theta_max) {
  double h = 1e-5 * (1.0 + theta);
  if (std::isfinite(theta_max)) h = std::fmin(h, 0.25 * (theta_max - theta));
  h = std::fmin(h, theta > 0.0 ? 0.5 * theta : h);
  if (theta - h < 0.0) {
    // One-sided at the left edge.
    return (log_mgf(theta + h) - log_mgf(theta)) / h;
  }
  return (log_mgf(theta + h) - log_mgf(theta - h)) / (2.0 * h);
}

// Numeric second derivative of K at theta.
double KSecond(const std::function<double(double)>& log_mgf, double theta,
               double theta_max) {
  double h = 1e-4 * (1.0 + theta);
  if (std::isfinite(theta_max)) h = std::fmin(h, 0.25 * (theta_max - theta));
  h = std::fmin(h, theta > 0.0 ? 0.5 * theta : h);
  return (log_mgf(theta + h) - 2.0 * log_mgf(theta) + log_mgf(theta - h)) /
         (h * h);
}

// Standardized third cumulant ρ3 = K'''(θ0)/K''(θ0)^{3/2} near `theta`.
// The five-point K''' stencil needs θ0 - 2h >= 0, so the base point is
// shifted to 2h when θ is closer to the origin than that (the skewness is
// smooth, so the O(h) base-point shift is harmless at the accuracy the
// near-mean limit needs).
double StandardizedThirdCumulant(
    const std::function<double(double)>& log_mgf, double theta,
    double theta_max) {
  double h = 1e-3 * (1.0 + theta);
  if (std::isfinite(theta_max)) {
    h = std::fmin(h, 0.125 * (theta_max - theta));
  }
  if (h <= 0.0) return 0.0;
  const double theta0 = std::fmax(theta, 2.0 * h);
  const double k3 =
      (log_mgf(theta0 + 2.0 * h) - 2.0 * log_mgf(theta0 + h) +
       2.0 * log_mgf(theta0 - h) - log_mgf(theta0 - 2.0 * h)) /
      (2.0 * h * h * h);
  const double k2 = KSecond(log_mgf, theta0, theta_max);
  if (k2 <= 0.0) return 0.0;
  return k3 / (k2 * std::sqrt(k2));
}

}  // namespace

SaddlepointResult SaddlepointTailProbability(
    const std::function<double(double)>& log_mgf, double theta_max,
    double t) {
  ZS_CHECK_GT(theta_max, 0.0);
  SaddlepointResult result;

  // Mean from the CGF slope at the origin.
  const double mean = KPrime(log_mgf, 0.0, theta_max);
  if (t <= mean) {
    // Below the mean the positive-θ saddlepoint does not exist (our CGFs
    // are only evaluated for θ >= 0); fall back to the Edgeworth
    // (skewness-corrected normal) estimate. The ρ3 term matters at the
    // branch seam: at z = 0 it gives 1/2 - φ(0)·ρ3/6, exactly the
    // above-mean limiting form's value, so crossing t over E[T] is
    // continuous instead of jumping by the O(ρ3) correction.
    const double variance = KSecond(log_mgf, 1e-9, theta_max);
    const double sigma = std::sqrt(std::fmax(variance, 0.0));
    if (sigma > 0.0) {
      const double z = (t - mean) / sigma;
      const double rho3 = StandardizedThirdCumulant(log_mgf, 0.0, theta_max);
      const double phi_z =
          std::exp(-0.5 * z * z) / std::sqrt(2.0 * M_PI);
      const double p =
          1.0 - numeric::NormalCdf(z) + phi_z * (rho3 / 6.0) * (z * z - 1.0);
      result.probability = std::fmin(std::fmax(p, 0.0), 1.0);
    } else {
      result.probability = 1.0;
    }
    result.theta_hat = 0.0;
    result.converged = true;
    return result;
  }

  // Solve K'(θ̂) = t. K' is increasing (K convex); bracket and bisect.
  double lo = 1e-12;
  double hi = std::isfinite(theta_max) ? theta_max * (1.0 - 1e-9) : 1.0;
  if (!std::isfinite(theta_max)) {
    for (int i = 0; i < 200 && KPrime(log_mgf, hi, theta_max) < t; ++i) {
      hi *= 2.0;
    }
  }
  const auto slope_error = [&log_mgf, theta_max, t](double theta) {
    return KPrime(log_mgf, theta, theta_max) - t;
  };
  if (slope_error(hi) < 0.0) {
    // t beyond the reachable slope (can only happen from numerical noise
    // at the domain edge): the tail is effectively zero.
    result.probability = 0.0;
    result.theta_hat = hi;
    result.converged = false;
    return result;
  }
  numeric::RootOptions options;
  options.x_tolerance = 1e-11;
  const numeric::RootResult root =
      numeric::Bisect(slope_error, lo, hi, options);
  const double theta_hat = root.x;

  const double k_hat = log_mgf(theta_hat);
  const double k2_hat = KSecond(log_mgf, theta_hat, theta_max);
  const double exponent =
      std::fmax(theta_hat * t - k_hat, 0.0);  // Legendre transform >= 0
  if (k2_hat <= 0.0) {
    result.probability = 0.5;
    result.theta_hat = theta_hat;
    result.converged = false;
    return result;
  }
  const double w = std::sqrt(2.0 * exponent);
  const double u = theta_hat * std::sqrt(k2_hat);
  const double phi = std::exp(-0.5 * w * w) / std::sqrt(2.0 * M_PI);
  double probability;
  if (w < 1e-3 || u < 1e-3) {
    // θ̂ → 0 (t ≈ E[T]): ŵ and û both vanish and the (1/ŵ - 1/û)
    // difference is a catastrophic cancellation of two huge reciprocals
    // whose true difference is O(1) — the direct formula then returns
    // 0/1 garbage after clamping. Substitute the standard limiting form:
    // expanding ŵ² = K''θ̂² + (2/3)K'''θ̂³ and û = θ̂√(K'' + K'''θ̂)
    // gives 1/ŵ - 1/û -> ρ3/6 with ρ3 = K'''/K''^{3/2}, so
    //   P[T >= t] -> 1 - Φ(ŵ) - φ(ŵ)·ρ3/6
    // (= 1/2 - ρ3/(6√(2π)) exactly at the mean).
    const double rho3 = StandardizedThirdCumulant(log_mgf, theta_hat,
                                                  theta_max);
    probability = 1.0 - numeric::NormalCdf(w) - phi * (rho3 / 6.0);
  } else {
    probability = 1.0 - numeric::NormalCdf(w) - phi * (1.0 / w - 1.0 / u);
  }
  probability = std::fmin(std::fmax(probability, 0.0), 1.0);

  result.probability = probability;
  result.theta_hat = theta_hat;
  result.converged = root.converged;
  return result;
}

SaddlepointResult SaddlepointLateProbability(const ServiceTimeModel& model,
                                             int n, double t) {
  ZS_CHECK_GT(n, 0);
  ZS_CHECK_GT(t, 0.0);
  const auto log_mgf = [&model, n](double theta) {
    return model.LogMgf(n, theta);
  };
  return SaddlepointTailProbability(log_mgf, model.theta_max(), t);
}

int SaddlepointMaxStreams(const ServiceTimeModel& model, double t,
                          double delta, int n_cap) {
  ZS_CHECK_GT(n_cap, 0);
  if (ValidateAdmissionQuery(t, delta) != AdmissionQueryError::kOk) {
    return 0;
  }
  int n_max = 0;
  for (int n = 1; n <= n_cap; ++n) {
    if (SaddlepointLateProbability(model, n, t).probability > delta) break;
    n_max = n;
  }
  return n_max;
}

}  // namespace zonestream::core
