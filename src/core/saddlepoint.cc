#include "core/saddlepoint.h"

#include <cmath>
#include <limits>

#include "common/check.h"
#include "core/baselines.h"
#include "numeric/roots.h"
#include "numeric/special_functions.h"

namespace zonestream::core {
namespace {

// Numeric first derivative of K at theta, staying inside [0, theta_max).
double KPrime(const std::function<double(double)>& log_mgf, double theta,
              double theta_max) {
  double h = 1e-5 * (1.0 + theta);
  if (std::isfinite(theta_max)) h = std::fmin(h, 0.25 * (theta_max - theta));
  h = std::fmin(h, theta > 0.0 ? 0.5 * theta : h);
  if (theta - h < 0.0) {
    // One-sided at the left edge.
    return (log_mgf(theta + h) - log_mgf(theta)) / h;
  }
  return (log_mgf(theta + h) - log_mgf(theta - h)) / (2.0 * h);
}

// Numeric second derivative of K at theta.
double KSecond(const std::function<double(double)>& log_mgf, double theta,
               double theta_max) {
  double h = 1e-4 * (1.0 + theta);
  if (std::isfinite(theta_max)) h = std::fmin(h, 0.25 * (theta_max - theta));
  h = std::fmin(h, theta > 0.0 ? 0.5 * theta : h);
  return (log_mgf(theta + h) - 2.0 * log_mgf(theta) + log_mgf(theta - h)) /
         (h * h);
}

}  // namespace

SaddlepointResult SaddlepointTailProbability(
    const std::function<double(double)>& log_mgf, double theta_max,
    double t) {
  ZS_CHECK_GT(theta_max, 0.0);
  SaddlepointResult result;

  // Mean from the CGF slope at the origin.
  const double mean = KPrime(log_mgf, 0.0, theta_max);
  if (t <= mean) {
    // Below the mean the positive-θ saddlepoint does not exist (our CGFs
    // are only evaluated for θ >= 0); fall back to the normal estimate,
    // which is accurate in the bulk.
    const double variance = KSecond(log_mgf, 1e-9, theta_max);
    const double sigma = std::sqrt(std::fmax(variance, 0.0));
    result.probability =
        sigma > 0.0 ? 1.0 - numeric::NormalCdf((t - mean) / sigma) : 1.0;
    result.theta_hat = 0.0;
    result.converged = true;
    return result;
  }

  // Solve K'(θ̂) = t. K' is increasing (K convex); bracket and bisect.
  double lo = 1e-12;
  double hi = std::isfinite(theta_max) ? theta_max * (1.0 - 1e-9) : 1.0;
  if (!std::isfinite(theta_max)) {
    for (int i = 0; i < 200 && KPrime(log_mgf, hi, theta_max) < t; ++i) {
      hi *= 2.0;
    }
  }
  const auto slope_error = [&log_mgf, theta_max, t](double theta) {
    return KPrime(log_mgf, theta, theta_max) - t;
  };
  if (slope_error(hi) < 0.0) {
    // t beyond the reachable slope (can only happen from numerical noise
    // at the domain edge): the tail is effectively zero.
    result.probability = 0.0;
    result.theta_hat = hi;
    result.converged = false;
    return result;
  }
  numeric::RootOptions options;
  options.x_tolerance = 1e-11;
  const numeric::RootResult root =
      numeric::Bisect(slope_error, lo, hi, options);
  const double theta_hat = root.x;

  const double k_hat = log_mgf(theta_hat);
  const double k2_hat = KSecond(log_mgf, theta_hat, theta_max);
  const double exponent = theta_hat * t - k_hat;  // Legendre transform >= 0
  if (exponent <= 0.0 || k2_hat <= 0.0) {
    result.probability = 0.5;
    result.theta_hat = theta_hat;
    result.converged = false;
    return result;
  }
  const double w = std::sqrt(2.0 * exponent);
  const double u = theta_hat * std::sqrt(k2_hat);
  if (w < 1e-8 || u < 1e-12) {
    result.probability = 0.5;  // continuity limit at t -> mean
    result.theta_hat = theta_hat;
    result.converged = true;
    return result;
  }
  const double phi = std::exp(-0.5 * w * w) / std::sqrt(2.0 * M_PI);
  double probability =
      1.0 - numeric::NormalCdf(w) - phi * (1.0 / w - 1.0 / u);
  probability = std::fmin(std::fmax(probability, 0.0), 1.0);

  result.probability = probability;
  result.theta_hat = theta_hat;
  result.converged = root.converged;
  return result;
}

SaddlepointResult SaddlepointLateProbability(const ServiceTimeModel& model,
                                             int n, double t) {
  ZS_CHECK_GT(n, 0);
  ZS_CHECK_GT(t, 0.0);
  const auto log_mgf = [&model, n](double theta) {
    return model.LogMgf(n, theta);
  };
  return SaddlepointTailProbability(log_mgf, model.theta_max(), t);
}

int SaddlepointMaxStreams(const ServiceTimeModel& model, double t,
                          double delta, int n_cap) {
  ZS_CHECK_GT(delta, 0.0);
  int n_max = 0;
  for (int n = 1; n <= n_cap; ++n) {
    if (SaddlepointLateProbability(model, n, t).probability > delta) break;
    n_max = n;
  }
  return n_max;
}

}  // namespace zonestream::core
