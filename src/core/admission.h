// Admission control (§2.3, §3.1.7, §3.3.6, §5).
//
// Given the analytic model, the admission limit is the largest
// multiprogramming level whose predicted service quality stays within the
// requested tolerance:
//   N_max^plate  = max{ N : b_late(N, t) <= delta }          (eq. 3.1.7)
//   N_max^perror = max{ N : p_error(N, t, M, g) <= epsilon } (eq. 3.3.6)
// §5 recommends precomputing these limits into a lookup table so run-time
// admission costs O(1); AdmissionTable and AdmissionController implement
// that scheme.
#ifndef ZONESTREAM_CORE_ADMISSION_H_
#define ZONESTREAM_CORE_ADMISSION_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/glitch_model.h"
#include "core/service_time_model.h"

namespace zonestream::core {

// Structured reason for an admission query with no meaningful finite
// answer. The MaxStreams* family (here, baselines.h, saddlepoint.h,
// snc.h) returns the sentinel 0 for such queries instead of crashing
// (t <= 0) or scanning to n_cap and reporting a misleading large N
// (delta >= 1, NaN tolerance) — the same documented-sentinel contract
// style as the `MaxStreams >=` boundary pin on the table paths.
enum class AdmissionQueryError {
  kOk = 0,
  // Round length t is not a positive finite number: no round ever
  // completes "on time", so no N is admissible.
  kInvalidRoundLength,
  // Tolerance is NaN or <= 0: no probability bound can satisfy it.
  kInvalidTolerance,
  // Tolerance >= 1: every N trivially satisfies P <= delta, so the scan
  // would run to n_cap and return a number that reflects the cap, not
  // the disk. Vacuous contracts are rejected rather than answered.
  kVacuousTolerance,
};

// Stable lowercase name for logs/CLIs ("ok", "invalid_round_length", ...).
const char* AdmissionQueryErrorName(AdmissionQueryError error);

// Classifies an admission query: kOk iff t is positive and finite and
// delta lies in (0, 1). Every MaxStreams*-family function applies this
// exact classification.
AdmissionQueryError ValidateAdmissionQuery(double t, double delta);

// Sentinel-carrying result of a checked MaxStreams* query.
struct MaxStreamsResult {
  int n_max = 0;  // always 0 when error != kOk
  AdmissionQueryError error = AdmissionQueryError::kOk;
};

// Largest N with b_late(N, t) <= delta; 0 if even N=1 violates the
// tolerance. b_late is monotone in N, so a linear scan with early exit is
// exact. The scan warm-starts each Chernoff minimization from the previous
// candidate's θ* (LateBoundScan). `n_cap` guards against pathological
// configurations. Invalid queries (see ValidateAdmissionQuery) return the
// sentinel 0; use the Checked variant to distinguish "zero capacity" from
// "invalid query".
int MaxStreamsByLateProbability(const ServiceTimeModel& model, double t,
                                double delta, int n_cap = 4096);

// As MaxStreamsByLateProbability, with the structured reason.
MaxStreamsResult MaxStreamsByLateProbabilityChecked(
    const ServiceTimeModel& model, double t, double delta, int n_cap = 4096);

// Largest N with p_error(N, t, M, g) <= epsilon (eq. 3.3.6). Invalid
// (t, epsilon) queries return the sentinel 0, same contract as
// MaxStreamsByLateProbability.
int MaxStreamsByGlitchRate(const ServiceTimeModel& model, double t, int m,
                           int g, double epsilon, int n_cap = 4096);

// Degraded-mode admission bound for a rotating-parity array rebuilding a
// failed disk (ROADMAP item 1). While one disk of a RAID-5 array is down,
// every surviving disk serves in the worst round its own N stream reads
// PLUS up to N reconstruction reads standing in for the failed disk PLUS
// `repair_requests` throttled rebuild reads, all inside the same round of
// length t. The paper's per-disk Chernoff machinery applies unchanged to
// that inflated request count, so the safe level is the largest N with
//   b_late(2N + repair_requests, t) <= delta.
// Returns 0 when even N=1 violates the tolerance (the operator must pause
// repair or shed to zero). `repair_requests` may be 0 (degraded, repair
// paused). Repair reads are modeled with the same service-time
// distribution as stream reads; size repair reads near the mean fragment
// (RepairPolicy::read_bytes) to keep that faithful.
int MaxStreamsByLateProbabilityDegraded(const ServiceTimeModel& model,
                                        double t, double delta,
                                        int repair_requests,
                                        int n_cap = 4096);

// Largest N satisfying BOTH contracts simultaneously: b_late(N, t) <=
// delta AND p_error(N, t, m, g) <= epsilon. Operators often want the
// per-round guarantee for interactive feel plus the per-stream guarantee
// for session quality; by monotonicity this is simply the minimum of the
// two limits.
int MaxStreamsByCombinedCriteria(const ServiceTimeModel& model, double t,
                                 double delta, int m, int g, double epsilon,
                                 int n_cap = 4096);

// One row of the §5 lookup table.
struct AdmissionTableRow {
  double tolerance = 0.0;  // delta (p_late) or epsilon (p_error)
  int n_max = 0;
};

// Quality-of-service criterion for a precomputed table.
enum class AdmissionCriterion {
  kLateProbability,  // bound p_late per round (eq. 3.1.7)
  kGlitchRate,       // bound p_error over a stream's lifetime (eq. 3.3.6)
};

// Tuning knobs for AdmissionTable::Build. The defaults give the fast
// deterministic path; results are bit-identical at every thread count
// because the per-n quality values are computed by one serial warm scan
// and each tolerance's row is a pure function of those shared values.
struct AdmissionBuildOptions {
  // Thread pool for the per-tolerance work; null uses the global pool.
  common::ThreadPool* pool = nullptr;
  // Warm-started shared scan (default) vs. independent cold per-tolerance
  // scans (the pre-optimization algorithm, kept for validation and
  // benchmarking). The two agree to the Chernoff minimizer's tolerance
  // (~1e-12 on the bounds), which yields identical integer rows except
  // for tolerances sitting exactly on a bound value.
  bool warm_start = true;
  // Upper limit on the candidate multiprogramming level.
  int n_cap = 4096;
  // Seek term charged by the scans: the paper's equidistant worst case
  // (default) or the Bachmat distributional bound (never looser; valid
  // under uniform random placement — see seek_bound_bachmat.h).
  SeekBoundKind seek_bound = SeekBoundKind::kEquidistant;
};

// Precomputed tolerance -> N_max lookup table (§5). The table only needs
// rebuilding when the disk configuration or workload statistics change.
class AdmissionTable {
 public:
  // Builds a table for the given tolerances (must be positive, ascending).
  // For kGlitchRate, `m` and `g` define the stream-lifetime QoS contract;
  // they are ignored for kLateProbability.
  static common::StatusOr<AdmissionTable> Build(
      const ServiceTimeModel& model, AdmissionCriterion criterion, double t,
      std::vector<double> tolerances, int m = 0, int g = 0,
      const AdmissionBuildOptions& options = {});

  // N_max for the loosest tabulated row whose tolerance does not exceed
  // the request — i.e. the largest tabulated tolerance with
  // `tolerance >= row.tolerance`. The comparison is `>=`, not `>`: a
  // request EXACTLY equal to a tabulated tolerance selects that row, at
  // both ends of the table (a request equal to the smallest row returns
  // that row's limit, not 0). Returns 0 only when the request is
  // strictly below every tabulated row (no row enforces a contract at
  // least as strict as asked). AdmissionTableSnapshot::MaxStreams and
  // AdmissionController honor the identical contract; boundary behavior
  // is pinned by tests on every path.
  int MaxStreams(double tolerance) const;

  const std::vector<AdmissionTableRow>& rows() const { return rows_; }
  AdmissionCriterion criterion() const { return criterion_; }
  double round_length() const { return round_length_s_; }

  // Serializes the table to a small self-describing text format, so the
  // (model-evaluation) build step can run offline and ship only the table
  // to the serving hosts — the deployment §5 suggests. Stable across
  // versions of this library.
  std::string Serialize() const;

  // Parses a table produced by Serialize(). Rejects unknown versions,
  // malformed rows, and non-ascending tolerances.
  static common::StatusOr<AdmissionTable> Deserialize(
      const std::string& content);

 private:
  AdmissionTable(AdmissionCriterion criterion, double round_length_s,
                 std::vector<AdmissionTableRow> rows)
      : criterion_(criterion),
        round_length_s_(round_length_s),
        rows_(std::move(rows)) {}

  AdmissionCriterion criterion_;
  double round_length_s_;
  std::vector<AdmissionTableRow> rows_;  // ascending tolerance
};

// Immutable, flattened view of an AdmissionTable for lock-free serving
// fast paths (src/service/). The tolerance keys and limits live in two
// contiguous arrays (16 bytes per row, no row structs, no indirection),
// so a lookup is one cache-resident branchless-ish binary search; a
// whole deployment table (tens of rows) fits in a cache line or two.
//
// The object is deeply immutable after construction and therefore safe
// to read from any number of threads with no synchronization; the
// admission service publishes fresh snapshots through an RCU pointer
// swap when the table is rebuilt (docs/SERVICE.md).
class AdmissionTableSnapshot {
 public:
  // Flattens `table` (rows ascending in tolerance, as AdmissionTable
  // guarantees).
  explicit AdmissionTableSnapshot(const AdmissionTable& table);

  // Empty snapshot: every lookup returns 0.
  AdmissionTableSnapshot() = default;

  // Same `>=` contract as AdmissionTable::MaxStreams: the limit of the
  // largest tabulated tolerance <= `tolerance` (equality selects the
  // row), 0 when the request is strictly below every row.
  int MaxStreams(double tolerance) const {
    // Branch-light binary search for "first row with row.tolerance >
    // tolerance" over the flat key array.
    size_t lo = 0;
    size_t hi = tolerances_.size();
    while (lo < hi) {
      const size_t mid = lo + ((hi - lo) >> 1);
      if (tolerances_[mid] <= tolerance) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo == 0 ? 0 : limits_[lo - 1];
  }

  size_t size() const { return tolerances_.size(); }
  double tolerance_at(size_t i) const { return tolerances_[i]; }
  int32_t limit_at(size_t i) const { return limits_[i]; }
  AdmissionCriterion criterion() const { return criterion_; }
  double round_length() const { return round_length_s_; }

 private:
  AdmissionCriterion criterion_ = AdmissionCriterion::kLateProbability;
  double round_length_s_ = 0.0;
  std::vector<double> tolerances_;  // ascending keys
  std::vector<int32_t> limits_;     // limits_[i] = N_max of tolerances_[i]
};

// Run-time admission controller: O(1) admit/release against a precomputed
// limit. Streams beyond the limit are rejected (the server may also choose
// to queue them; that policy lives in the server layer).
class AdmissionController {
 public:
  // `tolerance` selects the row of `table` to enforce.
  AdmissionController(const AdmissionTable& table, double tolerance);

  // Explicit limit (e.g. from one of the MaxStreams* functions).
  explicit AdmissionController(int n_max);

  // Tries to admit one stream; returns false when the server is full.
  bool TryAdmit();

  // Releases one admitted stream.
  void Release();

  int active_streams() const { return active_; }
  int max_streams() const { return n_max_; }

 private:
  int n_max_;
  int active_ = 0;
};

}  // namespace zonestream::core

#endif  // ZONESTREAM_CORE_ADMISSION_H_
