#include "core/sensitivity.h"

#include <cmath>
#include <functional>

#include "common/check.h"
#include "core/admission.h"
#include "core/service_time_model.h"

namespace zonestream::core {
namespace {

// Everything needed to rebuild the model after a perturbation.
struct Scenario {
  disk::DiskParameters disk;
  disk::SeekParameters seek;
  double mean_size;
  double variance_size;
};

common::StatusOr<int> NMaxFor(const Scenario& scenario, double t,
                              double delta) {
  auto geometry = disk::DiskGeometry::Create(scenario.disk);
  if (!geometry.ok()) return geometry.status();
  auto seek = disk::SeekTimeModel::Create(scenario.seek);
  if (!seek.ok()) return seek.status();
  auto model = ServiceTimeModel::ForMultiZoneDisk(
      *geometry, *seek, scenario.mean_size, scenario.variance_size);
  if (!model.ok()) return model.status();
  return MaxStreamsByLateProbability(*model, t, delta);
}

}  // namespace

common::StatusOr<SensitivityReport> AnalyzeAdmissionSensitivity(
    const disk::DiskParameters& disk_parameters,
    const disk::SeekParameters& seek_parameters, double mean_size_bytes,
    double variance_size_bytes2, double round_length_s, double late_tolerance,
    double relative_delta) {
  if (relative_delta <= 0.0 || relative_delta >= 1.0) {
    return common::Status::InvalidArgument(
        "relative_delta must lie in (0, 1)");
  }
  const Scenario baseline{disk_parameters, seek_parameters, mean_size_bytes,
                          variance_size_bytes2};
  auto baseline_nmax = NMaxFor(baseline, round_length_s, late_tolerance);
  if (!baseline_nmax.ok()) return baseline_nmax.status();

  SensitivityReport report;
  report.n_max_baseline = *baseline_nmax;

  struct Perturbation {
    const char* name;
    std::function<void(Scenario*, double)> apply;  // scale factor
  };
  const std::vector<Perturbation> perturbations = {
      {"mean fragment size",
       [](Scenario* s, double f) { s->mean_size *= f; }},
      {"fragment size stddev",
       [](Scenario* s, double f) { s->variance_size *= f * f; }},
      {"rotation time",
       [](Scenario* s, double f) { s->disk.rotation_time_s *= f; }},
      {"seek time scale",
       [](Scenario* s, double f) {
         s->seek.sqrt_intercept_s *= f;
         s->seek.sqrt_coefficient *= f;
         s->seek.linear_intercept_s *= f;
         s->seek.linear_coefficient *= f;
       }},
      {"zone capacity spread",
       [](Scenario* s, double f) {
         // Scale C_max - C_min around the midpoint, keeping the mean
         // track capacity (and hence the mean transfer time) fixed.
         const double mid = 0.5 * (s->disk.innermost_track_bytes +
                                   s->disk.outermost_track_bytes);
         const double half = 0.5 * (s->disk.outermost_track_bytes -
                                    s->disk.innermost_track_bytes);
         s->disk.innermost_track_bytes = mid - f * half;
         s->disk.outermost_track_bytes = mid + f * half;
       }},
  };

  for (const Perturbation& perturbation : perturbations) {
    SensitivityEntry entry;
    entry.parameter = perturbation.name;
    entry.n_max_baseline = *baseline_nmax;

    Scenario down = baseline;
    perturbation.apply(&down, 1.0 - relative_delta);
    auto down_nmax = NMaxFor(down, round_length_s, late_tolerance);
    if (!down_nmax.ok()) return down_nmax.status();
    entry.n_max_down = *down_nmax;

    Scenario up = baseline;
    perturbation.apply(&up, 1.0 + relative_delta);
    auto up_nmax = NMaxFor(up, round_length_s, late_tolerance);
    if (!up_nmax.ok()) return up_nmax.status();
    entry.n_max_up = *up_nmax;

    report.entries.push_back(std::move(entry));
  }
  return report;
}

}  // namespace zonestream::core
