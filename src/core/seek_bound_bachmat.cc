#include "core/seek_bound_bachmat.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <vector>

#include "common/check.h"
#include "numeric/quadrature.h"
#include "sched/oyang_bound.h"

namespace zonestream::core {

namespace {

// Quadrature panels for E[g(B)], B ~ Beta(1, n) with density n(1-x)^{n-1}
// on [0, 1]. The density decays on the scale 1/n, so panels grow
// geometrically from that scale outward (a handful of e-foldings per
// panel keeps 32-point Gauss-Legendre at machine precision); the seek
// model's sqrt/linear threshold is inserted as an explicit breakpoint so
// every panel sees a smooth integrand.
std::vector<double> PanelBreakpoints(int n, double threshold_fraction) {
  std::vector<double> points;
  points.push_back(0.0);
  const double scale = 1.0 / static_cast<double>(n);
  for (double x = 0.5 * scale; x < 1.0; x *= 2.0) points.push_back(x);
  if (threshold_fraction > 0.0 && threshold_fraction < 1.0) {
    points.push_back(threshold_fraction);
  }
  points.push_back(1.0);
  std::sort(points.begin(), points.end());
  points.erase(std::unique(points.begin(), points.end()), points.end());
  return points;
}

// E[g(CYL·B)] by panel-wise Gauss-Legendre against the Beta(1, n) density.
double GapExpectation(const std::function<double(double)>& g_of_distance,
                      const disk::SeekTimeModel& seek, int cylinders, int n) {
  ZS_CHECK_GT(cylinders, 0);
  ZS_CHECK_GE(n, 1);
  const double cyl = static_cast<double>(cylinders);
  const double nn = static_cast<double>(n);
  const double threshold_fraction =
      static_cast<double>(seek.params().threshold_cylinders) / cyl;
  const auto integrand = [&g_of_distance, cyl, nn](double x) {
    // n(1-x)^{n-1}: underflows harmlessly far outside the density scale.
    const double density = nn * std::pow(1.0 - x, nn - 1.0);
    return g_of_distance(cyl * x) * density;
  };
  const std::vector<double> panels = PanelBreakpoints(n, threshold_fraction);
  double total = 0.0;
  for (size_t i = 0; i + 1 < panels.size(); ++i) {
    total += numeric::GaussLegendre(integrand, panels[i], panels[i + 1]);
  }
  return total;
}

}  // namespace

const char* SeekBoundKindName(SeekBoundKind kind) {
  switch (kind) {
    case SeekBoundKind::kEquidistant:
      return "equidistant";
    case SeekBoundKind::kBachmat:
      return "bachmat";
  }
  return "unknown";
}

double BachmatGapSeekMgf(const disk::SeekTimeModel& seek, int cylinders,
                         int n, double theta) {
  ZS_CHECK_GE(theta, 0.0);
  if (theta == 0.0) return 1.0;
  const auto g = [&seek, theta](double distance) {
    return std::exp(theta * seek.SeekTime(distance));
  };
  return GapExpectation(g, seek, cylinders, n);
}

BachmatGapMoments BachmatGapSeekMoments(const disk::SeekTimeModel& seek,
                                        int cylinders, int n) {
  const auto first = [&seek](double d) { return seek.SeekTime(d); };
  const auto second = [&seek](double d) {
    const double s = seek.SeekTime(d);
    return s * s;
  };
  BachmatGapMoments moments;
  moments.mean_s = GapExpectation(first, seek, cylinders, n);
  const double m2 = GapExpectation(second, seek, cylinders, n);
  moments.variance_s2 = std::fmax(m2 - moments.mean_s * moments.mean_s, 0.0);
  return moments;
}

double BachmatSeekLogMgf(const disk::SeekTimeModel& seek, int cylinders,
                         int n, double theta) {
  ZS_CHECK_GE(n, 0);
  ZS_CHECK_GE(theta, 0.0);
  if (n == 0 || theta == 0.0) return 0.0;
  const double equidistant =
      theta * sched::OyangSeekBound(seek, cylinders, n);
  const double bachmat =
      static_cast<double>(n + 1) *
      std::log(BachmatGapSeekMgf(seek, cylinders, n, theta));
  // The equidistant term bounds the seek log-MGF for ANY placement
  // (concavity makes SEEK_eq an almost-sure bound), so the min is always
  // valid — and makes "Bachmat never looser than equidistant" structural.
  return std::fmin(equidistant, bachmat);
}

double BachmatExpectedSeekTotal(const disk::SeekTimeModel& seek,
                                int cylinders, int n) {
  ZS_CHECK_GE(n, 0);
  if (n == 0) return 0.0;
  const double expected =
      static_cast<double>(n + 1) *
      BachmatGapSeekMoments(seek, cylinders, n).mean_s;
  return std::fmin(expected, sched::OyangSeekBound(seek, cylinders, n));
}

double BachmatSeekTotalVarianceBound(const disk::SeekTimeModel& seek,
                                     int cylinders, int n) {
  ZS_CHECK_GE(n, 0);
  if (n == 0) return 0.0;
  return static_cast<double>(n + 1) *
         BachmatGapSeekMoments(seek, cylinders, n).variance_s2;
}

}  // namespace zonestream::core
