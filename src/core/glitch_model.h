// Per-stream glitch probability (§3.3).
//
// With random fragment placement, the streams hit by an overrunning round
// are a uniform random subset, giving (eq. 3.3.2)
//
//   p_glitch(N, t) = (1/N) Σ_{k=1..N} p_late(k, t) <= (1/N) Σ b_late(k, t).
//
// The number of glitches of one stream over M rounds is Binomial(M,
// p_glitch); its tail is bounded with the Hagerup-Rüb Chernoff bound
// (eq. 3.3.5), yielding p_error(N, t, M, g) = P[glitches >= g].
#ifndef ZONESTREAM_CORE_GLITCH_MODEL_H_
#define ZONESTREAM_CORE_GLITCH_MODEL_H_

#include "core/service_time_model.h"

namespace zonestream::core {

// Hagerup-Rüb Chernoff bound on the upper tail of a Binomial(m, p):
// P[X >= g] <= (mp/g)^g ((m - mp)/(m - g))^{m-g}, valid for g/m > p.
// Returns 1 when g/m <= p (the bound is vacuous there) and 0 when p == 0.
// A zero-round lifetime (m == 0, which forces g == 0) has no glitches
// surely, so the tail is 1. Evaluated in log space; exact at g == m only
// in the limit.
double BinomialTailChernoff(int m, double p, int g);

// Exact binomial upper tail P[X >= g] by direct log-space summation.
// Intended for validation and small/medium m (cost O(m - g)); the m == 0
// degenerate case matches BinomialTailChernoff.
double BinomialTailExact(int m, double p, int g);

// Analytic glitch model for one disk.
class GlitchModel {
 public:
  // The model borrows the ServiceTimeModel by reference; the caller keeps
  // it alive.
  explicit GlitchModel(const ServiceTimeModel* service_model);

  // b_glitch(N, t): bound on the probability that a given stream suffers a
  // glitch in one round (eq. 3.3.3). Cost: N Chernoff minimizations.
  double GlitchBoundPerRound(int n, double t) const;

  // p_error bound (eq. 3.3.5): P[stream has >= g glitches in m rounds],
  // using the Chernoff-bounded b_glitch as the binomial parameter.
  double ErrorBound(int n, double t, int m, int g) const;

  // Same, but with a caller-supplied per-round glitch probability (lets
  // benches evaluate eq. 3.3.5 against a simulated p_glitch).
  static double ErrorBoundForGlitchProbability(double p_glitch, int m, int g);

  const ServiceTimeModel& service_model() const { return *service_model_; }

 private:
  const ServiceTimeModel* service_model_;
};

}  // namespace zonestream::core

#endif  // ZONESTREAM_CORE_GLITCH_MODEL_H_
