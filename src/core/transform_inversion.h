// Exact numeric inversion of the round service-time transform (extension).
//
// The paper derives the Laplace-Stieltjes transform of T_N (eq. 3.1.4)
// and then *bounds* its tail with Chernoff's method. With 1990s compute
// that was the only option fast enough for admission control; today the
// transform can simply be inverted numerically. The Gil-Pelaez formula
// gives the exact tail from the characteristic function φ(u) = E[e^{iuT}]:
//
//   P[T >= t] = 1/2 + (1/π) ∫_0^∞ Im(e^{-iut} φ(u)) / u du.
//
// For the round transform the integrand decays like
// |2 sin(uROT/2)/(uROT)|^N — superexponentially in N — so a modest
// composite quadrature suffices. This yields the model-exact p_late,
// which the A1 ablation uses to split the total conservatism of the
// paper's bound into (a) the Oyang-seek/model-vs-simulation gap and
// (b) the Chernoff-vs-exact-tail slack.
//
// Accuracy note: the inversion carries an absolute noise floor of roughly
// 1e-7 (quadrature and truncation residuals of an oscillatory integral
// whose value is the tail minus 1/2). For probabilities below that floor
// use the Chernoff bound or the saddlepoint estimate instead; in the
// admission-relevant regime (1e-4..1e-1) the inversion is accurate to a
// relative few-1e-3.
#ifndef ZONESTREAM_CORE_TRANSFORM_INVERSION_H_
#define ZONESTREAM_CORE_TRANSFORM_INVERSION_H_

#include <complex>
#include <functional>

#include "common/status.h"
#include "core/service_time_model.h"

namespace zonestream::core {

// Options for the Gil-Pelaez quadrature.
struct InversionOptions {
  // Integration cutoff: u is truncated where the envelope of |φ(u)|/u
  // falls below this times the accumulated integral.
  double tail_tolerance = 1e-12;
  // Quadrature points per oscillation period 2π/t.
  int points_per_period = 24;
  // Hard cap on the integration range (periods of 2π/t).
  int max_periods = 40000;
};

// Gil-Pelaez tail probability for an arbitrary characteristic function.
// `cf` must be the characteristic function of a non-negative random
// variable; the result is clamped to [0, 1].
double GilPelaezTailProbability(
    const std::function<std::complex<double>(double)>& cf, double t,
    const InversionOptions& options = {});

// Model-exact p_late(n, t) for a ServiceTimeModel whose transfer model
// exposes a characteristic function (the Gamma transfer models do).
// Returns FailedPrecondition otherwise.
common::StatusOr<double> ExactLateProbability(
    const ServiceTimeModel& model, int n, double t,
    const InversionOptions& options = {});

// Largest N with model-exact p_late <= delta.
common::StatusOr<int> ExactMaxStreams(const ServiceTimeModel& model, double t,
                                      double delta, int n_cap = 4096);

}  // namespace zonestream::core

#endif  // ZONESTREAM_CORE_TRANSFORM_INVERSION_H_
