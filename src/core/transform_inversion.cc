#include "core/transform_inversion.h"

#include <cmath>
#include <vector>

#include "common/check.h"
#include "numeric/quadrature.h"

namespace zonestream::core {

double GilPelaezTailProbability(
    const std::function<std::complex<double>(double)>& cf, double t,
    const InversionOptions& options) {
  ZS_CHECK_GT(t, 0.0);
  ZS_CHECK_GT(options.points_per_period, 0);
  // Integrand g(u) = Im(e^{-iut} φ(u)) / u; finite at u -> 0 with limit
  // E[T] - t. Integrate per oscillation period 2π/t with Gauss-Legendre
  // (whose nodes avoid u = 0), stopping once several consecutive period
  // contributions are negligible.
  const auto integrand = [&cf, t](double u) {
    const std::complex<double> phase(std::cos(u * t), -std::sin(u * t));
    return (phase * cf(u)).imag() / u;
  };
  const double period = 2.0 * M_PI / t;
  // Per-period quadrature. Adaptive Simpson (with a forced minimum depth)
  // rather than fixed-order Gauss: when t is small the oscillation period
  // is much longer than the characteristic function's own scale of
  // variation (~1/stddev), and a fixed rule across the whole period would
  // under-resolve the CF's structure.
  const int min_depth = options.points_per_period <= 8    ? 4
                        : options.points_per_period <= 16 ? 5
                                                          : 6;
  const auto integrate_period = [&integrand, min_depth](double a, double b) {
    return numeric::AdaptiveSimpson(integrand, a, b, /*abs_tol=*/1e-14,
                                    /*rel_tol=*/1e-10, /*max_depth=*/30,
                                    min_depth)
        .value;
  };
  // Partial sums over whole periods. For transforms with algebraic decay
  // (densities with jumps decay like 1/k^2 per period), the truncation
  // error of the partial sum behaves like c/K, which a Richardson step
  // S_inf ~ 2 S_K - S_{K/2} removes; smooth light-tailed transforms such
  // as the round service time decay superexponentially, making the
  // extrapolation a no-op (S_K == S_{K/2} to machine precision).
  std::vector<double> partial_sums;
  partial_sums.reserve(1024);
  double integral = 0.0;
  int quiet_periods = 0;
  for (int k = 0; k < options.max_periods; ++k) {
    // The integrand has a removable singularity at u = 0 (limit E[T] - t);
    // nudge the very first endpoint off zero instead of special-casing the
    // limit (the skipped sliver contributes O(1e-12) of one period).
    const double a =
        (k == 0) ? period * 1e-12 : k * period;
    const double b = (k + 1) * period;
    const double segment = integrate_period(a, b);
    integral += segment;
    partial_sums.push_back(integral);
    if (std::fabs(segment) < options.tail_tolerance) {
      if (++quiet_periods >= 5) break;
    } else {
      quiet_periods = 0;
    }
  }
  const size_t count = partial_sums.size();
  double extrapolated = integral;
  if (count >= 8) {
    extrapolated = 2.0 * partial_sums[count - 1] - partial_sums[count / 2 - 1];
  }
  const double tail = 0.5 + extrapolated / M_PI;
  return std::fmin(std::fmax(tail, 0.0), 1.0);
}

common::StatusOr<double> ExactLateProbability(
    const ServiceTimeModel& model, int n, double t,
    const InversionOptions& options) {
  if (n <= 0) {
    return common::Status::InvalidArgument("n must be positive");
  }
  if (t <= 0.0) {
    return common::Status::InvalidArgument("t must be positive");
  }
  if (!model.has_cf()) {
    return common::Status::FailedPrecondition(
        "transfer model exposes no characteristic function");
  }
  const auto cf = [&model, n](double u) {
    return model.CharacteristicFunction(n, u);
  };
  return GilPelaezTailProbability(cf, t, options);
}

common::StatusOr<int> ExactMaxStreams(const ServiceTimeModel& model, double t,
                                      double delta, int n_cap) {
  if (delta <= 0.0) {
    return common::Status::InvalidArgument("delta must be positive");
  }
  if (!model.has_cf()) {
    return common::Status::FailedPrecondition(
        "transfer model exposes no characteristic function");
  }
  int n_max = 0;
  for (int n = 1; n <= n_cap; ++n) {
    const auto p_late = ExactLateProbability(model, n, t);
    ZS_CHECK(p_late.ok());
    if (*p_late > delta) break;
    n_max = n;
  }
  return n_max;
}

}  // namespace zonestream::core
