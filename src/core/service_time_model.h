// The round service-time model (§3.1/§3.2): distribution of the total
// service time T_N for one SCAN round with N requests,
//
//   T_N = SEEK(N) + Σ_{i=1..N} T_rot,i + Σ_{i=1..N} T_trans,i
//
// with SEEK(N) the Oyang worst case (a constant once N is fixed),
// T_rot,i ~ U(0, ROT) i.i.d., and T_trans,i i.i.d. from a TransferModel.
// The model exposes the cumulant generating function of T_N and the
// Chernoff bound b_late(N, t) >= p_late(N, t) = P[T_N >= t].
#ifndef ZONESTREAM_CORE_SERVICE_TIME_MODEL_H_
#define ZONESTREAM_CORE_SERVICE_TIME_MODEL_H_

#include <complex>
#include <memory>

#include "common/status.h"
#include "core/chernoff.h"
#include "core/seek_bound_bachmat.h"
#include "core/transfer_models.h"
#include "disk/disk_geometry.h"
#include "disk/seek_model.h"
#include "workload/size_distribution.h"

namespace zonestream::core {

// Summary moments of T_N (used by the CLT / Chebyshev baselines).
struct ServiceTimeMoments {
  double mean_s = 0.0;
  double variance_s2 = 0.0;
};

// Immutable per-disk analytic model. Thread-compatible: all methods are
// const and stateless.
class ServiceTimeModel {
 public:
  // §3.1 conventional-disk model: one fixed transfer rate. The transfer
  // time is Gamma with moments scaled from the fragment-size moments.
  static common::StatusOr<ServiceTimeModel> ForConventionalDisk(
      const disk::DiskGeometry& geometry, const disk::SeekTimeModel& seek,
      double mean_size_bytes, double variance_size_bytes2);

  // §3.1 variant taking transfer-time moments directly (the paper's worked
  // example specifies E[T_trans] and Var[T_trans] rather than a rate).
  static common::StatusOr<ServiceTimeModel> FromTransferMoments(
      const disk::SeekTimeModel& seek, int cylinders, double rotation_time_s,
      double mean_transfer_s, double variance_transfer_s2);

  // §3.2 multi-zone model: transfer time moment-matched to the zone
  // mixture (the paper's approach).
  static common::StatusOr<ServiceTimeModel> ForMultiZoneDisk(
      const disk::DiskGeometry& geometry, const disk::SeekTimeModel& seek,
      double mean_size_bytes, double variance_size_bytes2);

  // Extension: any TransferModel (e.g. the exact zone mixture transform).
  static common::StatusOr<ServiceTimeModel> WithTransferModel(
      const disk::SeekTimeModel& seek, int cylinders, double rotation_time_s,
      std::shared_ptr<const TransferModel> transfer);

  // Oyang worst-case total seek time SEEK(n) for a round with n requests.
  // Always the equidistant worst case, regardless of seek_bound_kind()
  // (the deterministic budget; the Bachmat refinement only sharpens the
  // MGF-level term, see SeekLogMgf).
  double SeekBound(int n) const;

  // Seek component of the round log-MGF at θ. Equidistant mode charges
  // the deterministic θ·SEEK(n); Bachmat mode charges the distributional
  // bound min(θ·SEEK(n), BachmatSeekLogMgf(n, θ)) — never looser, and
  // valid under uniform random placement (see seek_bound_bachmat.h).
  double SeekLogMgf(int n, double theta) const;

  // Copy of this model charging `kind` as its seek term. Cheap (the
  // transfer model is shared).
  ServiceTimeModel WithSeekBound(SeekBoundKind kind) const;

  SeekBoundKind seek_bound_kind() const { return seek_bound_kind_; }

  // Cumulant generating function log E[e^{θ T_n}] (eq. 3.1.4 at s = -θ).
  // Requires 0 <= θ < theta_max().
  double LogMgf(int n, double theta) const;

  // The n-independent per-request component of LogMgf: the sum of the
  // rotational-latency and transfer log-MGFs at θ, so that
  // LogMgf(n, θ) = θ·SEEK(n) + n·PerRequestLogMgf(θ). Exposed so scan
  // evaluators (LateBoundScan) can memoize it across candidate n.
  double PerRequestLogMgf(double theta) const;

  // Supremum of the admissible θ domain (the transfer model's).
  double theta_max() const { return transfer_->theta_max(); }

  // Chernoff bound b_late(n, t) on P[T_n >= t] (eqs. 3.1.5/3.1.6, 3.2.12).
  // `options` tunes the minimization (warm-start hints for scans over n).
  ChernoffResult LateBound(int n, double t,
                           const ChernoffOptions& options = {}) const;

  // Whether the transfer model exposes a characteristic function (needed
  // by the exact transform-inversion extension).
  bool has_cf() const { return transfer_->has_cf(); }

  // Characteristic function E[e^{iu T_n}] (eq. 3.1.4 at s = -iu). Only
  // valid if has_cf(). Always uses the deterministic equidistant seek
  // term (the transform-inversion extension models SEEK(n) as a
  // constant), regardless of seek_bound_kind().
  std::complex<double> CharacteristicFunction(int n, double u) const;

  // Mean/variance of T_n. Exact in equidistant mode; in Bachmat mode the
  // seek contribution is the expected uniform-placement seek total with
  // the negative-association variance bound (see seek_bound_bachmat.h).
  ServiceTimeMoments Moments(int n) const;

  // Component accessors.
  double rotation_time() const { return rotation_time_s_; }
  int cylinders() const { return cylinders_; }
  const TransferModel& transfer_model() const { return *transfer_; }
  const disk::SeekTimeModel& seek_model() const { return seek_; }

 private:
  ServiceTimeModel(const disk::SeekTimeModel& seek, int cylinders,
                   double rotation_time_s,
                   std::shared_ptr<const TransferModel> transfer);

  // log of the uniform-rotational-latency MGF, log((e^x - 1)/x) at
  // x = θ·ROT, evaluated stably for small and large x.
  double RotationLogMgf(double theta) const;

  disk::SeekTimeModel seek_;
  int cylinders_;
  double rotation_time_s_;
  std::shared_ptr<const TransferModel> transfer_;
  SeekBoundKind seek_bound_kind_ = SeekBoundKind::kEquidistant;
};

}  // namespace zonestream::core

#endif  // ZONESTREAM_CORE_SERVICE_TIME_MODEL_H_
