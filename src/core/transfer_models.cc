#include "core/transfer_models.h"

#include <cmath>

#include "common/check.h"

namespace zonestream::core {

std::complex<double> TransferModel::Cf(double /*u*/) const {
  // has_cf() was false; callers must check before calling.
  common::FatalCheckFailure(__FILE__, __LINE__,
                            "Cf() called on a transfer model without a "
                            "characteristic function");
}

// ---------------------------------------------------------------------------
// GammaTransferModel

common::StatusOr<GammaTransferModel> GammaTransferModel::FromMoments(
    double mean_s, double variance_s2) {
  if (mean_s <= 0.0) {
    return common::Status::InvalidArgument(
        "transfer-time mean must be positive");
  }
  if (variance_s2 <= 0.0) {
    return common::Status::InvalidArgument(
        "transfer-time variance must be positive");
  }
  const double alpha = mean_s / variance_s2;          // rate, eq. (3.1.2)
  const double beta = mean_s * mean_s / variance_s2;  // shape
  return GammaTransferModel(alpha, beta);
}

common::StatusOr<GammaTransferModel> GammaTransferModel::ForConstantRate(
    double mean_size_bytes, double variance_size_bytes2, double rate_bps) {
  if (rate_bps <= 0.0) {
    return common::Status::InvalidArgument("transfer rate must be positive");
  }
  return FromMoments(mean_size_bytes / rate_bps,
                     variance_size_bytes2 / (rate_bps * rate_bps));
}

common::StatusOr<GammaTransferModel> GammaTransferModel::ForMultiZone(
    const disk::DiskGeometry& geometry, double mean_size_bytes,
    double variance_size_bytes2) {
  if (mean_size_bytes <= 0.0 || variance_size_bytes2 <= 0.0) {
    return common::Status::InvalidArgument(
        "size moments must be positive");
  }
  // Exact moments of T = S/R with S and R independent:
  // E[T] = E[S]·E[1/R], E[T^2] = E[S^2]·E[1/R^2].
  const double inv_rate_1 = geometry.InverseRateMoment(1);
  const double inv_rate_2 = geometry.InverseRateMoment(2);
  const double size_m2 =
      variance_size_bytes2 + mean_size_bytes * mean_size_bytes;
  const double mean_t = mean_size_bytes * inv_rate_1;
  const double var_t = size_m2 * inv_rate_2 - mean_t * mean_t;
  ZS_CHECK_GT(var_t, 0.0);
  return FromMoments(mean_t, var_t);
}

common::StatusOr<GammaTransferModel> GammaTransferModel::ForRateMixture(
    const std::vector<double>& probabilities, const std::vector<double>& rates,
    double mean_size_bytes, double variance_size_bytes2) {
  if (probabilities.empty() || probabilities.size() != rates.size()) {
    return common::Status::InvalidArgument(
        "probabilities and rates must be non-empty and of equal length");
  }
  double prob_sum = 0.0;
  double inv_rate_1 = 0.0;
  double inv_rate_2 = 0.0;
  for (size_t i = 0; i < rates.size(); ++i) {
    if (probabilities[i] < 0.0 || rates[i] <= 0.0) {
      return common::Status::InvalidArgument(
          "probabilities must be >= 0 and rates > 0");
    }
    prob_sum += probabilities[i];
    inv_rate_1 += probabilities[i] / rates[i];
    inv_rate_2 += probabilities[i] / (rates[i] * rates[i]);
  }
  if (std::fabs(prob_sum - 1.0) > 1e-9) {
    return common::Status::InvalidArgument("probabilities must sum to 1");
  }
  if (mean_size_bytes <= 0.0 || variance_size_bytes2 <= 0.0) {
    return common::Status::InvalidArgument("size moments must be positive");
  }
  const double size_m2 =
      variance_size_bytes2 + mean_size_bytes * mean_size_bytes;
  const double mean_t = mean_size_bytes * inv_rate_1;
  const double var_t = size_m2 * inv_rate_2 - mean_t * mean_t;
  ZS_CHECK_GT(var_t, 0.0);
  return FromMoments(mean_t, var_t);
}

double GammaTransferModel::LogMgf(double theta) const {
  ZS_CHECK_GE(theta, 0.0);
  ZS_CHECK_LT(theta, alpha_);
  // log (alpha/(alpha-theta))^beta, eq. (3.1.3) at s = -theta.
  return -beta_ * std::log1p(-theta / alpha_);
}

std::complex<double> GammaTransferModel::Cf(double u) const {
  // (1 - iu/alpha)^{-beta} = exp(-beta log(1 - iu/alpha)).
  const std::complex<double> one_minus(1.0, -u / alpha_);
  return std::exp(-beta_ * std::log(one_minus));
}

// ---------------------------------------------------------------------------
// ZoneMixtureTransferModel

ZoneMixtureTransferModel::ZoneMixtureTransferModel(
    std::vector<double> probabilities, std::vector<double> rates,
    std::shared_ptr<const workload::SizeDistribution> sizes)
    : probabilities_(std::move(probabilities)),
      rates_(std::move(rates)),
      sizes_(std::move(sizes)),
      mean_(0.0),
      variance_(0.0),
      theta_max_(0.0) {
  double inv_rate_1 = 0.0;
  double inv_rate_2 = 0.0;
  double min_rate = rates_.front();
  for (size_t i = 0; i < rates_.size(); ++i) {
    inv_rate_1 += probabilities_[i] / rates_[i];
    inv_rate_2 += probabilities_[i] / (rates_[i] * rates_[i]);
    min_rate = std::fmin(min_rate, rates_[i]);
  }
  const double size_mean = sizes_->mean();
  const double size_m2 = sizes_->variance() + size_mean * size_mean;
  mean_ = size_mean * inv_rate_1;
  variance_ = size_m2 * inv_rate_2 - mean_ * mean_;
  // M_T(θ) = Σ p_i M_S(θ/R_i) is finite iff θ/R_i < θ_max,S for every zone;
  // the binding constraint is the slowest zone.
  theta_max_ = min_rate * sizes_->MgfThetaMax();
}

common::StatusOr<ZoneMixtureTransferModel> ZoneMixtureTransferModel::Create(
    const disk::DiskGeometry& geometry,
    std::shared_ptr<const workload::SizeDistribution> sizes) {
  if (sizes == nullptr) {
    return common::Status::InvalidArgument("size distribution is null");
  }
  if (!sizes->has_finite_mgf()) {
    return common::Status::FailedPrecondition(
        "size distribution has no finite MGF; use the Gamma moment-matched "
        "model instead");
  }
  std::vector<double> probabilities;
  std::vector<double> rates;
  probabilities.reserve(geometry.num_zones());
  rates.reserve(geometry.num_zones());
  for (const disk::ZoneInfo& zone : geometry.zones()) {
    probabilities.push_back(zone.hit_probability);
    rates.push_back(zone.transfer_rate_bps);
  }
  return ZoneMixtureTransferModel(std::move(probabilities), std::move(rates),
                                  std::move(sizes));
}

double ZoneMixtureTransferModel::LogMgf(double theta) const {
  ZS_CHECK_GE(theta, 0.0);
  ZS_CHECK_LT(theta, theta_max_);
  double mgf = 0.0;
  for (size_t i = 0; i < rates_.size(); ++i) {
    mgf += probabilities_[i] * sizes_->Mgf(theta / rates_[i]);
  }
  return std::log(mgf);
}

}  // namespace zonestream::core
