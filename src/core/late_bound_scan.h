// Warm-started, memoizing evaluator for admission scans of b_late(n, t)
// over ascending multiprogramming levels n (§3.1.7, §5).
//
// The admission-limit searches in admission.cc evaluate the Chernoff bound
// for n = 1, 2, ... until the tolerance breaks. Three observations make
// that scan much cheaper than n independent cold minimizations:
//   1. θ*(n) drifts slowly with n, so θ*(n−1) warm-starts the n-th
//      minimization with a narrow bracket (ChernoffOptions::theta_hint).
//   2. SEEK(n) is recomputed by every exponent evaluation of the n-th
//      minimization but only depends on n — memoize it.
//   3. The rotational+transfer log-MGF component is n-independent, so any
//      θ the minimizer revisits across scan steps (bracket probes at the
//      previous θ*) is served from a per-θ memo. This matters most for
//      transfer models with expensive log-MGFs (zone mixtures).
// Warm and cold scans minimize the same convex exponent to the same
// tolerance, so their bounds agree to ~1e-12 (see late_bound_scan_test).
#ifndef ZONESTREAM_CORE_LATE_BOUND_SCAN_H_
#define ZONESTREAM_CORE_LATE_BOUND_SCAN_H_

#include <array>
#include <cstdint>
#include <vector>

#include "core/chernoff.h"
#include "core/service_time_model.h"

namespace zonestream::core {

// One scan's worth of evaluation state. Not thread-safe; scans are cheap
// to construct, so use one per thread (they are pure functions of
// (model, t), which keeps parallel admission builds deterministic).
class LateBoundScan {
 public:
  // The scan borrows `model`; the caller keeps it alive. `warm_start`
  // false disables the θ-hint (every step minimizes cold) — the memoized
  // values are exact either way, so this exists for validation and
  // benchmarking only.
  LateBoundScan(const ServiceTimeModel* model, double t,
                bool warm_start = true);

  // b_late(n, t). Intended to be called with ascending n (hints then carry
  // from n−1 to n), but correct for any order.
  ChernoffResult LateBound(int n);

  const ServiceTimeModel& model() const { return *model_; }
  double round_length() const { return t_; }

 private:
  // Direct-mapped per-θ memo for the n-independent log-MGF component. The
  // minimizer revisits exact θ bit patterns only a few times per scan step
  // (the warm-start probes at the previous θ*), so the cache must cost
  // almost nothing on a miss: a fixed array with overwrite-on-collision —
  // no allocation, no rehash — rather than a node-based map whose
  // per-insert allocation would eat the savings.
  struct ThetaEntry {
    uint64_t key;  // θ bit pattern; kEmptyThetaKey (a NaN) = unused slot
    double value;  // PerRequestLogMgf(θ)
  };
  static constexpr size_t kThetaCacheSize = 256;  // power of two

  double CachedSeekBound(int n);
  double CachedPerRequestLogMgf(double theta);

  const ServiceTimeModel* model_;
  double t_;
  bool warm_start_;
  double theta_hint_ = 0.0;         // θ* of the previous scan step
  std::vector<double> seek_cache_;  // SEEK(n), NaN = not yet computed
  std::array<ThetaEntry, kThetaCacheSize> per_theta_;
};

}  // namespace zonestream::core

#endif  // ZONESTREAM_CORE_LATE_BOUND_SCAN_H_
