#include "core/multiclass.h"

#include <cmath>
#include <limits>

#include "common/check.h"
#include "core/glitch_model.h"
#include "sched/oyang_bound.h"

namespace zonestream::core {

MultiClassServiceModel::MultiClassServiceModel(
    const disk::SeekTimeModel& seek, int cylinders, double rotation_time_s,
    std::vector<StreamClass> classes,
    std::vector<GammaTransferModel> transfers)
    : seek_(seek),
      cylinders_(cylinders),
      rotation_time_s_(rotation_time_s),
      classes_(std::move(classes)),
      transfers_(std::move(transfers)) {}

common::StatusOr<MultiClassServiceModel> MultiClassServiceModel::Create(
    const disk::DiskGeometry& geometry, const disk::SeekTimeModel& seek,
    std::vector<StreamClass> classes) {
  if (classes.empty()) {
    return common::Status::InvalidArgument("need at least one stream class");
  }
  std::vector<GammaTransferModel> transfers;
  transfers.reserve(classes.size());
  for (const StreamClass& stream_class : classes) {
    auto transfer = GammaTransferModel::ForMultiZone(
        geometry, stream_class.mean_size_bytes,
        stream_class.variance_size_bytes2);
    if (!transfer.ok()) {
      return common::Status::InvalidArgument(
          "class '" + stream_class.name +
          "': " + transfer.status().message());
    }
    transfers.push_back(*std::move(transfer));
  }
  return MultiClassServiceModel(seek, geometry.cylinders(),
                                geometry.rotation_time(), std::move(classes),
                                std::move(transfers));
}

const StreamClass& MultiClassServiceModel::stream_class(int c) const {
  ZS_CHECK_GE(c, 0);
  ZS_CHECK_LT(c, num_classes());
  return classes_[c];
}

int MultiClassServiceModel::TotalStreams(const ClassCounts& counts) {
  int total = 0;
  for (int count : counts) {
    ZS_CHECK_GE(count, 0);
    total += count;
  }
  return total;
}

double MultiClassServiceModel::SeekBound(const ClassCounts& counts) const {
  return sched::OyangSeekBound(seek_, cylinders_, TotalStreams(counts));
}

double MultiClassServiceModel::RotationLogMgf(double theta) const {
  const double x = theta * rotation_time_s_;
  if (x == 0.0) return 0.0;
  if (x < 1e-4) {
    return std::log1p(x / 2.0 + x * x / 6.0 + x * x * x / 24.0);
  }
  return x + std::log1p(-std::exp(-x)) - std::log(x);
}

double MultiClassServiceModel::LogMgfFractional(
    const std::vector<double>& counts, double total, double theta) const {
  ZS_CHECK_LE(counts.size(), transfers_.size());
  const double seek_bound =
      sched::OyangSeekBound(seek_, cylinders_,
                            static_cast<int>(std::ceil(total - 1e-12)));
  double log_mgf = theta * seek_bound + total * RotationLogMgf(theta);
  for (size_t c = 0; c < counts.size(); ++c) {
    if (counts[c] > 0.0) log_mgf += counts[c] * transfers_[c].LogMgf(theta);
  }
  return log_mgf;
}

double MultiClassServiceModel::LogMgf(const ClassCounts& counts,
                                      double theta) const {
  ZS_CHECK_LE(counts.size(), transfers_.size());
  std::vector<double> fractional(counts.begin(), counts.end());
  return LogMgfFractional(fractional, TotalStreams(counts), theta);
}

double MultiClassServiceModel::ThetaMax(const ClassCounts& counts) const {
  ZS_CHECK_LE(counts.size(), transfers_.size());
  double theta_max = std::numeric_limits<double>::infinity();
  for (size_t c = 0; c < counts.size(); ++c) {
    if (counts[c] > 0) {
      theta_max = std::fmin(theta_max, transfers_[c].theta_max());
    }
  }
  return theta_max;
}

ChernoffResult MultiClassServiceModel::LateBoundFractional(
    const std::vector<double>& counts, double total, double t) const {
  if (total <= 0.0) {
    ChernoffResult result;
    result.bound = 0.0;
    result.converged = true;
    return result;
  }
  double theta_max = std::numeric_limits<double>::infinity();
  for (size_t c = 0; c < counts.size(); ++c) {
    if (counts[c] > 0.0) {
      theta_max = std::fmin(theta_max, transfers_[c].theta_max());
    }
  }
  const auto log_mgf = [this, &counts, total](double theta) {
    return LogMgfFractional(counts, total, theta);
  };
  return ChernoffTailBound(log_mgf, theta_max, t);
}

ChernoffResult MultiClassServiceModel::LateBound(const ClassCounts& counts,
                                                 double t) const {
  ZS_CHECK_GT(t, 0.0);
  std::vector<double> fractional(counts.begin(), counts.end());
  return LateBoundFractional(fractional, TotalStreams(counts), t);
}

ServiceTimeMoments MultiClassServiceModel::Moments(
    const ClassCounts& counts) const {
  ZS_CHECK_LE(counts.size(), transfers_.size());
  const double total = TotalStreams(counts);
  ServiceTimeMoments moments;
  moments.mean_s = SeekBound(counts) + total * rotation_time_s_ / 2.0;
  moments.variance_s2 =
      total * rotation_time_s_ * rotation_time_s_ / 12.0;
  for (size_t c = 0; c < counts.size(); ++c) {
    moments.mean_s += counts[c] * transfers_[c].mean();
    moments.variance_s2 += counts[c] * transfers_[c].variance();
  }
  return moments;
}

double MultiClassServiceModel::GlitchBoundPerRound(const ClassCounts& counts,
                                                   double t) const {
  const int total = TotalStreams(counts);
  ZS_CHECK_GT(total, 0);
  // Generalized eq. 3.3.2: average the late bound over k-subsets,
  // approximating the random k-subset by proportional class scaling
  // (exact in expectation over the uniformly random subset).
  std::vector<double> fractional(counts.size());
  double sum = 0.0;
  for (int k = 1; k <= total; ++k) {
    const double scale = static_cast<double>(k) / total;
    for (size_t c = 0; c < counts.size(); ++c) {
      fractional[c] = counts[c] * scale;
    }
    sum += LateBoundFractional(fractional, k, t).bound;
  }
  return std::fmin(sum / total, 1.0);
}

double MultiClassServiceModel::ErrorBound(const ClassCounts& counts, double t,
                                          int m, int g) const {
  return BinomialTailChernoff(m, GlitchBoundPerRound(counts, t), g);
}

bool MultiClassServiceModel::Admissible(const ClassCounts& counts, double t,
                                        double delta) const {
  ZS_CHECK_GT(delta, 0.0);
  if (TotalStreams(counts) == 0) return true;
  return LateBound(counts, t).bound <= delta;
}

int MultiClassServiceModel::MaxAdditionalStreams(const ClassCounts& base,
                                                 int class_index, double t,
                                                 double delta, int cap) const {
  ZS_CHECK_GE(class_index, 0);
  ZS_CHECK_LT(class_index, num_classes());
  ClassCounts counts = base;
  counts.resize(transfers_.size(), 0);
  int added = 0;
  for (int i = 0; i < cap; ++i) {
    ++counts[class_index];
    if (!Admissible(counts, t, delta)) break;
    ++added;
  }
  return added;
}

std::vector<std::pair<int, int>> MultiClassServiceModel::CapacityFrontier(
    double t, double delta) const {
  ZS_CHECK_EQ(num_classes(), 2);
  std::vector<std::pair<int, int>> frontier;
  const int max_class0 = MaxAdditionalStreams({0, 0}, 0, t, delta);
  for (int n0 = 0; n0 <= max_class0; ++n0) {
    frontier.emplace_back(n0, MaxAdditionalStreams({n0, 0}, 1, t, delta));
  }
  return frontier;
}

}  // namespace zonestream::core
