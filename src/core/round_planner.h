// Round-length planning (§2.3: the round length is "a configuration
// parameter of our architecture; changing it would require all data to be
// re-fragmented" — so it must be chosen well up front).
//
// Longer rounds amortize seek and rotational overhead (more streams per
// disk) but increase startup latency and client buffer demand linearly.
// This module searches the round length for a target capacity and reports
// the full trade-off curve, using the fact that for a fixed stream
// bandwidth the fragment moments scale with t (fragments hold one round
// of display time).
#ifndef ZONESTREAM_CORE_ROUND_PLANNER_H_
#define ZONESTREAM_CORE_ROUND_PLANNER_H_

#include <vector>

#include "common/status.h"
#include "disk/disk_geometry.h"
#include "disk/seek_model.h"

namespace zonestream::core {

// Stream description for planning: a display bandwidth and its relative
// variability (per-round fragment CV stays constant as t changes).
struct PlannedStream {
  double bandwidth_bps = 0.0;        // bytes/second of display
  double coefficient_of_variation = 0.5;  // sd(fragment)/mean(fragment)
};

// QoS contract used by the planner (per-stream glitch-rate criterion,
// eq. 3.3.6, scaled to the session length).
struct PlannerQos {
  double session_s = 1800.0;     // stream lifetime
  double glitch_rate = 0.01;     // tolerated fraction of glitchy rounds
  double epsilon = 0.01;         // confidence threshold for p_error
};

// One evaluated operating point.
struct RoundPlan {
  double round_length_s = 0.0;
  int streams_per_disk = 0;
  double fragment_mean_bytes = 0.0;
  double startup_latency_s = 0.0;      // one round
  double client_buffer_bytes = 0.0;    // two 99.9-percentile fragments
};

// Evaluates a single round length. streams_per_disk is 0 when even one
// stream cannot be sustained.
common::StatusOr<RoundPlan> EvaluateRoundLength(
    const disk::DiskGeometry& geometry, const disk::SeekTimeModel& seek,
    const PlannedStream& stream, const PlannerQos& qos, double round_length_s);

// Smallest round length (within [t_lo, t_hi], to `tolerance_s`) whose
// per-disk capacity reaches `target_streams_per_disk`. Capacity is
// non-decreasing in t, so a bisection applies. Returns OutOfRange if even
// t_hi cannot reach the target.
common::StatusOr<RoundPlan> MinimalRoundLengthForCapacity(
    const disk::DiskGeometry& geometry, const disk::SeekTimeModel& seek,
    const PlannedStream& stream, const PlannerQos& qos,
    int target_streams_per_disk, double t_lo = 0.1, double t_hi = 16.0,
    double tolerance_s = 0.01);

// Full sweep over a list of round lengths (for tables and plots).
common::StatusOr<std::vector<RoundPlan>> SweepRoundLengths(
    const disk::DiskGeometry& geometry, const disk::SeekTimeModel& seek,
    const PlannedStream& stream, const PlannerQos& qos,
    const std::vector<double>& round_lengths_s);

}  // namespace zonestream::core

#endif  // ZONESTREAM_CORE_ROUND_PLANNER_H_
