#include "core/admission.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/check.h"
#include "core/late_bound_scan.h"

namespace zonestream::core {

namespace {

// Per-n quality values for one admission scan: values[n-1] is b_late(n, t)
// for the per-round criterion or p_error(n, t, m, g) for the glitch-rate
// criterion. Both are nondecreasing in n. The scan stops after the first n
// whose value exceeds `cutoff` (or at n_cap), so the returned prefix is
// exactly what every tolerance <= cutoff needs.
std::vector<double> ScanQualityValues(LateBoundScan* scan,
                                      AdmissionCriterion criterion, int m,
                                      int g, double cutoff, int n_cap) {
  std::vector<double> values;
  double late_bound_sum = 0.0;
  for (int n = 1; n <= n_cap; ++n) {
    const double b_late = scan->LateBound(n).bound;
    double value;
    if (criterion == AdmissionCriterion::kLateProbability) {
      value = b_late;
    } else {
      // Reuse the running sum of b_late(k, t) across N instead of
      // recomputing the O(N) inner loop for every candidate (the scan is
      // then O(n_max) Chernoff minimizations in total).
      late_bound_sum += b_late;
      const double b_glitch =
          std::fmin(late_bound_sum / static_cast<double>(n), 1.0);
      value = GlitchModel::ErrorBoundForGlitchProbability(b_glitch, m, g);
    }
    values.push_back(value);
    if (value > cutoff) break;
  }
  return values;
}

// Largest admissible n for `tolerance` given the scan's quality values:
// the count of leading values <= tolerance (the values are nondecreasing,
// but a first-violation search preserves the early-exit semantics even
// under sub-ulp wobble in the minimizer).
int LimitFromValues(const std::vector<double>& values, double tolerance) {
  int n_max = 0;
  for (double value : values) {
    if (value > tolerance) break;
    ++n_max;
  }
  return n_max;
}

}  // namespace

const char* AdmissionQueryErrorName(AdmissionQueryError error) {
  switch (error) {
    case AdmissionQueryError::kOk:
      return "ok";
    case AdmissionQueryError::kInvalidRoundLength:
      return "invalid_round_length";
    case AdmissionQueryError::kInvalidTolerance:
      return "invalid_tolerance";
    case AdmissionQueryError::kVacuousTolerance:
      return "vacuous_tolerance";
  }
  return "unknown";
}

AdmissionQueryError ValidateAdmissionQuery(double t, double delta) {
  // NaN comparisons are all false, so NaN t / delta fall through to the
  // negated checks below — classify explicitly first.
  if (!(t > 0.0) || !std::isfinite(t)) {
    return AdmissionQueryError::kInvalidRoundLength;
  }
  if (std::isnan(delta) || delta <= 0.0) {
    return AdmissionQueryError::kInvalidTolerance;
  }
  if (delta >= 1.0) return AdmissionQueryError::kVacuousTolerance;
  return AdmissionQueryError::kOk;
}

MaxStreamsResult MaxStreamsByLateProbabilityChecked(
    const ServiceTimeModel& model, double t, double delta, int n_cap) {
  ZS_CHECK_GT(n_cap, 0);
  MaxStreamsResult result;
  result.error = ValidateAdmissionQuery(t, delta);
  if (result.error != AdmissionQueryError::kOk) return result;
  LateBoundScan scan(&model, t);
  const std::vector<double> values = ScanQualityValues(
      &scan, AdmissionCriterion::kLateProbability, 0, 0, delta, n_cap);
  result.n_max = LimitFromValues(values, delta);
  return result;
}

int MaxStreamsByLateProbability(const ServiceTimeModel& model, double t,
                                double delta, int n_cap) {
  return MaxStreamsByLateProbabilityChecked(model, t, delta, n_cap).n_max;
}

int MaxStreamsByGlitchRate(const ServiceTimeModel& model, double t, int m,
                           int g, double epsilon, int n_cap) {
  ZS_CHECK_GT(m, 0);
  ZS_CHECK_GE(g, 0);
  ZS_CHECK_GT(n_cap, 0);
  if (ValidateAdmissionQuery(t, epsilon) != AdmissionQueryError::kOk) {
    return 0;
  }
  LateBoundScan scan(&model, t);
  const std::vector<double> values = ScanQualityValues(
      &scan, AdmissionCriterion::kGlitchRate, m, g, epsilon, n_cap);
  return LimitFromValues(values, epsilon);
}

int MaxStreamsByLateProbabilityDegraded(const ServiceTimeModel& model,
                                        double t, double delta,
                                        int repair_requests, int n_cap) {
  ZS_CHECK_GE(repair_requests, 0);
  ZS_CHECK_GT(n_cap, 0);
  if (ValidateAdmissionQuery(t, delta) != AdmissionQueryError::kOk) {
    return 0;
  }
  // A survivor's worst round carries 2N + R requests (own phase, the
  // failed disk's phase, and the repair throttle share). b_late is
  // monotone in the request count, so scan N ascending and stop at the
  // first violation. LateBoundScan is warm-start-correct for any query
  // order, including this stride-2 sequence.
  LateBoundScan scan(&model, t);
  int n_max = 0;
  for (int n = 1; n <= n_cap; ++n) {
    const double bound = scan.LateBound(2 * n + repair_requests).bound;
    if (bound > delta) break;
    n_max = n;
  }
  return n_max;
}

int MaxStreamsByCombinedCriteria(const ServiceTimeModel& model, double t,
                                 double delta, int m, int g, double epsilon,
                                 int n_cap) {
  return std::min(MaxStreamsByLateProbability(model, t, delta, n_cap),
                  MaxStreamsByGlitchRate(model, t, m, g, epsilon, n_cap));
}

common::StatusOr<AdmissionTable> AdmissionTable::Build(
    const ServiceTimeModel& model, AdmissionCriterion criterion, double t,
    std::vector<double> tolerances, int m, int g,
    const AdmissionBuildOptions& options) {
  if (t <= 0.0) {
    return common::Status::InvalidArgument("round length must be positive");
  }
  if (tolerances.empty()) {
    return common::Status::InvalidArgument("tolerances must be non-empty");
  }
  if (!std::is_sorted(tolerances.begin(), tolerances.end())) {
    return common::Status::InvalidArgument("tolerances must be ascending");
  }
  if (tolerances.front() <= 0.0 || tolerances.back() >= 1.0) {
    return common::Status::InvalidArgument("tolerances must lie in (0, 1)");
  }
  if (criterion == AdmissionCriterion::kGlitchRate && (m <= 0 || g < 0)) {
    return common::Status::InvalidArgument(
        "glitch-rate criterion requires m > 0 and g >= 0");
  }
  if (options.n_cap <= 0) {
    return common::Status::InvalidArgument("n_cap must be positive");
  }

  // The scans below charge the configured seek term; equidistant mode is
  // a field copy, so the extra model costs nothing in the default case.
  const ServiceTimeModel effective = model.WithSeekBound(options.seek_bound);

  std::vector<AdmissionTableRow> rows(tolerances.size());
  if (options.warm_start) {
    // Fast path: the per-n quality values are tolerance-independent, so
    // ONE warm-started serial scan up to the loosest tolerance's break
    // point serves every row. The per-tolerance derivation is then cheap
    // and embarrassingly parallel — and bit-identical at every thread
    // count, because each row is a pure function of the shared values.
    LateBoundScan scan(&effective, t);
    const std::vector<double> values =
        ScanQualityValues(&scan, criterion, m, g, tolerances.back(),
                          options.n_cap);
    common::ParallelFor(
        static_cast<int64_t>(tolerances.size()),
        [&rows, &tolerances, &values](int64_t i) {
          rows[i].tolerance = tolerances[i];
          rows[i].n_max = LimitFromValues(values, tolerances[i]);
        },
        options.pool);
  } else {
    // Validation path: the pre-optimization algorithm — an independent
    // cold-started scan per tolerance — parallelized across tolerances.
    common::ParallelFor(
        static_cast<int64_t>(tolerances.size()),
        [&rows, &tolerances, &effective, criterion, t, m, g,
         &options](int64_t i) {
          LateBoundScan scan(&effective, t, /*warm_start=*/false);
          const std::vector<double> values = ScanQualityValues(
              &scan, criterion, m, g, tolerances[i], options.n_cap);
          rows[i].tolerance = tolerances[i];
          rows[i].n_max = LimitFromValues(values, tolerances[i]);
        },
        options.pool);
  }
  return AdmissionTable(criterion, t, std::move(rows));
}

AdmissionTableSnapshot::AdmissionTableSnapshot(const AdmissionTable& table)
    : criterion_(table.criterion()), round_length_s_(table.round_length()) {
  tolerances_.reserve(table.rows().size());
  limits_.reserve(table.rows().size());
  for (const AdmissionTableRow& row : table.rows()) {
    tolerances_.push_back(row.tolerance);
    limits_.push_back(row.n_max);
  }
}

int AdmissionTable::MaxStreams(double tolerance) const {
  // A NaN request satisfies no row's contract. Without this guard the
  // upper_bound comparator (all comparisons false for NaN) would land on
  // end() and hand back the LOOSEST row's limit — while the snapshot's
  // manual binary search returns 0. Both paths return 0; the boundary
  // tests pin the agreement.
  if (std::isnan(tolerance)) return 0;
  // Loosest tabulated row that does not exceed the requested tolerance:
  // rows are ascending in tolerance (and, by monotonicity, in n_max), so
  // take the last row with row.tolerance <= tolerance — the `>=`
  // contract (equality selects the row, including the smallest row).
  const auto first_above = std::upper_bound(
      rows_.begin(), rows_.end(), tolerance,
      [](double requested, const AdmissionTableRow& row) {
        return requested < row.tolerance;
      });
  return first_above == rows_.begin() ? 0 : std::prev(first_above)->n_max;
}

std::string AdmissionTable::Serialize() const {
  std::string out = "zonestream-admission-table v1\n";
  out += "criterion ";
  out += (criterion_ == AdmissionCriterion::kLateProbability)
             ? "late_probability"
             : "glitch_rate";
  out += "\n";
  char buffer[96];
  std::snprintf(buffer, sizeof(buffer), "round_length %.17g\n",
                round_length_s_);
  out += buffer;
  std::snprintf(buffer, sizeof(buffer), "rows %zu\n", rows_.size());
  out += buffer;
  for (const AdmissionTableRow& row : rows_) {
    std::snprintf(buffer, sizeof(buffer), "%.17g %d\n", row.tolerance,
                  row.n_max);
    out += buffer;
  }
  return out;
}

common::StatusOr<AdmissionTable> AdmissionTable::Deserialize(
    const std::string& content) {
  std::istringstream stream(content);
  std::string header;
  std::string version;
  if (!(stream >> header >> version) ||
      header != "zonestream-admission-table" || version != "v1") {
    return common::Status::InvalidArgument(
        "not a v1 zonestream admission table");
  }
  std::string key;
  std::string criterion_name;
  if (!(stream >> key >> criterion_name) || key != "criterion") {
    return common::Status::InvalidArgument("missing criterion line");
  }
  AdmissionCriterion criterion;
  if (criterion_name == "late_probability") {
    criterion = AdmissionCriterion::kLateProbability;
  } else if (criterion_name == "glitch_rate") {
    criterion = AdmissionCriterion::kGlitchRate;
  } else {
    return common::Status::InvalidArgument("unknown criterion: '" +
                                           criterion_name + "'");
  }
  double round_length = 0.0;
  if (!(stream >> key >> round_length) || key != "round_length" ||
      !std::isfinite(round_length) || round_length <= 0.0) {
    return common::Status::InvalidArgument("missing/invalid round_length");
  }
  size_t row_count = 0;
  if (!(stream >> key >> row_count) || key != "rows" || row_count == 0 ||
      row_count > 100000) {
    return common::Status::InvalidArgument("missing/invalid row count");
  }
  std::vector<AdmissionTableRow> rows;
  rows.reserve(row_count);
  double previous_tolerance = 0.0;
  for (size_t i = 0; i < row_count; ++i) {
    AdmissionTableRow row;
    if (!(stream >> row.tolerance >> row.n_max)) {
      return common::Status::InvalidArgument(
          "truncated table: expected " + std::to_string(row_count) +
          " rows, got " + std::to_string(i));
    }
    // The isfinite check is load-bearing: a NaN tolerance compares false
    // against both bounds below and would otherwise slip through into a
    // table whose binary search misbehaves.
    if (!std::isfinite(row.tolerance) || row.tolerance <= previous_tolerance ||
        row.tolerance >= 1.0 || row.n_max < 0) {
      return common::Status::InvalidArgument(
          "invalid row " + std::to_string(i) +
          " (tolerances must be finite, ascending in (0,1), n_max >= 0)");
    }
    previous_tolerance = row.tolerance;
    rows.push_back(row);
  }
  return AdmissionTable(criterion, round_length, std::move(rows));
}

AdmissionController::AdmissionController(const AdmissionTable& table,
                                         double tolerance)
    : n_max_(table.MaxStreams(tolerance)) {}

AdmissionController::AdmissionController(int n_max) : n_max_(n_max) {
  ZS_CHECK_GE(n_max, 0);
}

bool AdmissionController::TryAdmit() {
  if (active_ >= n_max_) return false;
  ++active_;
  return true;
}

void AdmissionController::Release() {
  ZS_CHECK_GT(active_, 0);
  --active_;
}

}  // namespace zonestream::core
