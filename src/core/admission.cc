#include "core/admission.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/check.h"

namespace zonestream::core {

int MaxStreamsByLateProbability(const ServiceTimeModel& model, double t,
                                double delta, int n_cap) {
  ZS_CHECK_GT(t, 0.0);
  ZS_CHECK_GT(delta, 0.0);
  ZS_CHECK_GT(n_cap, 0);
  int n_max = 0;
  for (int n = 1; n <= n_cap; ++n) {
    if (model.LateBound(n, t).bound > delta) break;
    n_max = n;
  }
  return n_max;
}

int MaxStreamsByGlitchRate(const ServiceTimeModel& model, double t, int m,
                           int g, double epsilon, int n_cap) {
  ZS_CHECK_GT(t, 0.0);
  ZS_CHECK_GT(m, 0);
  ZS_CHECK_GE(g, 0);
  ZS_CHECK_GT(epsilon, 0.0);
  ZS_CHECK_GT(n_cap, 0);
  const GlitchModel glitch_model(&model);
  // Reuse the running sum of b_late(k, t) across N instead of recomputing
  // the O(N) inner loop for every candidate (the scan is then O(n_max)
  // Chernoff minimizations in total).
  double late_bound_sum = 0.0;
  int n_max = 0;
  for (int n = 1; n <= n_cap; ++n) {
    late_bound_sum += model.LateBound(n, t).bound;
    const double b_glitch =
        std::fmin(late_bound_sum / static_cast<double>(n), 1.0);
    const double p_error =
        GlitchModel::ErrorBoundForGlitchProbability(b_glitch, m, g);
    if (p_error > epsilon) break;
    n_max = n;
  }
  return n_max;
}

int MaxStreamsByCombinedCriteria(const ServiceTimeModel& model, double t,
                                 double delta, int m, int g, double epsilon,
                                 int n_cap) {
  return std::min(MaxStreamsByLateProbability(model, t, delta, n_cap),
                  MaxStreamsByGlitchRate(model, t, m, g, epsilon, n_cap));
}

common::StatusOr<AdmissionTable> AdmissionTable::Build(
    const ServiceTimeModel& model, AdmissionCriterion criterion, double t,
    std::vector<double> tolerances, int m, int g) {
  if (t <= 0.0) {
    return common::Status::InvalidArgument("round length must be positive");
  }
  if (tolerances.empty()) {
    return common::Status::InvalidArgument("tolerances must be non-empty");
  }
  if (!std::is_sorted(tolerances.begin(), tolerances.end())) {
    return common::Status::InvalidArgument("tolerances must be ascending");
  }
  if (tolerances.front() <= 0.0 || tolerances.back() >= 1.0) {
    return common::Status::InvalidArgument("tolerances must lie in (0, 1)");
  }
  if (criterion == AdmissionCriterion::kGlitchRate && (m <= 0 || g < 0)) {
    return common::Status::InvalidArgument(
        "glitch-rate criterion requires m > 0 and g >= 0");
  }

  std::vector<AdmissionTableRow> rows;
  rows.reserve(tolerances.size());
  for (double tolerance : tolerances) {
    AdmissionTableRow row;
    row.tolerance = tolerance;
    row.n_max = (criterion == AdmissionCriterion::kLateProbability)
                    ? MaxStreamsByLateProbability(model, t, tolerance)
                    : MaxStreamsByGlitchRate(model, t, m, g, tolerance);
    rows.push_back(row);
  }
  return AdmissionTable(criterion, t, std::move(rows));
}

int AdmissionTable::MaxStreams(double tolerance) const {
  // Strictest tabulated row that does not exceed the requested tolerance:
  // rows are ascending in tolerance (and, by monotonicity, in n_max), so
  // take the last row with row.tolerance <= tolerance.
  int n_max = 0;
  for (const AdmissionTableRow& row : rows_) {
    if (row.tolerance > tolerance) break;
    n_max = row.n_max;
  }
  return n_max;
}

std::string AdmissionTable::Serialize() const {
  std::string out = "zonestream-admission-table v1\n";
  out += "criterion ";
  out += (criterion_ == AdmissionCriterion::kLateProbability)
             ? "late_probability"
             : "glitch_rate";
  out += "\n";
  char buffer[96];
  std::snprintf(buffer, sizeof(buffer), "round_length %.17g\n",
                round_length_s_);
  out += buffer;
  std::snprintf(buffer, sizeof(buffer), "rows %zu\n", rows_.size());
  out += buffer;
  for (const AdmissionTableRow& row : rows_) {
    std::snprintf(buffer, sizeof(buffer), "%.17g %d\n", row.tolerance,
                  row.n_max);
    out += buffer;
  }
  return out;
}

common::StatusOr<AdmissionTable> AdmissionTable::Deserialize(
    const std::string& content) {
  std::istringstream stream(content);
  std::string header;
  std::string version;
  if (!(stream >> header >> version) ||
      header != "zonestream-admission-table" || version != "v1") {
    return common::Status::InvalidArgument(
        "not a v1 zonestream admission table");
  }
  std::string key;
  std::string criterion_name;
  if (!(stream >> key >> criterion_name) || key != "criterion") {
    return common::Status::InvalidArgument("missing criterion line");
  }
  AdmissionCriterion criterion;
  if (criterion_name == "late_probability") {
    criterion = AdmissionCriterion::kLateProbability;
  } else if (criterion_name == "glitch_rate") {
    criterion = AdmissionCriterion::kGlitchRate;
  } else {
    return common::Status::InvalidArgument("unknown criterion: '" +
                                           criterion_name + "'");
  }
  double round_length = 0.0;
  if (!(stream >> key >> round_length) || key != "round_length" ||
      round_length <= 0.0) {
    return common::Status::InvalidArgument("missing/invalid round_length");
  }
  size_t row_count = 0;
  if (!(stream >> key >> row_count) || key != "rows" || row_count == 0 ||
      row_count > 100000) {
    return common::Status::InvalidArgument("missing/invalid row count");
  }
  std::vector<AdmissionTableRow> rows;
  rows.reserve(row_count);
  double previous_tolerance = 0.0;
  for (size_t i = 0; i < row_count; ++i) {
    AdmissionTableRow row;
    if (!(stream >> row.tolerance >> row.n_max)) {
      return common::Status::InvalidArgument(
          "truncated table: expected " + std::to_string(row_count) +
          " rows, got " + std::to_string(i));
    }
    if (row.tolerance <= previous_tolerance || row.tolerance >= 1.0 ||
        row.n_max < 0) {
      return common::Status::InvalidArgument(
          "invalid row " + std::to_string(i) +
          " (tolerances must be ascending in (0,1), n_max >= 0)");
    }
    previous_tolerance = row.tolerance;
    rows.push_back(row);
  }
  return AdmissionTable(criterion, round_length, std::move(rows));
}

AdmissionController::AdmissionController(const AdmissionTable& table,
                                         double tolerance)
    : n_max_(table.MaxStreams(tolerance)) {}

AdmissionController::AdmissionController(int n_max) : n_max_(n_max) {
  ZS_CHECK_GE(n_max, 0);
}

bool AdmissionController::TryAdmit() {
  if (active_ >= n_max_) return false;
  ++active_;
  return true;
}

void AdmissionController::Release() {
  ZS_CHECK_GT(active_, 0);
  --active_;
}

}  // namespace zonestream::core
