#include "core/round_planner.h"

#include <cmath>

#include "common/check.h"
#include "core/admission.h"
#include "core/service_time_model.h"
#include "workload/size_distribution.h"

namespace zonestream::core {
namespace {

common::Status ValidateInputs(const PlannedStream& stream,
                              const PlannerQos& qos) {
  if (stream.bandwidth_bps <= 0.0) {
    return common::Status::InvalidArgument("bandwidth must be positive");
  }
  if (stream.coefficient_of_variation <= 0.0) {
    return common::Status::InvalidArgument("CV must be positive");
  }
  if (qos.session_s <= 0.0 || qos.glitch_rate <= 0.0 ||
      qos.glitch_rate >= 1.0 || qos.epsilon <= 0.0 || qos.epsilon >= 1.0) {
    return common::Status::InvalidArgument("invalid QoS contract");
  }
  return common::Status::Ok();
}

}  // namespace

common::StatusOr<RoundPlan> EvaluateRoundLength(
    const disk::DiskGeometry& geometry, const disk::SeekTimeModel& seek,
    const PlannedStream& stream, const PlannerQos& qos,
    double round_length_s) {
  ZS_RETURN_IF_ERROR(ValidateInputs(stream, qos));
  if (round_length_s <= 0.0) {
    return common::Status::InvalidArgument("round length must be positive");
  }
  // Fragments hold one round of display: moments scale with t.
  const double mean = stream.bandwidth_bps * round_length_s;
  const double sd = stream.coefficient_of_variation * mean;
  auto model =
      ServiceTimeModel::ForMultiZoneDisk(geometry, seek, mean, sd * sd);
  if (!model.ok()) return model.status();

  const int rounds = static_cast<int>(
      std::ceil(qos.session_s / round_length_s - 1e-12));
  const int tolerated = std::max(
      1, static_cast<int>(std::floor(qos.glitch_rate * rounds)));

  RoundPlan plan;
  plan.round_length_s = round_length_s;
  plan.fragment_mean_bytes = mean;
  plan.streams_per_disk = MaxStreamsByGlitchRate(*model, round_length_s,
                                                 rounds, tolerated,
                                                 qos.epsilon);
  plan.startup_latency_s = round_length_s;
  const auto sizes = workload::GammaSizeDistribution::Create(mean, sd * sd);
  ZS_CHECK(sizes.ok());
  plan.client_buffer_bytes = 2.0 * sizes->Quantile(0.999);
  return plan;
}

common::StatusOr<RoundPlan> MinimalRoundLengthForCapacity(
    const disk::DiskGeometry& geometry, const disk::SeekTimeModel& seek,
    const PlannedStream& stream, const PlannerQos& qos,
    int target_streams_per_disk, double t_lo, double t_hi,
    double tolerance_s) {
  ZS_RETURN_IF_ERROR(ValidateInputs(stream, qos));
  if (target_streams_per_disk <= 0) {
    return common::Status::InvalidArgument("target must be positive");
  }
  if (!(t_lo > 0.0 && t_lo < t_hi)) {
    return common::Status::InvalidArgument("need 0 < t_lo < t_hi");
  }
  const auto capacity_at = [&](double t) -> int {
    auto plan = EvaluateRoundLength(geometry, seek, stream, qos, t);
    ZS_CHECK(plan.ok());
    return plan->streams_per_disk;
  };
  if (capacity_at(t_hi) < target_streams_per_disk) {
    return common::Status::OutOfRange(
        "target capacity unreachable within the round-length search range");
  }
  if (capacity_at(t_lo) >= target_streams_per_disk) {
    return EvaluateRoundLength(geometry, seek, stream, qos, t_lo);
  }
  // Bisection: capacity is non-decreasing in t (longer rounds amortize
  // the per-request overhead better).
  double lo = t_lo;
  double hi = t_hi;
  while (hi - lo > tolerance_s) {
    const double mid = 0.5 * (lo + hi);
    if (capacity_at(mid) >= target_streams_per_disk) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return EvaluateRoundLength(geometry, seek, stream, qos, hi);
}

common::StatusOr<std::vector<RoundPlan>> SweepRoundLengths(
    const disk::DiskGeometry& geometry, const disk::SeekTimeModel& seek,
    const PlannedStream& stream, const PlannerQos& qos,
    const std::vector<double>& round_lengths_s) {
  if (round_lengths_s.empty()) {
    return common::Status::InvalidArgument("no round lengths given");
  }
  std::vector<RoundPlan> plans;
  plans.reserve(round_lengths_s.size());
  for (double t : round_lengths_s) {
    auto plan = EvaluateRoundLength(geometry, seek, stream, qos, t);
    if (!plan.ok()) return plan.status();
    plans.push_back(*std::move(plan));
  }
  return plans;
}

}  // namespace zonestream::core
