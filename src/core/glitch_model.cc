#include "core/glitch_model.h"

#include <cmath>

#include "common/check.h"
#include "numeric/special_functions.h"

namespace zonestream::core {
namespace {

// log of the binomial coefficient C(m, k).
double LogBinomialCoefficient(int m, int k) {
  return numeric::LogGamma(m + 1.0) - numeric::LogGamma(k + 1.0) -
         numeric::LogGamma(m - k + 1.0);
}

}  // namespace

double BinomialTailChernoff(int m, double p, int g) {
  ZS_CHECK_GE(m, 0);
  ZS_CHECK_GE(g, 0);
  ZS_CHECK_GE(p, 0.0);
  ZS_CHECK_LE(p, 1.0);
  // m == 0: a zero-round lifetime has X = 0 surely, so P[X >= g] is 1 for
  // g == 0 and 0 for any g > 0 (g <= m is only meaningful for m > 0).
  if (m == 0) return (g == 0) ? 1.0 : 0.0;
  ZS_CHECK_LE(g, m);
  if (p == 0.0) return (g == 0) ? 1.0 : 0.0;
  if (g == 0) return 1.0;  // P[X >= 0] = 1
  const double mm = static_cast<double>(m);
  const double gg = static_cast<double>(g);
  if (gg / mm <= p) return 1.0;  // bound only valid above the mean
  // log[(mp/g)^g ((m - mp)/(m - g))^{m-g}]; the second factor degenerates
  // to 1 when g == m (0^0 in the original form).
  double log_bound = gg * std::log(mm * p / gg);
  if (g < m) {
    log_bound += (mm - gg) * std::log(mm * (1.0 - p) / (mm - gg));
  }
  return std::exp(log_bound);
}

double BinomialTailExact(int m, double p, int g) {
  ZS_CHECK_GE(m, 0);
  ZS_CHECK_GE(g, 0);
  ZS_CHECK_GE(p, 0.0);
  ZS_CHECK_LE(p, 1.0);
  if (m == 0) return (g == 0) ? 1.0 : 0.0;  // X = 0 surely, as above
  ZS_CHECK_LE(g, m);
  if (g == 0) return 1.0;
  if (p == 0.0) return 0.0;
  if (p == 1.0) return 1.0;
  const double log_p = std::log(p);
  const double log_q = std::log1p(-p);
  // Sum from the largest terms down; the summands decay fast above the
  // mean, so accumulate until additional terms are negligible.
  double sum = 0.0;
  for (int k = g; k <= m; ++k) {
    const double log_term =
        LogBinomialCoefficient(m, k) + k * log_p + (m - k) * log_q;
    const double term = std::exp(log_term);
    sum += term;
    if (term < sum * 1e-16 && k > g) break;
  }
  return std::fmin(sum, 1.0);
}

GlitchModel::GlitchModel(const ServiceTimeModel* service_model)
    : service_model_(service_model) {
  ZS_CHECK(service_model != nullptr);
}

double GlitchModel::GlitchBoundPerRound(int n, double t) const {
  ZS_CHECK_GT(n, 0);
  ZS_CHECK_GT(t, 0.0);
  double sum = 0.0;
  for (int k = 1; k <= n; ++k) {
    sum += service_model_->LateBound(k, t).bound;
  }
  return std::fmin(sum / static_cast<double>(n), 1.0);
}

double GlitchModel::ErrorBound(int n, double t, int m, int g) const {
  const double b_glitch = GlitchBoundPerRound(n, t);
  return ErrorBoundForGlitchProbability(b_glitch, m, g);
}

double GlitchModel::ErrorBoundForGlitchProbability(double p_glitch, int m,
                                                   int g) {
  return BinomialTailChernoff(m, p_glitch, g);
}

}  // namespace zonestream::core
