// Mixed continuous + discrete workloads (the §6 outlook, after [NMW97]).
//
// Advanced multimedia applications access continuous streams *and*
// conventional discrete data (HTML, images) on the same disks. This
// module models a round that serves N continuous streams plus discrete
// requests, two ways:
//
//  * guarantee-style: discrete requests are admitted into the SCAN batch
//    as a second stream class, and the Chernoff machinery bounds the
//    probability that the combined round overruns — giving the number of
//    discrete slots per round that can be *guaranteed* alongside the
//    continuous QoS contract;
//  * expectation-style: the leftover time E[max(0, t - T_N)] after the
//    continuous batch, estimated from the service-time moments, yields
//    the best-effort discrete throughput and a batch-queue approximation
//    of the mean discrete response time.
//
// The detailed validation lives in sim::MixedRoundSimulator.
#ifndef ZONESTREAM_CORE_MIXED_WORKLOAD_H_
#define ZONESTREAM_CORE_MIXED_WORKLOAD_H_

#include <memory>

#include "common/status.h"
#include "core/multiclass.h"
#include "disk/disk_geometry.h"
#include "disk/seek_model.h"

namespace zonestream::core {

// Statistics of the discrete-request workload.
struct DiscreteWorkload {
  double mean_size_bytes = 0.0;       // e.g. 40 KB HTML page / image tile
  double variance_size_bytes2 = 0.0;
};

// Expected per-request service time of a discrete request served in
// isolation: mean random seek + half a rotation + mean transfer at the
// capacity-weighted rate. Used by the expectation-style estimates.
double MeanDiscreteServiceTime(const disk::DiskGeometry& geometry,
                               const disk::SeekTimeModel& seek,
                               const DiscreteWorkload& discrete);

// Analytic mixed-workload model for one disk.
class MixedWorkloadModel {
 public:
  static common::StatusOr<MixedWorkloadModel> Create(
      const disk::DiskGeometry& geometry, const disk::SeekTimeModel& seek,
      double continuous_mean_bytes, double continuous_variance_bytes2,
      const DiscreteWorkload& discrete);

  // Largest number of discrete requests per round that can be admitted
  // into the SCAN batch alongside n continuous streams while keeping
  // P[round overruns t] <= delta (guarantee-style; eq. 3.1.5 on the
  // two-class transform).
  int GuaranteedDiscreteSlots(int n, double t, double delta) const;

  // Chernoff bound on P[T >= t] for n continuous streams + d discrete
  // requests in one SCAN batch.
  double MixedLateBound(int n, int d, double t) const;

  // Expected leftover time E[max(0, t - T_n)] after the continuous batch,
  // from the normal approximation of T_n (expectation-style; documented
  // approximation, validated by simulation).
  double ExpectedLeftoverTime(int n, double t) const;

  // Best-effort discrete throughput per round: leftover / mean service.
  double ExpectedDiscreteThroughput(int n, double t) const;

  // Largest Poisson arrival rate (requests/second) of discrete requests
  // that keeps the best-effort queue stable, with a safety factor
  // rho < 1 (default 0.8).
  double SustainableDiscreteRate(int n, double t, double rho = 0.8) const;

  // Approximate mean response time (seconds) for Poisson discrete
  // arrivals at rate lambda (requests/second) under the best-effort
  // leftover-time service. Decomposition (validated within ~15% by
  // sim::MixedRoundSimulator):
  //   * gate wait: an arrival landing inside the continuous busy period
  //     [0, b] of its round (b = E[T_n]) waits for the leftover window;
  //     uniform arrivals give an expected gate wait of b^2 / (2t);
  //   * queueing: an M/G/1-style term rho/(1-rho) * E[S_d] with
  //     rho = lambda * E[S_d] / (leftover fraction);
  //   * service: E[S_d].
  // Returns +inf when the leftover capacity cannot carry lambda.
  double ApproximateDiscreteResponseTime(int n, double t,
                                         double lambda) const;

  const MultiClassServiceModel& multiclass() const { return *multiclass_; }
  double mean_discrete_service() const { return mean_discrete_service_; }

 private:
  MixedWorkloadModel(std::unique_ptr<MultiClassServiceModel> multiclass,
                     double mean_discrete_service);

  std::unique_ptr<MultiClassServiceModel> multiclass_;
  double mean_discrete_service_;
};

}  // namespace zonestream::core

#endif  // ZONESTREAM_CORE_MIXED_WORKLOAD_H_
