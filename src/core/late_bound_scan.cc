#include "core/late_bound_scan.h"

#include <cmath>
#include <cstring>
#include <limits>

#include "common/check.h"

namespace zonestream::core {

namespace {

uint64_t ThetaKey(double theta) {
  uint64_t key;
  static_assert(sizeof(key) == sizeof(theta));
  std::memcpy(&key, &theta, sizeof(key));
  return key;
}

// Sentinel for unused cache slots: a NaN bit pattern, which no valid θ
// (finite, >= 0) ever produces.
constexpr uint64_t kEmptyThetaKey = ~0ull;

}  // namespace

LateBoundScan::LateBoundScan(const ServiceTimeModel* model, double t,
                             bool warm_start)
    : model_(model), t_(t), warm_start_(warm_start) {
  ZS_CHECK(model != nullptr);
  ZS_CHECK_GT(t, 0.0);
  per_theta_.fill(ThetaEntry{kEmptyThetaKey, 0.0});
}

double LateBoundScan::CachedSeekBound(int n) {
  if (seek_cache_.size() <= static_cast<size_t>(n)) {
    seek_cache_.resize(n + 1, std::numeric_limits<double>::quiet_NaN());
  }
  double& slot = seek_cache_[n];
  if (std::isnan(slot)) slot = model_->SeekBound(n);
  return slot;
}

double LateBoundScan::CachedPerRequestLogMgf(double theta) {
  const uint64_t key = ThetaKey(theta);
  // Fibonacci-hash the θ bits into a slot; collisions just overwrite.
  static_assert(kThetaCacheSize == 256, "slot hash assumes 256 slots");
  ThetaEntry& entry = per_theta_[(key * 0x9e3779b97f4a7c15ull) >> 56];
  if (entry.key != key) {
    entry.key = key;
    entry.value = model_->PerRequestLogMgf(theta);
  }
  return entry.value;
}

ChernoffResult LateBoundScan::LateBound(int n) {
  ZS_CHECK_GE(n, 0);
  if (n == 0) return model_->LateBound(0, t_);

  const double nn = static_cast<double>(n);
  ChernoffOptions options;
  if (warm_start_) options.theta_hint = theta_hint_;

  ChernoffResult result;
  if (model_->seek_bound_kind() == SeekBoundKind::kEquidistant) {
    // Equidistant mode: the seek term is θ-linear with an n-only scalar
    // coefficient, so it caches as one double per n.
    const double seek = CachedSeekBound(n);
    const auto log_mgf = [this, seek, nn](double theta) {
      return theta * seek + nn * CachedPerRequestLogMgf(theta);
    };
    result = ChernoffTailBound(log_mgf, model_->theta_max(), t_, options);
  } else {
    // Bachmat mode: the seek term couples n and θ (a quadrature per
    // evaluation), so only the n-independent rotation+transfer component
    // is served from the per-θ memo.
    const auto log_mgf = [this, n, nn](double theta) {
      return model_->SeekLogMgf(n, theta) +
             nn * CachedPerRequestLogMgf(theta);
    };
    result = ChernoffTailBound(log_mgf, model_->theta_max(), t_, options);
  }
  if (result.theta_star > 0.0) theta_hint_ = result.theta_star;
  return result;
}

}  // namespace zonestream::core
