#include "core/markov_glitch.h"

#include <cmath>
#include <vector>

#include "common/check.h"

namespace zonestream::core {

common::StatusOr<MarkovGlitchModel> MarkovGlitchModel::Create(
    const MarkovGlitchParams& params) {
  if (params.light_to_heavy <= 0.0 || params.light_to_heavy > 1.0 ||
      params.heavy_to_light <= 0.0 || params.heavy_to_light > 1.0) {
    return common::Status::InvalidArgument(
        "switching probabilities must lie in (0, 1]");
  }
  if (params.glitch_light < 0.0 || params.glitch_light > 1.0 ||
      params.glitch_heavy < 0.0 || params.glitch_heavy > 1.0) {
    return common::Status::InvalidArgument(
        "glitch probabilities must lie in [0, 1]");
  }
  if (params.glitch_heavy < params.glitch_light) {
    return common::Status::InvalidArgument(
        "glitch_heavy must be >= glitch_light");
  }
  return MarkovGlitchModel(params);
}

common::StatusOr<MarkovGlitchModel> MarkovGlitchModel::FromMarginal(
    double p_glitch, double heavy_fraction, double heavy_over_light,
    double mean_heavy_run_rounds) {
  if (p_glitch < 0.0 || p_glitch > 1.0) {
    return common::Status::InvalidArgument("p_glitch must lie in [0, 1]");
  }
  if (heavy_fraction < 0.0 || heavy_fraction > 1.0) {
    return common::Status::InvalidArgument(
        "heavy_fraction must lie in [0, 1]");
  }
  if (heavy_over_light < 1.0) {
    return common::Status::InvalidArgument("heavy_over_light must be >= 1");
  }
  if (mean_heavy_run_rounds < 1.0) {
    return common::Status::InvalidArgument(
        "mean heavy run must be >= 1 round");
  }
  // Degenerate corners — never heavy, always heavy, or states with equal
  // glitch probability — are all i.i.d. glitches at rate p_glitch. The
  // modulation carries no information there, so collapse to a two-state
  // chain whose states are indistinguishable (the binomial model) rather
  // than solving the marginal equation at its singular points.
  if (heavy_fraction == 0.0 || heavy_fraction == 1.0 ||
      heavy_over_light == 1.0) {
    MarkovGlitchParams params;
    params.heavy_to_light = 1.0 / mean_heavy_run_rounds;
    params.light_to_heavy = 1.0 / mean_heavy_run_rounds;
    params.glitch_light = p_glitch;
    params.glitch_heavy = p_glitch;
    return Create(params);
  }
  // Marginal: p = pi_h * p_h + (1 - pi_h) * p_l with p_h = r * p_l.
  const double pi_h = heavy_fraction;
  const double r = heavy_over_light;
  const double p_light = p_glitch / (pi_h * r + (1.0 - pi_h));
  const double p_heavy = r * p_light;
  if (p_heavy > 1.0) {
    return common::Status::OutOfRange(
        "heavy-state glitch probability exceeds 1 for this "
        "marginal/ratio/fraction");
  }
  // Mean heavy run length L = 1 / heavy_to_light; stationarity fixes
  // light_to_heavy = heavy_to_light * pi_h / (1 - pi_h).
  MarkovGlitchParams params;
  params.heavy_to_light = 1.0 / mean_heavy_run_rounds;
  params.light_to_heavy =
      params.heavy_to_light * pi_h / (1.0 - pi_h);
  if (params.light_to_heavy > 1.0) {
    return common::Status::OutOfRange(
        "heavy runs too short for the requested heavy fraction");
  }
  params.glitch_light = p_light;
  params.glitch_heavy = p_heavy;
  return Create(params);
}

double MarkovGlitchModel::stationary_heavy() const {
  return params_.light_to_heavy /
         (params_.light_to_heavy + params_.heavy_to_light);
}

double MarkovGlitchModel::marginal_glitch_probability() const {
  const double pi_h = stationary_heavy();
  return pi_h * params_.glitch_heavy + (1.0 - pi_h) * params_.glitch_light;
}

double MarkovGlitchModel::ErrorProbability(int m, int g) const {
  ZS_CHECK_GT(m, 0);
  ZS_CHECK_GE(g, 0);
  if (g == 0) return 1.0;
  if (g > m) return 0.0;
  // DP over rounds: state(light=0/heavy=1) x glitch count clamped at g
  // (g means "g or more"). prob[s][k] after processing each round.
  const int states = 2;
  const double stay[2] = {1.0 - params_.light_to_heavy,
                          1.0 - params_.heavy_to_light};
  const double flip[2] = {params_.light_to_heavy, params_.heavy_to_light};
  const double glitch[2] = {params_.glitch_light, params_.glitch_heavy};

  std::vector<double> prob(states * (g + 1), 0.0);
  std::vector<double> next(states * (g + 1), 0.0);
  const auto at = [g](int s, int k) { return s * (g + 1) + k; };
  const double pi_h = stationary_heavy();
  prob[at(0, 0)] = 1.0 - pi_h;
  prob[at(1, 0)] = pi_h;

  for (int round = 0; round < m; ++round) {
    std::fill(next.begin(), next.end(), 0.0);
    for (int s = 0; s < states; ++s) {
      for (int k = 0; k <= g; ++k) {
        const double mass = prob[at(s, k)];
        if (mass == 0.0) continue;
        // Glitch or not in the current state, then switch.
        for (int glitched = 0; glitched <= 1; ++glitched) {
          const double event_probability =
              glitched ? glitch[s] : 1.0 - glitch[s];
          if (event_probability == 0.0) continue;
          const int new_count = std::min(g, k + glitched);
          const double moved = mass * event_probability;
          next[at(s, new_count)] += moved * stay[s];
          next[at(1 - s, new_count)] += moved * flip[s];
        }
      }
    }
    prob.swap(next);
  }
  return prob[at(0, g)] + prob[at(1, g)];
}

}  // namespace zonestream::core
