// Baseline admission models the paper compares against (§4 and related
// work): the deterministic worst case (eq. 4.1), the central-limit/normal
// approximation of [CZ94], the Chebyshev-style bound of [CL96], and the
// independent-seek assumption those works share (versus SCAN + Oyang).
#ifndef ZONESTREAM_CORE_BASELINES_H_
#define ZONESTREAM_CORE_BASELINES_H_

#include <memory>

#include "common/status.h"
#include "core/chernoff.h"
#include "core/service_time_model.h"
#include "core/transfer_models.h"
#include "disk/disk_geometry.h"
#include "disk/seek_model.h"
#include "workload/size_distribution.h"

namespace zonestream::core {

// ---------------------------------------------------------------------------
// Deterministic worst case (eq. 4.1)

// Configuration for the worst-case calculation. The paper evaluates two
// variants: the pessimistic one (99th-percentile fragment at the innermost
// zone's rate) and an "optimistic worst case" (95th percentile at the mean
// zone rate).
struct WorstCaseConfig {
  double size_quantile = 0.99;   // percentile of the fragment size
  bool use_mean_rate = false;    // false: C_min/ROT; true: (C_min+C_max)/(2 ROT)
};

// N_max^wc = floor(t / (T_rot^max + T_seek^max + T_trans^max)).
// T_seek^max is the full-stroke seek, T_rot^max one revolution, and
// T_trans^max the chosen size quantile over the chosen rate.
struct WorstCaseResult {
  int n_max = 0;
  double t_rot_max_s = 0.0;
  double t_seek_max_s = 0.0;
  double t_trans_max_s = 0.0;
};
WorstCaseResult WorstCaseAdmission(const disk::DiskGeometry& geometry,
                                   const disk::SeekTimeModel& seek,
                                   const workload::SizeDistribution& sizes,
                                   double t, const WorstCaseConfig& config);

// ---------------------------------------------------------------------------
// Normal / CLT approximation ([CZ94] style)

// p_late estimated as P[Normal(E[T_N], Var[T_N]) >= t]. Not a bound: the
// normal tail can under- as well as over-estimate for the N of interest
// (10..50 per disk), which is the paper's core criticism.
double NormalApproxLateProbability(const ServiceTimeModel& model, int n,
                                   double t);

// Largest N with the normal-approximate p_late <= delta. Invalid
// (t, delta) queries return the sentinel 0 (see
// core::ValidateAdmissionQuery in admission.h).
int NormalApproxMaxStreams(const ServiceTimeModel& model, double t,
                           double delta, int n_cap = 4096);

// ---------------------------------------------------------------------------
// Chebyshev bound ([CL96] style)

// One-sided Chebyshev (Cantelli) bound:
// P[T_N >= t] <= Var / (Var + (t - E)^2) for t > E[T_N], else 1.
double ChebyshevLateBound(const ServiceTimeModel& model, int n, double t);

// Largest N with the Chebyshev bound <= delta. Same sentinel contract
// as NormalApproxMaxStreams.
int ChebyshevMaxStreams(const ServiceTimeModel& model, double t, double delta,
                        int n_cap = 4096);

// ---------------------------------------------------------------------------
// Independent-seek service model ([CZ94, CL96] assumption)

// Round service-time model in which each request pays an independent seek
// over the distance between two uniformly random cylinders (triangular
// density f_D(d) = 2(1 - d/CYL)/CYL on [0, CYL]) instead of the SCAN sweep
// with Oyang's accumulated-seek bound. Exposes the same LateBound/Moments
// interface subset as ServiceTimeModel for side-by-side ablation.
class IndependentSeekServiceModel {
 public:
  static common::StatusOr<IndependentSeekServiceModel> Create(
      const disk::SeekTimeModel& seek, int cylinders, double rotation_time_s,
      std::shared_ptr<const TransferModel> transfer);

  // Chernoff bound on P[T_n >= t] with independent seeks.
  ChernoffResult LateBound(int n, double t) const;

  // Exact mean/variance of T_n under independent seeks.
  ServiceTimeMoments Moments(int n) const;

  // Moments of the per-request seek time (from quadrature over the
  // triangular distance density).
  double seek_mean() const { return seek_mean_; }
  double seek_variance() const { return seek_variance_; }

 private:
  IndependentSeekServiceModel(const disk::SeekTimeModel& seek, int cylinders,
                              double rotation_time_s,
                              std::shared_ptr<const TransferModel> transfer);

  // log E[e^{θ seek(D)}], by quadrature.
  double SeekLogMgf(double theta) const;
  double RotationLogMgf(double theta) const;

  disk::SeekTimeModel seek_;
  int cylinders_;
  double rotation_time_s_;
  std::shared_ptr<const TransferModel> transfer_;
  double seek_mean_;
  double seek_variance_;
};

}  // namespace zonestream::core

#endif  // ZONESTREAM_CORE_BASELINES_H_
