// Per-request transfer-time models feeding the round service-time transform.
//
// The paper models the transfer time of one fragment as Gamma-distributed —
// directly from moments for a conventional disk (§3.1), or moment-matched
// to the multi-zone transfer-time density (§3.2). As an extension we also
// provide the *exact* multi-zone transform (a zone mixture of size-MGFs),
// which quantifies what the Gamma approximation costs.
#ifndef ZONESTREAM_CORE_TRANSFER_MODELS_H_
#define ZONESTREAM_CORE_TRANSFER_MODELS_H_

#include <complex>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "disk/disk_geometry.h"
#include "workload/size_distribution.h"

namespace zonestream::core {

// Cumulant generating function of the transfer time of a single request.
class TransferModel {
 public:
  virtual ~TransferModel() = default;

  virtual std::string name() const = 0;

  // First two moments of the per-request transfer time, in seconds.
  virtual double mean() const = 0;
  virtual double variance() const = 0;

  // log E[e^{θ T_trans}] for θ in [0, theta_max()).
  virtual double LogMgf(double theta) const = 0;

  // Supremum of the admissible θ domain (may be +infinity).
  virtual double theta_max() const = 0;

  // Whether Cf() is implemented (needed by the exact transform-inversion
  // extension; the Gamma models implement it).
  virtual bool has_cf() const { return false; }

  // Characteristic function E[e^{iu T_trans}]. Only valid if has_cf().
  virtual std::complex<double> Cf(double u) const;
};

// Gamma transfer time with rate alpha = mean/variance (1/seconds) and shape
// beta = mean^2/variance — eq. (3.1.2)/(3.1.3). The default model.
class GammaTransferModel final : public TransferModel {
 public:
  // From transfer-time moments directly (§3.1 usage, where the caller
  // derives the moments from fragment-size moments and a fixed rate).
  static common::StatusOr<GammaTransferModel> FromMoments(double mean_s,
                                                          double variance_s2);

  // §3.1 convenience: sizes with the given moments served at one fixed
  // transfer rate (conventional single-zone disk). T = S/rate is then
  // exactly Gamma when S is Gamma.
  static common::StatusOr<GammaTransferModel> ForConstantRate(
      double mean_size_bytes, double variance_size_bytes2, double rate_bps);

  // §3.2: moment-matched to the exact multi-zone transfer-time moments
  // E[T^k] = E[S^k]·E[R^{-k}] under uniform-over-capacity placement.
  static common::StatusOr<GammaTransferModel> ForMultiZone(
      const disk::DiskGeometry& geometry, double mean_size_bytes,
      double variance_size_bytes2);

  // Placement-extension variant: moment-matched against an arbitrary
  // discrete transfer-rate mixture (probabilities and rates of equal
  // length, probabilities summing to 1) — e.g. the mixtures induced by
  // the disk::PlacementModel strategies.
  static common::StatusOr<GammaTransferModel> ForRateMixture(
      const std::vector<double>& probabilities,
      const std::vector<double>& rates, double mean_size_bytes,
      double variance_size_bytes2);

  std::string name() const override { return "gamma"; }
  double mean() const override { return beta_ / alpha_; }
  double variance() const override { return beta_ / (alpha_ * alpha_); }
  double LogMgf(double theta) const override;
  double theta_max() const override { return alpha_; }
  bool has_cf() const override { return true; }
  // (1 - iu/alpha)^{-beta}.
  std::complex<double> Cf(double u) const override;

  // Rate parameter alpha (1/seconds) and shape beta.
  double alpha() const { return alpha_; }
  double beta() const { return beta_; }

 private:
  GammaTransferModel(double alpha, double beta) : alpha_(alpha), beta_(beta) {}
  double alpha_;
  double beta_;
};

// Exact multi-zone transform: T = S/R with R the discrete zone-rate mixture,
// so M_T(θ) = Σ_i (C_i/C) · M_S(θ/R_i). Requires a size distribution with a
// finite MGF. This is the "no Gamma approximation" extension used by the
// approximation ablation.
class ZoneMixtureTransferModel final : public TransferModel {
 public:
  static common::StatusOr<ZoneMixtureTransferModel> Create(
      const disk::DiskGeometry& geometry,
      std::shared_ptr<const workload::SizeDistribution> sizes);

  std::string name() const override { return "zone-mixture"; }
  double mean() const override { return mean_; }
  double variance() const override { return variance_; }
  double LogMgf(double theta) const override;
  double theta_max() const override { return theta_max_; }

 private:
  ZoneMixtureTransferModel(std::vector<double> probabilities,
                           std::vector<double> rates,
                           std::shared_ptr<const workload::SizeDistribution> sizes);

  std::vector<double> probabilities_;  // C_i / C
  std::vector<double> rates_;          // R_i
  std::shared_ptr<const workload::SizeDistribution> sizes_;
  double mean_;
  double variance_;
  double theta_max_;
};

}  // namespace zonestream::core

#endif  // ZONESTREAM_CORE_TRANSFER_MODELS_H_
