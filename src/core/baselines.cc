#include "core/baselines.h"

#include <cmath>

#include "common/check.h"
#include "core/admission.h"
#include "numeric/quadrature.h"
#include "numeric/special_functions.h"

namespace zonestream::core {

WorstCaseResult WorstCaseAdmission(const disk::DiskGeometry& geometry,
                                   const disk::SeekTimeModel& seek,
                                   const workload::SizeDistribution& sizes,
                                   double t, const WorstCaseConfig& config) {
  ZS_CHECK_GT(t, 0.0);
  ZS_CHECK_GT(config.size_quantile, 0.0);
  ZS_CHECK_LT(config.size_quantile, 1.0);

  WorstCaseResult result;
  result.t_rot_max_s = geometry.rotation_time();
  result.t_seek_max_s = seek.MaxSeekTime(geometry.cylinders());
  const double rate =
      config.use_mean_rate
          ? 0.5 * (geometry.MinTransferRate() + geometry.MaxTransferRate())
          : geometry.MinTransferRate();
  result.t_trans_max_s = sizes.Quantile(config.size_quantile) / rate;
  const double per_request =
      result.t_rot_max_s + result.t_seek_max_s + result.t_trans_max_s;
  result.n_max = static_cast<int>(std::floor(t / per_request));
  return result;
}

double NormalApproxLateProbability(const ServiceTimeModel& model, int n,
                                   double t) {
  ZS_CHECK_GT(n, 0);
  ZS_CHECK_GT(t, 0.0);
  const ServiceTimeMoments moments = model.Moments(n);
  const double sigma = std::sqrt(moments.variance_s2);
  if (sigma == 0.0) return (moments.mean_s >= t) ? 1.0 : 0.0;
  return 1.0 - numeric::NormalCdf((t - moments.mean_s) / sigma);
}

int NormalApproxMaxStreams(const ServiceTimeModel& model, double t,
                           double delta, int n_cap) {
  ZS_CHECK_GT(n_cap, 0);
  if (ValidateAdmissionQuery(t, delta) != AdmissionQueryError::kOk) {
    return 0;
  }
  int n_max = 0;
  for (int n = 1; n <= n_cap; ++n) {
    if (NormalApproxLateProbability(model, n, t) > delta) break;
    n_max = n;
  }
  return n_max;
}

double ChebyshevLateBound(const ServiceTimeModel& model, int n, double t) {
  ZS_CHECK_GT(n, 0);
  ZS_CHECK_GT(t, 0.0);
  const ServiceTimeMoments moments = model.Moments(n);
  const double slack = t - moments.mean_s;
  if (slack <= 0.0) return 1.0;
  // Cantelli's one-sided inequality.
  return moments.variance_s2 / (moments.variance_s2 + slack * slack);
}

int ChebyshevMaxStreams(const ServiceTimeModel& model, double t, double delta,
                        int n_cap) {
  ZS_CHECK_GT(n_cap, 0);
  if (ValidateAdmissionQuery(t, delta) != AdmissionQueryError::kOk) {
    return 0;
  }
  int n_max = 0;
  for (int n = 1; n <= n_cap; ++n) {
    if (ChebyshevLateBound(model, n, t) > delta) break;
    n_max = n;
  }
  return n_max;
}

// ---------------------------------------------------------------------------
// IndependentSeekServiceModel

IndependentSeekServiceModel::IndependentSeekServiceModel(
    const disk::SeekTimeModel& seek, int cylinders, double rotation_time_s,
    std::shared_ptr<const TransferModel> transfer)
    : seek_(seek),
      cylinders_(cylinders),
      rotation_time_s_(rotation_time_s),
      transfer_(std::move(transfer)),
      seek_mean_(0.0),
      seek_variance_(0.0) {
  // Moments of seek(D) with D triangular on [0, CYL]:
  // f_D(d) = 2 (1 - d/CYL) / CYL.
  const double cyl = static_cast<double>(cylinders_);
  const auto density = [cyl](double d) { return 2.0 * (1.0 - d / cyl) / cyl; };
  const auto m1 = [this, &density](double d) {
    return seek_.SeekTime(d) * density(d);
  };
  const auto m2 = [this, &density](double d) {
    const double s = seek_.SeekTime(d);
    return s * s * density(d);
  };
  seek_mean_ = numeric::CompositeGaussLegendre(m1, 0.0, cyl, 64);
  const double second = numeric::CompositeGaussLegendre(m2, 0.0, cyl, 64);
  seek_variance_ = second - seek_mean_ * seek_mean_;
}

common::StatusOr<IndependentSeekServiceModel>
IndependentSeekServiceModel::Create(
    const disk::SeekTimeModel& seek, int cylinders, double rotation_time_s,
    std::shared_ptr<const TransferModel> transfer) {
  if (cylinders <= 0) {
    return common::Status::InvalidArgument("cylinders must be positive");
  }
  if (rotation_time_s <= 0.0) {
    return common::Status::InvalidArgument("rotation time must be positive");
  }
  if (transfer == nullptr) {
    return common::Status::InvalidArgument("transfer model is null");
  }
  return IndependentSeekServiceModel(seek, cylinders, rotation_time_s,
                                     std::move(transfer));
}

double IndependentSeekServiceModel::SeekLogMgf(double theta) const {
  const double cyl = static_cast<double>(cylinders_);
  const auto integrand = [this, cyl, theta](double d) {
    const double density = 2.0 * (1.0 - d / cyl) / cyl;
    return std::exp(theta * seek_.SeekTime(d)) * density;
  };
  // Seek times are bounded (<= full stroke), so the MGF is entire; 64
  // segments resolve the sqrt kink near d = 0 and the regime switch.
  return std::log(numeric::CompositeGaussLegendre(integrand, 0.0, cyl, 64));
}

double IndependentSeekServiceModel::RotationLogMgf(double theta) const {
  const double x = theta * rotation_time_s_;
  if (x == 0.0) return 0.0;
  if (x < 1e-4) {
    return std::log1p(x / 2.0 + x * x / 6.0 + x * x * x / 24.0);
  }
  return x + std::log1p(-std::exp(-x)) - std::log(x);
}

ChernoffResult IndependentSeekServiceModel::LateBound(int n, double t) const {
  ZS_CHECK_GT(n, 0);
  ZS_CHECK_GT(t, 0.0);
  const double nn = static_cast<double>(n);
  const auto log_mgf = [this, nn](double theta) {
    return nn * (SeekLogMgf(theta) + RotationLogMgf(theta) +
                 transfer_->LogMgf(theta));
  };
  return ChernoffTailBound(log_mgf, transfer_->theta_max(), t);
}

ServiceTimeMoments IndependentSeekServiceModel::Moments(int n) const {
  ZS_CHECK_GE(n, 0);
  const double nn = static_cast<double>(n);
  ServiceTimeMoments moments;
  moments.mean_s =
      nn * (seek_mean_ + rotation_time_s_ / 2.0 + transfer_->mean());
  moments.variance_s2 =
      nn * (seek_variance_ + rotation_time_s_ * rotation_time_s_ / 12.0 +
            transfer_->variance());
  return moments;
}

}  // namespace zonestream::core
