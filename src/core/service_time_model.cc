#include "core/service_time_model.h"

#include <cmath>
#include <limits>

#include "common/check.h"
#include "sched/oyang_bound.h"

namespace zonestream::core {

ServiceTimeModel::ServiceTimeModel(
    const disk::SeekTimeModel& seek, int cylinders, double rotation_time_s,
    std::shared_ptr<const TransferModel> transfer)
    : seek_(seek),
      cylinders_(cylinders),
      rotation_time_s_(rotation_time_s),
      transfer_(std::move(transfer)) {}

common::StatusOr<ServiceTimeModel> ServiceTimeModel::ForConventionalDisk(
    const disk::DiskGeometry& geometry, const disk::SeekTimeModel& seek,
    double mean_size_bytes, double variance_size_bytes2) {
  if (geometry.num_zones() != 1) {
    return common::Status::InvalidArgument(
        "conventional-disk model requires a single-zone geometry");
  }
  auto transfer = GammaTransferModel::ForConstantRate(
      mean_size_bytes, variance_size_bytes2, geometry.TransferRate(0));
  if (!transfer.ok()) return transfer.status();
  return ServiceTimeModel(
      seek, geometry.cylinders(), geometry.rotation_time(),
      std::make_shared<GammaTransferModel>(*std::move(transfer)));
}

common::StatusOr<ServiceTimeModel> ServiceTimeModel::FromTransferMoments(
    const disk::SeekTimeModel& seek, int cylinders, double rotation_time_s,
    double mean_transfer_s, double variance_transfer_s2) {
  if (cylinders <= 0) {
    return common::Status::InvalidArgument("cylinders must be positive");
  }
  if (rotation_time_s <= 0.0) {
    return common::Status::InvalidArgument("rotation time must be positive");
  }
  auto transfer =
      GammaTransferModel::FromMoments(mean_transfer_s, variance_transfer_s2);
  if (!transfer.ok()) return transfer.status();
  return ServiceTimeModel(
      seek, cylinders, rotation_time_s,
      std::make_shared<GammaTransferModel>(*std::move(transfer)));
}

common::StatusOr<ServiceTimeModel> ServiceTimeModel::ForMultiZoneDisk(
    const disk::DiskGeometry& geometry, const disk::SeekTimeModel& seek,
    double mean_size_bytes, double variance_size_bytes2) {
  auto transfer = GammaTransferModel::ForMultiZone(geometry, mean_size_bytes,
                                                   variance_size_bytes2);
  if (!transfer.ok()) return transfer.status();
  return ServiceTimeModel(
      seek, geometry.cylinders(), geometry.rotation_time(),
      std::make_shared<GammaTransferModel>(*std::move(transfer)));
}

common::StatusOr<ServiceTimeModel> ServiceTimeModel::WithTransferModel(
    const disk::SeekTimeModel& seek, int cylinders, double rotation_time_s,
    std::shared_ptr<const TransferModel> transfer) {
  if (cylinders <= 0) {
    return common::Status::InvalidArgument("cylinders must be positive");
  }
  if (rotation_time_s <= 0.0) {
    return common::Status::InvalidArgument("rotation time must be positive");
  }
  if (transfer == nullptr) {
    return common::Status::InvalidArgument("transfer model is null");
  }
  return ServiceTimeModel(seek, cylinders, rotation_time_s,
                          std::move(transfer));
}

double ServiceTimeModel::SeekBound(int n) const {
  return sched::OyangSeekBound(seek_, cylinders_, n);
}

double ServiceTimeModel::SeekLogMgf(int n, double theta) const {
  ZS_CHECK_GE(n, 0);
  ZS_CHECK_GE(theta, 0.0);
  if (seek_bound_kind_ == SeekBoundKind::kBachmat) {
    return BachmatSeekLogMgf(seek_, cylinders_, n, theta);
  }
  return theta * SeekBound(n);
}

ServiceTimeModel ServiceTimeModel::WithSeekBound(SeekBoundKind kind) const {
  ServiceTimeModel copy = *this;
  copy.seek_bound_kind_ = kind;
  return copy;
}

double ServiceTimeModel::RotationLogMgf(double theta) const {
  const double x = theta * rotation_time_s_;
  if (x == 0.0) return 0.0;
  if (x < 1e-4) {
    // (e^x - 1)/x = 1 + x/2 + x^2/6 + x^3/24 + O(x^4).
    return std::log1p(x / 2.0 + x * x / 6.0 + x * x * x / 24.0);
  }
  // log((e^x - 1)/x) = x + log(1 - e^{-x}) - log(x), stable for large x.
  return x + std::log1p(-std::exp(-x)) - std::log(x);
}

double ServiceTimeModel::PerRequestLogMgf(double theta) const {
  ZS_CHECK_GE(theta, 0.0);
  return RotationLogMgf(theta) + transfer_->LogMgf(theta);
}

double ServiceTimeModel::LogMgf(int n, double theta) const {
  ZS_CHECK_GE(n, 0);
  ZS_CHECK_GE(theta, 0.0);
  const double nn = static_cast<double>(n);
  return SeekLogMgf(n, theta) + nn * RotationLogMgf(theta) +
         nn * transfer_->LogMgf(theta);
}

ChernoffResult ServiceTimeModel::LateBound(int n, double t,
                                           const ChernoffOptions& options)
    const {
  ZS_CHECK_GE(n, 0);
  ZS_CHECK_GT(t, 0.0);
  if (n == 0) {
    // No requests: the round never overruns.
    ChernoffResult result;
    result.bound = 0.0;
    result.exponent = -std::numeric_limits<double>::infinity();
    result.converged = true;
    return result;
  }
  const auto log_mgf = [this, n](double theta) { return LogMgf(n, theta); };
  return ChernoffTailBound(log_mgf, transfer_->theta_max(), t, options);
}

std::complex<double> ServiceTimeModel::CharacteristicFunction(
    int n, double u) const {
  ZS_CHECK_GE(n, 0);
  const std::complex<double> i_unit(0.0, 1.0);
  // Seek component: e^{iu SEEK(n)}.
  std::complex<double> cf = std::exp(i_unit * (u * SeekBound(n)));
  // Rotational component: ((e^{iuR} - 1)/(iuR))^n, with a series fallback
  // near u = 0.
  const double x = u * rotation_time_s_;
  std::complex<double> rot;
  if (std::fabs(x) < 1e-6) {
    rot = std::complex<double>(1.0 - x * x / 6.0, x / 2.0);
  } else {
    const std::complex<double> iux(0.0, x);
    rot = (std::exp(iux) - 1.0) / iux;
  }
  cf *= std::pow(rot, n);
  // Transfer component.
  cf *= std::pow(transfer_->Cf(u), n);
  return cf;
}

ServiceTimeMoments ServiceTimeModel::Moments(int n) const {
  ZS_CHECK_GE(n, 0);
  const double nn = static_cast<double>(n);
  ServiceTimeMoments moments;
  // Uniform(0, ROT): mean ROT/2, variance ROT^2/12.
  const double seek_mean =
      seek_bound_kind_ == SeekBoundKind::kBachmat
          ? BachmatExpectedSeekTotal(seek_, cylinders_, n)
          : SeekBound(n);
  moments.mean_s = seek_mean + nn * (rotation_time_s_ / 2.0 +
                                     transfer_->mean());
  moments.variance_s2 =
      nn * (rotation_time_s_ * rotation_time_s_ / 12.0 + transfer_->variance());
  if (seek_bound_kind_ == SeekBoundKind::kBachmat) {
    moments.variance_s2 +=
        BachmatSeekTotalVarianceBound(seek_, cylinders_, n);
  }
  return moments;
}

}  // namespace zonestream::core
