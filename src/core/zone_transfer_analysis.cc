#include "core/zone_transfer_analysis.h"

#include <cmath>
#include <functional>

#include "common/check.h"
#include "numeric/quadrature.h"
#include "numeric/special_functions.h"

namespace zonestream::core {

ZoneTransferAnalysis::ZoneTransferAnalysis(
    const disk::DiskGeometry& geometry,
    std::shared_ptr<const workload::SizeDistribution> sizes,
    GammaTransferModel gamma_model)
    : sizes_(std::move(sizes)),
      mean_(gamma_model.mean()),
      variance_(gamma_model.variance()),
      gamma_model_(gamma_model) {
  probabilities_.reserve(geometry.num_zones());
  rates_.reserve(geometry.num_zones());
  for (const disk::ZoneInfo& zone : geometry.zones()) {
    probabilities_.push_back(zone.hit_probability);
    rates_.push_back(zone.transfer_rate_bps);
  }
  rate_min_ = geometry.MinTransferRate();
  rate_max_ = geometry.MaxTransferRate();
}

common::StatusOr<ZoneTransferAnalysis> ZoneTransferAnalysis::Create(
    const disk::DiskGeometry& geometry,
    std::shared_ptr<const workload::SizeDistribution> sizes) {
  if (sizes == nullptr) {
    return common::Status::InvalidArgument("size distribution is null");
  }
  auto gamma_model = GammaTransferModel::ForMultiZone(geometry, sizes->mean(),
                                                      sizes->variance());
  if (!gamma_model.ok()) return gamma_model.status();
  return ZoneTransferAnalysis(geometry, std::move(sizes),
                              *std::move(gamma_model));
}

double ZoneTransferAnalysis::ExactDensity(double t) const {
  if (t <= 0.0) return 0.0;
  // T = S/R: conditioning on zone i, the density of T is R_i·f_S(t·R_i).
  double density = 0.0;
  for (size_t i = 0; i < rates_.size(); ++i) {
    density += probabilities_[i] * rates_[i] * sizes_->Density(t * rates_[i]);
  }
  return density;
}

double ZoneTransferAnalysis::ExactCdf(double t) const {
  if (t <= 0.0) return 0.0;
  double cdf = 0.0;
  for (size_t i = 0; i < rates_.size(); ++i) {
    cdf += probabilities_[i] * sizes_->Cdf(t * rates_[i]);
  }
  return cdf;
}

double ZoneTransferAnalysis::ContinuousDensity(double t) const {
  if (t <= 0.0) return 0.0;
  const double a = rate_min_;
  const double b = rate_max_;
  if (a == b) return a * sizes_->Density(t * a);  // single-zone degenerate
  // Eq. (3.2.7) with the large-Z rate density f_rate(r) = 2r/(b^2 - a^2).
  const auto integrand = [this, a, b, t](double r) {
    const double f_rate = 2.0 * r / (b * b - a * a);
    return f_rate * r * sizes_->Density(t * r);
  };
  return numeric::CompositeGaussLegendre(integrand, a, b, /*segments=*/16,
                                         /*order=*/32);
}

double ZoneTransferAnalysis::GammaApproxDensity(double t) const {
  if (t <= 0.0) return 0.0;
  const double alpha = gamma_model_.alpha();  // rate (1/s)
  const double beta = gamma_model_.beta();    // shape
  const double log_density = beta * std::log(alpha) +
                             (beta - 1.0) * std::log(t) - alpha * t -
                             numeric::LogGamma(beta);
  return std::exp(log_density);
}

double ZoneTransferAnalysis::GammaApproxCdf(double t) const {
  if (t <= 0.0) return 0.0;
  return numeric::RegularizedGammaP(gamma_model_.beta(),
                                    gamma_model_.alpha() * t);
}

double ZoneTransferAnalysis::GammaApproximationKolmogorov(double t_lo,
                                                          double t_hi,
                                                          int samples) const {
  ZS_CHECK_GT(samples, 1);
  ZS_CHECK_LT(t_lo, t_hi);
  double max_distance = 0.0;
  for (int i = 0; i < samples; ++i) {
    const double t = t_lo + (t_hi - t_lo) * i / (samples - 1);
    max_distance =
        std::fmax(max_distance, std::fabs(GammaApproxCdf(t) - ExactCdf(t)));
  }
  return max_distance;
}

namespace {

ApproximationError SweepRelativeError(
    const std::function<double(double)>& exact,
    const std::function<double(double)>& approx, double t_lo, double t_hi,
    int samples) {
  ZS_CHECK_GT(samples, 1);
  ZS_CHECK_LT(t_lo, t_hi);
  ApproximationError error;
  error.samples = samples;
  double sum = 0.0;
  double peak = 0.0;
  double max_abs = 0.0;
  for (int i = 0; i < samples; ++i) {
    const double t = t_lo + (t_hi - t_lo) * i / (samples - 1);
    const double f_exact = exact(t);
    ZS_CHECK_GT(f_exact, 0.0);
    peak = std::fmax(peak, f_exact);
    const double abs_err = std::fabs(approx(t) - f_exact);
    max_abs = std::fmax(max_abs, abs_err);
    const double rel = abs_err / f_exact;
    sum += rel;
    if (rel > error.max_relative_error) {
      error.max_relative_error = rel;
      error.at_time_s = t;
    }
  }
  error.mean_relative_error = sum / samples;
  error.max_normalized_error = max_abs / peak;
  return error;
}

}  // namespace

ApproximationError ZoneTransferAnalysis::GammaApproximationError(
    double t_lo, double t_hi, int samples) const {
  return SweepRelativeError([this](double t) { return ExactDensity(t); },
                            [this](double t) { return GammaApproxDensity(t); },
                            t_lo, t_hi, samples);
}

ApproximationError ZoneTransferAnalysis::ContinuousApproximationError(
    double t_lo, double t_hi, int samples) const {
  return SweepRelativeError([this](double t) { return ExactDensity(t); },
                            [this](double t) { return ContinuousDensity(t); },
                            t_lo, t_hi, samples);
}

}  // namespace zonestream::core
