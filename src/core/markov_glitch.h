// Markov-modulated per-stream glitch model (extension X5's analytic
// counterpart).
//
// Eq. 3.3.4 models a stream's glitches over M rounds as Binomial(M, p) —
// i.i.d. across rounds. Scene-correlated content violates that: a stream
// in a heavy scene glitches with elevated probability for many
// consecutive rounds, fattening the tail of the glitch count (measured in
// bench_ext_correlation). This module replaces the binomial with a
// two-state Markov modulation:
//
//   state ∈ {light, heavy}, switching as a stationary 2-state chain;
//   P[glitch | state] = p_light resp. p_heavy.
//
// P[#glitches >= g in M rounds] is computed *exactly* by dynamic
// programming over (round, state, glitch count capped at g) — O(M·g)
// work, trivially fast for M = 1200, g = 12 — giving admission control a
// drop-in correction for clustered content.
#ifndef ZONESTREAM_CORE_MARKOV_GLITCH_H_
#define ZONESTREAM_CORE_MARKOV_GLITCH_H_

#include "common/status.h"

namespace zonestream::core {

// Two-state modulation parameters.
struct MarkovGlitchParams {
  // Per-round switching probabilities.
  double light_to_heavy = 0.0;
  double heavy_to_light = 0.0;
  // Per-round glitch probabilities in each state.
  double glitch_light = 0.0;
  double glitch_heavy = 0.0;
};

// Exact per-stream glitch-count tail under two-state Markov modulation.
class MarkovGlitchModel {
 public:
  // Switching probabilities must lie in (0, 1]; glitch probabilities in
  // [0, 1] with glitch_heavy >= glitch_light.
  static common::StatusOr<MarkovGlitchModel> Create(
      const MarkovGlitchParams& params);

  // Convenience parameterization: the marginal per-round glitch
  // probability `p_glitch` (e.g. the §3.3 bound), the fraction of rounds
  // spent in heavy scenes, the glitch-probability ratio heavy/light, and
  // the mean heavy-scene length in rounds. Solves for the state-level
  // parameters so the *marginal* matches p_glitch exactly.
  //
  // Degenerate corners collapse cleanly to the plain binomial model
  // instead of erroring: heavy_fraction 0 (never heavy), heavy_fraction 1
  // (always heavy), and heavy_over_light == 1 (states indistinguishable)
  // all describe i.i.d. glitches at rate p_glitch, so the returned model
  // has glitch_light == glitch_heavy == p_glitch and ErrorProbability
  // equals the exact binomial tail.
  static common::StatusOr<MarkovGlitchModel> FromMarginal(
      double p_glitch, double heavy_fraction, double heavy_over_light,
      double mean_heavy_run_rounds);

  // Stationary probability of the heavy state.
  double stationary_heavy() const;

  // Marginal per-round glitch probability under the stationary law.
  double marginal_glitch_probability() const;

  // Exact P[#glitches >= g in m rounds], stream started in the
  // stationary state distribution. O(m·g) time.
  double ErrorProbability(int m, int g) const;

  const MarkovGlitchParams& params() const { return params_; }

 private:
  explicit MarkovGlitchModel(const MarkovGlitchParams& params)
      : params_(params) {}
  MarkovGlitchParams params_;
};

}  // namespace zonestream::core

#endif  // ZONESTREAM_CORE_MARKOV_GLITCH_H_
