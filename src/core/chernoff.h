// Chernoff tail bounds (§3.1, eq. 3.1.5/3.1.6).
//
// For a random variable T with moment generating function M(θ) = E[e^{θT}],
// Chernoff's theorem gives P[T >= t] <= inf_{θ>=0} e^{-θt} M(θ). The
// exponent g(θ) = -θt + log M(θ) is convex in θ, so the infimum is found by
// one-dimensional minimization over the admissible domain (0, θ_max).
#ifndef ZONESTREAM_CORE_CHERNOFF_H_
#define ZONESTREAM_CORE_CHERNOFF_H_

#include <functional>

namespace zonestream::core {

// Result of a Chernoff bound computation.
struct ChernoffResult {
  double bound = 1.0;       // the tail bound, clamped to [0, 1]
  double theta_star = 0.0;  // minimizing θ (0 when the trivial bound 1 wins)
  double exponent = 0.0;    // g(θ*) = log of the unclamped bound
  bool converged = false;
};

// Tuning knobs for ChernoffTailBound.
struct ChernoffOptions {
  // Warm start: θ* from a previous, nearby minimization (e.g. the N−1 step
  // of an admission scan, where θ*(N) drifts slowly with N). When positive,
  // the search first brackets the minimum inside
  // [theta_hint/bracket_factor, theta_hint*bracket_factor] ∩ (0, θ_max);
  // if the minimum is not interior to that window the search falls back to
  // the cold full-domain bracket, so a stale hint costs three extra
  // exponent evaluations but never a wrong answer. The default factor
  // covers a 2x drift in either direction — far more than adjacent scan
  // steps exhibit — while keeping the window several times narrower than
  // the cold bracket (a wide "warm" window would be no cheaper to search
  // than a cold start).
  double theta_hint = 0.0;
  double bracket_factor = 2.0;
};

// Computes inf_{θ in (0, theta_max)} exp(-θt + log_mgf(θ)).
//
// `log_mgf` must be the cumulant generating function log E[e^{θT}], finite
// and convex on (0, theta_max); theta_max may be +infinity (the search then
// expands geometrically until it brackets the minimum; if the expansion
// exhausts its iteration budget without bracketing, the result reports
// converged == false and carries the best point seen — still a valid upper
// bound, since every θ > 0 yields one). The returned bound is clamped to 1
// (the trivial bound, attained whenever E[T] >= t).
ChernoffResult ChernoffTailBound(const std::function<double(double)>& log_mgf,
                                 double theta_max, double t,
                                 const ChernoffOptions& options = {});

}  // namespace zonestream::core

#endif  // ZONESTREAM_CORE_CHERNOFF_H_
