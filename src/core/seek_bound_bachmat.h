// Bachmat-style stochastic SCAN seek bound (ROADMAP item 2; see
// PAPERS.md, Bachmat's increasing-subsequence analysis of disk-arm tours
// and docs/BOUNDS.md for the full derivation).
//
// The paper's admission bound charges the Oyang worst case
// SEEK(N) = (N+1)·seek(CYL/(N+1)) for the accumulated seek time of a
// round — the equidistant adversarial placement. Bachmat's analysis of
// SCAN tour length shows the *typical* tour is far shorter: with N
// requests placed uniformly at random, the sweep's gaps are the spacings
// of N uniform points on [0, CYL], i.e. jointly Dirichlet(1,...,1) with
// each gap marginally CYL·Beta(1, N) ~ CYL/N in scale — which for the
// sqrt seek regime gives the O(sqrt(N))-total-seek behavior, versus the
// worst case's Θ(sqrt(N)) with a much larger constant.
//
// This module turns that distributional view into a usable *bound* on the
// seek component of the round MGF. Dirichlet spacings are negatively
// associated, and x ↦ e^{θ·seek(x)} is nondecreasing, so
//
//   E[e^{θ·Σ seek(G_i)}] <= Π E[e^{θ·seek(G_i)}]
//                         = (E[e^{θ·seek(CYL·B)}])^{N+1},  B ~ Beta(1, N),
//
// and the seek log-MGF term of the Chernoff machinery may use
//
//   SeekLogMgf(N, θ) = min(θ·SEEK_eq(N), (N+1)·log E[e^{θ·seek(CYL·B)}]).
//
// The min-clamp keeps the term no looser than the equidistant worst case
// for every (N, θ) by construction: since seek() is concave, the
// accumulated seek of ANY placement is at most SEEK_eq(N) almost surely,
// so θ·SEEK_eq(N) is itself a valid upper bound on the seek log-MGF.
//
// Scope: the Bachmat term assumes uniform random request placement (the
// simulator's default and the paper's §3 setting). Under adversarial
// placement only the equidistant term is valid — which is exactly what
// the clamp degrades to.
#ifndef ZONESTREAM_CORE_SEEK_BOUND_BACHMAT_H_
#define ZONESTREAM_CORE_SEEK_BOUND_BACHMAT_H_

#include "disk/seek_model.h"

namespace zonestream::core {

// Which seek term the analytic round model charges.
enum class SeekBoundKind {
  // The paper's deterministic worst case (Oyang equidistant placement).
  kEquidistant,
  // Bachmat-style distributional bound under uniform placement, clamped
  // to never exceed the equidistant term.
  kBachmat,
};

// Human-readable name ("equidistant" / "bachmat") for CLI/bench output.
const char* SeekBoundKindName(SeekBoundKind kind);

// Moments of the per-gap seek time seek(CYL·B), B ~ Beta(1, n).
struct BachmatGapMoments {
  double mean_s = 0.0;
  double variance_s2 = 0.0;
};

// E[e^{θ·seek(CYL·B)}] with B ~ Beta(1, n), by panel Gauss-Legendre
// quadrature against the polynomial density n(1-x)^{n-1} (panels grow
// geometrically from the 1/n scale, with a breakpoint at the seek
// model's threshold fraction). Requires n >= 1, θ >= 0.
double BachmatGapSeekMgf(const disk::SeekTimeModel& seek, int cylinders,
                         int n, double theta);

// Mean/variance of one gap's seek time under uniform placement.
BachmatGapMoments BachmatGapSeekMoments(const disk::SeekTimeModel& seek,
                                        int cylinders, int n);

// The clamped seek log-MGF term:
//   min(θ·OyangSeekBound(n), (n+1)·log BachmatGapSeekMgf(n, θ)).
// Returns 0 for n == 0 or θ == 0.
double BachmatSeekLogMgf(const disk::SeekTimeModel& seek, int cylinders,
                         int n, double theta);

// Expected accumulated seek time (n+1)·E[seek(CYL·B)], clamped by the
// equidistant worst case. Feeds the CLT/Chebyshev baselines' moments in
// Bachmat mode.
double BachmatExpectedSeekTotal(const disk::SeekTimeModel& seek,
                                int cylinders, int n);

// Upper bound on the variance of the accumulated seek time: negative
// association also gives Var(Σ seek(G_i)) <= Σ Var(seek(G_i)) =
// (n+1)·Var(seek(CYL·B)).
double BachmatSeekTotalVarianceBound(const disk::SeekTimeModel& seek,
                                     int cylinders, int n);

}  // namespace zonestream::core

#endif  // ZONESTREAM_CORE_SEEK_BOUND_BACHMAT_H_
