#include "core/mixed_workload.h"

#include <cmath>
#include <limits>

#include "common/check.h"
#include "numeric/quadrature.h"
#include "numeric/special_functions.h"

namespace zonestream::core {

double MeanDiscreteServiceTime(const disk::DiskGeometry& geometry,
                               const disk::SeekTimeModel& seek,
                               const DiscreteWorkload& discrete) {
  ZS_CHECK_GT(discrete.mean_size_bytes, 0.0);
  // Mean seek over the distance between two uniform cylinders (triangular
  // density 2(1 - d/CYL)/CYL).
  const double cyl = geometry.cylinders();
  const double mean_seek = numeric::CompositeGaussLegendre(
      [&seek, cyl](double d) {
        return seek.SeekTime(d) * 2.0 * (1.0 - d / cyl) / cyl;
      },
      0.0, cyl, 64);
  return mean_seek + geometry.rotation_time() / 2.0 +
         discrete.mean_size_bytes * geometry.InverseRateMoment(1);
}

MixedWorkloadModel::MixedWorkloadModel(
    std::unique_ptr<MultiClassServiceModel> multiclass,
    double mean_discrete_service)
    : multiclass_(std::move(multiclass)),
      mean_discrete_service_(mean_discrete_service) {}

common::StatusOr<MixedWorkloadModel> MixedWorkloadModel::Create(
    const disk::DiskGeometry& geometry, const disk::SeekTimeModel& seek,
    double continuous_mean_bytes, double continuous_variance_bytes2,
    const DiscreteWorkload& discrete) {
  if (discrete.mean_size_bytes <= 0.0 ||
      discrete.variance_size_bytes2 <= 0.0) {
    return common::Status::InvalidArgument(
        "discrete workload moments must be positive");
  }
  std::vector<StreamClass> classes = {
      {"continuous", continuous_mean_bytes, continuous_variance_bytes2},
      {"discrete", discrete.mean_size_bytes, discrete.variance_size_bytes2},
  };
  auto multiclass =
      MultiClassServiceModel::Create(geometry, seek, std::move(classes));
  if (!multiclass.ok()) return multiclass.status();
  return MixedWorkloadModel(
      std::make_unique<MultiClassServiceModel>(*std::move(multiclass)),
      MeanDiscreteServiceTime(geometry, seek, discrete));
}

int MixedWorkloadModel::GuaranteedDiscreteSlots(int n, double t,
                                                double delta) const {
  ZS_CHECK_GE(n, 0);
  return multiclass_->MaxAdditionalStreams({n, 0}, /*class_index=*/1, t,
                                           delta);
}

double MixedWorkloadModel::MixedLateBound(int n, int d, double t) const {
  return multiclass_->LateBound({n, d}, t).bound;
}

double MixedWorkloadModel::ExpectedLeftoverTime(int n, double t) const {
  ZS_CHECK_GE(n, 0);
  ZS_CHECK_GT(t, 0.0);
  if (n == 0) return t;
  const ServiceTimeMoments moments = multiclass_->Moments({n, 0});
  const double sigma = std::sqrt(moments.variance_s2);
  if (sigma == 0.0) return std::fmax(0.0, t - moments.mean_s);
  // E[max(0, t - T)] for T ~ N(mu, sigma^2):
  //   (t - mu) Phi(z) + sigma phi(z), z = (t - mu) / sigma.
  const double z = (t - moments.mean_s) / sigma;
  const double phi = std::exp(-0.5 * z * z) / std::sqrt(2.0 * M_PI);
  const double value =
      (t - moments.mean_s) * numeric::NormalCdf(z) + sigma * phi;
  // The analytic mean uses the Oyang seek *bound*, so this is a slightly
  // pessimistic leftover estimate; clamp into [0, t].
  return std::fmin(std::fmax(value, 0.0), t);
}

double MixedWorkloadModel::ExpectedDiscreteThroughput(int n, double t) const {
  return ExpectedLeftoverTime(n, t) / mean_discrete_service_;
}

double MixedWorkloadModel::SustainableDiscreteRate(int n, double t,
                                                   double rho) const {
  ZS_CHECK_GT(rho, 0.0);
  ZS_CHECK_LT(rho, 1.0);
  return rho * ExpectedDiscreteThroughput(n, t) / t;
}

double MixedWorkloadModel::ApproximateDiscreteResponseTime(
    int n, double t, double lambda) const {
  ZS_CHECK_GE(lambda, 0.0);
  const double leftover = ExpectedLeftoverTime(n, t);
  if (leftover <= 0.0) return std::numeric_limits<double>::infinity();
  const double rho = lambda * mean_discrete_service_ / (leftover / t);
  if (rho >= 1.0) return std::numeric_limits<double>::infinity();
  const double busy = std::fmin(multiclass_->Moments({n, 0}).mean_s, t);
  const double gate_wait = busy * busy / (2.0 * t);
  const double queue_wait = rho / (1.0 - rho) * mean_discrete_service_;
  return gate_wait + queue_wait + mean_discrete_service_;
}

}  // namespace zonestream::core
