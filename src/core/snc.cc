#include "core/snc.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace zonestream::core {

namespace {

// Independent 1-D minimizer over θ in (0, theta_max): a log-spaced grid
// locates the (quasi-)convex minimum's neighborhood, then golden-section
// refines the bracket. Deliberately NOT ChernoffTailBound/Brent — the SNC
// engine must share no optimizer code with the paper's Chernoff path so
// that agreeing N_max tables cross-check both numerical stacks.
SncBoundResult MinimizeExponentOverDomain(
    const std::function<double(double)>& exponent, double theta_max) {
  ZS_CHECK_GT(theta_max, 0.0);
  double hi = std::isfinite(theta_max) ? theta_max * (1.0 - 1e-9) : 1.0;
  if (!std::isfinite(theta_max)) {
    // Expand until the exponent stops decreasing (convexity ⇒ the
    // minimum is then bracketed).
    for (int i = 0; i < 200 && exponent(2.0 * hi) < exponent(hi); ++i) {
      hi *= 2.0;
    }
    hi *= 2.0;
  }

  constexpr int kGridPoints = 96;
  const double lo = hi * 1e-7;
  const double log_lo = std::log(lo);
  const double step = (std::log(hi) - log_lo) / (kGridPoints - 1);
  double grid[kGridPoints];
  int best_index = 0;
  double best_value = std::numeric_limits<double>::infinity();
  for (int i = 0; i < kGridPoints; ++i) {
    grid[i] = std::exp(log_lo + step * static_cast<double>(i));
    const double value = exponent(grid[i]);
    if (value < best_value) {
      best_value = value;
      best_index = i;
    }
  }

  // Golden-section refinement inside the neighboring grid points.
  constexpr double kInvPhi = 0.6180339887498949;  // 1/φ
  double a = best_index > 0 ? grid[best_index - 1] : lo * 0.5;
  double b = best_index + 1 < kGridPoints ? grid[best_index + 1] : hi;
  double x1 = b - kInvPhi * (b - a);
  double x2 = a + kInvPhi * (b - a);
  double f1 = exponent(x1);
  double f2 = exponent(x2);
  // ~60 shrinks of factor 1/φ reduce the bracket by ~1e-12.
  for (int i = 0; i < 90 && (b - a) > 1e-12 * hi; ++i) {
    if (f1 <= f2) {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - kInvPhi * (b - a);
      f1 = exponent(x1);
    } else {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + kInvPhi * (b - a);
      f2 = exponent(x2);
    }
  }
  const double theta_refined = 0.5 * (a + b);
  const double value_refined = exponent(theta_refined);

  SncBoundResult result;
  result.converged = true;
  // Sub-ulp wobble of the refinement must not report a value above the
  // best grid point.
  if (value_refined <= best_value) {
    result.theta_star = theta_refined;
    result.exponent = value_refined;
  } else {
    result.theta_star = grid[best_index];
    result.exponent = best_value;
  }
  if (result.exponent >= 0.0) {
    // The exponent never dips below 0 in the window: the trivial bound.
    result.bound = 1.0;
    result.theta_star = 0.0;
    result.exponent = 0.0;
  } else {
    result.bound = std::exp(result.exponent);
  }
  return result;
}

SncBoundResult ZeroStreamsBound() {
  SncBoundResult result;
  result.bound = 0.0;
  result.exponent = -std::numeric_limits<double>::infinity();
  result.converged = true;
  return result;
}

}  // namespace

SncEnvelope EnvelopeForModel(const ServiceTimeModel& model) {
  SncEnvelope envelope;
  envelope.name = "stream";
  envelope.theta_max = model.theta_max();
  envelope.sigma = 0.0;
  envelope.rho = [model](double theta) {
    return model.PerRequestLogMgf(theta);
  };
  return envelope;
}

std::vector<SncEnvelope> EnvelopesForClasses(
    const MultiClassServiceModel& model) {
  std::vector<SncEnvelope> envelopes;
  envelopes.reserve(model.num_classes());
  for (int c = 0; c < model.num_classes(); ++c) {
    ClassCounts one(model.num_classes(), 0);
    one[c] = 1;
    SncEnvelope envelope;
    envelope.name = model.stream_class(c).name;
    envelope.theta_max = model.ThetaMax(one);
    envelope.sigma = 0.0;
    // Per-stream round demand of class c: rotation + class transfer. The
    // mix log-MGF at the unit vector includes the shared seek term, which
    // belongs to the service curve, not the arrival — subtract it.
    const double seek_one = model.SeekBound(one);
    envelope.rho = [model, one, seek_one](double theta) {
      return model.LogMgf(one, theta) - theta * seek_one;
    };
    envelopes.push_back(std::move(envelope));
  }
  return envelopes;
}

SncEngine::SncEngine(const ServiceTimeModel& model, double t)
    : model_(model), t_(t) {
  ZS_CHECK_GT(t, 0.0);
  ZS_CHECK(std::isfinite(t));
}

double SncEngine::ArrivalEnvelope(int n, double theta) const {
  ZS_CHECK_GE(n, 0);
  return static_cast<double>(n) * model_.PerRequestLogMgf(theta);
}

double SncEngine::ServiceDeficit(int n, double theta) const {
  return model_.SeekLogMgf(n, theta);
}

SncBoundResult SncEngine::Minimize(
    const std::function<double(double)>& exponent) const {
  return MinimizeExponentOverDomain(exponent, model_.theta_max());
}

SncBoundResult SncEngine::RoundDelayBound(int n) const {
  ZS_CHECK_GE(n, 0);
  if (n == 0) return ZeroStreamsBound();
  const double t = t_;
  const auto exponent = [this, n, t](double theta) {
    return ArrivalEnvelope(n, theta) + ServiceDeficit(n, theta) - theta * t;
  };
  return Minimize(exponent);
}

SncBoundResult SncEngine::CumulativeLatenessBound(int n, double slack_s,
                                                  int horizon) const {
  ZS_CHECK_GE(n, 0);
  ZS_CHECK_GE(slack_s, 0.0);
  if (n == 0) return ZeroStreamsBound();
  const double t = t_;
  const auto exponent = [this, n, t, slack_s, horizon](double theta) {
    // Per-round drift of the lateness random walk at θ.
    const double drift =
        ArrivalEnvelope(n, theta) + ServiceDeficit(n, theta) - theta * t;
    double log_sum;
    if (horizon <= 0) {
      if (drift >= 0.0) return std::numeric_limits<double>::infinity();
      // log Σ_{k>=1} e^{k·drift} = drift - log(1 - e^{drift}).
      log_sum = drift - std::log1p(-std::exp(drift));
    } else if (drift >= -1e-15) {
      // Flat or positive drift: bound the finite sum by H·e^{H·drift}.
      log_sum = std::log(static_cast<double>(horizon)) +
                std::fmax(static_cast<double>(horizon) * drift, drift);
    } else {
      // log(e^d (1 - e^{Hd}) / (1 - e^d)).
      log_sum = drift +
                std::log1p(-std::exp(static_cast<double>(horizon) * drift)) -
                std::log1p(-std::exp(drift));
    }
    return -theta * slack_s + log_sum;
  };
  return Minimize(exponent);
}

MaxStreamsResult SncMaxStreamsChecked(const ServiceTimeModel& model,
                                      double t, double delta, int n_cap) {
  ZS_CHECK_GT(n_cap, 0);
  MaxStreamsResult result;
  result.error = ValidateAdmissionQuery(t, delta);
  if (result.error != AdmissionQueryError::kOk) return result;
  const SncEngine engine(model, t);
  // The round-delay bound is monotone in n, so scan with early exit —
  // same search shape as the Chernoff path, different bound evaluations.
  for (int n = 1; n <= n_cap; ++n) {
    if (engine.RoundDelayBound(n).bound > delta) break;
    result.n_max = n;
  }
  return result;
}

int SncMaxStreams(const ServiceTimeModel& model, double t, double delta,
                  int n_cap) {
  return SncMaxStreamsChecked(model, t, delta, n_cap).n_max;
}

SncBoundResult SncRoundDelayBoundMixed(const MultiClassServiceModel& model,
                                       const ClassCounts& counts, double t) {
  ZS_CHECK_GT(t, 0.0);
  const int total = MultiClassServiceModel::TotalStreams(counts);
  if (total == 0) return ZeroStreamsBound();
  const std::vector<SncEnvelope> envelopes = EnvelopesForClasses(model);
  const double seek = model.SeekBound(counts);
  const double theta_max = model.ThetaMax(counts);
  const auto exponent = [&envelopes, &counts, seek, t](double theta) {
    double value = theta * (seek - t);
    for (size_t c = 0; c < envelopes.size() && c < counts.size(); ++c) {
      if (counts[c] == 0) continue;
      value += static_cast<double>(counts[c]) * envelopes[c].rho(theta);
    }
    return value;
  };
  return MinimizeExponentOverDomain(exponent, theta_max);
}

}  // namespace zonestream::core
