// Heterogeneous stream classes (extension of §3).
//
// The paper's model assumes i.i.d. fragment sizes across the N streams of
// a round. Real servers mix classes — e.g. MPEG-2 video at 200 KB/round,
// audio at 16 KB/round, low-res previews — and §2.1 explicitly allows
// display bandwidth to vary across objects. The transform machinery
// extends naturally: with n_c streams of class c,
//
//   log M_{T}(θ) = θ·SEEK(Σ n_c) + (Σ n_c)·log M_rot(θ)
//                  + Σ_c n_c · log M_trans,c(θ)
//
// and the Chernoff bound applies unchanged. Admission becomes a region
// over class-count vectors rather than a single N_max.
//
// Per-stream glitch probabilities use the §3.3 argument (SCAN order is
// driven by the uniformly random positions, so the set of streams served
// late is exchangeable across ALL streams regardless of class); the
// k-subset service times are approximated by scaling every class count by
// k/N, which is exact in expectation.
#ifndef ZONESTREAM_CORE_MULTICLASS_H_
#define ZONESTREAM_CORE_MULTICLASS_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/chernoff.h"
#include "core/service_time_model.h"
#include "core/transfer_models.h"
#include "disk/disk_geometry.h"
#include "disk/seek_model.h"

namespace zonestream::core {

// One stream class: a name plus the fragment-size statistics of its
// per-round requests.
struct StreamClass {
  std::string name;
  double mean_size_bytes = 0.0;
  double variance_size_bytes2 = 0.0;
};

// A class mix: counts[c] streams of class c (parallel to the model's
// class list). Missing trailing entries are treated as zero.
using ClassCounts = std::vector<int>;

// Analytic round service-time model for a heterogeneous mix of stream
// classes on one multi-zone disk. Immutable and thread-compatible.
class MultiClassServiceModel {
 public:
  // Builds per-class moment-matched Gamma transfer models against the
  // given multi-zone geometry (§3.2 moment matching per class).
  static common::StatusOr<MultiClassServiceModel> Create(
      const disk::DiskGeometry& geometry, const disk::SeekTimeModel& seek,
      std::vector<StreamClass> classes);

  int num_classes() const { return static_cast<int>(classes_.size()); }
  const StreamClass& stream_class(int c) const;

  // Total streams in a mix.
  static int TotalStreams(const ClassCounts& counts);

  // Worst-case SCAN seek bound for the mix (depends only on the total).
  double SeekBound(const ClassCounts& counts) const;

  // log E[e^{θ T}] for the round serving `counts`.
  double LogMgf(const ClassCounts& counts, double theta) const;

  // Supremum of the admissible θ domain for the mix: the smallest
  // per-class α among classes present in the mix.
  double ThetaMax(const ClassCounts& counts) const;

  // Chernoff bound on P[T >= t] for the mix (eq. 3.1.5 generalized).
  ChernoffResult LateBound(const ClassCounts& counts, double t) const;

  // Mean/variance of the round service time for the mix.
  ServiceTimeMoments Moments(const ClassCounts& counts) const;

  // Bound on the probability that a given stream of the mix suffers a
  // glitch in one round (eq. 3.3.3 generalized; see the header comment
  // for the k-subset approximation).
  double GlitchBoundPerRound(const ClassCounts& counts, double t) const;

  // Bound on P[a stream suffers >= g glitches in m rounds] under the mix
  // (eq. 3.3.5 with the generalized b_glitch).
  double ErrorBound(const ClassCounts& counts, double t, int m, int g) const;

  // True iff the mix satisfies the per-round QoS contract
  // b_late(counts, t) <= delta.
  bool Admissible(const ClassCounts& counts, double t, double delta) const;

  // Largest additional count of class `class_index` admissible on top of
  // `base` under b_late <= delta (0 if none).
  int MaxAdditionalStreams(const ClassCounts& base, int class_index, double t,
                           double delta, int cap = 4096) const;

  // Capacity frontier for a two-class model: for each count n0 of class 0
  // from 0 up to its solo maximum, the largest admissible count of class 1.
  // Returns pairs (n0, max n1).
  std::vector<std::pair<int, int>> CapacityFrontier(double t,
                                                    double delta) const;

 private:
  MultiClassServiceModel(const disk::SeekTimeModel& seek, int cylinders,
                         double rotation_time_s,
                         std::vector<StreamClass> classes,
                         std::vector<GammaTransferModel> transfers);

  double RotationLogMgf(double theta) const;
  // log-MGF with fractional per-class counts (used by the k-subset
  // scaling in the glitch bound).
  double LogMgfFractional(const std::vector<double>& counts, double total,
                          double theta) const;
  ChernoffResult LateBoundFractional(const std::vector<double>& counts,
                                     double total, double t) const;

  disk::SeekTimeModel seek_;
  int cylinders_;
  double rotation_time_s_;
  std::vector<StreamClass> classes_;
  std::vector<GammaTransferModel> transfers_;
};

}  // namespace zonestream::core

#endif  // ZONESTREAM_CORE_MULTICLASS_H_
