// Stochastic network calculus admission engine (ROADMAP item 2).
//
// Jiang's stochastic network calculus ("Analysis of Stochastic Service
// Guarantees in Communication Networks: A Basic Calculus", PAPERS.md)
// reframes the paper's admission problem in arrival/service-curve terms:
//
//   * Each stream class contributes a stochastic arrival envelope — an
//     MGF (v.b.c.-style) bounding function for the work it injects per
//     round: log E[e^{θ·demand over k rounds}] <= σ(θ) + k·ρ(θ). For the
//     paper's i.i.d. per-round demand (rotational latency + transfer
//     per request), σ = 0 and ρ(θ) is the per-round per-stream log-MGF.
//   * The disk round process offers a stochastic service curve: a
//     rate-latency curve with rate 1 (one second of service per second
//     of round) whose per-round latency deficit is the seek overhead —
//     entering the exponent as the seek log-MGF term (deterministic
//     θ·SEEK(n) under the equidistant bound, distributional under the
//     Bachmat bound, see seek_bound_bachmat.h).
//   * The SNC delay-bound theorem then bounds the probability a round's
//     demand exceeds its service:
//       P[T_n > t] <= inf_θ exp(n·ρ(θ) + σ_seek(n, θ) - θ·t).
//
// At horizon 1 this exponent coincides mathematically with the paper's
// Chernoff bound (both are the Legendre transform of the same round
// CGF), which is precisely what makes it the cross-check ROADMAP asks
// for: the two engines share no bound/optimizer code (SncEngine carries
// its own grid + golden-section minimizer; the Chernoff path uses Brent
// via chernoff.cc/late_bound_scan.cc), so agreement of their N_max
// tables end-to-end validates both numerical stacks. The genuinely new
// capability is the multi-round bound: CumulativeLatenessBound bounds
// the probability that the server ever falls a given slack behind over a
// whole window of rounds — a busy-period/backlog union bound the
// Chernoff machinery does not express. docs/BOUNDS.md has derivations.
#ifndef ZONESTREAM_CORE_SNC_H_
#define ZONESTREAM_CORE_SNC_H_

#include <functional>
#include <string>
#include <vector>

#include "core/admission.h"
#include "core/multiclass.h"
#include "core/service_time_model.h"

namespace zonestream::core {

// MGF-style stochastic arrival envelope of one stream class: the demand
// a single stream of the class injects over k rounds satisfies
// log E[e^{θ·demand}] <= sigma + k·rho(θ) for θ in [0, theta_max).
struct SncEnvelope {
  std::string name;
  double theta_max = 0.0;
  double sigma = 0.0;                  // burst term (0 for i.i.d. rounds)
  std::function<double(double)> rho;   // per-round log-MGF per stream
};

// Envelope of the (single-class) round model's per-stream demand:
// rho(θ) = PerRequestLogMgf(θ) (rotational latency + transfer).
SncEnvelope EnvelopeForModel(const ServiceTimeModel& model);

// One envelope per class of a heterogeneous mix (CBR classes have
// near-degenerate transfer MGFs, VBR classes fat ones).
std::vector<SncEnvelope> EnvelopesForClasses(
    const MultiClassServiceModel& model);

// Result of one SNC bound optimization.
struct SncBoundResult {
  double bound = 1.0;       // the probability bound, clamped to [0, 1]
  double theta_star = 0.0;  // optimizing θ (0 when the trivial bound wins)
  double exponent = 0.0;    // log of the unclamped bound at θ*
  bool converged = false;
};

// The SNC admission engine for one disk's round process. Immutable and
// thread-compatible; owns a copy of the model (cheap — the transfer
// model is shared).
class SncEngine {
 public:
  // `t` is the round length in seconds (must be positive and finite).
  SncEngine(const ServiceTimeModel& model, double t);

  const ServiceTimeModel& model() const { return model_; }
  double round_length() const { return t_; }

  // Aggregate arrival-envelope rate of n streams at θ: n·rho(θ).
  double ArrivalEnvelope(int n, double theta) const;

  // Service-curve latency deficit at θ: the seek log-MGF term of a round
  // with n requests (θ·SEEK(n) equidistant; distributional for Bachmat).
  double ServiceDeficit(int n, double theta) const;

  // Horizon-1 delay bound: P[round with n streams overruns t]. Returns 0
  // for n == 0.
  SncBoundResult RoundDelayBound(int n) const;

  // Multi-round backlog bound: P[the cumulative lateness over some
  // prefix of up to `horizon` consecutive rounds exceeds `slack_s`],
  //   P[max_{k<=H} Σ_{i<=k} (T_i - t) >= b]
  //     <= inf_θ e^{-θb} Σ_{k=1..H} e^{k·(K_n(θ) - θt)},
  // a union bound over busy-period starts with i.i.d. rounds.
  // `horizon` <= 0 means unbounded: the geometric sum converges whenever
  // the per-round drift K_n(θ) - θt is negative at the optimizing θ; if
  // no θ gives negative drift the bound is the trivial 1. `slack_s` must
  // be >= 0.
  SncBoundResult CumulativeLatenessBound(int n, double slack_s,
                                         int horizon = 0) const;

 private:
  // Independent 1-D minimizer (log-spaced grid bracket + golden-section
  // refinement) — deliberately NOT ChernoffTailBound, so the SNC column
  // of the comparison harness shares no optimizer code with the paper
  // engine.
  SncBoundResult Minimize(
      const std::function<double(double)>& exponent) const;

  ServiceTimeModel model_;
  double t_;
};

// Largest N whose SNC round-delay bound stays within delta; sentinel 0
// for invalid queries (same ValidateAdmissionQuery contract as the rest
// of the MaxStreams* family).
int SncMaxStreams(const ServiceTimeModel& model, double t, double delta,
                  int n_cap = 4096);

// As SncMaxStreams, with the structured reason.
MaxStreamsResult SncMaxStreamsChecked(const ServiceTimeModel& model,
                                      double t, double delta,
                                      int n_cap = 4096);

// Horizon-1 SNC delay bound for a heterogeneous class mix: the per-class
// envelopes compose additively in the exponent,
//   P[T > t] <= inf_θ exp(Σ_c n_c·rho_c(θ) + θ·SEEK(Σ n_c) - θ·t).
// Cross-checked against MultiClassServiceModel::LateBound in tests.
SncBoundResult SncRoundDelayBoundMixed(const MultiClassServiceModel& model,
                                       const ClassCounts& counts, double t);

}  // namespace zonestream::core

#endif  // ZONESTREAM_CORE_SNC_H_
