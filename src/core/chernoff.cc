#include "core/chernoff.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "numeric/optimize.h"

namespace zonestream::core {

namespace {

// Finalizes a minimization outcome into the clamped ChernoffResult.
ChernoffResult FromMinimum(double theta, double value, bool converged) {
  ChernoffResult result;
  result.theta_star = theta;
  result.exponent = value;
  result.converged = converged;
  if (value >= 0.0) {
    // The optimized bound is no better than the trivial bound P <= 1, which
    // happens exactly when E[T] >= t (the exponent's slope at 0 is
    // E[T] - t >= 0).
    result.bound = 1.0;
    result.theta_star = 0.0;
    result.exponent = 0.0;
  } else {
    result.bound = std::exp(value);
  }
  return result;
}

numeric::MinimizeResult Minimize(
    const std::function<double(double)>& exponent, double lo, double hi,
    double tolerance = 1e-12,
    double initial_x = std::numeric_limits<double>::quiet_NaN()) {
  numeric::MinimizeOptions options;
  options.tolerance = tolerance;
  options.max_iterations = 300;
  options.initial_x = initial_x;
  return numeric::BrentMinimize(exponent, lo, hi, options);
}

}  // namespace

ChernoffResult ChernoffTailBound(const std::function<double(double)>& log_mgf,
                                 double theta_max, double t,
                                 const ChernoffOptions& options) {
  ZS_CHECK_GT(theta_max, 0.0);

  const auto exponent = [&log_mgf, t](double theta) {
    return -theta * t + log_mgf(theta);
  };

  // Hard upper edge of the admissible domain (the exponent diverges to
  // +inf at theta_max, so the minimum of the convex exponent is interior).
  const double domain_hi = std::isfinite(theta_max)
                               ? theta_max * (1.0 - 1e-9)
                               : std::numeric_limits<double>::infinity();

  // Warm start: try a narrow bracket around the hint first. For a convex
  // exponent, g(mid) <= g at both window edges proves the minimum is
  // interior to the window; otherwise the hint is stale and we fall back.
  if (options.theta_hint > 0.0 && options.bracket_factor > 1.0) {
    const double hint = std::min(options.theta_hint, domain_hi);
    const double lo_w = hint / options.bracket_factor;
    const double hi_w = std::min(hint * options.bracket_factor, domain_hi);
    if (lo_w < hint && hint < hi_w) {
      const double g_lo = exponent(lo_w);
      const double g_mid = exponent(hint);
      const double g_hi = exponent(hi_w);
      if (g_mid <= g_lo && g_mid <= g_hi) {
        // Seed Brent at the hint itself and relax the x-tolerance to 1e-8:
        // Brent's stopping rule is interval-based, so the 1e-12 cold
        // tolerance forces ~10 extra interval-shrinking evaluations that
        // buy nothing in the *value* — the exponent is quadratically flat
        // at its minimum, so an x error of 1e-8·θ* perturbs g by
        // ~curvature·(1e-8·θ*)²/2, orders of magnitude below the 1e-12
        // warm/cold agreement contract (chernoff_test verifies it).
        const numeric::MinimizeResult min =
            Minimize(exponent, lo_w, hi_w, /*tolerance=*/1e-8, hint);
        return FromMinimum(min.x, min.value, min.converged);
      }
    }
  }

  // Cold start: establish a finite search interval [lo, hi].
  double hi;
  if (std::isfinite(theta_max)) {
    hi = domain_hi;
  } else {
    // Expand geometrically until the exponent starts increasing (the convex
    // function has passed its minimum) or until the bound is astronomically
    // small anyway.
    hi = 1.0;
    double prev = exponent(hi);
    bool bracketed = false;
    for (int i = 0; i < 200; ++i) {
      const double next_hi = hi * 2.0;
      const double next = exponent(next_hi);
      if (next >= prev || next < -1e4) {
        hi = next_hi;
        bracketed = true;
        break;
      }
      hi = next_hi;
      prev = next;
    }
    if (!bracketed) {
      // The exponent was still decreasing when the expansion budget ran
      // out, so the minimum may lie beyond hi and a minimization over
      // [hi*1e-12, hi] would silently return a bracket edge. Report
      // non-convergence, carrying the deepest point seen — e^{g(θ)} at any
      // θ > 0 is still a valid (just not optimal) upper bound.
      ChernoffResult result = FromMinimum(hi, prev, /*converged=*/false);
      result.converged = false;
      return result;
    }
  }
  const double lo = hi * 1e-12;

  const numeric::MinimizeResult min = Minimize(exponent, lo, hi);
  return FromMinimum(min.x, min.value, min.converged);
}

}  // namespace zonestream::core
