#include "core/chernoff.h"

#include <cmath>
#include <limits>

#include "common/check.h"
#include "numeric/optimize.h"

namespace zonestream::core {

ChernoffResult ChernoffTailBound(const std::function<double(double)>& log_mgf,
                                 double theta_max, double t) {
  ZS_CHECK_GT(theta_max, 0.0);
  ChernoffResult result;

  const auto exponent = [&log_mgf, t](double theta) {
    return -theta * t + log_mgf(theta);
  };

  // Establish a finite search interval [lo, hi].
  double hi;
  if (std::isfinite(theta_max)) {
    // Stay strictly inside the MGF domain; the exponent diverges to +inf at
    // theta_max, so the minimum of the convex exponent is interior.
    hi = theta_max * (1.0 - 1e-9);
  } else {
    // Expand geometrically until the exponent starts increasing (the convex
    // function has passed its minimum) or until the bound is astronomically
    // small anyway.
    hi = 1.0;
    double prev = exponent(hi);
    for (int i = 0; i < 200; ++i) {
      const double next_hi = hi * 2.0;
      const double next = exponent(next_hi);
      if (next >= prev || next < -1e4) {
        hi = next_hi;
        break;
      }
      hi = next_hi;
      prev = next;
    }
  }
  const double lo = hi * 1e-12;

  numeric::MinimizeOptions options;
  options.tolerance = 1e-12;
  options.max_iterations = 300;
  const numeric::MinimizeResult min =
      numeric::BrentMinimize(exponent, lo, hi, options);

  result.theta_star = min.x;
  result.exponent = min.value;
  result.converged = min.converged;
  if (min.value >= 0.0) {
    // The optimized bound is no better than the trivial bound P <= 1, which
    // happens exactly when E[T] >= t (the exponent's slope at 0 is
    // E[T] - t >= 0).
    result.bound = 1.0;
    result.theta_star = 0.0;
    result.exponent = 0.0;
  } else {
    result.bound = std::exp(min.value);
  }
  return result;
}

}  // namespace zonestream::core
