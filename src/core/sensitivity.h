// Admission sensitivity analysis: how N_max responds to perturbations of
// the disk and workload parameters. Operators use this to know which
// measurement errors matter (fragment statistics? seek curve? rotation
// speed?) and how much headroom a safety margin on each buys.
//
// The report perturbs one parameter at a time by a relative factor and
// recomputes N_max under the per-round criterion — a deterministic,
// model-level analysis (no simulation).
#ifndef ZONESTREAM_CORE_SENSITIVITY_H_
#define ZONESTREAM_CORE_SENSITIVITY_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "disk/disk_geometry.h"
#include "disk/seek_model.h"

namespace zonestream::core {

// One perturbed parameter's effect.
struct SensitivityEntry {
  std::string parameter;
  int n_max_down = 0;      // N_max with the parameter scaled by 1 - delta
  int n_max_baseline = 0;
  int n_max_up = 0;        // N_max with the parameter scaled by 1 + delta
};

// The full report.
struct SensitivityReport {
  int n_max_baseline = 0;
  std::vector<SensitivityEntry> entries;
};

// Perturbs, one at a time: mean fragment size, fragment-size stddev,
// rotation time, seek-time scale (all four seek coefficients jointly),
// and the zone-capacity spread (C_max - C_min around its midpoint).
// `relative_delta` is the +/- perturbation (e.g. 0.1 for +/-10%).
common::StatusOr<SensitivityReport> AnalyzeAdmissionSensitivity(
    const disk::DiskParameters& disk_parameters,
    const disk::SeekParameters& seek_parameters, double mean_size_bytes,
    double variance_size_bytes2, double round_length_s, double late_tolerance,
    double relative_delta = 0.1);

}  // namespace zonestream::core

#endif  // ZONESTREAM_CORE_SENSITIVITY_H_
