// Saddlepoint (Lugannani-Rice) approximation of P[T_N >= t] (extension).
//
// The paper contrasts its Chernoff *bound* with the CLT estimate of
// [CZ94]. The saddlepoint approximation sits between the two: it uses the
// same cumulant generating function K(θ) = log E[e^{θ T_N}] the Chernoff
// machinery already exposes, but instead of bounding, it approximates the
// tail with relative-error accuracy that is uniform far into the tail
// (unlike the CLT, whose absolute-error guarantee is useless at 1e-3
// probabilities):
//
//   θ̂ : K'(θ̂) = t                       (the saddlepoint)
//   w  = sign(θ̂) sqrt(2 (θ̂ t - K(θ̂)))
//   u  = θ̂ sqrt(K''(θ̂))
//   P[T >= t] ≈ 1 - Φ(w) - φ(w) (1/w - 1/u)
//
// It is an *estimate*, not a bound — admission driven by it trades the
// paper's hard guarantee for sharper capacity, which the A1 ablation
// quantifies against simulation.
#ifndef ZONESTREAM_CORE_SADDLEPOINT_H_
#define ZONESTREAM_CORE_SADDLEPOINT_H_

#include <functional>

#include "core/service_time_model.h"

namespace zonestream::core {

// Result of a saddlepoint evaluation.
struct SaddlepointResult {
  double probability = 0.0;  // estimated P[T >= t]
  double theta_hat = 0.0;    // saddlepoint
  bool converged = false;
};

// Lugannani-Rice tail estimate for a generic cumulant generating function
// `log_mgf`, finite on [0, theta_max). Derivatives are taken numerically
// (central differences with adaptive step). Near t = E[T] the direct
// formula degenerates (ŵ and û both vanish and 1/ŵ - 1/û cancels
// catastrophically); the implementation switches to the standard limiting
// form 1 - Φ(ŵ) - φ(ŵ)·ρ3/6 there (ρ3 the standardized third cumulant),
// which equals 1/2 - ρ3/(6√(2π)) exactly at the mean. Below the mean the
// estimate falls back to the Edgeworth-corrected normal tail
// 1 - Φ(z) + φ(z)·(ρ3/6)(z² - 1), which takes the same value at z = 0,
// so crossing t over E[T] is continuous.
SaddlepointResult SaddlepointTailProbability(
    const std::function<double(double)>& log_mgf, double theta_max, double t);

// Convenience wrapper for the round service-time model: estimated
// p_late(n, t). Compare with ServiceTimeModel::LateBound (a bound) and
// NormalApproxLateProbability (the CLT estimate).
SaddlepointResult SaddlepointLateProbability(const ServiceTimeModel& model,
                                             int n, double t);

// Largest N whose saddlepoint-estimated p_late stays within delta.
// Invalid (t, delta) queries return the sentinel 0 (see
// core::ValidateAdmissionQuery in admission.h).
int SaddlepointMaxStreams(const ServiceTimeModel& model, double t,
                          double delta, int n_cap = 4096);

}  // namespace zonestream::core

#endif  // ZONESTREAM_CORE_SADDLEPOINT_H_
