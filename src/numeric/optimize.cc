#include "numeric/optimize.h"

#include <cmath>

#include "common/check.h"

namespace zonestream::numeric {

MinimizeResult GoldenSectionMinimize(const std::function<double(double)>& f,
                                     double lo, double hi,
                                     const MinimizeOptions& options) {
  ZS_CHECK_LT(lo, hi);
  constexpr double kInvPhi = 0.6180339887498949;  // 1/φ

  MinimizeResult result;
  double a = lo;
  double b = hi;
  double x1 = b - kInvPhi * (b - a);
  double x2 = a + kInvPhi * (b - a);
  double f1 = f(x1);
  double f2 = f(x2);
  int iter = 0;
  while (iter < options.max_iterations &&
         (b - a) > options.tolerance * (std::fabs(x1) + std::fabs(x2) + 1e-30)) {
    if (f1 < f2) {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - kInvPhi * (b - a);
      f1 = f(x1);
    } else {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + kInvPhi * (b - a);
      f2 = f(x2);
    }
    ++iter;
  }
  result.x = (f1 < f2) ? x1 : x2;
  result.value = std::fmin(f1, f2);
  result.iterations = iter;
  result.converged = iter < options.max_iterations;
  return result;
}

MinimizeResult BrentMinimize(const std::function<double(double)>& f, double lo,
                             double hi, const MinimizeOptions& options) {
  ZS_CHECK_LT(lo, hi);
  constexpr double kGolden = 0.3819660112501051;  // 2 - φ
  constexpr double kTinyEps = 1e-30;

  MinimizeResult result;
  double a = lo;
  double b = hi;
  double x = (std::isfinite(options.initial_x) && options.initial_x > lo &&
              options.initial_x < hi)
                 ? options.initial_x
                 : a + kGolden * (b - a);
  double w = x;
  double v = x;
  double fx = f(x);
  double fw = fx;
  double fv = fx;
  double d = 0.0;
  double e = 0.0;

  int iter = 0;
  for (; iter < options.max_iterations; ++iter) {
    const double xm = 0.5 * (a + b);
    const double tol1 = options.tolerance * std::fabs(x) + kTinyEps;
    const double tol2 = 2.0 * tol1;
    if (std::fabs(x - xm) <= tol2 - 0.5 * (b - a)) {
      result.converged = true;
      break;
    }
    bool use_golden = true;
    if (std::fabs(e) > tol1) {
      // Fit a parabola through (v, fv), (w, fw), (x, fx).
      const double r = (x - w) * (fx - fv);
      double q = (x - v) * (fx - fw);
      double p = (x - v) * q - (x - w) * r;
      q = 2.0 * (q - r);
      if (q > 0.0) p = -p;
      q = std::fabs(q);
      const double etemp = e;
      e = d;
      if (std::fabs(p) < std::fabs(0.5 * q * etemp) && p > q * (a - x) &&
          p < q * (b - x)) {
        d = p / q;
        const double u_trial = x + d;
        if (u_trial - a < tol2 || b - u_trial < tol2) {
          d = (xm - x >= 0.0) ? tol1 : -tol1;
        }
        use_golden = false;
      }
    }
    if (use_golden) {
      e = (x >= xm) ? a - x : b - x;
      d = kGolden * e;
    }
    const double u =
        (std::fabs(d) >= tol1) ? x + d : x + ((d >= 0.0) ? tol1 : -tol1);
    const double fu = f(u);
    if (fu <= fx) {
      if (u >= x) {
        a = x;
      } else {
        b = x;
      }
      v = w;
      fv = fw;
      w = x;
      fw = fx;
      x = u;
      fx = fu;
    } else {
      if (u < x) {
        a = u;
      } else {
        b = u;
      }
      if (fu <= fw || w == x) {
        v = w;
        fv = fw;
        w = u;
        fw = fu;
      } else if (fu <= fv || v == x || v == w) {
        v = u;
        fv = fu;
      }
    }
  }
  result.x = x;
  result.value = fx;
  result.iterations = iter;
  return result;
}

}  // namespace zonestream::numeric
