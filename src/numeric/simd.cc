#include "numeric/simd.h"

namespace zonestream::numeric {

namespace {

SimdTier Detect() {
#if defined(ZS_SIMD_ENABLED) && defined(__x86_64__)
  if (__builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512dq")) {
    return SimdTier::kAvx512;
  }
  if (__builtin_cpu_supports("avx2")) return SimdTier::kAvx2;
#endif
  return SimdTier::kScalar;
}

// Cap applied by ForceSimdTier; kAvx512 means "no cap".
SimdTier g_cap = SimdTier::kAvx512;

}  // namespace

SimdTier DetectedSimdTier() {
  static const SimdTier tier = Detect();
  return tier;
}

SimdTier ActiveSimdTier() {
  const SimdTier detected = DetectedSimdTier();
  return static_cast<int>(g_cap) < static_cast<int>(detected) ? g_cap
                                                              : detected;
}

void ForceSimdTier(SimdTier tier) { g_cap = tier; }

const char* SimdTierName(SimdTier tier) {
  switch (tier) {
    case SimdTier::kAvx2:
      return "avx2";
    case SimdTier::kAvx512:
      return "avx512";
    case SimdTier::kScalar:
    default:
      return "scalar";
  }
}

}  // namespace zonestream::numeric
