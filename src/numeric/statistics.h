// Streaming and batch statistics for the simulator: Welford running moments,
// percentiles, fixed-bin histograms, and binomial-proportion confidence
// intervals (used when comparing simulated glitch rates to analytic bounds).
#ifndef ZONESTREAM_NUMERIC_STATISTICS_H_
#define ZONESTREAM_NUMERIC_STATISTICS_H_

#include <cstdint>
#include <functional>
#include <vector>

namespace zonestream::numeric {

// Raw accumulator fields of a RunningStats, for exact checkpoint /
// restore (mean/m2 are the Welford internals, not derived statistics).
struct RunningStatsState {
  int64_t count = 0;
  double mean = 0.0;
  double m2 = 0.0;
  double min = 0.0;
  double max = 0.0;
};

// Numerically stable running mean/variance/min/max (Welford's algorithm).
class RunningStats {
 public:
  RunningStats() = default;

  // Adds one observation.
  void Add(double x);

  // Merges another accumulator into this one (parallel reduction).
  void Merge(const RunningStats& other);

  // Exact state capture/restore; ImportState(ExportState()) is the
  // identity and continued Add() sequences stay bit-identical.
  RunningStatsState ExportState() const;
  void ImportState(const RunningStatsState& state);

  int64_t count() const { return count_; }
  double mean() const;
  // Population variance (divides by n). Returns 0 for n < 1.
  double variance() const;
  // Sample variance (divides by n-1). Returns 0 for n < 2.
  double sample_variance() const;
  double stddev() const;
  double min() const;
  double max() const;

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Returns the q-quantile (q in [0, 1]) of `values` using linear
// interpolation between order statistics. Sorts a copy; O(n log n).
double Percentile(std::vector<double> values, double q);

// Two-sided Wilson score interval for a binomial proportion, given
// `successes` out of `trials` at confidence level `confidence` (e.g. 0.95).
struct ProportionInterval {
  double point = 0.0;
  double lower = 0.0;
  double upper = 0.0;
};
ProportionInterval WilsonInterval(int64_t successes, int64_t trials,
                                  double confidence = 0.95);

// Wilson interval with real-valued (effective) counts — the building
// block for design-effect-adjusted intervals over correlated samples.
// Requires 0 <= successes <= trials and trials > 0.
ProportionInterval WilsonIntervalReal(double successes, double trials,
                                      double confidence = 0.95);

// Cluster-robust confidence interval for a proportion observed as
// `clusters` equal-size groups of `cluster_size` correlated trials each
// (e.g. per-stream glitch indicators grouped by simulated round: one
// overrunning sweep glitches many streams at once, so the per-event
// Wilson interval is overconfident).
//
// The estimator treats the per-cluster success fractions as the i.i.d.
// sample. From their mean p and sample variance s2 it forms the design
// effect deff = (s2 / clusters) / (p (1-p) / (clusters * cluster_size)) —
// the ratio of the cluster-robust variance of p-hat to its
// independent-trials variance — clamps deff >= 1 (never tighter than the
// pooled interval), and returns a Wilson interval at the effective sample
// size n_eff = clusters * cluster_size / deff. Degenerate inputs (p = 0,
// p = 1, or zero between-cluster variance) fall back to the fully
// conservative deff = cluster_size, i.e. one effective trial per cluster.
//
// `mean_fraction` / `fraction_sample_variance` are the mean and sample
// (n-1) variance of the per-cluster fractions; the vector overload
// computes them from per-cluster success counts.
ProportionInterval ClusteredProportionInterval(double mean_fraction,
                                               double fraction_sample_variance,
                                               int64_t clusters,
                                               int64_t cluster_size,
                                               double confidence = 0.95);
ProportionInterval ClusteredProportionInterval(
    const std::vector<int64_t>& successes_per_cluster, int64_t cluster_size,
    double confidence = 0.95);

// One-sample Kolmogorov-Smirnov statistic D_n = sup_x |F_n(x) - F(x)|
// against the reference CDF `cdf`. Sorts a copy of `samples`.
double KolmogorovSmirnovStatistic(std::vector<double> samples,
                                  const std::function<double(double)>& cdf);

// Asymptotic critical value of the one-sample KS test at significance
// `alpha` (e.g. 0.01) for n samples: c(alpha)/sqrt(n) with
// c(alpha) = sqrt(-ln(alpha/2)/2). Valid for n >~ 35.
double KolmogorovSmirnovCriticalValue(int64_t n, double alpha);

// Equal-width histogram over [lo, hi); out-of-range samples are clamped
// into the first/last bin and counted.
class Histogram {
 public:
  Histogram(double lo, double hi, int bins);

  void Add(double x);

  int bins() const { return static_cast<int>(counts_.size()); }
  int64_t total() const { return total_; }
  int64_t bin_count(int i) const { return counts_[i]; }
  // Midpoint of bin i.
  double bin_center(int i) const;
  // Empirical density (count / (total * bin_width)) of bin i.
  double density(int i) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<int64_t> counts_;
  int64_t total_ = 0;
};

}  // namespace zonestream::numeric

#endif  // ZONESTREAM_NUMERIC_STATISTICS_H_
