// Streaming and batch statistics for the simulator: Welford running moments,
// percentiles, fixed-bin histograms, and binomial-proportion confidence
// intervals (used when comparing simulated glitch rates to analytic bounds).
#ifndef ZONESTREAM_NUMERIC_STATISTICS_H_
#define ZONESTREAM_NUMERIC_STATISTICS_H_

#include <cstdint>
#include <functional>
#include <vector>

namespace zonestream::numeric {

// Numerically stable running mean/variance/min/max (Welford's algorithm).
class RunningStats {
 public:
  RunningStats() = default;

  // Adds one observation.
  void Add(double x);

  // Merges another accumulator into this one (parallel reduction).
  void Merge(const RunningStats& other);

  int64_t count() const { return count_; }
  double mean() const;
  // Population variance (divides by n). Returns 0 for n < 1.
  double variance() const;
  // Sample variance (divides by n-1). Returns 0 for n < 2.
  double sample_variance() const;
  double stddev() const;
  double min() const;
  double max() const;

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Returns the q-quantile (q in [0, 1]) of `values` using linear
// interpolation between order statistics. Sorts a copy; O(n log n).
double Percentile(std::vector<double> values, double q);

// Two-sided Wilson score interval for a binomial proportion, given
// `successes` out of `trials` at confidence level `confidence` (e.g. 0.95).
struct ProportionInterval {
  double point = 0.0;
  double lower = 0.0;
  double upper = 0.0;
};
ProportionInterval WilsonInterval(int64_t successes, int64_t trials,
                                  double confidence = 0.95);

// One-sample Kolmogorov-Smirnov statistic D_n = sup_x |F_n(x) - F(x)|
// against the reference CDF `cdf`. Sorts a copy of `samples`.
double KolmogorovSmirnovStatistic(std::vector<double> samples,
                                  const std::function<double(double)>& cdf);

// Asymptotic critical value of the one-sample KS test at significance
// `alpha` (e.g. 0.01) for n samples: c(alpha)/sqrt(n) with
// c(alpha) = sqrt(-ln(alpha/2)/2). Valid for n >~ 35.
double KolmogorovSmirnovCriticalValue(int64_t n, double alpha);

// Equal-width histogram over [lo, hi); out-of-range samples are clamped
// into the first/last bin and counted.
class Histogram {
 public:
  Histogram(double lo, double hi, int bins);

  void Add(double x);

  int bins() const { return static_cast<int>(counts_.size()); }
  int64_t total() const { return total_; }
  int64_t bin_count(int i) const { return counts_[i]; }
  // Midpoint of bin i.
  double bin_center(int i) const;
  // Empirical density (count / (total * bin_width)) of bin i.
  double density(int i) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<int64_t> counts_;
  int64_t total_ = 0;
};

}  // namespace zonestream::numeric

#endif  // ZONESTREAM_NUMERIC_STATISTICS_H_
