// Shared internals of the batched Gamma sampler: the 128-layer ziggurat
// normal source and the scalar Marsaglia–Tsang rejection draw. Split out
// of random.cc so the speculative SIMD sampler (random_simd.cc) can fall
// back to the EXACT scalar routines — lane deviations must consume the
// engine word-for-word like the scalar path, or the sequences diverge.
//
// Everything here is an implementation detail of GammaBatchSampler; do
// not call it directly.
#ifndef ZONESTREAM_NUMERIC_GAMMA_INTERNAL_H_
#define ZONESTREAM_NUMERIC_GAMMA_INTERNAL_H_

#include <cmath>
#include <cstdint>

#include "numeric/random.h"

namespace zonestream::numeric::internal {

// Standard-normal draws via Marsaglia–Tsang's 128-layer ziggurat: one
// 64-bit engine draw yields the layer index (low 7 bits) and the
// position uniform (high 53 bits, disjoint), and ~98.9% of draws accept
// with a single table compare — no log/sqrt on the common path, which is
// what makes the batched Gamma sampler cheap. The wedge (~1%) pays one
// exp; the tail (<0.03%) falls back to exponential rejection.
struct ZigguratTables {
  double x[129];  // layer right edges, x[0] = base strip edge, x[128] = 0
  double f[129];  // f[i] = exp(-x[i]^2 / 2)
};

const ZigguratTables& NormalZiggurat();

inline double ZigguratNormal(Rng* rng, const ZigguratTables& t) {
  for (;;) {
    const uint64_t bits = rng->engine()();
    const int i = static_cast<int>(bits & 127u);
    // Signed uniform in [-1, 1) from the high 53 bits (disjoint from the
    // layer bits).
    const double u =
        static_cast<double>(bits >> 11) * 0x1.0p-52 - 1.0;
    const double x = u * t.x[i];
    if (std::abs(x) < t.x[i + 1]) return x;  // inside the layer: ~98.9%
    if (i == 0) {
      // Base-strip tail (|x| > r): exponential rejection.
      const double r = t.x[1];
      double xx;
      double yy;
      do {
        xx = -std::log(rng->Uniform01()) / r;
        yy = -std::log(rng->Uniform01());
      } while (yy + yy < xx * xx);
      return u < 0.0 ? -(r + xx) : r + xx;
    }
    // Wedge between the layer cap and the density.
    if (t.f[i] + rng->Uniform01() * (t.f[i + 1] - t.f[i]) <
        std::exp(-0.5 * x * x)) {
      return x;
    }
  }
}

// One Marsaglia–Tsang Gamma(d + 1/3, 1) draw given cached (d, c).
inline double MarsagliaTsangDraw(Rng* rng, const ZigguratTables& t, double d,
                                 double c) {
  for (;;) {
    double x;
    double v;
    do {
      x = ZigguratNormal(rng, t);
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = rng->Uniform01();
    const double x2 = x * x;
    // Cheap squeeze first, exact log acceptance second.
    if (u < 1.0 - 0.0331 * x2 * x2) return d * v;
    if (std::log(u) < 0.5 * x2 + d * (1.0 - v + std::log(v))) return d * v;
  }
}

}  // namespace zonestream::numeric::internal

#endif  // ZONESTREAM_NUMERIC_GAMMA_INTERNAL_H_
