// Random number generation for the detailed disk simulator and the
// synthetic VBR workload generator.
//
// A thin facade over std::mt19937_64 with the samplers the paper's
// validation needs: uniform (rotational latency, placement), Gamma
// (fragment sizes), and alternatives for the distribution-family ablation
// (lognormal, truncated Pareto). Seeded deterministically so every bench
// and test is reproducible.
#ifndef ZONESTREAM_NUMERIC_RANDOM_H_
#define ZONESTREAM_NUMERIC_RANDOM_H_

#include <cstdint>
#include <random>

namespace zonestream::numeric {

// Derives the seed of an independent substream from a base seed and a
// substream index (SplitMix64 finalization of the pair). Replicated Monte
// Carlo batches seed replication r with SubstreamSeed(base, r), so every
// replication's sample path is a pure function of (base, r) — independent
// of how replications are scheduled across threads.
uint64_t SubstreamSeed(uint64_t base_seed, uint64_t substream);

// Deterministic pseudo-random source. Not thread-safe; use one per thread.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  // Uniform double in [0, 1).
  double Uniform01();

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  // Uniform integer in [0, n).
  uint64_t UniformIndex(uint64_t n);

  // Gamma variate with the given shape k > 0 and scale theta > 0
  // (mean = k*theta, variance = k*theta^2).
  double Gamma(double shape, double scale);

  // Gamma variate parameterized by mean > 0 and variance > 0.
  double GammaByMoments(double mean, double variance);

  // Lognormal variate parameterized by mean > 0 and variance > 0 of the
  // *variate itself* (not of log X).
  double LognormalByMoments(double mean, double variance);

  // Pareto variate with minimum x_m > 0 and tail index alpha > 0, truncated
  // at `cap` (> x_m) by resampling. With alpha <= 2 the untruncated variance
  // is infinite; truncation keeps all moments finite, which the Chernoff
  // machinery requires.
  double TruncatedPareto(double x_min, double alpha, double cap);

  // Exponential variate with the given mean.
  double Exponential(double mean);

  // Access to the underlying engine for std:: distributions.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace zonestream::numeric

#endif  // ZONESTREAM_NUMERIC_RANDOM_H_
