// Random number generation for the detailed disk simulator and the
// synthetic VBR workload generator.
//
// A thin facade over numeric::Mt19937_64 — a drop-in MT19937-64 engine
// producing the exact std::mt19937_64 sequence and serialization, with
// bulk/peek interfaces the SIMD samplers need — with the samplers the
// paper's validation needs: uniform (rotational latency, placement),
// Gamma (fragment sizes), and alternatives for the distribution-family
// ablation (lognormal, truncated Pareto). Seeded deterministically so
// every bench and test is reproducible.
//
// Batched draws (FillUniform01 / FillUniform / GammaBatchSampler) serve
// the simulation kernel's structure-of-arrays hot path: one call fills a
// whole round's worth of variates, keeping the engine state in registers
// and (for Gamma) reusing the per-shape rejection constants across the
// batch instead of rebuilding a std::gamma_distribution per draw.
#ifndef ZONESTREAM_NUMERIC_RANDOM_H_
#define ZONESTREAM_NUMERIC_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/status.h"
#include "numeric/mt19937_64.h"

namespace zonestream::numeric {

// Derives the seed of an independent substream from a base seed and a
// substream index (SplitMix64 finalization of the pair). Replicated Monte
// Carlo batches seed replication r with SubstreamSeed(base, r), so every
// replication's sample path is a pure function of (base, r) — independent
// of how replications are scheduled across threads.
uint64_t SubstreamSeed(uint64_t base_seed, uint64_t substream);

// Deterministic pseudo-random source. Not thread-safe; use one per thread.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  // Uniform double in [0, 1). Inline: this is the innermost draw of the
  // simulation kernel (every rejection-sampler iteration lands here).
  double Uniform01() {
    // 53-bit mantissa-exact uniform in [0, 1).
    return static_cast<double>(engine_() >> 11) * 0x1.0p-53;
  }

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    return lo + (hi - lo) * Uniform01();
  }

  // Uniform integer in [0, n).
  uint64_t UniformIndex(uint64_t n);

  // Gamma variate with the given shape k > 0 and scale theta > 0
  // (mean = k*theta, variance = k*theta^2).
  double Gamma(double shape, double scale);

  // Gamma variate parameterized by mean > 0 and variance > 0.
  double GammaByMoments(double mean, double variance);

  // Lognormal variate parameterized by mean > 0 and variance > 0 of the
  // *variate itself* (not of log X).
  double LognormalByMoments(double mean, double variance);

  // Pareto variate with minimum x_m > 0 and tail index alpha > 0, truncated
  // at `cap` (> x_m) by resampling. With alpha <= 2 the untruncated variance
  // is infinite; truncation keeps all moments finite, which the Chernoff
  // machinery requires.
  double TruncatedPareto(double x_min, double alpha, double cap);

  // Exponential variate with the given mean.
  double Exponential(double mean);

  // Fills out[0..n) with i.i.d. Uniform[0, 1) draws. Equivalent to n
  // Uniform01() calls (same engine consumption, same values) but keeps
  // the loop inside the library so the engine state stays hot.
  void FillUniform01(double* out, size_t n);

  // Fills out[0..n) with i.i.d. Uniform[lo, hi) draws.
  void FillUniform(double lo, double hi, double* out, size_t n);

  // Access to the underlying engine for std:: distributions and for the
  // bulk/peek word interfaces (FillRaw / PeekRaw / AdvanceRaw).
  Mt19937_64& engine() { return engine_; }

  // Exact state export for checkpoint/restore: the COMPLETE state of an
  // Rng is its mt19937_64 engine (312 words + stream position), captured
  // via the standard textual serialization, which round-trips exactly.
  // Nothing else persists across calls: every std:: distribution used by
  // the samplers above is constructed per call (so e.g. the Gaussian
  // spare a long-lived std::normal_distribution would cache never
  // survives a call), GammaBatchSampler is immutable after construction,
  // and the ziggurat tables are constants. LoadState(SaveState()) on any
  // Rng therefore reproduces the continuation bit-identically for every
  // sampler (asserted in tests/numeric/random_test.cc).
  std::string SaveState() const;

  // Restores a state produced by SaveState. Rejects malformed input
  // without modifying the engine.
  common::Status LoadState(const std::string& state);

 private:
  Mt19937_64 engine_;
};

// Batched Gamma(shape, scale) sampler with the Marsaglia–Tsang rejection
// constants (d = shape - 1/3, c = 1/sqrt(9d)) computed once at
// construction and reused for every draw — the win over per-call
// std::gamma_distribution when thousands of same-shape draws happen per
// simulated replication. shape < 1 uses the standard boost: draw
// Gamma(shape + 1) and multiply by U^{1/shape}. The standard-normal
// source inside the rejection loop is a 128-layer ziggurat (no log/sqrt
// on ~99% of draws).
//
// Determinism: Fill() consumes the Rng in a fixed, documented order
// (rejection sampling consumes a variable but seed-determined number of
// draws), so a (seed, call-sequence) pair always reproduces the same
// batch. The values differ from Rng::Gamma's std::gamma_distribution
// stream — the batched and scalar simulation paths are statistically,
// not bit-wise, identical (see tests/numeric/random_test.cc KS tests).
class GammaBatchSampler {
 public:
  // shape > 0, scale > 0 (checked).
  GammaBatchSampler(double shape, double scale);

  // Fills out[0..n) with i.i.d. Gamma(shape, scale) draws from `rng`.
  void Fill(Rng* rng, double* out, size_t n) const;

  // One draw; identical consumption pattern as a length-1 Fill.
  double Sample(Rng* rng) const;

  double shape() const { return shape_; }
  double scale() const { return scale_; }

 private:
  double shape_;
  double scale_;
  double d_;          // Marsaglia–Tsang d for max(shape, shape + 1 if < 1)
  double c_;          // Marsaglia–Tsang c
  double inv_shape_;  // 1/shape when shape < 1, else 0 (no boost)
};

}  // namespace zonestream::numeric

#endif  // ZONESTREAM_NUMERIC_RANDOM_H_
