// One-dimensional minimization used to sharpen Chernoff bounds: the model
// minimizes log h(θ) = -θt + log M(θ) over an open interval.
#ifndef ZONESTREAM_NUMERIC_OPTIMIZE_H_
#define ZONESTREAM_NUMERIC_OPTIMIZE_H_

#include <functional>
#include <limits>

namespace zonestream::numeric {

// Result of a 1-D minimization.
struct MinimizeResult {
  double x = 0.0;        // argmin
  double value = 0.0;    // f(argmin)
  int iterations = 0;    // iterations used
  bool converged = false;
};

// Options controlling a minimization run.
struct MinimizeOptions {
  double tolerance = 1e-10;  // relative x tolerance
  int max_iterations = 200;
  // Optional starting point for BrentMinimize. When finite and strictly
  // inside (lo, hi), the search keeps its running best at this point
  // instead of the golden-section default — a warm start: with a good
  // guess (e.g. the argmin of a nearby problem) the interval collapses
  // around it and the parabolic steps engage immediately.
  double initial_x = std::numeric_limits<double>::quiet_NaN();
};

// Golden-section search on [lo, hi]; requires f unimodal on the interval.
MinimizeResult GoldenSectionMinimize(const std::function<double(double)>& f,
                                     double lo, double hi,
                                     const MinimizeOptions& options = {});

// Brent's parabolic-interpolation minimizer on [lo, hi]; requires f unimodal.
// Typically 3-5x fewer function evaluations than golden section.
MinimizeResult BrentMinimize(const std::function<double(double)>& f, double lo,
                             double hi, const MinimizeOptions& options = {});

}  // namespace zonestream::numeric

#endif  // ZONESTREAM_NUMERIC_OPTIMIZE_H_
