// One-dimensional minimization used to sharpen Chernoff bounds: the model
// minimizes log h(θ) = -θt + log M(θ) over an open interval.
#ifndef ZONESTREAM_NUMERIC_OPTIMIZE_H_
#define ZONESTREAM_NUMERIC_OPTIMIZE_H_

#include <functional>

namespace zonestream::numeric {

// Result of a 1-D minimization.
struct MinimizeResult {
  double x = 0.0;        // argmin
  double value = 0.0;    // f(argmin)
  int iterations = 0;    // iterations used
  bool converged = false;
};

// Options controlling a minimization run.
struct MinimizeOptions {
  double tolerance = 1e-10;  // relative x tolerance
  int max_iterations = 200;
};

// Golden-section search on [lo, hi]; requires f unimodal on the interval.
MinimizeResult GoldenSectionMinimize(const std::function<double(double)>& f,
                                     double lo, double hi,
                                     const MinimizeOptions& options = {});

// Brent's parabolic-interpolation minimizer on [lo, hi]; requires f unimodal.
// Typically 3-5x fewer function evaluations than golden section.
MinimizeResult BrentMinimize(const std::function<double(double)>& f, double lo,
                             double hi, const MinimizeOptions& options = {});

}  // namespace zonestream::numeric

#endif  // ZONESTREAM_NUMERIC_OPTIMIZE_H_
