#include "numeric/random.h"

#include <cmath>

#include "common/check.h"

namespace zonestream::numeric {

uint64_t SubstreamSeed(uint64_t base_seed, uint64_t substream) {
  // Two rounds of the SplitMix64 finalizer over the (base, substream)
  // pair; the avalanche decorrelates adjacent substream indices.
  uint64_t z = base_seed + 0x9e3779b97f4a7c15ull * (substream + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

double Rng::Uniform01() {
  // 53-bit mantissa-exact uniform in [0, 1).
  return static_cast<double>(engine_() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  ZS_CHECK_LE(lo, hi);
  return lo + (hi - lo) * Uniform01();
}

uint64_t Rng::UniformIndex(uint64_t n) {
  ZS_CHECK_GT(n, 0u);
  std::uniform_int_distribution<uint64_t> dist(0, n - 1);
  return dist(engine_);
}

double Rng::Gamma(double shape, double scale) {
  ZS_CHECK_GT(shape, 0.0);
  ZS_CHECK_GT(scale, 0.0);
  std::gamma_distribution<double> dist(shape, scale);
  return dist(engine_);
}

double Rng::GammaByMoments(double mean, double variance) {
  ZS_CHECK_GT(mean, 0.0);
  ZS_CHECK_GT(variance, 0.0);
  const double shape = mean * mean / variance;
  const double scale = variance / mean;
  return Gamma(shape, scale);
}

double Rng::LognormalByMoments(double mean, double variance) {
  ZS_CHECK_GT(mean, 0.0);
  ZS_CHECK_GT(variance, 0.0);
  // If X ~ Lognormal(mu, sigma^2) then E[X] = exp(mu + sigma^2/2) and
  // Var[X] = (exp(sigma^2) - 1) exp(2mu + sigma^2); invert for (mu, sigma).
  const double sigma2 = std::log(1.0 + variance / (mean * mean));
  const double mu = std::log(mean) - 0.5 * sigma2;
  std::lognormal_distribution<double> dist(mu, std::sqrt(sigma2));
  return dist(engine_);
}

double Rng::TruncatedPareto(double x_min, double alpha, double cap) {
  ZS_CHECK_GT(x_min, 0.0);
  ZS_CHECK_GT(alpha, 0.0);
  ZS_CHECK_GT(cap, x_min);
  // Inverse-CDF sampling of the Pareto conditioned on X <= cap:
  // F(x) = (1 - (x_min/x)^alpha) / (1 - (x_min/cap)^alpha).
  const double tail_at_cap = std::pow(x_min / cap, alpha);
  const double u = Uniform01() * (1.0 - tail_at_cap);
  return x_min * std::pow(1.0 - u, -1.0 / alpha);
}

double Rng::Exponential(double mean) {
  ZS_CHECK_GT(mean, 0.0);
  std::exponential_distribution<double> dist(1.0 / mean);
  return dist(engine_);
}

}  // namespace zonestream::numeric
