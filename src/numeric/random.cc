#include "numeric/random.h"

#include <cmath>
#include <random>
#include <sstream>

#include "common/check.h"
#include "numeric/gamma_internal.h"
#include "numeric/random_simd.h"

namespace zonestream::numeric {

uint64_t SubstreamSeed(uint64_t base_seed, uint64_t substream) {
  // Two rounds of the SplitMix64 finalizer over the (base, substream)
  // pair; the avalanche decorrelates adjacent substream indices.
  uint64_t z = base_seed + 0x9e3779b97f4a7c15ull * (substream + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

uint64_t Rng::UniformIndex(uint64_t n) {
  ZS_CHECK_GT(n, 0u);
  std::uniform_int_distribution<uint64_t> dist(0, n - 1);
  return dist(engine_);
}

double Rng::Gamma(double shape, double scale) {
  ZS_CHECK_GT(shape, 0.0);
  ZS_CHECK_GT(scale, 0.0);
  std::gamma_distribution<double> dist(shape, scale);
  return dist(engine_);
}

double Rng::GammaByMoments(double mean, double variance) {
  ZS_CHECK_GT(mean, 0.0);
  ZS_CHECK_GT(variance, 0.0);
  const double shape = mean * mean / variance;
  const double scale = variance / mean;
  return Gamma(shape, scale);
}

double Rng::LognormalByMoments(double mean, double variance) {
  ZS_CHECK_GT(mean, 0.0);
  ZS_CHECK_GT(variance, 0.0);
  // If X ~ Lognormal(mu, sigma^2) then E[X] = exp(mu + sigma^2/2) and
  // Var[X] = (exp(sigma^2) - 1) exp(2mu + sigma^2); invert for (mu, sigma).
  const double sigma2 = std::log(1.0 + variance / (mean * mean));
  const double mu = std::log(mean) - 0.5 * sigma2;
  std::lognormal_distribution<double> dist(mu, std::sqrt(sigma2));
  return dist(engine_);
}

double Rng::TruncatedPareto(double x_min, double alpha, double cap) {
  ZS_CHECK_GT(x_min, 0.0);
  ZS_CHECK_GT(alpha, 0.0);
  ZS_CHECK_GT(cap, x_min);
  // Inverse-CDF sampling of the Pareto conditioned on X <= cap:
  // F(x) = (1 - (x_min/x)^alpha) / (1 - (x_min/cap)^alpha).
  const double tail_at_cap = std::pow(x_min / cap, alpha);
  const double u = Uniform01() * (1.0 - tail_at_cap);
  return x_min * std::pow(1.0 - u, -1.0 / alpha);
}

double Rng::Exponential(double mean) {
  ZS_CHECK_GT(mean, 0.0);
  std::exponential_distribution<double> dist(1.0 / mean);
  return dist(engine_);
}

std::string Rng::SaveState() const {
  std::ostringstream out;
  out << engine_;
  return out.str();
}

common::Status Rng::LoadState(const std::string& state) {
  std::istringstream in(state);
  Mt19937_64 engine;
  in >> engine;
  if (in.fail()) {
    return common::Status::InvalidArgument(
        "Rng::LoadState: malformed engine state");
  }
  // The standard stream extraction accepts a valid prefix; insist the
  // state is exactly one engine serialization (trailing whitespace only)
  // so a truncated or concatenated snapshot field cannot slip through.
  std::string trailing;
  in >> trailing;
  if (!trailing.empty()) {
    return common::Status::InvalidArgument(
        "Rng::LoadState: trailing bytes after engine state");
  }
  engine_ = engine;
  return common::Status::Ok();
}

namespace {

// Stack-buffer chunk for bulk word pulls: big enough that a typical
// round's fill is one FillRaw call, small enough to stay cache-resident.
constexpr size_t kRawChunk = 256;

}  // namespace

void Rng::FillUniform01(double* out, size_t n) {
  ZS_CHECK(out != nullptr || n == 0);
  uint64_t raw[kRawChunk];
  while (n > 0) {
    const size_t take = n < kRawChunk ? n : kRawChunk;
    engine_.FillRaw(raw, take);
    if (!internal::UniformFromRawWide(raw, out, take)) {
      for (size_t i = 0; i < take; ++i) {
        out[i] = static_cast<double>(raw[i] >> 11) * 0x1.0p-53;
      }
    }
    out += take;
    n -= take;
  }
}

void Rng::FillUniform(double lo, double hi, double* out, size_t n) {
  ZS_CHECK_LE(lo, hi);
  ZS_CHECK(out != nullptr || n == 0);
  const double width = hi - lo;
  uint64_t raw[kRawChunk];
  while (n > 0) {
    const size_t take = n < kRawChunk ? n : kRawChunk;
    engine_.FillRaw(raw, take);
    if (!internal::UniformAffineFromRawWide(raw, lo, width, out, take)) {
      for (size_t i = 0; i < take; ++i) {
        out[i] = lo + width * (static_cast<double>(raw[i] >> 11) * 0x1.0p-53);
      }
    }
    out += take;
    n -= take;
  }
}

GammaBatchSampler::GammaBatchSampler(double shape, double scale)
    : shape_(shape), scale_(scale) {
  ZS_CHECK_GT(shape, 0.0);
  ZS_CHECK_GT(scale, 0.0);
  const double effective_shape = shape >= 1.0 ? shape : shape + 1.0;
  d_ = effective_shape - 1.0 / 3.0;
  c_ = 1.0 / std::sqrt(9.0 * d_);
  inv_shape_ = shape >= 1.0 ? 0.0 : 1.0 / shape;
}

namespace internal {

const ZigguratTables& NormalZiggurat() {
  static const ZigguratTables tables = [] {
    ZigguratTables t;
    // 128-layer constants (Marsaglia & Tsang 2000): r is the base-strip
    // edge, v the common strip area.
    const double r = 3.442619855899;
    const double v = 9.91256303526217e-3;
    t.x[0] = v * std::exp(0.5 * r * r);
    t.x[1] = r;
    for (int i = 2; i < 128; ++i) {
      t.x[i] = std::sqrt(-2.0 * std::log(v / t.x[i - 1] +
                                         std::exp(-0.5 * t.x[i - 1] *
                                                  t.x[i - 1])));
    }
    t.x[128] = 0.0;
    for (int i = 0; i <= 128; ++i) {
      t.f[i] = std::exp(-0.5 * t.x[i] * t.x[i]);
    }
    return t;
  }();
  return tables;
}

}  // namespace internal

void GammaBatchSampler::Fill(Rng* rng, double* out, size_t n) const {
  ZS_CHECK(rng != nullptr);
  ZS_CHECK(out != nullptr || n == 0);
  const internal::ZigguratTables& tables = internal::NormalZiggurat();
  if (inv_shape_ == 0.0) {
    // Shape >= 1: the speculative wide sampler reproduces the scalar
    // rejection walk bit-exactly (numeric/random_simd.h); it handles the
    // whole batch when a SIMD tier is active.
    if (internal::GammaFillWide(rng, tables, d_, c_, scale_, out, n)) {
      return;
    }
    for (size_t i = 0; i < n; ++i) {
      out[i] = scale_ * internal::MarsagliaTsangDraw(rng, tables, d_, c_);
    }
  } else {
    // shape < 1: Gamma(shape) = Gamma(shape + 1) * U^{1/shape}.
    for (size_t i = 0; i < n; ++i) {
      const double g = internal::MarsagliaTsangDraw(rng, tables, d_, c_);
      out[i] = scale_ * g * std::pow(rng->Uniform01(), inv_shape_);
    }
  }
}

double GammaBatchSampler::Sample(Rng* rng) const {
  double value;
  Fill(rng, &value, 1);
  return value;
}

}  // namespace zonestream::numeric
