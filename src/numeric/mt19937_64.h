// A Mersenne Twister (MT19937-64) engine that is a drop-in replacement
// for std::mt19937_64: same parameters, same seeding, same output
// sequence, and the same textual serialization (312 state words followed
// by the stream position, space-separated) — so checkpoints written by
// either engine restore into the other bit-exactly
// (tests/numeric/mt19937_64_test.cc pins both properties against the
// standard library engine).
//
// What the standard engine cannot offer, and why this one exists:
//
//  * FillRaw(): bulk generation. The standard interface yields one word
//    per virtual-free but still call-shaped operator() invocation; the
//    simulation kernel consumes ~5 words per request per round, so the
//    per-call overhead is hot-path cost. FillRaw tempers straight out of
//    the state block into the caller's buffer in a flat loop the
//    compiler can vectorize.
//
//  * PeekRaw()/AdvanceRaw(): bounded lookahead with exact replay. The
//    speculative SIMD Gamma sampler (numeric/random_simd.h) evaluates
//    eight rejection-sampling candidates at once; candidates past the
//    first rejection must NOT consume engine words, or the sequence
//    would diverge from the scalar sampler. PeekRaw exposes the next k
//    words without committing; AdvanceRaw commits exactly the words the
//    accepted prefix used. Lookahead across the 312-word block boundary
//    is served from a lazily twisted shadow block, so peeking never
//    perturbs the committed stream position.
#ifndef ZONESTREAM_NUMERIC_MT19937_64_H_
#define ZONESTREAM_NUMERIC_MT19937_64_H_

#include <cstddef>
#include <cstdint>
#include <iosfwd>

namespace zonestream::numeric {

class Mt19937_64 {
 public:
  using result_type = uint64_t;

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~uint64_t{0}; }
  static constexpr result_type default_seed = 5489u;

  explicit Mt19937_64(result_type seed_value = default_seed) {
    seed(seed_value);
  }

  // Standard MT19937-64 state-array initialization.
  void seed(result_type seed_value);

  result_type operator()() {
    if (p_ >= kN) AdvanceBlock();
    return Temper(x_[p_++]);
  }

  // Fills out[0..n) with the next n raw words — identical to n
  // operator() calls, without the per-call overhead.
  void FillRaw(uint64_t* out, size_t n);

  // Writes the next k words of the sequence into out WITHOUT consuming
  // them: a subsequent operator()/FillRaw/PeekRaw sees the same words.
  // k must be at most kMaxPeek.
  void PeekRaw(uint64_t* out, size_t k);

  // Consumes k words (as if k operator() calls were made and their
  // results discarded). Pairs with PeekRaw: peek a window, use a prefix,
  // advance by exactly the words the prefix consumed. k <= kMaxPeek.
  void AdvanceRaw(size_t k);

  // Largest supported PeekRaw/AdvanceRaw window. One shadow block bounds
  // the lookahead to a full block.
  static constexpr size_t kMaxPeek = 312;

  friend bool operator==(const Mt19937_64& a, const Mt19937_64& b) {
    if (a.p_ != b.p_) return false;
    for (size_t i = 0; i < kN; ++i) {
      if (a.x_[i] != b.x_[i]) return false;
    }
    return true;
  }
  friend bool operator!=(const Mt19937_64& a, const Mt19937_64& b) {
    return !(a == b);
  }

  // Textual serialization in the exact format libstdc++ uses for
  // std::mt19937_64 (312 decimal words and the position, single-space
  // separated), so snapshots interchange between the two engines.
  friend std::ostream& operator<<(std::ostream& os, const Mt19937_64& e);
  friend std::istream& operator>>(std::istream& is, Mt19937_64& e);

 private:
  static constexpr size_t kN = 312;
  static constexpr size_t kM = 156;
  static constexpr uint64_t kMatrixA = 0xB5026F5AA96619E9ull;
  static constexpr uint64_t kUpperMask = 0xFFFFFFFF80000000ull;
  static constexpr uint64_t kLowerMask = 0x000000007FFFFFFFull;

  static uint64_t Temper(uint64_t y) {
    y ^= (y >> 29) & 0x5555555555555555ull;
    y ^= (y << 17) & 0x71D67FFFEDA60000ull;
    y ^= (y << 37) & 0xFFF7EEE000000000ull;
    y ^= y >> 43;
    return y;
  }

  // Moves to the next 312-word block: the shadow block if already
  // computed by a peek, else an in-place twist.
  void AdvanceBlock();

  // Computes the next block into next_ (without touching x_/p_).
  void EnsureNext();

  uint64_t x_[kN];      // current block (untempered)
  size_t p_ = kN;       // next output index into x_; kN = block exhausted
  uint64_t next_[kN];   // lazily twisted shadow block for lookahead
  bool has_next_ = false;
};

}  // namespace zonestream::numeric

#endif  // ZONESTREAM_NUMERIC_MT19937_64_H_
