// Runtime SIMD dispatch for the numeric hot paths.
//
// The accelerated paths (numeric/random_simd.h, the simulator's fused
// sweep) are compiled per-ISA behind function-level target attributes and
// selected once at runtime from CPUID — the library binary itself stays a
// baseline x86-64 build. Every tier computes BIT-IDENTICAL results to the
// scalar reference: the wide code uses only correctly-rounded operations
// (add/mul/div/sqrt, exact integer-to-double conversions) in the exact
// scalar evaluation order, and never fuses multiply-add (the baseline
// scalar build has no FMA, so fusing would change roundings). Tier choice
// therefore affects throughput only; goldens and checkpoints are
// tier-independent (tests/sim/simd_kernel_test.cc).
//
// Compile-time master switch: the ZS_ENABLE_SIMD CMake option (default
// ON) defines ZS_SIMD_ENABLED; without it every query returns kScalar and
// the wide paths are not compiled at all (non-x86 or minimal builds).
#ifndef ZONESTREAM_NUMERIC_SIMD_H_
#define ZONESTREAM_NUMERIC_SIMD_H_

namespace zonestream::numeric {

// Instruction-set tiers, ordered: higher tiers imply the lower ones.
enum class SimdTier {
  kScalar = 0,  // baseline x86-64 (or ZS_ENABLE_SIMD=OFF)
  kAvx2 = 1,    // AVX2 (4-lane f64 vectors, no FMA used)
  kAvx512 = 2,  // AVX-512 F+DQ (8-lane f64, native u64<->f64 converts)
};

// Highest tier the running CPU supports (detected once, cached).
SimdTier DetectedSimdTier();

// The tier the accelerated paths actually use: DetectedSimdTier() unless
// lowered by ForceSimdTier.
SimdTier ActiveSimdTier();

// Caps the active tier (for tests and A/B timing): the effective tier is
// min(tier, DetectedSimdTier()). Not thread-safe against concurrent
// sampling — call before spawning workers.
void ForceSimdTier(SimdTier tier);

// "scalar" / "avx2" / "avx512".
const char* SimdTierName(SimdTier tier);

}  // namespace zonestream::numeric

#endif  // ZONESTREAM_NUMERIC_SIMD_H_
