// Internal bulk kernels for the MT19937-64 engine: the 312-word block
// twist and the output tempering transform, runtime-dispatched across
// the SIMD tiers (numeric/simd.h). Both transforms are pure integer
// bitwise arithmetic, so every tier produces identical words — the
// dispatch is invisible to callers and to checkpoints.
#ifndef ZONESTREAM_NUMERIC_MT_KERNELS_H_
#define ZONESTREAM_NUMERIC_MT_KERNELS_H_

#include <cstddef>
#include <cstdint>

namespace zonestream::numeric::internal {

// Computes one full MT19937-64 twist of the 312-word block src into
// dst. dst == src performs the standard in-place update; dst != src
// leaves src untouched (the shadow-block path used by peeks). In both
// cases entries at or past index 156 read the already-produced new
// words from dst, matching the classical recurrence.
void MtTwistBlock(const uint64_t* src, uint64_t* dst);

// dst[i] = Temper(src[i]) for i in [0, n): the MT19937-64 output
// tempering (shift/mask xors). src and dst may alias exactly or not at
// all; partial overlap is undefined.
void MtTemperRange(const uint64_t* src, uint64_t* dst, size_t n);

}  // namespace zonestream::numeric::internal

#endif  // ZONESTREAM_NUMERIC_MT_KERNELS_H_
