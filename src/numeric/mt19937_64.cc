#include "numeric/mt19937_64.h"

#include <algorithm>
#include <cstring>
#include <istream>
#include <ostream>

#include "common/check.h"
#include "numeric/mt_kernels.h"

namespace zonestream::numeric {

void Mt19937_64::seed(result_type seed_value) {
  x_[0] = seed_value;
  for (size_t i = 1; i < kN; ++i) {
    x_[i] = 6364136223846793005ull * (x_[i - 1] ^ (x_[i - 1] >> 62)) + i;
  }
  p_ = kN;
  has_next_ = false;
}

void Mt19937_64::AdvanceBlock() {
  if (has_next_) {
    std::memcpy(x_, next_, sizeof(x_));
    has_next_ = false;
  } else {
    internal::MtTwistBlock(x_, x_);
  }
  p_ = 0;
}

void Mt19937_64::EnsureNext() {
  if (has_next_) return;
  internal::MtTwistBlock(x_, next_);
  has_next_ = true;
}

void Mt19937_64::FillRaw(uint64_t* out, size_t n) {
  ZS_CHECK(out != nullptr || n == 0);
  while (n > 0) {
    if (p_ >= kN) AdvanceBlock();
    size_t take = kN - p_;
    if (take > n) take = n;
    internal::MtTemperRange(x_ + p_, out, take);
    p_ += take;
    out += take;
    n -= take;
  }
}

void Mt19937_64::PeekRaw(uint64_t* out, size_t k) {
  ZS_CHECK_LE(k, kMaxPeek);
  ZS_CHECK(out != nullptr || k == 0);
  if (k == 0) return;
  // Rolling an exhausted block here is state-neutral: "end of block" and
  // "start of the twisted successor" are the same logical position.
  if (p_ >= kN) AdvanceBlock();
  const size_t from_current = std::min(k, kN - p_);
  internal::MtTemperRange(x_ + p_, out, from_current);
  if (from_current < k) {
    EnsureNext();
    internal::MtTemperRange(next_, out + from_current, k - from_current);
  }
}

void Mt19937_64::AdvanceRaw(size_t k) {
  ZS_CHECK_LE(k, kMaxPeek);
  p_ += k;
  if (p_ > kN) {
    const size_t overshoot = p_ - kN;
    AdvanceBlock();  // consumes next_ if peeked, else twists; sets p_ = 0
    p_ = overshoot;
  }
  // p_ == kN exactly: leave it; the next draw rolls the block lazily.
}

std::ostream& operator<<(std::ostream& os, const Mt19937_64& e) {
  // libstdc++'s format: dec, space-separated, x[0..311] then the
  // position. Saved/restored flags keep the caller's stream unharmed.
  const auto flags = os.flags();
  const auto fill = os.fill();
  os.flags(std::ios_base::dec | std::ios_base::left);
  os.fill(os.widen(' '));
  for (size_t i = 0; i < Mt19937_64::kN; ++i) {
    os << e.x_[i] << os.fill();
  }
  os << e.p_;
  os.flags(flags);
  os.fill(fill);
  return os;
}

std::istream& operator>>(std::istream& is, Mt19937_64& e) {
  const auto flags = is.flags();
  is.flags(std::ios_base::dec | std::ios_base::skipws);
  uint64_t x[Mt19937_64::kN];
  size_t p = 0;
  for (size_t i = 0; i < Mt19937_64::kN && is; ++i) is >> x[i];
  is >> p;
  if (is && p <= Mt19937_64::kN) {
    for (size_t i = 0; i < Mt19937_64::kN; ++i) e.x_[i] = x[i];
    e.p_ = p;
    e.has_next_ = false;
  } else if (is) {
    is.setstate(std::ios_base::failbit);
  }
  is.flags(flags);
  return is;
}

}  // namespace zonestream::numeric
