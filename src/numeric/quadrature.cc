#include "numeric/quadrature.h"

#include <array>
#include <cmath>
#include <map>
#include <vector>

#include "common/check.h"

namespace zonestream::numeric {
namespace {

struct SimpsonState {
  const std::function<double(double)>* f;
  double abs_tol;
  double rel_tol;
  int evaluations;
  bool converged;
};

// One panel of Simpson's rule over [a, b] with midpoint m and cached values.
double SimpsonPanel(double fa, double fm, double fb, double a, double b) {
  return (b - a) / 6.0 * (fa + 4.0 * fm + fb);
}

double AdaptiveSimpsonRecurse(SimpsonState* state, double a, double m,
                              double b, double fa, double fm, double fb,
                              double whole, int depth, int forced_depth) {
  const double lm = 0.5 * (a + m);
  const double rm = 0.5 * (m + b);
  const double flm = (*state->f)(lm);
  const double frm = (*state->f)(rm);
  state->evaluations += 2;
  const double left = SimpsonPanel(fa, flm, fm, a, m);
  const double right = SimpsonPanel(fm, frm, fb, m, b);
  const double delta = left + right - whole;
  const double tol =
      std::fmax(state->abs_tol, state->rel_tol * std::fabs(left + right));
  if (depth <= 0) {
    state->converged = false;
    return left + right + delta / 15.0;
  }
  if (forced_depth <= 0 && std::fabs(delta) <= 15.0 * tol) {
    return left + right + delta / 15.0;  // Richardson extrapolation
  }
  return AdaptiveSimpsonRecurse(state, a, lm, m, fa, flm, fm, left, depth - 1,
                                forced_depth - 1) +
         AdaptiveSimpsonRecurse(state, m, rm, b, fm, frm, fb, right,
                                depth - 1, forced_depth - 1);
}

// Computes Gauss-Legendre nodes and weights on [-1, 1] by Newton iteration
// on the Legendre polynomial P_n (roots are bracketed by the Chebyshev-like
// initial guess cos(pi*(i - 0.25)/(n + 0.5))).
struct NodesWeights {
  std::vector<double> nodes;
  std::vector<double> weights;
};

NodesWeights ComputeGaussLegendre(int n) {
  NodesWeights nw;
  nw.nodes.resize(n);
  nw.weights.resize(n);
  const int m = (n + 1) / 2;
  for (int i = 0; i < m; ++i) {
    double x = std::cos(M_PI * (static_cast<double>(i) + 0.75) /
                        (static_cast<double>(n) + 0.5));
    double dp = 0.0;
    for (int iter = 0; iter < 100; ++iter) {
      // Evaluate P_n(x) and P'_n(x) via the three-term recurrence.
      double p0 = 1.0;
      double p1 = x;
      for (int k = 2; k <= n; ++k) {
        const double pk = ((2.0 * k - 1.0) * x * p1 - (k - 1.0) * p0) / k;
        p0 = p1;
        p1 = pk;
      }
      dp = n * (x * p1 - p0) / (x * x - 1.0);
      const double dx = p1 / dp;
      x -= dx;
      if (std::fabs(dx) < 1e-15) break;
    }
    nw.nodes[i] = -x;
    nw.nodes[n - 1 - i] = x;
    const double w = 2.0 / ((1.0 - x * x) * dp * dp);
    nw.weights[i] = w;
    nw.weights[n - 1 - i] = w;
  }
  return nw;
}

const NodesWeights& CachedGaussLegendre(int order) {
  static std::map<int, NodesWeights>& cache =
      *new std::map<int, NodesWeights>();
  auto it = cache.find(order);
  if (it == cache.end()) {
    it = cache.emplace(order, ComputeGaussLegendre(order)).first;
  }
  return it->second;
}

}  // namespace

IntegrateResult AdaptiveSimpson(const std::function<double(double)>& f,
                                double a, double b, double abs_tol,
                                double rel_tol, int max_depth,
                                int min_depth) {
  ZS_CHECK_LE(a, b);
  ZS_CHECK_LE(min_depth, max_depth);
  IntegrateResult result;
  if (a == b) {
    result.converged = true;
    return result;
  }
  SimpsonState state{&f, abs_tol, rel_tol, 0, true};
  const double m = 0.5 * (a + b);
  const double fa = f(a);
  const double fm = f(m);
  const double fb = f(b);
  state.evaluations = 3;
  const double whole = SimpsonPanel(fa, fm, fb, a, b);
  result.value = AdaptiveSimpsonRecurse(&state, a, m, b, fa, fm, fb, whole,
                                        max_depth, min_depth);
  result.evaluations = state.evaluations;
  result.converged = state.converged;
  result.error_estimate =
      std::fmax(abs_tol, rel_tol * std::fabs(result.value));
  return result;
}

double GaussLegendre(const std::function<double(double)>& f, double a,
                     double b, int order) {
  ZS_CHECK(order == 8 || order == 16 || order == 32);
  const NodesWeights& nw = CachedGaussLegendre(order);
  const double half = 0.5 * (b - a);
  const double mid = 0.5 * (a + b);
  double sum = 0.0;
  for (int i = 0; i < order; ++i) {
    sum += nw.weights[i] * f(mid + half * nw.nodes[i]);
  }
  return half * sum;
}

double CompositeGaussLegendre(const std::function<double(double)>& f, double a,
                              double b, int segments, int order) {
  ZS_CHECK_GT(segments, 0);
  const double h = (b - a) / segments;
  double sum = 0.0;
  for (int s = 0; s < segments; ++s) {
    sum += GaussLegendre(f, a + s * h, a + (s + 1) * h, order);
  }
  return sum;
}

}  // namespace zonestream::numeric
