// Numerical integration. Used to (a) compute exact moments of the
// multi-zone transfer-time density f_trans (eq. 3.2.7) for validating the
// paper's moment-matched Gamma approximation, and (b) evaluate empirical
// moment generating functions for size distributions without a closed-form
// transform (Lognormal, truncated Pareto).
#ifndef ZONESTREAM_NUMERIC_QUADRATURE_H_
#define ZONESTREAM_NUMERIC_QUADRATURE_H_

#include <functional>

namespace zonestream::numeric {

// Result of an adaptive integration.
struct IntegrateResult {
  double value = 0.0;
  double error_estimate = 0.0;
  int evaluations = 0;
  bool converged = false;
};

// Adaptive Simpson integration of f over [a, b] to absolute/relative
// tolerance. The first `min_depth` levels subdivide unconditionally so that
// narrow features inside a wide interval are not missed by the coarse
// initial samples; recursion depth is bounded and non-convergence is
// reported, not silently ignored.
IntegrateResult AdaptiveSimpson(const std::function<double(double)>& f,
                                double a, double b, double abs_tol = 1e-12,
                                double rel_tol = 1e-10, int max_depth = 40,
                                int min_depth = 8);

// Fixed-order Gauss-Legendre quadrature of f over [a, b]. Supported orders:
// 8, 16, 32. Exact for polynomials of degree <= 2*order - 1.
double GaussLegendre(const std::function<double(double)>& f, double a,
                     double b, int order = 32);

// Composite Gauss-Legendre: splits [a, b] into `segments` equal pieces and
// applies `order`-point Gauss-Legendre on each. Robust for moderately
// peaked integrands such as the f_trans density.
double CompositeGaussLegendre(const std::function<double(double)>& f, double a,
                              double b, int segments, int order = 32);

}  // namespace zonestream::numeric

#endif  // ZONESTREAM_NUMERIC_QUADRATURE_H_
