// Speculative wide (SIMD) Marsaglia–Tsang Gamma sampling.
//
// The scalar batched sampler's rejection walk is inherently serial: how
// many engine words draw k consumes depends on whether draw k-1's
// candidates were accepted. The wide sampler breaks the dependence by
// SPECULATING: it peeks the next 16 engine words (Mt19937_64::PeekRaw —
// nothing is consumed), evaluates eight candidate draws at once assuming
// each accepts on its first try with the nominal two words (ziggurat
// normal + squeeze uniform), and validates the assumption with vector
// compares. The all-accept case (~60% of blocks at the simulator's
// shapes) commits all eight draws and 16 words in one step; otherwise
// the accepted prefix commits and the first deviating draw re-runs
// through the EXACT scalar routine from the exact engine position the
// scalar code would see.
//
// The result is bit-identical to GammaBatchSampler::Fill's scalar loop —
// same values, same engine consumption — at any SIMD tier, because every
// wide operation is correctly rounded (mul/add/sub/div, exact u64→f64
// conversion, no FMA contraction) in the scalar evaluation order. The
// golden-regression and checkpoint tests therefore hold regardless of
// the host CPU (tests/sim/simd_kernel_test.cc, tests/numeric).
#ifndef ZONESTREAM_NUMERIC_RANDOM_SIMD_H_
#define ZONESTREAM_NUMERIC_RANDOM_SIMD_H_

#include <cstddef>
#include <cstdint>

#include "numeric/gamma_internal.h"
#include "numeric/random.h"

namespace zonestream::numeric::internal {

// Fills out[0..n) with Gamma(d + 1/3, 1)-derived draws scaled by `scale`
// (the shape >= 1 Marsaglia–Tsang case), bit-identical to the scalar
// loop `out[i] = scale * MarsagliaTsangDraw(rng, t, d, c)`. Returns
// false — leaving the Rng untouched — when no SIMD tier is active or n
// is too small to profit; the caller then runs the scalar loop.
bool GammaFillWide(Rng* rng, const ZigguratTables& t, double d, double c,
                   double scale, double* out, size_t n);

// Converts raw engine words to uniforms in [0, 1) — out[i] =
// double(raw[i] >> 11) * 2^-53, exactly the scalar conversion in
// Rng::FillUniform01 — on tiers with an exact wide u64 -> f64
// conversion (AVX-512DQ). Returns false, outputs untouched, when no
// such tier is active; the caller then runs the scalar loop.
bool UniformFromRawWide(const uint64_t* raw, double* out, size_t n);

// Affine variant matching Rng::FillUniform's scalar arithmetic:
// out[i] = lo + width * (double(raw[i] >> 11) * 2^-53), same operation
// order, no FMA contraction.
bool UniformAffineFromRawWide(const uint64_t* raw, double lo, double width,
                              double* out, size_t n);

}  // namespace zonestream::numeric::internal

#endif  // ZONESTREAM_NUMERIC_RANDOM_SIMD_H_
