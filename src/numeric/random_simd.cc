#include "numeric/random_simd.h"

#include <cmath>
#include <cstdint>

#include "numeric/simd.h"

#if defined(ZS_SIMD_ENABLED) && defined(__x86_64__)
#include <immintrin.h>
#define ZS_SIMD_X86 1
#endif

namespace zonestream::numeric::internal {

namespace {

// Finishes one block after the vector stage found a deviation (or a
// squeeze miss needing the exact log test). Lane j's nominal words are
// buf[2j] (ziggurat) and buf[2j+1] (squeeze uniform); an accepted lane
// consumed exactly those two. Returns the number of draws produced into
// out (accepted prefix, plus the deviating draw re-run through the exact
// scalar routine).
//
// The acceptance tests replay the scalar routine's arithmetic on the
// lane values the vector stage computed (bit-identical by construction):
// zig/vpos/squeeze are the vector verdicts, v3/u2/x2 the lane scalars.
inline size_t CommitLanes(Rng* rng, const ZigguratTables& t, double d,
                          double c, double scale, double* out, unsigned zig,
                          unsigned vpos, unsigned squeeze, const double* v3,
                          const double* u2, const double* x2, size_t lanes) {
  size_t j = 0;
  for (; j < lanes; ++j) {
    const unsigned bit = 1u << j;
    if ((zig & bit) && (vpos & bit)) {
      if ((squeeze & bit) ||
          std::log(u2[j]) < 0.5 * x2[j] + d * (1.0 - v3[j] + std::log(v3[j]))) {
        out[j] = scale * (d * v3[j]);
        continue;
      }
    }
    break;  // lane j deviates from the nominal two-word path
  }
  rng->engine().AdvanceRaw(2 * j);
  if (j == lanes) return lanes;
  // The engine now sits exactly where the scalar walk would read lane
  // j's first word; the scalar routine consumes whatever the rejection
  // path needs.
  out[j] = scale * MarsagliaTsangDraw(rng, t, d, c);
  return j + 1;
}

#ifdef ZS_SIMD_X86

// ------------------------------ AVX-512 ------------------------------
// 8 lanes. AVX-512DQ has native unsigned 64-bit -> double conversion,
// which is exact for the 53-bit values the sampler feeds it.
__attribute__((target("avx512f,avx512dq")))
size_t GammaFillAvx512(Rng* rng, const ZigguratTables& t, double d, double c,
                       double scale, double* out, size_t n) {
  const __m512i idx_even =
      _mm512_setr_epi64(0, 2, 4, 6, 8, 10, 12, 14);
  const __m512i idx_odd = _mm512_setr_epi64(1, 3, 5, 7, 9, 11, 13, 15);
  const __m512i k127 = _mm512_set1_epi64(127);
  const __m512i kOne64 = _mm512_set1_epi64(1);
  const __m512d kScale52 = _mm512_set1_pd(0x1.0p-52);
  const __m512d kScale53 = _mm512_set1_pd(0x1.0p-53);
  const __m512d kOne = _mm512_set1_pd(1.0);
  const __m512d kC = _mm512_set1_pd(c);
  const __m512d kSqueeze = _mm512_set1_pd(0.0331);
  const __m512d kAbsMask =
      _mm512_castsi512_pd(_mm512_set1_epi64(0x7fffffffffffffffll));
  const __m512d kD = _mm512_set1_pd(d);
  const __m512d kOut = _mm512_set1_pd(scale);

  size_t produced = 0;
  alignas(64) uint64_t buf[16];
  alignas(64) double v3a[8];
  alignas(64) double u2a[8];
  alignas(64) double x2a[8];
  while (n - produced >= 8) {
    rng->engine().PeekRaw(buf, 16);
    const __m512i w0 = _mm512_load_si512(buf);
    const __m512i w1 = _mm512_load_si512(buf + 8);
    const __m512i bits = _mm512_permutex2var_epi64(w0, idx_even, w1);
    const __m512i uw = _mm512_permutex2var_epi64(w0, idx_odd, w1);

    // Ziggurat candidate: layer i from the low 7 bits, position uniform
    // from the high 53 (exactly the scalar expressions).
    const __m512i iv = _mm512_and_si512(bits, k127);
    const __m512d xi = _mm512_i64gather_pd(iv, t.x, 8);
    const __m512d xi1 =
        _mm512_i64gather_pd(_mm512_add_epi64(iv, kOne64), t.x, 8);
    const __m512d ud = _mm512_cvtepu64_pd(_mm512_srli_epi64(bits, 11));
    const __m512d u = _mm512_sub_pd(_mm512_mul_pd(ud, kScale52), kOne);
    const __m512d x = _mm512_mul_pd(u, xi);
    const __mmask8 zig = _mm512_cmp_pd_mask(_mm512_and_pd(x, kAbsMask), xi1,
                                            _CMP_LT_OQ);

    // Marsaglia–Tsang candidate: v = (1 + c x)^3, squeeze against the
    // second word's uniform.
    const __m512d v = _mm512_add_pd(kOne, _mm512_mul_pd(kC, x));
    const __mmask8 vpos =
        _mm512_cmp_pd_mask(v, _mm512_setzero_pd(), _CMP_GT_OQ);
    const __m512d v3 = _mm512_mul_pd(_mm512_mul_pd(v, v), v);
    const __m512d u2 =
        _mm512_mul_pd(_mm512_cvtepu64_pd(_mm512_srli_epi64(uw, 11)),
                      kScale53);
    const __m512d x2 = _mm512_mul_pd(x, x);
    const __m512d squeeze_bound = _mm512_sub_pd(
        kOne, _mm512_mul_pd(_mm512_mul_pd(kSqueeze, x2), x2));
    const __mmask8 squeeze = _mm512_cmp_pd_mask(u2, squeeze_bound,
                                                _CMP_LT_OQ);

    const __mmask8 fast = zig & vpos & squeeze;
    if (fast == 0xffu) {
      _mm512_storeu_pd(out + produced,
                       _mm512_mul_pd(kOut, _mm512_mul_pd(kD, v3)));
      rng->engine().AdvanceRaw(16);
      produced += 8;
      continue;
    }
    _mm512_store_pd(v3a, v3);
    _mm512_store_pd(u2a, u2);
    _mm512_store_pd(x2a, x2);
    produced += CommitLanes(rng, t, d, c, scale, out + produced, zig, vpos,
                            squeeze, v3a, u2a, x2a, 8);
  }
  return produced;
}

// ------------------------------- AVX2 --------------------------------
// 4 lanes. AVX2 lacks u64 -> f64 conversion; the 53-bit values convert
// exactly through a 32:21 split (each half converts exactly, and their
// recombination lo + hi * 2^32 is an exact integer sum below 2^53).
__attribute__((target("avx2")))
inline __m256d CvtU53ToPd(__m256i w) {
  const __m256i lo_mask = _mm256_set1_epi64x(0xffffffffll);
  const __m256i exp52 = _mm256_set1_epi64x(0x4330000000000000ll);
  const __m256d bias52 = _mm256_set1_pd(0x1.0p52);
  const __m256d two32 = _mm256_set1_pd(0x1.0p32);
  const __m256i lo = _mm256_and_si256(w, lo_mask);
  const __m256i hi = _mm256_srli_epi64(w, 32);
  const __m256d lod =
      _mm256_sub_pd(_mm256_castsi256_pd(_mm256_or_si256(lo, exp52)), bias52);
  const __m256d hid =
      _mm256_sub_pd(_mm256_castsi256_pd(_mm256_or_si256(hi, exp52)), bias52);
  return _mm256_add_pd(lod, _mm256_mul_pd(hid, two32));
}

__attribute__((target("avx2")))
size_t GammaFillAvx2(Rng* rng, const ZigguratTables& t, double d, double c,
                     double scale, double* out, size_t n) {
  const __m256i k127 = _mm256_set1_epi64x(127);
  const __m256i kOne64 = _mm256_set1_epi64x(1);
  const __m256d kScale52 = _mm256_set1_pd(0x1.0p-52);
  const __m256d kScale53 = _mm256_set1_pd(0x1.0p-53);
  const __m256d kOne = _mm256_set1_pd(1.0);
  const __m256d kC = _mm256_set1_pd(c);
  const __m256d kSqueeze = _mm256_set1_pd(0.0331);
  const __m256d kAbsMask =
      _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fffffffffffffffll));
  const __m256d kD = _mm256_set1_pd(d);
  const __m256d kOut = _mm256_set1_pd(scale);

  size_t produced = 0;
  alignas(32) uint64_t buf[8];
  alignas(32) uint64_t bits_a[4];
  alignas(32) uint64_t uw_a[4];
  alignas(32) double v3a[4];
  alignas(32) double u2a[4];
  alignas(32) double x2a[4];
  while (n - produced >= 4) {
    rng->engine().PeekRaw(buf, 8);
    bits_a[0] = buf[0];
    bits_a[1] = buf[2];
    bits_a[2] = buf[4];
    bits_a[3] = buf[6];
    uw_a[0] = buf[1];
    uw_a[1] = buf[3];
    uw_a[2] = buf[5];
    uw_a[3] = buf[7];
    const __m256i bits = _mm256_load_si256((const __m256i*)bits_a);
    const __m256i uw = _mm256_load_si256((const __m256i*)uw_a);

    const __m256i iv = _mm256_and_si256(bits, k127);
    const __m256d xi = _mm256_i64gather_pd(t.x, iv, 8);
    const __m256d xi1 =
        _mm256_i64gather_pd(t.x, _mm256_add_epi64(iv, kOne64), 8);
    const __m256d ud = CvtU53ToPd(_mm256_srli_epi64(bits, 11));
    const __m256d u = _mm256_sub_pd(_mm256_mul_pd(ud, kScale52), kOne);
    const __m256d x = _mm256_mul_pd(u, xi);
    const __m256d zig_v =
        _mm256_cmp_pd(_mm256_and_pd(x, kAbsMask), xi1, _CMP_LT_OQ);

    const __m256d v = _mm256_add_pd(kOne, _mm256_mul_pd(kC, x));
    const __m256d vpos_v =
        _mm256_cmp_pd(v, _mm256_setzero_pd(), _CMP_GT_OQ);
    const __m256d v3 = _mm256_mul_pd(_mm256_mul_pd(v, v), v);
    const __m256d u2 =
        _mm256_mul_pd(CvtU53ToPd(_mm256_srli_epi64(uw, 11)), kScale53);
    const __m256d x2 = _mm256_mul_pd(x, x);
    const __m256d squeeze_bound = _mm256_sub_pd(
        kOne, _mm256_mul_pd(_mm256_mul_pd(kSqueeze, x2), x2));
    const __m256d squeeze_v = _mm256_cmp_pd(u2, squeeze_bound, _CMP_LT_OQ);

    const unsigned zig = (unsigned)_mm256_movemask_pd(zig_v);
    const unsigned vpos = (unsigned)_mm256_movemask_pd(vpos_v);
    const unsigned squeeze = (unsigned)_mm256_movemask_pd(squeeze_v);
    const unsigned fast = zig & vpos & squeeze;
    if (fast == 0xfu) {
      _mm256_storeu_pd(out + produced,
                       _mm256_mul_pd(kOut, _mm256_mul_pd(kD, v3)));
      rng->engine().AdvanceRaw(8);
      produced += 4;
      continue;
    }
    _mm256_store_pd(v3a, v3);
    _mm256_store_pd(u2a, u2);
    _mm256_store_pd(x2a, x2);
    produced += CommitLanes(rng, t, d, c, scale, out + produced, zig, vpos,
                            squeeze, v3a, u2a, x2a, 4);
  }
  return produced;
}

// Uniform conversion kernels: identical arithmetic to the scalar loops
// in Rng::FillUniform01 / Rng::FillUniform — srl 11, exact u64 -> f64
// conversion, multiply by 2^-53, then (affine case) multiply by the
// width and add the offset, each step correctly rounded with no FMA
// contraction — so the wide path is bit-identical by construction.
__attribute__((target("avx512f,avx512dq")))
void Uniform01FromRawAvx512(const uint64_t* raw, double* out, size_t n) {
  const __m512d scale = _mm512_set1_pd(0x1.0p-53);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i bits =
        _mm512_srli_epi64(_mm512_loadu_si512(raw + i), 11);
    _mm512_storeu_pd(out + i,
                     _mm512_mul_pd(_mm512_cvtepu64_pd(bits), scale));
  }
  for (; i < n; ++i) {
    out[i] = static_cast<double>(raw[i] >> 11) * 0x1.0p-53;
  }
}

__attribute__((target("avx512f,avx512dq")))
void UniformAffineFromRawAvx512(const uint64_t* raw, double lo, double width,
                                double* out, size_t n) {
  const __m512d scale = _mm512_set1_pd(0x1.0p-53);
  const __m512d vlo = _mm512_set1_pd(lo);
  const __m512d vwidth = _mm512_set1_pd(width);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i bits =
        _mm512_srli_epi64(_mm512_loadu_si512(raw + i), 11);
    const __m512d u = _mm512_mul_pd(_mm512_cvtepu64_pd(bits), scale);
    _mm512_storeu_pd(out + i, _mm512_add_pd(vlo, _mm512_mul_pd(vwidth, u)));
  }
  for (; i < n; ++i) {
    out[i] = lo + width * (static_cast<double>(raw[i] >> 11) * 0x1.0p-53);
  }
}

#endif  // ZS_SIMD_X86

}  // namespace

bool UniformFromRawWide(const uint64_t* raw, double* out, size_t n) {
#ifdef ZS_SIMD_X86
  if (ActiveSimdTier() == SimdTier::kAvx512) {
    Uniform01FromRawAvx512(raw, out, n);
    return true;
  }
#else
  (void)raw;
  (void)out;
  (void)n;
#endif
  return false;
}

bool UniformAffineFromRawWide(const uint64_t* raw, double lo, double width,
                              double* out, size_t n) {
#ifdef ZS_SIMD_X86
  if (ActiveSimdTier() == SimdTier::kAvx512) {
    UniformAffineFromRawAvx512(raw, lo, width, out, n);
    return true;
  }
#else
  (void)raw;
  (void)lo;
  (void)width;
  (void)out;
  (void)n;
#endif
  return false;
}

bool GammaFillWide(Rng* rng, const ZigguratTables& t, double d, double c,
                   double scale, double* out, size_t n) {
#ifdef ZS_SIMD_X86
  if (n < 8) return false;  // block setup would outweigh the win
  size_t produced;
  switch (ActiveSimdTier()) {
    case SimdTier::kAvx512:
      produced = GammaFillAvx512(rng, t, d, c, scale, out, n);
      break;
    case SimdTier::kAvx2:
      produced = GammaFillAvx2(rng, t, d, c, scale, out, n);
      break;
    case SimdTier::kScalar:
    default:
      return false;
  }
  // Tail shorter than a block: plain scalar draws (identical consumption).
  for (; produced < n; ++produced) {
    out[produced] = scale * MarsagliaTsangDraw(rng, t, d, c);
  }
  return true;
#else
  (void)rng;
  (void)t;
  (void)d;
  (void)c;
  (void)scale;
  (void)out;
  (void)n;
  return false;
#endif
}

}  // namespace zonestream::numeric::internal
