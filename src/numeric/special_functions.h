// Special functions needed by the analytic model: log-gamma, the regularized
// incomplete gamma function and its inverse (Gamma-distribution CDF and
// quantiles), and the standard normal CDF / quantile (for the CLT baseline).
//
// Implemented from scratch (series / continued-fraction expansions in the
// style of Numerical Recipes); only std::lgamma/std::erfc are taken from
// the standard library.
#ifndef ZONESTREAM_NUMERIC_SPECIAL_FUNCTIONS_H_
#define ZONESTREAM_NUMERIC_SPECIAL_FUNCTIONS_H_

namespace zonestream::numeric {

// Natural log of the Gamma function, ln Γ(x), for x > 0.
double LogGamma(double x);

// Regularized lower incomplete gamma function P(a, x) = γ(a, x) / Γ(a),
// for a > 0, x >= 0. This is the CDF of a Gamma(shape=a, scale=1) variate.
double RegularizedGammaP(double a, double x);

// Regularized upper incomplete gamma function Q(a, x) = 1 - P(a, x).
double RegularizedGammaQ(double a, double x);

// Inverse of P(a, .): returns x such that P(a, x) = p, for p in [0, 1).
// Used for Gamma-distribution percentiles (e.g. the paper's 99-percentile
// fragment size in the worst-case comparison, eq. 4.1).
double InverseRegularizedGammaP(double a, double p);

// CDF of the standard normal distribution.
double NormalCdf(double x);

// Quantile (inverse CDF) of the standard normal distribution, p in (0, 1).
// Acklam's rational approximation polished with one Newton step; absolute
// error well below 1e-9 over the full open interval.
double NormalQuantile(double p);

}  // namespace zonestream::numeric

#endif  // ZONESTREAM_NUMERIC_SPECIAL_FUNCTIONS_H_
