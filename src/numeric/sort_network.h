// Branch-free small-array sort for the simulator's per-round SCAN
// ordering. std::sort on a fresh random permutation costs ~45 cycles
// per key in branch mispredictions alone at n ~ 26; a data-oblivious
// sorting network runs the same comparisons every round (min/max pairs,
// no data-dependent branches), so it sorts small batches several times
// faster. Dispatches across the SIMD tiers (numeric/simd.h): a bitonic
// network over 16-lane AVX-512 / 8-lane AVX2 registers, or an unrolled
// Batcher odd-even merge network in scalar code. A sort's output is the
// unique ascending permutation, so every tier (and std::sort) agrees
// bit-for-bit whenever keys are distinct.
#ifndef ZONESTREAM_NUMERIC_SORT_NETWORK_H_
#define ZONESTREAM_NUMERIC_SORT_NETWORK_H_

#include <cstddef>
#include <cstdint>

namespace zonestream::numeric {

// Largest array SortU32Network accepts (one padded bitonic block).
inline constexpr size_t kSortNetworkMaxN = 32;

// Sorts keys[0..n) ascending; n must be at most kSortNetworkMaxN.
// Internally pads to 32 lanes with UINT32_MAX sentinels, so keys equal
// to UINT32_MAX still sort correctly (sentinels are merely appended).
void SortU32Network(uint32_t* keys, size_t n);

}  // namespace zonestream::numeric

#endif  // ZONESTREAM_NUMERIC_SORT_NETWORK_H_
