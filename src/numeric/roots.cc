#include "numeric/roots.h"

#include <cmath>

#include "common/check.h"

namespace zonestream::numeric {

RootResult Bisect(const std::function<double(double)>& f, double lo, double hi,
                  const RootOptions& options) {
  ZS_CHECK_LE(lo, hi);
  RootResult result;
  double flo = f(lo);
  double fhi = f(hi);
  if (flo == 0.0) {
    result = {lo, 0.0, 0, true};
    return result;
  }
  if (fhi == 0.0) {
    result = {hi, 0.0, 0, true};
    return result;
  }
  ZS_CHECK(flo * fhi < 0.0);

  double mid = 0.5 * (lo + hi);
  for (int i = 0; i < options.max_iterations; ++i) {
    mid = 0.5 * (lo + hi);
    const double fmid = f(mid);
    result.iterations = i + 1;
    if (fmid == 0.0 || std::fabs(fmid) <= options.f_tolerance ||
        (hi - lo) < options.x_tolerance * (std::fabs(mid) + 1e-30)) {
      result.x = mid;
      result.f_of_x = fmid;
      result.converged = true;
      return result;
    }
    if (flo * fmid < 0.0) {
      hi = mid;
      fhi = fmid;
    } else {
      lo = mid;
      flo = fmid;
    }
  }
  result.x = mid;
  result.f_of_x = f(mid);
  result.converged = false;
  return result;
}

RootResult NewtonBisect(const std::function<double(double)>& f,
                        const std::function<double(double)>& df, double lo,
                        double hi, const RootOptions& options) {
  ZS_CHECK_LE(lo, hi);
  RootResult result;
  double flo = f(lo);
  double fhi = f(hi);
  if (flo == 0.0) return {lo, 0.0, 0, true};
  if (fhi == 0.0) return {hi, 0.0, 0, true};
  ZS_CHECK(flo * fhi < 0.0);

  // Orient so that f(a) < 0 < f(b).
  double a = lo;
  double b = hi;
  if (flo > 0.0) std::swap(a, b);

  double x = 0.5 * (a + b);
  for (int i = 0; i < options.max_iterations; ++i) {
    result.iterations = i + 1;
    const double fx = f(x);
    if (fx == 0.0 || std::fabs(fx) <= options.f_tolerance) {
      result.x = x;
      result.f_of_x = fx;
      result.converged = true;
      return result;
    }
    if (fx < 0.0) {
      a = x;
    } else {
      b = x;
    }
    const double dfx = df(x);
    double next;
    if (dfx != 0.0) {
      next = x - fx / dfx;
      // Reject Newton steps that leave the bracket.
      const double blo = std::fmin(a, b);
      const double bhi = std::fmax(a, b);
      if (!(next > blo && next < bhi)) next = 0.5 * (a + b);
    } else {
      next = 0.5 * (a + b);
    }
    if (std::fabs(next - x) < options.x_tolerance * (std::fabs(x) + 1e-30)) {
      result.x = next;
      result.f_of_x = f(next);
      result.converged = true;
      return result;
    }
    x = next;
  }
  result.x = x;
  result.f_of_x = f(x);
  result.converged = false;
  return result;
}

bool BracketRoot(const std::function<double(double)>& f, double* lo,
                 double* hi, int max_expansions) {
  ZS_CHECK(lo != nullptr);
  ZS_CHECK(hi != nullptr);
  ZS_CHECK_LT(*lo, *hi);
  double flo = f(*lo);
  double fhi = f(*hi);
  constexpr double kGrow = 1.6;
  for (int i = 0; i < max_expansions; ++i) {
    if (flo * fhi <= 0.0) return true;
    if (std::fabs(flo) < std::fabs(fhi)) {
      *lo += kGrow * (*lo - *hi);
      flo = f(*lo);
    } else {
      *hi += kGrow * (*hi - *lo);
      fhi = f(*hi);
    }
  }
  return flo * fhi <= 0.0;
}

}  // namespace zonestream::numeric
