#include "numeric/statistics.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "numeric/special_functions.h"

namespace zonestream::numeric {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::fmin(min_, x);
    max_ = std::fmax(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  min_ = std::fmin(min_, other.min_);
  max_ = std::fmax(max_, other.max_);
}

RunningStatsState RunningStats::ExportState() const {
  RunningStatsState state;
  state.count = count_;
  state.mean = mean_;
  state.m2 = m2_;
  state.min = min_;
  state.max = max_;
  return state;
}

void RunningStats::ImportState(const RunningStatsState& state) {
  count_ = state.count;
  mean_ = state.mean;
  m2_ = state.m2;
  min_ = state.min;
  max_ = state.max;
}

double RunningStats::mean() const { return mean_; }

double RunningStats::variance() const {
  if (count_ < 1) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningStats::sample_variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  ZS_CHECK_GT(count_, 0);
  return min_;
}

double RunningStats::max() const {
  ZS_CHECK_GT(count_, 0);
  return max_;
}

double Percentile(std::vector<double> values, double q) {
  ZS_CHECK(!values.empty());
  ZS_CHECK_GE(q, 0.0);
  ZS_CHECK_LE(q, 1.0);
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  if (lo + 1 >= values.size()) return values.back();
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[lo + 1] * frac;
}

ProportionInterval WilsonInterval(int64_t successes, int64_t trials,
                                  double confidence) {
  return WilsonIntervalReal(static_cast<double>(successes),
                            static_cast<double>(trials), confidence);
}

ProportionInterval WilsonIntervalReal(double successes, double trials,
                                      double confidence) {
  ZS_CHECK_GE(successes, 0.0);
  ZS_CHECK_GE(trials, successes);
  ZS_CHECK_GT(trials, 0.0);
  ZS_CHECK_GT(confidence, 0.0);
  ZS_CHECK_LT(confidence, 1.0);
  const double z = NormalQuantile(0.5 + 0.5 * confidence);
  const double n = trials;
  const double p = successes / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double spread =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  ProportionInterval interval;
  interval.point = p;
  interval.lower = std::fmax(0.0, center - spread);
  interval.upper = std::fmin(1.0, center + spread);
  return interval;
}

ProportionInterval ClusteredProportionInterval(double mean_fraction,
                                               double fraction_sample_variance,
                                               int64_t clusters,
                                               int64_t cluster_size,
                                               double confidence) {
  ZS_CHECK_GT(clusters, 0);
  ZS_CHECK_GT(cluster_size, 0);
  ZS_CHECK_GE(mean_fraction, 0.0);
  ZS_CHECK_LE(mean_fraction, 1.0);
  ZS_CHECK_GE(fraction_sample_variance, 0.0);
  const double p = mean_fraction;
  const double total =
      static_cast<double>(clusters) * static_cast<double>(cluster_size);
  // Degenerate fractions carry no usable between-cluster variance; assume
  // full within-cluster correlation (one effective trial per cluster).
  double deff = static_cast<double>(cluster_size);
  if (p > 0.0 && p < 1.0 && fraction_sample_variance > 0.0) {
    const double independent_var = p * (1.0 - p) / total;
    const double cluster_var =
        fraction_sample_variance / static_cast<double>(clusters);
    deff = cluster_var / independent_var;
    // Never report a tighter interval than the pooled one would: negative
    // within-cluster correlation is not distinguishable from sampling
    // noise at realistic cluster counts.
    deff = std::clamp(deff, 1.0, static_cast<double>(cluster_size));
  }
  const double effective_trials = std::fmax(1.0, total / deff);
  ProportionInterval interval =
      WilsonIntervalReal(p * effective_trials, effective_trials, confidence);
  // Keep the point estimate exact (the Wilson point is p by construction,
  // but restate it to be independent of rounding in the scaling above).
  interval.point = p;
  return interval;
}

ProportionInterval ClusteredProportionInterval(
    const std::vector<int64_t>& successes_per_cluster, int64_t cluster_size,
    double confidence) {
  ZS_CHECK(!successes_per_cluster.empty());
  ZS_CHECK_GT(cluster_size, 0);
  RunningStats fractions;
  for (int64_t successes : successes_per_cluster) {
    ZS_CHECK_GE(successes, 0);
    ZS_CHECK_LE(successes, cluster_size);
    fractions.Add(static_cast<double>(successes) /
                  static_cast<double>(cluster_size));
  }
  return ClusteredProportionInterval(
      fractions.mean(), fractions.sample_variance(),
      static_cast<int64_t>(successes_per_cluster.size()), cluster_size,
      confidence);
}

double KolmogorovSmirnovStatistic(std::vector<double> samples,
                                  const std::function<double(double)>& cdf) {
  ZS_CHECK(!samples.empty());
  std::sort(samples.begin(), samples.end());
  const double n = static_cast<double>(samples.size());
  double d = 0.0;
  for (size_t i = 0; i < samples.size(); ++i) {
    const double f = cdf(samples[i]);
    // Empirical CDF jumps from i/n to (i+1)/n at the i-th order statistic.
    d = std::fmax(d, std::fabs(f - static_cast<double>(i) / n));
    d = std::fmax(d, std::fabs(static_cast<double>(i + 1) / n - f));
  }
  return d;
}

double KolmogorovSmirnovCriticalValue(int64_t n, double alpha) {
  ZS_CHECK_GT(n, 0);
  ZS_CHECK_GT(alpha, 0.0);
  ZS_CHECK_LT(alpha, 1.0);
  return std::sqrt(-std::log(alpha / 2.0) / 2.0) /
         std::sqrt(static_cast<double>(n));
}

Histogram::Histogram(double lo, double hi, int bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / bins), counts_(bins, 0) {
  ZS_CHECK_LT(lo, hi);
  ZS_CHECK_GT(bins, 0);
}

void Histogram::Add(double x) {
  int idx = static_cast<int>((x - lo_) / width_);
  idx = std::clamp(idx, 0, static_cast<int>(counts_.size()) - 1);
  ++counts_[idx];
  ++total_;
}

double Histogram::bin_center(int i) const {
  ZS_CHECK_GE(i, 0);
  ZS_CHECK_LT(i, bins());
  return lo_ + (i + 0.5) * width_;
}

double Histogram::density(int i) const {
  ZS_CHECK_GE(i, 0);
  ZS_CHECK_LT(i, bins());
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_[i]) /
         (static_cast<double>(total_) * width_);
}

}  // namespace zonestream::numeric
