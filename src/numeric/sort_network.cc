// Sorting networks over one padded 32-key block.
//
// Scalar tier: Batcher's odd-even mergesort network (191 compare-
// exchanges for n = 32), generated at compile time and fully unrolled —
// each compare-exchange compiles to cmp + two cmovs, so the whole sort
// retires with zero data-dependent branches.
//
// Vector tiers: the classic bitonic network. For 32 keys in two 16-lane
// (or four 8-lane) registers, every layer is "compare lane g with lane
// g ^ j, keep min at the ascending end": an in-register shuffle plus
// min/max plus a per-lane blend whose mask is a compile-time constant
// of the layer, or a bare cross-register min/max when j spans the
// register width. Direction of lane g at stage (k, j) follows the
// textbook recurrence: take-max(g) = ((g & j) != 0) XOR ((g & k) != 0).
#include "numeric/sort_network.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <utility>

#include "common/check.h"
#include "numeric/simd.h"

#if defined(ZS_SIMD_ENABLED) && defined(__x86_64__)
#include <immintrin.h>
#endif

namespace zonestream::numeric {
namespace {

constexpr int kBlock = 32;

// ---- Scalar: Batcher odd-even mergesort, compile-time generated ---------

struct CePair {
  uint8_t a = 0;
  uint8_t b = 0;
};

struct Network {
  std::array<CePair, 256> ce{};
  size_t count = 0;
};

constexpr Network MakeBatcher32() {
  Network net{};
  const int n = kBlock;
  for (int p = 1; p < n; p += p) {
    for (int k = p; k >= 1; k /= 2) {
      for (int j = k % p; j + k < n; j += 2 * k) {
        for (int i = 0; i < k; ++i) {
          if ((i + j) / (p + p) == (i + j + k) / (p + p)) {
            net.ce[net.count++] = {static_cast<uint8_t>(i + j),
                                   static_cast<uint8_t>(i + j + k)};
          }
        }
      }
    }
  }
  return net;
}

constexpr Network kNet32 = MakeBatcher32();
static_assert(kNet32.count == 191, "Batcher network for 32 keys has 191 CEs");

template <size_t I>
inline void RunCe(uint32_t* a) {
  constexpr CePair ce = kNet32.ce[I];
  const uint32_t x = a[ce.a];
  const uint32_t y = a[ce.b];
  a[ce.a] = y < x ? y : x;
  a[ce.b] = y < x ? x : y;
}

template <size_t... I>
inline void RunNetwork(uint32_t* a, std::index_sequence<I...>) {
  (RunCe<I>(a), ...);
}

void Sort32Scalar(uint32_t* a) {
  RunNetwork(a, std::make_index_sequence<kNet32.count>{});
}

// ---- Bitonic layer schedule, shared by the vector tiers ------------------

struct Layer {
  int k = 0;
  int j = 0;
};

constexpr std::array<Layer, 15> kLayers = {{{2, 1},
                                            {4, 2},
                                            {4, 1},
                                            {8, 4},
                                            {8, 2},
                                            {8, 1},
                                            {16, 8},
                                            {16, 4},
                                            {16, 2},
                                            {16, 1},
                                            {32, 16},
                                            {32, 8},
                                            {32, 4},
                                            {32, 2},
                                            {32, 1}}};

constexpr bool TakeMax(int g, int k, int j) {
  return ((g & j) != 0) != ((g & k) != 0);
}

#if defined(ZS_SIMD_ENABLED) && defined(__x86_64__)

// Per-layer 16-bit take-max masks for the two 16-lane registers.
constexpr std::array<std::array<uint16_t, 2>, 15> MakeMasks16() {
  std::array<std::array<uint16_t, 2>, 15> masks{};
  for (size_t layer = 0; layer < kLayers.size(); ++layer) {
    for (int reg = 0; reg < 2; ++reg) {
      uint16_t m = 0;
      for (int lane = 0; lane < 16; ++lane) {
        const int g = reg * 16 + lane;
        if (TakeMax(g, kLayers[layer].k, kLayers[layer].j)) {
          m = static_cast<uint16_t>(m | (1u << lane));
        }
      }
      masks[layer][reg] = m;
    }
  }
  return masks;
}

constexpr std::array<std::array<uint16_t, 2>, 15> kMasks16 = MakeMasks16();

__attribute__((target("avx512f"))) void Sort32Avx512(uint32_t* a) {
  __m512i v0 = _mm512_loadu_si512(a);
  __m512i v1 = _mm512_loadu_si512(a + 16);
  const __m512i iota =
      _mm512_set_epi32(15, 14, 13, 12, 11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1, 0);
  for (size_t layer = 0; layer < kLayers.size(); ++layer) {
    const int j = kLayers[layer].j;
    if (j == 16) {
      // Lanes pair with the same position in the other register; at the
      // only such stage (k = 32) the low register keeps the minima.
      const __m512i mn = _mm512_min_epu32(v0, v1);
      const __m512i mx = _mm512_max_epu32(v0, v1);
      v0 = mn;
      v1 = mx;
    } else {
      const __m512i idx = _mm512_xor_si512(iota, _mm512_set1_epi32(j));
      const __m512i p0 = _mm512_permutexvar_epi32(idx, v0);
      const __m512i p1 = _mm512_permutexvar_epi32(idx, v1);
      v0 = _mm512_mask_blend_epi32(kMasks16[layer][0],
                                   _mm512_min_epu32(v0, p0),
                                   _mm512_max_epu32(v0, p0));
      v1 = _mm512_mask_blend_epi32(kMasks16[layer][1],
                                   _mm512_min_epu32(v1, p1),
                                   _mm512_max_epu32(v1, p1));
    }
  }
  _mm512_storeu_si512(a, v0);
  _mm512_storeu_si512(a + 16, v1);
}

// Per-layer per-register 8-lane blend masks (all-ones selects max), for
// the twelve in-register layers (j < 8) in schedule order.
constexpr std::array<std::array<std::array<int32_t, 8>, 4>, 12>
MakeMasks8() {
  std::array<std::array<std::array<int32_t, 8>, 4>, 12> masks{};
  size_t out = 0;
  for (size_t layer = 0; layer < kLayers.size(); ++layer) {
    if (kLayers[layer].j >= 8) continue;
    for (int reg = 0; reg < 4; ++reg) {
      for (int lane = 0; lane < 8; ++lane) {
        const int g = reg * 8 + lane;
        masks[out][reg][lane] =
            TakeMax(g, kLayers[layer].k, kLayers[layer].j) ? -1 : 0;
      }
    }
    ++out;
  }
  return masks;
}

constexpr std::array<std::array<std::array<int32_t, 8>, 4>, 12> kMasks8 =
    MakeMasks8();

__attribute__((target("avx2"))) void Sort32Avx2(uint32_t* a) {
  __m256i v[4];
  for (int r = 0; r < 4; ++r) {
    v[r] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + 8 * r));
  }
  const __m256i iota = _mm256_set_epi32(7, 6, 5, 4, 3, 2, 1, 0);
  size_t in_reg_layer = 0;
  for (size_t layer = 0; layer < kLayers.size(); ++layer) {
    const int k = kLayers[layer].k;
    const int j = kLayers[layer].j;
    if (j >= 8) {
      // Whole registers pair up (partner reg = reg ^ j/8) and the
      // take-max direction is constant across a register's lanes.
      const int step = j / 8;
      for (int r = 0; r < 4; ++r) {
        if ((r & step) != 0) continue;
        const int s = r | step;
        const __m256i mn = _mm256_min_epu32(v[r], v[s]);
        const __m256i mx = _mm256_max_epu32(v[r], v[s]);
        v[r] = TakeMax(8 * r, k, j) ? mx : mn;
        v[s] = TakeMax(8 * s, k, j) ? mx : mn;
      }
    } else {
      const __m256i idx = _mm256_xor_si256(iota, _mm256_set1_epi32(j));
      for (int r = 0; r < 4; ++r) {
        const __m256i p = _mm256_permutevar8x32_epi32(v[r], idx);
        const __m256i mask = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(kMasks8[in_reg_layer][r].data()));
        v[r] = _mm256_blendv_epi8(_mm256_min_epu32(v[r], p),
                                  _mm256_max_epu32(v[r], p), mask);
      }
      ++in_reg_layer;
    }
  }
  for (int r = 0; r < 4; ++r) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(a + 8 * r), v[r]);
  }
}

#endif  // ZS_SIMD_ENABLED && __x86_64__

}  // namespace

void SortU32Network(uint32_t* keys, size_t n) {
  ZS_CHECK_LE(n, kSortNetworkMaxN);
  alignas(64) uint32_t block[kBlock];
  std::memcpy(block, keys, n * sizeof(uint32_t));
  std::fill(block + n, block + kBlock, ~uint32_t{0});
#if defined(ZS_SIMD_ENABLED) && defined(__x86_64__)
  switch (ActiveSimdTier()) {
    case SimdTier::kAvx512:
      Sort32Avx512(block);
      break;
    case SimdTier::kAvx2:
      Sort32Avx2(block);
      break;
    case SimdTier::kScalar:
      Sort32Scalar(block);
      break;
  }
#else
  Sort32Scalar(block);
#endif
  std::memcpy(keys, block, n * sizeof(uint32_t));
}

}  // namespace zonestream::numeric
