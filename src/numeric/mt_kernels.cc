// MT19937-64 twist + temper kernels. The recurrence is
//   y      = (X[k] & UPPER) | (X[k+1] & LOWER)
//   X[k+n] = X[k+m] ^ (y >> 1) ^ ((y & 1) ? A : 0)
// with n = 312, m = 156. Writing the block update as two modulo-free
// regions (k < n-m reads old words ahead of the cursor, k >= n-m reads
// the new prefix) plus a branchless matrix term turns the naive
// one-word-at-a-time loop — a hard-to-predict branch and a division-by-
// constant per word — into straight-line code that widens to 4 or 8
// lanes of plain integer ops. Integer arithmetic has no rounding, so
// all tiers are bit-identical; the tests only need to pin the scalar
// tier against std::mt19937_64.
#include "numeric/mt_kernels.h"

#include <cstddef>
#include <cstdint>

#include "numeric/simd.h"

#if defined(ZS_SIMD_ENABLED) && defined(__x86_64__)
#include <immintrin.h>
#endif

namespace zonestream::numeric::internal {
namespace {

constexpr size_t kN = 312;
constexpr size_t kM = 156;
constexpr uint64_t kMatrixA = 0xB5026F5AA96619E9ull;
constexpr uint64_t kUpperMask = 0xFFFFFFFF80000000ull;
constexpr uint64_t kLowerMask = 0x000000007FFFFFFFull;

constexpr uint64_t kTemperMask1 = 0x5555555555555555ull;
constexpr uint64_t kTemperMask2 = 0x71D67FFFEDA60000ull;
constexpr uint64_t kTemperMask3 = 0xFFF7EEE000000000ull;

inline uint64_t TwistWord(uint64_t base, uint64_t hi, uint64_t lo) {
  const uint64_t y = (hi & kUpperMask) | (lo & kLowerMask);
  return base ^ (y >> 1) ^ ((0 - (y & 1u)) & kMatrixA);
}

void TwistScalar(const uint64_t* src, uint64_t* dst) {
  for (size_t i = 0; i < kM; ++i) {
    dst[i] = TwistWord(src[i + kM], src[i], src[i + 1]);
  }
  for (size_t i = kM; i < kN - 1; ++i) {
    dst[i] = TwistWord(dst[i - kM], src[i], src[i + 1]);
  }
  dst[kN - 1] = TwistWord(dst[kM - 1], src[kN - 1], dst[0]);
}

void TemperScalar(const uint64_t* src, uint64_t* dst, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    uint64_t y = src[i];
    y ^= (y >> 29) & kTemperMask1;
    y ^= (y << 17) & kTemperMask2;
    y ^= (y << 37) & kTemperMask3;
    y ^= y >> 43;
    dst[i] = y;
  }
}

#if defined(ZS_SIMD_ENABLED) && defined(__x86_64__)

// ---- AVX2 (4 lanes) ----------------------------------------------------

__attribute__((target("avx2"))) inline __m256i TwistWide4(
    __m256i base, __m256i hi, __m256i lo) {
  const __m256i upper = _mm256_set1_epi64x(
      static_cast<long long>(kUpperMask));
  const __m256i lower = _mm256_set1_epi64x(
      static_cast<long long>(kLowerMask));
  const __m256i a = _mm256_set1_epi64x(static_cast<long long>(kMatrixA));
  const __m256i y = _mm256_or_si256(_mm256_and_si256(hi, upper),
                                    _mm256_and_si256(lo, lower));
  // (0 - (y & 1)) & A without a branch: sign-extend the low bit.
  const __m256i odd = _mm256_and_si256(y, _mm256_set1_epi64x(1));
  const __m256i mag =
      _mm256_and_si256(_mm256_sub_epi64(_mm256_setzero_si256(), odd), a);
  return _mm256_xor_si256(base,
                          _mm256_xor_si256(_mm256_srli_epi64(y, 1), mag));
}

__attribute__((target("avx2"))) void TwistAvx2(const uint64_t* src,
                                               uint64_t* dst) {
  // Region 1: i in [0, 156), an exact multiple of the lane width; loads
  // stay at indices >= i while stores cover [0, i+4), so in-place
  // (dst == src) reads old words.
  for (size_t i = 0; i < kM; i += 4) {
    const __m256i hi =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i lo =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i + 1));
    const __m256i base = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(src + i + kM));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        TwistWide4(base, hi, lo));
  }
  // Region 2: base words come from the new prefix, 156 lanes behind the
  // store cursor — no overlap at width 4. 155 entries: 38 full vectors
  // ([156, 308)) plus three scalar words.
  for (size_t i = kM; i + 4 <= kN - 1; i += 4) {
    const __m256i hi =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i lo =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i + 1));
    const __m256i base = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(dst + i - kM));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        TwistWide4(base, hi, lo));
  }
  for (size_t i = kN - 4; i < kN - 1; ++i) {
    dst[i] = TwistWord(dst[i - kM], src[i], src[i + 1]);
  }
  dst[kN - 1] = TwistWord(dst[kM - 1], src[kN - 1], dst[0]);
}

__attribute__((target("avx2"))) void TemperAvx2(const uint64_t* src,
                                                uint64_t* dst, size_t n) {
  const __m256i m1 = _mm256_set1_epi64x(static_cast<long long>(kTemperMask1));
  const __m256i m2 = _mm256_set1_epi64x(static_cast<long long>(kTemperMask2));
  const __m256i m3 = _mm256_set1_epi64x(static_cast<long long>(kTemperMask3));
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i y =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    y = _mm256_xor_si256(y, _mm256_and_si256(_mm256_srli_epi64(y, 29), m1));
    y = _mm256_xor_si256(y, _mm256_and_si256(_mm256_slli_epi64(y, 17), m2));
    y = _mm256_xor_si256(y, _mm256_and_si256(_mm256_slli_epi64(y, 37), m3));
    y = _mm256_xor_si256(y, _mm256_srli_epi64(y, 43));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), y);
  }
  if (i < n) TemperScalar(src + i, dst + i, n - i);
}

// ---- AVX-512 (8 lanes) -------------------------------------------------

__attribute__((target("avx512f"))) inline __m512i TwistWide8(
    __m512i base, __m512i hi, __m512i lo) {
  const __m512i upper = _mm512_set1_epi64(
      static_cast<long long>(kUpperMask));
  const __m512i lower = _mm512_set1_epi64(
      static_cast<long long>(kLowerMask));
  const __m512i a = _mm512_set1_epi64(static_cast<long long>(kMatrixA));
  const __m512i y = _mm512_or_si512(_mm512_and_si512(hi, upper),
                                    _mm512_and_si512(lo, lower));
  const __m512i odd = _mm512_and_si512(y, _mm512_set1_epi64(1));
  const __m512i mag =
      _mm512_and_si512(_mm512_sub_epi64(_mm512_setzero_si512(), odd), a);
  return _mm512_xor_si512(base,
                          _mm512_xor_si512(_mm512_srli_epi64(y, 1), mag));
}

__attribute__((target("avx512f"))) void TwistAvx512(const uint64_t* src,
                                                    uint64_t* dst) {
  // Same two-region structure as TwistAvx2 at width 8. 156 % 8 == 4, so
  // region 1 vectorizes [0, 152) and finishes four words scalar; region
  // 2 vectorizes [156, 308) and finishes three words scalar.
  for (size_t i = 0; i + 8 <= kM; i += 8) {
    const __m512i hi = _mm512_loadu_si512(src + i);
    const __m512i lo = _mm512_loadu_si512(src + i + 1);
    const __m512i base = _mm512_loadu_si512(src + i + kM);
    _mm512_storeu_si512(dst + i, TwistWide8(base, hi, lo));
  }
  for (size_t i = kM - 4; i < kM; ++i) {
    dst[i] = TwistWord(src[i + kM], src[i], src[i + 1]);
  }
  for (size_t i = kM; i + 8 <= kN - 1; i += 8) {
    const __m512i hi = _mm512_loadu_si512(src + i);
    const __m512i lo = _mm512_loadu_si512(src + i + 1);
    const __m512i base = _mm512_loadu_si512(dst + i - kM);
    _mm512_storeu_si512(dst + i, TwistWide8(base, hi, lo));
  }
  for (size_t i = kN - 4; i < kN - 1; ++i) {
    dst[i] = TwistWord(dst[i - kM], src[i], src[i + 1]);
  }
  dst[kN - 1] = TwistWord(dst[kM - 1], src[kN - 1], dst[0]);
}

__attribute__((target("avx512f"))) void TemperAvx512(const uint64_t* src,
                                                     uint64_t* dst,
                                                     size_t n) {
  const __m512i m1 = _mm512_set1_epi64(static_cast<long long>(kTemperMask1));
  const __m512i m2 = _mm512_set1_epi64(static_cast<long long>(kTemperMask2));
  const __m512i m3 = _mm512_set1_epi64(static_cast<long long>(kTemperMask3));
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m512i y = _mm512_loadu_si512(src + i);
    y = _mm512_xor_si512(y, _mm512_and_si512(_mm512_srli_epi64(y, 29), m1));
    y = _mm512_xor_si512(y, _mm512_and_si512(_mm512_slli_epi64(y, 17), m2));
    y = _mm512_xor_si512(y, _mm512_and_si512(_mm512_slli_epi64(y, 37), m3));
    y = _mm512_xor_si512(y, _mm512_srli_epi64(y, 43));
    _mm512_storeu_si512(dst + i, y);
  }
  if (i < n) TemperScalar(src + i, dst + i, n - i);
}

#endif  // ZS_SIMD_ENABLED && __x86_64__

}  // namespace

void MtTwistBlock(const uint64_t* src, uint64_t* dst) {
#if defined(ZS_SIMD_ENABLED) && defined(__x86_64__)
  switch (ActiveSimdTier()) {
    case SimdTier::kAvx512:
      TwistAvx512(src, dst);
      return;
    case SimdTier::kAvx2:
      TwistAvx2(src, dst);
      return;
    case SimdTier::kScalar:
      break;
  }
#endif
  TwistScalar(src, dst);
}

void MtTemperRange(const uint64_t* src, uint64_t* dst, size_t n) {
#if defined(ZS_SIMD_ENABLED) && defined(__x86_64__)
  switch (ActiveSimdTier()) {
    case SimdTier::kAvx512:
      TemperAvx512(src, dst, n);
      return;
    case SimdTier::kAvx2:
      TemperAvx2(src, dst, n);
      return;
    case SimdTier::kScalar:
      break;
  }
#endif
  TemperScalar(src, dst, n);
}

}  // namespace zonestream::numeric::internal
