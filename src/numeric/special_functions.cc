#include "numeric/special_functions.h"

#include <cmath>
#include <limits>

#include "common/check.h"

namespace zonestream::numeric {
namespace {

constexpr int kMaxIterations = 500;
constexpr double kEpsilon = 3.0e-15;
constexpr double kTiny = 1.0e-300;

// Series expansion of P(a, x), converges quickly for x < a + 1.
double GammaPSeries(double a, double x) {
  double ap = a;
  double sum = 1.0 / a;
  double term = sum;
  for (int n = 0; n < kMaxIterations; ++n) {
    ap += 1.0;
    term *= x / ap;
    sum += term;
    if (std::fabs(term) < std::fabs(sum) * kEpsilon) break;
  }
  return sum * std::exp(-x + a * std::log(x) - LogGamma(a));
}

// Continued fraction for Q(a, x) (modified Lentz), converges for x > a + 1.
double GammaQContinuedFraction(double a, double x) {
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIterations; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < kEpsilon) break;
  }
  return std::exp(-x + a * std::log(x) - LogGamma(a)) * h;
}

}  // namespace

double LogGamma(double x) {
  ZS_CHECK_GT(x, 0.0);
  return std::lgamma(x);
}

double RegularizedGammaP(double a, double x) {
  ZS_CHECK_GT(a, 0.0);
  ZS_CHECK_GE(x, 0.0);
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return GammaPSeries(a, x);
  return 1.0 - GammaQContinuedFraction(a, x);
}

double RegularizedGammaQ(double a, double x) {
  ZS_CHECK_GT(a, 0.0);
  ZS_CHECK_GE(x, 0.0);
  if (x == 0.0) return 1.0;
  if (x < a + 1.0) return 1.0 - GammaPSeries(a, x);
  return GammaQContinuedFraction(a, x);
}

double InverseRegularizedGammaP(double a, double p) {
  ZS_CHECK_GT(a, 0.0);
  ZS_CHECK_GE(p, 0.0);
  ZS_CHECK_LT(p, 1.0);
  if (p == 0.0) return 0.0;

  // Bracket the root in log space. P(a, x) -> 0 as x -> 0 like
  // x^a/(a Γ(a)), so very small quantiles sit at astronomically small x for
  // small shapes; the log-space bracket handles the full range robustly.
  const double g = LogGamma(a);
  // Lower endpoint from the leading series term: x_lo with
  // P(a, x_lo) <= p is (p a Γ(a))^{1/a} scaled down.
  double log_lo = (std::log(p) + std::log(a) + g) / a - 1.0;
  double log_hi = std::log(a + 30.0 * std::sqrt(a) + 30.0);  // far upper tail
  for (int i = 0; i < 400 && RegularizedGammaP(a, std::exp(log_lo)) > p; ++i) {
    log_lo -= 2.0;
  }
  for (int i = 0; i < 400 && RegularizedGammaP(a, std::exp(log_hi)) < p; ++i) {
    log_hi += 1.0;
  }

  // Bisection on log x until the bracket is tight.
  for (int i = 0; i < 200 && (log_hi - log_lo) > 1e-14; ++i) {
    const double log_mid = 0.5 * (log_lo + log_hi);
    if (RegularizedGammaP(a, std::exp(log_mid)) < p) {
      log_lo = log_mid;
    } else {
      log_hi = log_mid;
    }
  }
  double x = std::exp(0.5 * (log_lo + log_hi));

  // Newton polish with the analytic density (in linear space).
  for (int i = 0; i < 4; ++i) {
    const double err = RegularizedGammaP(a, x) - p;
    const double density = std::exp(-x + (a - 1.0) * std::log(x) - g);
    if (density <= 0.0 || !std::isfinite(density)) break;
    double step = err / density;
    const double max_step = 0.5 * x;
    if (step > max_step) step = max_step;
    if (step < -max_step) step = -max_step;
    x -= step;
  }
  return x;
}

double NormalCdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

double NormalQuantile(double p) {
  ZS_CHECK_GT(p, 0.0);
  ZS_CHECK_LT(p, 1.0);
  // Acklam's rational approximation.
  static constexpr double kA[6] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                   -2.759285104469687e+02, 1.383577518672690e+02,
                                   -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double kB[5] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                   -1.556989798598866e+02, 6.680131188771972e+01,
                                   -1.328068155288572e+01};
  static constexpr double kC[6] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                   -2.400758277161838e+00, -2.549732539343734e+00,
                                   4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double kD[4] = {7.784695709041462e-03, 3.224671290700398e-01,
                                   2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double kLow = 0.02425;
  constexpr double kHigh = 1.0 - kLow;

  double x;
  if (p < kLow) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((kC[0] * q + kC[1]) * q + kC[2]) * q + kC[3]) * q + kC[4]) * q +
         kC[5]) /
        ((((kD[0] * q + kD[1]) * q + kD[2]) * q + kD[3]) * q + 1.0);
  } else if (p <= kHigh) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((kA[0] * r + kA[1]) * r + kA[2]) * r + kA[3]) * r + kA[4]) * r +
         kA[5]) *
        q /
        (((((kB[0] * r + kB[1]) * r + kB[2]) * r + kB[3]) * r + kB[4]) * r +
         1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((kC[0] * q + kC[1]) * q + kC[2]) * q + kC[3]) * q + kC[4]) * q +
          kC[5]) /
        ((((kD[0] * q + kD[1]) * q + kD[2]) * q + kD[3]) * q + 1.0);
  }

  // One Halley polish step using the exact CDF/density.
  const double e = NormalCdf(x) - p;
  const double u = e * std::sqrt(2.0 * M_PI) * std::exp(x * x / 2.0);
  x = x - u / (1.0 + x * u / 2.0);
  return x;
}

}  // namespace zonestream::numeric
