// Scalar root finding. The analytic model solves h'(θ) = 0 (optimum of the
// Chernoff exponent) and inverts CDFs for percentile computations.
#ifndef ZONESTREAM_NUMERIC_ROOTS_H_
#define ZONESTREAM_NUMERIC_ROOTS_H_

#include <functional>

namespace zonestream::numeric {

// Result of a root-finding run.
struct RootResult {
  double x = 0.0;
  double f_of_x = 0.0;
  int iterations = 0;
  bool converged = false;
};

// Options controlling a root search.
struct RootOptions {
  double x_tolerance = 1e-13;
  double f_tolerance = 0.0;  // additional early-exit tolerance on |f|
  int max_iterations = 200;
};

// Bisection on [lo, hi]; requires f(lo) and f(hi) to have opposite signs
// (zero endpoint values are accepted as roots).
RootResult Bisect(const std::function<double(double)>& f, double lo, double hi,
                  const RootOptions& options = {});

// Safeguarded Newton-Raphson: takes Newton steps while they stay inside the
// current bracket, falling back to bisection otherwise. Requires a sign
// change on [lo, hi].
RootResult NewtonBisect(const std::function<double(double)>& f,
                        const std::function<double(double)>& df, double lo,
                        double hi, const RootOptions& options = {});

// Expands (lo, hi) geometrically around the initial interval until f changes
// sign or the expansion limit is hit. Returns true on success.
bool BracketRoot(const std::function<double(double)>& f, double* lo,
                 double* hi, int max_expansions = 60);

}  // namespace zonestream::numeric

#endif  // ZONESTREAM_NUMERIC_ROOTS_H_
