#include "workload/trace_io.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/check.h"
#include "numeric/statistics.h"

namespace zonestream::workload {

common::StatusOr<std::vector<double>> ParseSizeTrace(
    const std::string& content) {
  std::vector<double> sizes;
  std::istringstream stream(content);
  std::string line;
  int line_number = 0;
  while (std::getline(stream, line)) {
    ++line_number;
    // Trim leading whitespace.
    size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos) continue;  // blank
    if (line[start] == '#') continue;          // comment
    char* end = nullptr;
    errno = 0;
    const double value = std::strtod(line.c_str() + start, &end);
    // Allow trailing whitespace only.
    while (end != nullptr && (*end == ' ' || *end == '\t' || *end == '\r')) {
      ++end;
    }
    if (errno != 0 || end == nullptr || *end != '\0') {
      return common::Status::InvalidArgument(
          "unparsable trace entry at line " + std::to_string(line_number) +
          ": '" + line + "'");
    }
    // strtod parses "inf"/"nan"; neither is a fragment size, and an
    // infinite entry would poison every downstream moment.
    if (!std::isfinite(value)) {
      return common::Status::InvalidArgument(
          "non-finite fragment size at line " + std::to_string(line_number) +
          ": '" + line + "'");
    }
    if (value <= 0.0) {
      return common::Status::InvalidArgument(
          "non-positive fragment size at line " +
          std::to_string(line_number));
    }
    sizes.push_back(value);
  }
  if (sizes.empty()) {
    return common::Status::InvalidArgument("trace contains no entries");
  }
  return sizes;
}

common::StatusOr<std::vector<double>> ReadSizeTrace(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    return common::Status::NotFound("cannot open trace file: " + path);
  }
  std::ostringstream content;
  content << file.rdbuf();
  return ParseSizeTrace(content.str());
}

common::Status WriteSizeTrace(const std::string& path,
                              const std::vector<double>& sizes_bytes,
                              const std::string& comment) {
  if (sizes_bytes.empty()) {
    return common::Status::InvalidArgument("refusing to write empty trace");
  }
  std::ofstream file(path);
  if (!file) {
    return common::Status::Internal("cannot open trace file for writing: " +
                                    path);
  }
  file << "# zonestream fragment-size trace (bytes per fragment, one per "
          "line)\n";
  if (!comment.empty()) file << "# " << comment << "\n";
  char buffer[64];
  for (double size : sizes_bytes) {
    std::snprintf(buffer, sizeof(buffer), "%.17g\n", size);
    file << buffer;
  }
  if (!file) {
    return common::Status::Internal("write failed: " + path);
  }
  return common::Status::Ok();
}

TraceMoments MeasureTraceMoments(const std::vector<double>& sizes_bytes) {
  numeric::RunningStats stats;
  for (double size : sizes_bytes) stats.Add(size);
  TraceMoments moments;
  moments.count = stats.count();
  moments.mean_bytes = stats.count() > 0 ? stats.mean() : 0.0;
  moments.variance_bytes2 = stats.sample_variance();
  return moments;
}

TraceSource::TraceSource(std::vector<double> trace, size_t start_offset)
    : trace_(std::move(trace)),
      position_(start_offset % trace_.size()),
      moments_(MeasureTraceMoments(trace_)) {}

common::StatusOr<TraceSource> TraceSource::Create(std::vector<double> trace,
                                                  size_t start_offset) {
  if (trace.empty()) {
    return common::Status::InvalidArgument("trace must be non-empty");
  }
  for (double size : trace) {
    if (!std::isfinite(size) || size <= 0.0) {
      return common::Status::InvalidArgument(
          "trace entries must be positive and finite");
    }
  }
  return TraceSource(std::move(trace), start_offset);
}

double TraceSource::NextFragmentBytes(numeric::Rng* /*rng*/) {
  const double size = trace_[position_];
  position_ = (position_ + 1) % trace_.size();
  return size;
}

void TraceSource::ExportState(std::vector<uint64_t>* out) const {
  out->push_back(static_cast<uint64_t>(position_));
}

common::Status TraceSource::ImportState(const std::vector<uint64_t>& state) {
  if (state.size() != 1 || state[0] >= trace_.size()) {
    return common::Status::InvalidArgument(
        "TraceSource state must be a single in-range replay position");
  }
  position_ = static_cast<size_t>(state[0]);
  return common::Status::Ok();
}

}  // namespace zonestream::workload
