// Object fragmentation (§2.1): a continuous object is parsed into fragments
// of *uniform display time* (one scheduling round each) and therefore
// variable size. This induces the periodic, one-request-per-round access
// pattern the scheduler relies on.
#ifndef ZONESTREAM_WORKLOAD_FRAGMENTATION_H_
#define ZONESTREAM_WORKLOAD_FRAGMENTATION_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace zonestream::workload {

// One stored fragment of a continuous object.
struct Fragment {
  int64_t index = 0;      // position within the object (round number)
  double bytes = 0.0;     // stored size
};

// A continuous object's display-bandwidth profile: bandwidth_bps[i] is the
// average display bandwidth (bytes/second) over the i-th profile interval
// of length interval_s. MPEG-2 encoders emit exactly this kind of
// time-binned rate information.
struct BandwidthProfile {
  std::vector<double> bandwidth_bps;
  double interval_s = 0.0;
};

// Splits an object described by `profile` into fragments of display time
// `round_length_s` each. Fragment i holds the bytes displayed during round
// i, obtained by integrating the (piecewise-constant) bandwidth profile
// over [i*round, (i+1)*round). The last fragment may be partial.
common::StatusOr<std::vector<Fragment>> FragmentObject(
    const BandwidthProfile& profile, double round_length_s);

// Total bytes across all fragments.
double TotalBytes(const std::vector<Fragment>& fragments);

// Empirical mean/variance of the fragment sizes, the statistics fed into
// the admission model (§2.3 "workload statistics ... are fed into the
// admission control").
struct FragmentMoments {
  double mean_bytes = 0.0;
  double variance_bytes2 = 0.0;
  int64_t count = 0;
};
FragmentMoments MeasureFragmentMoments(const std::vector<Fragment>& fragments);

}  // namespace zonestream::workload

#endif  // ZONESTREAM_WORKLOAD_FRAGMENTATION_H_
