// Synthetic MPEG-like VBR bandwidth traces.
//
// Substitutes for the proprietary MPEG-2 traces behind the paper's
// fragment-size statistics ([Ros95, KH95]): a scene-level AR(1) modulation
// on top of a Gamma marginal plus an optional deterministic GoP (I/P/B
// frame) pattern. The per-round aggregation of such a trace reproduces the
// Gamma-like fragment-size marginals the model assumes, while keeping
// realistic short-range correlation for robustness experiments.
#ifndef ZONESTREAM_WORKLOAD_VBR_TRACE_H_
#define ZONESTREAM_WORKLOAD_VBR_TRACE_H_

#include <cstdint>

#include "common/status.h"
#include "numeric/random.h"
#include "workload/fragmentation.h"

namespace zonestream::workload {

// Configuration of the synthetic VBR source.
struct VbrTraceConfig {
  double mean_bandwidth_bps = 0.0;      // long-run display bandwidth
  double bandwidth_stddev_bps = 0.0;    // marginal stddev of the scene rate
  double scene_correlation = 0.85;      // AR(1) rho of the scene process
  double frame_interval_s = 1.0 / 25.0; // profile granularity (one frame)
  // Relative frame weights of a 12-frame GoP (I B B P B B P B B P B B),
  // scaled so the pattern is mean-1. Disabled when use_gop_pattern=false.
  bool use_gop_pattern = true;
};

// Generates frame-granularity bandwidth profiles.
class VbrTraceGenerator {
 public:
  static common::StatusOr<VbrTraceGenerator> Create(
      const VbrTraceConfig& config, uint64_t seed);

  // Generates a profile covering `duration_s` seconds of playback.
  BandwidthProfile Generate(double duration_s);

  const VbrTraceConfig& config() const { return config_; }

 private:
  VbrTraceGenerator(const VbrTraceConfig& config, uint64_t seed)
      : config_(config), rng_(seed) {}

  VbrTraceConfig config_;
  numeric::Rng rng_;
  bool has_state_ = false;
  double z_ = 0.0;  // latent AR(1) state
};

}  // namespace zonestream::workload

#endif  // ZONESTREAM_WORKLOAD_VBR_TRACE_H_
