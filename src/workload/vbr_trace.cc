#include "workload/vbr_trace.h"

#include <cmath>
#include <random>

#include "common/check.h"
#include "numeric/special_functions.h"
#include "workload/size_distribution.h"

namespace zonestream::workload {
namespace {

// 12-frame GoP weights (I B B P B B P B B P B B), normalized to mean 1.
// Ratios are typical of MPEG-2: I ≈ 3x, P ≈ 1.5x, B ≈ 0.6x a mean frame.
constexpr int kGopLength = 12;
constexpr double kRawGop[kGopLength] = {3.0, 0.6, 0.6, 1.5, 0.6, 0.6,
                                        1.5, 0.6, 0.6, 1.5, 0.6, 0.6};

double GopWeight(int frame_index) {
  double sum = 0.0;
  for (double w : kRawGop) sum += w;
  const double scale = kGopLength / sum;
  return kRawGop[frame_index % kGopLength] * scale;
}

}  // namespace

common::StatusOr<VbrTraceGenerator> VbrTraceGenerator::Create(
    const VbrTraceConfig& config, uint64_t seed) {
  if (config.mean_bandwidth_bps <= 0.0) {
    return common::Status::InvalidArgument("mean bandwidth must be positive");
  }
  if (config.bandwidth_stddev_bps < 0.0) {
    return common::Status::InvalidArgument(
        "bandwidth stddev must be non-negative");
  }
  if (config.scene_correlation < 0.0 || config.scene_correlation >= 1.0) {
    return common::Status::InvalidArgument(
        "scene correlation must be in [0, 1)");
  }
  if (config.frame_interval_s <= 0.0) {
    return common::Status::InvalidArgument(
        "frame interval must be positive");
  }
  return VbrTraceGenerator(config, seed);
}

BandwidthProfile VbrTraceGenerator::Generate(double duration_s) {
  ZS_CHECK_GT(duration_s, 0.0);
  const int64_t frames = static_cast<int64_t>(
      std::ceil(duration_s / config_.frame_interval_s - 1e-12));

  // Gamma marginal for the scene-level rate, sampled through a Gaussian
  // AR(1) copula so successive frames are correlated.
  const bool random_scene = config_.bandwidth_stddev_bps > 0.0;
  GammaSizeDistribution marginal = [&] {
    const double variance = random_scene
                                ? config_.bandwidth_stddev_bps *
                                      config_.bandwidth_stddev_bps
                                : 1.0;  // placeholder, unused when !random_scene
    auto dist =
        GammaSizeDistribution::Create(config_.mean_bandwidth_bps, variance);
    ZS_CHECK(dist.ok());
    return *std::move(dist);
  }();

  BandwidthProfile profile;
  profile.interval_s = config_.frame_interval_s;
  profile.bandwidth_bps.reserve(frames);
  std::normal_distribution<double> normal(0.0, 1.0);
  const double rho = config_.scene_correlation;
  for (int64_t i = 0; i < frames; ++i) {
    double scene_rate = config_.mean_bandwidth_bps;
    if (random_scene) {
      const double eps = normal(rng_.engine());
      if (!has_state_) {
        z_ = eps;
        has_state_ = true;
      } else {
        z_ = rho * z_ + std::sqrt(1.0 - rho * rho) * eps;
      }
      double u = numeric::NormalCdf(z_);
      u = std::fmin(std::fmax(u, 1e-12), 1.0 - 1e-12);
      scene_rate = marginal.Quantile(u);
    }
    const double weight =
        config_.use_gop_pattern ? GopWeight(static_cast<int>(i)) : 1.0;
    profile.bandwidth_bps.push_back(scene_rate * weight);
  }
  return profile;
}

}  // namespace zonestream::workload
