// Per-round fragment-size sources for the simulator.
//
// The analytic model assumes i.i.d. fragment sizes per round; real MPEG-2
// streams additionally show scene-level autocorrelation. IidSizeSource
// matches the model's assumption; Ar1SizeSource injects autocorrelation via
// a Gaussian copula (AR(1) latent process, arbitrary marginal) to probe the
// model's robustness.
#ifndef ZONESTREAM_WORKLOAD_FRAGMENT_SOURCE_H_
#define ZONESTREAM_WORKLOAD_FRAGMENT_SOURCE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "numeric/random.h"
#include "workload/size_distribution.h"

namespace zonestream::workload {

// Supplies one fragment size (bytes) per scheduling round for one stream.
class FragmentSource {
 public:
  virtual ~FragmentSource() = default;

  // Size of the next round's fragment for this stream.
  virtual double NextFragmentBytes(numeric::Rng* rng) = 0;

  // Marginal moments (bytes, bytes^2) — what the admission model sees.
  virtual double mean() const = 0;
  virtual double variance() const = 0;

  // Non-null iff the source draws i.i.d. from a fixed SizeDistribution
  // with no cross-round state (so draws may be batched and reordered
  // freely). The batched simulation kernel uses this to pull all of a
  // round's sizes in one FillSamples() call; stateful sources (AR(1))
  // return nullptr and fall back to per-stream NextFragmentBytes().
  virtual const SizeDistribution* iid_distribution() const { return nullptr; }

  // Checkpoint support: appends the source's cross-round state (if any)
  // as raw 64-bit words (doubles bit-cast). The default is the empty
  // stateless export, which is exact for i.i.d. sources — their whole
  // sample path lives in the caller's Rng. Stateful sources (AR(1)'s
  // latent value, a trace's replay position) override both methods.
  virtual void ExportState(std::vector<uint64_t>* out) const { (void)out; }

  // Restores a state produced by ExportState on an identically configured
  // source. Rejects a word count that does not match the source's schema.
  virtual common::Status ImportState(const std::vector<uint64_t>& state) {
    return state.empty() ? common::Status::Ok()
                         : common::Status::InvalidArgument(
                               "stateless fragment source given a non-empty "
                               "state to import");
  }
};

// Independent draws from a SizeDistribution (the paper's model assumption).
class IidSizeSource final : public FragmentSource {
 public:
  explicit IidSizeSource(std::shared_ptr<const SizeDistribution> distribution);

  double NextFragmentBytes(numeric::Rng* rng) override;
  double mean() const override { return distribution_->mean(); }
  double variance() const override { return distribution_->variance(); }
  const SizeDistribution* iid_distribution() const override {
    return distribution_.get();
  }

 private:
  std::shared_ptr<const SizeDistribution> distribution_;
};

// AR(1) Gaussian copula over an arbitrary marginal: the latent process is
// z_k = rho * z_{k-1} + sqrt(1 - rho^2) * eps_k with standard normal
// innovations; each fragment is Quantile(Phi(z_k)) of the marginal. rho = 0
// reduces to IidSizeSource.
class Ar1SizeSource final : public FragmentSource {
 public:
  // rho must lie in [0, 1).
  static common::StatusOr<Ar1SizeSource> Create(
      std::shared_ptr<const SizeDistribution> distribution, double rho);

  double NextFragmentBytes(numeric::Rng* rng) override;
  double mean() const override { return distribution_->mean(); }
  double variance() const override { return distribution_->variance(); }
  double rho() const { return rho_; }

  // Cross-round state: the latent AR(1) value (the copula's "memory").
  void ExportState(std::vector<uint64_t>* out) const override;
  common::Status ImportState(const std::vector<uint64_t>& state) override;

 private:
  Ar1SizeSource(std::shared_ptr<const SizeDistribution> distribution,
                double rho)
      : distribution_(std::move(distribution)), rho_(rho) {}

  std::shared_ptr<const SizeDistribution> distribution_;
  double rho_;
  bool has_state_ = false;
  double z_ = 0.0;
};

}  // namespace zonestream::workload

#endif  // ZONESTREAM_WORKLOAD_FRAGMENT_SOURCE_H_
