// Fragment-size trace I/O.
//
// The paper's size statistics come from recorded MPEG traces ([Ros95],
// [KH95]). This module lets users feed such recordings into the library:
// a trace is a plain text file with one fragment size (bytes, floating
// point) per line; blank lines and lines starting with '#' are ignored.
// A TraceSource replays a trace as a FragmentSource (looping, with a
// per-stream start offset so concurrent streams are not in lockstep).
#ifndef ZONESTREAM_WORKLOAD_TRACE_IO_H_
#define ZONESTREAM_WORKLOAD_TRACE_IO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "workload/fragment_source.h"

namespace zonestream::workload {

// Reads a fragment-size trace. Fails on unparsable or non-positive
// entries (with the offending line number) and on empty traces.
common::StatusOr<std::vector<double>> ReadSizeTrace(const std::string& path);

// Writes a fragment-size trace (one "%.17g" value per line, preceded by a
// comment header).
common::Status WriteSizeTrace(const std::string& path,
                              const std::vector<double>& sizes_bytes,
                              const std::string& comment = "");

// Parses trace content from a string (the file-free core of
// ReadSizeTrace; exposed for tests and in-memory use).
common::StatusOr<std::vector<double>> ParseSizeTrace(
    const std::string& content);

// Empirical first/second moments of a trace.
struct TraceMoments {
  double mean_bytes = 0.0;
  double variance_bytes2 = 0.0;  // sample variance
  int64_t count = 0;
};
TraceMoments MeasureTraceMoments(const std::vector<double>& sizes_bytes);

// Replays a recorded trace as a per-round fragment source. Deterministic:
// stream k starts at `start_offset` and wraps around.
class TraceSource final : public FragmentSource {
 public:
  // `trace` must be non-empty with positive entries.
  static common::StatusOr<TraceSource> Create(std::vector<double> trace,
                                              size_t start_offset = 0);

  double NextFragmentBytes(numeric::Rng* rng) override;
  double mean() const override { return moments_.mean_bytes; }
  double variance() const override { return moments_.variance_bytes2; }

  // Cross-round state: the replay position within the looping trace.
  void ExportState(std::vector<uint64_t>* out) const override;
  common::Status ImportState(const std::vector<uint64_t>& state) override;

 private:
  TraceSource(std::vector<double> trace, size_t start_offset);

  std::vector<double> trace_;
  size_t position_;
  TraceMoments moments_;
};

}  // namespace zonestream::workload

#endif  // ZONESTREAM_WORKLOAD_TRACE_IO_H_
