#include "workload/fragmentation.h"

#include <cmath>

#include "common/check.h"
#include "numeric/statistics.h"

namespace zonestream::workload {

common::StatusOr<std::vector<Fragment>> FragmentObject(
    const BandwidthProfile& profile, double round_length_s) {
  if (profile.interval_s <= 0.0) {
    return common::Status::InvalidArgument(
        "profile interval must be positive");
  }
  if (round_length_s <= 0.0) {
    return common::Status::InvalidArgument("round length must be positive");
  }
  if (profile.bandwidth_bps.empty()) {
    return common::Status::InvalidArgument("bandwidth profile is empty");
  }
  for (double bandwidth : profile.bandwidth_bps) {
    if (bandwidth < 0.0) {
      return common::Status::InvalidArgument(
          "bandwidth profile has negative entries");
    }
  }

  const double duration =
      profile.interval_s * static_cast<double>(profile.bandwidth_bps.size());
  const int64_t num_fragments =
      static_cast<int64_t>(std::ceil(duration / round_length_s - 1e-12));

  std::vector<Fragment> fragments;
  fragments.reserve(num_fragments);
  for (int64_t i = 0; i < num_fragments; ++i) {
    const double window_start = static_cast<double>(i) * round_length_s;
    const double window_end =
        std::fmin(window_start + round_length_s, duration);
    // Integrate the piecewise-constant profile over the round window.
    double bytes = 0.0;
    int64_t first_bin = static_cast<int64_t>(window_start / profile.interval_s);
    for (int64_t bin = first_bin;
         bin < static_cast<int64_t>(profile.bandwidth_bps.size()); ++bin) {
      const double bin_start = static_cast<double>(bin) * profile.interval_s;
      const double bin_end = bin_start + profile.interval_s;
      if (bin_start >= window_end) break;
      const double overlap =
          std::fmin(bin_end, window_end) - std::fmax(bin_start, window_start);
      if (overlap > 0.0) bytes += profile.bandwidth_bps[bin] * overlap;
    }
    fragments.push_back(Fragment{i, bytes});
  }
  return fragments;
}

double TotalBytes(const std::vector<Fragment>& fragments) {
  double total = 0.0;
  for (const Fragment& f : fragments) total += f.bytes;
  return total;
}

FragmentMoments MeasureFragmentMoments(
    const std::vector<Fragment>& fragments) {
  numeric::RunningStats stats;
  for (const Fragment& f : fragments) stats.Add(f.bytes);
  FragmentMoments moments;
  moments.count = stats.count();
  moments.mean_bytes = stats.mean();
  moments.variance_bytes2 = stats.sample_variance();
  return moments;
}

}  // namespace zonestream::workload
