// Fragment-size distributions (§2.1, §3.1).
//
// The server stores VBR objects as fragments of uniform display time and
// therefore variable size. Following the MPEG traffic studies the paper
// cites ([Ros95, KH95]), the default model is a Gamma distribution
// parameterized by mean and variance. The paper notes the derivation works
// for any family with a computable transform; we additionally provide
// Lognormal and truncated Pareto for the distribution-family ablation.
#ifndef ZONESTREAM_WORKLOAD_SIZE_DISTRIBUTION_H_
#define ZONESTREAM_WORKLOAD_SIZE_DISTRIBUTION_H_

#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "numeric/random.h"

namespace zonestream::workload {

// Interface for a positive continuous fragment-size distribution.
//
// Implementations must be immutable after construction; Sample() mutates
// only the caller-provided Rng.
class SizeDistribution {
 public:
  virtual ~SizeDistribution() = default;

  // Family name, e.g. "gamma".
  virtual std::string name() const = 0;

  // First two moments, in bytes and bytes^2.
  virtual double mean() const = 0;
  virtual double variance() const = 0;

  // Probability density at x (0 outside the support).
  virtual double Density(double x) const = 0;

  // Cumulative distribution function at x.
  virtual double Cdf(double x) const = 0;

  // Quantile function for p in [0, 1).
  virtual double Quantile(double p) const = 0;

  // Draws one fragment size.
  virtual double Sample(numeric::Rng* rng) const = 0;

  // Fills out[0..n) with i.i.d. draws. The default loops Sample();
  // families with cacheable sampling constants (Gamma) override it with a
  // batched sampler. Batched and scalar draws are identically distributed
  // but need not consume the Rng identically — callers that require
  // bit-exact scalar sample paths must keep calling Sample().
  virtual void FillSamples(numeric::Rng* rng, double* out, size_t n) const;

  // Whether E[e^{theta X}] is finite for some theta > 0. Chernoff bounds on
  // sums require a finite MGF on an interval (0, theta_max); the Lognormal
  // famously fails this, the truncated Pareto has bounded support and
  // therefore an entire MGF.
  virtual bool has_finite_mgf() const = 0;

  // Supremum of theta for which the MGF is finite (+inf for bounded
  // support). Only meaningful when has_finite_mgf().
  virtual double MgfThetaMax() const = 0;

  // Moment generating function E[e^{theta X}] for theta < MgfThetaMax().
  // The default implementation integrates e^{theta x} Density(x) with
  // composite Gauss-Legendre over the effective support.
  virtual double Mgf(double theta) const;
};

// Gamma(shape, scale) fragment sizes; shape = mean^2/var, scale = var/mean
// (the paper writes the density with rate alpha = mean/var and shape
// beta = mean^2/var, eq. 3.1.2).
class GammaSizeDistribution final : public SizeDistribution {
 public:
  // Builds from moments; both must be positive.
  static common::StatusOr<GammaSizeDistribution> Create(double mean,
                                                        double variance);

  std::string name() const override { return "gamma"; }
  double mean() const override { return shape_ * scale_; }
  double variance() const override { return shape_ * scale_ * scale_; }
  double Density(double x) const override;
  double Cdf(double x) const override;
  double Quantile(double p) const override;
  double Sample(numeric::Rng* rng) const override;
  // Marsaglia–Tsang batch with the per-shape rejection constants reused
  // across the whole batch (see numeric::GammaBatchSampler).
  void FillSamples(numeric::Rng* rng, double* out, size_t n) const override;
  bool has_finite_mgf() const override { return true; }
  double MgfThetaMax() const override { return 1.0 / scale_; }
  // Closed form (1 - scale*theta)^{-shape}.
  double Mgf(double theta) const override;

  double shape() const { return shape_; }
  double scale() const { return scale_; }
  // The paper's rate parameter alpha = mean/variance (units 1/bytes).
  double rate() const { return 1.0 / scale_; }

 private:
  GammaSizeDistribution(double shape, double scale)
      : shape_(shape), scale_(scale), batch_sampler_(shape, scale) {}
  double shape_;
  double scale_;
  numeric::GammaBatchSampler batch_sampler_;
};

// Lognormal fragment sizes parameterized by the variate's mean/variance.
// No finite MGF for theta > 0: usable in simulation and for moment-matched
// analysis, but not for direct transform-based Chernoff bounds.
class LognormalSizeDistribution final : public SizeDistribution {
 public:
  static common::StatusOr<LognormalSizeDistribution> Create(double mean,
                                                            double variance);

  std::string name() const override { return "lognormal"; }
  double mean() const override { return mean_; }
  double variance() const override { return variance_; }
  double Density(double x) const override;
  double Cdf(double x) const override;
  double Quantile(double p) const override;
  double Sample(numeric::Rng* rng) const override;
  bool has_finite_mgf() const override { return false; }
  double MgfThetaMax() const override { return 0.0; }

  double mu() const { return mu_; }
  double sigma() const { return sigma_; }

 private:
  LognormalSizeDistribution(double mean, double variance, double mu,
                            double sigma)
      : mean_(mean), variance_(variance), mu_(mu), sigma_(sigma) {}
  double mean_;
  double variance_;
  double mu_;      // mean of log X
  double sigma_;   // stddev of log X
};

// Pareto(x_min, tail index alpha) truncated at `cap` (renormalized). The
// truncation keeps all moments and the MGF finite, which the Chernoff
// machinery requires; the body of the distribution is still heavy-tailed.
class TruncatedParetoSizeDistribution final : public SizeDistribution {
 public:
  static common::StatusOr<TruncatedParetoSizeDistribution> Create(
      double x_min, double alpha, double cap);

  // Two-parameter moment match: solves (x_min, cap) so the truncated Pareto
  // with the given tail index hits the requested mean and variance exactly.
  // The cap search is limited to mean * max_cap_over_mean; variances that
  // would require a longer tail are rejected with OutOfRange.
  static common::StatusOr<TruncatedParetoSizeDistribution> CreateByMoments(
      double mean, double variance, double alpha,
      double max_cap_over_mean = 1e4);

  std::string name() const override { return "truncated-pareto"; }
  double mean() const override { return mean_; }
  double variance() const override { return variance_; }
  double Density(double x) const override;
  double Cdf(double x) const override;
  double Quantile(double p) const override;
  double Sample(numeric::Rng* rng) const override;
  bool has_finite_mgf() const override { return true; }
  double MgfThetaMax() const override {
    return std::numeric_limits<double>::infinity();
  }

  double x_min() const { return x_min_; }
  double alpha() const { return alpha_; }
  double cap() const { return cap_; }

 private:
  TruncatedParetoSizeDistribution(double x_min, double alpha, double cap);
  // Raw moment E[X^k] of the truncated Pareto.
  double RawMoment(int k) const;

  double x_min_;
  double alpha_;
  double cap_;
  double normalizer_;  // 1 - (x_min/cap)^alpha
  double mean_;
  double variance_;
};

// Finite mixture of size distributions — e.g. a library of 60% SD clips
// (small fragments) and 40% HD clips (large fragments), which no single
// Gamma fits well. Components are arbitrary SizeDistributions; the
// mixture exposes exact moments, densities/CDFs, a numerically inverted
// quantile, sampling, and (when every component has one) the exact MGF —
// so it plugs into both the simulator and the transform machinery.
class MixtureSizeDistribution final : public SizeDistribution {
 public:
  // Weights must be positive and sum to 1 (within 1e-9); at least one
  // component.
  static common::StatusOr<MixtureSizeDistribution> Create(
      std::vector<std::shared_ptr<const SizeDistribution>> components,
      std::vector<double> weights);

  std::string name() const override { return "mixture"; }
  double mean() const override { return mean_; }
  double variance() const override { return variance_; }
  double Density(double x) const override;
  double Cdf(double x) const override;
  double Quantile(double p) const override;
  double Sample(numeric::Rng* rng) const override;
  bool has_finite_mgf() const override { return has_finite_mgf_; }
  double MgfThetaMax() const override { return theta_max_; }
  double Mgf(double theta) const override;

  int num_components() const { return static_cast<int>(components_.size()); }

 private:
  MixtureSizeDistribution(
      std::vector<std::shared_ptr<const SizeDistribution>> components,
      std::vector<double> weights);

  std::vector<std::shared_ptr<const SizeDistribution>> components_;
  std::vector<double> weights_;
  std::vector<double> cumulative_weights_;
  double mean_;
  double variance_;
  bool has_finite_mgf_;
  double theta_max_;
};

}  // namespace zonestream::workload

#endif  // ZONESTREAM_WORKLOAD_SIZE_DISTRIBUTION_H_
