#include "workload/size_distribution.h"

#include <cmath>

#include "common/check.h"
#include "numeric/quadrature.h"
#include "numeric/roots.h"
#include "numeric/special_functions.h"

namespace zonestream::workload {

void SizeDistribution::FillSamples(numeric::Rng* rng, double* out,
                                   size_t n) const {
  for (size_t i = 0; i < n; ++i) out[i] = Sample(rng);
}

double SizeDistribution::Mgf(double theta) const {
  ZS_CHECK(has_finite_mgf());
  ZS_CHECK_LT(theta, MgfThetaMax());
  const auto integrand = [this, theta](double x) {
    return std::exp(theta * x) * Density(x);
  };
  // The e^{theta x} factor shifts mass far beyond the distribution's own
  // tail, so integrate the body first and then extend in geometric
  // segments until the tail contribution is negligible.
  const double lo = Quantile(0.0);
  double hi = Quantile(1.0 - 1e-12);
  double total = numeric::CompositeGaussLegendre(integrand, lo, hi,
                                                 /*segments=*/64,
                                                 /*order=*/32);
  for (int extension = 0; extension < 64; ++extension) {
    const double next_hi = 1.5 * hi;
    const double segment = numeric::CompositeGaussLegendre(
        integrand, hi, next_hi, /*segments=*/8, /*order=*/32);
    total += segment;
    hi = next_hi;
    if (segment <= 1e-14 * total) break;
  }
  return total;
}

// ---------------------------------------------------------------------------
// Gamma

common::StatusOr<GammaSizeDistribution> GammaSizeDistribution::Create(
    double mean, double variance) {
  if (mean <= 0.0) {
    return common::Status::InvalidArgument("gamma mean must be positive");
  }
  if (variance <= 0.0) {
    return common::Status::InvalidArgument("gamma variance must be positive");
  }
  const double shape = mean * mean / variance;
  const double scale = variance / mean;
  return GammaSizeDistribution(shape, scale);
}

double GammaSizeDistribution::Density(double x) const {
  if (x <= 0.0) return 0.0;
  const double log_density = (shape_ - 1.0) * std::log(x) - x / scale_ -
                             shape_ * std::log(scale_) -
                             numeric::LogGamma(shape_);
  return std::exp(log_density);
}

double GammaSizeDistribution::Cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return numeric::RegularizedGammaP(shape_, x / scale_);
}

double GammaSizeDistribution::Quantile(double p) const {
  return scale_ * numeric::InverseRegularizedGammaP(shape_, p);
}

double GammaSizeDistribution::Sample(numeric::Rng* rng) const {
  return rng->Gamma(shape_, scale_);
}

void GammaSizeDistribution::FillSamples(numeric::Rng* rng, double* out,
                                        size_t n) const {
  batch_sampler_.Fill(rng, out, n);
}

double GammaSizeDistribution::Mgf(double theta) const {
  ZS_CHECK_LT(theta, MgfThetaMax());
  return std::pow(1.0 - scale_ * theta, -shape_);
}

// ---------------------------------------------------------------------------
// Lognormal

common::StatusOr<LognormalSizeDistribution> LognormalSizeDistribution::Create(
    double mean, double variance) {
  if (mean <= 0.0) {
    return common::Status::InvalidArgument("lognormal mean must be positive");
  }
  if (variance <= 0.0) {
    return common::Status::InvalidArgument(
        "lognormal variance must be positive");
  }
  const double sigma2 = std::log(1.0 + variance / (mean * mean));
  const double mu = std::log(mean) - 0.5 * sigma2;
  return LognormalSizeDistribution(mean, variance, mu, std::sqrt(sigma2));
}

double LognormalSizeDistribution::Density(double x) const {
  if (x <= 0.0) return 0.0;
  const double z = (std::log(x) - mu_) / sigma_;
  return std::exp(-0.5 * z * z) / (x * sigma_ * std::sqrt(2.0 * M_PI));
}

double LognormalSizeDistribution::Cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return numeric::NormalCdf((std::log(x) - mu_) / sigma_);
}

double LognormalSizeDistribution::Quantile(double p) const {
  if (p <= 0.0) return 0.0;
  return std::exp(mu_ + sigma_ * numeric::NormalQuantile(p));
}

double LognormalSizeDistribution::Sample(numeric::Rng* rng) const {
  return rng->LognormalByMoments(mean_, variance_);
}

// ---------------------------------------------------------------------------
// Truncated Pareto

TruncatedParetoSizeDistribution::TruncatedParetoSizeDistribution(double x_min,
                                                                 double alpha,
                                                                 double cap)
    : x_min_(x_min),
      alpha_(alpha),
      cap_(cap),
      normalizer_(1.0 - std::pow(x_min / cap, alpha)),
      mean_(0.0),
      variance_(0.0) {
  mean_ = RawMoment(1);
  variance_ = RawMoment(2) - mean_ * mean_;
}

common::StatusOr<TruncatedParetoSizeDistribution>
TruncatedParetoSizeDistribution::Create(double x_min, double alpha,
                                        double cap) {
  if (x_min <= 0.0) {
    return common::Status::InvalidArgument("pareto x_min must be positive");
  }
  if (alpha <= 0.0) {
    return common::Status::InvalidArgument("pareto alpha must be positive");
  }
  if (cap <= x_min) {
    return common::Status::InvalidArgument("pareto cap must exceed x_min");
  }
  return TruncatedParetoSizeDistribution(x_min, alpha, cap);
}

namespace {

double TruncatedParetoMean(double x_min, double alpha, double cap) {
  return TruncatedParetoSizeDistribution::Create(x_min, alpha, cap)->mean();
}

double TruncatedParetoVariance(double x_min, double alpha, double cap) {
  return TruncatedParetoSizeDistribution::Create(x_min, alpha, cap)
      ->variance();
}

// Solves x_min so the truncated Pareto with the given (alpha, cap) has the
// requested mean; the mean is strictly increasing in x_min. Returns a
// negative value if the mean is unreachable for this cap.
double SolveXMinForMean(double mean, double alpha, double cap) {
  const auto mean_error = [alpha, cap, mean](double x_min) {
    return TruncatedParetoMean(x_min, alpha, cap) - mean;
  };
  const double lo = mean * 1e-9;
  const double hi = cap * (1.0 - 1e-12);
  if (mean_error(lo) > 0.0 || mean_error(hi) < 0.0) return -1.0;
  return numeric::Bisect(mean_error, lo, hi).x;
}

}  // namespace

common::StatusOr<TruncatedParetoSizeDistribution>
TruncatedParetoSizeDistribution::CreateByMoments(double mean, double variance,
                                                 double alpha,
                                                 double max_cap_over_mean) {
  if (mean <= 0.0 || variance <= 0.0) {
    return common::Status::InvalidArgument("moments must be positive");
  }
  if (alpha <= 0.0) {
    return common::Status::InvalidArgument("pareto alpha must be positive");
  }
  if (max_cap_over_mean <= 1.0) {
    return common::Status::InvalidArgument("max_cap_over_mean must exceed 1");
  }
  // Two-parameter match: for fixed alpha, the variance at the requested
  // mean is increasing in the truncation cap (a longer tail at the same
  // mean spreads the distribution), so bisect on log(cap).
  const auto variance_at_cap = [mean, alpha](double cap) {
    const double x_min = SolveXMinForMean(mean, alpha, cap);
    if (x_min <= 0.0) return -1.0;  // mean unreachable at this cap
    return TruncatedParetoVariance(x_min, alpha, cap);
  };
  double log_cap_lo = std::log(mean * 1.001);
  double log_cap_hi = std::log(mean * max_cap_over_mean);
  const double var_lo = variance_at_cap(std::exp(log_cap_lo));
  const double var_hi = variance_at_cap(std::exp(log_cap_hi));
  if (var_lo < 0.0 || var_hi < 0.0 || variance < var_lo || variance > var_hi) {
    return common::Status::OutOfRange(
        "requested variance not reachable for this alpha within the cap "
        "limit (heavier tails need a smaller alpha or a larger "
        "max_cap_over_mean)");
  }
  for (int i = 0; i < 200 && (log_cap_hi - log_cap_lo) > 1e-13; ++i) {
    const double log_mid = 0.5 * (log_cap_lo + log_cap_hi);
    if (variance_at_cap(std::exp(log_mid)) < variance) {
      log_cap_lo = log_mid;
    } else {
      log_cap_hi = log_mid;
    }
  }
  const double cap = std::exp(0.5 * (log_cap_lo + log_cap_hi));
  const double x_min = SolveXMinForMean(mean, alpha, cap);
  ZS_CHECK_GT(x_min, 0.0);
  return TruncatedParetoSizeDistribution(x_min, alpha, cap);
}

double TruncatedParetoSizeDistribution::RawMoment(int k) const {
  ZS_CHECK_GT(k, 0);
  const double kk = static_cast<double>(k);
  const double scale = alpha_ * std::pow(x_min_, alpha_) / normalizer_;
  if (std::fabs(kk - alpha_) < 1e-12) {
    return scale * std::log(cap_ / x_min_);
  }
  return scale *
         (std::pow(cap_, kk - alpha_) - std::pow(x_min_, kk - alpha_)) /
         (kk - alpha_);
}

double TruncatedParetoSizeDistribution::Density(double x) const {
  if (x < x_min_ || x > cap_) return 0.0;
  return alpha_ * std::pow(x_min_, alpha_) * std::pow(x, -alpha_ - 1.0) /
         normalizer_;
}

double TruncatedParetoSizeDistribution::Cdf(double x) const {
  if (x <= x_min_) return 0.0;
  if (x >= cap_) return 1.0;
  return (1.0 - std::pow(x_min_ / x, alpha_)) / normalizer_;
}

double TruncatedParetoSizeDistribution::Quantile(double p) const {
  ZS_CHECK_GE(p, 0.0);
  ZS_CHECK_LE(p, 1.0);
  if (p >= 1.0) return cap_;
  return x_min_ * std::pow(1.0 - p * normalizer_, -1.0 / alpha_);
}

double TruncatedParetoSizeDistribution::Sample(numeric::Rng* rng) const {
  return rng->TruncatedPareto(x_min_, alpha_, cap_);
}

// ---------------------------------------------------------------------------
// Mixture

MixtureSizeDistribution::MixtureSizeDistribution(
    std::vector<std::shared_ptr<const SizeDistribution>> components,
    std::vector<double> weights)
    : components_(std::move(components)),
      weights_(std::move(weights)),
      mean_(0.0),
      variance_(0.0),
      has_finite_mgf_(true),
      theta_max_(std::numeric_limits<double>::infinity()) {
  cumulative_weights_.resize(weights_.size());
  double cumulative = 0.0;
  double second_moment = 0.0;
  for (size_t i = 0; i < components_.size(); ++i) {
    cumulative += weights_[i];
    cumulative_weights_[i] = cumulative;
    const double m = components_[i]->mean();
    mean_ += weights_[i] * m;
    second_moment += weights_[i] * (components_[i]->variance() + m * m);
    has_finite_mgf_ = has_finite_mgf_ && components_[i]->has_finite_mgf();
    theta_max_ = std::fmin(theta_max_, components_[i]->MgfThetaMax());
  }
  cumulative_weights_.back() = 1.0;
  variance_ = second_moment - mean_ * mean_;
}

common::StatusOr<MixtureSizeDistribution> MixtureSizeDistribution::Create(
    std::vector<std::shared_ptr<const SizeDistribution>> components,
    std::vector<double> weights) {
  if (components.empty() || components.size() != weights.size()) {
    return common::Status::InvalidArgument(
        "components and weights must be non-empty and of equal length");
  }
  double sum = 0.0;
  for (size_t i = 0; i < components.size(); ++i) {
    if (components[i] == nullptr) {
      return common::Status::InvalidArgument("null component");
    }
    if (weights[i] <= 0.0) {
      return common::Status::InvalidArgument("weights must be positive");
    }
    sum += weights[i];
  }
  if (std::fabs(sum - 1.0) > 1e-9) {
    return common::Status::InvalidArgument("weights must sum to 1");
  }
  return MixtureSizeDistribution(std::move(components), std::move(weights));
}

double MixtureSizeDistribution::Density(double x) const {
  double density = 0.0;
  for (size_t i = 0; i < components_.size(); ++i) {
    density += weights_[i] * components_[i]->Density(x);
  }
  return density;
}

double MixtureSizeDistribution::Cdf(double x) const {
  double cdf = 0.0;
  for (size_t i = 0; i < components_.size(); ++i) {
    cdf += weights_[i] * components_[i]->Cdf(x);
  }
  return cdf;
}

double MixtureSizeDistribution::Quantile(double p) const {
  ZS_CHECK_GE(p, 0.0);
  ZS_CHECK_LT(p, 1.0);
  if (p == 0.0) return 0.0;
  // Bracket using the extreme component quantiles, then bisect the CDF.
  double lo = std::numeric_limits<double>::infinity();
  double hi = 0.0;
  for (const auto& component : components_) {
    lo = std::fmin(lo, component->Quantile(p));
    hi = std::fmax(hi, component->Quantile(p));
  }
  if (hi - lo < 1e-12 * (1.0 + hi)) return hi;
  for (int i = 0; i < 200 && (hi - lo) > 1e-12 * (1.0 + hi); ++i) {
    const double mid = 0.5 * (lo + hi);
    if (Cdf(mid) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

double MixtureSizeDistribution::Sample(numeric::Rng* rng) const {
  const double u = rng->Uniform01();
  size_t component = 0;
  while (component + 1 < cumulative_weights_.size() &&
         u > cumulative_weights_[component]) {
    ++component;
  }
  return components_[component]->Sample(rng);
}

double MixtureSizeDistribution::Mgf(double theta) const {
  ZS_CHECK(has_finite_mgf_);
  ZS_CHECK_LT(theta, theta_max_);
  double mgf = 0.0;
  for (size_t i = 0; i < components_.size(); ++i) {
    mgf += weights_[i] * components_[i]->Mgf(theta);
  }
  return mgf;
}

}  // namespace zonestream::workload
