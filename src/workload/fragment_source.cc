#include "workload/fragment_source.h"

#include <bit>
#include <cmath>
#include <random>

#include "common/check.h"
#include "numeric/special_functions.h"

namespace zonestream::workload {

IidSizeSource::IidSizeSource(
    std::shared_ptr<const SizeDistribution> distribution)
    : distribution_(std::move(distribution)) {
  ZS_CHECK(distribution_ != nullptr);
}

double IidSizeSource::NextFragmentBytes(numeric::Rng* rng) {
  return distribution_->Sample(rng);
}

common::StatusOr<Ar1SizeSource> Ar1SizeSource::Create(
    std::shared_ptr<const SizeDistribution> distribution, double rho) {
  if (distribution == nullptr) {
    return common::Status::InvalidArgument("distribution must not be null");
  }
  if (rho < 0.0 || rho >= 1.0) {
    return common::Status::InvalidArgument("rho must be in [0, 1)");
  }
  return Ar1SizeSource(std::move(distribution), rho);
}

double Ar1SizeSource::NextFragmentBytes(numeric::Rng* rng) {
  ZS_CHECK(rng != nullptr);
  // Standard normal innovation via Box–Muller on the shared Rng.
  std::normal_distribution<double> normal(0.0, 1.0);
  const double eps = normal(rng->engine());
  if (!has_state_) {
    z_ = eps;  // stationary start: z_0 ~ N(0, 1)
    has_state_ = true;
  } else {
    z_ = rho_ * z_ + std::sqrt(1.0 - rho_ * rho_) * eps;
  }
  // Clamp the copula input away from the endpoints for numerical safety.
  double u = numeric::NormalCdf(z_);
  u = std::fmin(std::fmax(u, 1e-12), 1.0 - 1e-12);
  return distribution_->Quantile(u);
}

void Ar1SizeSource::ExportState(std::vector<uint64_t>* out) const {
  out->push_back(has_state_ ? 1 : 0);
  out->push_back(std::bit_cast<uint64_t>(z_));
}

common::Status Ar1SizeSource::ImportState(const std::vector<uint64_t>& state) {
  if (state.size() != 2 || state[0] > 1) {
    return common::Status::InvalidArgument(
        "Ar1SizeSource state must be (has_state in {0,1}, latent z)");
  }
  has_state_ = state[0] == 1;
  z_ = std::bit_cast<double>(state[1]);
  return common::Status::Ok();
}

}  // namespace zonestream::workload
