// Deterministic-replay verification: proves a snapshot actually captures
// everything, by re-executing from it and demanding bit-identical
// observable behavior.
//
// The harness compares two executions of the same scenario:
//
//   reference: fresh state --(rounds 0..C)--> snapshot --(C..T)--> tail A
//   resumed:   restore(snapshot)            ----------(C..T)--> tail B
//
// and asserts tail A == tail B exactly — every trace event field
// bit-identical (doubles compared by bit pattern, so even NaN payloads
// and signed zeros must match) and the final metric registries equal.
// Any divergence means some mutable state escaped the snapshot, which is
// precisely the bug class this subsystem exists to rule out.
#ifndef ZONESTREAM_RECOVERY_REPLAY_H_
#define ZONESTREAM_RECOVERY_REPLAY_H_

#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "obs/round_trace.h"
#include "recovery/snapshot.h"

namespace zonestream::recovery {

// Exact comparison of two trace-event sequences. Returns InvalidArgument
// naming the first divergent event index and field. Doubles are compared
// by bit pattern.
common::Status CompareTraces(const std::vector<obs::RoundTraceEvent>& expected,
                             const std::vector<obs::RoundTraceEvent>& actual);

// Exact comparison of two registry states (names, kinds, counter values,
// gauge bits, histogram buckets and moments). Returns InvalidArgument
// naming the first divergent metric.
common::Status CompareRegistries(const obs::RegistryState& expected,
                                 const obs::RegistryState& actual);

// What one verification run produced: the snapshot it took at the
// checkpoint round, the trace events recorded *after* that round, and
// the final registry.
struct ReplayArtifacts {
  Snapshot snapshot;
  std::vector<obs::RoundTraceEvent> tail_events;
  obs::RegistryState final_registry;
};

// Drives a scenario from scratch through all rounds, snapshotting at the
// agreed checkpoint round.
using ReferenceRunner = std::function<common::StatusOr<ReplayArtifacts>()>;

// Restores the given snapshot and drives the remaining rounds. The
// returned artifacts' `snapshot` field is ignored.
using ResumeRunner =
    std::function<common::StatusOr<ReplayArtifacts>(const Snapshot&)>;

// Runs reference, round-trips its snapshot through the container
// encoding (so serialization itself is under test, not just the state
// structs), resumes from the decoded copy, and compares tails and final
// registries exactly.
common::Status VerifyReplay(const ReferenceRunner& reference,
                            const ResumeRunner& resume);

}  // namespace zonestream::recovery

#endif  // ZONESTREAM_RECOVERY_REPLAY_H_
