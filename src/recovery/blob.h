// Source-compatibility shim: the blob primitives moved to common/blob.h
// so the admission-service wire protocol (src/service/) can share the
// hardened reader without pulling in the whole recovery stack. Existing
// recovery:: spellings keep working through these aliases.
#ifndef ZONESTREAM_RECOVERY_BLOB_H_
#define ZONESTREAM_RECOVERY_BLOB_H_

#include "common/blob.h"

namespace zonestream::recovery {

using common::BlobReader;
using common::BlobWriter;
using common::Crc64;

}  // namespace zonestream::recovery

#endif  // ZONESTREAM_RECOVERY_BLOB_H_
