#include "recovery/snapshot.h"

#include <utility>
#include <vector>

#include "recovery/blob.h"

namespace zonestream::recovery {

namespace {

// Section names interpreted by this library. Anything else round-trips
// through Snapshot::app_sections.
constexpr std::string_view kSectionMeta = "meta";
constexpr std::string_view kSectionServer = "server";
constexpr std::string_view kSectionSimulator = "sim";
constexpr std::string_view kSectionRegistry = "registry";
constexpr std::string_view kSectionService = "service";

// --- component codecs ------------------------------------------------------
//
// Each Encode* writes into a BlobWriter; each Decode* reads from a
// BlobReader, latching the reader's sticky error on any structural
// problem. Range/shape semantics beyond "safe to hold in memory" are the
// component ImportState's job at restore time.

void EncodeRunningStats(const numeric::RunningStatsState& state,
                        BlobWriter* out) {
  out->PutI64(state.count);
  out->PutF64(state.mean);
  out->PutF64(state.m2);
  out->PutF64(state.min);
  out->PutF64(state.max);
}

numeric::RunningStatsState DecodeRunningStats(BlobReader* in) {
  numeric::RunningStatsState state;
  state.count = in->TakeI64();
  state.mean = in->TakeF64();
  state.m2 = in->TakeF64();
  state.min = in->TakeF64();
  state.max = in->TakeF64();
  return state;
}

void EncodeFaultInjector(const fault::FaultInjectorState& state,
                         BlobWriter* out) {
  out->PutU64(state.model_names.size());
  for (const std::string& name : state.model_names) out->PutString(name);
  out->PutU64(state.model_states.size());
  for (const std::vector<uint64_t>& words : state.model_states) {
    out->PutWords(words);
  }
  out->PutU64(state.rng_states.size());
  for (const std::string& rng : state.rng_states) out->PutString(rng);
  out->PutI64(state.rounds_begun);
}

fault::FaultInjectorState DecodeFaultInjector(BlobReader* in) {
  fault::FaultInjectorState state;
  // Counts are claims over remaining bytes; each element consumes at
  // least 8 bytes, so capping by remaining()/8 bounds allocation.
  uint64_t names = in->TakeU64();
  if (names > in->remaining() / 8) in->Fail();
  if (!in->ok()) return state;
  for (uint64_t i = 0; i < names; ++i) {
    state.model_names.push_back(in->TakeString());
  }
  uint64_t model_states = in->TakeU64();
  if (model_states > in->remaining() / 8) in->Fail();
  if (!in->ok()) return state;
  for (uint64_t i = 0; i < model_states; ++i) {
    state.model_states.push_back(in->TakeWords());
  }
  uint64_t rngs = in->TakeU64();
  if (rngs > in->remaining() / 8) in->Fail();
  if (!in->ok()) return state;
  for (uint64_t i = 0; i < rngs; ++i) {
    state.rng_states.push_back(in->TakeString());
  }
  state.rounds_begun = in->TakeI64();
  return state;
}

void EncodeDegradation(const fault::DegradationControllerState& state,
                       BlobWriter* out) {
  out->PutU8(static_cast<uint8_t>(state.state));
  out->PutI64(state.rounds_observed);
  out->PutI64(state.window_rounds_seen);
  out->PutI64(state.window_stream_rounds);
  out->PutI64(state.window_glitches);
  out->PutI64(state.window_overruns);
  out->PutI64(state.last_active_streams);
  out->PutI64(state.violating_windows);
  out->PutI64(state.clean_windows);
  out->PutU64(state.events.size());
  for (const fault::DegradationEvent& event : state.events) {
    out->PutI64(event.round);
    out->PutU8(static_cast<uint8_t>(event.from));
    out->PutU8(static_cast<uint8_t>(event.to));
    out->PutI64(event.shed_streams);
    out->PutF64(event.window_glitch_rate);
  }
}

fault::DegradationState DecodeDegradationState(BlobReader* in) {
  const uint8_t value = in->TakeU8();
  if (value > 2) in->Fail();
  return static_cast<fault::DegradationState>(value);
}

fault::DegradationControllerState DecodeDegradation(BlobReader* in) {
  fault::DegradationControllerState state;
  state.state = DecodeDegradationState(in);
  state.rounds_observed = in->TakeI64();
  state.window_rounds_seen = in->TakeI64();
  state.window_stream_rounds = in->TakeI64();
  state.window_glitches = in->TakeI64();
  state.window_overruns = in->TakeI64();
  state.last_active_streams = static_cast<int>(in->TakeI64());
  state.violating_windows = static_cast<int>(in->TakeI64());
  state.clean_windows = static_cast<int>(in->TakeI64());
  uint64_t events = in->TakeU64();
  // Each event is 26 bytes; cap the claim by what the payload holds.
  if (events > in->remaining() / 26) in->Fail();
  if (!in->ok()) return state;
  state.events.reserve(static_cast<size_t>(events));
  for (uint64_t i = 0; i < events; ++i) {
    fault::DegradationEvent event;
    event.round = in->TakeI64();
    event.from = DecodeDegradationState(in);
    event.to = DecodeDegradationState(in);
    event.shed_streams = static_cast<int>(in->TakeI64());
    event.window_glitch_rate = in->TakeF64();
    state.events.push_back(event);
  }
  return state;
}

void EncodeServer(const server::MediaServerState& state, BlobWriter* out) {
  out->PutString(state.rng_state);
  out->PutI64(state.round);
  out->PutI64(state.next_stream_id);
  out->PutU64(state.streams.size());
  for (const server::StreamSnapshotState& stream : state.streams) {
    out->PutI64(stream.stream_id);
    out->PutI64(stream.phase);
    out->PutI64(stream.priority_class);
    out->PutI64(stream.next_fragment);
    out->PutF64(stream.retry_bytes);
    out->PutI64(stream.retry_attempts);
    out->PutI64(stream.stats.rounds_served);
    out->PutI64(stream.stats.glitches);
    out->PutI64(stream.stats.retries);
    out->PutI64(stream.stats.drops);
  }
  out->PutU64(state.arm_cylinder.size());
  for (const int64_t cylinder : state.arm_cylinder) out->PutI64(cylinder);
  out->PutU64(state.ascending.size());
  for (const uint8_t ascending : state.ascending) out->PutU8(ascending);
  out->PutU64(state.injector_present.size());
  for (const uint8_t present : state.injector_present) out->PutU8(present);
  out->PutU64(state.fault_injectors.size());
  for (const fault::FaultInjectorState& injector : state.fault_injectors) {
    EncodeFaultInjector(injector, out);
  }
  out->PutBool(state.has_degradation);
  if (state.has_degradation) EncodeDegradation(state.degradation, out);
  out->PutBool(state.admissions_open);
  out->PutI64(state.fragments_served);
  out->PutI64(state.total_glitches);
  out->PutI64(state.fragments_retried);
  out->PutI64(state.fragments_dropped);
  out->PutI64(state.streams_shed);
  out->PutU64(state.busy_fraction.size());
  for (const numeric::RunningStatsState& busy : state.busy_fraction) {
    EncodeRunningStats(busy, out);
  }
  // Parity/repair fields (snapshot version 2).
  out->PutU64(state.spare_active.size());
  for (const uint8_t spare : state.spare_active) out->PutU8(spare);
  out->PutBool(state.repair_present);
  if (state.repair_present) {
    out->PutBool(state.repair.active);
    out->PutI64(state.repair.target_disk);
    out->PutI64(state.repair.stripes_rebuilt);
  }
  out->PutI64(state.reconstructed_fragments);
  out->PutI64(state.rounds_degraded);
}

server::MediaServerState DecodeServer(BlobReader* in) {
  server::MediaServerState state;
  state.rng_state = in->TakeString();
  state.round = in->TakeI64();
  state.next_stream_id = in->TakeI64();
  uint64_t streams = in->TakeU64();
  if (streams > in->remaining() / 80) in->Fail();  // 10 words per stream
  if (!in->ok()) return state;
  state.streams.reserve(static_cast<size_t>(streams));
  for (uint64_t i = 0; i < streams; ++i) {
    server::StreamSnapshotState stream;
    stream.stream_id = static_cast<int>(in->TakeI64());
    stream.phase = static_cast<int>(in->TakeI64());
    stream.priority_class = static_cast<int>(in->TakeI64());
    stream.next_fragment = in->TakeI64();
    stream.retry_bytes = in->TakeF64();
    stream.retry_attempts = static_cast<int>(in->TakeI64());
    stream.stats.rounds_served = in->TakeI64();
    stream.stats.glitches = in->TakeI64();
    stream.stats.retries = in->TakeI64();
    stream.stats.drops = in->TakeI64();
    state.streams.push_back(stream);
  }
  uint64_t arms = in->TakeU64();
  if (arms > in->remaining() / 8) in->Fail();
  if (!in->ok()) return state;
  for (uint64_t i = 0; i < arms; ++i) {
    state.arm_cylinder.push_back(in->TakeI64());
  }
  uint64_t flags = in->TakeU64();
  if (flags > in->remaining()) in->Fail();
  if (!in->ok()) return state;
  for (uint64_t i = 0; i < flags; ++i) {
    state.ascending.push_back(in->TakeU8());
  }
  flags = in->TakeU64();
  if (flags > in->remaining()) in->Fail();
  if (!in->ok()) return state;
  for (uint64_t i = 0; i < flags; ++i) {
    state.injector_present.push_back(in->TakeU8());
  }
  uint64_t injectors = in->TakeU64();
  if (injectors > in->remaining() / 8) in->Fail();
  if (!in->ok()) return state;
  for (uint64_t i = 0; i < injectors; ++i) {
    state.fault_injectors.push_back(DecodeFaultInjector(in));
  }
  state.has_degradation = in->TakeBool();
  if (state.has_degradation) state.degradation = DecodeDegradation(in);
  state.admissions_open = in->TakeBool();
  state.fragments_served = in->TakeI64();
  state.total_glitches = in->TakeI64();
  state.fragments_retried = in->TakeI64();
  state.fragments_dropped = in->TakeI64();
  state.streams_shed = in->TakeI64();
  uint64_t busy = in->TakeU64();
  if (busy > in->remaining() / 40) in->Fail();  // 5 words per entry
  if (!in->ok()) return state;
  for (uint64_t i = 0; i < busy; ++i) {
    state.busy_fraction.push_back(DecodeRunningStats(in));
  }
  uint64_t spares = in->TakeU64();
  if (spares > in->remaining()) in->Fail();
  if (!in->ok()) return state;
  for (uint64_t i = 0; i < spares; ++i) {
    state.spare_active.push_back(in->TakeU8());
  }
  state.repair_present = in->TakeBool();
  if (state.repair_present) {
    state.repair.active = in->TakeBool();
    state.repair.target_disk = static_cast<int>(in->TakeI64());
    state.repair.stripes_rebuilt = in->TakeI64();
  }
  state.reconstructed_fragments = in->TakeI64();
  state.rounds_degraded = in->TakeI64();
  return state;
}

void EncodeSimulator(const sim::RoundSimulatorState& state, BlobWriter* out) {
  out->PutString(state.rng_state);
  out->PutString(state.disturbance_rng_state);
  out->PutBool(state.has_fault_injector);
  if (state.has_fault_injector) EncodeFaultInjector(state.fault_injector, out);
  out->PutI64(state.arm_cylinder);
  out->PutBool(state.ascending);
  out->PutI64(state.rounds_run);
  out->PutU64(state.source_states.size());
  for (const std::vector<uint64_t>& words : state.source_states) {
    out->PutWords(words);
  }
}

sim::RoundSimulatorState DecodeSimulator(BlobReader* in) {
  sim::RoundSimulatorState state;
  state.rng_state = in->TakeString();
  state.disturbance_rng_state = in->TakeString();
  state.has_fault_injector = in->TakeBool();
  if (state.has_fault_injector) state.fault_injector = DecodeFaultInjector(in);
  state.arm_cylinder = static_cast<int>(in->TakeI64());
  state.ascending = in->TakeBool();
  state.rounds_run = in->TakeI64();
  uint64_t sources = in->TakeU64();
  if (sources > in->remaining() / 8) in->Fail();
  if (!in->ok()) return state;
  state.source_states.reserve(static_cast<size_t>(sources));
  for (uint64_t i = 0; i < sources; ++i) {
    state.source_states.push_back(in->TakeWords());
  }
  return state;
}

void EncodeRegistry(const obs::RegistryState& state, BlobWriter* out) {
  out->PutU64(state.counters.size());
  for (const auto& [name, value] : state.counters) {
    out->PutString(name);
    out->PutI64(value);
  }
  out->PutU64(state.gauges.size());
  for (const auto& [name, value] : state.gauges) {
    out->PutString(name);
    out->PutF64(value);
  }
  out->PutU64(state.histograms.size());
  for (const auto& [name, histogram] : state.histograms) {
    out->PutString(name);
    out->PutI64(histogram.count);
    out->PutF64(histogram.sum);
    out->PutF64(histogram.min);
    out->PutF64(histogram.max);
    // Sparse bucket encoding: only the non-zero buckets travel.
    uint64_t nonzero = 0;
    for (const int64_t bucket : histogram.buckets) {
      if (bucket != 0) ++nonzero;
    }
    out->PutU64(nonzero);
    for (size_t i = 0; i < histogram.buckets.size(); ++i) {
      if (histogram.buckets[i] == 0) continue;
      out->PutU64(i);
      out->PutI64(histogram.buckets[i]);
    }
  }
}

obs::RegistryState DecodeRegistry(BlobReader* in) {
  obs::RegistryState state;
  uint64_t counters = in->TakeU64();
  if (counters > in->remaining() / 16) in->Fail();
  if (!in->ok()) return state;
  for (uint64_t i = 0; i < counters; ++i) {
    std::string name = in->TakeString();
    const int64_t value = in->TakeI64();
    state.counters.emplace_back(std::move(name), value);
  }
  uint64_t gauges = in->TakeU64();
  if (gauges > in->remaining() / 16) in->Fail();
  if (!in->ok()) return state;
  for (uint64_t i = 0; i < gauges; ++i) {
    std::string name = in->TakeString();
    const double value = in->TakeF64();
    state.gauges.emplace_back(std::move(name), value);
  }
  uint64_t histograms = in->TakeU64();
  if (histograms > in->remaining() / 48) in->Fail();
  if (!in->ok()) return state;
  for (uint64_t i = 0; i < histograms; ++i) {
    std::string name = in->TakeString();
    obs::HistogramState histogram;
    histogram.buckets.assign(obs::Histogram::kNumBuckets, 0);
    histogram.count = in->TakeI64();
    histogram.sum = in->TakeF64();
    histogram.min = in->TakeF64();
    histogram.max = in->TakeF64();
    const uint64_t nonzero = in->TakeU64();
    if (nonzero > in->remaining() / 16) in->Fail();
    if (!in->ok()) return state;
    for (uint64_t b = 0; b < nonzero; ++b) {
      const uint64_t index = in->TakeU64();
      const int64_t count = in->TakeI64();
      if (!in->ok()) return state;
      if (index >= histogram.buckets.size() ||
          histogram.buckets[index] != 0) {
        // Out-of-range or duplicate bucket index: corrupt payload.
        in->Fail();
        return state;
      }
      histogram.buckets[index] = count;
    }
    state.histograms.emplace_back(std::move(name), std::move(histogram));
  }
  return state;
}

void EncodeMeta(const SnapshotMeta& meta, BlobWriter* out) {
  out->PutI64(meta.round);
  out->PutU64(meta.base_seed);
  out->PutString(meta.producer);
}

SnapshotMeta DecodeMeta(BlobReader* in) {
  SnapshotMeta meta;
  meta.round = in->TakeI64();
  meta.base_seed = in->TakeU64();
  meta.producer = in->TakeString();
  return meta;
}

// Runs one section codec over a payload and demands full consumption —
// trailing garbage inside a section is corruption, not slack.
template <typename State, typename Decoder>
common::Status DecodeSection(std::string_view name, std::string_view payload,
                             const Decoder& decoder, State* out) {
  BlobReader reader(payload);
  State state = decoder(&reader);
  if (!reader.AtEnd()) {
    return common::Status::InvalidArgument(
        "snapshot section '" + std::string(name) +
        "' is malformed (truncated or trailing bytes)");
  }
  *out = std::move(state);
  return common::Status::Ok();
}

}  // namespace

std::string EncodeSnapshot(const Snapshot& snapshot) {
  // Gather (name, payload) pairs first, then wrap in the container.
  std::vector<std::pair<std::string, std::string>> sections;
  {
    BlobWriter meta;
    EncodeMeta(snapshot.meta, &meta);
    sections.emplace_back(std::string(kSectionMeta), meta.Release());
  }
  if (snapshot.server.has_value()) {
    BlobWriter writer;
    EncodeServer(*snapshot.server, &writer);
    sections.emplace_back(std::string(kSectionServer), writer.Release());
  }
  if (snapshot.simulator.has_value()) {
    BlobWriter writer;
    EncodeSimulator(*snapshot.simulator, &writer);
    sections.emplace_back(std::string(kSectionSimulator), writer.Release());
  }
  if (snapshot.registry.has_value()) {
    BlobWriter writer;
    EncodeRegistry(*snapshot.registry, &writer);
    sections.emplace_back(std::string(kSectionRegistry), writer.Release());
  }
  if (snapshot.service.has_value()) {
    // The section payload is the canonical service-state encoding,
    // verbatim — one codec, one digest, shared with the live daemon.
    sections.emplace_back(
        std::string(kSectionService),
        service::EncodeAdmissionServiceState(*snapshot.service));
  }
  for (const auto& [name, payload] : snapshot.app_sections) {
    sections.emplace_back(name, payload);
  }

  BlobWriter out;
  // The magic is raw bytes, not a length-prefixed string.
  for (const char c : kSnapshotMagic) out.PutU8(static_cast<uint8_t>(c));
  out.PutU32(kSnapshotVersion);
  out.PutU32(static_cast<uint32_t>(sections.size()));
  for (const auto& [name, payload] : sections) {
    out.PutString(name);
    out.PutString(payload);
  }
  const uint64_t checksum = Crc64(out.data());
  out.PutU64(checksum);
  return out.Release();
}

common::StatusOr<Snapshot> DecodeSnapshot(std::string_view bytes) {
  constexpr size_t kMinSize = 8 + 4 + 4 + 8;  // magic+version+count+crc
  if (bytes.size() < kMinSize) {
    return common::Status::InvalidArgument(
        "snapshot too short to be a zonestream-snapshot-v1 container");
  }
  if (bytes.substr(0, kSnapshotMagic.size()) != kSnapshotMagic) {
    return common::Status::InvalidArgument(
        "snapshot magic mismatch (not a zonestream snapshot)");
  }
  // Checksum covers everything before the trailing CRC field; verify it
  // before trusting any length or payload inside.
  const std::string_view body = bytes.substr(0, bytes.size() - 8);
  BlobReader crc_reader(bytes.substr(bytes.size() - 8));
  const uint64_t stored_crc = crc_reader.TakeU64();
  const uint64_t actual_crc = Crc64(body);
  if (stored_crc != actual_crc) {
    return common::Status::InvalidArgument(
        "snapshot checksum mismatch (file is corrupt or truncated)");
  }
  BlobReader reader(body.substr(kSnapshotMagic.size()));
  const uint32_t version = reader.TakeU32();
  if (version != kSnapshotVersion) {
    return common::Status::InvalidArgument(
        "unsupported snapshot version " + std::to_string(version) +
        " (this build reads version " + std::to_string(kSnapshotVersion) +
        ")");
  }
  const uint32_t section_count = reader.TakeU32();
  Snapshot snapshot;
  bool saw_meta = false;
  for (uint32_t i = 0; i < section_count; ++i) {
    const std::string name = reader.TakeString();
    const std::string payload = reader.TakeString();
    if (!reader.ok()) break;
    if (name == kSectionMeta) {
      if (saw_meta) {
        return common::Status::InvalidArgument(
            "snapshot carries duplicate 'meta' sections");
      }
      saw_meta = true;
      if (auto status =
              DecodeSection(name, payload, DecodeMeta, &snapshot.meta);
          !status.ok()) {
        return status;
      }
    } else if (name == kSectionServer) {
      if (snapshot.server.has_value()) {
        return common::Status::InvalidArgument(
            "snapshot carries duplicate 'server' sections");
      }
      server::MediaServerState state;
      if (auto status = DecodeSection(name, payload, DecodeServer, &state);
          !status.ok()) {
        return status;
      }
      snapshot.server = std::move(state);
    } else if (name == kSectionSimulator) {
      if (snapshot.simulator.has_value()) {
        return common::Status::InvalidArgument(
            "snapshot carries duplicate 'sim' sections");
      }
      sim::RoundSimulatorState state;
      if (auto status = DecodeSection(name, payload, DecodeSimulator, &state);
          !status.ok()) {
        return status;
      }
      snapshot.simulator = std::move(state);
    } else if (name == kSectionRegistry) {
      if (snapshot.registry.has_value()) {
        return common::Status::InvalidArgument(
            "snapshot carries duplicate 'registry' sections");
      }
      obs::RegistryState state;
      if (auto status = DecodeSection(name, payload, DecodeRegistry, &state);
          !status.ok()) {
        return status;
      }
      snapshot.registry = std::move(state);
    } else if (name == kSectionService) {
      if (snapshot.service.has_value()) {
        return common::Status::InvalidArgument(
            "snapshot carries duplicate 'service' sections");
      }
      auto state = service::DecodeAdmissionServiceState(payload);
      if (!state.ok()) {
        return common::Status::InvalidArgument(
            "snapshot section 'service': " + state.status().message());
      }
      snapshot.service = std::move(state).value();
    } else {
      if (!snapshot.app_sections.emplace(name, payload).second) {
        return common::Status::InvalidArgument(
            "snapshot carries duplicate '" + name + "' sections");
      }
    }
  }
  if (!reader.AtEnd()) {
    return common::Status::InvalidArgument(
        "snapshot container is malformed (truncated section table or "
        "trailing bytes)");
  }
  if (!saw_meta) {
    return common::Status::InvalidArgument(
        "snapshot carries no 'meta' section");
  }
  return snapshot;
}

std::string DescribeSnapshot(const Snapshot& snapshot) {
  std::string out;
  out += "zonestream-snapshot-v" + std::to_string(kSnapshotVersion) + "\n";
  out += "  producer: " +
         (snapshot.meta.producer.empty() ? "(unknown)"
                                         : snapshot.meta.producer) +
         "\n";
  out += "  round:    " + std::to_string(snapshot.meta.round) + "\n";
  out += "  seed:     " + std::to_string(snapshot.meta.base_seed) + "\n";
  out += "  sections:";
  out += " meta";
  if (snapshot.server.has_value()) out += " server";
  if (snapshot.simulator.has_value()) out += " sim";
  if (snapshot.registry.has_value()) out += " registry";
  if (snapshot.service.has_value()) out += " service";
  for (const auto& [name, payload] : snapshot.app_sections) {
    out += " " + name + "(" + std::to_string(payload.size()) + "B)";
  }
  out += "\n";
  if (snapshot.server.has_value()) {
    out += "  server:   " + std::to_string(snapshot.server->streams.size()) +
           " streams, round " + std::to_string(snapshot.server->round) +
           ", " + std::to_string(snapshot.server->arm_cylinder.size()) +
           " disks\n";
    int spares = 0;
    for (const uint8_t spare : snapshot.server->spare_active) {
      if (spare != 0) ++spares;
    }
    if (snapshot.server->repair_present) {
      const server::RepairControllerState& repair = snapshot.server->repair;
      out += "  repair:   ";
      if (repair.active) {
        out += "rebuilding disk " + std::to_string(repair.target_disk) +
               ", " + std::to_string(repair.stripes_rebuilt) +
               " stripes done";
      } else if (repair.stripes_rebuilt > 0) {
        out += "complete (" + std::to_string(repair.stripes_rebuilt) +
               " stripes)";
      } else {
        out += "idle";
      }
      out += ", " + std::to_string(spares) + " spare(s) active, " +
             std::to_string(snapshot.server->rounds_degraded) +
             " degraded round(s)\n";
    } else if (spares > 0 || snapshot.server->rounds_degraded > 0) {
      out += "  repair:   " + std::to_string(spares) +
             " spare(s) active, " +
             std::to_string(snapshot.server->rounds_degraded) +
             " degraded round(s)\n";
    }
  }
  if (snapshot.simulator.has_value()) {
    out += "  sim:      " +
           std::to_string(snapshot.simulator->source_states.size()) +
           " streams, round " +
           std::to_string(snapshot.simulator->rounds_run) + "\n";
  }
  if (snapshot.registry.has_value()) {
    out += "  registry: " +
           std::to_string(snapshot.registry->counters.size()) +
           " counters, " + std::to_string(snapshot.registry->gauges.size()) +
           " gauges, " +
           std::to_string(snapshot.registry->histograms.size()) +
           " histograms\n";
  }
  if (snapshot.service.has_value()) {
    out += "  service:  " +
           std::to_string(snapshot.service->sessions.size()) +
           " sessions, " +
           std::to_string(snapshot.service->class_limits.size()) +
           " classes, limits v" +
           std::to_string(snapshot.service->limits_version) + ", digest " +
           std::to_string(
               service::AdmissionServiceStateDigest(*snapshot.service)) +
           "\n";
  }
  return out;
}

}  // namespace zonestream::recovery
