#include "recovery/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <system_error>
#include <utility>

namespace zonestream::recovery {

namespace fs = std::filesystem;

namespace {

constexpr char kSnapshotExtension[] = ".zsnap";

std::string ErrnoMessage(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

// Parses "<basename>-<seq>.zsnap"; returns false when `filename` does
// not match the scheme exactly (digits only in the sequence field).
bool ParseSequence(const std::string& filename, const std::string& basename,
                  uint64_t* sequence) {
  const std::string prefix = basename + "-";
  if (filename.size() <= prefix.size() + std::strlen(kSnapshotExtension)) {
    return false;
  }
  if (filename.compare(0, prefix.size(), prefix) != 0) return false;
  if (filename.size() < std::strlen(kSnapshotExtension) ||
      filename.compare(filename.size() - std::strlen(kSnapshotExtension),
                       std::string::npos, kSnapshotExtension) != 0) {
    return false;
  }
  const std::string digits = filename.substr(
      prefix.size(),
      filename.size() - prefix.size() - std::strlen(kSnapshotExtension));
  if (digits.empty() || digits.size() > 19) return false;
  uint64_t value = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *sequence = value;
  return true;
}

std::string SequenceFileName(const std::string& basename, uint64_t sequence) {
  char digits[32];
  std::snprintf(digits, sizeof(digits), "%012llu",
                static_cast<unsigned long long>(sequence));
  return basename + "-" + digits + kSnapshotExtension;
}

// Writes `data` to `path` and fsyncs the file descriptor, so the bytes
// are on stable storage before the caller renames the file into place.
common::Status WriteFileDurably(const std::string& path,
                                const std::string& data) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return common::Status::Internal(ErrnoMessage("open " + path));
  }
  size_t written = 0;
  while (written < data.size()) {
    const ssize_t n =
        ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string message = ErrnoMessage("write " + path);
      ::close(fd);
      ::unlink(path.c_str());
      return common::Status::Internal(message);
    }
    written += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const std::string message = ErrnoMessage("fsync " + path);
    ::close(fd);
    ::unlink(path.c_str());
    return common::Status::Internal(message);
  }
  if (::close(fd) != 0) {
    return common::Status::Internal(ErrnoMessage("close " + path));
  }
  return common::Status::Ok();
}

// fsyncs a directory so a completed rename survives power loss.
common::Status SyncDirectory(const std::string& directory) {
  const int fd = ::open(directory.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return common::Status::Internal(ErrnoMessage("open dir " + directory));
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return common::Status::Internal(ErrnoMessage("fsync dir " + directory));
  }
  return common::Status::Ok();
}

// Sequence-sorted (sequence, filename) pairs in `directory`.
common::StatusOr<std::vector<std::pair<uint64_t, std::string>>>
ListSequenced(const std::string& directory, const std::string& basename) {
  std::error_code ec;
  if (!fs::is_directory(directory, ec)) {
    return common::Status::NotFound("checkpoint directory '" + directory +
                                    "' does not exist");
  }
  std::vector<std::pair<uint64_t, std::string>> files;
  for (const fs::directory_entry& entry :
       fs::directory_iterator(directory, ec)) {
    if (ec) break;
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    uint64_t sequence = 0;
    if (ParseSequence(name, basename, &sequence)) {
      files.emplace_back(sequence, entry.path().string());
    }
  }
  if (ec) {
    return common::Status::Internal("failed to list '" + directory +
                                    "': " + ec.message());
  }
  std::sort(files.begin(), files.end());
  return files;
}

}  // namespace

common::StatusOr<CheckpointWriter> CheckpointWriter::Create(
    const CheckpointWriterOptions& options) {
  if (options.directory.empty()) {
    return common::Status::InvalidArgument(
        "checkpoint directory must be non-empty");
  }
  if (options.keep < 1) {
    return common::Status::InvalidArgument(
        "checkpoint retention must keep at least one snapshot");
  }
  if (options.basename.empty() ||
      options.basename.find('/') != std::string::npos) {
    return common::Status::InvalidArgument(
        "checkpoint basename must be a non-empty file name stem");
  }
  std::error_code ec;
  fs::create_directories(options.directory, ec);
  if (ec) {
    return common::Status::Internal("failed to create '" +
                                    options.directory + "': " + ec.message());
  }
  CheckpointWriter writer(options);
  auto existing = ListSequenced(options.directory, options.basename);
  if (!existing.ok()) return existing.status();
  if (!existing->empty()) {
    writer.next_sequence_ = existing->back().first + 1;
  }
  return writer;
}

common::StatusOr<std::string> CheckpointWriter::Write(
    const Snapshot& snapshot) {
  const std::string encoded = EncodeSnapshot(snapshot);
  const std::string final_name =
      SequenceFileName(options_.basename, next_sequence_);
  const fs::path final_path = fs::path(options_.directory) / final_name;
  // The temp file lives in the same directory (rename must not cross
  // filesystems) and is pid-tagged so a crashed predecessor's leftover
  // never collides.
  const fs::path tmp_path =
      fs::path(options_.directory) /
      ("." + final_name + ".tmp." + std::to_string(::getpid()));
  if (auto status = WriteFileDurably(tmp_path.string(), encoded);
      !status.ok()) {
    return status;
  }
  if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    const std::string message =
        ErrnoMessage("rename " + tmp_path.string());
    ::unlink(tmp_path.c_str());
    return common::Status::Internal(message);
  }
  if (auto status = SyncDirectory(options_.directory); !status.ok()) {
    return status;
  }
  ++next_sequence_;

  // Retention: drop everything but the newest `keep` snapshots. Best
  // effort — a failed unlink must not fail the checkpoint that already
  // landed.
  auto files = ListSequenced(options_.directory, options_.basename);
  if (files.ok() && files->size() > static_cast<size_t>(options_.keep)) {
    const size_t excess = files->size() - static_cast<size_t>(options_.keep);
    for (size_t i = 0; i < excess; ++i) {
      ::unlink((*files)[i].second.c_str());
    }
  }
  return final_path.string();
}

common::StatusOr<std::vector<std::string>> ListSnapshotFiles(
    const std::string& directory) {
  // Accept any basename: group by the writer scheme "<stem>-<seq>.zsnap"
  // with the default stem, falling back to every *.zsnap file sorted by
  // name so hand-renamed snapshots still list.
  std::error_code ec;
  if (!fs::is_directory(directory, ec)) {
    return common::Status::NotFound("checkpoint directory '" + directory +
                                    "' does not exist");
  }
  std::vector<std::pair<uint64_t, std::string>> sequenced;
  std::vector<std::string> unsequenced;
  for (const fs::directory_entry& entry :
       fs::directory_iterator(directory, ec)) {
    if (ec) break;
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    if (name.size() < std::strlen(kSnapshotExtension) ||
        name.compare(name.size() - std::strlen(kSnapshotExtension),
                     std::string::npos, kSnapshotExtension) != 0) {
      continue;
    }
    const size_t dash = name.rfind('-');
    uint64_t sequence = 0;
    if (dash != std::string::npos && dash > 0 &&
        ParseSequence(name, name.substr(0, dash), &sequence)) {
      sequenced.emplace_back(sequence, entry.path().string());
    } else {
      unsequenced.push_back(entry.path().string());
    }
  }
  if (ec) {
    return common::Status::Internal("failed to list '" + directory +
                                    "': " + ec.message());
  }
  std::sort(sequenced.begin(), sequenced.end());
  std::sort(unsequenced.begin(), unsequenced.end());
  std::vector<std::string> files;
  files.reserve(sequenced.size() + unsequenced.size());
  for (auto& [sequence, path] : sequenced) {
    (void)sequence;
    files.push_back(std::move(path));
  }
  for (std::string& path : unsequenced) files.push_back(std::move(path));
  return files;
}

common::StatusOr<Snapshot> LoadSnapshotFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return common::Status::NotFound("cannot open snapshot file '" + path +
                                    "'");
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (in.bad()) {
    return common::Status::Internal("failed to read snapshot file '" + path +
                                    "'");
  }
  auto snapshot = DecodeSnapshot(bytes);
  if (!snapshot.ok()) {
    return common::Status::InvalidArgument("snapshot file '" + path +
                                           "': " + snapshot.status().message());
  }
  return snapshot;
}

common::StatusOr<LoadedSnapshot> LoadLatestGoodSnapshot(
    const std::string& directory) {
  auto files = ListSnapshotFiles(directory);
  if (!files.ok()) return files.status();
  if (files->empty()) {
    return common::Status::NotFound("no snapshot files in '" + directory +
                                    "'");
  }
  LoadedSnapshot loaded;
  for (auto it = files->rbegin(); it != files->rend(); ++it) {
    auto snapshot = LoadSnapshotFile(*it);
    if (snapshot.ok()) {
      loaded.snapshot = *std::move(snapshot);
      loaded.path = *it;
      return loaded;
    }
    loaded.rejected.push_back(snapshot.status().message());
  }
  std::string message = "every snapshot in '" + directory + "' is corrupt:";
  for (const std::string& rejected : loaded.rejected) {
    message += "\n  " + rejected;
  }
  return common::Status::InvalidArgument(message);
}

}  // namespace zonestream::recovery
