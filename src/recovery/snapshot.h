// The zonestream-snapshot-v1 container: a versioned, checksummed,
// section-structured serialization of everything a long run needs to
// resume bit-identically — server state (admitted streams, per-disk arm
// and fault state, degradation machine), simulator state, every RNG
// substream position, and the exact observability counters/histograms.
//
// Layout (all integers little-endian):
//
//   magic   "ZSNAPv1\0"                          8 bytes
//   u32     version (kSnapshotVersion)
//   u32     section count
//   per section:
//     string  name   (u64 length + bytes)
//     string  payload (u64 length + bytes)
//   u64     CRC-64/XZ of every byte above
//
// Decoding verifies magic, version, and checksum before looking inside
// any payload, and every payload codec validates shape and ranges, so a
// truncated or bit-flipped file yields a clean error — never UB. Unknown
// sections round-trip untouched (they land in Snapshot::app_sections),
// which is how application drivers (e.g. the video_server_sim churn
// loop) persist their own state alongside the library's.
#ifndef ZONESTREAM_RECOVERY_SNAPSHOT_H_
#define ZONESTREAM_RECOVERY_SNAPSHOT_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "common/status.h"
#include "obs/metrics.h"
#include "server/media_server.h"
#include "service/admission_service.h"
#include "sim/round_simulator.h"

namespace zonestream::recovery {

// Eight magic bytes (the length is explicit: the literal embeds a NUL).
// The magic names the container *family*; the version field below tracks
// the payload format. Version history:
//   1 — original PR 5 format.
//   2 — server section gained parity/repair fields (spare flags, repair
//       progress, degraded counters). Version-1 files are rejected with a
//       clear "unsupported snapshot version" error rather than risking a
//       silent misparse of the appended fields.
//   3 — added the 'service' section: the admission-service control
//       plane (session registry, per-class limits, published table).
//       The payload is byte-for-byte the canonical
//       service::EncodeAdmissionServiceState encoding, so the daemon's
//       live Digest() and the snapshot section digest agree by
//       construction. Older versions are rejected per the v1 precedent.
inline constexpr std::string_view kSnapshotMagic{"ZSNAPv1\0", 8};
inline constexpr uint32_t kSnapshotVersion = 3;

// Informational header — never consulted by restore logic, but lets
// `zonestream_ctl snapshot inspect` describe a file without the config
// that produced it.
struct SnapshotMeta {
  int64_t round = 0;          // position of the checkpointed run
  uint64_t base_seed = 0;     // the run's configured seed
  std::string producer;       // free-form producer tag ("video_server_sim")
};

// One checkpoint. The optional sections mirror what the producing run
// had live: a server run fills `server`, a simulator run `simulator`,
// and either may add the metrics registry and app-private sections.
struct Snapshot {
  SnapshotMeta meta;
  std::optional<server::MediaServerState> server;
  std::optional<sim::RoundSimulatorState> simulator;
  std::optional<obs::RegistryState> registry;
  std::optional<service::AdmissionServiceState> service;
  // Raw payloads of sections this library does not interpret, keyed by
  // section name. Producers should prefix their names with "app." to
  // stay clear of future library sections.
  std::map<std::string, std::string> app_sections;
};

// Serializes `snapshot` into the container format above.
std::string EncodeSnapshot(const Snapshot& snapshot);

// Parses and fully validates a container. Returns InvalidArgument with a
// specific message on bad magic, unsupported version, checksum mismatch,
// truncation, or a malformed section payload.
common::StatusOr<Snapshot> DecodeSnapshot(std::string_view bytes);

// Short human-readable description of a snapshot (round, seed, producer,
// section inventory) for the `snapshot inspect` CLI.
std::string DescribeSnapshot(const Snapshot& snapshot);

}  // namespace zonestream::recovery

#endif  // ZONESTREAM_RECOVERY_SNAPSHOT_H_
