#include "recovery/replay.h"

#include <bit>
#include <cstdint>
#include <utility>

namespace zonestream::recovery {

namespace {

bool SameBits(double a, double b) {
  return std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b);
}

common::Status Diverged(size_t index, const std::string& field) {
  return common::Status::InvalidArgument(
      "replay diverged at trace event " + std::to_string(index) +
      ", field '" + field + "'");
}

}  // namespace

common::Status CompareTraces(
    const std::vector<obs::RoundTraceEvent>& expected,
    const std::vector<obs::RoundTraceEvent>& actual) {
  if (expected.size() != actual.size()) {
    return common::Status::InvalidArgument(
        "replay produced " + std::to_string(actual.size()) +
        " trace events, expected " + std::to_string(expected.size()));
  }
  for (size_t i = 0; i < expected.size(); ++i) {
    const obs::RoundTraceEvent& e = expected[i];
    const obs::RoundTraceEvent& a = actual[i];
    if (e.round != a.round) return Diverged(i, "round");
    if (e.source_id != a.source_id) return Diverged(i, "source_id");
    if (e.num_requests != a.num_requests) return Diverged(i, "num_requests");
    if (!SameBits(e.service_time_s, a.service_time_s)) {
      return Diverged(i, "service_time_s");
    }
    if (!SameBits(e.seek_s, a.seek_s)) return Diverged(i, "seek_s");
    if (!SameBits(e.rotation_s, a.rotation_s)) {
      return Diverged(i, "rotation_s");
    }
    if (!SameBits(e.transfer_s, a.transfer_s)) {
      return Diverged(i, "transfer_s");
    }
    if (!SameBits(e.disturbance_delay_s, a.disturbance_delay_s)) {
      return Diverged(i, "disturbance_delay_s");
    }
    if (e.disturbances != a.disturbances) return Diverged(i, "disturbances");
    if (!SameBits(e.fault_delay_s, a.fault_delay_s)) {
      return Diverged(i, "fault_delay_s");
    }
    if (e.faulted_requests != a.faulted_requests) {
      return Diverged(i, "faulted_requests");
    }
    if (e.glitches != a.glitches) return Diverged(i, "glitches");
    if (e.overran != a.overran) return Diverged(i, "overran");
    if (e.disk_failed != a.disk_failed) return Diverged(i, "disk_failed");
    if (e.truncated_requests != a.truncated_requests) {
      return Diverged(i, "truncated_requests");
    }
    if (!SameBits(e.leftover_s, a.leftover_s)) {
      return Diverged(i, "leftover_s");
    }
    if (e.zone_hits != a.zone_hits) return Diverged(i, "zone_hits");
  }
  return common::Status::Ok();
}

common::Status CompareRegistries(const obs::RegistryState& expected,
                                 const obs::RegistryState& actual) {
  if (expected.counters.size() != actual.counters.size()) {
    return common::Status::InvalidArgument(
        "replay registry has " + std::to_string(actual.counters.size()) +
        " counters, expected " + std::to_string(expected.counters.size()));
  }
  for (size_t i = 0; i < expected.counters.size(); ++i) {
    if (expected.counters[i].first != actual.counters[i].first) {
      return common::Status::InvalidArgument(
          "replay registry counter name mismatch: '" +
          actual.counters[i].first + "' vs expected '" +
          expected.counters[i].first + "'");
    }
    if (expected.counters[i].second != actual.counters[i].second) {
      return common::Status::InvalidArgument(
          "replay diverged on counter '" + expected.counters[i].first +
          "': " + std::to_string(actual.counters[i].second) +
          " vs expected " + std::to_string(expected.counters[i].second));
    }
  }
  if (expected.gauges.size() != actual.gauges.size()) {
    return common::Status::InvalidArgument(
        "replay registry has " + std::to_string(actual.gauges.size()) +
        " gauges, expected " + std::to_string(expected.gauges.size()));
  }
  for (size_t i = 0; i < expected.gauges.size(); ++i) {
    if (expected.gauges[i].first != actual.gauges[i].first) {
      return common::Status::InvalidArgument(
          "replay registry gauge name mismatch: '" + actual.gauges[i].first +
          "' vs expected '" + expected.gauges[i].first + "'");
    }
    if (!SameBits(expected.gauges[i].second, actual.gauges[i].second)) {
      return common::Status::InvalidArgument(
          "replay diverged on gauge '" + expected.gauges[i].first + "'");
    }
  }
  if (expected.histograms.size() != actual.histograms.size()) {
    return common::Status::InvalidArgument(
        "replay registry has " + std::to_string(actual.histograms.size()) +
        " histograms, expected " +
        std::to_string(expected.histograms.size()));
  }
  for (size_t i = 0; i < expected.histograms.size(); ++i) {
    const auto& [ename, ehist] = expected.histograms[i];
    const auto& [aname, ahist] = actual.histograms[i];
    if (ename != aname) {
      return common::Status::InvalidArgument(
          "replay registry histogram name mismatch: '" + aname +
          "' vs expected '" + ename + "'");
    }
    if (ehist.buckets != ahist.buckets || ehist.count != ahist.count ||
        !SameBits(ehist.sum, ahist.sum) || !SameBits(ehist.min, ahist.min) ||
        !SameBits(ehist.max, ahist.max)) {
      return common::Status::InvalidArgument(
          "replay diverged on histogram '" + ename + "'");
    }
  }
  return common::Status::Ok();
}

common::Status VerifyReplay(const ReferenceRunner& reference,
                            const ResumeRunner& resume) {
  auto reference_run = reference();
  if (!reference_run.ok()) return reference_run.status();
  // Round-trip the snapshot through the wire format so the codec is part
  // of what gets verified.
  const std::string encoded = EncodeSnapshot(reference_run->snapshot);
  auto decoded = DecodeSnapshot(encoded);
  if (!decoded.ok()) return decoded.status();
  auto resumed_run = resume(*decoded);
  if (!resumed_run.ok()) return resumed_run.status();
  if (auto status = CompareTraces(reference_run->tail_events,
                                  resumed_run->tail_events);
      !status.ok()) {
    return status;
  }
  return CompareRegistries(reference_run->final_registry,
                           resumed_run->final_registry);
}

}  // namespace zonestream::recovery
