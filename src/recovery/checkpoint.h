// Durable checkpoint files on top of the snapshot container.
//
// CheckpointWriter makes each checkpoint crash-atomic: the container is
// written to a temporary file in the same directory, fsynced, renamed
// into place, and the directory fsynced — a reader never observes a
// half-written snapshot, only the previous one or the new one. Retention
// keeps the last K snapshots so one corrupt tail file (the likely
// outcome of dying mid-write on filesystems without atomic rename
// durability) still leaves good ancestors behind;
// LoadLatestGoodSnapshot walks newest-first and skips anything that
// fails validation.
#ifndef ZONESTREAM_RECOVERY_CHECKPOINT_H_
#define ZONESTREAM_RECOVERY_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "recovery/snapshot.h"

namespace zonestream::recovery {

struct CheckpointWriterOptions {
  std::string directory;
  // Snapshots retained after each write; older ones are deleted. >= 1.
  int keep = 3;
  // File name stem: files are "<basename>-<seq>.zsnap".
  std::string basename = "snapshot";
};

// Writes numbered snapshot files with atomic replace + bounded
// retention. Not thread-safe; one writer per directory.
class CheckpointWriter {
 public:
  // Creates the directory if missing and resumes numbering after any
  // snapshots already present (so a resumed run never overwrites the
  // snapshot it restored from).
  static common::StatusOr<CheckpointWriter> Create(
      const CheckpointWriterOptions& options);

  // Encodes, durably writes, and rotates. Returns the final path.
  common::StatusOr<std::string> Write(const Snapshot& snapshot);

  uint64_t next_sequence() const { return next_sequence_; }

 private:
  explicit CheckpointWriter(CheckpointWriterOptions options)
      : options_(std::move(options)) {}

  CheckpointWriterOptions options_;
  uint64_t next_sequence_ = 0;
};

// Snapshot files in `directory` matching the writer's naming scheme,
// sorted oldest-first by sequence number. Missing directory is an error;
// an existing-but-empty directory yields an empty list.
common::StatusOr<std::vector<std::string>> ListSnapshotFiles(
    const std::string& directory);

// Reads and decodes one snapshot file.
common::StatusOr<Snapshot> LoadSnapshotFile(const std::string& path);

// Result of a newest-first recovery scan.
struct LoadedSnapshot {
  Snapshot snapshot;
  std::string path;            // file the snapshot came from
  // Files newer than `path` that failed to load, each with its error —
  // the caller should surface these (a corrupt newest snapshot is worth
  // a warning even when an older one saves the run).
  std::vector<std::string> rejected;
};

// Walks the directory's snapshots newest-first, returning the first one
// that decodes cleanly. NotFound when the directory holds no snapshot
// files at all; InvalidArgument when snapshots exist but every one is
// corrupt.
common::StatusOr<LoadedSnapshot> LoadLatestGoodSnapshot(
    const std::string& directory);

}  // namespace zonestream::recovery

#endif  // ZONESTREAM_RECOVERY_CHECKPOINT_H_
