// Textual fault-mix specification, for CLI flags and config files.
//
// A spec string is a ';'-separated list of model clauses, each
// "<model>:<key>=<value>,<key>=<value>,...". Models and keys:
//
//   slowdown:     enter, exit, prob, delay_min, delay_max, from, until
//   zone_dropout: fail, recover, rate_factor
//   burst:        prob, len, delay_min, delay_max
//   disk_failure: hazard, at, repair
//
// Example (the integration demo's slowdown epoch):
//   --fault="slowdown:delay_min=0.05,delay_max=0.3,from=200,until=400"
//
// Numeric validation is deferred to the model Create() functions, so the
// parser and the programmatic API reject identical inputs identically.
#ifndef ZONESTREAM_FAULT_FAULT_SPEC_H_
#define ZONESTREAM_FAULT_FAULT_SPEC_H_

#include <string>

#include "common/status.h"
#include "fault/fault_model.h"

namespace zonestream::fault {

// Parses a spec string. The empty string yields an empty FaultSpec.
common::StatusOr<FaultSpec> ParseFaultSpec(const std::string& text);

// Renders a spec back to the parseable textual form (round-trips through
// ParseFaultSpec up to float formatting).
std::string FormatFaultSpec(const FaultSpec& spec);

}  // namespace zonestream::fault

#endif  // ZONESTREAM_FAULT_FAULT_SPEC_H_
