// Graceful degradation under detected disk misbehavior.
//
// The §3.3 contract promises each stream P[>= g glitches in m rounds] <=
// epsilon, derived from a per-round glitch bound b_glitch. When the disk
// leaves its calibrated envelope (slowdown epoch, zone dropout, failing
// neighbor in the array), the measured glitch rate can exceed b_glitch and
// the contract silently rots for *every* admitted stream. The
// DegradationController restores it by shedding load: it watches the
// measured per-stream glitch rate over fixed windows, trips after a
// configurable number of consecutive violating windows, sheds streams down
// to a re-armored admission limit, and only re-admits after sustained
// clean windows — hysteresis at both edges so transient noise neither
// trips nor flaps the controller.
//
// Shedding policy is the caller's (the server sheds lowest class first);
// the controller only decides *how many* streams must go and whether
// admissions stay open. RearmoredStreamLimit implements the re-armoring
// arithmetic sketched in sim/round_simulator.h: fold the detected
// disturbance's two moments into the transfer time and recompute the §3.3
// admission limit against the inflated model.
#ifndef ZONESTREAM_FAULT_DEGRADATION_H_
#define ZONESTREAM_FAULT_DEGRADATION_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "disk/disk_geometry.h"
#include "disk/seek_model.h"

namespace zonestream::obs {
class Counter;
class Gauge;
class Registry;
}  // namespace zonestream::obs

namespace zonestream::fault {

enum class DegradationState {
  kNormal = 0,      // contract holding; admissions open
  kDegraded = 1,    // shedding; admissions closed
  kRecovering = 2,  // clean again; admissions open, still watched closely
};

const char* DegradationStateName(DegradationState state);

// One closed observation window, handed to the re-armoring hook.
struct WindowSummary {
  int64_t end_round = 0;       // round index after the window's last round
  int64_t rounds = 0;          // rounds in the window
  double glitch_rate = 0.0;    // glitch events / stream-rounds
  double overrun_rate = 0.0;   // overrunning rounds / rounds
  int active_streams = 0;      // streams at window close
};

// Decides the post-trip stream target. Returns the number of streams the
// server should keep (clamped by the controller to [min_streams,
// active_streams]); return a negative value to fall back to the built-in
// proportional policy. Typically wraps RearmoredStreamLimit with the
// disturbance moments estimated for the detected fault.
using RearmorHook = std::function<int(const WindowSummary& window)>;

struct DegradationPolicy {
  // The §3.3 per-round glitch bound the controller defends (b_glitch for
  // the admitted load, or g/m for a lifetime contract).
  double glitch_rate_bound = 0.0;
  // Observation window; the measured rate is glitches / stream-rounds.
  int window_rounds = 20;
  // Consecutive violating windows before the controller trips.
  int trigger_windows = 2;
  // Consecutive clean windows (rate <= recovery_margin * bound) required
  // to move kDegraded -> kRecovering, and again kRecovering -> kNormal.
  int recovery_windows = 3;
  double recovery_margin = 0.5;
  // Never shed below this many streams.
  int min_streams = 1;
  // Cap on the fraction of active streams shed by one trip.
  double max_shed_fraction = 0.5;
  // Optional re-armoring hook; null uses the proportional fallback
  // target = floor(active * bound / measured_rate).
  RearmorHook rearmor;
};

// What the server must do after one observed round.
struct DegradationCommand {
  int shed_streams = 0;           // close this many streams now
  bool admissions_open = true;    // accept new streams?
  bool window_closed = false;     // a window boundary was just evaluated
};

// State transition log entry (also exported by the example CLI).
struct DegradationEvent {
  int64_t round = 0;
  DegradationState from = DegradationState::kNormal;
  DegradationState to = DegradationState::kNormal;
  int shed_streams = 0;
  double window_glitch_rate = 0.0;
};

// Complete restartable state of a DegradationController: the state
// machine position, the open window's accumulators, both hysteresis
// counters, and the event log — everything ObserveRound consults, so a
// restore continues the controller bit-identically mid-window.
struct DegradationControllerState {
  DegradationState state = DegradationState::kNormal;
  int64_t rounds_observed = 0;
  int64_t window_rounds_seen = 0;
  int64_t window_stream_rounds = 0;
  int64_t window_glitches = 0;
  int64_t window_overruns = 0;
  int last_active_streams = 0;
  int violating_windows = 0;
  int clean_windows = 0;
  std::vector<DegradationEvent> events;
};

// Single-threaded controller; drive it from the server's round loop.
class DegradationController {
 public:
  // `metrics` (optional, not owned) receives "<prefix>.state" (gauge),
  // "<prefix>.trips", "<prefix>.shed_streams", "<prefix>.windows_violated"
  // counters. Policy is validated: invalid values are clamped to sane
  // minima rather than rejected (the controller must never be the crash).
  explicit DegradationController(
      const DegradationPolicy& policy, obs::Registry* metrics = nullptr,
      const std::string& metric_prefix = "server.degradation");

  // Feeds one round's observation; returns what the server must do.
  DegradationCommand ObserveRound(int active_streams, int glitched_streams,
                                  bool overran);

  DegradationState state() const { return state_; }
  const std::vector<DegradationEvent>& events() const { return events_; }
  int64_t rounds_observed() const { return rounds_observed_; }
  const DegradationPolicy& policy() const { return policy_; }

  // Checkpoint support: restoring an exported state onto a controller
  // built from the same policy continues it bit-identically (the policy
  // itself — including the rearmor hook — is reconstructed, not saved).
  DegradationControllerState ExportState() const;
  common::Status ImportState(const DegradationControllerState& state);

 private:
  void Transition(DegradationState to, int shed, double rate);
  int ShedTarget(const WindowSummary& window) const;

  DegradationPolicy policy_;
  DegradationState state_ = DegradationState::kNormal;
  int64_t rounds_observed_ = 0;
  // Open window accumulators.
  int64_t window_rounds_seen_ = 0;
  int64_t window_stream_rounds_ = 0;
  int64_t window_glitches_ = 0;
  int64_t window_overruns_ = 0;
  int last_active_streams_ = 0;
  // Consecutive window counters for the hysteresis edges.
  int violating_windows_ = 0;
  int clean_windows_ = 0;
  std::vector<DegradationEvent> events_;
  // Metric handles (null when disabled).
  obs::Gauge* state_gauge_ = nullptr;
  obs::Counter* trips_ = nullptr;
  obs::Counter* shed_streams_ = nullptr;
  obs::Counter* windows_violated_ = nullptr;
};

// Re-armored per-disk admission limit: folds an extra per-request delay
// with the given mean and second moment into the multi-zone transfer time
// (exactly the moment-inflation recipe of the DisturbanceRobustness tests)
// and recomputes the §3.3.6 limit max{N : p_error(N, t, m, g) <= epsilon}.
// Returns 0 when even one stream violates the inflated contract.
common::StatusOr<int> RearmoredStreamLimit(
    const disk::DiskGeometry& geometry, const disk::SeekTimeModel& seek,
    double fragment_mean_bytes, double fragment_variance_bytes2,
    double extra_delay_mean_s, double extra_delay_second_moment_s2,
    double round_length_s, int m, int g, double epsilon);

}  // namespace zonestream::fault

#endif  // ZONESTREAM_FAULT_DEGRADATION_H_
