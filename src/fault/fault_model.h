// Composable fault injection for the simulators and servers.
//
// The paper's guarantees are *stochastic*: §3.3 trades a tiny, quantified
// per-stream failure probability for throughput. Validating that contract
// under realistic misbehavior needs faults in realistic shapes, not just
// the i.i.d. per-request delays of sim::DisturbanceConfig. This module
// provides a small algebra of fault models:
//
//   * MarkovSlowdownFault    — two-state (normal/slow) epochs at round
//     granularity, the temporal analogue of core::MarkovGlitchModel:
//     thermal recalibration storms, vibration bursts, background scrubs.
//   * ZoneDropoutFault       — zones independently drop to a remapped
//     (derated) transfer rate and later recover: media defects, head
//     degradation confined to a radial band.
//   * CorrelatedBurstFault   — a contiguous run of one round's requests
//     all pick up extra delay: bus resets, queue stalls.
//   * DiskFailureFault       — the whole disk stops serving (optionally
//     repaired later): the failure-domain case striped arrays must
//     survive (server::PlanArrayDegraded).
//
// Every model draws from its own numeric::Rng substream owned by the
// FaultInjector, so configuring zero models consumes zero randomness and
// clean runs stay bit-identical to a build without this subsystem; adding
// a model never perturbs another model's draws either.
#ifndef ZONESTREAM_FAULT_FAULT_MODEL_H_
#define ZONESTREAM_FAULT_FAULT_MODEL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "numeric/random.h"

namespace zonestream::obs {
class Counter;
class Histogram;
class Registry;
}  // namespace zonestream::obs

namespace zonestream::fault {

// Everything a fault model may condition a per-request decision on.
struct RequestFaultContext {
  int request_index = 0;  // position in issue order (0-based)
  int stream_id = 0;
  int zone = 0;
  int cylinder = 0;
};

// One source of faults. Stateful (epoch machines advance at round
// boundaries); the owning FaultInjector hands each model its own RNG.
class FaultModel {
 public:
  virtual ~FaultModel() = default;

  virtual const char* name() const = 0;

  // Advances epoch state at the round boundary. `num_requests` is the
  // number of requests the coming round will issue.
  virtual void BeginRound(int num_requests, numeric::Rng* rng) = 0;

  // Extra service delay (seconds, >= 0) injected into this request.
  virtual double DelayFor(const RequestFaultContext& context,
                          numeric::Rng* rng) {
    (void)context;
    (void)rng;
    return 0.0;
  }

  // Multiplier in (0, 1] on the zone's transfer rate for this round
  // (< 1 models a degraded / remapped zone).
  virtual double RateMultiplier(int zone) const {
    (void)zone;
    return 1.0;
  }

  // Whole-disk failure: no request is served this round.
  virtual bool disk_failed() const { return false; }

  // True while the model is currently disturbing the disk.
  virtual bool active() const = 0;

  // Checkpoint support: appends the model's mutable epoch state as raw
  // 64-bit words (doubles bit-cast, signed values two's-complement). The
  // spec itself is NOT exported — restore happens onto a model rebuilt
  // from the same spec, and the injector cross-checks model identity by
  // name() before importing.
  virtual void ExportState(std::vector<uint64_t>* out) const = 0;

  // Restores a state produced by ExportState on a same-spec model.
  // Rejects word counts or values outside the model's schema.
  virtual common::Status ImportState(const std::vector<uint64_t>& state) = 0;
};

// --- Markov-modulated slowdown ---------------------------------------------

struct MarkovSlowdownSpec {
  // Per-round-boundary switching probabilities of the two-state chain.
  double enter_per_round = 0.0;  // P[normal -> slow]
  double exit_per_round = 0.0;   // P[slow -> normal]
  // Within a slow epoch, each request independently picks up a delay
  // uniform in [delay_min_s, delay_max_s] with this probability.
  double per_request_probability = 1.0;
  double delay_min_s = 0.0;
  double delay_max_s = 0.0;
  // Deterministic epoch window for experiments: the model is forced slow
  // on rounds [force_from_round, force_until_round). -1 disables. The
  // stochastic chain still runs (and consumes its draws) underneath, so
  // enabling a forced window never shifts later stochastic epochs.
  int64_t force_from_round = -1;
  int64_t force_until_round = -1;
};

class MarkovSlowdownFault final : public FaultModel {
 public:
  static common::StatusOr<std::unique_ptr<MarkovSlowdownFault>> Create(
      const MarkovSlowdownSpec& spec);

  const char* name() const override { return "markov_slowdown"; }
  void BeginRound(int num_requests, numeric::Rng* rng) override;
  double DelayFor(const RequestFaultContext& context,
                  numeric::Rng* rng) override;
  bool active() const override;
  void ExportState(std::vector<uint64_t>* out) const override;
  common::Status ImportState(const std::vector<uint64_t>& state) override;

 private:
  explicit MarkovSlowdownFault(const MarkovSlowdownSpec& spec)
      : spec_(spec) {}
  MarkovSlowdownSpec spec_;
  bool slow_ = false;     // stochastic chain state
  int64_t round_ = -1;    // rounds begun so far - 1
};

// --- Zone dropout ----------------------------------------------------------

struct ZoneDropoutSpec {
  double fail_per_round = 0.0;     // per healthy zone, per round
  double recover_per_round = 0.0;  // per failed zone, per round (0 = never)
  // Remapped transfer rate of a dropped zone, as a fraction of nominal.
  double rate_factor = 0.5;        // must lie in (0, 1]
};

class ZoneDropoutFault final : public FaultModel {
 public:
  static common::StatusOr<std::unique_ptr<ZoneDropoutFault>> Create(
      const ZoneDropoutSpec& spec, int num_zones);

  const char* name() const override { return "zone_dropout"; }
  void BeginRound(int num_requests, numeric::Rng* rng) override;
  double RateMultiplier(int zone) const override;
  bool active() const override { return failed_zones_ > 0; }
  int failed_zones() const { return failed_zones_; }
  void ExportState(std::vector<uint64_t>* out) const override;
  common::Status ImportState(const std::vector<uint64_t>& state) override;

 private:
  ZoneDropoutFault(const ZoneDropoutSpec& spec, int num_zones)
      : spec_(spec), zone_failed_(num_zones, 0) {}
  ZoneDropoutSpec spec_;
  std::vector<uint8_t> zone_failed_;
  int failed_zones_ = 0;
};

// --- Correlated delay burst ------------------------------------------------

struct CorrelatedBurstSpec {
  double burst_per_round = 0.0;  // P[a burst fires this round]
  int burst_length = 1;          // consecutive requests (issue order) hit
  double delay_min_s = 0.0;
  double delay_max_s = 0.0;      // each hit request delays U[min, max]
};

class CorrelatedBurstFault final : public FaultModel {
 public:
  static common::StatusOr<std::unique_ptr<CorrelatedBurstFault>> Create(
      const CorrelatedBurstSpec& spec);

  const char* name() const override { return "correlated_burst"; }
  void BeginRound(int num_requests, numeric::Rng* rng) override;
  double DelayFor(const RequestFaultContext& context,
                  numeric::Rng* rng) override;
  bool active() const override { return burst_start_ >= 0; }
  void ExportState(std::vector<uint64_t>* out) const override;
  common::Status ImportState(const std::vector<uint64_t>& state) override;

 private:
  explicit CorrelatedBurstFault(const CorrelatedBurstSpec& spec)
      : spec_(spec) {}
  CorrelatedBurstSpec spec_;
  int burst_start_ = -1;  // -1: no burst this round
};

// --- Whole-disk failure ----------------------------------------------------

struct DiskFailureSpec {
  double fail_per_round = 0.0;      // geometric failure hazard
  int64_t fail_at_round = -1;       // deterministic failure round (-1 off)
  int64_t repair_after_rounds = -1; // rounds until repaired (-1 = permanent)
};

class DiskFailureFault final : public FaultModel {
 public:
  static common::StatusOr<std::unique_ptr<DiskFailureFault>> Create(
      const DiskFailureSpec& spec);

  const char* name() const override { return "disk_failure"; }
  void BeginRound(int num_requests, numeric::Rng* rng) override;
  bool disk_failed() const override { return failed_; }
  bool active() const override { return failed_; }
  void ExportState(std::vector<uint64_t>* out) const override;
  common::Status ImportState(const std::vector<uint64_t>& state) override;

 private:
  explicit DiskFailureFault(const DiskFailureSpec& spec) : spec_(spec) {}
  DiskFailureSpec spec_;
  bool failed_ = false;
  int64_t round_ = -1;
  int64_t failed_rounds_ = 0;  // consecutive rounds spent failed
};

// --- Composition -----------------------------------------------------------

// Plain-data description of a fault mix; copyable, so configs that embed
// it (sim::SimulatorConfig, server::MediaServerConfig) stay value types.
// An empty spec injects nothing and consumes no randomness.
struct FaultSpec {
  std::vector<MarkovSlowdownSpec> slowdowns;
  std::vector<ZoneDropoutSpec> zone_dropouts;
  std::vector<CorrelatedBurstSpec> bursts;
  std::vector<DiskFailureSpec> disk_failures;

  bool empty() const {
    return slowdowns.empty() && zone_dropouts.empty() && bursts.empty() &&
           disk_failures.empty();
  }
};

// Complete restartable state of a FaultInjector: per-model epoch state,
// the exact position of every per-model RNG substream, and the round
// count. Model names travel along so a restore onto an injector built
// from a different spec fails loudly instead of silently misassigning
// substreams.
struct FaultInjectorState {
  std::vector<std::string> model_names;
  std::vector<std::vector<uint64_t>> model_states;
  std::vector<std::string> rng_states;  // numeric::Rng::SaveState per model
  int64_t rounds_begun = 0;
};

// Owns a set of fault models plus one dedicated RNG substream per model
// (SubstreamSeed(SubstreamSeed(seed, kFaultSubstream), model ordinal)), and
// composes their per-round effects: delays add, rate multipliers multiply,
// disk failure is the OR. Metrics (optional, not owned) land under
// "<prefix>." — see docs/FAULTS.md for the schema.
class FaultInjector {
 public:
  // Validates `spec` and builds the models. `num_zones` sizes the zone
  // dropout state; `seed` is the *base* seed (the caller's), from which
  // the fault substreams are derived.
  static common::StatusOr<std::unique_ptr<FaultInjector>> Create(
      const FaultSpec& spec, int num_zones, uint64_t seed,
      obs::Registry* metrics = nullptr,
      const std::string& metric_prefix = "fault");

  // Advances every model's epoch state for the coming round.
  void BeginRound(int num_requests);

  // Total injected delay for one request (sum over models). Call in issue
  // order, exactly once per request, for reproducible substream use.
  double DelayFor(const RequestFaultContext& context);

  // Product of the models' zone-rate multipliers; always > 0.
  double RateMultiplier(int zone) const;

  bool disk_failed() const;
  bool any_active() const;
  int64_t rounds_begun() const { return rounds_begun_; }

  // Checkpoint support. ExportState captures everything BeginRound /
  // DelayFor consult: restoring it onto an injector freshly built from
  // the same (spec, num_zones, seed) makes the continuation bit-identical
  // to an uninterrupted run. Import cross-checks the model list by name
  // and restores nothing on mismatch.
  FaultInjectorState ExportState() const;
  common::Status ImportState(const FaultInjectorState& state);

 private:
  FaultInjector(std::vector<std::unique_ptr<FaultModel>> models,
                uint64_t seed, obs::Registry* metrics,
                const std::string& metric_prefix);

  struct Slot {
    std::unique_ptr<FaultModel> model;
    numeric::Rng rng;
  };
  std::vector<Slot> slots_;
  int64_t rounds_begun_ = 0;
  // Metric handles (null when disabled).
  obs::Counter* rounds_active_ = nullptr;
  obs::Counter* delays_injected_ = nullptr;
  obs::Counter* disk_failed_rounds_ = nullptr;
  obs::Histogram* delay_s_ = nullptr;
};

}  // namespace zonestream::fault

#endif  // ZONESTREAM_FAULT_FAULT_MODEL_H_
