#include "fault/fault_model.h"

#include <bit>
#include <utility>

#include "common/check.h"
#include "obs/metrics.h"

namespace zonestream::fault {

namespace {

// Tag for the fault subsystem's RNG substream family ("flt"). Model i
// draws from SubstreamSeed(SubstreamSeed(seed, kFaultSubstream), i), so
// fault draws never touch the caller's main stream and each model is
// independent of how many others are configured.
constexpr uint64_t kFaultSubstream = 0x666c74;

common::Status CheckProbability(double p, const char* what) {
  if (p < 0.0 || p > 1.0) {
    return common::Status::InvalidArgument(std::string(what) +
                                           " must lie in [0, 1]");
  }
  return common::Status::Ok();
}

common::Status CheckDelayRange(double lo, double hi) {
  if (lo < 0.0 || hi < lo) {
    return common::Status::InvalidArgument(
        "delay range must satisfy 0 <= delay_min_s <= delay_max_s");
  }
  return common::Status::Ok();
}

common::Status BadStateSize(const char* model, size_t got, size_t want) {
  return common::Status::InvalidArgument(
      std::string(model) + " state has " + std::to_string(got) +
      " words, expected " + std::to_string(want));
}

}  // namespace

// --- MarkovSlowdownFault ---------------------------------------------------

common::StatusOr<std::unique_ptr<MarkovSlowdownFault>>
MarkovSlowdownFault::Create(const MarkovSlowdownSpec& spec) {
  auto status = CheckProbability(spec.enter_per_round, "enter_per_round");
  if (!status.ok()) return status;
  status = CheckProbability(spec.exit_per_round, "exit_per_round");
  if (!status.ok()) return status;
  status = CheckProbability(spec.per_request_probability,
                            "per_request_probability");
  if (!status.ok()) return status;
  status = CheckDelayRange(spec.delay_min_s, spec.delay_max_s);
  if (!status.ok()) return status;
  if ((spec.force_from_round < 0) != (spec.force_until_round < 0) ||
      (spec.force_from_round >= 0 &&
       spec.force_until_round <= spec.force_from_round)) {
    return common::Status::InvalidArgument(
        "forced window needs force_from_round < force_until_round (or both "
        "-1)");
  }
  return std::unique_ptr<MarkovSlowdownFault>(new MarkovSlowdownFault(spec));
}

void MarkovSlowdownFault::BeginRound(int /*num_requests*/,
                                     numeric::Rng* rng) {
  ++round_;
  // One draw per round regardless of state keeps the substream position a
  // pure function of the round index, so forced windows and state flips
  // never shift later draws.
  const double u = rng->Uniform01();
  if (slow_) {
    if (u < spec_.exit_per_round) slow_ = false;
  } else {
    if (u < spec_.enter_per_round) slow_ = true;
  }
}

bool MarkovSlowdownFault::active() const {
  if (spec_.force_from_round >= 0 && round_ >= spec_.force_from_round &&
      round_ < spec_.force_until_round) {
    return true;
  }
  return slow_;
}

double MarkovSlowdownFault::DelayFor(const RequestFaultContext& /*context*/,
                                     numeric::Rng* rng) {
  // Fixed two-draw consumption per request, slow or not: DelayFor shares
  // the model's substream with the epoch chain, so a state-dependent draw
  // count would let a forced window (or the epoch state itself) shift
  // every later BeginRound draw — exactly what the header rules out.
  const double hit = rng->Uniform01();
  const double u = rng->Uniform01();
  if (!active() || hit >= spec_.per_request_probability) return 0.0;
  return spec_.delay_min_s + (spec_.delay_max_s - spec_.delay_min_s) * u;
}

void MarkovSlowdownFault::ExportState(std::vector<uint64_t>* out) const {
  out->push_back(slow_ ? 1 : 0);
  out->push_back(static_cast<uint64_t>(round_));
}

common::Status MarkovSlowdownFault::ImportState(
    const std::vector<uint64_t>& state) {
  if (state.size() != 2) return BadStateSize(name(), state.size(), 2);
  if (state[0] > 1) {
    return common::Status::InvalidArgument(
        "markov_slowdown state: slow flag must be 0 or 1");
  }
  slow_ = state[0] == 1;
  round_ = static_cast<int64_t>(state[1]);
  return common::Status::Ok();
}

// --- ZoneDropoutFault ------------------------------------------------------

common::StatusOr<std::unique_ptr<ZoneDropoutFault>> ZoneDropoutFault::Create(
    const ZoneDropoutSpec& spec, int num_zones) {
  if (num_zones <= 0) {
    return common::Status::InvalidArgument("num_zones must be positive");
  }
  auto status = CheckProbability(spec.fail_per_round, "fail_per_round");
  if (!status.ok()) return status;
  status = CheckProbability(spec.recover_per_round, "recover_per_round");
  if (!status.ok()) return status;
  if (spec.rate_factor <= 0.0 || spec.rate_factor > 1.0) {
    return common::Status::InvalidArgument(
        "rate_factor must lie in (0, 1] (a dropped zone still transfers, "
        "just slower; use disk_failure for a dead disk)");
  }
  return std::unique_ptr<ZoneDropoutFault>(
      new ZoneDropoutFault(spec, num_zones));
}

void ZoneDropoutFault::BeginRound(int /*num_requests*/, numeric::Rng* rng) {
  // One draw per zone per round, healthy or not: fixed consumption keeps
  // the substream aligned with the round index.
  for (size_t z = 0; z < zone_failed_.size(); ++z) {
    const double u = rng->Uniform01();
    if (zone_failed_[z]) {
      if (u < spec_.recover_per_round) {
        zone_failed_[z] = 0;
        --failed_zones_;
      }
    } else if (u < spec_.fail_per_round) {
      zone_failed_[z] = 1;
      ++failed_zones_;
    }
  }
}

double ZoneDropoutFault::RateMultiplier(int zone) const {
  ZS_CHECK_GE(zone, 0);
  ZS_CHECK_LT(static_cast<size_t>(zone), zone_failed_.size());
  return zone_failed_[zone] ? spec_.rate_factor : 1.0;
}

void ZoneDropoutFault::ExportState(std::vector<uint64_t>* out) const {
  for (uint8_t failed : zone_failed_) out->push_back(failed);
}

common::Status ZoneDropoutFault::ImportState(
    const std::vector<uint64_t>& state) {
  if (state.size() != zone_failed_.size()) {
    return BadStateSize(name(), state.size(), zone_failed_.size());
  }
  int failed = 0;
  for (uint64_t word : state) {
    if (word > 1) {
      return common::Status::InvalidArgument(
          "zone_dropout state: zone flags must be 0 or 1");
    }
    failed += static_cast<int>(word);
  }
  for (size_t z = 0; z < state.size(); ++z) {
    zone_failed_[z] = static_cast<uint8_t>(state[z]);
  }
  failed_zones_ = failed;
  return common::Status::Ok();
}

// --- CorrelatedBurstFault --------------------------------------------------

common::StatusOr<std::unique_ptr<CorrelatedBurstFault>>
CorrelatedBurstFault::Create(const CorrelatedBurstSpec& spec) {
  auto status = CheckProbability(spec.burst_per_round, "burst_per_round");
  if (!status.ok()) return status;
  if (spec.burst_length <= 0) {
    return common::Status::InvalidArgument("burst_length must be positive");
  }
  status = CheckDelayRange(spec.delay_min_s, spec.delay_max_s);
  if (!status.ok()) return status;
  return std::unique_ptr<CorrelatedBurstFault>(
      new CorrelatedBurstFault(spec));
}

void CorrelatedBurstFault::BeginRound(int num_requests, numeric::Rng* rng) {
  burst_start_ = -1;
  if (rng->Uniform01() < spec_.burst_per_round && num_requests > 0) {
    burst_start_ = static_cast<int>(
        rng->UniformIndex(static_cast<uint64_t>(num_requests)));
  }
}

double CorrelatedBurstFault::DelayFor(const RequestFaultContext& context,
                                      numeric::Rng* rng) {
  if (burst_start_ < 0) return 0.0;
  if (context.request_index < burst_start_ ||
      context.request_index >= burst_start_ + spec_.burst_length) {
    return 0.0;
  }
  return rng->Uniform(spec_.delay_min_s, spec_.delay_max_s);
}

void CorrelatedBurstFault::ExportState(std::vector<uint64_t>* out) const {
  out->push_back(static_cast<uint64_t>(static_cast<int64_t>(burst_start_)));
}

common::Status CorrelatedBurstFault::ImportState(
    const std::vector<uint64_t>& state) {
  if (state.size() != 1) return BadStateSize(name(), state.size(), 1);
  const int64_t start = static_cast<int64_t>(state[0]);
  if (start < -1 || start > 1'000'000'000) {
    return common::Status::InvalidArgument(
        "correlated_burst state: burst_start out of range");
  }
  burst_start_ = static_cast<int>(start);
  return common::Status::Ok();
}

// --- DiskFailureFault ------------------------------------------------------

common::StatusOr<std::unique_ptr<DiskFailureFault>> DiskFailureFault::Create(
    const DiskFailureSpec& spec) {
  auto status = CheckProbability(spec.fail_per_round, "fail_per_round");
  if (!status.ok()) return status;
  if (spec.fail_per_round == 0.0 && spec.fail_at_round < 0) {
    return common::Status::InvalidArgument(
        "disk failure needs fail_per_round > 0 or fail_at_round >= 0");
  }
  if (spec.repair_after_rounds == 0) {
    return common::Status::InvalidArgument(
        "repair_after_rounds must be positive (or -1 for permanent)");
  }
  return std::unique_ptr<DiskFailureFault>(new DiskFailureFault(spec));
}

void DiskFailureFault::BeginRound(int /*num_requests*/, numeric::Rng* rng) {
  ++round_;
  // Fixed one-draw-per-round consumption, as in MarkovSlowdownFault.
  const double u = rng->Uniform01();
  if (failed_) {
    ++failed_rounds_;
    if (spec_.repair_after_rounds > 0 &&
        failed_rounds_ >= spec_.repair_after_rounds) {
      failed_ = false;
      failed_rounds_ = 0;
    }
    return;
  }
  if (round_ == spec_.fail_at_round || u < spec_.fail_per_round) {
    failed_ = true;
    failed_rounds_ = 0;
  }
}

void DiskFailureFault::ExportState(std::vector<uint64_t>* out) const {
  out->push_back(failed_ ? 1 : 0);
  out->push_back(static_cast<uint64_t>(round_));
  out->push_back(static_cast<uint64_t>(failed_rounds_));
}

common::Status DiskFailureFault::ImportState(
    const std::vector<uint64_t>& state) {
  if (state.size() != 3) return BadStateSize(name(), state.size(), 3);
  if (state[0] > 1) {
    return common::Status::InvalidArgument(
        "disk_failure state: failed flag must be 0 or 1");
  }
  failed_ = state[0] == 1;
  round_ = static_cast<int64_t>(state[1]);
  failed_rounds_ = static_cast<int64_t>(state[2]);
  return common::Status::Ok();
}

// --- FaultInjector ---------------------------------------------------------

FaultInjector::FaultInjector(std::vector<std::unique_ptr<FaultModel>> models,
                             uint64_t seed, obs::Registry* metrics,
                             const std::string& metric_prefix) {
  const uint64_t family = numeric::SubstreamSeed(seed, kFaultSubstream);
  slots_.reserve(models.size());
  for (size_t i = 0; i < models.size(); ++i) {
    slots_.push_back(Slot{std::move(models[i]),
                          numeric::Rng(numeric::SubstreamSeed(family, i))});
  }
  if (metrics != nullptr) {
    rounds_active_ = metrics->GetCounter(metric_prefix + ".rounds_active");
    delays_injected_ =
        metrics->GetCounter(metric_prefix + ".delays_injected");
    disk_failed_rounds_ =
        metrics->GetCounter(metric_prefix + ".disk_failed_rounds");
    delay_s_ = metrics->GetHistogram(metric_prefix + ".delay_s");
  }
}

common::StatusOr<std::unique_ptr<FaultInjector>> FaultInjector::Create(
    const FaultSpec& spec, int num_zones, uint64_t seed,
    obs::Registry* metrics, const std::string& metric_prefix) {
  std::vector<std::unique_ptr<FaultModel>> models;
  for (const MarkovSlowdownSpec& s : spec.slowdowns) {
    auto model = MarkovSlowdownFault::Create(s);
    if (!model.ok()) return model.status();
    models.push_back(*std::move(model));
  }
  for (const ZoneDropoutSpec& s : spec.zone_dropouts) {
    auto model = ZoneDropoutFault::Create(s, num_zones);
    if (!model.ok()) return model.status();
    models.push_back(*std::move(model));
  }
  for (const CorrelatedBurstSpec& s : spec.bursts) {
    auto model = CorrelatedBurstFault::Create(s);
    if (!model.ok()) return model.status();
    models.push_back(*std::move(model));
  }
  for (const DiskFailureSpec& s : spec.disk_failures) {
    auto model = DiskFailureFault::Create(s);
    if (!model.ok()) return model.status();
    models.push_back(*std::move(model));
  }
  return std::unique_ptr<FaultInjector>(
      new FaultInjector(std::move(models), seed, metrics, metric_prefix));
}

void FaultInjector::BeginRound(int num_requests) {
  ++rounds_begun_;
  for (Slot& slot : slots_) {
    slot.model->BeginRound(num_requests, &slot.rng);
  }
  if (rounds_active_ != nullptr && any_active()) {
    rounds_active_->Increment();
  }
  if (disk_failed_rounds_ != nullptr && disk_failed()) {
    disk_failed_rounds_->Increment();
  }
}

double FaultInjector::DelayFor(const RequestFaultContext& context) {
  double delay = 0.0;
  for (Slot& slot : slots_) {
    delay += slot.model->DelayFor(context, &slot.rng);
  }
  if (delay > 0.0) {
    if (delays_injected_ != nullptr) delays_injected_->Increment();
    if (delay_s_ != nullptr) delay_s_->Record(delay);
  }
  return delay;
}

double FaultInjector::RateMultiplier(int zone) const {
  double multiplier = 1.0;
  for (const Slot& slot : slots_) {
    multiplier *= slot.model->RateMultiplier(zone);
  }
  ZS_CHECK_GT(multiplier, 0.0);
  return multiplier;
}

bool FaultInjector::disk_failed() const {
  for (const Slot& slot : slots_) {
    if (slot.model->disk_failed()) return true;
  }
  return false;
}

bool FaultInjector::any_active() const {
  for (const Slot& slot : slots_) {
    if (slot.model->active()) return true;
  }
  return false;
}

FaultInjectorState FaultInjector::ExportState() const {
  FaultInjectorState state;
  state.model_names.reserve(slots_.size());
  state.model_states.reserve(slots_.size());
  state.rng_states.reserve(slots_.size());
  for (const Slot& slot : slots_) {
    state.model_names.emplace_back(slot.model->name());
    state.model_states.emplace_back();
    slot.model->ExportState(&state.model_states.back());
    state.rng_states.push_back(slot.rng.SaveState());
  }
  state.rounds_begun = rounds_begun_;
  return state;
}

common::Status FaultInjector::ImportState(const FaultInjectorState& state) {
  if (state.model_names.size() != slots_.size() ||
      state.model_states.size() != slots_.size() ||
      state.rng_states.size() != slots_.size()) {
    return common::Status::InvalidArgument(
        "fault injector state describes " +
        std::to_string(state.model_names.size()) + " models, injector has " +
        std::to_string(slots_.size()));
  }
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (state.model_names[i] != slots_[i].model->name()) {
      return common::Status::InvalidArgument(
          "fault injector state model " + std::to_string(i) + " is '" +
          state.model_names[i] + "', injector has '" +
          slots_[i].model->name() + "' (spec mismatch)");
    }
  }
  // Parse the RNG states into scratch copies first: a malformed RNG
  // string is the only per-slot failure that cannot be detected before
  // its model has already been touched.
  std::vector<numeric::Rng> rngs;
  rngs.reserve(slots_.size());
  for (size_t i = 0; i < slots_.size(); ++i) {
    rngs.emplace_back(0);
    auto status = rngs.back().LoadState(state.rng_states[i]);
    if (!status.ok()) return status;
  }
  for (size_t i = 0; i < slots_.size(); ++i) {
    auto status = slots_[i].model->ImportState(state.model_states[i]);
    if (!status.ok()) return status;
    slots_[i].rng = rngs[i];
  }
  rounds_begun_ = state.rounds_begun;
  return common::Status::Ok();
}

}  // namespace zonestream::fault
