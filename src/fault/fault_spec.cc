#include "fault/fault_spec.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <map>
#include <vector>

namespace zonestream::fault {

namespace {

std::vector<std::string> Split(const std::string& text, char separator) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (start <= text.size()) {
    const size_t end = text.find(separator, start);
    if (end == std::string::npos) {
      parts.push_back(text.substr(start));
      break;
    }
    parts.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return parts;
}

// Key=value list of one clause, with duplicate and syntax checking.
common::StatusOr<std::map<std::string, std::string>> ParsePairs(
    const std::string& clause, const std::string& body) {
  std::map<std::string, std::string> pairs;
  if (body.empty()) return pairs;
  for (const std::string& item : Split(body, ',')) {
    const size_t eq = item.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= item.size()) {
      return common::Status::InvalidArgument(
          "fault spec: expected key=value in '" + clause + "', got '" +
          item + "'");
    }
    const std::string key = item.substr(0, eq);
    if (!pairs.emplace(key, item.substr(eq + 1)).second) {
      return common::Status::InvalidArgument(
          "fault spec: duplicate key '" + key + "' in '" + clause + "'");
    }
  }
  return pairs;
}

// Typed accessors that consume recognized keys, so leftovers can be
// reported as unknown.
common::Status TakeDouble(std::map<std::string, std::string>* pairs,
                          const std::string& key, double* out) {
  auto it = pairs->find(key);
  if (it == pairs->end()) return common::Status::Ok();
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') {
    return common::Status::InvalidArgument("fault spec: bad number for '" +
                                           key + "': '" + it->second + "'");
  }
  // strtod happily parses "inf"/"nan" and silently saturates overflowing
  // literals; none of those are meaningful fault parameters.
  if (!std::isfinite(value) || errno == ERANGE) {
    return common::Status::InvalidArgument(
        "fault spec: value for '" + key + "' must be finite, got '" +
        it->second + "'");
  }
  *out = value;
  pairs->erase(it);
  return common::Status::Ok();
}

// Integer keys are parsed as integers — not through double, whose cast
// back to int64 is undefined for out-of-range values and would silently
// truncate fractions.
common::Status TakeInt64(std::map<std::string, std::string>* pairs,
                         const std::string& key, int64_t* out) {
  auto it = pairs->find(key);
  if (it == pairs->end()) return common::Status::Ok();
  char* end = nullptr;
  errno = 0;
  const long long value = std::strtoll(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') {
    return common::Status::InvalidArgument("fault spec: bad integer for '" +
                                           key + "': '" + it->second + "'");
  }
  if (errno == ERANGE) {
    return common::Status::InvalidArgument(
        "fault spec: integer for '" + key + "' out of range: '" + it->second +
        "'");
  }
  *out = static_cast<int64_t>(value);
  pairs->erase(it);
  return common::Status::Ok();
}

common::Status TakeInt(std::map<std::string, std::string>* pairs,
                       const std::string& key, int* out) {
  // Report against the token before it is consumed by TakeInt64.
  auto it = pairs->find(key);
  const std::string token = it != pairs->end() ? it->second : "";
  int64_t value = *out;
  auto status = TakeInt64(pairs, key, &value);
  if (!status.ok()) return status;
  if (value < std::numeric_limits<int>::min() ||
      value > std::numeric_limits<int>::max()) {
    return common::Status::InvalidArgument(
        "fault spec: integer for '" + key + "' out of range: '" + token +
        "'");
  }
  *out = static_cast<int>(value);
  return common::Status::Ok();
}

common::Status CheckDrained(const std::map<std::string, std::string>& pairs,
                            const std::string& clause) {
  if (pairs.empty()) return common::Status::Ok();
  return common::Status::InvalidArgument("fault spec: unknown key '" +
                                         pairs.begin()->first + "' in '" +
                                         clause + "'");
}

std::string Num(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%g", value);
  return buffer;
}

}  // namespace

common::StatusOr<FaultSpec> ParseFaultSpec(const std::string& text) {
  FaultSpec spec;
  if (text.empty()) return spec;
  for (const std::string& clause : Split(text, ';')) {
    if (clause.empty()) continue;
    const size_t colon = clause.find(':');
    const std::string model = clause.substr(0, colon);
    const std::string body =
        colon == std::string::npos ? "" : clause.substr(colon + 1);
    auto pairs = ParsePairs(clause, body);
    if (!pairs.ok()) return pairs.status();
    common::Status status = common::Status::Ok();
    if (model == "slowdown") {
      MarkovSlowdownSpec s;
      if (status.ok()) status = TakeDouble(&*pairs, "enter", &s.enter_per_round);
      if (status.ok()) status = TakeDouble(&*pairs, "exit", &s.exit_per_round);
      if (status.ok())
        status = TakeDouble(&*pairs, "prob", &s.per_request_probability);
      if (status.ok()) status = TakeDouble(&*pairs, "delay_min", &s.delay_min_s);
      if (status.ok()) status = TakeDouble(&*pairs, "delay_max", &s.delay_max_s);
      if (status.ok()) status = TakeInt64(&*pairs, "from", &s.force_from_round);
      if (status.ok()) status = TakeInt64(&*pairs, "until", &s.force_until_round);
      if (status.ok()) status = CheckDrained(*pairs, clause);
      if (!status.ok()) return status;
      spec.slowdowns.push_back(s);
    } else if (model == "zone_dropout") {
      ZoneDropoutSpec s;
      if (status.ok()) status = TakeDouble(&*pairs, "fail", &s.fail_per_round);
      if (status.ok())
        status = TakeDouble(&*pairs, "recover", &s.recover_per_round);
      if (status.ok()) status = TakeDouble(&*pairs, "rate_factor", &s.rate_factor);
      if (status.ok()) status = CheckDrained(*pairs, clause);
      if (!status.ok()) return status;
      spec.zone_dropouts.push_back(s);
    } else if (model == "burst") {
      CorrelatedBurstSpec s;
      if (status.ok()) status = TakeDouble(&*pairs, "prob", &s.burst_per_round);
      if (status.ok()) status = TakeInt(&*pairs, "len", &s.burst_length);
      if (status.ok()) status = TakeDouble(&*pairs, "delay_min", &s.delay_min_s);
      if (status.ok()) status = TakeDouble(&*pairs, "delay_max", &s.delay_max_s);
      if (status.ok()) status = CheckDrained(*pairs, clause);
      if (!status.ok()) return status;
      spec.bursts.push_back(s);
    } else if (model == "disk_failure") {
      DiskFailureSpec s;
      if (status.ok()) status = TakeDouble(&*pairs, "hazard", &s.fail_per_round);
      if (status.ok()) status = TakeInt64(&*pairs, "at", &s.fail_at_round);
      if (status.ok())
        status = TakeInt64(&*pairs, "repair", &s.repair_after_rounds);
      if (status.ok()) status = CheckDrained(*pairs, clause);
      if (!status.ok()) return status;
      spec.disk_failures.push_back(s);
    } else {
      return common::Status::InvalidArgument(
          "fault spec: unknown model '" + model +
          "' (expected slowdown, zone_dropout, burst, or disk_failure)");
    }
  }
  return spec;
}

std::string FormatFaultSpec(const FaultSpec& spec) {
  std::string out;
  const auto clause = [&out](const std::string& text) {
    if (!out.empty()) out += ';';
    out += text;
  };
  for (const MarkovSlowdownSpec& s : spec.slowdowns) {
    std::string c = "slowdown:enter=" + Num(s.enter_per_round) +
                    ",exit=" + Num(s.exit_per_round) +
                    ",prob=" + Num(s.per_request_probability) +
                    ",delay_min=" + Num(s.delay_min_s) +
                    ",delay_max=" + Num(s.delay_max_s);
    if (s.force_from_round >= 0) {
      c += ",from=" + std::to_string(s.force_from_round) +
           ",until=" + std::to_string(s.force_until_round);
    }
    clause(c);
  }
  for (const ZoneDropoutSpec& s : spec.zone_dropouts) {
    clause("zone_dropout:fail=" + Num(s.fail_per_round) +
           ",recover=" + Num(s.recover_per_round) +
           ",rate_factor=" + Num(s.rate_factor));
  }
  for (const CorrelatedBurstSpec& s : spec.bursts) {
    clause("burst:prob=" + Num(s.burst_per_round) +
           ",len=" + std::to_string(s.burst_length) +
           ",delay_min=" + Num(s.delay_min_s) +
           ",delay_max=" + Num(s.delay_max_s));
  }
  for (const DiskFailureSpec& s : spec.disk_failures) {
    std::string c = "disk_failure:hazard=" + Num(s.fail_per_round);
    if (s.fail_at_round >= 0) c += ",at=" + std::to_string(s.fail_at_round);
    if (s.repair_after_rounds >= 0) {
      c += ",repair=" + std::to_string(s.repair_after_rounds);
    }
    clause(c);
  }
  return out;
}

}  // namespace zonestream::fault
