#include "fault/degradation.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "core/admission.h"
#include "core/service_time_model.h"
#include "core/transfer_models.h"
#include "obs/metrics.h"

namespace zonestream::fault {

namespace {

// Transition log cap; after this the controller keeps counting via the
// metrics but stops appending (a flapping controller must not OOM).
constexpr size_t kMaxEvents = 4096;

}  // namespace

const char* DegradationStateName(DegradationState state) {
  switch (state) {
    case DegradationState::kNormal:
      return "normal";
    case DegradationState::kDegraded:
      return "degraded";
    case DegradationState::kRecovering:
      return "recovering";
  }
  return "unknown";
}

DegradationController::DegradationController(const DegradationPolicy& policy,
                                             obs::Registry* metrics,
                                             const std::string& metric_prefix)
    : policy_(policy) {
  policy_.glitch_rate_bound = std::max(policy_.glitch_rate_bound, 0.0);
  policy_.window_rounds = std::max(policy_.window_rounds, 1);
  policy_.trigger_windows = std::max(policy_.trigger_windows, 1);
  policy_.recovery_windows = std::max(policy_.recovery_windows, 1);
  policy_.recovery_margin =
      std::clamp(policy_.recovery_margin, 0.0, 1.0);
  policy_.min_streams = std::max(policy_.min_streams, 0);
  policy_.max_shed_fraction = std::clamp(policy_.max_shed_fraction, 0.0, 1.0);
  if (metrics != nullptr) {
    state_gauge_ = metrics->GetGauge(metric_prefix + ".state");
    trips_ = metrics->GetCounter(metric_prefix + ".trips");
    shed_streams_ = metrics->GetCounter(metric_prefix + ".shed_streams");
    windows_violated_ =
        metrics->GetCounter(metric_prefix + ".windows_violated");
    state_gauge_->Set(0.0);
  }
}

void DegradationController::Transition(DegradationState to, int shed,
                                       double rate) {
  if (events_.size() < kMaxEvents) {
    events_.push_back(DegradationEvent{rounds_observed_, state_, to, shed,
                                       rate});
  }
  state_ = to;
  if (state_gauge_ != nullptr) {
    state_gauge_->Set(static_cast<double>(static_cast<int>(to)));
  }
}

int DegradationController::ShedTarget(const WindowSummary& window) const {
  int target = -1;
  if (policy_.rearmor) target = policy_.rearmor(window);
  if (target < 0) {
    // Proportional fallback: the measured rate scales roughly with the
    // admitted load near the operating point, so keeping bound/rate of
    // the streams is a first-order fix; the next window corrects the
    // remainder (the §3.3 rate is super-linear in N, so this errs toward
    // keeping too many, which the trigger edge then handles).
    const double rate = std::max(window.glitch_rate, 1e-12);
    target = static_cast<int>(std::floor(window.active_streams *
                                         policy_.glitch_rate_bound / rate));
  }
  const int floor_streams = std::min(policy_.min_streams,
                                     window.active_streams);
  const int max_shed = static_cast<int>(
      std::ceil(window.active_streams * policy_.max_shed_fraction));
  target = std::max(target, window.active_streams - max_shed);
  return std::clamp(target, floor_streams, window.active_streams);
}

DegradationCommand DegradationController::ObserveRound(int active_streams,
                                                       int glitched_streams,
                                                       bool overran) {
  ZS_CHECK_GE(active_streams, 0);
  ZS_CHECK_GE(glitched_streams, 0);
  ++rounds_observed_;
  ++window_rounds_seen_;
  window_stream_rounds_ += active_streams;
  window_glitches_ += glitched_streams;
  if (overran) ++window_overruns_;
  last_active_streams_ = active_streams;

  DegradationCommand command;
  command.admissions_open = state_ != DegradationState::kDegraded;
  if (window_rounds_seen_ < policy_.window_rounds) return command;

  // Window boundary: evaluate and reset the accumulators.
  WindowSummary window;
  window.end_round = rounds_observed_;
  window.rounds = window_rounds_seen_;
  window.glitch_rate =
      window_stream_rounds_ > 0
          ? static_cast<double>(window_glitches_) /
                static_cast<double>(window_stream_rounds_)
          : 0.0;
  window.overrun_rate = static_cast<double>(window_overruns_) /
                        static_cast<double>(window_rounds_seen_);
  window.active_streams = last_active_streams_;
  window_rounds_seen_ = 0;
  window_stream_rounds_ = 0;
  window_glitches_ = 0;
  window_overruns_ = 0;
  command.window_closed = true;

  const bool violating = window.glitch_rate > policy_.glitch_rate_bound;
  const bool clean = window.glitch_rate <=
                     policy_.recovery_margin * policy_.glitch_rate_bound;
  if (violating && windows_violated_ != nullptr) {
    windows_violated_->Increment();
  }

  switch (state_) {
    case DegradationState::kNormal: {
      if (!violating) {
        violating_windows_ = 0;
        break;
      }
      if (++violating_windows_ < policy_.trigger_windows) break;
      // Trip: shed down to the re-armored target and close admissions.
      const int target = ShedTarget(window);
      command.shed_streams = window.active_streams - target;
      violating_windows_ = 0;
      clean_windows_ = 0;
      Transition(DegradationState::kDegraded, command.shed_streams,
                 window.glitch_rate);
      if (trips_ != nullptr) trips_->Increment();
      if (shed_streams_ != nullptr && command.shed_streams > 0) {
        shed_streams_->Increment(command.shed_streams);
      }
      command.admissions_open = false;
      break;
    }
    case DegradationState::kDegraded: {
      if (violating) {
        // Still over the bound a full window after shedding: shed again
        // (each shed is window-spaced, which is the flap guard on the way
        // down).
        clean_windows_ = 0;
        const int target = ShedTarget(window);
        command.shed_streams = window.active_streams - target;
        if (command.shed_streams > 0 && events_.size() < kMaxEvents) {
          events_.push_back(DegradationEvent{
              rounds_observed_, state_, state_, command.shed_streams,
              window.glitch_rate});
        }
        if (shed_streams_ != nullptr && command.shed_streams > 0) {
          shed_streams_->Increment(command.shed_streams);
        }
      } else if (clean) {
        if (++clean_windows_ >= policy_.recovery_windows) {
          clean_windows_ = 0;
          Transition(DegradationState::kRecovering, 0, window.glitch_rate);
        }
      } else {
        clean_windows_ = 0;
      }
      command.admissions_open = state_ != DegradationState::kDegraded;
      break;
    }
    case DegradationState::kRecovering: {
      if (violating) {
        // Relapse: back to degraded immediately — no second trigger
        // debounce on a disk already known to misbehave.
        clean_windows_ = 0;
        const int target = ShedTarget(window);
        command.shed_streams = window.active_streams - target;
        Transition(DegradationState::kDegraded, command.shed_streams,
                   window.glitch_rate);
        if (trips_ != nullptr) trips_->Increment();
        if (shed_streams_ != nullptr && command.shed_streams > 0) {
          shed_streams_->Increment(command.shed_streams);
        }
        command.admissions_open = false;
      } else if (clean && ++clean_windows_ >= policy_.recovery_windows) {
        clean_windows_ = 0;
        Transition(DegradationState::kNormal, 0, window.glitch_rate);
      }
      break;
    }
  }
  return command;
}

DegradationControllerState DegradationController::ExportState() const {
  DegradationControllerState state;
  state.state = state_;
  state.rounds_observed = rounds_observed_;
  state.window_rounds_seen = window_rounds_seen_;
  state.window_stream_rounds = window_stream_rounds_;
  state.window_glitches = window_glitches_;
  state.window_overruns = window_overruns_;
  state.last_active_streams = last_active_streams_;
  state.violating_windows = violating_windows_;
  state.clean_windows = clean_windows_;
  state.events = events_;
  return state;
}

common::Status DegradationController::ImportState(
    const DegradationControllerState& state) {
  const int s = static_cast<int>(state.state);
  if (s < 0 || s > 2) {
    return common::Status::InvalidArgument(
        "degradation state machine position out of range");
  }
  if (state.rounds_observed < 0 || state.window_rounds_seen < 0 ||
      state.window_stream_rounds < 0 || state.window_glitches < 0 ||
      state.window_overruns < 0 || state.violating_windows < 0 ||
      state.clean_windows < 0 ||
      state.window_rounds_seen > state.rounds_observed) {
    return common::Status::InvalidArgument(
        "degradation controller counters must be non-negative with the "
        "open window no longer than the observed history");
  }
  state_ = state.state;
  rounds_observed_ = state.rounds_observed;
  window_rounds_seen_ = state.window_rounds_seen;
  window_stream_rounds_ = state.window_stream_rounds;
  window_glitches_ = state.window_glitches;
  window_overruns_ = state.window_overruns;
  last_active_streams_ = state.last_active_streams;
  violating_windows_ = state.violating_windows;
  clean_windows_ = state.clean_windows;
  events_ = state.events;
  if (state_gauge_ != nullptr) {
    state_gauge_->Set(static_cast<double>(static_cast<int>(state_)));
  }
  return common::Status::Ok();
}

common::StatusOr<int> RearmoredStreamLimit(
    const disk::DiskGeometry& geometry, const disk::SeekTimeModel& seek,
    double fragment_mean_bytes, double fragment_variance_bytes2,
    double extra_delay_mean_s, double extra_delay_second_moment_s2,
    double round_length_s, int m, int g, double epsilon) {
  if (extra_delay_mean_s < 0.0 || extra_delay_second_moment_s2 < 0.0) {
    return common::Status::InvalidArgument(
        "extra-delay moments must be non-negative");
  }
  const double extra_variance =
      extra_delay_second_moment_s2 - extra_delay_mean_s * extra_delay_mean_s;
  if (extra_variance < 0.0) {
    return common::Status::InvalidArgument(
        "extra-delay second moment below the squared mean");
  }
  auto clean_transfer = core::GammaTransferModel::ForMultiZone(
      geometry, fragment_mean_bytes, fragment_variance_bytes2);
  if (!clean_transfer.ok()) return clean_transfer.status();
  auto inflated = core::ServiceTimeModel::FromTransferMoments(
      seek, geometry.cylinders(), geometry.rotation_time(),
      clean_transfer->mean() + extra_delay_mean_s,
      clean_transfer->variance() + extra_variance);
  if (!inflated.ok()) return inflated.status();
  return core::MaxStreamsByGlitchRate(*inflated, round_length_s, m, g,
                                      epsilon);
}

}  // namespace zonestream::fault
