// Five-way admission-bound comparison harness (ROADMAP item 2).
//
// Tables N_max side by side from every engine the repo carries:
//
//   WC      deterministic worst case (eq. 4.1, baselines.h)
//   Chern   the paper's Chernoff bound (admission.h / late_bound_scan.h)
//   Saddle  Lugannani-Rice saddlepoint estimate (saddlepoint.h)
//   SNC     stochastic network calculus engine (snc.h)
//   MC      Monte Carlo — replicated naive simulation for moderate
//           tolerances, importance-sampled deep tails below
//           BoundComparisonOptions::is_tolerance_threshold
//
// across the preset disks and a tolerance grid, plus analytic-only rows
// for heterogeneous CBR/VBR mixes (MultiClassServiceModel vs. the mixed
// SNC bound). Shared by bench/bench_bound_comparison.cc and the
// `zonestream_ctl compare` subcommand; the bench output is pinned as a
// golden in ctest (bench/golden/bound_comparison.txt).
//
// Determinism contract: every MC estimate goes through the replicated
// estimators with a fixed base seed, so the table is bit-identical at any
// thread count; all other columns are closed-form. docs/BOUNDS.md walks
// through a rendered table.
#ifndef ZONESTREAM_SIM_BOUND_COMPARISON_H_
#define ZONESTREAM_SIM_BOUND_COMPARISON_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/seek_bound_bachmat.h"
#include "disk/disk_geometry.h"
#include "disk/seek_model.h"

namespace zonestream::sim {

// One disk under comparison.
struct ComparisonDisk {
  std::string name;
  disk::DiskGeometry geometry;
  disk::SeekTimeModel seek;
};

// The four presets of disk/presets.h, in the order the golden pins.
std::vector<ComparisonDisk> ComparisonPresetDisks();

struct BoundComparisonOptions {
  // Table 1 workload statistics by default.
  double mean_size_bytes = 200e3;
  double variance_size_bytes2 = 100e3 * 100e3;
  double round_length_s = 1.0;
  std::vector<double> tolerances = {1e-2, 1e-3, 1e-4};
  core::SeekBoundKind seek_bound = core::SeekBoundKind::kEquidistant;
  int n_cap = 4096;

  // Monte Carlo column. The MC scan starts at the Chernoff N_max (where
  // the bound certifies p_late <= delta) and walks upward while the
  // estimate stays within delta, up to mc_scan_margin extra streams —
  // the empirical headroom the bounds leave on the table.
  bool run_monte_carlo = true;
  int mc_replications = 8;
  int mc_rounds_per_replication = 4096;   // naive estimator
  int is_rounds_per_replication = 1024;   // importance-sampled estimator
  // Tolerances below this use the importance-sampled estimator (naive MC
  // would need >> 1/delta rounds per decision there).
  double is_tolerance_threshold = 3e-3;
  int mc_scan_margin = 12;
  uint64_t seed = 42;
};

// One (disk, tolerance) row of the comparison table.
struct BoundComparisonCell {
  std::string disk;
  double tolerance = 0.0;
  int worst_case = 0;
  int chernoff = 0;
  int saddlepoint = 0;
  int snc = 0;
  int monte_carlo = -1;  // -1: MC column not run
  bool mc_importance_sampled = false;
};

// Evaluates one row. Fails only if a simulator/model refuses the
// configuration.
common::StatusOr<BoundComparisonCell> CompareBoundsCell(
    const ComparisonDisk& disk, double tolerance,
    const BoundComparisonOptions& options);

// Every preset disk x every tolerance, preset-major.
common::StatusOr<std::vector<BoundComparisonCell>> RunBoundComparison(
    const BoundComparisonOptions& options);

// Renders the cells as an aligned table (integer N_max cells only, so
// the rendering is golden-stable).
std::string RenderBoundComparison(const std::vector<BoundComparisonCell>& cells,
                                  const BoundComparisonOptions& options);

// Analytic-only comparison row for a heterogeneous CBR/VBR mix on the
// Table 1 disk: the generalized Chernoff bound vs. the mixed SNC bound,
// as the admissible count of VBR streams on top of `cbr_streams` CBR
// streams.
struct MixComparisonRow {
  std::string mix;
  double tolerance = 0.0;
  int chernoff_vbr_max = 0;
  int snc_vbr_max = 0;
};

// `cbr_streams` CBR streams (64 KB fixed-size fragments) plus as many
// Table 1 VBR streams as each engine admits.
common::StatusOr<std::vector<MixComparisonRow>> RunMixComparison(
    int cbr_streams, const BoundComparisonOptions& options);

std::string RenderMixComparison(const std::vector<MixComparisonRow>& rows);

}  // namespace zonestream::sim

#endif  // ZONESTREAM_SIM_BOUND_COMPARISON_H_
