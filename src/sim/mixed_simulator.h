// Detailed simulation of a mixed continuous + discrete workload on one
// disk (validates core::MixedWorkloadModel; §6 outlook / [NMW97]).
//
// Each round: the N continuous requests are served in one SCAN sweep (as
// in RoundSimulator); queued discrete requests are then served
// work-conserving in the leftover time until the round ends. Discrete
// requests arrive Poisson and queue FCFS; a discrete request whose
// service would cross the round boundary waits for the next round's
// leftover window.
#ifndef ZONESTREAM_SIM_MIXED_SIMULATOR_H_
#define ZONESTREAM_SIM_MIXED_SIMULATOR_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "common/status.h"
#include "disk/disk_geometry.h"
#include "disk/seek_model.h"
#include "numeric/random.h"
#include "numeric/statistics.h"
#include "workload/size_distribution.h"

namespace zonestream::obs {
class Registry;
class RoundTraceRecorder;
}  // namespace zonestream::obs

namespace zonestream::sim {

// Configuration of the mixed simulation.
struct MixedSimulatorConfig {
  double round_length_s = 1.0;
  double discrete_arrival_rate_hz = 0.0;  // Poisson arrivals per second
  uint64_t seed = 42;

  // Use the batched structure-of-arrays kernel for the continuous sweep
  // (alias-table zone draws, whole-round uniform/Gamma batches, reused
  // scratch — see SimulatorConfig::batched_kernel). The discrete leftover
  // queue is data-dependent and always runs scalar. false preserves the
  // pre-batching bit-exact per-seed sample paths.
  bool batched_kernel = true;

  // Optional observability hooks (not owned; null = disabled). Metrics
  // land under the "mixed." prefix; each round emits one trace event for
  // the continuous sweep, with the discrete-side tallies riding in the
  // leftover fields (see docs/OBSERVABILITY.md).
  obs::Registry* metrics = nullptr;
  obs::RoundTraceRecorder* trace = nullptr;
  int trace_source_id = 0;
};

// Aggregate results of a mixed simulation run.
struct MixedRunResult {
  int64_t rounds = 0;
  // Continuous side.
  int64_t continuous_requests = 0;
  int64_t continuous_glitches = 0;
  double continuous_glitch_rate = 0.0;
  // Discrete side.
  int64_t discrete_arrivals = 0;
  int64_t discrete_completed = 0;
  double mean_discrete_per_round = 0.0;
  double mean_response_time_s = 0.0;
  double p95_response_time_s = 0.0;
  int64_t max_queue_depth = 0;
  double mean_leftover_s = 0.0;  // leftover time per round after continuous
};

// Single-disk mixed-workload simulator. Not thread-safe.
class MixedRoundSimulator {
 public:
  static common::StatusOr<MixedRoundSimulator> Create(
      const disk::DiskGeometry& geometry, const disk::SeekTimeModel& seek,
      int num_continuous,
      std::shared_ptr<const workload::SizeDistribution> continuous_sizes,
      std::shared_ptr<const workload::SizeDistribution> discrete_sizes,
      const MixedSimulatorConfig& config);

  // Simulates `rounds` rounds and returns the aggregates.
  MixedRunResult Run(int rounds);

 private:
  MixedRoundSimulator(
      const disk::DiskGeometry& geometry, const disk::SeekTimeModel& seek,
      int num_continuous,
      std::shared_ptr<const workload::SizeDistribution> continuous_sizes,
      std::shared_ptr<const workload::SizeDistribution> discrete_sizes,
      const MixedSimulatorConfig& config);

  struct DiscreteRequest {
    double arrival_time_s = 0.0;
    double bytes = 0.0;
  };

  // Result of one continuous SCAN sweep; zone tallies for the trace are
  // left in scratch_.zone_hits.
  struct ContinuousSweep {
    double total_service_s = 0.0;
    int glitches = 0;
    int arm_after = 0;  // arm position per the glitch-aware policy
    double seek_sum = 0.0;
    double rotation_sum = 0.0;
    double transfer_sum = 0.0;
  };

  // Reused per-round buffers for the batched continuous sweep.
  struct RoundScratch {
    std::vector<double> u_zone;
    std::vector<double> u_cylinder;
    std::vector<int> cylinder;
    std::vector<int> zone;
    std::vector<double> rate_bps;
    std::vector<double> bytes;
    std::vector<double> rotation_s;
    std::vector<int> order;
    // (cylinder, index) SCAN sort keys; see RoundSimulator::RoundScratch.
    std::vector<uint64_t> sort_key;
    std::vector<int32_t> zone_hits;
  };

  // Runs the continuous sweep with the kernel selected by
  // config_.batched_kernel; advances rng_ and flips ascending_.
  ContinuousSweep RunContinuousSweep();
  ContinuousSweep RunContinuousSweepScalar();
  ContinuousSweep RunContinuousSweepBatched();

  disk::DiskGeometry geometry_;
  disk::SeekTimeModel seek_;
  int num_continuous_;
  std::shared_ptr<const workload::SizeDistribution> continuous_sizes_;
  std::shared_ptr<const workload::SizeDistribution> discrete_sizes_;
  MixedSimulatorConfig config_;
  numeric::Rng rng_;
  int arm_cylinder_ = 0;
  bool ascending_ = true;
  std::deque<DiscreteRequest> queue_;
  double next_arrival_s_ = 0.0;
  int64_t rounds_run_ = 0;  // across Run() calls; indexes trace events
  RoundScratch scratch_;
};

}  // namespace zonestream::sim

#endif  // ZONESTREAM_SIM_MIXED_SIMULATOR_H_
