#include "sim/mixed_simulator.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"
#include "obs/metrics.h"
#include "obs/round_trace.h"
#include "sched/scan.h"

namespace zonestream::sim {

MixedRoundSimulator::MixedRoundSimulator(
    const disk::DiskGeometry& geometry, const disk::SeekTimeModel& seek,
    int num_continuous,
    std::shared_ptr<const workload::SizeDistribution> continuous_sizes,
    std::shared_ptr<const workload::SizeDistribution> discrete_sizes,
    const MixedSimulatorConfig& config)
    : geometry_(geometry),
      seek_(seek),
      num_continuous_(num_continuous),
      continuous_sizes_(std::move(continuous_sizes)),
      discrete_sizes_(std::move(discrete_sizes)),
      config_(config),
      rng_(config.seed) {}

common::StatusOr<MixedRoundSimulator> MixedRoundSimulator::Create(
    const disk::DiskGeometry& geometry, const disk::SeekTimeModel& seek,
    int num_continuous,
    std::shared_ptr<const workload::SizeDistribution> continuous_sizes,
    std::shared_ptr<const workload::SizeDistribution> discrete_sizes,
    const MixedSimulatorConfig& config) {
  if (num_continuous < 0) {
    return common::Status::InvalidArgument("num_continuous must be >= 0");
  }
  if (continuous_sizes == nullptr || discrete_sizes == nullptr) {
    return common::Status::InvalidArgument("size distributions are null");
  }
  if (config.round_length_s <= 0.0) {
    return common::Status::InvalidArgument("round length must be positive");
  }
  if (config.discrete_arrival_rate_hz < 0.0) {
    return common::Status::InvalidArgument(
        "arrival rate must be non-negative");
  }
  return MixedRoundSimulator(geometry, seek, num_continuous,
                             std::move(continuous_sizes),
                             std::move(discrete_sizes), config);
}

MixedRunResult MixedRoundSimulator::Run(int rounds) {
  ZS_CHECK_GT(rounds, 0);
  MixedRunResult result;
  result.rounds = rounds;

  numeric::RunningStats response_times;
  std::vector<double> response_samples;
  numeric::RunningStats leftover;
  int64_t discrete_served_total = 0;

  // Pre-draw the first arrival.
  if (config_.discrete_arrival_rate_hz > 0.0 && next_arrival_s_ == 0.0) {
    next_arrival_s_ = rng_.Exponential(1.0 / config_.discrete_arrival_rate_hz);
  }

  for (int r = 0; r < rounds; ++r) {
    const double round_start = r * config_.round_length_s;
    const double round_end = round_start + config_.round_length_s;

    // Discrete arrivals during this round join the queue (they become
    // eligible at their arrival time; we approximate eligibility at the
    // start of the leftover window, which is when service can begin
    // anyway for arrivals earlier in the round).
    if (config_.discrete_arrival_rate_hz > 0.0) {
      while (next_arrival_s_ < round_end) {
        DiscreteRequest request;
        request.arrival_time_s = next_arrival_s_;
        request.bytes = discrete_sizes_->Sample(&rng_);
        queue_.push_back(request);
        next_arrival_s_ +=
            rng_.Exponential(1.0 / config_.discrete_arrival_rate_hz);
      }
    }
    result.max_queue_depth = std::max<int64_t>(
        result.max_queue_depth, static_cast<int64_t>(queue_.size()));

    // Continuous batch: one SCAN sweep.
    std::vector<sched::DiskRequest> batch;
    batch.reserve(num_continuous_);
    for (int s = 0; s < num_continuous_; ++s) {
      const disk::DiskPosition position =
          geometry_.SampleUniformPosition(&rng_);
      sched::DiskRequest request;
      request.stream_id = s;
      request.cylinder = position.cylinder;
      request.zone = position.zone;
      request.transfer_rate_bps = position.transfer_rate_bps;
      request.bytes = continuous_sizes_->Sample(&rng_);
      request.rotational_latency_s =
          rng_.Uniform(0.0, geometry_.rotation_time());
      batch.push_back(request);
    }
    sched::SortForScan(&batch, ascending_
                                   ? sched::SweepDirection::kAscending
                                   : sched::SweepDirection::kDescending);
    const sched::RoundTiming timing =
        sched::ExecuteScanRound(seek_, batch, arm_cylinder_);
    result.continuous_requests += num_continuous_;
    int arm = arm_cylinder_;
    int round_glitches = 0;
    for (size_t i = 0; i < timing.per_request.size(); ++i) {
      if (timing.per_request[i].completion_s > config_.round_length_s) {
        ++round_glitches;
      } else {
        arm = batch[i].cylinder;
      }
    }
    result.continuous_glitches += round_glitches;
    if (!timing.per_request.empty() &&
        timing.total_service_time_s <= config_.round_length_s) {
      arm = timing.final_arm_cylinder;
    }
    ascending_ = !ascending_;

    // Leftover window: serve queued discrete requests FCFS until the
    // round boundary. Each pays an explicit seek from the current arm
    // position, a rotational latency and a zone-rate transfer.
    double clock = std::fmin(timing.total_service_time_s,
                             config_.round_length_s);
    leftover.Add(std::fmax(0.0, config_.round_length_s - clock));
    int64_t served_this_round = 0;
    while (!queue_.empty()) {
      const DiscreteRequest& request = queue_.front();
      // Only requests that have already arrived can be served; arrivals
      // later in the wall-clock round wait for the next window if the
      // disk reaches them "before" their arrival offset.
      const double earliest_start =
          std::fmax(clock, request.arrival_time_s - round_start);
      if (earliest_start >= config_.round_length_s) break;
      const disk::DiskPosition position =
          geometry_.SampleUniformPosition(&rng_);
      const double service =
          seek_.SeekTime(std::abs(position.cylinder - arm)) +
          rng_.Uniform(0.0, geometry_.rotation_time()) +
          request.bytes / position.transfer_rate_bps;
      if (earliest_start + service > config_.round_length_s) break;
      clock = earliest_start + service;
      arm = position.cylinder;
      const double completion_wallclock = round_start + clock;
      const double response = completion_wallclock - request.arrival_time_s;
      response_times.Add(response);
      response_samples.push_back(response);
      if (config_.metrics != nullptr) {
        config_.metrics->GetHistogram("mixed.response_time_s")
            ->Record(response);
      }
      queue_.pop_front();
      ++served_this_round;
    }
    discrete_served_total += served_this_round;
    arm_cylinder_ = arm;

    // Observability: one trace event per round for the continuous sweep
    // plus the discrete-side tallies of its leftover window.
    if (config_.trace != nullptr || config_.metrics != nullptr) {
      double seek_sum = 0.0;
      double rotation_sum = 0.0;
      double transfer_sum = 0.0;
      for (const sched::RequestTiming& rt : timing.per_request) {
        seek_sum += rt.seek_s;
        rotation_sum += rt.rotation_s;
        transfer_sum += rt.transfer_s;
      }
      const double leftover_s =
          std::fmax(0.0, config_.round_length_s - timing.total_service_time_s);
      if (config_.trace != nullptr) {
        obs::RoundTraceEvent event;
        event.round = rounds_run_;
        event.source_id = config_.trace_source_id;
        event.num_requests = num_continuous_;
        event.service_time_s = timing.total_service_time_s;
        event.seek_s = seek_sum;
        event.rotation_s = rotation_sum;
        event.transfer_s = transfer_sum;
        event.glitches = round_glitches;
        event.overran =
            timing.total_service_time_s > config_.round_length_s;
        event.leftover_s = leftover_s;
        event.zone_hits.assign(geometry_.num_zones(), 0);
        for (const sched::DiskRequest& request : batch) {
          ++event.zone_hits[request.zone];
        }
        config_.trace->Record(std::move(event));
      }
      if (config_.metrics != nullptr) {
        obs::Registry* registry = config_.metrics;
        registry->GetCounter("mixed.rounds")->Increment();
        registry->GetCounter("mixed.continuous_requests")
            ->Increment(num_continuous_);
        registry->GetCounter("mixed.continuous_glitches")
            ->Increment(round_glitches);
        registry->GetCounter("mixed.discrete_completed")
            ->Increment(served_this_round);
        registry->GetHistogram("mixed.round.continuous_service_s")
            ->Record(timing.total_service_time_s);
        registry->GetHistogram("mixed.round.leftover_s")->Record(leftover_s);
        registry->GetGauge("mixed.queue_depth")
            ->Set(static_cast<double>(queue_.size()));
      }
    }
    ++rounds_run_;
  }

  result.continuous_glitch_rate =
      result.continuous_requests > 0
          ? static_cast<double>(result.continuous_glitches) /
                result.continuous_requests
          : 0.0;
  result.discrete_completed = discrete_served_total;
  result.discrete_arrivals =
      discrete_served_total + static_cast<int64_t>(queue_.size());
  result.mean_discrete_per_round =
      static_cast<double>(discrete_served_total) / rounds;
  result.mean_response_time_s =
      response_times.count() > 0 ? response_times.mean() : 0.0;
  result.p95_response_time_s =
      response_samples.empty()
          ? 0.0
          : numeric::Percentile(std::move(response_samples), 0.95);
  result.mean_leftover_s = leftover.count() > 0 ? leftover.mean() : 0.0;
  return result;
}

}  // namespace zonestream::sim
