#include "sim/mixed_simulator.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <vector>

#include "common/check.h"
#include "obs/metrics.h"
#include "obs/round_trace.h"
#include "sched/scan.h"

namespace zonestream::sim {

MixedRoundSimulator::MixedRoundSimulator(
    const disk::DiskGeometry& geometry, const disk::SeekTimeModel& seek,
    int num_continuous,
    std::shared_ptr<const workload::SizeDistribution> continuous_sizes,
    std::shared_ptr<const workload::SizeDistribution> discrete_sizes,
    const MixedSimulatorConfig& config)
    : geometry_(geometry),
      seek_(seek),
      num_continuous_(num_continuous),
      continuous_sizes_(std::move(continuous_sizes)),
      discrete_sizes_(std::move(discrete_sizes)),
      config_(config),
      rng_(config.seed) {
  const size_t n = static_cast<size_t>(num_continuous_);
  scratch_.u_zone.resize(n);
  scratch_.u_cylinder.resize(n);
  scratch_.cylinder.resize(n);
  scratch_.zone.resize(n);
  scratch_.rate_bps.resize(n);
  scratch_.bytes.resize(n);
  scratch_.rotation_s.resize(n);
  scratch_.order.resize(n);
  scratch_.sort_key.resize(n);
  scratch_.zone_hits.resize(geometry_.num_zones());
}

common::StatusOr<MixedRoundSimulator> MixedRoundSimulator::Create(
    const disk::DiskGeometry& geometry, const disk::SeekTimeModel& seek,
    int num_continuous,
    std::shared_ptr<const workload::SizeDistribution> continuous_sizes,
    std::shared_ptr<const workload::SizeDistribution> discrete_sizes,
    const MixedSimulatorConfig& config) {
  if (num_continuous < 0) {
    return common::Status::InvalidArgument("num_continuous must be >= 0");
  }
  if (continuous_sizes == nullptr || discrete_sizes == nullptr) {
    return common::Status::InvalidArgument("size distributions are null");
  }
  if (config.round_length_s <= 0.0) {
    return common::Status::InvalidArgument("round length must be positive");
  }
  if (config.discrete_arrival_rate_hz < 0.0) {
    return common::Status::InvalidArgument(
        "arrival rate must be non-negative");
  }
  return MixedRoundSimulator(geometry, seek, num_continuous,
                             std::move(continuous_sizes),
                             std::move(discrete_sizes), config);
}

MixedRunResult MixedRoundSimulator::Run(int rounds) {
  ZS_CHECK_GT(rounds, 0);
  MixedRunResult result;
  result.rounds = rounds;

  numeric::RunningStats response_times;
  std::vector<double> response_samples;
  numeric::RunningStats leftover;
  int64_t discrete_served_total = 0;

  // Pre-draw the first arrival.
  if (config_.discrete_arrival_rate_hz > 0.0 && next_arrival_s_ == 0.0) {
    next_arrival_s_ = rng_.Exponential(1.0 / config_.discrete_arrival_rate_hz);
  }

  for (int r = 0; r < rounds; ++r) {
    const double round_start = r * config_.round_length_s;
    const double round_end = round_start + config_.round_length_s;

    // Discrete arrivals during this round join the queue (they become
    // eligible at their arrival time; we approximate eligibility at the
    // start of the leftover window, which is when service can begin
    // anyway for arrivals earlier in the round).
    if (config_.discrete_arrival_rate_hz > 0.0) {
      while (next_arrival_s_ < round_end) {
        DiscreteRequest request;
        request.arrival_time_s = next_arrival_s_;
        request.bytes = discrete_sizes_->Sample(&rng_);
        queue_.push_back(request);
        next_arrival_s_ +=
            rng_.Exponential(1.0 / config_.discrete_arrival_rate_hz);
      }
    }
    result.max_queue_depth = std::max<int64_t>(
        result.max_queue_depth, static_cast<int64_t>(queue_.size()));

    // Continuous batch: one SCAN sweep (batched or scalar kernel).
    const ContinuousSweep sweep = RunContinuousSweep();
    result.continuous_requests += num_continuous_;
    result.continuous_glitches += sweep.glitches;
    int arm = sweep.arm_after;

    // Leftover window: serve queued discrete requests FCFS until the
    // round boundary. Each pays an explicit seek from the current arm
    // position, a rotational latency and a zone-rate transfer.
    double clock = std::fmin(sweep.total_service_s, config_.round_length_s);
    leftover.Add(std::fmax(0.0, config_.round_length_s - clock));
    int64_t served_this_round = 0;
    while (!queue_.empty()) {
      const DiscreteRequest& request = queue_.front();
      // Only requests that have already arrived can be served; arrivals
      // later in the wall-clock round wait for the next window if the
      // disk reaches them "before" their arrival offset.
      const double earliest_start =
          std::fmax(clock, request.arrival_time_s - round_start);
      if (earliest_start >= config_.round_length_s) break;
      const disk::DiskPosition position =
          geometry_.SampleUniformPosition(&rng_);
      const double service =
          seek_.SeekTime(std::abs(position.cylinder - arm)) +
          rng_.Uniform(0.0, geometry_.rotation_time()) +
          request.bytes / position.transfer_rate_bps;
      if (earliest_start + service > config_.round_length_s) break;
      clock = earliest_start + service;
      arm = position.cylinder;
      const double completion_wallclock = round_start + clock;
      const double response = completion_wallclock - request.arrival_time_s;
      response_times.Add(response);
      response_samples.push_back(response);
      if (config_.metrics != nullptr) {
        config_.metrics->GetHistogram("mixed.response_time_s")
            ->Record(response);
      }
      queue_.pop_front();
      ++served_this_round;
    }
    discrete_served_total += served_this_round;
    arm_cylinder_ = arm;

    // Observability: one trace event per round for the continuous sweep
    // plus the discrete-side tallies of its leftover window. Zone tallies
    // were left in scratch_.zone_hits by the sweep.
    if (config_.trace != nullptr || config_.metrics != nullptr) {
      const double leftover_s =
          std::fmax(0.0, config_.round_length_s - sweep.total_service_s);
      if (config_.trace != nullptr) {
        obs::RoundTraceEvent event;
        event.round = rounds_run_;
        event.source_id = config_.trace_source_id;
        event.num_requests = num_continuous_;
        event.service_time_s = sweep.total_service_s;
        event.seek_s = sweep.seek_sum;
        event.rotation_s = sweep.rotation_sum;
        event.transfer_s = sweep.transfer_sum;
        event.glitches = sweep.glitches;
        event.overran = sweep.total_service_s > config_.round_length_s;
        event.leftover_s = leftover_s;
        event.zone_hits.assign(scratch_.zone_hits.begin(),
                               scratch_.zone_hits.end());
        config_.trace->Record(std::move(event));
      }
      if (config_.metrics != nullptr) {
        obs::Registry* registry = config_.metrics;
        registry->GetCounter("mixed.rounds")->Increment();
        registry->GetCounter("mixed.continuous_requests")
            ->Increment(num_continuous_);
        registry->GetCounter("mixed.continuous_glitches")
            ->Increment(sweep.glitches);
        registry->GetCounter("mixed.discrete_completed")
            ->Increment(served_this_round);
        registry->GetHistogram("mixed.round.continuous_service_s")
            ->Record(sweep.total_service_s);
        registry->GetHistogram("mixed.round.leftover_s")->Record(leftover_s);
        registry->GetGauge("mixed.queue_depth")
            ->Set(static_cast<double>(queue_.size()));
      }
    }
    ++rounds_run_;
  }

  result.continuous_glitch_rate =
      result.continuous_requests > 0
          ? static_cast<double>(result.continuous_glitches) /
                result.continuous_requests
          : 0.0;
  result.discrete_completed = discrete_served_total;
  result.discrete_arrivals =
      discrete_served_total + static_cast<int64_t>(queue_.size());
  result.mean_discrete_per_round =
      static_cast<double>(discrete_served_total) / rounds;
  result.mean_response_time_s =
      response_times.count() > 0 ? response_times.mean() : 0.0;
  result.p95_response_time_s =
      response_samples.empty()
          ? 0.0
          : numeric::Percentile(std::move(response_samples), 0.95);
  result.mean_leftover_s = leftover.count() > 0 ? leftover.mean() : 0.0;
  return result;
}

MixedRoundSimulator::ContinuousSweep MixedRoundSimulator::RunContinuousSweep() {
  return config_.batched_kernel ? RunContinuousSweepBatched()
                                : RunContinuousSweepScalar();
}

MixedRoundSimulator::ContinuousSweep
MixedRoundSimulator::RunContinuousSweepScalar() {
  std::vector<sched::DiskRequest> batch;
  batch.reserve(num_continuous_);
  for (int s = 0; s < num_continuous_; ++s) {
    const disk::DiskPosition position = geometry_.SampleUniformPosition(&rng_);
    sched::DiskRequest request;
    request.stream_id = s;
    request.cylinder = position.cylinder;
    request.zone = position.zone;
    request.transfer_rate_bps = position.transfer_rate_bps;
    request.bytes = continuous_sizes_->Sample(&rng_);
    request.rotational_latency_s = rng_.Uniform(0.0, geometry_.rotation_time());
    batch.push_back(request);
  }
  sched::SortForScan(&batch, ascending_ ? sched::SweepDirection::kAscending
                                        : sched::SweepDirection::kDescending);
  const sched::RoundTiming timing =
      sched::ExecuteScanRound(seek_, batch, arm_cylinder_);

  ContinuousSweep sweep;
  sweep.total_service_s = timing.total_service_time_s;
  int arm = arm_cylinder_;
  for (size_t i = 0; i < timing.per_request.size(); ++i) {
    if (timing.per_request[i].completion_s > config_.round_length_s) {
      ++sweep.glitches;
    } else {
      arm = batch[i].cylinder;
    }
    sweep.seek_sum += timing.per_request[i].seek_s;
    sweep.rotation_sum += timing.per_request[i].rotation_s;
    sweep.transfer_sum += timing.per_request[i].transfer_s;
  }
  if (!timing.per_request.empty() &&
      timing.total_service_time_s <= config_.round_length_s) {
    arm = timing.final_arm_cylinder;
  }
  sweep.arm_after = arm;
  ascending_ = !ascending_;

  std::fill(scratch_.zone_hits.begin(), scratch_.zone_hits.end(), 0);
  for (const sched::DiskRequest& request : batch) {
    ++scratch_.zone_hits[request.zone];
  }
  return sweep;
}

MixedRoundSimulator::ContinuousSweep
MixedRoundSimulator::RunContinuousSweepBatched() {
  const int n = num_continuous_;
  RoundScratch& s = scratch_;

  // Whole-round batches: zone + cylinder uniforms (zones through the
  // geometry's alias table), then sizes, then rotational latencies — same
  // draw structure as RoundSimulator's batched kernel.
  rng_.FillUniform01(s.u_zone.data(), n);
  rng_.FillUniform01(s.u_cylinder.data(), n);
  for (int i = 0; i < n; ++i) {
    const int z = geometry_.SampleZoneAlias(s.u_zone[i]);
    const disk::ZoneInfo& zi = geometry_.zone(z);
    int offset = static_cast<int>(s.u_cylinder[i] * zi.num_cylinders);
    if (offset >= zi.num_cylinders) offset = zi.num_cylinders - 1;
    s.zone[i] = z;
    s.cylinder[i] = zi.first_cylinder + offset;
    s.rate_bps[i] = zi.transfer_rate_bps;
  }
  continuous_sizes_->FillSamples(&rng_, s.bytes.data(), n);
  rng_.FillUniform(0.0, geometry_.rotation_time(), s.rotation_s.data(), n);

  // SCAN order as one flat uint64 sort of (cylinder, index) keys (ties
  // on the index keep issue order, matching the scalar kernel's stable
  // sort; complemented cylinders give the descending sweep).
  if (ascending_) {
    for (int i = 0; i < n; ++i) {
      s.sort_key[i] =
          (static_cast<uint64_t>(static_cast<uint32_t>(s.cylinder[i]))
           << 32) |
          static_cast<uint32_t>(i);
    }
  } else {
    for (int i = 0; i < n; ++i) {
      s.sort_key[i] =
          (static_cast<uint64_t>(~static_cast<uint32_t>(s.cylinder[i]))
           << 32) |
          static_cast<uint32_t>(i);
    }
  }
  std::sort(s.sort_key.begin(), s.sort_key.end());
  for (int i = 0; i < n; ++i) {
    s.order[i] = static_cast<int>(s.sort_key[i] & 0xffffffffu);
  }

  // Fused sweep: clock accumulation, deadline checks and glitch-aware arm
  // tracking in one pass.
  ContinuousSweep sweep;
  double clock = 0.0;
  int arm = arm_cylinder_;
  int glitch_arm = arm_cylinder_;
  for (int pos = 0; pos < n; ++pos) {
    const int i = s.order[pos];
    const double seek = seek_.SeekTime(std::abs(s.cylinder[i] - arm));
    const double transfer = s.bytes[i] / s.rate_bps[i];
    clock += seek + s.rotation_s[i] + transfer;
    arm = s.cylinder[i];
    sweep.seek_sum += seek;
    sweep.rotation_sum += s.rotation_s[i];
    sweep.transfer_sum += transfer;
    if (clock > config_.round_length_s) {
      ++sweep.glitches;
    } else {
      glitch_arm = s.cylinder[i];
    }
  }
  sweep.total_service_s = clock;
  sweep.arm_after =
      (n > 0 && clock <= config_.round_length_s) ? arm : glitch_arm;
  ascending_ = !ascending_;

  std::fill(s.zone_hits.begin(), s.zone_hits.end(), 0);
  for (int i = 0; i < n; ++i) ++s.zone_hits[s.zone[i]];
  return sweep;
}

}  // namespace zonestream::sim
