#include "sim/bound_comparison.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>

#include "common/check.h"
#include "common/table_printer.h"
#include "core/admission.h"
#include "core/baselines.h"
#include "core/multiclass.h"
#include "core/saddlepoint.h"
#include "core/service_time_model.h"
#include "core/snc.h"
#include "disk/presets.h"
#include "sim/importance_sampling.h"
#include "sim/replication.h"
#include "sim/round_simulator.h"
#include "workload/size_distribution.h"

namespace zonestream::sim {
namespace {

// One Monte Carlo point estimate of p_late(n, t), deterministic in
// (options.seed, n) at any thread count.
common::StatusOr<double> EstimateLateProbability(
    const ComparisonDisk& disk,
    const std::shared_ptr<const workload::GammaSizeDistribution>& sizes,
    int n, double tolerance, const BoundComparisonOptions& options,
    bool* importance_sampled) {
  SimulatorConfig config;
  config.round_length_s = options.round_length_s;
  config.seed = options.seed;
  ReplicationOptions replication;
  replication.replications = options.mc_replications;
  replication.base_seed = options.seed;
  if (tolerance < options.is_tolerance_threshold) {
    *importance_sampled = true;
    ImportanceSamplingOptions is_options;  // theta = 0: auto tilt
    auto estimate = EstimateLateProbabilityIS(
        disk.geometry, disk.seek, n, sizes, config,
        options.is_rounds_per_replication, replication, is_options);
    if (!estimate.ok()) return estimate.status();
    return estimate->point;
  }
  auto estimate = EstimateLateProbabilityReplicated(
      disk.geometry, disk.seek, n, RoundSimulator::IidFactory(sizes), config,
      options.mc_rounds_per_replication, replication);
  if (!estimate.ok()) return estimate.status();
  return estimate->point;
}

// Largest n with the simulated p_late within tolerance. The scan anchors
// at the Chernoff N_max — where the bound certifies the estimate should
// pass — and walks up for the empirical headroom (down only if sampling
// noise fails the anchor itself).
common::StatusOr<int> MonteCarloMaxStreams(
    const ComparisonDisk& disk,
    const std::shared_ptr<const workload::GammaSizeDistribution>& sizes,
    int chernoff_n_max, double tolerance,
    const BoundComparisonOptions& options, bool* importance_sampled) {
  int n = std::max(chernoff_n_max, 1);
  auto first = EstimateLateProbability(disk, sizes, n, tolerance, options,
                                       importance_sampled);
  if (!first.ok()) return first.status();
  if (*first > tolerance) {
    while (--n > 0) {
      auto estimate = EstimateLateProbability(disk, sizes, n, tolerance,
                                              options, importance_sampled);
      if (!estimate.ok()) return estimate.status();
      if (*estimate <= tolerance) break;
    }
    return n;
  }
  int mc_max = n;
  const int cap = chernoff_n_max + options.mc_scan_margin;
  while (n < cap) {
    ++n;
    auto estimate = EstimateLateProbability(disk, sizes, n, tolerance,
                                            options, importance_sampled);
    if (!estimate.ok()) return estimate.status();
    if (*estimate > tolerance) break;
    mc_max = n;
  }
  return mc_max;
}

std::string ToleranceLabel(double tolerance) {
  return common::FormatProbability(tolerance);
}

}  // namespace

std::vector<ComparisonDisk> ComparisonPresetDisks() {
  return {
      {"viking2100", disk::QuantumViking2100(), disk::QuantumViking2100Seek()},
      {"viking-1zone", disk::SingleZoneViking(),
       disk::QuantumViking2100Seek()},
      {"small-synth", disk::SyntheticSmallDisk(),
       disk::SyntheticSmallDiskSeek()},
      {"fast-synth", disk::SyntheticFastDisk(), disk::SyntheticFastDiskSeek()},
  };
}

common::StatusOr<BoundComparisonCell> CompareBoundsCell(
    const ComparisonDisk& disk, double tolerance,
    const BoundComparisonOptions& options) {
  auto model = core::ServiceTimeModel::ForMultiZoneDisk(
      disk.geometry, disk.seek, options.mean_size_bytes,
      options.variance_size_bytes2);
  if (!model.ok()) return model.status();
  const core::ServiceTimeModel bounded =
      model->WithSeekBound(options.seek_bound);
  auto sizes = std::make_shared<workload::GammaSizeDistribution>(
      *workload::GammaSizeDistribution::Create(options.mean_size_bytes,
                                               options.variance_size_bytes2));

  BoundComparisonCell cell;
  cell.disk = disk.name;
  cell.tolerance = tolerance;
  cell.worst_case =
      core::WorstCaseAdmission(disk.geometry, disk.seek, *sizes,
                               options.round_length_s, core::WorstCaseConfig())
          .n_max;
  cell.chernoff = core::MaxStreamsByLateProbability(
      bounded, options.round_length_s, tolerance, options.n_cap);
  cell.saddlepoint = core::SaddlepointMaxStreams(
      bounded, options.round_length_s, tolerance, options.n_cap);
  cell.snc = core::SncMaxStreams(bounded, options.round_length_s, tolerance,
                                 options.n_cap);
  if (options.run_monte_carlo) {
    auto mc = MonteCarloMaxStreams(disk, sizes, cell.chernoff, tolerance,
                                   options, &cell.mc_importance_sampled);
    if (!mc.ok()) return mc.status();
    cell.monte_carlo = *mc;
  }
  return cell;
}

common::StatusOr<std::vector<BoundComparisonCell>> RunBoundComparison(
    const BoundComparisonOptions& options) {
  std::vector<BoundComparisonCell> cells;
  for (const ComparisonDisk& disk : ComparisonPresetDisks()) {
    for (const double tolerance : options.tolerances) {
      auto cell = CompareBoundsCell(disk, tolerance, options);
      if (!cell.ok()) return cell.status();
      cells.push_back(*std::move(cell));
    }
  }
  return cells;
}

std::string RenderBoundComparison(const std::vector<BoundComparisonCell>& cells,
                                  const BoundComparisonOptions& options) {
  common::TablePrinter table(
      std::string("N_max by engine (seek bound: ") +
      core::SeekBoundKindName(options.seek_bound) + ", t = " +
      common::FormatDouble(options.round_length_s, 3) + " s, mean fragment " +
      common::FormatDouble(options.mean_size_bytes / 1e3, 4) + " KB)");
  table.SetHeader({"disk", "delta", "WC", "Chernoff", "Saddle", "SNC", "MC",
                   "MC estimator"});
  for (const BoundComparisonCell& cell : cells) {
    table.AddRow({cell.disk, ToleranceLabel(cell.tolerance),
                  std::to_string(cell.worst_case),
                  std::to_string(cell.chernoff),
                  std::to_string(cell.saddlepoint), std::to_string(cell.snc),
                  cell.monte_carlo < 0 ? "-" : std::to_string(cell.monte_carlo),
                  cell.monte_carlo < 0
                      ? "-"
                      : (cell.mc_importance_sampled ? "IS" : "naive")});
  }
  return table.ToString();
}

common::StatusOr<std::vector<MixComparisonRow>> RunMixComparison(
    int cbr_streams, const BoundComparisonOptions& options) {
  ZS_CHECK_GE(cbr_streams, 0);
  // A CBR class needs a near-degenerate transfer law; the Gamma matcher
  // requires positive variance, so give it a 2% coefficient of variation.
  const double cbr_mean = 64e3;
  const double cbr_sd = 0.02 * cbr_mean;
  std::vector<core::StreamClass> classes = {
      {"cbr64k", cbr_mean, cbr_sd * cbr_sd},
      {"vbr", options.mean_size_bytes, options.variance_size_bytes2},
  };
  auto model = core::MultiClassServiceModel::Create(
      disk::QuantumViking2100(), disk::QuantumViking2100Seek(),
      std::move(classes));
  if (!model.ok()) return model.status();

  const std::string label = std::to_string(cbr_streams) + "xCBR64K+VBR";
  std::vector<MixComparisonRow> rows;
  for (const double tolerance : options.tolerances) {
    MixComparisonRow row;
    row.mix = label;
    row.tolerance = tolerance;
    const core::ClassCounts base = {cbr_streams, 0};
    row.chernoff_vbr_max = model->MaxAdditionalStreams(
        base, 1, options.round_length_s, tolerance, options.n_cap);
    int snc_max = 0;
    for (int n = 1; n <= options.n_cap; ++n) {
      const core::ClassCounts counts = {cbr_streams, n};
      if (core::SncRoundDelayBoundMixed(*model, counts,
                                        options.round_length_s)
              .bound > tolerance) {
        break;
      }
      snc_max = n;
    }
    row.snc_vbr_max = snc_max;
    rows.push_back(std::move(row));
  }
  return rows;
}

std::string RenderMixComparison(const std::vector<MixComparisonRow>& rows) {
  common::TablePrinter table(
      "Admissible VBR streams on top of the CBR base (Viking, analytic)");
  table.SetHeader({"mix", "delta", "Chernoff", "SNC"});
  for (const MixComparisonRow& row : rows) {
    table.AddRow({row.mix, ToleranceLabel(row.tolerance),
                  std::to_string(row.chernoff_vbr_max),
                  std::to_string(row.snc_vbr_max)});
  }
  return table.ToString();
}

}  // namespace zonestream::sim
