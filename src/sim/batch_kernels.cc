#include "sim/batch_kernels.h"

#include <cmath>
#include <cstddef>

#include "numeric/simd.h"

#if defined(ZS_SIMD_ENABLED) && defined(__x86_64__)
#include <immintrin.h>
#define ZS_SIMD_X86 1
#endif

namespace zonestream::sim::internal {
namespace {

void TransferTimesScalar(const double* bytes, const double* rate_bps,
                         double* out, size_t n) {
  for (size_t i = 0; i < n; ++i) out[i] = bytes[i] / rate_bps[i];
}

void SeekTimesScalar(const disk::SeekTimeModel& seek, const double* distance,
                     double* out, size_t n) {
  for (size_t i = 0; i < n; ++i) out[i] = seek.SeekTime(distance[i]);
}

#ifdef ZS_SIMD_X86

__attribute__((target("avx2"))) void TransferTimesAvx2(const double* bytes,
                                                       const double* rate_bps,
                                                       double* out, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i, _mm256_div_pd(_mm256_loadu_pd(bytes + i),
                                            _mm256_loadu_pd(rate_bps + i)));
  }
  for (; i < n; ++i) out[i] = bytes[i] / rate_bps[i];
}

__attribute__((target("avx512f"))) void TransferTimesAvx512(
    const double* bytes, const double* rate_bps, double* out, size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_pd(out + i, _mm512_div_pd(_mm512_loadu_pd(bytes + i),
                                            _mm512_loadu_pd(rate_bps + i)));
  }
  for (; i < n; ++i) out[i] = bytes[i] / rate_bps[i];
}

// Both regimes are evaluated for every lane and blended by the regime
// masks; each regime's arithmetic follows SeekTimeModel::SeekTime's
// expression order exactly (intercept + coefficient * f(distance), no
// FMA), so a lane's blended value equals the scalar branch it took.
__attribute__((target("avx2"))) void SeekTimesAvx2(
    const disk::SeekParameters& p, const double* distance, double* out,
    size_t n) {
  const __m256d zero = _mm256_setzero_pd();
  const __m256d threshold = _mm256_set1_pd(p.threshold_cylinders);
  const __m256d sqrt_b = _mm256_set1_pd(p.sqrt_intercept_s);
  const __m256d sqrt_c = _mm256_set1_pd(p.sqrt_coefficient);
  const __m256d lin_b = _mm256_set1_pd(p.linear_intercept_s);
  const __m256d lin_c = _mm256_set1_pd(p.linear_coefficient);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d d = _mm256_loadu_pd(distance + i);
    const __m256d shrt =
        _mm256_add_pd(sqrt_b, _mm256_mul_pd(sqrt_c, _mm256_sqrt_pd(d)));
    const __m256d lng = _mm256_add_pd(lin_b, _mm256_mul_pd(lin_c, d));
    const __m256d use_short = _mm256_cmp_pd(d, threshold, _CMP_LT_OQ);
    __m256d t = _mm256_blendv_pd(lng, shrt, use_short);
    const __m256d positive = _mm256_cmp_pd(d, zero, _CMP_GT_OQ);
    t = _mm256_and_pd(t, positive);
    _mm256_storeu_pd(out + i, t);
  }
  for (; i < n; ++i) {
    const double d = distance[i];
    if (d <= 0.0) {
      out[i] = 0.0;
    } else if (d < p.threshold_cylinders) {
      out[i] = p.sqrt_intercept_s + p.sqrt_coefficient * std::sqrt(d);
    } else {
      out[i] = p.linear_intercept_s + p.linear_coefficient * d;
    }
  }
}

__attribute__((target("avx512f"))) void SeekTimesAvx512(
    const disk::SeekParameters& p, const double* distance, double* out,
    size_t n) {
  const __m512d zero = _mm512_setzero_pd();
  const __m512d threshold = _mm512_set1_pd(p.threshold_cylinders);
  const __m512d sqrt_b = _mm512_set1_pd(p.sqrt_intercept_s);
  const __m512d sqrt_c = _mm512_set1_pd(p.sqrt_coefficient);
  const __m512d lin_b = _mm512_set1_pd(p.linear_intercept_s);
  const __m512d lin_c = _mm512_set1_pd(p.linear_coefficient);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d d = _mm512_loadu_pd(distance + i);
    const __m512d shrt =
        _mm512_add_pd(sqrt_b, _mm512_mul_pd(sqrt_c, _mm512_sqrt_pd(d)));
    const __m512d lng = _mm512_add_pd(lin_b, _mm512_mul_pd(lin_c, d));
    const __mmask8 use_short = _mm512_cmp_pd_mask(d, threshold, _CMP_LT_OQ);
    __m512d t = _mm512_mask_blend_pd(use_short, lng, shrt);
    const __mmask8 positive = _mm512_cmp_pd_mask(d, zero, _CMP_GT_OQ);
    t = _mm512_maskz_mov_pd(positive, t);
    _mm512_storeu_pd(out + i, t);
  }
  for (; i < n; ++i) {
    const double d = distance[i];
    if (d <= 0.0) {
      out[i] = 0.0;
    } else if (d < p.threshold_cylinders) {
      out[i] = p.sqrt_intercept_s + p.sqrt_coefficient * std::sqrt(d);
    } else {
      out[i] = p.linear_intercept_s + p.linear_coefficient * d;
    }
  }
}

#endif  // ZS_SIMD_X86

}  // namespace

void TransferTimes(const double* bytes, const double* rate_bps, double* out,
                   size_t n) {
#ifdef ZS_SIMD_X86
  switch (numeric::ActiveSimdTier()) {
    case numeric::SimdTier::kAvx512:
      TransferTimesAvx512(bytes, rate_bps, out, n);
      return;
    case numeric::SimdTier::kAvx2:
      TransferTimesAvx2(bytes, rate_bps, out, n);
      return;
    case numeric::SimdTier::kScalar:
      break;
  }
#endif
  TransferTimesScalar(bytes, rate_bps, out, n);
}

void SeekTimes(const disk::SeekTimeModel& seek, const double* distance,
               double* out, size_t n) {
#ifdef ZS_SIMD_X86
  switch (numeric::ActiveSimdTier()) {
    case numeric::SimdTier::kAvx512:
      SeekTimesAvx512(seek.params(), distance, out, n);
      return;
    case numeric::SimdTier::kAvx2:
      SeekTimesAvx2(seek.params(), distance, out, n);
      return;
    case numeric::SimdTier::kScalar:
      break;
  }
#endif
  SeekTimesScalar(seek, distance, out, n);
}

}  // namespace zonestream::sim::internal
