#include "sim/rare_event_spec.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <map>
#include <vector>

namespace zonestream::sim {

namespace {

std::vector<std::string> Split(const std::string& text, char separator) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (start <= text.size()) {
    const size_t end = text.find(separator, start);
    if (end == std::string::npos) {
      parts.push_back(text.substr(start));
      break;
    }
    parts.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return parts;
}

// Key=value list with duplicate and syntax checking (the fault_spec
// grammar, minus its model clauses — one flat pair list).
common::StatusOr<std::map<std::string, std::string>> ParsePairs(
    const std::string& text) {
  std::map<std::string, std::string> pairs;
  if (text.empty()) return pairs;
  for (const std::string& item : Split(text, ',')) {
    const size_t eq = item.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= item.size()) {
      return common::Status::InvalidArgument(
          "rare-event spec: expected key=value, got '" + item + "'");
    }
    const std::string key = item.substr(0, eq);
    if (!pairs.emplace(key, item.substr(eq + 1)).second) {
      return common::Status::InvalidArgument(
          "rare-event spec: duplicate key '" + key + "'");
    }
  }
  return pairs;
}

common::Status TakeDouble(std::map<std::string, std::string>* pairs,
                          const std::string& key, double* out) {
  auto it = pairs->find(key);
  if (it == pairs->end()) return common::Status::Ok();
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') {
    return common::Status::InvalidArgument(
        "rare-event spec: bad number for '" + key + "': '" + it->second +
        "'");
  }
  // strtod parses "inf"/"nan" and saturates overflowing literals; none of
  // those configure a sampler meaningfully.
  if (!std::isfinite(value) || errno == ERANGE) {
    return common::Status::InvalidArgument(
        "rare-event spec: value for '" + key + "' must be finite, got '" +
        it->second + "'");
  }
  *out = value;
  pairs->erase(it);
  return common::Status::Ok();
}

// Integers are parsed as integers, not through double (whose cast back is
// undefined out of range and silently truncates fractions).
common::Status TakeInt(std::map<std::string, std::string>* pairs,
                       const std::string& key, int* out) {
  auto it = pairs->find(key);
  if (it == pairs->end()) return common::Status::Ok();
  char* end = nullptr;
  errno = 0;
  const long long value = std::strtoll(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') {
    return common::Status::InvalidArgument(
        "rare-event spec: bad integer for '" + key + "': '" + it->second +
        "'");
  }
  if (errno == ERANGE || value < std::numeric_limits<int>::min() ||
      value > std::numeric_limits<int>::max()) {
    return common::Status::InvalidArgument(
        "rare-event spec: integer for '" + key + "' out of range: '" +
        it->second + "'");
  }
  *out = static_cast<int>(value);
  pairs->erase(it);
  return common::Status::Ok();
}

common::Status TakeU64(std::map<std::string, std::string>* pairs,
                       const std::string& key, uint64_t* out) {
  auto it = pairs->find(key);
  if (it == pairs->end()) return common::Status::Ok();
  // strtoull silently wraps negative literals; a negative seed is a typo,
  // not a 2^64 complement.
  if (it->second.find('-') != std::string::npos) {
    return common::Status::InvalidArgument(
        "rare-event spec: '" + key + "' must be non-negative, got '" +
        it->second + "'");
  }
  char* end = nullptr;
  errno = 0;
  const unsigned long long value =
      std::strtoull(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0' || errno == ERANGE) {
    return common::Status::InvalidArgument(
        "rare-event spec: bad integer for '" + key + "': '" + it->second +
        "'");
  }
  *out = static_cast<uint64_t>(value);
  pairs->erase(it);
  return common::Status::Ok();
}

common::Status TakeBool(std::map<std::string, std::string>* pairs,
                        const std::string& key, bool* out) {
  auto it = pairs->find(key);
  if (it == pairs->end()) return common::Status::Ok();
  const std::string& token = it->second;
  if (token == "1" || token == "true" || token == "on") {
    *out = true;
  } else if (token == "0" || token == "false" || token == "off") {
    *out = false;
  } else {
    return common::Status::InvalidArgument(
        "rare-event spec: bad boolean for '" + key + "': '" + token +
        "' (expected 0/1, true/false, or on/off)");
  }
  pairs->erase(it);
  return common::Status::Ok();
}

std::string Num(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%g", value);
  return buffer;
}

}  // namespace

common::StatusOr<RareEventSpec> ParseRareEventSpec(const std::string& text) {
  RareEventSpec spec;
  auto pairs = ParsePairs(text);
  if (!pairs.ok()) return pairs.status();
  common::Status status = common::Status::Ok();
  if (status.ok()) status = TakeInt(&*pairs, "streams", &spec.streams);
  if (status.ok()) {
    status = TakeInt(&*pairs, "rounds", &spec.rounds_per_replication);
  }
  if (status.ok()) status = TakeInt(&*pairs, "reps", &spec.replications);
  if (status.ok()) status = TakeU64(&*pairs, "seed", &spec.base_seed);
  if (status.ok()) status = TakeInt(&*pairs, "m", &spec.lifetime_rounds);
  if (status.ok()) status = TakeInt(&*pairs, "g", &spec.tolerated_glitches);
  if (status.ok()) {
    // theta accepts "auto" (derive the Chernoff minimizer, the options
    // struct's 0 sentinel) in addition to a number.
    auto it = pairs->find("theta");
    if (it != pairs->end() && it->second == "auto") {
      spec.options.theta = 0.0;
      pairs->erase(it);
    } else {
      status = TakeDouble(&*pairs, "theta", &spec.options.theta);
    }
  }
  if (status.ok()) {
    status =
        TakeBool(&*pairs, "self_normalized", &spec.options.self_normalized);
  }
  if (status.ok()) {
    status = TakeBool(&*pairs, "antithetic", &spec.options.antithetic);
  }
  if (status.ok()) status = TakeInt(&*pairs, "strata", &spec.options.strata);
  if (status.ok()) {
    status =
        TakeBool(&*pairs, "tilt_disturbance", &spec.options.tilt_disturbance);
  }
  if (status.ok()) {
    status = TakeInt(&*pairs, "warmups", &spec.options.nominal_warmup_rounds);
  }
  if (status.ok()) {
    status = TakeDouble(&*pairs, "confidence", &spec.options.confidence);
  }
  if (!status.ok()) return status;
  if (!pairs->empty()) {
    return common::Status::InvalidArgument(
        "rare-event spec: unknown key '" + pairs->begin()->first + "'");
  }
  // Spec-level sanity (the estimators re-check these, but a CLI typo
  // should fail before any sampler is constructed).
  if (spec.streams < 0) {
    return common::Status::InvalidArgument(
        "rare-event spec: streams must be >= 0");
  }
  if (spec.rounds_per_replication <= 0 || spec.replications <= 0) {
    return common::Status::InvalidArgument(
        "rare-event spec: rounds and reps must be positive");
  }
  if (spec.lifetime_rounds <= 0 || spec.tolerated_glitches < 0 ||
      spec.tolerated_glitches > spec.lifetime_rounds) {
    return common::Status::InvalidArgument(
        "rare-event spec: need m > 0 and 0 <= g <= m");
  }
  if (spec.options.theta < 0.0) {
    return common::Status::InvalidArgument(
        "rare-event spec: theta must be >= 0 or 'auto'");
  }
  return spec;
}

std::string FormatRareEventSpec(const RareEventSpec& spec) {
  std::string out = "streams=" + std::to_string(spec.streams) +
                    ",rounds=" + std::to_string(spec.rounds_per_replication) +
                    ",reps=" + std::to_string(spec.replications) +
                    ",seed=" + std::to_string(spec.base_seed) +
                    ",m=" + std::to_string(spec.lifetime_rounds) +
                    ",g=" + std::to_string(spec.tolerated_glitches);
  out += ",theta=";
  out += spec.options.theta == 0.0 ? "auto" : Num(spec.options.theta);
  out += ",self_normalized=";
  out += spec.options.self_normalized ? '1' : '0';
  out += ",antithetic=";
  out += spec.options.antithetic ? '1' : '0';
  out += ",strata=" + std::to_string(spec.options.strata);
  out += ",tilt_disturbance=";
  out += spec.options.tilt_disturbance ? '1' : '0';
  out += ",warmups=" + std::to_string(spec.options.nominal_warmup_rounds);
  out += ",confidence=" + Num(spec.options.confidence);
  return out;
}

}  // namespace zonestream::sim
