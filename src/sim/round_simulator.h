// Detailed round-by-round simulation of one disk (§4).
//
// This is the validation substrate: every round, each of the N streams
// requests one fragment at a position sampled uniformly over the disk's
// stored bytes (zone with probability C_i/C, cylinder uniform within the
// zone), with a uniform rotational latency and a zone-rate transfer. The
// requests are served in one SCAN sweep; fragments that would complete
// after the round deadline are glitches for their streams.
#ifndef ZONESTREAM_SIM_ROUND_SIMULATOR_H_
#define ZONESTREAM_SIM_ROUND_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "disk/disk_geometry.h"
#include "disk/seek_model.h"
#include "fault/fault_model.h"
#include "numeric/statistics.h"
#include "sched/ordering.h"
#include "sched/scan.h"
#include "workload/fragment_source.h"
#include "workload/size_distribution.h"

namespace zonestream::obs {
class Counter;
class Histogram;
class Registry;
class RoundTraceRecorder;
}  // namespace zonestream::obs

namespace zonestream::sim {

// Creates the per-stream fragment-size source; called once per stream at
// simulator construction. Stream ids are 0-based.
using FragmentSourceFactory =
    std::function<std::unique_ptr<workload::FragmentSource>(int stream_id)>;

// How the arm behaves between rounds.
enum class SweepPolicy {
  kAlternate,       // elevator: sweep direction flips every round
  kResetAscending,  // arm returns to cylinder 0, every sweep ascends
};

// Samples the disk position of one fragment. The default (null) sampler is
// uniform-over-capacity on the geometry (the paper's placement); the
// zone-aware strategies in disk/placement.h provide alternatives.
using PositionSampler =
    std::function<disk::DiskPosition(const disk::DiskGeometry&,
                                     numeric::Rng*)>;

// Failure injection: with `probability` per request, an extra service
// delay uniform in [delay_min_s, delay_max_s] is added — modeling the
// sporadic disturbances real drives exhibit (thermal recalibration,
// bad-block remapping, bus contention) that the paper's model ignores.
// The analytic model can be re-armored against a known disturbance by
// folding its moments into the transfer time (see
// round_simulator_test.cc::DisturbanceRobustness tests).
//
// Disturbances are drawn from a dedicated RNG substream, so enabling them
// perturbs only the injected delays: the request positions, sizes and
// rotational latencies stay bit-identical to the undisturbed run with the
// same seed (see DisturbanceTest.ConstantDelayShiftsRoundsByExactlyNDelay).
struct DisturbanceConfig {
  double probability = 0.0;   // per-request disturbance probability
  double delay_min_s = 0.0;
  double delay_max_s = 0.0;   // uniform delay in [min, max]
};

// Simulation knobs.
struct SimulatorConfig {
  double round_length_s = 1.0;
  uint64_t seed = 42;
  SweepPolicy sweep_policy = SweepPolicy::kAlternate;
  // Intra-round service order (the paper uses SCAN; kSstf/kFcfs support
  // the scheduling ablation).
  sched::OrderingPolicy ordering = sched::OrderingPolicy::kScan;
  PositionSampler position_sampler;  // null = uniform over capacity
  DisturbanceConfig disturbance;     // default: none

  // Structured fault injection (fault/fault_model.h): Markov-modulated
  // slowdown epochs, zone dropouts with remapped rates, correlated
  // per-request delay bursts, whole-disk failure. Each configured model
  // draws from a dedicated RNG substream derived from `seed`, so the
  // empty default consumes no randomness and leaves every run
  // bit-identical to a fault-free build; adding one model never perturbs
  // another's draws. On a disk-failed round the requests are still drawn
  // (stream sources advance; main-stream consumption stays a pure
  // function of the round index) but nothing is served: every stream
  // glitches and the trace event carries disk_failed = true.
  fault::FaultSpec faults;

  // Deadline-cut accounting for the per-round trace. The physical disk
  // stops at the round boundary, so a trace row claiming more busy time
  // than the round holds is an accounting fiction. With this set, trace
  // events charge each component at its truncated length — the straddling
  // request is cut mid-phase in service order (seek, rotation,
  // disturbance, fault delay, transfer) and later requests are charged
  // zero — so service_time_s <= round_length_s always, the decomposition
  // identity still holds exactly, and truncated_requests counts the cut
  // plus skipped requests. RoundOutcome (and thus every estimator,
  // glitch set, arm dynamic and RNG draw) still uses the untruncated
  // hypothetical sweep time, so enabling this changes trace accounting
  // only. Default off, preserving the historical trace values.
  bool truncate_at_deadline = false;

  // Use the batched structure-of-arrays round kernel (default): per-round
  // variates are drawn in batches (all positions, then all sizes, then
  // all rotational latencies), zones come from the geometry's O(1) alias
  // table, and all per-round state lives in scratch buffers reused across
  // rounds — no allocation on the hot path. The batched and scalar
  // kernels simulate the same model and are statistically
  // indistinguishable (tests/sim/batch_kernel_test.cc), but they consume
  // the main RNG stream in different orders, so individual sample paths
  // differ for the same seed. Set false for the scalar reference kernel,
  // which preserves today's bit-exact per-seed outputs (A/B ablation and
  // golden-value regressions). Disturbance draws use a dedicated
  // substream consumed identically by both kernels.
  bool batched_kernel = true;

  // Legacy-compatibility switches preserving pre-bugfix behavior for
  // side-by-side comparison; both default to the corrected behavior.
  //
  // Before the fix, kResetAscending teleported the arm to cylinder 0
  // between rounds without charging the return sweep, silently crediting
  // each round the seek back from wherever the previous sweep ended.
  bool legacy_free_arm_reset = false;
  // Before the fix, EstimateGlitchProbability/EstimateErrorProbability
  // fed correlated events (all streams of one round / one lifetime) into
  // a pooled Wilson interval, yielding overconfident CIs; the corrected
  // estimators cluster by round / lifetime (see
  // numeric::ClusteredProportionInterval).
  bool legacy_pooled_intervals = false;

  // Optional observability hooks (not owned; null = disabled). `metrics`
  // receives counters/histograms under the "sim." prefix and `trace` one
  // obs::RoundTraceEvent per round with source_id `trace_source_id`; both
  // must be thread-safe when shared across replications. Metric names are
  // listed in docs/OBSERVABILITY.md.
  obs::Registry* metrics = nullptr;
  obs::RoundTraceRecorder* trace = nullptr;
  int trace_source_id = 0;
};

// Outcome of one simulated round.
struct RoundOutcome {
  double total_service_time_s = 0.0;  // full-sweep time T_N
  bool overran = false;               // T_N > round length
  std::vector<int> glitched_streams;  // streams whose fragment missed t
};

// Aggregate estimate of a probability with a confidence interval (Wilson,
// or cluster-robust where samples are correlated — see each estimator).
struct ProbabilityEstimate {
  double point = 0.0;
  double ci_lower = 0.0;
  double ci_upper = 0.0;
  int64_t trials = 0;
};

// Complete restartable state of a RoundSimulator: both RNG positions
// (main + disturbance substream), the fault injector (when configured),
// the arm state, the round counter, and each stream source's cross-round
// state. Restoring it onto a simulator freshly Created with the same
// (geometry, seek, num_streams, factory, config) continues the run
// bit-identically under either kernel.
struct RoundSimulatorState {
  std::string rng_state;              // numeric::Rng::SaveState
  std::string disturbance_rng_state;  // ditto, dedicated substream
  bool has_fault_injector = false;
  fault::FaultInjectorState fault_injector;
  int arm_cylinder = 0;
  bool ascending = true;
  int64_t rounds_run = 0;
  std::vector<std::vector<uint64_t>> source_states;  // one per stream
};

// Single-disk round simulator. Not thread-safe; use one per thread with
// distinct seeds.
class RoundSimulator {
 public:
  // `num_streams` streams draw sizes from `source_factory` (pass
  // IidFactory(dist) for the model-matching i.i.d. workload).
  static common::StatusOr<RoundSimulator> Create(
      const disk::DiskGeometry& geometry, const disk::SeekTimeModel& seek,
      int num_streams, const FragmentSourceFactory& source_factory,
      const SimulatorConfig& config);

  // Convenience factory for i.i.d. draws from a shared distribution.
  static FragmentSourceFactory IidFactory(
      std::shared_ptr<const workload::SizeDistribution> distribution);

  // Simulates one round and returns its outcome.
  RoundOutcome RunRound();

  // Estimates p_late = P[T_N >= t] over `rounds` simulated rounds
  // (Figure 1's simulated series). Rounds are independent, so the CI is a
  // plain Wilson interval.
  ProbabilityEstimate EstimateLateProbability(int rounds);

  // Estimates p_glitch = P[a given stream glitches in a round] by counting
  // (stream, round) glitch events over `rounds` rounds. The events of one
  // round are correlated (one slow sweep glitches many streams at once),
  // so the CI clusters by round: the per-round glitch fraction is the
  // i.i.d. sample (numeric::ClusteredProportionInterval). Set
  // SimulatorConfig::legacy_pooled_intervals for the old overconfident
  // pooled Wilson interval.
  ProbabilityEstimate EstimateGlitchProbability(int rounds);

  // Estimates p_error = P[a stream suffers >= g glitches in m rounds] over
  // `lifetimes` independent m-round stream lifetimes (each lifetime batch
  // yields num_streams samples — Table 2's simulated series). The
  // num_streams samples of one lifetime share the same m simulated
  // rounds, so the CI clusters by lifetime (same estimator and legacy
  // switch as EstimateGlitchProbability).
  ProbabilityEstimate EstimateErrorProbability(int m, int g, int lifetimes);

  // Collects `rounds` total-service-time samples (for distribution-level
  // validation of the transform).
  numeric::RunningStats SampleServiceTimes(int rounds);

  int num_streams() const { return num_streams_; }
  const SimulatorConfig& config() const { return config_; }
  int64_t rounds_run() const { return rounds_run_; }

  // True when the simulator holds no cross-round state outside its RNG
  // streams and the arm position — every stream on one shared i.i.d.
  // size distribution and no fault injector. Replication drivers may
  // then rewind one instance per shard with ResetForReplication()
  // instead of paying a full construction (sources, scratch, metric
  // resolution) per replication.
  bool SupportsReplicationReset() const {
    return shared_iid_ != nullptr && fault_injector_ == nullptr;
  }

  // Rewinds to the state of a freshly-constructed simulator whose config
  // seed is `seed` and trace source id is `trace_source_id`: both RNG
  // substreams restart, the arm returns to cylinder 0, the sweep to
  // ascending, the round counter to zero. Requires
  // SupportsReplicationReset(); round outcomes after the reset are
  // bit-identical to a new instance's.
  void ResetForReplication(uint64_t seed, int trace_source_id);

  // Checkpoint support: see RoundSimulatorState. ImportState validates
  // shape (stream count, arm cylinder in range, fault presence matching
  // the config) before mutating anything it can avoid mutating.
  RoundSimulatorState ExportState() const;
  common::Status ImportState(const RoundSimulatorState& state);

 private:
  // Metric handles resolved once at construction (see docs/OBSERVABILITY.md
  // for the name schema).
  struct Metrics {
    obs::Counter* rounds = nullptr;
    obs::Counter* requests = nullptr;
    obs::Counter* glitches = nullptr;
    obs::Counter* overruns = nullptr;
    obs::Counter* disturbances = nullptr;
    obs::Histogram* service_time_s = nullptr;
    obs::Histogram* seek_s = nullptr;
    obs::Histogram* rotation_s = nullptr;
    obs::Histogram* transfer_s = nullptr;
    std::vector<obs::Counter*> zone_hits;
  };

  // Structure-of-arrays scratch for the batched kernel, sized once at
  // construction and reused every round. zone_hits doubles as the
  // preallocated per-round zone tally for the observability hooks (both
  // kernels), replacing the old per-request counter increments and the
  // per-round vector growth.
  struct RoundScratch {
    // Position-draw uniforms, one contiguous block of 2n so the round
    // fills them with a single engine pass: zone draws in [0, n),
    // cylinder draws in [n, 2n) — the same words, in the same order, as
    // the former back-to-back per-array fills.
    std::vector<double> u_pos;
    std::vector<int> cylinder;
    std::vector<int> zone;
    std::vector<double> rate_bps;
    std::vector<double> bytes;
    std::vector<double> rotation_s;    // rotational latency + injected delay
    std::vector<int> order;            // service order (indices into the SoA)
    // SCAN sort keys: cylinder (bit-reversed for descending sweeps) in the
    // high 32 bits, SoA index in the low 32 — one flat uint64 sort
    // replaces the comparator-indirect index sort.
    std::vector<uint64_t> sort_key;
    // Wide-kernel staging for the sweep (sim/batch_kernels.h):
    // per-stream transfer times (SoA index order), and per-position seek
    // distances/times (service order).
    std::vector<double> transfer_time_s;
    std::vector<double> seek_dist;
    std::vector<double> seek_time_s;
    std::vector<int32_t> zone_hits;    // per-zone tallies, reset each round
    // Per-stream injected delays, tracked only when truncate_at_deadline
    // needs the phase-level breakdown of the cut request.
    std::vector<double> dist_delay_s;
    std::vector<double> fault_delay_s;
  };

  // Per-round component sums handed to the observability sink.
  struct RoundBreakdown {
    double seek_s = 0.0;
    double rotation_s = 0.0;  // base rotation, injected delays excluded
    double transfer_s = 0.0;
    double disturbance_delay_s = 0.0;
    int disturbances = 0;
    double fault_delay_s = 0.0;
    int faulted_requests = 0;
    bool disk_failed = false;
    int truncated_requests = 0;
    // Trace-facing service time; equals the outcome's untruncated sweep
    // time unless truncate_at_deadline clipped it to the round length.
    double service_time_s = 0.0;
  };

  RoundSimulator(const disk::DiskGeometry& geometry,
                 const disk::SeekTimeModel& seek, int num_streams,
                 std::vector<std::unique_ptr<workload::FragmentSource>> sources,
                 std::unique_ptr<fault::FaultInjector> fault_injector,
                 const SimulatorConfig& config);

  RoundOutcome RunRoundScalar();
  RoundOutcome RunRoundBatched();

  // Completes a round on a failed disk: requests were drawn (the caller
  // tallied scratch_.zone_hits) but nothing is served — every stream
  // glitches and the trace event carries disk_failed = true.
  RoundOutcome FinishDiskFailedRound();

  // Rewrites `breakdown` so every component is charged at its truncated
  // length against the round deadline (see truncate_at_deadline). Phase
  // lengths are read back per stream id from the scratch delay arrays.
  void TruncateBreakdown(RoundBreakdown* breakdown,
                         const std::vector<int>& order,
                         const std::vector<double>& seek_by_pos,
                         const std::vector<double>& rotation_by_pos,
                         const std::vector<double>& transfer_by_pos,
                         double return_seek_s) const;

  // Emits the per-round trace event and metric updates. Zone tallies are
  // read from scratch_.zone_hits, which the caller must have filled.
  void EmitRoundObservability(const RoundOutcome& outcome,
                              const RoundBreakdown& breakdown);

  disk::DiskGeometry geometry_;
  disk::SeekTimeModel seek_;
  int num_streams_;
  std::vector<std::unique_ptr<workload::FragmentSource>> sources_;
  SimulatorConfig config_;
  numeric::Rng rng_;
  numeric::Rng disturbance_rng_;
  // Null when config_.faults is empty (the common case).
  std::unique_ptr<fault::FaultInjector> fault_injector_;
  int arm_cylinder_ = 0;
  bool ascending_ = true;
  int64_t rounds_run_ = 0;
  std::optional<Metrics> metrics_;
  // Non-null iff every stream draws i.i.d. from this one distribution, in
  // which case the batched kernel pulls a round's sizes in one
  // FillSamples() call.
  const workload::SizeDistribution* shared_iid_ = nullptr;
  RoundScratch scratch_;
};

}  // namespace zonestream::sim

#endif  // ZONESTREAM_SIM_ROUND_SIMULATOR_H_
