#include "sim/replication.h"

#include <algorithm>
#include <optional>
#include <vector>

#include "common/check.h"
#include "numeric/random.h"

namespace zonestream::sim {

namespace {

common::Status ValidateSharding(const ReplicationOptions& options,
                                int rounds_per_replication) {
  if (options.replications <= 0) {
    return common::Status::InvalidArgument("replications must be positive");
  }
  if (rounds_per_replication <= 0) {
    return common::Status::InvalidArgument(
        "rounds_per_replication must be positive");
  }
  return common::Status::Ok();
}

// Runs replications [begin, end) — one contiguous ParallelForBlocks
// block — and hands each round's outcome to `tally(replication,
// outcome)`. When the configuration supports it (shared i.i.d. sizes, no
// fault injector — the common Monte Carlo setup), one simulator instance
// serves the whole block and is rewound per replication, skipping a full
// construction (sources, scratch, metric resolution) per shard; rewound
// outcomes are bit-identical to a fresh instance's, so results do not
// depend on the block partition. Creation cannot fail here: the caller
// validated the arguments by constructing a probe simulator with
// identical inputs.
template <typename Tally>
void RunReplicationBlock(const disk::DiskGeometry& geometry,
                         const disk::SeekTimeModel& seek, int num_streams,
                         const FragmentSourceFactory& source_factory,
                         const SimulatorConfig& config, uint64_t base_seed,
                         int64_t begin, int64_t end, int rounds,
                         Tally&& tally) {
  std::optional<common::StatusOr<RoundSimulator>> holder;
  for (int64_t replication = begin; replication < end; ++replication) {
    const uint64_t seed =
        numeric::SubstreamSeed(base_seed, static_cast<uint64_t>(replication));
    // Any obs hooks in `config` are shared across replications (they are
    // thread-safe); the source id tells the trace events apart.
    const int source_id = static_cast<int>(replication);
    if (holder.has_value() && (*holder)->SupportsReplicationReset()) {
      (*holder)->ResetForReplication(seed, source_id);
    } else {
      SimulatorConfig replication_config = config;
      replication_config.seed = seed;
      replication_config.trace_source_id = source_id;
      holder.emplace(RoundSimulator::Create(geometry, seek, num_streams,
                                            source_factory,
                                            replication_config));
      ZS_CHECK(holder->ok());
    }
    RoundSimulator& simulator = **holder;
    for (int r = 0; r < rounds; ++r) tally(replication, simulator.RunRound());
  }
}

}  // namespace

common::StatusOr<ProbabilityEstimate> EstimateLateProbabilityReplicated(
    const disk::DiskGeometry& geometry, const disk::SeekTimeModel& seek,
    int num_streams, const FragmentSourceFactory& source_factory,
    const SimulatorConfig& config, int rounds_per_replication,
    const ReplicationOptions& options) {
  if (auto status = ValidateSharding(options, rounds_per_replication);
      !status.ok()) {
    return status;
  }
  auto probe = RoundSimulator::Create(geometry, seek, num_streams,
                                      source_factory, config);
  if (!probe.ok()) return probe.status();

  std::vector<int64_t> overruns(options.replications, 0);
  common::ParallelForBlocks(
      options.replications,
      [&](int64_t begin, int64_t end) {
        RunReplicationBlock(geometry, seek, num_streams, source_factory,
                            config, options.base_seed, begin, end,
                            rounds_per_replication,
                            [&overruns](int64_t replication,
                                        const RoundOutcome& outcome) {
                              if (outcome.overran) ++overruns[replication];
                            });
      },
      options.pool);

  int64_t total_overruns = 0;
  for (int64_t count : overruns) total_overruns += count;
  const int64_t trials =
      static_cast<int64_t>(options.replications) * rounds_per_replication;
  const numeric::ProportionInterval interval =
      numeric::WilsonInterval(total_overruns, trials);
  return ProbabilityEstimate{interval.point, interval.lower, interval.upper,
                             trials};
}

common::StatusOr<ProbabilityEstimate> EstimateGlitchProbabilityReplicated(
    const disk::DiskGeometry& geometry, const disk::SeekTimeModel& seek,
    int num_streams, const FragmentSourceFactory& source_factory,
    const SimulatorConfig& config, int rounds_per_replication,
    const ReplicationOptions& options) {
  if (auto status = ValidateSharding(options, rounds_per_replication);
      !status.ok()) {
    return status;
  }
  auto probe = RoundSimulator::Create(geometry, seek, num_streams,
                                      source_factory, config);
  if (!probe.ok()) return probe.status();

  // Per-replication tallies: the glitch-event count (for the exact point
  // estimate) and the running statistics of the per-round glitch fraction
  // (the i.i.d. sample the cluster-robust interval is built from; see
  // RoundSimulator::EstimateGlitchProbability).
  std::vector<int64_t> glitch_events(options.replications, 0);
  std::vector<numeric::RunningStats> round_fractions(options.replications);
  common::ParallelForBlocks(
      options.replications,
      [&](int64_t begin, int64_t end) {
        RunReplicationBlock(
            geometry, seek, num_streams, source_factory, config,
            options.base_seed, begin, end, rounds_per_replication,
            [&](int64_t replication, const RoundOutcome& outcome) {
              const int64_t glitched =
                  static_cast<int64_t>(outcome.glitched_streams.size());
              glitch_events[replication] += glitched;
              round_fractions[replication].Add(
                  static_cast<double>(glitched) /
                  static_cast<double>(num_streams));
            });
      },
      options.pool);

  int64_t total_events = 0;
  numeric::RunningStats merged;  // fixed replication order: deterministic
  for (int64_t replication = 0; replication < options.replications;
       ++replication) {
    total_events += glitch_events[replication];
    merged.Merge(round_fractions[replication]);
  }
  const int64_t rounds =
      static_cast<int64_t>(options.replications) * rounds_per_replication;
  const int64_t trials = rounds * num_streams;
  numeric::ProportionInterval interval;
  if (config.legacy_pooled_intervals) {
    interval = numeric::WilsonInterval(total_events, trials);
  } else {
    interval = numeric::ClusteredProportionInterval(
        merged.mean(), merged.count() > 1 ? merged.sample_variance() : 0.0,
        rounds, num_streams);
    // Restate the exact pooled point estimate; the clustering only widens
    // the interval.
    interval.point =
        static_cast<double>(total_events) / static_cast<double>(trials);
  }
  return ProbabilityEstimate{interval.point, interval.lower, interval.upper,
                             trials};
}

common::StatusOr<numeric::RunningStats> SampleServiceTimesReplicated(
    const disk::DiskGeometry& geometry, const disk::SeekTimeModel& seek,
    int num_streams, const FragmentSourceFactory& source_factory,
    const SimulatorConfig& config, int rounds_per_replication,
    const ReplicationOptions& options) {
  if (auto status = ValidateSharding(options, rounds_per_replication);
      !status.ok()) {
    return status;
  }
  auto probe = RoundSimulator::Create(geometry, seek, num_streams,
                                      source_factory, config);
  if (!probe.ok()) return probe.status();

  std::vector<numeric::RunningStats> per_replication(options.replications);
  common::ParallelForBlocks(
      options.replications,
      [&](int64_t begin, int64_t end) {
        RunReplicationBlock(geometry, seek, num_streams, source_factory,
                            config, options.base_seed, begin, end,
                            rounds_per_replication,
                            [&per_replication](int64_t replication,
                                               const RoundOutcome& outcome) {
                              per_replication[replication].Add(
                                  outcome.total_service_time_s);
                            });
      },
      options.pool);

  numeric::RunningStats merged;
  for (const numeric::RunningStats& stats : per_replication) {
    merged.Merge(stats);
  }
  return merged;
}

common::StatusOr<MixedRunResult> RunMixedReplicated(
    const disk::DiskGeometry& geometry, const disk::SeekTimeModel& seek,
    int num_continuous,
    std::shared_ptr<const workload::SizeDistribution> continuous_sizes,
    std::shared_ptr<const workload::SizeDistribution> discrete_sizes,
    const MixedSimulatorConfig& config, int rounds_per_replication,
    const ReplicationOptions& options) {
  if (auto status = ValidateSharding(options, rounds_per_replication);
      !status.ok()) {
    return status;
  }
  auto probe = MixedRoundSimulator::Create(geometry, seek, num_continuous,
                                           continuous_sizes, discrete_sizes,
                                           config);
  if (!probe.ok()) return probe.status();

  std::vector<MixedRunResult> per_replication(options.replications);
  common::ParallelFor(
      options.replications,
      [&](int64_t replication) {
        MixedSimulatorConfig replication_config = config;
        replication_config.seed = numeric::SubstreamSeed(
            options.base_seed, static_cast<uint64_t>(replication));
        auto simulator = MixedRoundSimulator::Create(
            geometry, seek, num_continuous, continuous_sizes, discrete_sizes,
            replication_config);
        ZS_CHECK(simulator.ok());
        per_replication[replication] =
            simulator->Run(rounds_per_replication);
      },
      options.pool);

  // Fixed-order reduction: counters sum, time statistics combine weighted
  // by their sample counts, extrema take the max.
  MixedRunResult merged;
  double response_weight = 0.0;
  double leftover_weight = 0.0;
  for (const MixedRunResult& result : per_replication) {
    merged.rounds += result.rounds;
    merged.continuous_requests += result.continuous_requests;
    merged.continuous_glitches += result.continuous_glitches;
    merged.discrete_arrivals += result.discrete_arrivals;
    merged.discrete_completed += result.discrete_completed;
    merged.max_queue_depth =
        std::max(merged.max_queue_depth, result.max_queue_depth);
    const double completed = static_cast<double>(result.discrete_completed);
    response_weight += completed;
    merged.mean_response_time_s += completed * result.mean_response_time_s;
    merged.p95_response_time_s += completed * result.p95_response_time_s;
    const double rounds = static_cast<double>(result.rounds);
    leftover_weight += rounds;
    merged.mean_leftover_s += rounds * result.mean_leftover_s;
  }
  merged.continuous_glitch_rate =
      merged.continuous_requests > 0
          ? static_cast<double>(merged.continuous_glitches) /
                static_cast<double>(merged.continuous_requests)
          : 0.0;
  merged.mean_discrete_per_round =
      merged.rounds > 0 ? static_cast<double>(merged.discrete_completed) /
                              static_cast<double>(merged.rounds)
                        : 0.0;
  if (response_weight > 0.0) {
    merged.mean_response_time_s /= response_weight;
    merged.p95_response_time_s /= response_weight;
  }
  if (leftover_weight > 0.0) merged.mean_leftover_s /= leftover_weight;
  return merged;
}

}  // namespace zonestream::sim
