// Rare-event acceleration by importance sampling (exponential tilting).
//
// The validation experiments need tail probabilities down to p ~ 1e-6
// (Table 2's deep rows); naive Monte Carlo needs >= 100/p rounds for a
// usable confidence interval, which is ~1e8 rounds at 1e-6. This module
// simulates the same round model as RoundSimulator's batched kernel, but
// under an exponentially tilted measure that makes late rounds common,
// and corrects each round with its exact likelihood ratio:
//
//   - Rotational latencies U(0, ROT) are drawn from the tilted density
//     f_theta(x) ∝ e^{theta x} on [0, ROT] (inverse CDF via log1p).
//   - The (zone, transfer) pair is tilted jointly: zones are drawn from
//     p~_z ∝ p_z (1 - theta s_z)^{-k} (a one-time tilted alias table,
//     s_z = scale/R_z the zone's transfer-time Gamma scale) and the
//     transfer time given zone z from Gamma(k, s_z / (1 - theta s_z)).
//     The joint likelihood ratio collapses to M_trans(theta) e^{-theta T}
//     independent of the zone, so the per-round log weight is
//
//       log w = n psi(theta) - theta (sum rot_i + sum trans_i)
//
//     with psi(theta) = log M_rot(theta) + log M_trans(theta) the exact
//     per-request cumulant generating function (cylinder-within-zone and
//     seek times are untilted and cancel).
//   - Optionally the sporadic-disturbance mixture is tilted the same way
//     (Bernoulli probability and uniform delay both shifted), adding
//     n log M_dist(theta) - theta sum d_i to the weight.
//
// E[w I] under the tilted measure equals P[event] exactly, so the
// Horvitz-Thompson estimator (1/N) sum w_r I_r is unbiased for any
// theta in [0, theta_max); theta = 0 degenerates to naive Monte Carlo
// with all weights exactly 1. The optimal theta is (nearly) the Chernoff
// minimizer theta* of the analytic service-time model — the same number
// core::ChernoffResult::theta_star already reports — which
// AutoTiltParameter() derives; at that tilt the late event has O(1)
// probability and N ~ 1e5 rounds resolve p ~ 1e-6 with a few-percent CI.
//
// Samples must be i.i.d. for that identity to hold: the arm position a
// round inherits from its predecessor is part of the round's law, and
// under tilted *predecessor* draws it is biased in a way the current
// round's weight cannot see (a few milliseconds of first-seek bias,
// amplified by e^{theta dt}, was measurable as a theta-dependent drift).
// Each RunRound() sample therefore restarts from the reset arm state and
// optionally replays nominal_warmup_rounds untilted rounds to put the
// arm in its free-running nominal distribution before the tilted round
// is measured.
//
// Variance-reduction extras: antithetic pairing (odd rounds reuse the
// even round's position/rotation uniforms reflected u -> 1-u) and
// proportional stratification of the leading rotation uniform.
#ifndef ZONESTREAM_SIM_IMPORTANCE_SAMPLING_H_
#define ZONESTREAM_SIM_IMPORTANCE_SAMPLING_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "disk/alias_table.h"
#include "disk/disk_geometry.h"
#include "disk/seek_model.h"
#include "numeric/random.h"
#include "sim/replication.h"
#include "sim/round_simulator.h"
#include "workload/size_distribution.h"

namespace zonestream::sim {

// Tuning of one importance-sampled estimation run.
struct ImportanceSamplingOptions {
  // Tilt parameter theta (1/seconds). 0 selects AutoTiltParameter() — the
  // analytic Chernoff minimizer for the configured deadline — inside the
  // estimators; negative is invalid. Values at or above the sampler's
  // theta_max() are rejected.
  double theta = 0.0;
  // Report the self-normalized estimator sum(w I)/sum(w) instead of the
  // unbiased Horvitz-Thompson mean (1/N) sum(w I). Self-normalization
  // trades a O(1/N) bias for lower variance when weights are noisy.
  bool self_normalized = false;
  // Antithetic pairing: odd rounds reflect the previous round's position
  // and rotation uniforms (u -> 1-u). Requires an even number of rounds
  // per replication.
  bool antithetic = false;
  // Proportional stratification of the leading rotation uniform into this
  // many equal strata, cycled deterministically across the rounds of a
  // replication. Requires strata >= 1 and the per-replication round count
  // (pair count when antithetic) to be a multiple of it.
  int strata = 1;
  // Tilt the disturbance mixture too (only meaningful when the simulator
  // config enables disturbances). Off leaves disturbances at their
  // nominal law — still correct, the likelihood ratio of an untilted
  // component is 1 — but deep tails driven by disturbances then stay rare.
  bool tilt_disturbance = true;
  // Untilted rounds run before each measured round to place the arm.
  // Every sample starts from the reset arm state (cylinder 0, ascending);
  // with 0 warm-ups the estimand is the first-round-from-reset tail, with
  // w >= 1 it is the (w+1)-th round's — which matches the free-running
  // RoundSimulator's stationary path average, since the arm chain mixes
  // in essentially one sweep (the sweep's end cylinder is an extreme of
  // the round's own draws, nearly independent of where the arm started).
  // Warm-up rounds carry no weight terms; they cost one untilted round
  // each. See the file comment on why samples must be i.i.d. at all.
  int nominal_warmup_rounds = 1;
  // Two-sided confidence level of the reported interval.
  double confidence = 0.95;
};

// A weighted tail-probability estimate and its sampling diagnostics.
struct ImportanceSampleEstimate {
  double point = 0.0;
  double ci_lower = 0.0;
  double ci_upper = 0.0;
  int64_t rounds = 0;       // tilted rounds simulated
  double theta = 0.0;       // tilt actually used
  // Effective sample size (sum w)^2 / sum w^2 — how many naive rounds the
  // weighted sample is worth for mean estimation. A collapsed ESS (<< N)
  // flags an over-aggressive tilt.
  double ess = 0.0;
  double weight_mean = 0.0;      // should be ~1: E[w] = 1 exactly
  double weight_variance = 0.0;  // sample variance of the weights
};

// Deep-tail p_error estimate: the binomial lifetime tail
// P[stream suffers >= g glitches in m rounds] evaluated at the
// importance-sampled per-round glitch probability, with the CI endpoints
// mapped through the same (monotone) binomial tail.
struct ErrorProbabilityISEstimate {
  ImportanceSampleEstimate glitch;  // the underlying p_glitch estimate
  double point = 0.0;
  double ci_lower = 0.0;
  double ci_upper = 0.0;
  int m = 0;
  int g = 0;
};

// One i.i.d. sample: the measured tilted round (after its nominal
// warm-up rounds, whose outcomes are not reported).
struct TiltedRoundOutcome {
  double total_service_time_s = 0.0;
  bool overran = false;
  int glitched_streams = 0;
  double log_weight = 0.0;  // log likelihood ratio dP/dP~ of the round
};

// Derives the tilt parameter from the analytic model: the Chernoff
// minimizer theta* of P[T_n >= round_length] under the moment-matched
// multi-zone service-time model (core/service_time_model.h), clamped
// inside the simulator's exact admissible domain. Returns 0 (no tilt)
// when the deadline is not in the right tail (the event is not rare and
// naive sampling is already efficient).
common::StatusOr<double> AutoTiltParameter(
    const disk::DiskGeometry& geometry, const disk::SeekTimeModel& seek,
    int num_streams, const workload::SizeDistribution& sizes,
    double round_length_s);

// Tilted mirror of RoundSimulator's batched kernel. Not thread-safe; use
// one per thread (ReplicatedIS* below shard exactly like replication.h).
//
// Restrictions (InvalidArgument otherwise): Gamma fragment sizes (the
// closed-form tilt needs the Gamma family), SCAN ordering, the default
// uniform-over-capacity position sampler, and no structured faults.
class ImportanceSampler {
 public:
  static common::StatusOr<ImportanceSampler> Create(
      const disk::DiskGeometry& geometry, const disk::SeekTimeModel& seek,
      int num_streams,
      std::shared_ptr<const workload::SizeDistribution> sizes,
      const SimulatorConfig& config,
      const ImportanceSamplingOptions& options);

  // Draws one i.i.d. sample: resets the arm, replays the configured
  // nominal warm-up rounds, then simulates and returns the tilted
  // measured round with its likelihood ratio. E[exp(log_weight) * f] over
  // samples equals the nominal expectation of f for any per-round
  // statistic f, at every theta.
  TiltedRoundOutcome RunRound();

  // Rewinds to a freshly-created sampler seeded with `seed` (the
  // replication-sharding hook, mirroring
  // RoundSimulator::ResetForReplication).
  void ResetForReplication(uint64_t seed);

  // Supremum of the admissible tilt: min_z R_z / scale, the smallest
  // zone's Gamma-MGF pole (1/seconds).
  double theta_max() const { return theta_max_; }
  double theta() const { return theta_; }
  int num_streams() const { return num_streams_; }
  // Exact per-request log MGF psi(theta) at the configured tilt
  // (rotation + zone/transfer + tilted disturbance when enabled).
  double per_request_log_mgf() const { return psi_; }

 private:
  ImportanceSampler(const disk::DiskGeometry& geometry,
                    const disk::SeekTimeModel& seek, int num_streams,
                    double shape, double scale, const SimulatorConfig& config,
                    const ImportanceSamplingOptions& options);

  // u -> 1-u clamped into [0, 1) (antithetic reflection; 1-u can hit 1.0
  // exactly, which the alias table and the cylinder offset must not see).
  static double Reflect(double u);

  // Simulates one round from the current arm state using the uniforms at
  // u_pos[0..2n) / u_rot[0..n) (a slice of scratch_.u_all). `tilted`
  // selects the tilted or nominal zone/rotation/transfer/disturbance
  // laws; when tilted, the round's weight terms are accumulated into
  // *log_weight. Gamma and disturbance draws are consumed from the
  // engines either way.
  void RunOneRound(const double* u_pos, const double* u_rot, bool tilted,
                   TiltedRoundOutcome* outcome, double* log_weight);

  disk::DiskGeometry geometry_;
  disk::SeekTimeModel seek_;
  int num_streams_;
  double shape_;  // fragment-size Gamma shape k
  double scale_;  // fragment-size Gamma scale s (bytes)
  SimulatorConfig config_;
  ImportanceSamplingOptions options_;
  numeric::Rng rng_;
  numeric::Rng disturbance_rng_;
  numeric::GammaBatchSampler unit_gamma_;  // Gamma(k, 1) batch source

  double theta_ = 0.0;
  double theta_max_ = 0.0;
  double psi_ = 0.0;            // per-request log MGF at theta_
  double rot_expm1_ = 0.0;      // expm1(theta * ROT) for the inverse CDF
  double log_mgf_rot_ = 0.0;
  double log_mgf_trans_ = 0.0;
  double log_mgf_dist_ = 0.0;   // 0 unless disturbances are tilted
  bool tilt_disturbance_ = false;
  double tilted_dist_probability_ = 0.0;
  double dist_expm1_ = 0.0;     // expm1(theta * (max - min)) for delays
  disk::AliasTable tilted_zone_alias_;
  // Per-zone transfer-time Gamma scales multiplied onto unit Gamma(k, 1)
  // draws: nominal s_z = s/R_z (warm-up rounds) and tilted
  // s_z / (1 - theta s_z) (measured rounds).
  std::vector<double> nominal_time_scale_;
  std::vector<double> tilted_time_scale_;

  // "sim.is.*" metric handles (null when config.metrics is unset).
  obs::Counter* is_rounds_ = nullptr;
  obs::Counter* is_overruns_ = nullptr;
  obs::Histogram* is_log_weight_ = nullptr;

  // Arm state, mirroring RoundSimulator; reset at each sample.
  int arm_cylinder_ = 0;
  bool ascending_ = true;
  int64_t samples_run_ = 0;

  // Per-round scratch, sized once.
  struct Scratch {
    // (warmup + 1) * 3n uniforms, filled in one engine pass per fresh
    // sample; round r owns [r*3n, (r+1)*3n): 2n position draws (zones
    // then cylinders) followed by n rotation draws. Antithetic odd
    // samples reflect the whole block in place.
    std::vector<double> u_all;
    std::vector<int> zone;
    std::vector<int> cylinder;
    std::vector<double> unit_gamma;  // n Gamma(k, 1) draws
    std::vector<double> rotation_s;  // tilted latency + disturbance delay
    std::vector<double> transfer_time_s;
    std::vector<int> order;
    std::vector<uint64_t> sort_key;
    std::vector<double> seek_dist;
    std::vector<double> seek_time_s;
  };
  Scratch scratch_;
};

// Replicated importance-sampled estimators, sharded exactly like
// replication.h: replication r is seeded with SubstreamSeed(base_seed, r),
// runs rounds_per_replication tilted rounds, and the weighted tallies are
// reduced in replication order — bit-identical at every thread count.
//
// `config` and `sizes` obey ImportanceSampler::Create's restrictions.
// options.theta == 0 derives the tilt with AutoTiltParameter once and
// shares it across replications.

// P[T_N >= round_length] (the late/overrun probability).
common::StatusOr<ImportanceSampleEstimate> EstimateLateProbabilityIS(
    const disk::DiskGeometry& geometry, const disk::SeekTimeModel& seek,
    int num_streams, std::shared_ptr<const workload::SizeDistribution> sizes,
    const SimulatorConfig& config, int rounds_per_replication,
    const ReplicationOptions& replication,
    const ImportanceSamplingOptions& options);

// P[a given stream glitches in a round]: the weighted mean of the
// per-round glitch fraction.
common::StatusOr<ImportanceSampleEstimate> EstimateGlitchProbabilityIS(
    const disk::DiskGeometry& geometry, const disk::SeekTimeModel& seek,
    int num_streams, std::shared_ptr<const workload::SizeDistribution> sizes,
    const SimulatorConfig& config, int rounds_per_replication,
    const ReplicationOptions& replication,
    const ImportanceSamplingOptions& options);

// P[stream suffers >= g glitches in m rounds] = BinomialTailExact(m,
// p_glitch, g) at the importance-sampled p_glitch (eq. 3.3.4 with the
// simulated per-round probability). Both CI endpoints are mapped through
// the monotone binomial tail.
common::StatusOr<ErrorProbabilityISEstimate> EstimateErrorProbabilityIS(
    const disk::DiskGeometry& geometry, const disk::SeekTimeModel& seek,
    int num_streams, std::shared_ptr<const workload::SizeDistribution> sizes,
    const SimulatorConfig& config, int m, int g, int rounds_per_replication,
    const ReplicationOptions& replication,
    const ImportanceSamplingOptions& options);

}  // namespace zonestream::sim

#endif  // ZONESTREAM_SIM_IMPORTANCE_SAMPLING_H_
