// Client-buffer prefetching (the §6 outlook: "buffering data on the
// server and/or the client would enable a more efficient disk scheduling
// by preloading fragments ahead of time and saving resources for
// heavy-load periods").
//
// Each stream owns a client buffer of up to `buffer_fragments` prefetched
// fragments. Per round:
//   1. streams with an empty buffer issue a *mandatory* request (their
//      display stalls — a glitch — if it misses the round deadline);
//      streams with buffered data consume one buffered fragment instead;
//   2. after the mandatory SCAN batch, the leftover round time prefetches
//      upcoming fragments for the streams with the lowest buffer levels.
// The long-run load is unchanged (one fragment per stream per round);
// prefetching only moves work from overloaded rounds into idle ones,
// absorbing service-time variance. buffer_fragments = 0 reproduces the
// paper's bufferless model exactly.
#ifndef ZONESTREAM_SIM_PREFETCH_SIMULATOR_H_
#define ZONESTREAM_SIM_PREFETCH_SIMULATOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "disk/disk_geometry.h"
#include "disk/seek_model.h"
#include "numeric/random.h"
#include "workload/size_distribution.h"

namespace zonestream::sim {

// Prefetch simulation knobs.
struct PrefetchSimulatorConfig {
  double round_length_s = 1.0;
  int buffer_fragments = 2;  // client buffer capacity (0 = paper's model)
  uint64_t seed = 42;
};

// Aggregates of a prefetch simulation run.
struct PrefetchRunResult {
  int64_t rounds = 0;
  int64_t stream_rounds = 0;        // rounds x streams
  int64_t glitches = 0;             // display stalls
  double glitch_rate = 0.0;         // glitches / stream_rounds
  int64_t mandatory_requests = 0;   // buffer-empty fetches
  int64_t prefetched_fragments = 0; // fetched ahead of time
  double mean_buffer_level = 0.0;   // average buffered fragments per stream
};

// Single-disk prefetching simulator. Not thread-safe.
class PrefetchRoundSimulator {
 public:
  static common::StatusOr<PrefetchRoundSimulator> Create(
      const disk::DiskGeometry& geometry, const disk::SeekTimeModel& seek,
      int num_streams,
      std::shared_ptr<const workload::SizeDistribution> sizes,
      const PrefetchSimulatorConfig& config);

  // Simulates `rounds` rounds (the first `warmup` rounds fill buffers and
  // are excluded from the statistics).
  PrefetchRunResult Run(int rounds, int warmup = 50);

 private:
  PrefetchRoundSimulator(
      const disk::DiskGeometry& geometry, const disk::SeekTimeModel& seek,
      int num_streams,
      std::shared_ptr<const workload::SizeDistribution> sizes,
      const PrefetchSimulatorConfig& config);

  disk::DiskGeometry geometry_;
  disk::SeekTimeModel seek_;
  int num_streams_;
  std::shared_ptr<const workload::SizeDistribution> sizes_;
  PrefetchSimulatorConfig config_;
  numeric::Rng rng_;
  int arm_cylinder_ = 0;
  bool ascending_ = true;
  std::vector<int> buffered_;  // fragments buffered ahead, per stream
};

}  // namespace zonestream::sim

#endif  // ZONESTREAM_SIM_PREFETCH_SIMULATOR_H_
