#include "sim/round_simulator.h"

#include <algorithm>
#include <cstdlib>
#include <numeric>
#include <string>
#include <utility>

#include "common/check.h"
#include "numeric/random.h"
#include "numeric/sort_network.h"
#include "sim/batch_kernels.h"
#include "obs/metrics.h"
#include "obs/round_trace.h"

namespace zonestream::sim {

namespace {

// Substream index for the disturbance-injection RNG. Keeping the injected
// delays on their own stream means enabling disturbances never perturbs
// the request positions/sizes/latencies drawn from the main stream.
constexpr uint64_t kDisturbanceSubstream = 0x64697374;  // "dist"

}  // namespace

RoundSimulator::RoundSimulator(
    const disk::DiskGeometry& geometry, const disk::SeekTimeModel& seek,
    int num_streams,
    std::vector<std::unique_ptr<workload::FragmentSource>> sources,
    std::unique_ptr<fault::FaultInjector> fault_injector,
    const SimulatorConfig& config)
    : geometry_(geometry),
      seek_(seek),
      num_streams_(num_streams),
      sources_(std::move(sources)),
      config_(config),
      rng_(config.seed),
      disturbance_rng_(
          numeric::SubstreamSeed(config.seed, kDisturbanceSubstream)),
      fault_injector_(std::move(fault_injector)) {
  if (config_.metrics != nullptr) {
    obs::Registry* registry = config_.metrics;
    Metrics metrics;
    metrics.rounds = registry->GetCounter("sim.rounds");
    metrics.requests = registry->GetCounter("sim.requests");
    metrics.glitches = registry->GetCounter("sim.glitches");
    metrics.overruns = registry->GetCounter("sim.overruns");
    metrics.disturbances = registry->GetCounter("sim.disturbances");
    metrics.service_time_s =
        registry->GetHistogram("sim.round.service_time_s");
    metrics.seek_s = registry->GetHistogram("sim.round.seek_s");
    metrics.rotation_s = registry->GetHistogram("sim.round.rotation_s");
    metrics.transfer_s = registry->GetHistogram("sim.round.transfer_s");
    metrics.zone_hits.reserve(geometry_.num_zones());
    for (int z = 0; z < geometry_.num_zones(); ++z) {
      metrics.zone_hits.push_back(
          registry->GetCounter("sim.zone_hits." + std::to_string(z)));
    }
    metrics_ = std::move(metrics);
  }
  // Batched size draws need every stream on one shared i.i.d.
  // distribution; anything else (per-stream families, AR(1) state) falls
  // back to per-stream draws inside the batched kernel.
  shared_iid_ = sources_.front()->iid_distribution();
  for (const auto& source : sources_) {
    if (source->iid_distribution() != shared_iid_) {
      shared_iid_ = nullptr;
      break;
    }
  }
  const size_t n = static_cast<size_t>(num_streams_);
  scratch_.u_pos.resize(2 * n);
  scratch_.cylinder.resize(n);
  scratch_.zone.resize(n);
  scratch_.rate_bps.resize(n);
  scratch_.bytes.resize(n);
  scratch_.rotation_s.resize(n);
  scratch_.order.resize(n);
  scratch_.sort_key.resize(n);
  scratch_.transfer_time_s.resize(n);
  scratch_.seek_dist.resize(n);
  scratch_.seek_time_s.resize(n);
  scratch_.zone_hits.resize(geometry_.num_zones());
}

common::StatusOr<RoundSimulator> RoundSimulator::Create(
    const disk::DiskGeometry& geometry, const disk::SeekTimeModel& seek,
    int num_streams, const FragmentSourceFactory& source_factory,
    const SimulatorConfig& config) {
  if (num_streams <= 0) {
    return common::Status::InvalidArgument("num_streams must be positive");
  }
  if (config.round_length_s <= 0.0) {
    return common::Status::InvalidArgument("round length must be positive");
  }
  if (source_factory == nullptr) {
    return common::Status::InvalidArgument("source factory is null");
  }
  std::vector<std::unique_ptr<workload::FragmentSource>> sources;
  sources.reserve(num_streams);
  for (int i = 0; i < num_streams; ++i) {
    auto source = source_factory(i);
    if (source == nullptr) {
      return common::Status::InvalidArgument("source factory returned null");
    }
    sources.push_back(std::move(source));
  }
  std::unique_ptr<fault::FaultInjector> injector;
  if (!config.faults.empty()) {
    auto created = fault::FaultInjector::Create(
        config.faults, geometry.num_zones(), config.seed, config.metrics,
        "sim.fault");
    if (!created.ok()) return created.status();
    injector = *std::move(created);
  }
  return RoundSimulator(geometry, seek, num_streams, std::move(sources),
                        std::move(injector), config);
}

FragmentSourceFactory RoundSimulator::IidFactory(
    std::shared_ptr<const workload::SizeDistribution> distribution) {
  ZS_CHECK(distribution != nullptr);
  return [distribution](int /*stream_id*/) {
    return std::make_unique<workload::IidSizeSource>(distribution);
  };
}

RoundOutcome RoundSimulator::RunRound() {
  // The fault models advance at the round boundary, before any request is
  // drawn; a failed disk still draws its round (see FinishDiskFailedRound).
  if (fault_injector_ != nullptr) fault_injector_->BeginRound(num_streams_);
  return config_.batched_kernel ? RunRoundBatched() : RunRoundScalar();
}

RoundOutcome RoundSimulator::RunRoundScalar() {
  const bool disk_failed =
      fault_injector_ != nullptr && fault_injector_->disk_failed();
  const bool track_delays = config_.truncate_at_deadline;
  if (track_delays) {
    scratch_.dist_delay_s.assign(num_streams_, 0.0);
    scratch_.fault_delay_s.assign(num_streams_, 0.0);
  }
  // Issue one request per stream at a uniform-over-capacity position.
  std::vector<sched::DiskRequest> requests;
  requests.reserve(num_streams_);
  int disturbances = 0;
  double disturbance_delay_s = 0.0;
  double fault_delay_s = 0.0;
  int faulted_requests = 0;
  for (int stream = 0; stream < num_streams_; ++stream) {
    const disk::DiskPosition position =
        config_.position_sampler
            ? config_.position_sampler(geometry_, &rng_)
            : geometry_.SampleUniformPosition(&rng_);
    sched::DiskRequest request;
    request.stream_id = stream;
    request.cylinder = position.cylinder;
    request.zone = position.zone;
    request.transfer_rate_bps = position.transfer_rate_bps;
    request.bytes = sources_[stream]->NextFragmentBytes(&rng_);
    request.rotational_latency_s =
        rng_.Uniform(0.0, geometry_.rotation_time());
    // Failure injection: sporadic extra delay, charged with the rotational
    // latency (any additive slot in the per-request service works). Drawn
    // from the dedicated substream so the main stream is undisturbed.
    const DisturbanceConfig& disturbance = config_.disturbance;
    if (disturbance.probability > 0.0 &&
        disturbance_rng_.Uniform01() < disturbance.probability) {
      const double delay = disturbance_rng_.Uniform(disturbance.delay_min_s,
                                                    disturbance.delay_max_s);
      request.rotational_latency_s += delay;
      ++disturbances;
      disturbance_delay_s += delay;
      if (track_delays) scratch_.dist_delay_s[stream] = delay;
    }
    // Structured faults, same additive slot, consulted in issue order so
    // both kernels consume the fault substreams identically. A failed
    // disk serves nothing, so no per-request fault draws happen there.
    if (fault_injector_ != nullptr && !disk_failed) {
      const fault::RequestFaultContext context{stream, stream, request.zone,
                                               request.cylinder};
      const double delay = fault_injector_->DelayFor(context);
      if (delay > 0.0) {
        request.rotational_latency_s += delay;
        ++faulted_requests;
        fault_delay_s += delay;
        if (track_delays) scratch_.fault_delay_s[stream] = delay;
      }
      request.transfer_rate_bps *=
          fault_injector_->RateMultiplier(request.zone);
    }
    requests.push_back(request);
  }
  if (disk_failed) {
    std::fill(scratch_.zone_hits.begin(), scratch_.zone_hits.end(), 0);
    for (const sched::DiskRequest& request : requests) {
      ++scratch_.zone_hits[request.zone];
    }
    return FinishDiskFailedRound();
  }

  // Arm policy. One-directional SCAN must return the arm to cylinder 0
  // between rounds; that return sweep is disk time like any other seek, so
  // it is charged to this round's service time (Oyang's worst-case bound
  // also accounts a full-stroke budget). legacy_free_arm_reset preserves
  // the old teleporting behavior for comparison.
  double return_seek_s = 0.0;
  sched::SweepDirection direction = sched::SweepDirection::kAscending;
  if (config_.sweep_policy == SweepPolicy::kAlternate) {
    direction = ascending_ ? sched::SweepDirection::kAscending
                           : sched::SweepDirection::kDescending;
  } else {
    if (!config_.legacy_free_arm_reset && arm_cylinder_ != 0) {
      return_seek_s = seek_.SeekTime(arm_cylinder_);
    }
    arm_cylinder_ = 0;
  }
  sched::OrderRequests(&requests, config_.ordering, arm_cylinder_, direction);
  const sched::RoundTiming timing =
      sched::ExecuteScanRound(seek_, requests, arm_cylinder_);

  RoundOutcome outcome;
  outcome.total_service_time_s =
      return_seek_s + timing.total_service_time_s;
  outcome.overran = outcome.total_service_time_s > config_.round_length_s;
  int last_on_time_cylinder = arm_cylinder_;
  for (size_t i = 0; i < timing.per_request.size(); ++i) {
    if (return_seek_s + timing.per_request[i].completion_s >
        config_.round_length_s) {
      outcome.glitched_streams.push_back(timing.per_request[i].stream_id);
    } else {
      last_on_time_cylinder = requests[i].cylinder;
    }
  }
  // Unfinished transfers are dropped at the deadline: the arm ends at the
  // last request it fully served (or at the aborted request's cylinder,
  // which for SCAN is adjacent — the difference is below seek resolution).
  arm_cylinder_ = outcome.glitched_streams.empty()
                      ? timing.final_arm_cylinder
                      : last_on_time_cylinder;
  ascending_ = !ascending_;

  // Observability: per-round decomposition into the trace sink and the
  // metric registry. The injected disturbance and fault delays ride in
  // the rotation slot of the per-request timings, so they are subtracted
  // back out to keep seek + rotation + transfer + disturbance + fault ==
  // service time.
  if (config_.trace != nullptr || metrics_.has_value()) {
    RoundBreakdown breakdown;
    breakdown.seek_s = return_seek_s;
    for (const sched::RequestTiming& rt : timing.per_request) {
      breakdown.seek_s += rt.seek_s;
      breakdown.rotation_s += rt.rotation_s;
      breakdown.transfer_s += rt.transfer_s;
    }
    breakdown.rotation_s -= disturbance_delay_s + fault_delay_s;
    breakdown.disturbance_delay_s = disturbance_delay_s;
    breakdown.disturbances = disturbances;
    breakdown.fault_delay_s = fault_delay_s;
    breakdown.faulted_requests = faulted_requests;
    breakdown.service_time_s = outcome.total_service_time_s;
    if (config_.truncate_at_deadline && outcome.overran) {
      const size_t n = timing.per_request.size();
      std::vector<int> order(n);
      std::vector<double> seek_by_pos(n);
      std::vector<double> rotation_by_pos(n);
      std::vector<double> transfer_by_pos(n);
      for (size_t i = 0; i < n; ++i) {
        order[i] = requests[i].stream_id;
        seek_by_pos[i] = timing.per_request[i].seek_s;
        rotation_by_pos[i] = timing.per_request[i].rotation_s;
        transfer_by_pos[i] = timing.per_request[i].transfer_s;
      }
      TruncateBreakdown(&breakdown, order, seek_by_pos, rotation_by_pos,
                        transfer_by_pos, return_seek_s);
    }
    std::fill(scratch_.zone_hits.begin(), scratch_.zone_hits.end(), 0);
    for (const sched::DiskRequest& request : requests) {
      ++scratch_.zone_hits[request.zone];
    }
    EmitRoundObservability(outcome, breakdown);
  }
  ++rounds_run_;
  return outcome;
}

RoundOutcome RoundSimulator::RunRoundBatched() {
  const int n = num_streams_;
  RoundScratch& s = scratch_;
  const bool disk_failed =
      fault_injector_ != nullptr && fault_injector_->disk_failed();
  const bool track_delays = config_.truncate_at_deadline;
  if (track_delays) {
    s.dist_delay_s.assign(static_cast<size_t>(n), 0.0);
    s.fault_delay_s.assign(static_cast<size_t>(n), 0.0);
  }

  // Positions. The default placement needs two uniforms per request —
  // zone through the geometry's alias table, cylinder within the zone —
  // drawn as two whole-round batches. A custom sampler is an opaque
  // callback and falls back to per-stream calls.
  if (!config_.position_sampler) {
    rng_.FillUniform01(s.u_pos.data(), 2 * static_cast<size_t>(n));
    const double* u_zone = s.u_pos.data();
    const double* u_cylinder = s.u_pos.data() + n;
    // Hoisted table pointers: the zone array is contiguous, so indexing
    // it directly avoids a cross-TU accessor call (and its bounds
    // checks) per request on the hottest loop in the simulator.
    const disk::AliasTable& alias = geometry_.zone_alias();
    const disk::ZoneInfo* zones = &geometry_.zone(0);
    int* zone = s.zone.data();
    int* cylinder = s.cylinder.data();
    double* rate_bps = s.rate_bps.data();
    for (int i = 0; i < n; ++i) {
      const int z = alias.Sample(u_zone[i]);
      const disk::ZoneInfo& zi = zones[z];
      int offset = static_cast<int>(u_cylinder[i] * zi.num_cylinders);
      if (offset >= zi.num_cylinders) offset = zi.num_cylinders - 1;
      zone[i] = z;
      cylinder[i] = zi.first_cylinder + offset;
      rate_bps[i] = zi.transfer_rate_bps;
    }
  } else {
    for (int i = 0; i < n; ++i) {
      const disk::DiskPosition position =
          config_.position_sampler(geometry_, &rng_);
      s.zone[i] = position.zone;
      s.cylinder[i] = position.cylinder;
      s.rate_bps[i] = position.transfer_rate_bps;
    }
  }

  // Sizes: one batched fill when every stream shares one i.i.d.
  // distribution (the Marsaglia–Tsang constants are then reused across
  // the whole round), else per-stream draws.
  if (shared_iid_ != nullptr) {
    shared_iid_->FillSamples(&rng_, s.bytes.data(), n);
  } else {
    for (int i = 0; i < n; ++i) {
      s.bytes[i] = sources_[i]->NextFragmentBytes(&rng_);
    }
  }

  // Rotational latencies in one batch.
  rng_.FillUniform(0.0, geometry_.rotation_time(), s.rotation_s.data(), n);

  // Failure injection, bit-identical to the scalar kernel: the dedicated
  // substream is consumed in the same per-request order.
  int disturbances = 0;
  double disturbance_delay_s = 0.0;
  const DisturbanceConfig& disturbance = config_.disturbance;
  if (disturbance.probability > 0.0) {
    for (int i = 0; i < n; ++i) {
      if (disturbance_rng_.Uniform01() < disturbance.probability) {
        const double delay = disturbance_rng_.Uniform(disturbance.delay_min_s,
                                                      disturbance.delay_max_s);
        s.rotation_s[i] += delay;
        ++disturbances;
        disturbance_delay_s += delay;
        if (track_delays) s.dist_delay_s[i] = delay;
      }
    }
  }

  // Structured faults, consumed in the same issue order as the scalar
  // kernel so the fault substream positions match across kernels.
  double fault_delay_s = 0.0;
  int faulted_requests = 0;
  if (fault_injector_ != nullptr && !disk_failed) {
    for (int i = 0; i < n; ++i) {
      const fault::RequestFaultContext context{i, i, s.zone[i],
                                               s.cylinder[i]};
      const double delay = fault_injector_->DelayFor(context);
      if (delay > 0.0) {
        s.rotation_s[i] += delay;
        ++faulted_requests;
        fault_delay_s += delay;
        if (track_delays) s.fault_delay_s[i] = delay;
      }
      s.rate_bps[i] *= fault_injector_->RateMultiplier(s.zone[i]);
    }
  }
  if (disk_failed) {
    std::fill(s.zone_hits.begin(), s.zone_hits.end(), 0);
    for (int i = 0; i < n; ++i) ++s.zone_hits[s.zone[i]];
    return FinishDiskFailedRound();
  }

  // Arm policy, identical to the scalar kernel.
  double return_seek_s = 0.0;
  sched::SweepDirection direction = sched::SweepDirection::kAscending;
  if (config_.sweep_policy == SweepPolicy::kAlternate) {
    direction = ascending_ ? sched::SweepDirection::kAscending
                           : sched::SweepDirection::kDescending;
  } else {
    if (!config_.legacy_free_arm_reset && arm_cylinder_ != 0) {
      return_seek_s = seek_.SeekTime(arm_cylinder_);
    }
    arm_cylinder_ = 0;
  }

  // Service order as an index permutation over the SoA (the requests
  // themselves never move). For SCAN the permutation is one flat uint64
  // sort of (cylinder, index) keys — bitwise-complemented cylinders give
  // the descending sweep with the same ascending-index tie-break as the
  // scalar kernel's stable sort.
  switch (config_.ordering) {
    case sched::OrderingPolicy::kFcfs:
      for (int i = 0; i < n; ++i) s.order[i] = i;
      break;
    case sched::OrderingPolicy::kScan: {
      // Keys are unique (the index lives in the low bits), so any sort
      // yields the same ascending permutation; the algorithm cannot
      // change results. The common case — at most 32 streams on a disk
      // with fewer than 2^26 cylinders — packs (cylinder, index) into
      // 32 bits and runs a branch-free sorting network, several times
      // faster than std::sort on a fresh random permutation per round.
      const bool network_ok =
          n <= static_cast<int>(numeric::kSortNetworkMaxN) &&
          geometry_.cylinders() < (1 << 26);
      const bool ascending =
          direction == sched::SweepDirection::kAscending;
      if (network_ok) {
        uint32_t keys[numeric::kSortNetworkMaxN];
        constexpr uint32_t kCylMask = (1u << 26) - 1u;
        if (ascending) {
          for (int i = 0; i < n; ++i) {
            keys[i] = (static_cast<uint32_t>(s.cylinder[i]) << 6) |
                      static_cast<uint32_t>(i);
          }
        } else {
          for (int i = 0; i < n; ++i) {
            keys[i] = ((~static_cast<uint32_t>(s.cylinder[i]) & kCylMask)
                       << 6) |
                      static_cast<uint32_t>(i);
          }
        }
        numeric::SortU32Network(keys, static_cast<size_t>(n));
        for (int i = 0; i < n; ++i) {
          s.order[i] = static_cast<int>(keys[i] & 0x3fu);
        }
        break;
      }
      if (ascending) {
        for (int i = 0; i < n; ++i) {
          s.sort_key[i] = (static_cast<uint64_t>(
                               static_cast<uint32_t>(s.cylinder[i]))
                           << 32) |
                          static_cast<uint32_t>(i);
        }
      } else {
        for (int i = 0; i < n; ++i) {
          s.sort_key[i] = (static_cast<uint64_t>(
                               ~static_cast<uint32_t>(s.cylinder[i]))
                           << 32) |
                          static_cast<uint32_t>(i);
        }
      }
      std::sort(s.sort_key.begin(), s.sort_key.end());
      for (int i = 0; i < n; ++i) {
        s.order[i] = static_cast<int>(s.sort_key[i] & 0xffffffffu);
      }
      break;
    }
    case sched::OrderingPolicy::kSstf: {
      for (int i = 0; i < n; ++i) s.order[i] = i;
      int arm = arm_cylinder_;
      for (int served = 0; served < n; ++served) {
        int best = served;
        int best_distance = std::abs(s.cylinder[s.order[served]] - arm);
        for (int i = served + 1; i < n; ++i) {
          const int distance = std::abs(s.cylinder[s.order[i]] - arm);
          if (distance < best_distance) {
            best = i;
            best_distance = distance;
          }
        }
        std::swap(s.order[served], s.order[best]);
        arm = s.cylinder[s.order[served]];
      }
      break;
    }
  }

  // Per-request terms of the sweep, evaluated wide before the strictly-
  // ordered walk (sim/batch_kernels.h): transfers in SoA index order,
  // seeks in service order over the arm walk's distances (an integer
  // recurrence, cheap to peel off). Element-wise arithmetic is order-
  // independent, so this is the scalar sweep's values exactly.
  internal::TransferTimes(s.bytes.data(), s.rate_bps.data(),
                          s.transfer_time_s.data(), static_cast<size_t>(n));
  {
    int walk_arm = arm_cylinder_;
    for (int pos = 0; pos < n; ++pos) {
      const int cylinder = s.cylinder[s.order[pos]];
      s.seek_dist[pos] = std::abs(cylinder - walk_arm);
      walk_arm = cylinder;
    }
  }
  internal::SeekTimes(seek_, s.seek_dist.data(), s.seek_time_s.data(),
                      static_cast<size_t>(n));

  // The fused sweep proper: cumulative clock over seek + rotation +
  // transfer (exactly as sched::ExecuteScanRound, without materializing
  // request structs), with deadline checks folded into the same pass.
  RoundOutcome outcome;
  double clock = 0.0;
  int last_on_time_cylinder = arm_cylinder_;
  for (int pos = 0; pos < n; ++pos) {
    const int i = s.order[pos];
    clock += s.seek_time_s[pos] + s.rotation_s[i] + s.transfer_time_s[i];
    if (return_seek_s + clock > config_.round_length_s) {
      outcome.glitched_streams.push_back(i);  // stream id == SoA index
    } else {
      last_on_time_cylinder = s.cylinder[i];
    }
  }

  outcome.total_service_time_s = return_seek_s + clock;
  outcome.overran = outcome.total_service_time_s > config_.round_length_s;
  arm_cylinder_ = outcome.glitched_streams.empty()
                      ? s.cylinder[s.order[n - 1]]
                      : last_on_time_cylinder;
  ascending_ = !ascending_;

  if (config_.trace != nullptr || metrics_.has_value()) {
    // Phase sums only feed the observability sink, so they accumulate
    // here — in the same service order as before — rather than inside
    // the hot sweep.
    double seek_sum = return_seek_s;
    double rotation_sum = 0.0;
    double transfer_sum = 0.0;
    for (int pos = 0; pos < n; ++pos) {
      const int i = s.order[pos];
      seek_sum += s.seek_time_s[pos];
      rotation_sum += s.rotation_s[i];
      transfer_sum += s.transfer_time_s[i];
    }
    RoundBreakdown breakdown;
    breakdown.seek_s = seek_sum;
    breakdown.rotation_s =
        rotation_sum - disturbance_delay_s - fault_delay_s;
    breakdown.transfer_s = transfer_sum;
    breakdown.disturbance_delay_s = disturbance_delay_s;
    breakdown.disturbances = disturbances;
    breakdown.fault_delay_s = fault_delay_s;
    breakdown.faulted_requests = faulted_requests;
    breakdown.service_time_s = outcome.total_service_time_s;
    if (config_.truncate_at_deadline && outcome.overran) {
      // Per-position phase lengths are already materialized; only the
      // rotation column needs gathering into service order.
      std::vector<double> seek_by_pos(static_cast<size_t>(n));
      std::vector<double> rotation_by_pos(static_cast<size_t>(n));
      std::vector<double> transfer_by_pos(static_cast<size_t>(n));
      for (int pos = 0; pos < n; ++pos) {
        const int i = s.order[pos];
        seek_by_pos[pos] = s.seek_time_s[pos];
        rotation_by_pos[pos] = s.rotation_s[i];
        transfer_by_pos[pos] = s.transfer_time_s[i];
      }
      TruncateBreakdown(&breakdown, s.order, seek_by_pos, rotation_by_pos,
                        transfer_by_pos, return_seek_s);
    }
    std::fill(s.zone_hits.begin(), s.zone_hits.end(), 0);
    for (int i = 0; i < n; ++i) ++s.zone_hits[s.zone[i]];
    EmitRoundObservability(outcome, breakdown);
  }
  ++rounds_run_;
  return outcome;
}

void RoundSimulator::ResetForReplication(uint64_t seed,
                                         int trace_source_id) {
  ZS_CHECK(SupportsReplicationReset());
  config_.seed = seed;
  config_.trace_source_id = trace_source_id;
  rng_ = numeric::Rng(seed);
  disturbance_rng_ =
      numeric::Rng(numeric::SubstreamSeed(seed, kDisturbanceSubstream));
  arm_cylinder_ = 0;
  ascending_ = true;
  rounds_run_ = 0;
}

RoundOutcome RoundSimulator::FinishDiskFailedRound() {
  // No request is served: every stream glitches, the disk is idle for the
  // whole round, and the arm stays where the last healthy round left it.
  RoundOutcome outcome;
  outcome.total_service_time_s = 0.0;
  outcome.overran = false;
  outcome.glitched_streams.resize(static_cast<size_t>(num_streams_));
  std::iota(outcome.glitched_streams.begin(), outcome.glitched_streams.end(),
            0);
  ascending_ = !ascending_;
  if (config_.trace != nullptr || metrics_.has_value()) {
    RoundBreakdown breakdown;
    breakdown.disk_failed = true;
    breakdown.truncated_requests = num_streams_;
    EmitRoundObservability(outcome, breakdown);
  }
  ++rounds_run_;
  return outcome;
}

void RoundSimulator::TruncateBreakdown(
    RoundBreakdown* breakdown, const std::vector<int>& order,
    const std::vector<double>& seek_by_pos,
    const std::vector<double>& rotation_by_pos,
    const std::vector<double>& transfer_by_pos, double return_seek_s) const {
  // Walk the sweep once more, clipping each phase against the time left
  // before the deadline. `rotation_by_pos` includes the injected delays
  // (that is the slot they ride in), so the base rotation is recovered by
  // subtracting the per-stream delay records.
  double remaining = config_.round_length_s;
  bool cut = false;
  const auto charge = [&remaining, &cut](double length, double* sum) {
    const double clamped = std::max(length, 0.0);
    const double take = std::min(clamped, remaining);
    remaining -= take;
    *sum += take;
    if (take < clamped) cut = true;
  };
  double seek_sum = 0.0;
  double rotation_sum = 0.0;
  double transfer_sum = 0.0;
  double disturbance_sum = 0.0;
  double fault_sum = 0.0;
  int truncated = 0;
  charge(return_seek_s, &seek_sum);
  for (size_t pos = 0; pos < order.size(); ++pos) {
    const int stream = order[pos];
    const double dist_delay = scratch_.dist_delay_s[stream];
    const double fault_delay = scratch_.fault_delay_s[stream];
    cut = false;
    charge(seek_by_pos[pos], &seek_sum);
    charge(rotation_by_pos[pos] - dist_delay - fault_delay, &rotation_sum);
    charge(dist_delay, &disturbance_sum);
    charge(fault_delay, &fault_sum);
    charge(transfer_by_pos[pos], &transfer_sum);
    if (cut) ++truncated;
  }
  breakdown->seek_s = seek_sum;
  breakdown->rotation_s = rotation_sum;
  breakdown->transfer_s = transfer_sum;
  breakdown->disturbance_delay_s = disturbance_sum;
  breakdown->fault_delay_s = fault_sum;
  breakdown->truncated_requests = truncated;
  // Summed in the exact order of the trace invariant, so the recorded
  // event's imbalance is identically zero.
  breakdown->service_time_s = seek_sum + rotation_sum + transfer_sum +
                              disturbance_sum + fault_sum;
}

void RoundSimulator::EmitRoundObservability(const RoundOutcome& outcome,
                                            const RoundBreakdown& breakdown) {
  const int glitches = static_cast<int>(outcome.glitched_streams.size());
  if (config_.trace != nullptr) {
    obs::RoundTraceEvent event;
    event.round = rounds_run_;
    event.source_id = config_.trace_source_id;
    event.num_requests = num_streams_;
    event.service_time_s = breakdown.service_time_s;
    event.seek_s = breakdown.seek_s;
    event.rotation_s = breakdown.rotation_s;
    event.transfer_s = breakdown.transfer_s;
    event.disturbance_delay_s = breakdown.disturbance_delay_s;
    event.disturbances = breakdown.disturbances;
    event.fault_delay_s = breakdown.fault_delay_s;
    event.faulted_requests = breakdown.faulted_requests;
    event.glitches = glitches;
    event.overran = outcome.overran;
    event.disk_failed = breakdown.disk_failed;
    event.truncated_requests = breakdown.truncated_requests;
    event.leftover_s =
        std::max(0.0, config_.round_length_s - breakdown.service_time_s);
    event.zone_hits.assign(scratch_.zone_hits.begin(),
                           scratch_.zone_hits.end());
    config_.trace->Record(std::move(event));
  }
  if (metrics_.has_value()) {
    metrics_->rounds->Increment();
    metrics_->requests->Increment(num_streams_);
    metrics_->glitches->Increment(glitches);
    if (outcome.overran) metrics_->overruns->Increment();
    metrics_->disturbances->Increment(breakdown.disturbances);
    metrics_->service_time_s->Record(breakdown.service_time_s);
    metrics_->seek_s->Record(breakdown.seek_s);
    metrics_->rotation_s->Record(breakdown.rotation_s);
    metrics_->transfer_s->Record(breakdown.transfer_s);
    for (int z = 0; z < geometry_.num_zones(); ++z) {
      if (scratch_.zone_hits[z] != 0) {
        metrics_->zone_hits[z]->Increment(scratch_.zone_hits[z]);
      }
    }
  }
}

RoundSimulatorState RoundSimulator::ExportState() const {
  RoundSimulatorState state;
  state.rng_state = rng_.SaveState();
  state.disturbance_rng_state = disturbance_rng_.SaveState();
  state.has_fault_injector = fault_injector_ != nullptr;
  if (fault_injector_ != nullptr) {
    state.fault_injector = fault_injector_->ExportState();
  }
  state.arm_cylinder = arm_cylinder_;
  state.ascending = ascending_;
  state.rounds_run = rounds_run_;
  state.source_states.reserve(sources_.size());
  for (const auto& source : sources_) {
    std::vector<uint64_t> words;
    source->ExportState(&words);
    state.source_states.push_back(std::move(words));
  }
  return state;
}

common::Status RoundSimulator::ImportState(const RoundSimulatorState& state) {
  if (state.source_states.size() != sources_.size()) {
    return common::Status::InvalidArgument(
        "simulator state stream count does not match num_streams");
  }
  if (state.arm_cylinder < 0 || state.arm_cylinder >= geometry_.cylinders()) {
    return common::Status::InvalidArgument(
        "simulator state arm cylinder out of the disk's range");
  }
  if (state.rounds_run < 0) {
    return common::Status::InvalidArgument(
        "simulator state round counter must be non-negative");
  }
  if (state.has_fault_injector != (fault_injector_ != nullptr)) {
    return common::Status::InvalidArgument(
        "simulator state fault-injector presence does not match the config "
        "(was the snapshot taken with a different fault spec?)");
  }
  numeric::Rng rng(config_.seed);
  if (auto status = rng.LoadState(state.rng_state); !status.ok()) {
    return status;
  }
  numeric::Rng disturbance_rng(config_.seed);
  if (auto status = disturbance_rng.LoadState(state.disturbance_rng_state);
      !status.ok()) {
    return status;
  }
  if (fault_injector_ != nullptr) {
    if (auto status = fault_injector_->ImportState(state.fault_injector);
        !status.ok()) {
      return status;
    }
  }
  for (size_t i = 0; i < sources_.size(); ++i) {
    if (auto status = sources_[i]->ImportState(state.source_states[i]);
        !status.ok()) {
      return status;
    }
  }
  rng_ = rng;
  disturbance_rng_ = disturbance_rng;
  arm_cylinder_ = state.arm_cylinder;
  ascending_ = state.ascending;
  rounds_run_ = state.rounds_run;
  return common::Status::Ok();
}

ProbabilityEstimate RoundSimulator::EstimateLateProbability(int rounds) {
  ZS_CHECK_GT(rounds, 0);
  int64_t overruns = 0;
  for (int r = 0; r < rounds; ++r) {
    if (RunRound().overran) ++overruns;
  }
  const numeric::ProportionInterval interval =
      numeric::WilsonInterval(overruns, rounds);
  return ProbabilityEstimate{interval.point, interval.lower, interval.upper,
                             rounds};
}

ProbabilityEstimate RoundSimulator::EstimateGlitchProbability(int rounds) {
  ZS_CHECK_GT(rounds, 0);
  int64_t glitch_events = 0;
  numeric::RunningStats round_fractions;
  for (int r = 0; r < rounds; ++r) {
    const auto glitched =
        static_cast<int64_t>(RunRound().glitched_streams.size());
    glitch_events += glitched;
    round_fractions.Add(static_cast<double>(glitched) /
                        static_cast<double>(num_streams_));
  }
  const int64_t stream_rounds =
      static_cast<int64_t>(rounds) * num_streams_;
  const numeric::ProportionInterval interval =
      config_.legacy_pooled_intervals
          ? numeric::WilsonInterval(glitch_events, stream_rounds)
          : numeric::ClusteredProportionInterval(
                round_fractions.mean(), round_fractions.sample_variance(),
                rounds, num_streams_);
  const double point = static_cast<double>(glitch_events) /
                       static_cast<double>(stream_rounds);
  return ProbabilityEstimate{point, interval.lower, interval.upper,
                             stream_rounds};
}

ProbabilityEstimate RoundSimulator::EstimateErrorProbability(int m, int g,
                                                             int lifetimes) {
  ZS_CHECK_GT(m, 0);
  ZS_CHECK_GE(g, 0);
  ZS_CHECK_GT(lifetimes, 0);
  int64_t exceeding_streams = 0;
  std::vector<int64_t> exceeding_per_lifetime(lifetimes, 0);
  std::vector<int> glitch_counts(num_streams_);
  for (int lifetime = 0; lifetime < lifetimes; ++lifetime) {
    std::fill(glitch_counts.begin(), glitch_counts.end(), 0);
    for (int r = 0; r < m; ++r) {
      const RoundOutcome outcome = RunRound();
      for (int stream : outcome.glitched_streams) ++glitch_counts[stream];
    }
    for (int count : glitch_counts) {
      if (count >= g) ++exceeding_per_lifetime[lifetime];
    }
    exceeding_streams += exceeding_per_lifetime[lifetime];
  }
  const int64_t samples = static_cast<int64_t>(lifetimes) * num_streams_;
  const numeric::ProportionInterval interval =
      config_.legacy_pooled_intervals
          ? numeric::WilsonInterval(exceeding_streams, samples)
          : numeric::ClusteredProportionInterval(exceeding_per_lifetime,
                                                 num_streams_);
  const double point = static_cast<double>(exceeding_streams) /
                       static_cast<double>(samples);
  return ProbabilityEstimate{point, interval.lower, interval.upper, samples};
}

numeric::RunningStats RoundSimulator::SampleServiceTimes(int rounds) {
  ZS_CHECK_GT(rounds, 0);
  numeric::RunningStats stats;
  for (int r = 0; r < rounds; ++r) {
    stats.Add(RunRound().total_service_time_s);
  }
  return stats;
}

}  // namespace zonestream::sim
