#include "sim/round_simulator.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace zonestream::sim {

RoundSimulator::RoundSimulator(
    const disk::DiskGeometry& geometry, const disk::SeekTimeModel& seek,
    int num_streams,
    std::vector<std::unique_ptr<workload::FragmentSource>> sources,
    const SimulatorConfig& config)
    : geometry_(geometry),
      seek_(seek),
      num_streams_(num_streams),
      sources_(std::move(sources)),
      config_(config),
      rng_(config.seed) {}

common::StatusOr<RoundSimulator> RoundSimulator::Create(
    const disk::DiskGeometry& geometry, const disk::SeekTimeModel& seek,
    int num_streams, const FragmentSourceFactory& source_factory,
    const SimulatorConfig& config) {
  if (num_streams <= 0) {
    return common::Status::InvalidArgument("num_streams must be positive");
  }
  if (config.round_length_s <= 0.0) {
    return common::Status::InvalidArgument("round length must be positive");
  }
  if (source_factory == nullptr) {
    return common::Status::InvalidArgument("source factory is null");
  }
  std::vector<std::unique_ptr<workload::FragmentSource>> sources;
  sources.reserve(num_streams);
  for (int i = 0; i < num_streams; ++i) {
    auto source = source_factory(i);
    if (source == nullptr) {
      return common::Status::InvalidArgument("source factory returned null");
    }
    sources.push_back(std::move(source));
  }
  return RoundSimulator(geometry, seek, num_streams, std::move(sources),
                        config);
}

FragmentSourceFactory RoundSimulator::IidFactory(
    std::shared_ptr<const workload::SizeDistribution> distribution) {
  ZS_CHECK(distribution != nullptr);
  return [distribution](int /*stream_id*/) {
    return std::make_unique<workload::IidSizeSource>(distribution);
  };
}

RoundOutcome RoundSimulator::RunRound() {
  // Issue one request per stream at a uniform-over-capacity position.
  std::vector<sched::DiskRequest> requests;
  requests.reserve(num_streams_);
  for (int stream = 0; stream < num_streams_; ++stream) {
    const disk::DiskPosition position =
        config_.position_sampler
            ? config_.position_sampler(geometry_, &rng_)
            : geometry_.SampleUniformPosition(&rng_);
    sched::DiskRequest request;
    request.stream_id = stream;
    request.cylinder = position.cylinder;
    request.zone = position.zone;
    request.transfer_rate_bps = position.transfer_rate_bps;
    request.bytes = sources_[stream]->NextFragmentBytes(&rng_);
    request.rotational_latency_s =
        rng_.Uniform(0.0, geometry_.rotation_time());
    // Failure injection: sporadic extra delay, charged with the rotational
    // latency (any additive slot in the per-request service works).
    const DisturbanceConfig& disturbance = config_.disturbance;
    if (disturbance.probability > 0.0 &&
        rng_.Uniform01() < disturbance.probability) {
      request.rotational_latency_s +=
          rng_.Uniform(disturbance.delay_min_s, disturbance.delay_max_s);
    }
    requests.push_back(request);
  }

  // Arm policy.
  sched::SweepDirection direction = sched::SweepDirection::kAscending;
  if (config_.sweep_policy == SweepPolicy::kAlternate) {
    direction = ascending_ ? sched::SweepDirection::kAscending
                           : sched::SweepDirection::kDescending;
  } else {
    arm_cylinder_ = 0;
  }
  sched::OrderRequests(&requests, config_.ordering, arm_cylinder_, direction);
  const sched::RoundTiming timing =
      sched::ExecuteScanRound(seek_, requests, arm_cylinder_);

  RoundOutcome outcome;
  outcome.total_service_time_s = timing.total_service_time_s;
  outcome.overran = timing.total_service_time_s > config_.round_length_s;
  int last_on_time_cylinder = arm_cylinder_;
  for (size_t i = 0; i < timing.per_request.size(); ++i) {
    if (timing.per_request[i].completion_s > config_.round_length_s) {
      outcome.glitched_streams.push_back(timing.per_request[i].stream_id);
    } else {
      last_on_time_cylinder = requests[i].cylinder;
    }
  }
  // Unfinished transfers are dropped at the deadline: the arm ends at the
  // last request it fully served (or at the aborted request's cylinder,
  // which for SCAN is adjacent — the difference is below seek resolution).
  arm_cylinder_ = outcome.glitched_streams.empty()
                      ? timing.final_arm_cylinder
                      : last_on_time_cylinder;
  ascending_ = !ascending_;
  return outcome;
}

ProbabilityEstimate RoundSimulator::EstimateLateProbability(int rounds) {
  ZS_CHECK_GT(rounds, 0);
  int64_t overruns = 0;
  for (int r = 0; r < rounds; ++r) {
    if (RunRound().overran) ++overruns;
  }
  const numeric::ProportionInterval interval =
      numeric::WilsonInterval(overruns, rounds);
  return ProbabilityEstimate{interval.point, interval.lower, interval.upper,
                             rounds};
}

ProbabilityEstimate RoundSimulator::EstimateGlitchProbability(int rounds) {
  ZS_CHECK_GT(rounds, 0);
  int64_t glitch_events = 0;
  for (int r = 0; r < rounds; ++r) {
    glitch_events += static_cast<int64_t>(RunRound().glitched_streams.size());
  }
  const int64_t stream_rounds =
      static_cast<int64_t>(rounds) * num_streams_;
  const numeric::ProportionInterval interval =
      numeric::WilsonInterval(glitch_events, stream_rounds);
  return ProbabilityEstimate{interval.point, interval.lower, interval.upper,
                             stream_rounds};
}

ProbabilityEstimate RoundSimulator::EstimateErrorProbability(int m, int g,
                                                             int lifetimes) {
  ZS_CHECK_GT(m, 0);
  ZS_CHECK_GE(g, 0);
  ZS_CHECK_GT(lifetimes, 0);
  int64_t exceeding_streams = 0;
  std::vector<int> glitch_counts(num_streams_);
  for (int lifetime = 0; lifetime < lifetimes; ++lifetime) {
    std::fill(glitch_counts.begin(), glitch_counts.end(), 0);
    for (int r = 0; r < m; ++r) {
      const RoundOutcome outcome = RunRound();
      for (int stream : outcome.glitched_streams) ++glitch_counts[stream];
    }
    for (int count : glitch_counts) {
      if (count >= g) ++exceeding_streams;
    }
  }
  const int64_t samples = static_cast<int64_t>(lifetimes) * num_streams_;
  const numeric::ProportionInterval interval =
      numeric::WilsonInterval(exceeding_streams, samples);
  return ProbabilityEstimate{interval.point, interval.lower, interval.upper,
                             samples};
}

numeric::RunningStats RoundSimulator::SampleServiceTimes(int rounds) {
  ZS_CHECK_GT(rounds, 0);
  numeric::RunningStats stats;
  for (int r = 0; r < rounds; ++r) {
    stats.Add(RunRound().total_service_time_s);
  }
  return stats;
}

}  // namespace zonestream::sim
