// Parallel Monte Carlo replication batches for the detailed simulators.
//
// The validation experiments (§4) average thousands of independent
// simulated rounds. This module shards that work into independent
// replications: replication r runs its own simulator instance seeded with
// numeric::SubstreamSeed(base_seed, r), and the per-replication tallies
// are reduced in replication order. Because every replication's sample
// path is a pure function of (base_seed, r) and the reduction order is
// fixed, the aggregate statistics are bit-identical at every thread count
// (see replication_test.cc), while the wall time scales with the pool.
//
// Determinism contract with the batched kernel: the across-thread
// bit-identity above holds for BOTH kernels, because the kernel choice is
// part of the per-replication sample path, not of the scheduling. For a
// fixed SimulatorConfig::batched_kernel value, (base_seed, r) fully
// determines every replication's draws; flipping batched_kernel changes
// the main-stream draw order and therefore the individual sample paths,
// but not their distribution (tests/sim/batch_kernel_test.cc pins the
// two kernels' estimates to statistical agreement).
//
// Observability: any obs::Registry / obs::RoundTraceRecorder set on the
// simulator config is shared by all replications (both are thread-safe);
// each replication's trace events carry source_id = replication index.
#ifndef ZONESTREAM_SIM_REPLICATION_H_
#define ZONESTREAM_SIM_REPLICATION_H_

#include <cstdint>

#include "common/status.h"
#include "common/thread_pool.h"
#include "numeric/statistics.h"
#include "sim/mixed_simulator.h"
#include "sim/round_simulator.h"

namespace zonestream::sim {

// Sharding of a replicated Monte Carlo run.
struct ReplicationOptions {
  int replications = 1;        // independent simulator instances
  uint64_t base_seed = 42;     // substream r is seeded from (base_seed, r)
  common::ThreadPool* pool = nullptr;  // null = the global pool
};

// Estimates p_late = P[T_N >= t] from `rounds_per_replication` rounds in
// each replication (total trials = replications * rounds_per_replication).
// `source_factory` is invoked concurrently from the pool's threads and
// must be thread-safe (RoundSimulator::IidFactory is).
common::StatusOr<ProbabilityEstimate> EstimateLateProbabilityReplicated(
    const disk::DiskGeometry& geometry, const disk::SeekTimeModel& seek,
    int num_streams, const FragmentSourceFactory& source_factory,
    const SimulatorConfig& config, int rounds_per_replication,
    const ReplicationOptions& options);

// Estimates p_glitch = P[a given stream glitches in a round] over the same
// sharding; trials = replications * rounds * num_streams. Per-round glitch
// events are correlated, so the CI clusters by round (see
// RoundSimulator::EstimateGlitchProbability); the pre-fix pooled Wilson
// interval is available via SimulatorConfig::legacy_pooled_intervals.
common::StatusOr<ProbabilityEstimate> EstimateGlitchProbabilityReplicated(
    const disk::DiskGeometry& geometry, const disk::SeekTimeModel& seek,
    int num_streams, const FragmentSourceFactory& source_factory,
    const SimulatorConfig& config, int rounds_per_replication,
    const ReplicationOptions& options);

// Total-service-time moments pooled across replications (RunningStats
// merged in replication order).
common::StatusOr<numeric::RunningStats> SampleServiceTimesReplicated(
    const disk::DiskGeometry& geometry, const disk::SeekTimeModel& seek,
    int num_streams, const FragmentSourceFactory& source_factory,
    const SimulatorConfig& config, int rounds_per_replication,
    const ReplicationOptions& options);

// Replicated mixed continuous+discrete run. Counters are summed and the
// time statistics merged by weighted combination in replication order;
// p95_response_time_s is the completion-weighted mean of the
// per-replication p95s (each replication is an independent queue history,
// so pooling raw samples across replications would mix distinct
// stationary regimes anyway); max_queue_depth is the max over
// replications.
common::StatusOr<MixedRunResult> RunMixedReplicated(
    const disk::DiskGeometry& geometry, const disk::SeekTimeModel& seek,
    int num_continuous,
    std::shared_ptr<const workload::SizeDistribution> continuous_sizes,
    std::shared_ptr<const workload::SizeDistribution> discrete_sizes,
    const MixedSimulatorConfig& config, int rounds_per_replication,
    const ReplicationOptions& options);

}  // namespace zonestream::sim

#endif  // ZONESTREAM_SIM_REPLICATION_H_
