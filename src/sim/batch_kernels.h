// Wide element-wise kernels for the batched round sweep.
//
// The fused sweep's clock chain (a strictly-ordered prefix sum with a
// deadline compare per request) cannot vectorize without changing
// floating-point results, but the two expensive per-request terms that
// feed it can: the transfer time (one double division each) and the
// seek time (a piecewise sqrt/linear curve) depend only on their own
// request, so both evaluate 4 or 8 lanes at a time before the scalar
// walk. Every wide operation (divide, sqrt, multiply, add) is IEEE
// correctly rounded and applied in the scalar expression order, and the
// piecewise branches become per-lane blends of two fully-evaluated
// regimes — so the lanes are bit-identical to the scalar loop on every
// SIMD tier, and the golden round traces hold on any host.
#ifndef ZONESTREAM_SIM_BATCH_KERNELS_H_
#define ZONESTREAM_SIM_BATCH_KERNELS_H_

#include <cstddef>

#include "disk/seek_model.h"

namespace zonestream::sim::internal {

// out[i] = bytes[i] / rate_bps[i].
void TransferTimes(const double* bytes, const double* rate_bps, double* out,
                   size_t n);

// out[i] = seek.SeekTime(distance[i]); distances in cylinders (already
// non-negative in the sweep, but <= 0 maps to 0 exactly as the scalar
// model does).
void SeekTimes(const disk::SeekTimeModel& seek, const double* distance,
               double* out, size_t n);

}  // namespace zonestream::sim::internal

#endif  // ZONESTREAM_SIM_BATCH_KERNELS_H_
