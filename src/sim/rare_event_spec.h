// Textual rare-event estimation specification, for CLI flags and config
// files (the importance-sampling mirror of fault/fault_spec.h).
//
// A spec string is a ','-separated list of key=value pairs:
//
//   streams=N            concurrent streams (0 = caller's default, e.g.
//                        the admission limit video_server_sim derived)
//   rounds=R             tilted rounds per replication (default 20000)
//   reps=K               independent replications (default 8)
//   seed=S               base seed; replication r uses SubstreamSeed(S, r)
//   m=M                  stream-lifetime rounds for p_error (default 1200)
//   g=G                  tolerated glitches per lifetime (default 12)
//   theta=X|auto         tilt parameter in 1/seconds; "auto" derives the
//                        analytic Chernoff minimizer (default)
//   self_normalized=0|1  sum(wI)/sum(w) instead of Horvitz-Thompson
//   antithetic=0|1       antithetic pairing of the round uniforms
//   strata=K             proportional strata on the leading rotation draw
//   tilt_disturbance=0|1 tilt the sporadic-disturbance mixture too
//   warmups=W            untilted arm-placement rounds per sample
//   confidence=C         two-sided CI level in (0, 1)
//
// Example (the deep-tail golden's configuration):
//   --rare-event="streams=30,rounds=20000,reps=8,seed=42"
//
// The parser owns syntax, duplicates, and representability (finite
// doubles, in-range integers); cross-field validation (antithetic needs
// even rounds, strata must divide the count, theta < theta_max) is
// deferred to ImportanceSampler::Create and the estimators, so the CLI
// and the programmatic API reject identical inputs identically.
#ifndef ZONESTREAM_SIM_RARE_EVENT_SPEC_H_
#define ZONESTREAM_SIM_RARE_EVENT_SPEC_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "sim/importance_sampling.h"

namespace zonestream::sim {

// A parsed rare-event estimation request: which workload point to
// estimate (streams, lifetime m/g), how hard to sample (rounds, reps,
// seed), and the ImportanceSamplingOptions tuning the estimator itself.
struct RareEventSpec {
  int streams = 0;  // 0 = caller decides (admission limit)
  int rounds_per_replication = 20000;
  int replications = 8;
  uint64_t base_seed = 42;
  int lifetime_rounds = 1200;   // m in P[>= g glitches in m rounds]
  int tolerated_glitches = 12;  // g
  ImportanceSamplingOptions options;
};

// Parses a spec string. The empty string yields the default spec.
common::StatusOr<RareEventSpec> ParseRareEventSpec(const std::string& text);

// Renders a spec back to the parseable textual form (round-trips through
// ParseRareEventSpec up to float formatting).
std::string FormatRareEventSpec(const RareEventSpec& spec);

}  // namespace zonestream::sim

#endif  // ZONESTREAM_SIM_RARE_EVENT_SPEC_H_
