#include "sim/importance_sampling.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <utility>

#include "common/check.h"
#include "core/glitch_model.h"
#include "core/service_time_model.h"
#include "numeric/sort_network.h"
#include "numeric/special_functions.h"
#include "obs/metrics.h"
#include "sim/batch_kernels.h"

namespace zonestream::sim {

namespace {

// Same disturbance substream index as RoundSimulator, so a theta == 0
// sampler consumes both streams exactly like the batched kernel.
constexpr uint64_t kDisturbanceSubstream = 0x64697374;  // "dist"

// Keep the tilt strictly inside the admissible domain: at theta ->
// theta_max the innermost zone's tilted Gamma scale diverges and the
// weights blow up. The analytic theta* always sits below the pole, but
// the moment-matched model's pole can differ slightly from the exact
// mixture's, so the clamp is a real guard, not just belt-and-braces.
constexpr double kThetaMaxMargin = 0.95;

// log of the uniform-on-[0,len] MGF, log((e^{theta len} - 1)/(theta len)),
// evaluated stably (len > 0, theta > 0).
double UniformLogMgf(double theta, double len) {
  const double x = theta * len;
  return std::log(std::expm1(x)) - std::log(x);
}

common::Status ValidateConfig(const SimulatorConfig& config,
                              const ImportanceSamplingOptions& options) {
  if (config.round_length_s <= 0.0) {
    return common::Status::InvalidArgument("round length must be positive");
  }
  if (config.ordering != sched::OrderingPolicy::kScan) {
    return common::Status::InvalidArgument(
        "importance sampling supports SCAN ordering only");
  }
  if (config.position_sampler != nullptr) {
    return common::Status::InvalidArgument(
        "importance sampling requires the default uniform-over-capacity "
        "placement (the zone tilt owns the position law)");
  }
  if (!config.faults.empty()) {
    return common::Status::InvalidArgument(
        "importance sampling does not support structured fault injection");
  }
  if (options.theta < 0.0) {
    return common::Status::InvalidArgument("theta must be non-negative");
  }
  if (options.strata < 1) {
    return common::Status::InvalidArgument("strata must be >= 1");
  }
  if (options.nominal_warmup_rounds < 0) {
    return common::Status::InvalidArgument(
        "nominal_warmup_rounds must be >= 0");
  }
  if (options.confidence <= 0.0 || options.confidence >= 1.0) {
    return common::Status::InvalidArgument("confidence must be in (0, 1)");
  }
  const DisturbanceConfig& disturbance = config.disturbance;
  if (disturbance.probability < 0.0 || disturbance.probability > 1.0 ||
      disturbance.delay_min_s > disturbance.delay_max_s ||
      disturbance.delay_min_s < 0.0) {
    return common::Status::InvalidArgument("invalid disturbance config");
  }
  return common::Status::Ok();
}

const workload::GammaSizeDistribution* AsGamma(
    const workload::SizeDistribution* sizes) {
  return dynamic_cast<const workload::GammaSizeDistribution*>(sizes);
}

}  // namespace

common::StatusOr<double> AutoTiltParameter(
    const disk::DiskGeometry& geometry, const disk::SeekTimeModel& seek,
    int num_streams, const workload::SizeDistribution& sizes,
    double round_length_s) {
  if (num_streams <= 0) {
    return common::Status::InvalidArgument("num_streams must be positive");
  }
  if (round_length_s <= 0.0) {
    return common::Status::InvalidArgument("round length must be positive");
  }
  auto model = core::ServiceTimeModel::ForMultiZoneDisk(
      geometry, seek, sizes.mean(), sizes.variance());
  if (!model.ok()) return model.status();
  const core::ChernoffResult bound =
      model->LateBound(num_streams, round_length_s);
  if (bound.theta_star <= 0.0) return 0.0;  // not a right-tail event
  // The exact simulator-side pole is the innermost zone's: R_min / scale.
  const double scale = sizes.variance() / sizes.mean();
  const double exact_theta_max = geometry.MinTransferRate() / scale;
  return std::min(bound.theta_star, kThetaMaxMargin * exact_theta_max);
}

ImportanceSampler::ImportanceSampler(const disk::DiskGeometry& geometry,
                                     const disk::SeekTimeModel& seek,
                                     int num_streams, double shape,
                                     double scale,
                                     const SimulatorConfig& config,
                                     const ImportanceSamplingOptions& options)
    : geometry_(geometry),
      seek_(seek),
      num_streams_(num_streams),
      shape_(shape),
      scale_(scale),
      config_(config),
      options_(options),
      rng_(config.seed),
      disturbance_rng_(
          numeric::SubstreamSeed(config.seed, kDisturbanceSubstream)),
      unit_gamma_(shape, 1.0) {
  theta_ = options.theta;
  theta_max_ = geometry_.MinTransferRate() / scale_;
  const int zones = geometry_.num_zones();
  tilted_time_scale_.resize(zones);
  if (theta_ > 0.0) {
    rot_expm1_ = std::expm1(theta_ * geometry_.rotation_time());
    log_mgf_rot_ = UniformLogMgf(theta_, geometry_.rotation_time());
    // M_trans(theta) = sum_z p_z (1 - theta s_z)^{-k} with s_z = s / R_z
    // the zone's transfer-time Gamma scale; the tilted zone law weights
    // each zone by its own MGF factor.
    std::vector<double> tilted_weights(zones);
    double mgf_trans = 0.0;
    for (int z = 0; z < zones; ++z) {
      const disk::ZoneInfo& zi = geometry_.zone(z);
      const double s_z = scale_ / zi.transfer_rate_bps;
      const double pole = 1.0 - theta_ * s_z;
      ZS_CHECK_GT(pole, 0.0);
      const double mgf_z = std::pow(pole, -shape_);
      tilted_weights[z] = zi.hit_probability * mgf_z;
      mgf_trans += tilted_weights[z];
      tilted_time_scale_[z] = s_z / pole;
    }
    log_mgf_trans_ = std::log(mgf_trans);
    tilted_zone_alias_ = disk::AliasTable::Build(tilted_weights);
    const DisturbanceConfig& disturbance = config_.disturbance;
    tilt_disturbance_ =
        options_.tilt_disturbance && disturbance.probability > 0.0;
    if (tilt_disturbance_) {
      const double a = disturbance.delay_min_s;
      const double b = disturbance.delay_max_s;
      const double mgf_u =
          b > a ? std::exp(UniformLogMgf(theta_, b - a) + theta_ * a)
                : std::exp(theta_ * a);
      const double mgf_dist = (1.0 - disturbance.probability) +
                              disturbance.probability * mgf_u;
      log_mgf_dist_ = std::log(mgf_dist);
      tilted_dist_probability_ = disturbance.probability * mgf_u / mgf_dist;
      dist_expm1_ = std::expm1(theta_ * (b - a));
    }
  } else {
    // theta == 0: the untilted model — unit weights, the geometry's own
    // zone law, the nominal Gamma scale.
    for (int z = 0; z < zones; ++z) {
      tilted_time_scale_[z] = scale_ / geometry_.zone(z).transfer_rate_bps;
    }
    tilted_zone_alias_ = geometry_.zone_alias();
  }
  nominal_time_scale_.resize(zones);
  for (int z = 0; z < zones; ++z) {
    nominal_time_scale_[z] = scale_ / geometry_.zone(z).transfer_rate_bps;
  }
  psi_ = log_mgf_rot_ + log_mgf_trans_ + log_mgf_dist_;

  if (config_.metrics != nullptr) {
    is_rounds_ = config_.metrics->GetCounter("sim.is.rounds");
    is_overruns_ = config_.metrics->GetCounter("sim.is.overruns");
    is_log_weight_ = config_.metrics->GetHistogram("sim.is.log_weight");
  }

  const size_t n = static_cast<size_t>(num_streams_);
  const size_t rounds_per_sample =
      static_cast<size_t>(options_.nominal_warmup_rounds) + 1;
  scratch_.u_all.resize(rounds_per_sample * 3 * n);
  scratch_.zone.resize(n);
  scratch_.cylinder.resize(n);
  scratch_.unit_gamma.resize(n);
  scratch_.rotation_s.resize(n);
  scratch_.transfer_time_s.resize(n);
  scratch_.order.resize(n);
  scratch_.sort_key.resize(n);
  scratch_.seek_dist.resize(n);
  scratch_.seek_time_s.resize(n);
}

common::StatusOr<ImportanceSampler> ImportanceSampler::Create(
    const disk::DiskGeometry& geometry, const disk::SeekTimeModel& seek,
    int num_streams, std::shared_ptr<const workload::SizeDistribution> sizes,
    const SimulatorConfig& config, const ImportanceSamplingOptions& options) {
  if (num_streams <= 0) {
    return common::Status::InvalidArgument("num_streams must be positive");
  }
  if (sizes == nullptr) {
    return common::Status::InvalidArgument("size distribution is null");
  }
  if (auto status = ValidateConfig(config, options); !status.ok()) {
    return status;
  }
  const workload::GammaSizeDistribution* gamma = AsGamma(sizes.get());
  if (gamma == nullptr) {
    return common::Status::InvalidArgument(
        "importance sampling requires Gamma fragment sizes (the exponential "
        "tilt of the zone mixture is closed-form only for the Gamma family)");
  }
  const double exact_theta_max =
      geometry.MinTransferRate() / gamma->scale();
  if (options.theta >= exact_theta_max) {
    return common::Status::InvalidArgument(
        "theta is at or beyond the transfer MGF pole min_z R_z / scale");
  }
  return ImportanceSampler(geometry, seek, num_streams, gamma->shape(),
                           gamma->scale(), config, options);
}

void ImportanceSampler::ResetForReplication(uint64_t seed) {
  config_.seed = seed;
  rng_ = numeric::Rng(seed);
  disturbance_rng_ =
      numeric::Rng(numeric::SubstreamSeed(seed, kDisturbanceSubstream));
  arm_cylinder_ = 0;
  ascending_ = true;
  samples_run_ = 0;
}

double ImportanceSampler::Reflect(double u) {
  const double reflected = 1.0 - u;
  // 1 - 0.0 == 1.0 lies outside [0, 1); fold it to the largest double
  // below 1 so the alias table and cylinder offsets stay in range.
  return reflected < 1.0 ? reflected : 0x1.fffffffffffffp-1;
}

TiltedRoundOutcome ImportanceSampler::RunRound() {
  const int n = num_streams_;
  Scratch& s = scratch_;
  const int warmups = options_.nominal_warmup_rounds;
  const size_t per_round = 3 * static_cast<size_t>(n);
  const size_t total_u = (static_cast<size_t>(warmups) + 1) * per_round;

  // Uniform draws for the whole sample (warm-ups + measured round) in one
  // engine pass. An antithetic odd sample reflects the previous sample's
  // uniforms in place instead of consuming the engine; stratification of
  // the measured round's leading rotation uniform happens on the fresh
  // draw (the reflection then lands in the mirrored stratum, which over
  // a full cycle covers the strata equally).
  const bool fresh = !options_.antithetic || (samples_run_ % 2 == 0);
  double* const u_measured_rot =
      s.u_all.data() + static_cast<size_t>(warmups) * per_round + 2 * n;
  if (fresh) {
    rng_.FillUniform01(s.u_all.data(), total_u);
    if (options_.strata > 1) {
      const int64_t cycle =
          options_.antithetic ? samples_run_ / 2 : samples_run_;
      const double stratum = static_cast<double>(cycle % options_.strata);
      u_measured_rot[0] =
          (stratum + u_measured_rot[0]) / static_cast<double>(options_.strata);
    }
  } else {
    for (size_t i = 0; i < total_u; ++i) s.u_all[i] = Reflect(s.u_all[i]);
  }

  // Every sample is i.i.d.: restart the arm, replay the nominal warm-up
  // rounds, then measure the tilted round.
  arm_cylinder_ = 0;
  ascending_ = true;
  TiltedRoundOutcome outcome;
  double log_weight = 0.0;
  for (int w = 0; w < warmups; ++w) {
    const double* u_round = s.u_all.data() + static_cast<size_t>(w) * per_round;
    RunOneRound(u_round, u_round + 2 * n, /*tilted=*/false, &outcome,
                &log_weight);
  }
  {
    const double* u_round =
        s.u_all.data() + static_cast<size_t>(warmups) * per_round;
    RunOneRound(u_round, u_round + 2 * n, /*tilted=*/true, &outcome,
                &log_weight);
  }
  outcome.log_weight = log_weight;

  if (is_rounds_ != nullptr) {
    is_rounds_->Increment();
    if (outcome.overran) is_overruns_->Increment();
    is_log_weight_->Record(outcome.log_weight);
  }
  ++samples_run_;
  return outcome;
}

void ImportanceSampler::RunOneRound(const double* u_pos, const double* u_rot,
                                    bool tilted, TiltedRoundOutcome* outcome,
                                    double* log_weight) {
  const int n = num_streams_;
  Scratch& s = scratch_;
  const bool tilt_active = tilted && theta_ > 0.0;

  // Positions; the measured round uses the tilted zone law, warm-ups the
  // nominal one. Cylinder-within-zone is the nominal uniform either way
  // (its conditional law is untilted and cancels in the likelihood
  // ratio).
  {
    const double* u_zone = u_pos;
    const double* u_cylinder = u_pos + n;
    const disk::AliasTable& alias =
        tilt_active ? tilted_zone_alias_ : geometry_.zone_alias();
    const disk::ZoneInfo* zones = &geometry_.zone(0);
    for (int i = 0; i < n; ++i) {
      const int z = alias.Sample(u_zone[i]);
      const disk::ZoneInfo& zi = zones[z];
      int offset = static_cast<int>(u_cylinder[i] * zi.num_cylinders);
      if (offset >= zi.num_cylinders) offset = zi.num_cylinders - 1;
      s.zone[i] = z;
      s.cylinder[i] = zi.first_cylinder + offset;
    }
  }

  // Transfers: one Gamma(k, 1) batch, scaled per request by the zone's
  // transfer-time scale (tilted s_z / (1 - theta s_z) on the measured
  // round). The sum of the tilted times feeds the weight.
  unit_gamma_.Fill(&rng_, s.unit_gamma.data(), static_cast<size_t>(n));
  const std::vector<double>& time_scale =
      tilt_active ? tilted_time_scale_ : nominal_time_scale_;
  double transfer_sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double t = s.unit_gamma[i] * time_scale[s.zone[i]];
    s.transfer_time_s[i] = t;
    transfer_sum += t;
  }

  // Rotational latencies; the measured round draws from the tilted
  // uniform via the inverse CDF log1p(u (e^{theta ROT} - 1)) / theta.
  double rotation_sum = 0.0;
  if (tilt_active) {
    for (int i = 0; i < n; ++i) {
      const double r = std::log1p(u_rot[i] * rot_expm1_) / theta_;
      s.rotation_s[i] = r;
      rotation_sum += r;
    }
  } else {
    const double rotation_time = geometry_.rotation_time();
    for (int i = 0; i < n; ++i) {
      const double r = u_rot[i] * rotation_time;
      s.rotation_s[i] = r;
      rotation_sum += r;
    }
  }

  // Disturbances from the dedicated substream, tilted when configured
  // (Bernoulli probability and uniform delay both shifted; one event
  // uniform + one delay uniform per firing, exactly the simulator's
  // consumption pattern).
  double tilted_dist_sum = 0.0;
  const DisturbanceConfig& disturbance = config_.disturbance;
  if (disturbance.probability > 0.0) {
    const bool tilt_dist = tilt_active && tilt_disturbance_;
    const double event_p =
        tilt_dist ? tilted_dist_probability_ : disturbance.probability;
    for (int i = 0; i < n; ++i) {
      if (disturbance_rng_.Uniform01() < event_p) {
        double delay;
        if (tilt_dist && disturbance.delay_max_s > disturbance.delay_min_s) {
          const double u = disturbance_rng_.Uniform01();
          delay = disturbance.delay_min_s +
                  std::log1p(u * dist_expm1_) / theta_;
        } else {
          delay = disturbance_rng_.Uniform(disturbance.delay_min_s,
                                           disturbance.delay_max_s);
        }
        s.rotation_s[i] += delay;
        if (tilt_dist) tilted_dist_sum += delay;
      }
    }
  }

  // Arm policy and SCAN ordering, exactly as RunRoundBatched.
  double return_seek_s = 0.0;
  bool ascending_sweep = true;
  if (config_.sweep_policy == SweepPolicy::kAlternate) {
    ascending_sweep = ascending_;
  } else {
    if (!config_.legacy_free_arm_reset && arm_cylinder_ != 0) {
      return_seek_s = seek_.SeekTime(arm_cylinder_);
    }
    arm_cylinder_ = 0;
  }
  const bool network_ok = n <= static_cast<int>(numeric::kSortNetworkMaxN) &&
                          geometry_.cylinders() < (1 << 26);
  if (network_ok) {
    uint32_t keys[numeric::kSortNetworkMaxN];
    constexpr uint32_t kCylMask = (1u << 26) - 1u;
    if (ascending_sweep) {
      for (int i = 0; i < n; ++i) {
        keys[i] = (static_cast<uint32_t>(s.cylinder[i]) << 6) |
                  static_cast<uint32_t>(i);
      }
    } else {
      for (int i = 0; i < n; ++i) {
        keys[i] =
            ((~static_cast<uint32_t>(s.cylinder[i]) & kCylMask) << 6) |
            static_cast<uint32_t>(i);
      }
    }
    numeric::SortU32Network(keys, static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      s.order[i] = static_cast<int>(keys[i] & 0x3fu);
    }
  } else {
    if (ascending_sweep) {
      for (int i = 0; i < n; ++i) {
        s.sort_key[i] =
            (static_cast<uint64_t>(static_cast<uint32_t>(s.cylinder[i]))
             << 32) |
            static_cast<uint32_t>(i);
      }
    } else {
      for (int i = 0; i < n; ++i) {
        s.sort_key[i] =
            (static_cast<uint64_t>(~static_cast<uint32_t>(s.cylinder[i]))
             << 32) |
            static_cast<uint32_t>(i);
      }
    }
    std::sort(s.sort_key.begin(), s.sort_key.end());
    for (int i = 0; i < n; ++i) {
      s.order[i] = static_cast<int>(s.sort_key[i] & 0xffffffffu);
    }
  }

  // Seeks over the arm walk (untilted — their law is a deterministic
  // function of the positions, already accounted by the zone tilt).
  {
    int walk_arm = arm_cylinder_;
    for (int pos = 0; pos < n; ++pos) {
      const int cylinder = s.cylinder[s.order[pos]];
      s.seek_dist[pos] = std::abs(cylinder - walk_arm);
      walk_arm = cylinder;
    }
  }
  internal::SeekTimes(seek_, s.seek_dist.data(), s.seek_time_s.data(),
                      static_cast<size_t>(n));

  // The deadline sweep. Warm-up rounds overwrite these fields; only the
  // measured (final) round's values survive in the caller's outcome.
  outcome->glitched_streams = 0;
  double clock = 0.0;
  int last_on_time_cylinder = arm_cylinder_;
  for (int pos = 0; pos < n; ++pos) {
    const int i = s.order[pos];
    clock += s.seek_time_s[pos] + s.rotation_s[i] + s.transfer_time_s[i];
    if (return_seek_s + clock > config_.round_length_s) {
      ++outcome->glitched_streams;
    } else {
      last_on_time_cylinder = s.cylinder[i];
    }
  }
  outcome->total_service_time_s = return_seek_s + clock;
  outcome->overran = outcome->total_service_time_s > config_.round_length_s;
  arm_cylinder_ = outcome->glitched_streams == 0
                      ? s.cylinder[s.order[n - 1]]
                      : last_on_time_cylinder;
  ascending_ = !ascending_;

  if (tilt_active) {
    *log_weight += static_cast<double>(n) * psi_ -
                   theta_ * (rotation_sum + transfer_sum + tilted_dist_sum);
  }
}

namespace {

// Per-replication weighted tallies, reduced in replication order. With
// v_r the round payload in [0, 1] (overrun indicator or glitch fraction)
// and w_r the likelihood ratio, both estimators and their delta-method
// variances are functions of these five sums.
struct WeightedTally {
  int64_t rounds = 0;
  double sum_w = 0.0;    // sum w
  double sum_w2 = 0.0;   // sum w^2
  double sum_y = 0.0;    // sum w v
  double sum_y2 = 0.0;   // sum (w v)^2
  double sum_wy = 0.0;   // sum w^2 v (for the self-normalized variance)
};

common::Status ValidateISSharding(const ReplicationOptions& replication,
                                  int rounds_per_replication,
                                  const ImportanceSamplingOptions& options) {
  if (replication.replications <= 0) {
    return common::Status::InvalidArgument("replications must be positive");
  }
  if (rounds_per_replication <= 0) {
    return common::Status::InvalidArgument(
        "rounds_per_replication must be positive");
  }
  if (options.antithetic && rounds_per_replication % 2 != 0) {
    return common::Status::InvalidArgument(
        "antithetic sampling needs an even rounds_per_replication");
  }
  const int cycles = options.antithetic ? rounds_per_replication / 2
                                        : rounds_per_replication;
  if (options.strata > 1 && cycles % options.strata != 0) {
    return common::Status::InvalidArgument(
        "strata must divide the per-replication round (or antithetic pair) "
        "count");
  }
  return common::Status::Ok();
}

// Runs the sharded tilted rounds and reduces the weighted tallies into an
// estimate. `payload` maps a TiltedRoundOutcome to the value in [0, 1]
// whose weighted mean is being estimated.
template <typename Payload>
common::StatusOr<ImportanceSampleEstimate> RunReplicatedIS(
    const disk::DiskGeometry& geometry, const disk::SeekTimeModel& seek,
    int num_streams, std::shared_ptr<const workload::SizeDistribution> sizes,
    const SimulatorConfig& config, int rounds_per_replication,
    const ReplicationOptions& replication,
    const ImportanceSamplingOptions& options, Payload&& payload) {
  if (auto status =
          ValidateISSharding(replication, rounds_per_replication, options);
      !status.ok()) {
    return status;
  }
  ImportanceSamplingOptions resolved = options;
  if (resolved.theta == 0.0) {
    auto theta = AutoTiltParameter(geometry, seek, num_streams, *sizes,
                                   config.round_length_s);
    if (!theta.ok()) return theta.status();
    resolved.theta = *theta;
  }
  // Probe construction validates every argument once; per-block creation
  // below then cannot fail.
  auto probe = ImportanceSampler::Create(geometry, seek, num_streams, sizes,
                                         config, resolved);
  if (!probe.ok()) return probe.status();

  std::vector<WeightedTally> tallies(replication.replications);
  common::ParallelForBlocks(
      replication.replications,
      [&](int64_t begin, int64_t end) {
        auto sampler = ImportanceSampler::Create(geometry, seek, num_streams,
                                                 sizes, config, resolved);
        ZS_CHECK(sampler.ok());
        for (int64_t r = begin; r < end; ++r) {
          sampler->ResetForReplication(numeric::SubstreamSeed(
              replication.base_seed, static_cast<uint64_t>(r)));
          WeightedTally& tally = tallies[r];
          for (int round = 0; round < rounds_per_replication; ++round) {
            const TiltedRoundOutcome outcome = sampler->RunRound();
            const double w = std::exp(outcome.log_weight);
            const double v = payload(outcome);
            const double y = w * v;
            ++tally.rounds;
            tally.sum_w += w;
            tally.sum_w2 += w * w;
            tally.sum_y += y;
            tally.sum_y2 += y * y;
            tally.sum_wy += w * y;
          }
        }
      },
      replication.pool);

  WeightedTally total;  // fixed replication order: deterministic
  for (const WeightedTally& tally : tallies) {
    total.rounds += tally.rounds;
    total.sum_w += tally.sum_w;
    total.sum_w2 += tally.sum_w2;
    total.sum_y += tally.sum_y;
    total.sum_y2 += tally.sum_y2;
    total.sum_wy += tally.sum_wy;
  }

  const double count = static_cast<double>(total.rounds);
  ImportanceSampleEstimate estimate;
  estimate.rounds = total.rounds;
  estimate.theta = probe->theta();
  estimate.weight_mean = total.sum_w / count;
  estimate.weight_variance =
      total.rounds > 1
          ? std::max(0.0, (total.sum_w2 - total.sum_w * total.sum_w / count) /
                              (count - 1.0))
          : 0.0;
  estimate.ess = total.sum_w2 > 0.0
                     ? total.sum_w * total.sum_w / total.sum_w2
                     : 0.0;

  const double z =
      numeric::NormalQuantile(0.5 + 0.5 * options.confidence);
  double point;
  double se;
  if (options.self_normalized && total.sum_w > 0.0) {
    // p = sum(w v) / sum(w); delta-method variance
    // Var ~ sum(w (v - p))^2 / sum(w)^2 expanded in the tracked sums.
    point = total.sum_y / total.sum_w;
    const double resid = total.sum_y2 - 2.0 * point * total.sum_wy +
                         point * point * total.sum_w2;
    se = std::sqrt(std::max(0.0, resid)) / total.sum_w;
  } else {
    // Horvitz-Thompson: the i.i.d. sample is y_r = w_r v_r with mean p.
    point = total.sum_y / count;
    const double variance =
        total.rounds > 1
            ? std::max(0.0,
                       (total.sum_y2 - total.sum_y * total.sum_y / count) /
                           (count - 1.0))
            : 0.0;
    se = std::sqrt(variance / count);
  }
  estimate.point = point;
  estimate.ci_lower = std::max(0.0, point - z * se);
  estimate.ci_upper = std::min(1.0, point + z * se);
  return estimate;
}

}  // namespace

common::StatusOr<ImportanceSampleEstimate> EstimateLateProbabilityIS(
    const disk::DiskGeometry& geometry, const disk::SeekTimeModel& seek,
    int num_streams, std::shared_ptr<const workload::SizeDistribution> sizes,
    const SimulatorConfig& config, int rounds_per_replication,
    const ReplicationOptions& replication,
    const ImportanceSamplingOptions& options) {
  return RunReplicatedIS(geometry, seek, num_streams, std::move(sizes),
                         config, rounds_per_replication, replication, options,
                         [](const TiltedRoundOutcome& outcome) {
                           return outcome.overran ? 1.0 : 0.0;
                         });
}

common::StatusOr<ImportanceSampleEstimate> EstimateGlitchProbabilityIS(
    const disk::DiskGeometry& geometry, const disk::SeekTimeModel& seek,
    int num_streams, std::shared_ptr<const workload::SizeDistribution> sizes,
    const SimulatorConfig& config, int rounds_per_replication,
    const ReplicationOptions& replication,
    const ImportanceSamplingOptions& options) {
  const double inv_streams = 1.0 / static_cast<double>(num_streams);
  return RunReplicatedIS(geometry, seek, num_streams, std::move(sizes),
                         config, rounds_per_replication, replication, options,
                         [inv_streams](const TiltedRoundOutcome& outcome) {
                           return static_cast<double>(
                                      outcome.glitched_streams) *
                                  inv_streams;
                         });
}

common::StatusOr<ErrorProbabilityISEstimate> EstimateErrorProbabilityIS(
    const disk::DiskGeometry& geometry, const disk::SeekTimeModel& seek,
    int num_streams, std::shared_ptr<const workload::SizeDistribution> sizes,
    const SimulatorConfig& config, int m, int g, int rounds_per_replication,
    const ReplicationOptions& replication,
    const ImportanceSamplingOptions& options) {
  if (m <= 0 || g < 0) {
    return common::Status::InvalidArgument(
        "lifetime length m must be positive and glitch budget g >= 0");
  }
  auto glitch = EstimateGlitchProbabilityIS(geometry, seek, num_streams,
                                            std::move(sizes), config,
                                            rounds_per_replication,
                                            replication, options);
  if (!glitch.ok()) return glitch.status();
  ErrorProbabilityISEstimate estimate;
  estimate.glitch = *glitch;
  estimate.m = m;
  estimate.g = g;
  // BinomialTailExact is nondecreasing in p, so the CI endpoints map
  // directly (eq. 3.3.4 at the simulated per-round probability).
  estimate.point = core::BinomialTailExact(m, glitch->point, g);
  estimate.ci_lower = core::BinomialTailExact(m, glitch->ci_lower, g);
  estimate.ci_upper = core::BinomialTailExact(m, glitch->ci_upper, g);
  return estimate;
}

}  // namespace zonestream::sim
