#include "sim/prefetch_simulator.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"
#include "sched/scan.h"

namespace zonestream::sim {

PrefetchRoundSimulator::PrefetchRoundSimulator(
    const disk::DiskGeometry& geometry, const disk::SeekTimeModel& seek,
    int num_streams, std::shared_ptr<const workload::SizeDistribution> sizes,
    const PrefetchSimulatorConfig& config)
    : geometry_(geometry),
      seek_(seek),
      num_streams_(num_streams),
      sizes_(std::move(sizes)),
      config_(config),
      rng_(config.seed),
      buffered_(num_streams, 0) {}

common::StatusOr<PrefetchRoundSimulator> PrefetchRoundSimulator::Create(
    const disk::DiskGeometry& geometry, const disk::SeekTimeModel& seek,
    int num_streams, std::shared_ptr<const workload::SizeDistribution> sizes,
    const PrefetchSimulatorConfig& config) {
  if (num_streams <= 0) {
    return common::Status::InvalidArgument("num_streams must be positive");
  }
  if (sizes == nullptr) {
    return common::Status::InvalidArgument("size distribution is null");
  }
  if (config.round_length_s <= 0.0) {
    return common::Status::InvalidArgument("round length must be positive");
  }
  if (config.buffer_fragments < 0) {
    return common::Status::InvalidArgument(
        "buffer_fragments must be non-negative");
  }
  return PrefetchRoundSimulator(geometry, seek, num_streams, std::move(sizes),
                                config);
}

PrefetchRunResult PrefetchRoundSimulator::Run(int rounds, int warmup) {
  ZS_CHECK_GT(rounds, 0);
  ZS_CHECK_GE(warmup, 0);
  PrefetchRunResult result;

  double buffer_level_sum = 0.0;
  int64_t buffer_level_samples = 0;

  for (int r = 0; r < warmup + rounds; ++r) {
    const bool counted = r >= warmup;

    // 1. Consume: streams with buffered fragments display from the buffer;
    //    the rest must be served this round.
    std::vector<sched::DiskRequest> mandatory;
    for (int s = 0; s < num_streams_; ++s) {
      if (buffered_[s] > 0) {
        --buffered_[s];
        continue;
      }
      const disk::DiskPosition position =
          geometry_.SampleUniformPosition(&rng_);
      sched::DiskRequest request;
      request.stream_id = s;
      request.cylinder = position.cylinder;
      request.zone = position.zone;
      request.transfer_rate_bps = position.transfer_rate_bps;
      request.bytes = sizes_->Sample(&rng_);
      request.rotational_latency_s =
          rng_.Uniform(0.0, geometry_.rotation_time());
      mandatory.push_back(request);
    }
    if (counted) {
      result.mandatory_requests += static_cast<int64_t>(mandatory.size());
    }

    // 2. Serve the mandatory batch in one SCAN sweep.
    sched::SortForScan(&mandatory, ascending_
                                       ? sched::SweepDirection::kAscending
                                       : sched::SweepDirection::kDescending);
    const sched::RoundTiming timing =
        sched::ExecuteScanRound(seek_, mandatory, arm_cylinder_);
    int arm = arm_cylinder_;
    for (size_t i = 0; i < timing.per_request.size(); ++i) {
      if (timing.per_request[i].completion_s > config_.round_length_s) {
        if (counted) ++result.glitches;
      } else {
        arm = mandatory[i].cylinder;
      }
    }
    if (!timing.per_request.empty() &&
        timing.total_service_time_s <= config_.round_length_s) {
      arm = timing.final_arm_cylinder;
    }
    ascending_ = !ascending_;

    // 3. Prefetch into the leftover time: repeatedly serve the stream with
    //    the lowest buffer level (ties by id) until the round ends or all
    //    buffers are full.
    double clock =
        std::fmin(timing.total_service_time_s, config_.round_length_s);
    while (clock < config_.round_length_s) {
      int target = -1;
      for (int s = 0; s < num_streams_; ++s) {
        if (buffered_[s] < config_.buffer_fragments &&
            (target < 0 || buffered_[s] < buffered_[target])) {
          target = s;
        }
      }
      if (target < 0) break;  // every buffer is full
      const disk::DiskPosition position =
          geometry_.SampleUniformPosition(&rng_);
      const double service =
          seek_.SeekTime(std::abs(position.cylinder - arm)) +
          rng_.Uniform(0.0, geometry_.rotation_time()) +
          sizes_->Sample(&rng_) / position.transfer_rate_bps;
      if (clock + service > config_.round_length_s) break;
      clock += service;
      arm = position.cylinder;
      ++buffered_[target];
      if (counted) ++result.prefetched_fragments;
    }
    arm_cylinder_ = arm;

    if (counted) {
      buffer_level_sum +=
          std::accumulate(buffered_.begin(), buffered_.end(), 0.0);
      buffer_level_samples += num_streams_;
    }
  }

  result.rounds = rounds;
  result.stream_rounds = static_cast<int64_t>(rounds) * num_streams_;
  result.glitch_rate =
      static_cast<double>(result.glitches) / result.stream_rounds;
  result.mean_buffer_level =
      buffer_level_samples > 0 ? buffer_level_sum / buffer_level_samples
                               : 0.0;
  return result;
}

}  // namespace zonestream::sim
