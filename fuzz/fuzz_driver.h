// Standalone driver for fuzz targets when libFuzzer is unavailable
// (GCC builds). Replays any files passed on the command line through
// LLVMFuzzerTestOneInput, then runs a deterministic mutation loop over
// the provided seed inputs: truncations, single-byte flips, random
// splices, and pure-noise blobs. Deterministic by construction (fixed
// SplitMix64 stream), so a CI run is reproducible; it is a smoke fuzzer,
// not a coverage-guided one — run the Clang/libFuzzer build for real
// campaigns.
#ifndef ZONESTREAM_FUZZ_FUZZ_DRIVER_H_
#define ZONESTREAM_FUZZ_FUZZ_DRIVER_H_

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace zonestream::fuzz {

inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

inline void RunOne(const std::string& input) {
  LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(input.data()),
                         input.size());
}

inline int RunStandaloneDriver(int argc, char** argv,
                               const std::vector<std::string>& seeds) {
  // Replay explicit corpus files first (same contract as libFuzzer).
  for (int i = 1; i < argc; ++i) {
    std::ifstream file(argv[i], std::ios::binary);
    if (!file) {
      std::fprintf(stderr, "cannot open corpus file %s\n", argv[i]);
      return 2;
    }
    std::ostringstream bytes;
    bytes << file.rdbuf();
    RunOne(bytes.str());
  }

  uint64_t rng = 0x5EEDFACE;
  int64_t executions = 0;
  for (const std::string& seed : seeds) {
    RunOne(seed);
    ++executions;
    // Every truncation of every seed.
    for (size_t len = 0; len < seed.size(); ++len) {
      RunOne(seed.substr(0, len));
      ++executions;
    }
    // Every single-byte flip.
    for (size_t i = 0; i < seed.size(); ++i) {
      for (uint8_t bit = 0; bit < 8; ++bit) {
        std::string mutated = seed;
        mutated[i] = static_cast<char>(mutated[i] ^ (1u << bit));
        RunOne(mutated);
        ++executions;
      }
    }
    // Random multi-byte mutations and splices.
    for (int round = 0; round < 2000; ++round) {
      std::string mutated = seed;
      const int edits = 1 + static_cast<int>(SplitMix64(&rng) % 8);
      for (int e = 0; e < edits && !mutated.empty(); ++e) {
        const size_t pos = SplitMix64(&rng) % mutated.size();
        switch (SplitMix64(&rng) % 3) {
          case 0:
            mutated[pos] = static_cast<char>(SplitMix64(&rng));
            break;
          case 1:
            mutated.erase(pos, 1 + SplitMix64(&rng) % 4);
            break;
          default:
            mutated.insert(pos, 1, static_cast<char>(SplitMix64(&rng)));
            break;
        }
      }
      RunOne(mutated);
      ++executions;
    }
  }
  // Pure noise, various sizes.
  for (int round = 0; round < 2000; ++round) {
    std::string noise(SplitMix64(&rng) % 512, '\0');
    for (char& byte : noise) byte = static_cast<char>(SplitMix64(&rng));
    RunOne(noise);
    ++executions;
  }
  std::printf("standalone fuzz driver: %lld executions, no crash\n",
              static_cast<long long>(executions));
  return 0;
}

}  // namespace zonestream::fuzz

#endif  // ZONESTREAM_FUZZ_FUZZ_DRIVER_H_
