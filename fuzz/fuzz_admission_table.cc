// Fuzz target for the admission-table text parser: tables are built
// offline and shipped to serving hosts (docs/SERVICE.md), so the daemon's
// Deserialize must return a clean error — never crash or trip a
// sanitizer — for arbitrarily damaged files.
//
// Built with -DZS_HAVE_LIBFUZZER under Clang this is a libFuzzer target;
// under other toolchains fuzz_driver.h supplies a main() that replays
// file corpora and runs a deterministic mutation loop over seed inputs.
#include <cstddef>
#include <cstdint>
#include <string>

#include "core/admission.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  const auto table = zonestream::core::AdmissionTable::Deserialize(text);
  if (table.ok()) {
    // Accepted inputs must round-trip: Serialize output is the canonical
    // form, and it must itself parse back to an equivalent table.
    const std::string canonical = table->Serialize();
    const auto restored =
        zonestream::core::AdmissionTable::Deserialize(canonical);
    if (!restored.ok()) __builtin_trap();
    if (restored->rows().size() != table->rows().size()) __builtin_trap();
    // The lookup contract must hold on whatever parsed: equality selects
    // the row at both ends, below-all returns 0.
    if (!table->rows().empty()) {
      const auto& rows = table->rows();
      if (table->MaxStreams(rows.front().tolerance) !=
          rows.front().n_max) {
        __builtin_trap();
      }
      if (table->MaxStreams(rows.back().tolerance) != rows.back().n_max) {
        __builtin_trap();
      }
    }
  }
  return 0;
}

#ifndef ZS_HAVE_LIBFUZZER
#include "fuzz_driver.h"

int main(int argc, char** argv) {
  // Seed with a well-formed table (one per criterion) so mutations
  // explore the row parser and validation, not just the magic line.
  const std::string late_table =
      "zonestream-admission-table v1\n"
      "criterion late_probability\n"
      "round_length 1\n"
      "rows 3\n"
      "0.001 8\n"
      "0.01 14\n"
      "0.05 20\n";
  const std::string glitch_table =
      "zonestream-admission-table v1\n"
      "criterion glitch_rate\n"
      "round_length 0.5\n"
      "rows 2\n"
      "0.0001 12\n"
      "0.01 28\n";
  return zonestream::fuzz::RunStandaloneDriver(argc, argv,
                                               {late_table, glitch_table});
}
#endif
