// Fuzz target for the overload-hardening surfaces that consume
// untrusted bytes: the chaos-spec grammar (operator CLI input), the
// deterministic byte-mangling core, and the wire framing/decoders the
// daemon and client run against whatever a chaotic socket delivers.
//
// The input splits three ways: a spec string, an RNG seed, and a byte
// stream. Invariants checked:
//   * ParseChaosSpec never crashes; accepted specs round-trip through
//     FormatChaosSpec.
//   * ApplyChaosToBytes never crashes and respects its contract:
//     truncation never grows the payload beyond original+garbage, delay
//     stays inside [min_ms, max_ms], chunk stays inside
//     [1, partial_max_bytes].
//   * NextFrame over the mangled stream never reads out of bounds,
//     always consumes monotonically, and every extracted frame survives
//     DecodeRequest/DecodeResponse (either decodes or errors — no UB).
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <random>
#include <string>
#include <string_view>

#include "service/chaos.h"
#include "service/protocol.h"

namespace {

using zonestream::service::ApplyChaosToBytes;
using zonestream::service::ChaosOutcome;
using zonestream::service::ChaosSpec;
using zonestream::service::FormatChaosSpec;
using zonestream::service::FrameParse;
using zonestream::service::NextFrame;
using zonestream::service::ParseChaosSpec;

void DrainFrames(std::string_view stream) {
  size_t offset = 0;
  while (offset <= stream.size()) {
    size_t consumed = 0;
    std::string_view payload;
    const FrameParse parse =
        NextFrame(stream.substr(offset), &consumed, &payload);
    if (parse != FrameParse::kFrame) break;  // kNeedMore / kError: done
    if (consumed == 0) __builtin_trap();     // must make progress
    // Both decoders must handle any extracted frame without UB; a
    // mangled stream can desynchronize into either direction's framing.
    (void)zonestream::service::DecodeRequest(payload);
    (void)zonestream::service::DecodeResponse(payload);
    offset += consumed;
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  // Layout: [8-byte seed][spec text up to first '\n'][byte stream].
  uint64_t seed = 0;
  if (size >= sizeof(seed)) {
    std::memcpy(&seed, data, sizeof(seed));
    data += sizeof(seed);
    size -= sizeof(seed);
  }
  const std::string_view rest(reinterpret_cast<const char*>(data), size);
  const size_t newline = rest.find('\n');
  const std::string_view spec_text =
      newline == std::string_view::npos ? rest : rest.substr(0, newline);
  const std::string_view stream_bytes =
      newline == std::string_view::npos ? std::string_view()
                                        : rest.substr(newline + 1);

  const auto spec = ParseChaosSpec(std::string(spec_text));
  if (spec.ok()) {
    const std::string formatted = FormatChaosSpec(*spec);
    if (!ParseChaosSpec(formatted).ok()) __builtin_trap();
  }

  // Mangle the stream under the parsed spec (or a fixed all-faults spec
  // when the text was rejected, so the mangler always gets exercised).
  ChaosSpec active;
  if (spec.ok()) {
    active = *spec;
  } else {
    active.partial_prob = 0.5;
    active.partial_max_bytes = 3;
    active.delay_prob = 0.5;
    active.delay_max_ms = 4;
    active.reset_prob = 0.25;
    active.short_frame_prob = 0.5;
    active.garbage_prob = 0.5;
    active.garbage_max_bytes = 5;
  }
  std::mt19937_64 rng(seed);
  std::string mangled(stream_bytes);
  const size_t original_size = mangled.size();
  const ChaosOutcome outcome = ApplyChaosToBytes(active, rng, &mangled);
  if (mangled.size() >
      original_size + static_cast<size_t>(active.garbage_max_bytes)) {
    __builtin_trap();
  }
  if (outcome.delay_ms < 0 || outcome.delay_ms > active.delay_max_ms) {
    __builtin_trap();
  }
  if (outcome.chunk_bytes >
      static_cast<size_t>(active.partial_max_bytes)) {
    __builtin_trap();
  }

  // The framing layer must survive both the raw and the mangled stream.
  DrainFrames(stream_bytes);
  DrainFrames(mangled);
  return 0;
}

#ifndef ZS_HAVE_LIBFUZZER
#include "fuzz_driver.h"

namespace {

// Seed: all-faults spec followed by two well-formed frames (a 25-byte
// admit request and a short response-shaped blob), so mutations explore
// the boundary between valid framing and chaos-mangled bytes.
std::string MakeSeed() {
  std::string seed("\x42\x00\x00\x00\x00\x00\x00\x00", 8);
  seed +=
      "partial:prob=0.5,max_bytes=8;delay:prob=0.1,min_ms=1,max_ms=5;"
      "reset:prob=0.01;short_frame:prob=0.05;garbage:prob=0.07,max_bytes=4"
      "\n";
  std::string request(25, '\0');
  request[0] = 1;  // OpCode::kAdmitClass-shaped byte
  zonestream::service::AppendFrame(&seed, request);
  zonestream::service::AppendFrame(&seed, std::string(49, '\x07'));
  return seed;
}

}  // namespace

int main(int argc, char** argv) {
  return zonestream::fuzz::RunStandaloneDriver(argc, argv, {MakeSeed()});
}
#endif
