// Fuzz target for ParseFaultSpec: arbitrary spec strings must produce a
// parsed spec or a structured error — no throw, abort, or UB. Accepted
// specs must round-trip through FormatFaultSpec.
#include <cstddef>
#include <cstdint>
#include <string>

#include "fault/fault_spec.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  const auto spec = zonestream::fault::ParseFaultSpec(text);
  if (spec.ok()) {
    const std::string formatted = zonestream::fault::FormatFaultSpec(*spec);
    if (!zonestream::fault::ParseFaultSpec(formatted).ok()) {
      __builtin_trap();
    }
  }
  return 0;
}

#ifndef ZS_HAVE_LIBFUZZER
#include "fuzz_driver.h"

int main(int argc, char** argv) {
  return zonestream::fuzz::RunStandaloneDriver(
      argc, argv,
      {"slowdown:enter=0.01,exit=0.2,prob=1,delay_min=0.05,delay_max=0.3,"
       "from=200,until=400;"
       "zone_dropout:fail=0.001,recover=0.05,rate_factor=0.5;"
       "burst:prob=0.02,len=4,delay_min=0.01,delay_max=0.05;"
       "disk_failure:hazard=0.0001,at=25,repair=50"});
}
#endif
