// Fuzz target for ParseRareEventSpec: arbitrary spec strings must produce
// a parsed spec or a structured error — no throw, abort, or UB. Accepted
// specs must round-trip through FormatRareEventSpec.
#include <cstddef>
#include <cstdint>
#include <string>

#include "sim/rare_event_spec.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  const auto spec = zonestream::sim::ParseRareEventSpec(text);
  if (spec.ok()) {
    const std::string formatted = zonestream::sim::FormatRareEventSpec(*spec);
    if (!zonestream::sim::ParseRareEventSpec(formatted).ok()) {
      __builtin_trap();
    }
  }
  return 0;
}

#ifndef ZS_HAVE_LIBFUZZER
#include "fuzz_driver.h"

int main(int argc, char** argv) {
  return zonestream::fuzz::RunStandaloneDriver(
      argc, argv,
      {"streams=30,rounds=20000,reps=8,seed=42,m=1200,g=12,theta=auto,"
       "self_normalized=0,antithetic=1,strata=4,tilt_disturbance=on,"
       "warmups=2,confidence=0.99",
       "theta=34.5,rounds=100,reps=2"});
}
#endif
