// Fuzz target for the snapshot loader: DecodeSnapshot must return a
// clean error — never crash, never trip ASan/UBSan, never allocate a
// corrupt length claim — for arbitrary input bytes.
//
// Built with -DZS_HAVE_LIBFUZZER under Clang this is a libFuzzer target;
// under other toolchains fuzz_driver.h supplies a main() that replays
// file corpora and runs a deterministic mutation loop over seed inputs.
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "recovery/snapshot.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view bytes(reinterpret_cast<const char*>(data), size);
  const auto decoded = zonestream::recovery::DecodeSnapshot(bytes);
  if (decoded.ok()) {
    // Round-trip accepted inputs: re-encoding a decoded snapshot must
    // itself decode.
    const std::string encoded =
        zonestream::recovery::EncodeSnapshot(*decoded);
    if (!zonestream::recovery::DecodeSnapshot(encoded).ok()) {
      __builtin_trap();
    }
  }
  return 0;
}

#ifndef ZS_HAVE_LIBFUZZER
#include "fuzz_driver.h"

int main(int argc, char** argv) {
  // Seed the mutation loop with a valid snapshot so mutations explore
  // deep decoder paths, not just the magic check.
  zonestream::recovery::Snapshot snapshot;
  snapshot.meta.round = 41;
  snapshot.meta.base_seed = 7;
  snapshot.meta.producer = "fuzz";
  snapshot.app_sections["app.fuzz"] = std::string("\x00\x01payload", 9);
  return zonestream::fuzz::RunStandaloneDriver(
      argc, argv, {zonestream::recovery::EncodeSnapshot(snapshot)});
}
#endif
