// Quickstart: size a video server with stochastic service guarantees.
//
// Reproduces the paper's workflow end to end on the Table 1 configuration:
//  1. describe the disk and the fragment-size statistics,
//  2. build the multi-zone analytic model (§3.2),
//  3. ask for the admission limit under two QoS contracts (§3.1.7, §3.3.6),
//  4. sanity-check the analytic bound against a short simulation (§4).
#include <cstdio>

#include "core/admission.h"
#include "core/glitch_model.h"
#include "core/service_time_model.h"
#include "disk/presets.h"
#include "sim/round_simulator.h"
#include "workload/size_distribution.h"

using namespace zonestream;  // example code; libraries never do this

int main() {
  // 1. Hardware and workload description (paper Table 1).
  const disk::DiskGeometry viking = disk::QuantumViking2100();
  const disk::SeekTimeModel seek = disk::QuantumViking2100Seek();
  const double mean_size = 200e3;          // 200 KB fragments
  const double var_size = 100e3 * 100e3;   // (100 KB)^2
  const double round_length = 1.0;         // 1 s rounds

  // 2. Analytic model of the round service time on the multi-zone disk.
  auto model = core::ServiceTimeModel::ForMultiZoneDisk(viking, seek,
                                                        mean_size, var_size);
  if (!model.ok()) {
    std::fprintf(stderr, "model: %s\n", model.status().ToString().c_str());
    return 1;
  }

  // 3a. QoS contract A: at most 1% of rounds may overrun (p_late <= 0.01).
  const int n_late =
      core::MaxStreamsByLateProbability(*model, round_length, 0.01);
  std::printf("p_late <= 1%%          -> admit up to N = %d streams/disk\n",
              n_late);

  // 3b. QoS contract B: a 20-minute stream (M = 1200 rounds) may exceed 12
  // glitches (1%% of rounds) with probability at most 1%%.
  const int n_glitch =
      core::MaxStreamsByGlitchRate(*model, round_length, /*m=*/1200,
                                   /*g=*/12, /*epsilon=*/0.01);
  std::printf("p_error(M=1200,g=12) <= 1%% -> admit up to N = %d streams/disk\n",
              n_glitch);

  // Detail: the bound curve around the admission limit.
  for (int n = n_late - 1; n <= n_late + 2; ++n) {
    const core::ChernoffResult late = model->LateBound(n, round_length);
    std::printf("  b_late(N=%d)  = %.5g  (theta* = %.4g)\n", n, late.bound,
                late.theta_star);
  }
  const core::GlitchModel glitch_model(&*model);
  for (int n = n_glitch; n <= n_glitch + 2; ++n) {
    std::printf("  p_error(N=%d) = %.5g\n", n,
                glitch_model.ErrorBound(n, round_length, 1200, 12));
  }

  // 4. Cross-check the analytic bound with a short detailed simulation at
  // the admission limit.
  auto sizes = std::make_shared<workload::GammaSizeDistribution>(
      *workload::GammaSizeDistribution::Create(mean_size, var_size));
  sim::SimulatorConfig sim_config;
  sim_config.round_length_s = round_length;
  sim_config.seed = 7;
  auto simulator = sim::RoundSimulator::Create(
      viking, seek, n_late, sim::RoundSimulator::IidFactory(sizes),
      sim_config);
  if (!simulator.ok()) {
    std::fprintf(stderr, "sim: %s\n", simulator.status().ToString().c_str());
    return 1;
  }
  const sim::ProbabilityEstimate p_late =
      simulator->EstimateLateProbability(/*rounds=*/20000);
  std::printf(
      "simulated p_late(N=%d) = %.5f  [%.5f, %.5f] over %lld rounds "
      "(analytic bound %.5f)\n",
      n_late, p_late.point, p_late.ci_lower, p_late.ci_upper,
      static_cast<long long>(p_late.trials),
      model->LateBound(n_late, round_length).bound);
  return 0;
}
