// Admission planner: a small CLI that sizes a continuous-media server.
//
// Given a disk description and fragment-size statistics (defaults: the
// paper's Table 1), it prints the §5-style precomputed admission table —
// N_max per QoS tolerance for both criteria — and the worst-case baseline
// for comparison, for a sweep of round lengths.
//
// Usage:
//   admission_planner [mean_kb] [stddev_kb] [disks]
// e.g.
//   admission_planner 350 200 8
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/table_printer.h"
#include "core/admission.h"
#include "core/baselines.h"
#include "core/glitch_model.h"
#include "core/service_time_model.h"
#include "disk/presets.h"
#include "workload/size_distribution.h"

using namespace zonestream;  // example code; libraries never do this

int main(int argc, char** argv) {
  const double mean_kb = argc > 1 ? std::atof(argv[1]) : 200.0;
  const double stddev_kb = argc > 2 ? std::atof(argv[2]) : 100.0;
  const int disks = argc > 3 ? std::atoi(argv[3]) : 4;
  if (mean_kb <= 0.0 || stddev_kb <= 0.0 || disks <= 0) {
    std::fprintf(stderr,
                 "usage: %s [mean_kb > 0] [stddev_kb > 0] [disks > 0]\n",
                 argv[0]);
    return 1;
  }
  const double mean = mean_kb * 1e3;
  const double variance = stddev_kb * 1e3 * stddev_kb * 1e3;

  const disk::DiskGeometry viking = disk::QuantumViking2100();
  const disk::SeekTimeModel seek = disk::QuantumViking2100Seek();

  std::printf(
      "Server plan: %d x Quantum Viking 2.1 class disks, fragments "
      "mean %.0f KB sd %.0f KB\n\n",
      disks, mean_kb, stddev_kb);

  for (double round : {0.5, 1.0, 2.0}) {
    auto model =
        core::ServiceTimeModel::ForMultiZoneDisk(viking, seek, mean, variance);
    if (!model.ok()) {
      std::fprintf(stderr, "model: %s\n", model.status().ToString().c_str());
      return 1;
    }
    const int rounds_per_stream = static_cast<int>(1200.0 / round);
    const int tolerated =
        std::max(1, static_cast<int>(0.01 * rounds_per_stream));

    common::TablePrinter table("Round length t = " +
                               common::FormatDouble(round, 3) + " s");
    table.SetHeader({"QoS tolerance", "criterion", "N_max/disk",
                     "server total"});
    for (double tolerance : {0.001, 0.01, 0.05}) {
      const int by_late =
          core::MaxStreamsByLateProbability(*model, round, tolerance);
      table.AddRow({common::FormatProbability(tolerance), "p_late/round",
                    std::to_string(by_late),
                    std::to_string(by_late * disks)});
      const int by_glitch = core::MaxStreamsByGlitchRate(
          *model, round, rounds_per_stream, tolerated, tolerance);
      table.AddRow({common::FormatProbability(tolerance),
                    "p_error(M=" + std::to_string(rounds_per_stream) +
                        ",g=" + std::to_string(tolerated) + ")",
                    std::to_string(by_glitch),
                    std::to_string(by_glitch * disks)});
    }
    const auto sizes = workload::GammaSizeDistribution::Create(mean, variance);
    const core::WorstCaseResult wc = core::WorstCaseAdmission(
        viking, seek, *sizes, round, core::WorstCaseConfig{});
    table.AddRow({"-", "deterministic worst case", std::to_string(wc.n_max),
                  std::to_string(wc.n_max * disks)});
    table.Print();
    std::printf("\n");
  }

  std::printf(
      "Startup latency is bounded by one round; shorter rounds admit fewer "
      "streams (seek/rotation overhead amortizes worse) but react faster.\n");
  return 0;
}
