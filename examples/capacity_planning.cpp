// Capacity planning: how many disks does a target service need, and how
// should the round length be chosen?
//
// Scenario: a teleteaching service must sustain a target number of
// concurrent 2 Mbit/s streams with a per-stream glitch contract. The tool
// sweeps the round length (the one architectural knob that requires
// re-fragmenting all content, §2.3), reports per-disk capacity, startup
// latency and buffer demand at each setting, and derives the disk count.
#include <cmath>
#include <cstdio>
#include <string>

#include "common/table_printer.h"
#include "common/units.h"
#include "core/admission.h"
#include "core/service_time_model.h"
#include "disk/presets.h"
#include "workload/size_distribution.h"

using namespace zonestream;  // example code; libraries never do this

int main(int argc, char** argv) {
  const int target_streams = argc > 1 ? std::atoi(argv[1]) : 200;
  if (target_streams <= 0) {
    std::fprintf(stderr, "usage: %s [target_streams > 0]\n", argv[0]);
    return 1;
  }

  // A 2 Mbit/s stream consumes 250 KB per second of display time; assume
  // VBR with a coefficient of variation of 0.5 (MPEG-2 like).
  const double bandwidth_bps = 250e3;
  const double cv = 0.5;
  const double session_s = 1800.0;  // 30-minute lectures
  const double glitch_rate = 0.01;  // <=1% of rounds may glitch
  const double epsilon = 0.01;      // with 99% confidence per stream

  const disk::DiskGeometry viking = disk::QuantumViking2100();
  const disk::SeekTimeModel seek = disk::QuantumViking2100Seek();

  std::printf(
      "Target: %d concurrent 2 Mbit/s streams, %0.f-minute sessions, at "
      "most %.0f%% glitchy rounds per stream with %.0f%% confidence\n\n",
      target_streams, session_s / 60.0, 100.0 * glitch_rate,
      100.0 * (1.0 - epsilon));

  common::TablePrinter table("Round-length sweep (Quantum Viking 2.1 disks)");
  table.SetHeader({"round [s]", "frag mean [KB]", "N_max/disk", "disks",
                   "startup [s]", "client buffer [KB]"});

  for (double round : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    // Fragments hold one round of display time.
    const double mean = bandwidth_bps * round;
    const double variance = (cv * mean) * (cv * mean);
    auto model =
        core::ServiceTimeModel::ForMultiZoneDisk(viking, seek, mean, variance);
    if (!model.ok()) {
      std::fprintf(stderr, "model: %s\n", model.status().ToString().c_str());
      return 1;
    }
    const int rounds_per_session =
        static_cast<int>(std::ceil(session_s / round));
    const int tolerated = std::max(
        1, static_cast<int>(std::floor(glitch_rate * rounds_per_session)));
    const int per_disk = core::MaxStreamsByGlitchRate(
        *model, round, rounds_per_session, tolerated, epsilon);
    if (per_disk == 0) {
      table.AddRow({common::FormatDouble(round, 3),
                    common::FormatFixed(mean / 1e3, 0), "0", "-", "-", "-"});
      continue;
    }
    const int disks =
        (target_streams + per_disk - 1) / per_disk;  // ceil division
    // A client must buffer the fragment being displayed plus the one in
    // flight (§2: "the server delivers a fragment before the previous one
    // is consumed"): two rounds of the mean bandwidth, sized for a
    // 99.9th-percentile fragment.
    const auto sizes = workload::GammaSizeDistribution::Create(mean, variance);
    const double buffer_bytes = 2.0 * sizes->Quantile(0.999);
    table.AddRow({common::FormatDouble(round, 3),
                  common::FormatFixed(mean / 1e3, 0),
                  std::to_string(per_disk), std::to_string(disks),
                  common::FormatDouble(round, 3),
                  common::FormatFixed(buffer_bytes / 1e3, 0)});
  }
  table.Print();

  std::printf(
      "\nReading the table: longer rounds amortize seek/rotation overhead "
      "(more streams per disk, fewer disks) but raise startup latency and "
      "client buffer demand linearly — the paper's configuration knob in "
      "action.\n");
  return 0;
}
