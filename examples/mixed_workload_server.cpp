// Mixed-workload scenario (digital library / teleteaching, §6): one disk
// carries both lecture video streams and interactive web requests
// (HTML/images). The tool answers the operational questions:
//   - how many video streams can we admit while *guaranteeing* d web
//     requests per round?
//   - what best-effort web throughput and response time follow at each
//     admission point?
// and validates the chosen operating point with the detailed simulator.
#include <cstdio>
#include <memory>
#include <string>

#include "common/table_printer.h"
#include "core/mixed_workload.h"
#include "disk/presets.h"
#include "sim/mixed_simulator.h"
#include "workload/size_distribution.h"

using namespace zonestream;  // example code; libraries never do this

int main() {
  const double round = 1.0;
  const core::DiscreteWorkload web{40e3, 30e3 * 30e3};  // 40 KB pages
  auto model = core::MixedWorkloadModel::Create(
      disk::QuantumViking2100(), disk::QuantumViking2100Seek(),
      /*continuous_mean_bytes=*/200e3, /*continuous_variance=*/1e10, web);
  if (!model.ok()) {
    std::fprintf(stderr, "model: %s\n", model.status().ToString().c_str());
    return 1;
  }

  std::printf("Mean web-request service time: %.1f ms\n\n",
              1e3 * model->mean_discrete_service());

  common::TablePrinter table(
      "Operating points (Table 1 disk, t = 1 s, b_late <= 1%)");
  table.SetHeader({"video streams", "guaranteed web slots/round",
                   "best-effort web req/s (rho=0.8)",
                   "approx response @5/s [ms]"});
  for (int n : {16, 20, 22, 24, 26}) {
    const double response =
        model->ApproximateDiscreteResponseTime(n, round, 5.0);
    table.AddRow(
        {std::to_string(n),
         std::to_string(model->GuaranteedDiscreteSlots(n, round, 0.01)),
         common::FormatFixed(model->SustainableDiscreteRate(n, round), 1),
         std::isfinite(response) ? common::FormatFixed(1e3 * response, 0)
                                 : "unstable"});
  }
  table.Print();

  // Validate the N = 22 operating point with 10 web requests/second.
  const int n = 22;
  const double lambda = 10.0;
  auto video = std::make_shared<workload::GammaSizeDistribution>(
      *workload::GammaSizeDistribution::Create(200e3, 1e10));
  auto pages = std::make_shared<workload::GammaSizeDistribution>(
      *workload::GammaSizeDistribution::Create(40e3, 30e3 * 30e3));
  sim::MixedSimulatorConfig config;
  config.round_length_s = round;
  config.discrete_arrival_rate_hz = lambda;
  config.seed = 2;
  auto simulator = sim::MixedRoundSimulator::Create(
      disk::QuantumViking2100(), disk::QuantumViking2100Seek(), n, video,
      pages, config);
  if (!simulator.ok()) return 1;
  const sim::MixedRunResult result = simulator->Run(20000);
  std::printf(
      "\nValidation at %d video streams + %.0f web req/s over %lld rounds:\n"
      "  video glitch rate %.6f (contract 1%%), web completed %.1f/round,\n"
      "  web response mean %.0f ms / p95 %.0f ms, max queue %lld\n",
      n, lambda, static_cast<long long>(result.rounds),
      result.continuous_glitch_rate, result.mean_discrete_per_round,
      1e3 * result.mean_response_time_s, 1e3 * result.p95_response_time_s,
      static_cast<long long>(result.max_queue_depth));
  std::printf(
      "  analytic: leftover %.0f ms/round, sustainable %.1f req/s, approx "
      "response %.0f ms\n",
      1e3 * model->ExpectedLeftoverTime(n, round),
      model->SustainableDiscreteRate(n, round),
      1e3 * model->ApproximateDiscreteResponseTime(n, round, lambda));
  return 0;
}
