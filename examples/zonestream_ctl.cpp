// zonestream_ctl: config-driven admission planning for operators.
//
//   zonestream_ctl --template              print a starter config
//   zonestream_ctl <config-file>           print the admission plan
//   zonestream_ctl stats <config-file> [rounds]
//                                          simulate the planned deployment
//                                          and print a metrics snapshot
//
//   zonestream_ctl snapshot inspect <file>
//                                          validate and describe a
//                                          checkpoint snapshot
//
//   zonestream_ctl compare [--bachmat] [--no-mc]
//                                          table N_max from every engine
//                                          (worst case, Chernoff,
//                                          saddlepoint, SNC, Monte Carlo)
//                                          across the preset disks
//
//   zonestream_ctl admitd <op> --socket PATH [args]
//                                          drive a running
//                                          zonestream_admitd; ops:
//     ping
//     admit --class N | --tolerance T [--session ID]
//     teardown --session ID
//     transition --session ID --class N
//     stats                               per-class occupancy + the
//                                         service.* metrics tables
//     checkpoint                          ask the daemon to write a
//                                         durable snapshot now
//     digest                              canonical state digest
//     shutdown
//
// The config format is documented in src/server/server_config.h; the
// template is the paper's Table 1 deployment. The `stats` subcommand runs
// one disk at the planned per-disk stream limit for `rounds` rounds
// (default 200) with the observability layer attached and prints the
// registry snapshot (see docs/OBSERVABILITY.md for the metric names).
// `snapshot inspect` decodes a zonestream-snapshot-v1 file (checksum and
// all — a corrupt file is reported, not described) and prints its
// producer, round, seed, and section inventory (docs/RECOVERY.md).
// `compare` renders the five-way admission-engine comparison of
// docs/BOUNDS.md on the Table 1 workload: --bachmat swaps the seek term
// to Bachmat's SCAN bound, --no-mc skips the (slow) Monte Carlo column.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "common/table_printer.h"
#include "obs/export.h"
#include "recovery/checkpoint.h"
#include "recovery/snapshot.h"
#include "obs/metrics.h"
#include "obs/round_trace.h"
#include "server/server_config.h"
#include "service/client.h"
#include "service/protocol.h"
#include "service/stats_format.h"
#include "sim/bound_comparison.h"
#include "sim/round_simulator.h"
#include "workload/size_distribution.h"

using namespace zonestream;  // example code; libraries never do this

namespace {

int PrintPlan(const server::ServerSpec& spec, const server::ServerPlan& plan) {
  common::TablePrinter table("Admission plan");
  table.SetHeader({"quantity", "value"});
  table.AddRow({"disk",
                std::to_string(spec.disk_parameters.cylinders) + " cyl / " +
                    std::to_string(spec.disk_parameters.zones) + " zones"});
  table.AddRow({"fragments",
                common::FormatFixed(spec.fragment_mean_bytes / 1e3, 0) +
                    " KB mean"});
  table.AddRow({"round length",
                common::FormatDouble(spec.round_length_s, 3) + " s"});
  table.AddRow(
      {"criterion",
       spec.criterion == core::AdmissionCriterion::kLateProbability
           ? "p_late <= " + common::FormatProbability(spec.tolerance)
           : "P[>" + std::to_string(spec.tolerated_glitches) +
                 " glitches in " + std::to_string(spec.session_rounds) +
                 " rounds] <= " + common::FormatProbability(spec.tolerance)});
  table.AddRow({"streams per disk", std::to_string(plan.streams_per_disk)});
  table.AddRow({"server total (" + std::to_string(spec.num_disks) +
                    " disks)",
                std::to_string(plan.total_streams)});
  table.AddRow({"b_late at the limit",
                common::FormatProbability(plan.late_bound_at_limit)});
  if (plan.degraded_streams_per_disk >= 0) {
    table.AddRow({"degraded streams per disk (repair " +
                      std::to_string(spec.repair_throttle) + "/round)",
                  std::to_string(plan.degraded_streams_per_disk)});
  }
  table.Print();
  return 0;
}

// `stats` subcommand: simulate one disk at the planned limit with the obs
// layer attached and print the resulting registry snapshot.
int RunStats(const server::ServerSpec& spec, const server::ServerPlan& plan,
             int rounds) {
  auto geometry = disk::DiskGeometry::Create(spec.disk_parameters);
  if (!geometry.ok()) {
    std::fprintf(stderr, "geometry error: %s\n",
                 geometry.status().ToString().c_str());
    return 1;
  }
  auto seek = disk::SeekTimeModel::Create(spec.seek_parameters);
  if (!seek.ok()) {
    std::fprintf(stderr, "seek model error: %s\n",
                 seek.status().ToString().c_str());
    return 1;
  }
  auto sizes_or = workload::GammaSizeDistribution::Create(
      spec.fragment_mean_bytes, spec.fragment_variance_bytes2);
  if (!sizes_or.ok()) {
    std::fprintf(stderr, "workload error: %s\n",
                 sizes_or.status().ToString().c_str());
    return 1;
  }
  auto sizes = std::make_shared<workload::GammaSizeDistribution>(*sizes_or);

  obs::Registry registry;
  obs::RoundTraceRecorder trace;
  sim::SimulatorConfig config;
  config.round_length_s = spec.round_length_s;
  config.metrics = &registry;
  config.trace = &trace;
  auto simulator = sim::RoundSimulator::Create(
      *geometry, *seek, plan.streams_per_disk,
      sim::RoundSimulator::IidFactory(sizes), config);
  if (!simulator.ok()) {
    std::fprintf(stderr, "simulator error: %s\n",
                 simulator.status().ToString().c_str());
    return 1;
  }
  for (int r = 0; r < rounds; ++r) simulator->RunRound();

  PrintPlan(spec, plan);
  std::printf("\nSimulated %d rounds at %d streams/disk "
              "(%zu trace events recorded):\n\n",
              rounds, plan.streams_per_disk, trace.size());
  obs::PrintRegistry(registry.Snapshot());
  return 0;
}

// `snapshot inspect` subcommand: fully validate a snapshot file and
// print what it holds.
int InspectSnapshot(const char* path) {
  const auto snapshot = recovery::LoadSnapshotFile(path);
  if (!snapshot.ok()) {
    std::fprintf(stderr, "snapshot inspect: %s\n",
                 snapshot.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", recovery::DescribeSnapshot(*snapshot).c_str());
  return 0;
}

// `admitd` subcommands: one request against a running zonestream_admitd.
int PrintOutcome(const char* op,
                 const common::StatusOr<service::Response>& response) {
  if (!response.ok()) {
    std::fprintf(stderr, "admitd %s: %s\n", op,
                 response.status().ToString().c_str());
    return 1;
  }
  std::printf("%s: %s session=%llu class=%u occupancy=%lld/%lld\n", op,
              service::WireStatusName(response->status),
              static_cast<unsigned long long>(response->session_id),
              response->class_index,
              static_cast<long long>(response->occupancy),
              static_cast<long long>(response->limit));
  return response->status == service::WireStatus::kOk ? 0 : 1;
}

int RunAdmitd(int argc, char** argv) {
  const char* const usage =
      "usage: %s admitd <ping|admit|teardown|transition|stats|checkpoint|"
      "digest|shutdown> --socket PATH [--session ID] [--class N] "
      "[--tolerance T] [--timeout-ms MS] [--retries N]\n";
  if (argc < 3) {
    std::fprintf(stderr, usage, argv[0]);
    return 2;
  }
  const std::string op = argv[2];
  std::string socket;
  uint64_t session = 0;
  int class_index = -1;
  double tolerance = -1.0;
  service::ClientOptions client_options;
  for (int i = 3; i < argc; ++i) {
    const std::string flag = argv[i];
    const char* value = i + 1 < argc ? argv[i + 1] : nullptr;
    if (flag == "--socket" && value != nullptr) {
      socket = value;
      ++i;
    } else if (flag == "--session" && value != nullptr) {
      session = std::strtoull(value, nullptr, 10);
      ++i;
    } else if (flag == "--class" && value != nullptr) {
      class_index = std::atoi(value);
      ++i;
    } else if (flag == "--tolerance" && value != nullptr) {
      tolerance = std::atof(value);
      ++i;
    } else if (flag == "--timeout-ms" && value != nullptr) {
      // One deadline flag covers both phases: connect and each request.
      const int timeout_ms = std::atoi(value);
      if (timeout_ms <= 0) {
        std::fprintf(stderr, "admitd: --timeout-ms must be positive\n");
        return 2;
      }
      client_options.connect_timeout_ms = timeout_ms;
      client_options.request_timeout_ms = timeout_ms;
      ++i;
    } else if (flag == "--retries" && value != nullptr) {
      const int retries = std::atoi(value);
      if (retries < 0) {
        std::fprintf(stderr, "admitd: --retries must be >= 0\n");
        return 2;
      }
      client_options.max_retries = retries;
      ++i;
    } else {
      std::fprintf(stderr, usage, argv[0]);
      return 2;
    }
  }
  if (socket.empty()) {
    std::fprintf(stderr, "admitd: --socket is required\n");
    return 2;
  }
  auto client = service::AdmitClient::Connect(socket, client_options);
  if (!client.ok()) {
    std::fprintf(stderr, "admitd: %s\n",
                 client.status().ToString().c_str());
    return 1;
  }
  if (op == "ping") {
    const auto response = (*client)->Ping();
    if (response.ok() && response->status == service::WireStatus::kOk) {
      std::printf("pong\n");
      return 0;
    }
    return PrintOutcome("ping", response);
  }
  if (op == "admit") {
    if (class_index >= 0) {
      return PrintOutcome("admit", (*client)->AdmitClass(
                                       session,
                                       static_cast<uint32_t>(class_index)));
    }
    if (tolerance >= 0.0) {
      return PrintOutcome("admit",
                          (*client)->AdmitTolerance(session, tolerance));
    }
    std::fprintf(stderr, "admit needs --class N or --tolerance T\n");
    return 2;
  }
  if (op == "teardown") {
    return PrintOutcome("teardown", (*client)->Teardown(session));
  }
  if (op == "transition") {
    if (class_index < 0) {
      std::fprintf(stderr, "transition needs --class N\n");
      return 2;
    }
    return PrintOutcome(
        "transition",
        (*client)->Transition(session, static_cast<uint32_t>(class_index)));
  }
  if (op == "stats") {
    const auto stats = (*client)->Stats();
    if (!stats.ok()) {
      std::fprintf(stderr, "admitd stats: %s\n",
                   stats.status().ToString().c_str());
      return 1;
    }
    std::printf("%s", service::FormatServiceStats(*stats).c_str());
    return 0;
  }
  if (op == "checkpoint") {
    const auto response = (*client)->Checkpoint();
    if (response.ok() && response->status == service::WireStatus::kOk) {
      std::printf("checkpoint: %s (digest %016llx)\n",
                  response->payload.c_str(),
                  static_cast<unsigned long long>(response->digest));
      return 0;
    }
    return PrintOutcome("checkpoint", response);
  }
  if (op == "digest") {
    const auto response = (*client)->Digest();
    if (response.ok() && response->status == service::WireStatus::kOk) {
      std::printf("digest: %016llx (%lld sessions)\n",
                  static_cast<unsigned long long>(response->digest),
                  static_cast<long long>(response->occupancy));
      return 0;
    }
    return PrintOutcome("digest", response);
  }
  if (op == "shutdown") {
    return PrintOutcome("shutdown", (*client)->Shutdown());
  }
  std::fprintf(stderr, usage, argv[0]);
  return 2;
}

// `compare` subcommand: the five-way N_max comparison on the Table 1
// workload (docs/BOUNDS.md), across the preset disks and delta grid.
int RunCompare(int argc, char** argv) {
  sim::BoundComparisonOptions options;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--bachmat") == 0) {
      options.seek_bound = core::SeekBoundKind::kBachmat;
    } else if (std::strcmp(argv[i], "--no-mc") == 0) {
      options.run_monte_carlo = false;
    } else {
      std::fprintf(stderr, "usage: %s compare [--bachmat] [--no-mc]\n",
                   argv[0]);
      return 2;
    }
  }
  auto cells = sim::RunBoundComparison(options);
  if (!cells.ok()) {
    std::fprintf(stderr, "comparison error: %s\n",
                 cells.status().ToString().c_str());
    return 1;
  }
  std::fputs(sim::RenderBoundComparison(*cells, options).c_str(), stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const char* const usage =
      "usage: %s --template | <config-file> | stats <config-file> [rounds]"
      " | compare [--bachmat] [--no-mc] | snapshot inspect <file>"
      " | admitd <op> --socket PATH\n";
  if (argc < 2) {
    std::fprintf(stderr, usage, argv[0]);
    return 2;
  }
  if (std::strcmp(argv[1], "admitd") == 0) {
    return RunAdmitd(argc, argv);
  }
  if (std::strcmp(argv[1], "compare") == 0) {
    return RunCompare(argc, argv);
  }
  if (std::strcmp(argv[1], "snapshot") == 0) {
    if (argc != 4 || std::strcmp(argv[2], "inspect") != 0) {
      std::fprintf(stderr, usage, argv[0]);
      return 2;
    }
    return InspectSnapshot(argv[3]);
  }
  if (std::strcmp(argv[1], "--template") == 0) {
    if (argc != 2) {
      std::fprintf(stderr, usage, argv[0]);
      return 2;
    }
    std::fputs(server::DefaultConfigTemplate().c_str(), stdout);
    return 0;
  }

  const bool stats = std::strcmp(argv[1], "stats") == 0;
  if ((stats && (argc < 3 || argc > 4)) || (!stats && argc != 2)) {
    std::fprintf(stderr, usage, argv[0]);
    return 2;
  }
  const char* config_path = stats ? argv[2] : argv[1];
  int rounds = 200;
  if (stats && argc == 4) {
    rounds = std::atoi(argv[3]);
    if (rounds <= 0) {
      std::fprintf(stderr, "rounds must be a positive integer\n");
      return 2;
    }
  }

  const auto spec = server::LoadServerSpec(config_path);
  if (!spec.ok()) {
    std::fprintf(stderr, "config error: %s\n",
                 spec.status().ToString().c_str());
    return 1;
  }
  const auto plan = server::BuildServerPlan(*spec);
  if (!plan.ok()) {
    std::fprintf(stderr, "planning error: %s\n",
                 plan.status().ToString().c_str());
    return 1;
  }
  return stats ? RunStats(*spec, *plan, rounds) : PrintPlan(*spec, *plan);
}
