// zonestream_ctl: config-driven admission planning for operators.
//
//   zonestream_ctl --template              print a starter config
//   zonestream_ctl <config-file>           print the admission plan
//   zonestream_ctl stats <config-file> [rounds]
//                                          simulate the planned deployment
//                                          and print a metrics snapshot
//
//   zonestream_ctl snapshot inspect <file>
//                                          validate and describe a
//                                          checkpoint snapshot
//
// The config format is documented in src/server/server_config.h; the
// template is the paper's Table 1 deployment. The `stats` subcommand runs
// one disk at the planned per-disk stream limit for `rounds` rounds
// (default 200) with the observability layer attached and prints the
// registry snapshot (see docs/OBSERVABILITY.md for the metric names).
// `snapshot inspect` decodes a zonestream-snapshot-v1 file (checksum and
// all — a corrupt file is reported, not described) and prints its
// producer, round, seed, and section inventory (docs/RECOVERY.md).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "common/table_printer.h"
#include "obs/export.h"
#include "recovery/checkpoint.h"
#include "recovery/snapshot.h"
#include "obs/metrics.h"
#include "obs/round_trace.h"
#include "server/server_config.h"
#include "sim/round_simulator.h"
#include "workload/size_distribution.h"

using namespace zonestream;  // example code; libraries never do this

namespace {

int PrintPlan(const server::ServerSpec& spec, const server::ServerPlan& plan) {
  common::TablePrinter table("Admission plan");
  table.SetHeader({"quantity", "value"});
  table.AddRow({"disk",
                std::to_string(spec.disk_parameters.cylinders) + " cyl / " +
                    std::to_string(spec.disk_parameters.zones) + " zones"});
  table.AddRow({"fragments",
                common::FormatFixed(spec.fragment_mean_bytes / 1e3, 0) +
                    " KB mean"});
  table.AddRow({"round length",
                common::FormatDouble(spec.round_length_s, 3) + " s"});
  table.AddRow(
      {"criterion",
       spec.criterion == core::AdmissionCriterion::kLateProbability
           ? "p_late <= " + common::FormatProbability(spec.tolerance)
           : "P[>" + std::to_string(spec.tolerated_glitches) +
                 " glitches in " + std::to_string(spec.session_rounds) +
                 " rounds] <= " + common::FormatProbability(spec.tolerance)});
  table.AddRow({"streams per disk", std::to_string(plan.streams_per_disk)});
  table.AddRow({"server total (" + std::to_string(spec.num_disks) +
                    " disks)",
                std::to_string(plan.total_streams)});
  table.AddRow({"b_late at the limit",
                common::FormatProbability(plan.late_bound_at_limit)});
  if (plan.degraded_streams_per_disk >= 0) {
    table.AddRow({"degraded streams per disk (repair " +
                      std::to_string(spec.repair_throttle) + "/round)",
                  std::to_string(plan.degraded_streams_per_disk)});
  }
  table.Print();
  return 0;
}

// `stats` subcommand: simulate one disk at the planned limit with the obs
// layer attached and print the resulting registry snapshot.
int RunStats(const server::ServerSpec& spec, const server::ServerPlan& plan,
             int rounds) {
  auto geometry = disk::DiskGeometry::Create(spec.disk_parameters);
  if (!geometry.ok()) {
    std::fprintf(stderr, "geometry error: %s\n",
                 geometry.status().ToString().c_str());
    return 1;
  }
  auto seek = disk::SeekTimeModel::Create(spec.seek_parameters);
  if (!seek.ok()) {
    std::fprintf(stderr, "seek model error: %s\n",
                 seek.status().ToString().c_str());
    return 1;
  }
  auto sizes_or = workload::GammaSizeDistribution::Create(
      spec.fragment_mean_bytes, spec.fragment_variance_bytes2);
  if (!sizes_or.ok()) {
    std::fprintf(stderr, "workload error: %s\n",
                 sizes_or.status().ToString().c_str());
    return 1;
  }
  auto sizes = std::make_shared<workload::GammaSizeDistribution>(*sizes_or);

  obs::Registry registry;
  obs::RoundTraceRecorder trace;
  sim::SimulatorConfig config;
  config.round_length_s = spec.round_length_s;
  config.metrics = &registry;
  config.trace = &trace;
  auto simulator = sim::RoundSimulator::Create(
      *geometry, *seek, plan.streams_per_disk,
      sim::RoundSimulator::IidFactory(sizes), config);
  if (!simulator.ok()) {
    std::fprintf(stderr, "simulator error: %s\n",
                 simulator.status().ToString().c_str());
    return 1;
  }
  for (int r = 0; r < rounds; ++r) simulator->RunRound();

  PrintPlan(spec, plan);
  std::printf("\nSimulated %d rounds at %d streams/disk "
              "(%zu trace events recorded):\n\n",
              rounds, plan.streams_per_disk, trace.size());
  obs::PrintRegistry(registry.Snapshot());
  return 0;
}

// `snapshot inspect` subcommand: fully validate a snapshot file and
// print what it holds.
int InspectSnapshot(const char* path) {
  const auto snapshot = recovery::LoadSnapshotFile(path);
  if (!snapshot.ok()) {
    std::fprintf(stderr, "snapshot inspect: %s\n",
                 snapshot.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", recovery::DescribeSnapshot(*snapshot).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const char* const usage =
      "usage: %s --template | <config-file> | stats <config-file> [rounds]"
      " | snapshot inspect <file>\n";
  if (argc < 2) {
    std::fprintf(stderr, usage, argv[0]);
    return 2;
  }
  if (std::strcmp(argv[1], "snapshot") == 0) {
    if (argc != 4 || std::strcmp(argv[2], "inspect") != 0) {
      std::fprintf(stderr, usage, argv[0]);
      return 2;
    }
    return InspectSnapshot(argv[3]);
  }
  if (std::strcmp(argv[1], "--template") == 0) {
    if (argc != 2) {
      std::fprintf(stderr, usage, argv[0]);
      return 2;
    }
    std::fputs(server::DefaultConfigTemplate().c_str(), stdout);
    return 0;
  }

  const bool stats = std::strcmp(argv[1], "stats") == 0;
  if ((stats && (argc < 3 || argc > 4)) || (!stats && argc != 2)) {
    std::fprintf(stderr, usage, argv[0]);
    return 2;
  }
  const char* config_path = stats ? argv[2] : argv[1];
  int rounds = 200;
  if (stats && argc == 4) {
    rounds = std::atoi(argv[3]);
    if (rounds <= 0) {
      std::fprintf(stderr, "rounds must be a positive integer\n");
      return 2;
    }
  }

  const auto spec = server::LoadServerSpec(config_path);
  if (!spec.ok()) {
    std::fprintf(stderr, "config error: %s\n",
                 spec.status().ToString().c_str());
    return 1;
  }
  const auto plan = server::BuildServerPlan(*spec);
  if (!plan.ok()) {
    std::fprintf(stderr, "planning error: %s\n",
                 plan.status().ToString().c_str());
    return 1;
  }
  return stats ? RunStats(*spec, *plan, rounds) : PrintPlan(*spec, *plan);
}
