// zonestream_ctl: config-driven admission planning for operators.
//
//   zonestream_ctl --template           print a starter config
//   zonestream_ctl <config-file>        print the admission plan
//
// The config format is documented in src/server/server_config.h; the
// template is the paper's Table 1 deployment.
#include <cstdio>
#include <cstring>
#include <string>

#include "common/table_printer.h"
#include "server/server_config.h"

using namespace zonestream;  // example code; libraries never do this

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s --template | <config-file>\n", argv[0]);
    return 2;
  }
  if (std::strcmp(argv[1], "--template") == 0) {
    std::fputs(server::DefaultConfigTemplate().c_str(), stdout);
    return 0;
  }

  const auto spec = server::LoadServerSpec(argv[1]);
  if (!spec.ok()) {
    std::fprintf(stderr, "config error: %s\n",
                 spec.status().ToString().c_str());
    return 1;
  }
  const auto plan = server::BuildServerPlan(*spec);
  if (!plan.ok()) {
    std::fprintf(stderr, "planning error: %s\n",
                 plan.status().ToString().c_str());
    return 1;
  }

  common::TablePrinter table("Admission plan");
  table.SetHeader({"quantity", "value"});
  table.AddRow({"disk",
                std::to_string(spec->disk_parameters.cylinders) + " cyl / " +
                    std::to_string(spec->disk_parameters.zones) + " zones"});
  table.AddRow({"fragments",
                common::FormatFixed(spec->fragment_mean_bytes / 1e3, 0) +
                    " KB mean"});
  table.AddRow({"round length",
                common::FormatDouble(spec->round_length_s, 3) + " s"});
  table.AddRow(
      {"criterion",
       spec->criterion == core::AdmissionCriterion::kLateProbability
           ? "p_late <= " + common::FormatProbability(spec->tolerance)
           : "P[>" + std::to_string(spec->tolerated_glitches) +
                 " glitches in " + std::to_string(spec->session_rounds) +
                 " rounds] <= " + common::FormatProbability(spec->tolerance)});
  table.AddRow({"streams per disk", std::to_string(plan->streams_per_disk)});
  table.AddRow({"server total (" + std::to_string(spec->num_disks) +
                    " disks)",
                std::to_string(plan->total_streams)});
  table.AddRow({"b_late at the limit",
                common::FormatProbability(plan->late_bound_at_limit)});
  table.Print();
  return 0;
}
