// End-to-end video-server scenario (the news-on-demand workload of the
// paper's introduction):
//
//  1. synthesize MPEG-like VBR "videos" and fragment them into
//     uniform-display-time fragments (§2.1),
//  2. measure the fragment statistics the admission control consumes
//     (§2.3 "workload statistics are fed into the admission control"),
//  3. derive the admission limit from the analytic model,
//  4. run a striped multi-disk MediaServer at that limit for 20 minutes of
//     simulated time with stream churn (viewers joining/leaving), and
//  5. report the per-stream QoS actually delivered vs the contract.
//
// With --metrics-out=FILE, the run is instrumented with the observability
// layer and the final registry snapshot is written to FILE as JSON (see
// docs/OBSERVABILITY.md for the schema and metric names).
//
// Fault injection and graceful degradation (docs/FAULTS.md):
//   --fault=SPEC         inject faults, e.g.
//                        "slowdown:enter=0.01,exit=0.2,delay_max=0.05"
//   --fault-disk=D       apply the spec to disk D only (default: all)
//   --degrade=BOUND      defend this per-round glitch-rate bound by
//                        shedding streams when it is violated
//   --retries=R          re-issue deadline-cut fragments up to R times
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/table_printer.h"
#include "core/admission.h"
#include "core/service_time_model.h"
#include "disk/presets.h"
#include "fault/degradation.h"
#include "fault/fault_spec.h"
#include "numeric/random.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/round_trace.h"
#include "server/media_server.h"
#include "workload/fragmentation.h"
#include "workload/size_distribution.h"
#include "workload/vbr_trace.h"

using namespace zonestream;  // example code; libraries never do this

int main(int argc, char** argv) {
  std::string metrics_out;
  std::string fault_text;
  int fault_disk = -1;
  double degrade_bound = -1.0;
  int retries = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--metrics-out=", 14) == 0) {
      metrics_out = argv[i] + 14;
    } else if (std::strncmp(argv[i], "--fault=", 8) == 0) {
      fault_text = argv[i] + 8;
    } else if (std::strncmp(argv[i], "--fault-disk=", 13) == 0) {
      fault_disk = std::atoi(argv[i] + 13);
    } else if (std::strncmp(argv[i], "--degrade=", 10) == 0) {
      degrade_bound = std::atof(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--retries=", 10) == 0) {
      retries = std::atoi(argv[i] + 10);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--metrics-out=FILE] [--fault=SPEC] "
                   "[--fault-disk=D] [--degrade=BOUND] [--retries=R]\n",
                   argv[0]);
      return 2;
    }
  }
  // --- 1. Content preparation -------------------------------------------
  workload::VbrTraceConfig trace_config;
  trace_config.mean_bandwidth_bps = 200e3;   // ~1.6 Mbit/s MPEG-2 video
  trace_config.bandwidth_stddev_bps = 95e3;
  trace_config.scene_correlation = 0.9;
  auto generator = workload::VbrTraceGenerator::Create(trace_config, 2024);
  if (!generator.ok()) return 1;

  std::vector<workload::Fragment> all_fragments;
  const double round_length = 1.0;
  for (int video = 0; video < 20; ++video) {
    const workload::BandwidthProfile profile =
        generator->Generate(/*duration_s=*/600.0);  // 10-minute clips
    auto fragments = workload::FragmentObject(profile, round_length);
    if (!fragments.ok()) return 1;
    all_fragments.insert(all_fragments.end(), fragments->begin(),
                         fragments->end());
  }

  // --- 2. Workload statistics -------------------------------------------
  const workload::FragmentMoments moments =
      workload::MeasureFragmentMoments(all_fragments);
  std::printf(
      "Content library: %lld fragments, mean %.1f KB, stddev %.1f KB\n",
      static_cast<long long>(moments.count), moments.mean_bytes / 1e3,
      std::sqrt(moments.variance_bytes2) / 1e3);

  // --- 3. Admission limit from the analytic model ------------------------
  const disk::DiskGeometry viking = disk::QuantumViking2100();
  const disk::SeekTimeModel seek = disk::QuantumViking2100Seek();
  auto model = core::ServiceTimeModel::ForMultiZoneDisk(
      viking, seek, moments.mean_bytes, moments.variance_bytes2);
  if (!model.ok()) return 1;
  const int rounds_per_stream = 1200;  // 20-minute viewing sessions
  const int tolerated_glitches = 12;   // 1% of rounds
  const int per_disk_limit = core::MaxStreamsByGlitchRate(
      *model, round_length, rounds_per_stream, tolerated_glitches, 0.01);
  std::printf(
      "Admission model: <=%d streams/disk keep P[>%d glitches in %d "
      "rounds] under 1%%\n",
      per_disk_limit, tolerated_glitches, rounds_per_stream);

  // --- 4. Run the striped server with churn ------------------------------
  obs::Registry registry;
  obs::RoundTraceRecorder trace;
  server::MediaServerConfig server_config;
  server_config.num_disks = 4;
  server_config.round_length_s = round_length;
  server_config.per_disk_stream_limit = per_disk_limit;
  server_config.seed = 99;
  if (!metrics_out.empty()) {
    server_config.metrics = &registry;
    server_config.trace = &trace;
  }
  if (!fault_text.empty()) {
    auto spec = fault::ParseFaultSpec(fault_text);
    if (!spec.ok()) {
      std::fprintf(stderr, "--fault: %s\n",
                   spec.status().message().c_str());
      return 2;
    }
    server_config.faults = *spec;
    server_config.fault_disk = fault_disk;
    std::printf("Fault injection: %s (disk %s)\n",
                fault::FormatFaultSpec(server_config.faults).c_str(),
                fault_disk < 0 ? "all" : std::to_string(fault_disk).c_str());
  }
  if (degrade_bound > 0.0) {
    fault::DegradationPolicy policy;
    policy.glitch_rate_bound = degrade_bound;
    policy.window_rounds = 20;
    policy.trigger_windows = 2;
    policy.recovery_windows = 3;
    server_config.degradation = policy;
    std::printf("Degradation controller armed: bound %.4g/stream-round\n",
                degrade_bound);
  }
  server_config.max_fragment_retries = retries;
  auto server = server::MediaServer::Create(viking, seek, server_config);
  if (!server.ok()) return 1;

  auto sizes = std::make_shared<workload::GammaSizeDistribution>(
      *workload::GammaSizeDistribution::Create(moments.mean_bytes,
                                               moments.variance_bytes2));
  numeric::Rng churn_rng(5);
  std::vector<int> active;
  int rejected = 0;
  int64_t finished_streams = 0;
  int64_t finished_glitches = 0;
  const int total_rounds = 1200;
  for (int round = 0; round < total_rounds; ++round) {
    // Viewers join at ~6 per round until the server is full, and leave
    // with probability 1/1200 per round (20-minute mean sessions).
    for (int arrivals = 0; arrivals < 6; ++arrivals) {
      auto id = server->OpenStream(sizes);
      if (id.ok()) {
        active.push_back(*id);
      } else {
        ++rejected;
      }
    }
    for (size_t i = 0; i < active.size();) {
      if (churn_rng.Uniform01() < 1.0 / 1200.0) {
        const auto stats = server->GetStreamStats(active[i]);
        if (stats.ok()) {
          ++finished_streams;
          finished_glitches += stats->glitches;
        }
        (void)server->CloseStream(active[i]);
        active[i] = active.back();
        active.pop_back();
      } else {
        ++i;
      }
    }
    server->RunRound();
  }

  // --- 5. Delivered QoS ---------------------------------------------------
  const server::ServerStats stats = server->GetServerStats();
  std::printf(
      "\nAfter %lld rounds: %d active streams (cap %d), %d arrivals "
      "rejected by admission control\n",
      static_cast<long long>(stats.rounds), server->active_streams(),
      server->max_streams(), rejected);
  std::printf("Fragments served: %lld, glitches: %lld (rate %.5f%%)\n",
              static_cast<long long>(stats.fragments_served),
              static_cast<long long>(stats.glitches),
              100.0 * stats.glitches /
                  std::max<int64_t>(1, stats.fragments_served +
                                           stats.glitches));

  common::TablePrinter util("Per-disk utilization (busy fraction)");
  util.SetHeader({"disk", "utilization"});
  for (size_t d = 0; d < stats.disk_utilization.size(); ++d) {
    util.AddRow({std::to_string(d),
                 common::FormatFixed(stats.disk_utilization[d], 3)});
  }
  util.Print();

  // QoS contract check over streams still active at the end.
  int worst_glitches = 0;
  int violators = 0;
  for (int id : active) {
    const auto stream_stats = server->GetStreamStats(id);
    if (!stream_stats.ok()) continue;
    worst_glitches = std::max<int>(worst_glitches,
                                   static_cast<int>(stream_stats->glitches));
    if (stream_stats->glitches >= tolerated_glitches) ++violators;
  }
  std::printf(
      "\nQoS: worst active stream saw %d glitches (contract: <%d); %d of "
      "%zu active streams violated the contract; %lld finished streams "
      "accumulated %lld glitches.\n",
      worst_glitches, tolerated_glitches, violators, active.size(),
      static_cast<long long>(finished_streams),
      static_cast<long long>(finished_glitches));

  const std::vector<fault::DegradationEvent> degradation_events =
      server->degradation_events();
  if (!fault_text.empty() || degrade_bound > 0.0 || retries > 0) {
    std::printf(
        "\nDegradation: final state %s, %lld streams shed, %lld fragments "
        "retried, %lld dropped, admissions %s\n",
        fault::DegradationStateName(server->degradation_state()),
        static_cast<long long>(stats.streams_shed),
        static_cast<long long>(stats.fragments_retried),
        static_cast<long long>(stats.fragments_dropped),
        server->admissions_open() ? "open" : "closed");
    for (const fault::DegradationEvent& event : degradation_events) {
      std::printf("  round %lld: %s -> %s (shed %d, window rate %.5f)\n",
                  static_cast<long long>(event.round),
                  fault::DegradationStateName(event.from),
                  fault::DegradationStateName(event.to), event.shed_streams,
                  event.window_glitch_rate);
    }
  }

  if (!metrics_out.empty()) {
    std::string degradation_json = "[";
    for (size_t i = 0; i < degradation_events.size(); ++i) {
      const fault::DegradationEvent& event = degradation_events[i];
      if (i > 0) degradation_json += ",";
      degradation_json +=
          "{\"round\":" + std::to_string(event.round) + ",\"from\":\"" +
          fault::DegradationStateName(event.from) + "\",\"to\":\"" +
          fault::DegradationStateName(event.to) +
          "\",\"shed_streams\":" + std::to_string(event.shed_streams) +
          ",\"window_glitch_rate\":" +
          std::to_string(event.window_glitch_rate) + "}";
    }
    degradation_json += "]";
    const std::string json = "{\"schema\":\"zonestream-metrics-v1\","
                             "\"degradation_events\":" + degradation_json +
                             ",\"metrics\":" +
                             obs::RegistryToJson(registry.Snapshot()) + "}\n";
    std::FILE* f = std::fopen(metrics_out.c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n",
                   metrics_out.c_str());
      return 1;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("\nWrote %zu metrics-snapshot bytes (%zu trace events "
                "recorded) to %s\n",
                json.size(), trace.size(), metrics_out.c_str());
  }
  return 0;
}
