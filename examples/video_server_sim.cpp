// End-to-end video-server scenario (the news-on-demand workload of the
// paper's introduction):
//
//  1. synthesize MPEG-like VBR "videos" and fragment them into
//     uniform-display-time fragments (§2.1),
//  2. measure the fragment statistics the admission control consumes
//     (§2.3 "workload statistics are fed into the admission control"),
//  3. derive the admission limit from the analytic model,
//  4. run a striped multi-disk MediaServer at that limit for 20 minutes of
//     simulated time with stream churn (viewers joining/leaving), and
//  5. report the per-stream QoS actually delivered vs the contract.
//
// With --metrics-out=FILE, the run is instrumented with the observability
// layer and the final registry snapshot is written to FILE as JSON (see
// docs/OBSERVABILITY.md for the schema and metric names).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/table_printer.h"
#include "core/admission.h"
#include "core/service_time_model.h"
#include "disk/presets.h"
#include "numeric/random.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/round_trace.h"
#include "server/media_server.h"
#include "workload/fragmentation.h"
#include "workload/size_distribution.h"
#include "workload/vbr_trace.h"

using namespace zonestream;  // example code; libraries never do this

int main(int argc, char** argv) {
  std::string metrics_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--metrics-out=", 14) == 0) {
      metrics_out = argv[i] + 14;
    } else {
      std::fprintf(stderr, "usage: %s [--metrics-out=FILE]\n", argv[0]);
      return 2;
    }
  }
  // --- 1. Content preparation -------------------------------------------
  workload::VbrTraceConfig trace_config;
  trace_config.mean_bandwidth_bps = 200e3;   // ~1.6 Mbit/s MPEG-2 video
  trace_config.bandwidth_stddev_bps = 95e3;
  trace_config.scene_correlation = 0.9;
  auto generator = workload::VbrTraceGenerator::Create(trace_config, 2024);
  if (!generator.ok()) return 1;

  std::vector<workload::Fragment> all_fragments;
  const double round_length = 1.0;
  for (int video = 0; video < 20; ++video) {
    const workload::BandwidthProfile profile =
        generator->Generate(/*duration_s=*/600.0);  // 10-minute clips
    auto fragments = workload::FragmentObject(profile, round_length);
    if (!fragments.ok()) return 1;
    all_fragments.insert(all_fragments.end(), fragments->begin(),
                         fragments->end());
  }

  // --- 2. Workload statistics -------------------------------------------
  const workload::FragmentMoments moments =
      workload::MeasureFragmentMoments(all_fragments);
  std::printf(
      "Content library: %lld fragments, mean %.1f KB, stddev %.1f KB\n",
      static_cast<long long>(moments.count), moments.mean_bytes / 1e3,
      std::sqrt(moments.variance_bytes2) / 1e3);

  // --- 3. Admission limit from the analytic model ------------------------
  const disk::DiskGeometry viking = disk::QuantumViking2100();
  const disk::SeekTimeModel seek = disk::QuantumViking2100Seek();
  auto model = core::ServiceTimeModel::ForMultiZoneDisk(
      viking, seek, moments.mean_bytes, moments.variance_bytes2);
  if (!model.ok()) return 1;
  const int rounds_per_stream = 1200;  // 20-minute viewing sessions
  const int tolerated_glitches = 12;   // 1% of rounds
  const int per_disk_limit = core::MaxStreamsByGlitchRate(
      *model, round_length, rounds_per_stream, tolerated_glitches, 0.01);
  std::printf(
      "Admission model: <=%d streams/disk keep P[>%d glitches in %d "
      "rounds] under 1%%\n",
      per_disk_limit, tolerated_glitches, rounds_per_stream);

  // --- 4. Run the striped server with churn ------------------------------
  obs::Registry registry;
  obs::RoundTraceRecorder trace;
  server::MediaServerConfig server_config;
  server_config.num_disks = 4;
  server_config.round_length_s = round_length;
  server_config.per_disk_stream_limit = per_disk_limit;
  server_config.seed = 99;
  if (!metrics_out.empty()) {
    server_config.metrics = &registry;
    server_config.trace = &trace;
  }
  auto server = server::MediaServer::Create(viking, seek, server_config);
  if (!server.ok()) return 1;

  auto sizes = std::make_shared<workload::GammaSizeDistribution>(
      *workload::GammaSizeDistribution::Create(moments.mean_bytes,
                                               moments.variance_bytes2));
  numeric::Rng churn_rng(5);
  std::vector<int> active;
  int rejected = 0;
  int64_t finished_streams = 0;
  int64_t finished_glitches = 0;
  const int total_rounds = 1200;
  for (int round = 0; round < total_rounds; ++round) {
    // Viewers join at ~6 per round until the server is full, and leave
    // with probability 1/1200 per round (20-minute mean sessions).
    for (int arrivals = 0; arrivals < 6; ++arrivals) {
      auto id = server->OpenStream(sizes);
      if (id.ok()) {
        active.push_back(*id);
      } else {
        ++rejected;
      }
    }
    for (size_t i = 0; i < active.size();) {
      if (churn_rng.Uniform01() < 1.0 / 1200.0) {
        const auto stats = server->GetStreamStats(active[i]);
        if (stats.ok()) {
          ++finished_streams;
          finished_glitches += stats->glitches;
        }
        (void)server->CloseStream(active[i]);
        active[i] = active.back();
        active.pop_back();
      } else {
        ++i;
      }
    }
    server->RunRound();
  }

  // --- 5. Delivered QoS ---------------------------------------------------
  const server::ServerStats stats = server->GetServerStats();
  std::printf(
      "\nAfter %lld rounds: %d active streams (cap %d), %d arrivals "
      "rejected by admission control\n",
      static_cast<long long>(stats.rounds), server->active_streams(),
      server->max_streams(), rejected);
  std::printf("Fragments served: %lld, glitches: %lld (rate %.5f%%)\n",
              static_cast<long long>(stats.fragments_served),
              static_cast<long long>(stats.glitches),
              100.0 * stats.glitches /
                  std::max<int64_t>(1, stats.fragments_served +
                                           stats.glitches));

  common::TablePrinter util("Per-disk utilization (busy fraction)");
  util.SetHeader({"disk", "utilization"});
  for (size_t d = 0; d < stats.disk_utilization.size(); ++d) {
    util.AddRow({std::to_string(d),
                 common::FormatFixed(stats.disk_utilization[d], 3)});
  }
  util.Print();

  // QoS contract check over streams still active at the end.
  int worst_glitches = 0;
  int violators = 0;
  for (int id : active) {
    const auto stream_stats = server->GetStreamStats(id);
    if (!stream_stats.ok()) continue;
    worst_glitches = std::max<int>(worst_glitches,
                                   static_cast<int>(stream_stats->glitches));
    if (stream_stats->glitches >= tolerated_glitches) ++violators;
  }
  std::printf(
      "\nQoS: worst active stream saw %d glitches (contract: <%d); %d of "
      "%zu active streams violated the contract; %lld finished streams "
      "accumulated %lld glitches.\n",
      worst_glitches, tolerated_glitches, violators, active.size(),
      static_cast<long long>(finished_streams),
      static_cast<long long>(finished_glitches));

  if (!metrics_out.empty()) {
    const std::string json = "{\"schema\":\"zonestream-metrics-v1\","
                             "\"metrics\":" +
                             obs::RegistryToJson(registry.Snapshot()) + "}\n";
    std::FILE* f = std::fopen(metrics_out.c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n",
                   metrics_out.c_str());
      return 1;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("\nWrote %zu metrics-snapshot bytes (%zu trace events "
                "recorded) to %s\n",
                json.size(), trace.size(), metrics_out.c_str());
  }
  return 0;
}
